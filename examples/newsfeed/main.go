// News feed updates (paper Example 2): a social network computes
// periodic member updates by joining large evolving datasets — here,
// profile-change events joined with connection activity on the member
// id, over the last 4 (virtual) days refreshed daily, to build each
// member's weekly digest.
//
// This exercises the two-source join path: pane pairs are joined once,
// their results cached, and each day's digest is assembled from the
// cached pair outputs (§6.2.2).
//
// Run with:
//
//	go run ./examples/newsfeed
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"redoop"
)

const (
	day     = 24 * time.Hour
	win     = 4 * day
	slide   = 1 * day
	perDay  = 6000
	members = 8000
	windows = 5
)

// profileBatch synthesizes one day of profile-change events:
// "member:change".
func profileBatch(dayIdx int) []redoop.Record {
	rng := rand.New(rand.NewSource(int64(dayIdx)*7 + 1))
	base := int64(dayIdx) * int64(slide)
	changes := []string{"new-job", "new-title", "new-skill", "anniversary"}
	recs := make([]redoop.Record, perDay)
	for i := range recs {
		payload := fmt.Sprintf("m%05d:%s", rng.Intn(members), changes[rng.Intn(len(changes))])
		recs[i] = redoop.Record{Ts: base + rng.Int63n(int64(slide)), Data: []byte(payload)}
	}
	return recs
}

// activityBatch synthesizes one day of connection activity:
// "member:viewed-by-cNNN".
func activityBatch(dayIdx int) []redoop.Record {
	rng := rand.New(rand.NewSource(int64(dayIdx)*13 + 2))
	base := int64(dayIdx) * int64(slide)
	recs := make([]redoop.Record, perDay/2)
	for i := range recs {
		payload := fmt.Sprintf("m%05d:viewed-by-c%04d", rng.Intn(members), rng.Intn(3000))
		recs[i] = redoop.Record{Ts: base + rng.Int63n(int64(slide)), Data: []byte(payload)}
	}
	return recs
}

func digestQuery() *redoop.Query {
	tag := func(prefix byte) redoop.MapFunc {
		return func(_ int64, payload []byte, emit redoop.Emitter) {
			i := bytes.IndexByte(payload, ':')
			if i < 0 {
				return
			}
			key := append([]byte(nil), payload[:i]...)
			val := append([]byte{prefix, '|'}, payload[i+1:]...)
			emit(key, val)
		}
	}
	join := func(key []byte, values [][]byte, emit redoop.Emitter) {
		var changes, views [][]byte
		for _, v := range values {
			if len(v) < 2 || v[1] != '|' {
				continue
			}
			switch v[0] {
			case 'P':
				changes = append(changes, v[2:])
			case 'A':
				views = append(views, v[2:])
			}
		}
		// Digest entry: every (profile change, connection view) of a
		// member in the window.
		for _, c := range changes {
			for _, v := range views {
				entry := make([]byte, 0, len(c)+len(v)+1)
				entry = append(entry, c...)
				entry = append(entry, '+')
				entry = append(entry, v...)
				emit(key, entry)
			}
		}
	}
	return &redoop.Query{
		Name: "digest",
		Sources: []redoop.Source{
			{Name: "profiles", Window: redoop.TimeWindow(win, slide)},
			{Name: "activity", Window: redoop.TimeWindow(win, slide)},
		},
		Maps:     []redoop.MapFunc{tag('P'), tag('A')},
		Reduce:   join,
		Reducers: 10,
	}
}

func main() {
	cfg := redoop.DefaultClusterConfig()
	redoopSys, err := redoop.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hadoopSys, err := redoop.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	h, err := redoopSys.Register(digestQuery())
	if err != nil {
		log.Fatal(err)
	}
	b, err := hadoopSys.RegisterBaseline(digestQuery())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("news feed digests: profile changes ⋈ connection activity, win=%v slide=%v\n\n",
		win, slide)
	fmt.Printf("%-7s %12s %12s %9s %14s\n", "window", "redoop", "hadoop", "speedup", "pairs new/old")

	days := int(win / slide)
	fed := 0
	for r := 0; r < windows; r++ {
		for ; fed < days+r; fed++ {
			if err := h.Ingest(0, profileBatch(fed)); err != nil {
				log.Fatal(err)
			}
			if err := h.Ingest(1, activityBatch(fed)); err != nil {
				log.Fatal(err)
			}
			if err := b.Ingest(0, profileBatch(fed)); err != nil {
				log.Fatal(err)
			}
			if err := b.Ingest(1, activityBatch(fed)); err != nil {
				log.Fatal(err)
			}
		}
		rr, err := h.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		br, err := b.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %12v %12v %8.1fx %10d/%d\n",
			r+1, rr.Stats.Response.Round(time.Microsecond),
			br.Stats.Response.Round(time.Microsecond),
			float64(br.Stats.Response)/float64(rr.Stats.Response),
			rr.NewPairs, rr.ReusedPairs)

		if r == windows-1 {
			fmt.Printf("\n%d digest entries in the final window; a sample:\n", len(rr.Output))
			redoop.SortPairs(rr.Output)
			for i := 0; i < 5 && i < len(rr.Output); i++ {
				fmt.Printf("  %s → %s\n", rr.Output[i].Key, rr.Output[i].Value)
			}
		}
	}
}
