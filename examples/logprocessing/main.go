// Log processing (paper Example 1): a data center continuously
// collects web-server logs into the DFS and a recurring query
// aggregates the recent past over a dimension — here, requests per
// country over the last 6 (virtual) hours, refreshed every hour — to
// detect emerging traffic patterns.
//
// The example demonstrates window-aware caching end to end: per-window
// cache reuse counts, byte-level savings versus the plain-Hadoop
// driver, and the per-recurrence output paths of the paper's §5 API.
//
// Run with:
//
//	go run ./examples/logprocessing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"redoop"
)

const (
	win     = 6 * time.Hour
	slide   = 1 * time.Hour
	perHour = 30000
	windows = 6
)

var countries = []string{
	"US", "DE", "JP", "BR", "IN", "FR", "GB", "CN", "AU", "CA",
	"MX", "KR", "IT", "ES", "NL", "SE", "PL", "TR", "ID", "NG",
}

// logBatch synthesizes one hour of access-log lines:
// "country,client,url,bytes,status".
func logBatch(hour int) []redoop.Record {
	rng := rand.New(rand.NewSource(int64(hour)*31 + 5))
	base := int64(hour) * int64(slide)
	recs := make([]redoop.Record, perHour)
	for i := range recs {
		line := fmt.Sprintf("%s,c%05d,/page/%03d,%d,%d",
			countries[rng.Intn(len(countries))], rng.Intn(40000),
			rng.Intn(500), 200+rng.Intn(30000), 200)
		recs[i] = redoop.Record{Ts: base + rng.Int63n(int64(slide)), Data: []byte(line)}
	}
	return recs
}

func logQuery() *redoop.Query {
	byCountry := func(_ int64, payload []byte, emit redoop.Emitter) {
		for i, c := range payload {
			if c == ',' {
				emit(append([]byte(nil), payload[:i]...), []byte("1"))
				return
			}
		}
	}
	sum := func(key []byte, values [][]byte, emit redoop.Emitter) {
		total := 0
		for _, v := range values {
			n := 0
			for _, c := range v {
				n = n*10 + int(c-'0')
			}
			total += n
		}
		emit(key, []byte(fmt.Sprintf("%d", total)))
	}
	return &redoop.Query{
		Name:     "geo-traffic",
		Sources:  []redoop.Source{{Name: "logs", Window: redoop.TimeWindow(win, slide)}},
		Maps:     []redoop.MapFunc{byCountry},
		Reduce:   sum,
		Merge:    sum,
		Reducers: 10,
	}
}

func main() {
	cfg := redoop.DefaultClusterConfig()
	redoopSys, err := redoop.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hadoopSys, err := redoop.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	h, err := redoopSys.Register(logQuery())
	if err != nil {
		log.Fatal(err)
	}
	b, err := hadoopSys.RegisterBaseline(logQuery())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("log processing: requests per country, win=%v slide=%v (overlap %.0f%%)\n\n",
		win, slide, 100*redoop.TimeWindow(win, slide).Overlap())
	fmt.Printf("%-7s %12s %12s %9s %16s %16s\n",
		"window", "redoop", "hadoop", "speedup", "DFS bytes (R)", "DFS bytes (H)")

	hours := int(win / slide)
	fed := 0
	var lastOut []redoop.Pair
	for r := 0; r < windows; r++ {
		for ; fed < hours+r; fed++ {
			batch := logBatch(fed)
			if err := h.Ingest(0, batch); err != nil {
				log.Fatal(err)
			}
			if err := b.Ingest(0, batch); err != nil {
				log.Fatal(err)
			}
		}
		rr, err := h.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		br, err := b.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %12v %12v %8.1fx %16d %16d\n",
			r+1, rr.Stats.Response.Round(time.Microsecond),
			br.Stats.Response.Round(time.Microsecond),
			float64(br.Stats.Response)/float64(rr.Stats.Response),
			rr.Stats.BytesRead, br.Stats.BytesRead)
		lastOut = rr.Output
	}

	fmt.Println("\nlast window, busiest countries:")
	redoop.SortPairs(lastOut)
	// Pick the three with the highest counts.
	type entry struct {
		country string
		count   int
	}
	var top []entry
	for _, p := range lastOut {
		n := 0
		for _, c := range p.Value {
			n = n*10 + int(c-'0')
		}
		top = append(top, entry{string(p.Key), n})
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].count > top[i].count {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	for i := 0; i < 3 && i < len(top); i++ {
		fmt.Printf("  %-3s %d requests\n", top[i].country, top[i].count)
	}
	fmt.Printf("\nwindow %d output committed at %s\n", windows, h.OutputPath(windows-1))
	fmt.Printf("window %d inputs: %d pane files\n", windows, len(h.InputPaths(windows-1)))
}
