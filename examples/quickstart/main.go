// Quickstart: a recurring word-count aggregation over a sliding
// window, compared against plain-Hadoop re-execution.
//
// The query counts word occurrences over the last 30 (virtual) minutes
// and re-executes every 10 minutes. Redoop processes each 10-minute
// pane once and assembles windows from cached pane counts; the
// baseline re-reads and re-reduces the full window every time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"redoop"
)

const (
	win      = 30 * time.Minute
	slide    = 10 * time.Minute
	perSlide = 50000
	windows  = 5
)

var vocabulary = []string{
	"alpha", "bravo", "charlie", "delta", "echo",
	"foxtrot", "golf", "hotel", "india", "juliet",
}

// batch generates one slide's worth of word records.
func batch(slideIdx int) []redoop.Record {
	rng := rand.New(rand.NewSource(int64(slideIdx) + 7))
	base := int64(slideIdx) * int64(slide)
	recs := make([]redoop.Record, perSlide)
	for i := range recs {
		recs[i] = redoop.Record{
			Ts:   base + rng.Int63n(int64(slide)),
			Data: []byte(vocabulary[rng.Intn(len(vocabulary))]),
		}
	}
	return recs
}

func wordCountQuery() *redoop.Query {
	count := func(_ int64, payload []byte, emit redoop.Emitter) {
		emit(append([]byte(nil), payload...), []byte("1"))
	}
	sum := func(key []byte, values [][]byte, emit redoop.Emitter) {
		total := 0
		for _, v := range values {
			n := 0
			for _, c := range v {
				n = n*10 + int(c-'0')
			}
			total += n
		}
		emit(key, []byte(fmt.Sprintf("%d", total)))
	}
	return &redoop.Query{
		Name:     "wordcount",
		Sources:  []redoop.Source{{Name: "S1", Window: redoop.TimeWindow(win, slide)}},
		Maps:     []redoop.MapFunc{count},
		Reduce:   sum,
		Combine:  sum,
		Merge:    sum,
		Reducers: 8,
	}
}

func main() {
	cfg := redoop.DefaultClusterConfig()

	// Two isolated systems so timings don't interfere.
	redoopSys, err := redoop.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hadoopSys, err := redoop.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	h, err := redoopSys.Register(wordCountQuery())
	if err != nil {
		log.Fatal(err)
	}
	b, err := hadoopSys.RegisterBaseline(wordCountQuery())
	if err != nil {
		log.Fatal(err)
	}

	slidesPerWindow := int(win / slide)
	fmt.Printf("recurring word count: win=%v slide=%v (overlap %.0f%%), %d windows\n\n",
		win, slide, 100*redoop.TimeWindow(win, slide).Overlap(), windows)
	fmt.Printf("%-8s %14s %14s %10s %14s\n", "window", "redoop", "hadoop", "speedup", "panes new/old")

	fed := 0
	for r := 0; r < windows; r++ {
		for ; fed < slidesPerWindow+r; fed++ {
			data := batch(fed)
			if err := h.Ingest(0, data); err != nil {
				log.Fatal(err)
			}
			if err := b.Ingest(0, data); err != nil {
				log.Fatal(err)
			}
		}
		rr, err := h.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		br, err := b.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %14v %14v %9.1fx %10d/%d\n",
			r+1, rr.Stats.Response.Round(time.Microsecond),
			br.Stats.Response.Round(time.Microsecond),
			float64(br.Stats.Response)/float64(rr.Stats.Response),
			rr.NewPanes, rr.ReusedPanes)

		if r == windows-1 {
			fmt.Println("\nfinal window's top words:")
			redoop.SortPairs(rr.Output)
			for _, p := range rr.Output {
				fmt.Printf("  %-10s %s\n", p.Key, p.Value)
			}
		}
	}
}
