// Sensor fusion: a three-way recurring join with heterogeneous
// windows, exercising two of this library's extensions beyond the
// paper's binary joins.
//
// A stadium analytics pipeline fuses, every (virtual) minute:
//   - position samples from the last 3 minutes (dense),
//   - ball-contact events from the last 2 minutes (sparse),
//   - referee decisions from the last 6 minutes (rare),
//
// joined on the player id. Each source keeps its own window size on
// the shared one-minute cadence; Redoop caches each pane once and each
// pane *triple*'s join once, assembling every recurrence from cached
// results.
//
// Run with:
//
//	go run ./examples/sensorfusion
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"redoop"
)

const (
	slide   = 1 * time.Minute
	winPos  = 3 * time.Minute
	winBall = 2 * time.Minute
	winRef  = 6 * time.Minute
	players = 22
	windows = 6
)

func batch(kind string, seed int64, slideIdx, n int) []redoop.Record {
	rng := rand.New(rand.NewSource(seed + int64(slideIdx)*101))
	base := int64(slideIdx) * int64(slide)
	recs := make([]redoop.Record, n)
	for i := range recs {
		player := rng.Intn(players)
		var payload string
		switch kind {
		case "pos":
			payload = fmt.Sprintf("p%02d:%.1f;%.1f", player, rng.Float64()*105, rng.Float64()*68)
		case "ball":
			payload = fmt.Sprintf("p%02d:touch@%d", player, rng.Intn(60))
		case "ref":
			payload = fmt.Sprintf("p%02d:%s", player, []string{"foul", "offside", "card"}[rng.Intn(3)])
		}
		recs[i] = redoop.Record{Ts: base + rng.Int63n(int64(slide)), Data: []byte(payload)}
	}
	return recs
}

func fusionQuery() *redoop.Query {
	tag := func(prefix byte) redoop.MapFunc {
		return func(_ int64, payload []byte, emit redoop.Emitter) {
			i := bytes.IndexByte(payload, ':')
			if i < 0 {
				return
			}
			key := append([]byte(nil), payload[:i]...)
			val := append([]byte{prefix, '|'}, payload[i+1:]...)
			emit(key, val)
		}
	}
	return &redoop.Query{
		Name: "fusion",
		Sources: []redoop.Source{
			{Name: "positions", Window: redoop.TimeWindow(winPos, slide)},
			{Name: "ball", Window: redoop.TimeWindow(winBall, slide)},
			{Name: "referee", Window: redoop.TimeWindow(winRef, slide)},
		},
		Maps: []redoop.MapFunc{tag('P'), tag('B'), tag('R')},
		Reduce: func(key []byte, values [][]byte, emit redoop.Emitter) {
			var pos, ball, ref [][]byte
			for _, v := range values {
				if len(v) < 2 || v[1] != '|' {
					continue
				}
				switch v[0] {
				case 'P':
					pos = append(pos, v[2:])
				case 'B':
					ball = append(ball, v[2:])
				case 'R':
					ref = append(ref, v[2:])
				}
			}
			// Fuse: every (position, touch, decision) co-occurrence of
			// one player across the three windows.
			for _, p := range pos {
				for _, b := range ball {
					for _, r := range ref {
						out := make([]byte, 0, len(p)+len(b)+len(r)+2)
						out = append(out, p...)
						out = append(out, '+')
						out = append(out, b...)
						out = append(out, '+')
						out = append(out, r...)
						emit(key, out)
					}
				}
			}
		},
		Reducers: 8,
	}
}

func main() {
	sys, err := redoop.NewSystem(redoop.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	h, err := sys.Register(fusionQuery())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sensor fusion: positions(%v) ⋈ ball(%v) ⋈ referee(%v), every %v\n\n",
		winPos, winBall, winRef, slide)
	fmt.Printf("%-7s %12s %9s %14s %14s %12s\n",
		"window", "response", "fused", "panes new/old", "tuples new/old", "cached bytes")

	// The largest window (6 min) gates the first recurrence.
	slidesToFirst := int(winRef / slide)
	fed := 0
	for r := 0; r < windows; r++ {
		for ; fed < slidesToFirst+r; fed++ {
			if err := h.Ingest(0, batch("pos", 1, fed, 3000)); err != nil {
				log.Fatal(err)
			}
			if err := h.Ingest(1, batch("ball", 2, fed, 150)); err != nil {
				log.Fatal(err)
			}
			if err := h.Ingest(2, batch("ref", 3, fed, 12)); err != nil {
				log.Fatal(err)
			}
		}
		res, err := h.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %12v %9d %10d/%-4d %10d/%-4d %12d\n",
			r+1, res.Stats.Response.Round(time.Microsecond), len(res.Output),
			res.NewPanes, res.ReusedPanes, res.NewPairs, res.ReusedPairs,
			sys.CachedBytes())

		if r == windows-1 {
			redoop.SortPairs(res.Output)
			fmt.Println("\na sample of the final window's fused events:")
			for i := 0; i < 3 && i < len(res.Output); i++ {
				fmt.Printf("  %s → %s\n", res.Output[i].Key, res.Output[i].Value)
			}
		}
	}
}
