// Clickstream analysis (paper Example 3): an ad broker maintains a
// predictive model — here click-through rates per (publisher,
// advertiser) — by re-running a recurring aggregation over the recent
// clickstream. Traffic spikes (a flash sale) double the stream's rate;
// with Adaptive enabled, Redoop's profiler forecasts the overrun,
// re-partitions input into finer sub-panes and processes them
// proactively as they arrive (§3.3).
//
// Run with:
//
//	go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"time"

	"redoop"
)

const (
	win      = 60 * time.Minute
	slide    = 10 * time.Minute
	baseRate = 12000 // records per slide at multiplier 1
	windows  = 9
)

// spikeMultiplier doubles the traffic for the middle windows.
func spikeMultiplier(slideIdx int) int {
	if slideIdx >= 8 && slideIdx <= 11 {
		return 2
	}
	return 1
}

// clickBatch synthesizes one slide of impressions:
// "publisher,advertiser,clicked".
func clickBatch(slideIdx int) []redoop.Record {
	rng := rand.New(rand.NewSource(int64(slideIdx)*101 + 3))
	base := int64(slideIdx) * int64(slide)
	n := baseRate * spikeMultiplier(slideIdx)
	recs := make([]redoop.Record, n)
	for i := range recs {
		clicked := 0
		if rng.Float64() < 0.03 {
			clicked = 1
		}
		payload := fmt.Sprintf("pub%02d,adv%02d,%d", rng.Intn(40), rng.Intn(25), clicked)
		recs[i] = redoop.Record{Ts: base + rng.Int63n(int64(slide)), Data: []byte(payload)}
	}
	return recs
}

// ctrQuery aggregates "impressions,clicks" per (publisher, advertiser);
// the CTR model is derived from the final counts.
func ctrQuery() *redoop.Query {
	mapFn := func(_ int64, payload []byte, emit redoop.Emitter) {
		// Key = "pubXX,advYY", value = "1,<clicked>".
		last := -1
		for i := len(payload) - 1; i >= 0; i-- {
			if payload[i] == ',' {
				last = i
				break
			}
		}
		if last < 0 {
			return
		}
		key := append([]byte(nil), payload[:last]...)
		emit(key, append([]byte("1,"), payload[last+1:]...))
	}
	agg := func(key []byte, values [][]byte, emit redoop.Emitter) {
		var imps, clicks int64
		for _, v := range values {
			var i, c int64
			fmt.Sscanf(string(v), "%d,%d", &i, &c)
			imps += i
			clicks += c
		}
		emit(key, []byte(fmt.Sprintf("%d,%d", imps, clicks)))
	}
	return &redoop.Query{
		Name:     "ctr-model",
		Sources:  []redoop.Source{{Name: "clicks", Window: redoop.TimeWindow(win, slide)}},
		Maps:     []redoop.MapFunc{mapFn},
		Reduce:   agg,
		Combine:  agg,
		Merge:    agg,
		Reducers: 10,
		Adaptive: true,
	}
}

func main() {
	// A slow cluster (rates ÷ 250000) makes executions commensurate
	// with the slide, the regime where adaptivity matters.
	cfg := redoop.DefaultClusterConfig()
	cfg.Cost.DiskReadBps /= 250000
	cfg.Cost.DiskWriteBps /= 250000
	cfg.Cost.NetBps /= 250000
	cfg.Cost.MapCPUBps /= 250000
	cfg.Cost.ReduceCPUBps /= 250000
	cfg.Cost.SortBps /= 250000
	cfg.Cost.TaskOverhead = 800 * time.Millisecond

	sys, err := redoop.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	h, err := sys.Register(ctrQuery())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clickstream CTR model: win=%v slide=%v, traffic doubles during windows 3-6\n\n", win, slide)
	fmt.Printf("%-7s %14s %10s %9s %10s %12s\n",
		"window", "response", "proactive", "subpanes", "forecast", "deadline")

	slides := int(win / slide)
	fed := 0
	for r := 0; r < windows; r++ {
		for ; fed < slides+r; fed++ {
			if err := h.Ingest(0, clickBatch(fed)); err != nil {
				log.Fatal(err)
			}
		}
		res, err := h.RunNext()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %14v %10v %9d %10v %12v\n",
			r+1, res.Stats.Response.Round(time.Second),
			res.Proactive, res.SubPanes,
			h.Forecast().Round(time.Second), slide)

		if r == windows-1 {
			fmt.Println("\nupdated model, highest-CTR pairs:")
			printTopCTR(res.Output, 5)
		}
	}
}

func printTopCTR(out []redoop.Pair, k int) {
	type row struct {
		key string
		ctr float64
		n   int64
	}
	var rows []row
	for _, p := range out {
		var imps, clicks int64
		fmt.Sscanf(string(p.Value), "%d,%d", &imps, &clicks)
		if imps < 100 {
			continue // too little data for the model
		}
		rows = append(rows, row{key: string(p.Key), ctr: float64(clicks) / float64(imps), n: imps})
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].ctr > rows[i].ctr {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	if k > len(rows) {
		k = len(rows)
	}
	for _, r := range rows[:k] {
		fmt.Printf("  %-14s ctr=%.3f%% over %d impressions\n", r.key, 100*r.ctr, r.n)
	}
	_ = strconv.Itoa
}
