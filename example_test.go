package redoop_test

import (
	"fmt"
	"time"

	"redoop"
)

// ExampleSystem_Register runs a recurring count aggregation over three
// windows, demonstrating pane reuse across overlapping windows.
func ExampleSystem_Register() {
	sys, err := redoop.NewSystem(redoop.DefaultClusterConfig())
	if err != nil {
		panic(err)
	}

	sum := func(key []byte, values [][]byte, emit redoop.Emitter) {
		total := 0
		for _, v := range values {
			n := 0
			for _, c := range v {
				n = n*10 + int(c-'0')
			}
			total += n
		}
		emit(key, []byte(fmt.Sprintf("%d", total)))
	}
	q := &redoop.Query{
		Name:    "events",
		Sources: []redoop.Source{{Name: "S1", Window: redoop.TimeWindow(30*time.Second, 10*time.Second)}},
		Maps: []redoop.MapFunc{func(_ int64, payload []byte, emit redoop.Emitter) {
			emit(append([]byte(nil), payload...), []byte("1"))
		}},
		Reduce:   sum,
		Merge:    sum,
		Reducers: 2,
	}
	h, err := sys.Register(q)
	if err != nil {
		panic(err)
	}

	// One batch of "click" events per 10-second slide.
	batch := func(slide int) []redoop.Record {
		recs := make([]redoop.Record, 10)
		for i := range recs {
			recs[i] = redoop.Record{
				Ts:   int64(slide)*int64(10*time.Second) + int64(i)*int64(time.Second),
				Data: []byte("click"),
			}
		}
		return recs
	}

	fed := 0
	for r := 0; r < 3; r++ {
		for ; fed < 3+r; fed++ {
			if err := h.Ingest(0, batch(fed)); err != nil {
				panic(err)
			}
		}
		res, err := h.RunNext()
		if err != nil {
			panic(err)
		}
		fmt.Printf("window %d: %s=%s (new panes %d, reused %d)\n",
			res.Recurrence+1, res.Output[0].Key, res.Output[0].Value,
			res.NewPanes, res.ReusedPanes)
	}
	// Output:
	// window 1: click=30 (new panes 3, reused 0)
	// window 2: click=30 (new panes 1, reused 2)
	// window 3: click=30 (new panes 1, reused 2)
}

// ExampleTimeWindow shows the pane unit derived from a window
// constraint: GCD(win, slide).
func ExampleTimeWindow() {
	w := redoop.TimeWindow(60*time.Minute, 20*time.Minute)
	fmt.Printf("pane=%v overlap=%.0f%%\n", time.Duration(w.Pane()), 100*w.Overlap())
	// Output:
	// pane=20m0s overlap=67%
}
