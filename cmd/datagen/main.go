// Command datagen emits synthetic WCC (WorldCup clicks) or FFG
// (football sensor) records — the generators backing the experiments —
// as CSV on stdout or into a file, for inspection or for feeding other
// tools.
//
// Usage:
//
//	datagen [-dataset wcc|ffg-readings|ffg-events] [-n 10000]
//	        [-start 0] [-span 10m] [-seed 42] [-o file]
//
// Each line is "<timestamp-ns>,<payload>"; payloads follow the schemas
// documented in the workload package.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"redoop/internal/records"
	"redoop/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "wcc", "wcc, ffg-readings or ffg-events")
		n       = flag.Int("n", 10000, "records to generate")
		start   = flag.Duration("start", 0, "start of the covered range (virtual time offset)")
		span    = flag.Duration("span", 10*time.Minute, "length of the covered range")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *span <= 0 || *n <= 0 {
		fmt.Fprintln(os.Stderr, "datagen: -n and -span must be positive")
		os.Exit(2)
	}
	startUnit := int64(*start)
	endUnit := startUnit + int64(*span)

	var recs []records.Record
	switch *dataset {
	case "wcc":
		recs = workload.WCC(workload.DefaultWCC(*seed), startUnit, endUnit, *n)
	case "ffg-readings":
		recs = workload.FFGReadings(workload.DefaultFFG(*seed), startUnit, endUnit, *n)
	case "ffg-events":
		recs = workload.FFGEvents(workload.DefaultFFG(*seed), startUnit, endUnit, *n)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	var bytes int64
	for _, r := range recs {
		fmt.Fprintf(w, "%d,%s\n", r.Ts, r.Data)
		bytes += int64(r.EncodedSize())
	}
	fmt.Fprintf(os.Stderr, "datagen: %d %s records over [%v, %v), %d encoded bytes\n",
		len(recs), *dataset, *start, *start+*span, bytes)
}
