package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mkSummary(rev string, makespanNS, steadyNS int64) summaryJSON {
	return summaryJSON{
		Tool: "redoop-bench",
		Rev:  rev,
		Figures: []figureJSON{{
			Name:  "Figure 6",
			Query: "q1",
			Panels: []panelJSON{{
				Overlap: 0.9,
				Series: []seriesJSON{{
					System:       "Redoop",
					MakespanNS:   makespanNS,
					MeanSteadyNS: steadyNS,
				}},
			}},
		}},
		Health: []queryHealthJSON{{
			Query: "q1", Status: "OK", Recurrences: 5,
		}},
	}
}

func TestSanitizeRev(t *testing.T) {
	for in, want := range map[string]string{
		"abc123":      "abc123",
		"feature/x y": "feature-x-y",
		"v1.2.3-rc1":  "v1.2.3-rc1",
		"..":          "..",
		"a\\b:c":      "a-b-c",
	} {
		if got := sanitizeRev(in); got != want {
			t.Errorf("sanitizeRev(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFindPriorBench(t *testing.T) {
	dir := t.TempDir()
	if got, err := findPriorBench(dir, ""); err != nil || got != "" {
		t.Fatalf("empty dir: got %q err %v", got, err)
	}
	older := filepath.Join(dir, "BENCH_old.json")
	newer := filepath.Join(dir, "BENCH_new.json")
	if err := os.WriteFile(older, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newer, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Make mod times unambiguous.
	now := time.Now()
	os.Chtimes(older, now.Add(-time.Hour), now.Add(-time.Hour))
	os.Chtimes(newer, now, now)
	if got, err := findPriorBench(dir, ""); err != nil || got != newer {
		t.Errorf("prior = %q err %v, want %q", got, err, newer)
	}
	// The entry being written is excluded, so the next-newest wins.
	if got, err := findPriorBench(dir, newer); err != nil || got != older {
		t.Errorf("prior excluding newest = %q err %v, want %q", got, err, older)
	}
	// Non-BENCH files are ignored.
	os.WriteFile(filepath.Join(dir, "notes.json"), []byte("{}"), 0o644)
	if got, _ := findPriorBench(dir, newer); got != older {
		t.Errorf("prior with stray file = %q, want %q", got, older)
	}
}

func TestCompareSummaries(t *testing.T) {
	old := mkSummary("a", 1000, 100)
	cur := mkSummary("b", 1200, 90)
	rows := compareSummaries(old, cur)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (makespan + meanSteady)", len(rows))
	}
	byMetric := map[string]deltaRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	if r := byMetric["makespan"]; r.Pct != 20 {
		t.Errorf("makespan pct = %v, want +20", r.Pct)
	}
	if r := byMetric["meanSteady"]; r.Pct != -10 {
		t.Errorf("meanSteady pct = %v, want -10", r.Pct)
	}

	// A series missing on one side is skipped, not an error.
	cur2 := cur
	cur2.Figures = append([]figureJSON(nil), cur.Figures...)
	cur2.Figures[0].Name = "Figure 7"
	if rows := compareSummaries(old, cur2); len(rows) != 0 {
		t.Errorf("disjoint figures produced %d rows, want 0", len(rows))
	}
}

func TestRegressReportThresholds(t *testing.T) {
	rows := []deltaRow{
		{Key: seriesKey{"Figure 6", 0.9, "Redoop"}, Metric: "makespan", OldNS: 1000, NewNS: 1080, Pct: 8},
	}
	var buf bytes.Buffer
	soft, hard := regressReport(&buf, "a", "b", rows, nil, nil, nil, nil, nil, 5, 15)
	if !soft || hard {
		t.Errorf("8%% over soft=5 hard=15: soft=%v hard=%v, want soft only", soft, hard)
	}
	if !strings.Contains(buf.String(), "<< regression") {
		t.Errorf("report lacks soft marker:\n%s", buf.String())
	}

	rows[0].Pct = 20
	buf.Reset()
	soft, hard = regressReport(&buf, "a", "b", rows, nil, nil, nil, nil, nil, 5, 15)
	if !hard {
		t.Errorf("20%% over hard=15: hard=%v, want true", hard)
	}
	if !strings.Contains(buf.String(), "HARD REGRESSION") {
		t.Errorf("report lacks hard marker:\n%s", buf.String())
	}

	rows[0].Pct = -8
	buf.Reset()
	soft, hard = regressReport(&buf, "a", "b", rows, nil, nil, nil, nil, nil, 5, 15)
	if soft || hard {
		t.Errorf("improvement flagged as regression: soft=%v hard=%v", soft, hard)
	}
	if !strings.Contains(buf.String(), "(improved)") {
		t.Errorf("report lacks improvement marker:\n%s", buf.String())
	}
}

func TestRegressReportHealthLines(t *testing.T) {
	hrows := []healthDelta{{
		Query:     "q1",
		MissesOld: 0, MissesNew: 2,
		StatusOld: "OK", StatusNew: "AT_RISK",
	}}
	var buf bytes.Buffer
	regressReport(&buf, "a", "b", []deltaRow{{Key: seriesKey{"f", 0.9, "Redoop"}, Metric: "makespan", OldNS: 1, NewNS: 1}}, hrows, nil, nil, nil, nil, 5, 15)
	out := buf.String()
	if !strings.Contains(out, "deadline misses 0 -> 2") || !strings.Contains(out, "status OK -> AT_RISK") {
		t.Errorf("health lines missing:\n%s", out)
	}
}

func TestCompareProfile(t *testing.T) {
	sf := func(v float64) *float64 { return &v }
	old := summaryJSON{Profile: &profileJSON{
		CritPathNS: 1000, TimeSavedNS: 500, LedgerOK: true, SerialFraction: sf(0.2),
	}}
	cur := summaryJSON{Profile: &profileJSON{
		CritPathNS: 1200, TimeSavedNS: 400, LedgerOK: true, SerialFraction: sf(0.3),
	}}
	notes := compareProfile(old, cur)
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"critical path", "+20.0%", "cache time saved", "-20.0%", "serial fraction 0.200 -> 0.300"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}

	// A ledger violation in the new entry is reported even with no
	// prior profile to compare against.
	cur.Profile.LedgerOK = false
	notes = compareProfile(summaryJSON{}, cur)
	if len(notes) != 1 || !strings.Contains(notes[0], "VIOLATED") {
		t.Errorf("violation notes = %v", notes)
	}

	// No profile on the new side: nothing to say.
	if notes := compareProfile(old, summaryJSON{}); notes != nil {
		t.Errorf("nil profile produced notes: %v", notes)
	}
}

func TestCompareCosts(t *testing.T) {
	cur := summaryJSON{Costs: &costsJSON{
		ConservationOK: true,
		Queries: []costQueryJSON{{
			Query: "q1", TotalComputeNS: 1200, SavedNS: 400,
		}},
	}}
	old := summaryJSON{Costs: &costsJSON{
		ConservationOK: true,
		Queries: []costQueryJSON{{
			Query: "q1", TotalComputeNS: 1000, SavedNS: 500,
		}},
	}}
	notes := compareCosts(old, cur)
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"q1 compute", "+20.0%", "cache saving", "-20.0%"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}

	// A conservation violation in the new entry is reported even with
	// no prior costs block to compare against.
	cur.Costs.ConservationOK = false
	notes = compareCosts(summaryJSON{}, cur)
	if len(notes) != 1 || !strings.Contains(notes[0], "VIOLATED") {
		t.Errorf("violation notes = %v", notes)
	}

	// No costs block on the new side: nothing to say.
	if notes := compareCosts(old, summaryJSON{}); notes != nil {
		t.Errorf("nil costs produced notes: %v", notes)
	}
}

func TestCompareLineage(t *testing.T) {
	old := summaryJSON{Lineage: &lineageJSON{
		Nodes: 100, Edges: 200, DistinctFingerprints: 2, Rebuilds: 0,
	}}
	cur := summaryJSON{Lineage: &lineageJSON{
		Nodes: 120, Edges: 260, DistinctFingerprints: 3, Rebuilds: 1,
	}}
	notes := compareLineage(old, cur)
	joined := strings.Join(notes, "\n")
	for _, want := range []string{
		"derivations 100 -> 120", "edges 200 -> 260",
		"fingerprints 2 -> 3", "rebuilds 0 -> 1",
		"rebuilds on a clean run",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}

	// Rebuilds under chaos are expected, not called out.
	cur.Chaos = &chaosJSON{}
	notes = compareLineage(summaryJSON{}, cur)
	if len(notes) != 0 {
		t.Errorf("chaos-run rebuilds produced notes: %v", notes)
	}

	// No lineage block on the new side: nothing to say.
	if notes := compareLineage(old, summaryJSON{}); notes != nil {
		t.Errorf("nil lineage produced notes: %v", notes)
	}
}

// TestTrajectoryToleratesOldFormatEntries pins the schema-evolution
// contract: a prior BENCH_<rev>.json written before the profile,
// costs and lineage blocks existed (none of those keys at all) must
// still load and compare cleanly against a current entry that carries
// them — the new blocks are informational-only for such pairs, never
// an error.
func TestTrajectoryToleratesOldFormatEntries(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `{
		"tool": "redoop-bench",
		"rev": "ancient",
		"config": {"workers": 10},
		"figures": [{
			"name": "Figure 6", "query": "q1",
			"panels": [{"overlap": 0.9, "series": [{
				"system": "Redoop", "makespanNS": 1000, "meanSteadyNS": 100
			}]}]
		}],
		"health": [{"query": "q1", "status": "OK"}]
	}`
	prior := filepath.Join(dir, "BENCH_ancient.json")
	if err := os.WriteFile(prior, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := readSummary(prior)
	if err != nil {
		t.Fatalf("old-format entry failed to load: %v", err)
	}
	if old.Profile != nil || old.Costs != nil || old.Lineage != nil {
		t.Fatalf("absent blocks decoded non-nil: profile=%v costs=%v lineage=%v", old.Profile, old.Costs, old.Lineage)
	}

	cur := mkSummary("modern", 1000, 100)
	cur.Profile = &profileJSON{CritPathNS: 1200, LedgerOK: true}
	cur.Costs = &costsJSON{ConservationOK: true, Queries: []costQueryJSON{{Query: "q1", TotalComputeNS: 900}}}
	cur.Lineage = &lineageJSON{Nodes: 100, Edges: 200, DistinctFingerprints: 1}

	// End-to-end through runTrajectory: the comparison must neither
	// error nor let the schema gap masquerade as a regression.
	time.Sleep(10 * time.Millisecond)
	var buf bytes.Buffer
	hard, err := runTrajectory(&buf, dir, "modern", cur, 5, 15, true)
	if err != nil {
		t.Fatalf("comparison against old-format entry errored: %v", err)
	}
	if hard {
		t.Errorf("old-format gap reported as hard regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ancient -> modern") {
		t.Errorf("report lacks rev labels:\n%s", buf.String())
	}

	// And the pure comparison helpers are nil-tolerant both ways.
	if notes := compareCosts(old, cur); len(notes) != 0 {
		t.Errorf("old entry without costs produced comparison notes: %v", notes)
	}
	if notes := compareProfile(old, cur); len(notes) != 0 {
		t.Errorf("old entry without profile produced comparison notes: %v", notes)
	}
	if notes := compareLineage(old, cur); len(notes) != 0 {
		t.Errorf("old entry without lineage produced comparison notes: %v", notes)
	}
}

func TestRunTrajectoryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer

	// First entry: nothing to compare against, no regression.
	hard, err := runTrajectory(&buf, dir, "rev1", mkSummary("", 1000, 100), 5, 15, true)
	if err != nil || hard {
		t.Fatalf("first entry: hard=%v err=%v", hard, err)
	}
	if !strings.Contains(buf.String(), "first entry") {
		t.Errorf("first entry report:\n%s", buf.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_rev1.json")); err != nil {
		t.Fatalf("BENCH_rev1.json not written: %v", err)
	}

	// Second entry regresses hard.
	time.Sleep(10 * time.Millisecond)
	buf.Reset()
	hard, err = runTrajectory(&buf, dir, "rev2", mkSummary("", 2000, 200), 5, 15, true)
	if err != nil {
		t.Fatal(err)
	}
	if !hard {
		t.Errorf("2x slowdown not a hard regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "rev1 -> rev2") {
		t.Errorf("report lacks rev labels:\n%s", buf.String())
	}

	// Re-running the same revision compares against the previous
	// revision, not its own just-written file.
	time.Sleep(10 * time.Millisecond)
	buf.Reset()
	hard, err = runTrajectory(&buf, dir, "rev2", mkSummary("", 2000, 200), 5, 15, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rev1 -> rev2") {
		t.Errorf("same-rev rerun compared against itself:\n%s", buf.String())
	}
	if !hard {
		t.Errorf("same-rev rerun lost the hard verdict:\n%s", buf.String())
	}

	// A recovered third entry is clean against the regressed second.
	time.Sleep(10 * time.Millisecond)
	buf.Reset()
	hard, err = runTrajectory(&buf, dir, "rev3", mkSummary("", 1000, 100), 5, 15, true)
	if err != nil || hard {
		t.Errorf("recovery flagged: hard=%v err=%v\n%s", hard, err, buf.String())
	}
}

func TestCompareReuse(t *testing.T) {
	old := summaryJSON{Reuse: &reuseJSON{
		TotalMapTasksOff: 72, TotalMapTasksOn: 48, ExactHits: 7, SubsumHits: 3,
		Queries: []reuseQueryJSON{
			{Query: "fig6-a", OutputsEqual: true},
			{Query: "fig6-b", MapTasksOn: 0, OutputsEqual: true},
		},
	}}
	cur := summaryJSON{Reuse: &reuseJSON{
		TotalMapTasksOff: 72, TotalMapTasksOn: 60, ExactHits: 5, SubsumHits: 3,
		Queries: []reuseQueryJSON{
			{Query: "fig6-a", OutputsEqual: true},
			{Query: "fig6-b", MapTasksOn: 4, OutputsEqual: false},
		},
	}}
	notes := compareReuse(old, cur)
	joined := strings.Join(notes, "\n")
	for _, want := range []string{
		"fig6-b outputs DIVERGED",
		"sibling fig6-b ran 4 map tasks",
		"map tasks off/on 72/48 -> 72/60",
		"hits exact/subsume 7/3 -> 5/3",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
	// A healthy new entry against a pre-schema old entry says nothing.
	if notes := compareReuse(summaryJSON{}, old); len(notes) != 0 {
		t.Errorf("healthy entry vs pre-schema old produced notes: %v", notes)
	}
	// No reuse block on the new side: nothing to say.
	if notes := compareReuse(old, summaryJSON{}); notes != nil {
		t.Errorf("nil reuse produced notes: %v", notes)
	}
}
