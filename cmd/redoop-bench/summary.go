package main

// The -json-out run summary: a stable, machine-readable record of one
// bench invocation, designed so successive runs can accumulate into a
// trajectory (one JSON document per commit) without parsing the text
// tables.

import (
	"encoding/json"
	"io"
	"sort"
	"strings"

	"redoop/internal/account"
	"redoop/internal/experiments"
	"redoop/internal/health"
	"redoop/internal/lineage"
	"redoop/internal/obs"
	"redoop/internal/profile"
)

type windowJSON struct {
	Window     int   `json:"window"`
	ResponseNS int64 `json:"responseNS"`
	ShuffleNS  int64 `json:"shuffleNS"`
	ReduceNS   int64 `json:"reduceNS"`
}

type seriesJSON struct {
	System string `json:"system"`
	// MakespanNS sums every window's response time; MeanSteadyNS
	// averages from window 2 onward (the paper's speedup basis).
	MakespanNS     int64        `json:"makespanNS"`
	MeanSteadyNS   int64        `json:"meanSteadyNS"`
	TotalShuffleNS int64        `json:"totalShuffleNS"`
	TotalReduceNS  int64        `json:"totalReduceNS"`
	Windows        []windowJSON `json:"windows"`
}

type panelJSON struct {
	Overlap float64      `json:"overlap"`
	Series  []seriesJSON `json:"series"`
}

type figureJSON struct {
	Name   string      `json:"name"`
	Query  string      `json:"query"`
	Panels []panelJSON `json:"panels"`
}

type configJSON struct {
	Workers          int   `json:"workers"`
	ExecWorkers      int   `json:"execWorkers"`
	MapSlots         int   `json:"mapSlots"`
	ReduceSlots      int   `json:"reduceSlots"`
	Reducers         int   `json:"reducers"`
	Windows          int   `json:"windows"`
	WindowDurNS      int64 `json:"windowDurNS"`
	RecordsPerWindow int   `json:"recordsPerWindow"`
	BlockSize        int64 `json:"blockSize"`
	Seed             int64 `json:"seed"`
}

// metricsJSON aggregates the run's registry across every series label:
// the cache economy and the data-movement totals in one glance.
type metricsJSON struct {
	CacheHits     float64 `json:"cacheHits"`
	CacheMisses   float64 `json:"cacheMisses"`
	CacheLost     float64 `json:"cacheLost"`
	CacheHitRatio float64 `json:"cacheHitRatio"`
	ShuffleBytes  float64 `json:"shuffleBytes"`
	MapTasks      float64 `json:"mapTasks"`
	ReduceTasks   float64 `json:"reduceTasks"`
	DFSReadBytes  float64 `json:"dfsReadBytes"`
	DFSWriteBytes float64 `json:"dfsWriteBytes"`
}

// queryHealthJSON is one query's SLO aggregate over the whole run —
// the health monitor's end-of-run snapshot, folded into the bench
// trajectory so regressions in deadline behaviour and forecast
// quality are visible across commits, not just raw timings.
type queryHealthJSON struct {
	Query            string `json:"query"`
	Status           string `json:"status"`
	Recurrences      int    `json:"recurrences"`
	DeadlineMisses   int    `json:"deadlineMisses"`
	MaxMissStreak    int    `json:"maxMissStreak"`
	Anomalies        int    `json:"anomalies"`
	AdaptivityMisses int    `json:"adaptivityMisses"`
	MinHeadroomNS    int64  `json:"minHeadroomNS"`
	LastLagUnits     int64  `json:"lastLagUnits"`
}

// parallelJSON records the -par-bench wall-clock comparison: the same
// Figure-6-scale workload run serially and with a parallel compute
// pool. Wall-clock numbers are host-dependent (noisy across machines),
// so the trajectory comparison never gates on them; virtualEqual is
// the invariant worth alarming on.
type parallelJSON struct {
	Workers        int     `json:"workers"`
	SerialWallNS   int64   `json:"serialWallNS"`
	ParallelWallNS int64   `json:"parallelWallNS"`
	Speedup        float64 `json:"speedup"`
	VirtualEqual   bool    `json:"virtualEqual"`
}

// profileQueryJSON is one query's critical-path aggregate.
type profileQueryJSON struct {
	Query       string `json:"query"`
	Recurrences int    `json:"recurrences"`
	CritPathNS  int64  `json:"critPathNS"`
	TimeSavedNS int64  `json:"timeSavedNS"`
}

// profileJSON folds the critical-path profiler into the trajectory:
// total critical-path length across every recurrence the run executed,
// the cache-benefit ledger's total time saved, and — when -par-bench
// ran with more than one worker — the Amdahl-style serial fraction
// implied by the measured wall-clock speedup. LedgerOK records whether
// every reused pane's modeled saving was non-negative and every
// critical path tiled its recurrence exactly.
type profileJSON struct {
	CritPathNS     int64              `json:"critPathNS"`
	TimeSavedNS    int64              `json:"timeSavedNS"`
	ReusedPanes    int                `json:"reusedPanes"`
	LedgerOK       bool               `json:"ledgerOK"`
	SerialFraction *float64           `json:"serialFraction,omitempty"`
	Queries        []profileQueryJSON `json:"queries,omitempty"`
}

// costQueryJSON is one query's cost-ledger aggregate over the whole
// run: virtual compute per the account ledger, attributed IO bytes,
// cache occupancy, and the recompute time its cache hits saved.
type costQueryJSON struct {
	Query             string  `json:"query"`
	Tenant            string  `json:"tenant,omitempty"`
	TotalComputeNS    int64   `json:"totalComputeNS"`
	SlotComputeNS     int64   `json:"slotComputeNS"`
	IOBytes           int64   `json:"ioBytes"`
	CacheByteSeconds  float64 `json:"cacheByteSeconds"`
	PeakResidentBytes int64   `json:"peakResidentBytes"`
	SavedNS           int64   `json:"savedNS"`
	CacheROI          float64 `json:"cacheROI"`
}

// costsJSON folds the resource-accounting ledger into the trajectory:
// per-query cost rows, per-tenant rollups, and the conservation check
// (attributed slot compute must not exceed the clusters' busy time,
// and every cache residency must be closed exactly once or still
// open). ConservationOK=false in a new entry is surfaced loudly by the
// trajectory comparison.
type costsJSON struct {
	ConservationOK bool                  `json:"conservationOK"`
	ClusterBusyNS  int64                 `json:"clusterBusyNS"`
	SlotComputeNS  int64                 `json:"slotComputeNS"`
	Queries        []costQueryJSON       `json:"queries,omitempty"`
	Tenants        []account.TenantCosts `json:"tenants,omitempty"`
}

// lineageJSON folds the provenance store's end-of-run totals into the
// trajectory: how many derivation nodes and input edges the run
// recorded, how many distinct plan fingerprints it saw, and how many
// cache entries had to be rebuilt after a fault. A rebuild count that
// jumps between revisions on a clean (non-chaos) run is a recovery
// path firing where none should.
type lineageJSON struct {
	Nodes                int `json:"nodes"`
	Edges                int `json:"edges"`
	Batches              int `json:"batches"`
	DistinctFingerprints int `json:"distinctFingerprints"`
	Rebuilds             int `json:"rebuilds"`
	Evicted              int `json:"evicted"`
	Faults               int `json:"faults"`
}

// reuseQueryJSON is one query's share of the -reuse comparison: map
// tasks with the cross-query reuse index detached and attached, the
// reuse-on pane accounting, the ledger's cross-query attribution, and
// whether the two variants' window outputs were byte-identical.
type reuseQueryJSON struct {
	Query          string `json:"query"`
	MapTasksOff    int    `json:"mapTasksOff"`
	MapTasksOn     int    `json:"mapTasksOn"`
	NewPanesOn     int    `json:"newPanesOn"`
	ReusedPanesOn  int    `json:"reusedPanesOn"`
	CrossQueryHits int    `json:"crossQueryHits"`
	CrossSavedNS   int64  `json:"crossSavedNS"`
	OutputsEqual   bool   `json:"outputsEqual"`
}

// reuseJSON folds the -reuse cross-query reuse comparison into the
// trajectory: the shared-stream workload's map-task totals with the
// index off and on, the index counters, and per-query rows. Every
// field is a virtual quantity metered at serial commit points, so the
// block is byte-identical across -workers settings — the CI smoke step
// diffs exactly that.
type reuseJSON struct {
	TotalMapTasksOff int              `json:"totalMapTasksOff"`
	TotalMapTasksOn  int              `json:"totalMapTasksOn"`
	ExactHits        int              `json:"exactHits"`
	SubsumHits       int              `json:"subsumHits"`
	Published        int              `json:"published"`
	Entries          int              `json:"entries"`
	Queries          []reuseQueryJSON `json:"queries"`
}

// reuseSummary folds an off/on pair of reuse runs into the summary
// schema; nil in, nil out.
func reuseSummary(off, on *experiments.ReuseReport) *reuseJSON {
	if off == nil || on == nil {
		return nil
	}
	rj := &reuseJSON{
		TotalMapTasksOff: off.TotalMapTasks(),
		TotalMapTasksOn:  on.TotalMapTasks(),
	}
	if on.Index != nil {
		rj.ExactHits = on.Index.ExactHits
		rj.SubsumHits = on.Index.SubsumHits
		rj.Published = on.Index.Published
		rj.Entries = on.Index.Entries
	}
	for i := range on.Queries {
		o, n := off.Queries[i], on.Queries[i]
		rj.Queries = append(rj.Queries, reuseQueryJSON{
			Query:          n.Query,
			MapTasksOff:    o.MapTasks,
			MapTasksOn:     n.MapTasks,
			NewPanesOn:     n.NewPanes,
			ReusedPanesOn:  n.ReusedPanes,
			CrossQueryHits: n.CrossQueryHits,
			CrossSavedNS:   n.CrossSavedNS,
			OutputsEqual:   o.OutputDigest == n.OutputDigest,
		})
	}
	return rj
}

type summaryJSON struct {
	Tool string `json:"tool"`
	// Rev identifies the revision a trajectory entry was measured at
	// (set in trajectory mode; empty for plain -json-out).
	Rev             string            `json:"rev,omitempty"`
	Config          configJSON        `json:"config"`
	Figures         []figureJSON      `json:"figures"`
	HeadlineSpeedup *float64          `json:"headlineSpeedup,omitempty"`
	Metrics         *metricsJSON      `json:"metrics,omitempty"`
	Health          []queryHealthJSON `json:"health,omitempty"`
	Parallel        *parallelJSON     `json:"parallel,omitempty"`
	Profile         *profileJSON      `json:"profile,omitempty"`
	// Chaos records a -chaos verification run: the seeded fault
	// schedule and the oracle's per-regime verdicts (full detail with
	// -chaos-report).
	Chaos *chaosJSON `json:"chaos,omitempty"`
	// Costs is the per-query resource-accounting block; absent in
	// entries written before the ledger existed, which the trajectory
	// comparison tolerates.
	Costs *costsJSON `json:"costs,omitempty"`
	// Lineage is the provenance-store block; absent in entries written
	// before the store existed, which the trajectory comparison
	// tolerates.
	Lineage *lineageJSON `json:"lineage,omitempty"`
	// Reuse is the -reuse cross-query reuse block; absent unless the
	// flag was set (and in entries written before the block existed,
	// which the trajectory comparison tolerates).
	Reuse *reuseJSON `json:"reuse,omitempty"`
}

func seriesSummary(s experiments.Series) seriesJSON {
	out := seriesJSON{
		System:         s.System,
		MakespanNS:     int64(s.TotalResponse()),
		MeanSteadyNS:   int64(s.MeanResponse(2)),
		TotalShuffleNS: int64(s.TotalShuffle()),
		TotalReduceNS:  int64(s.TotalReduce()),
	}
	for _, w := range s.Windows {
		out.Windows = append(out.Windows, windowJSON{
			Window:     w.Window,
			ResponseNS: int64(w.Response),
			ShuffleNS:  int64(w.Shuffle),
			ReduceNS:   int64(w.Reduce),
		})
	}
	return out
}

func buildSummary(cfg experiments.Config, figs []*experiments.FigResult, headline *float64, reg *obs.Registry) summaryJSON {
	sum := summaryJSON{
		Tool: "redoop-bench",
		Config: configJSON{
			Workers:          cfg.Workers,
			ExecWorkers:      cfg.ExecWorkers,
			MapSlots:         cfg.MapSlots,
			ReduceSlots:      cfg.ReduceSlots,
			Reducers:         cfg.Reducers,
			Windows:          cfg.Windows,
			WindowDurNS:      int64(cfg.WindowDur),
			RecordsPerWindow: cfg.RecordsPerWindow,
			BlockSize:        cfg.BlockSize,
			Seed:             cfg.Seed,
		},
		Figures:         []figureJSON{},
		HeadlineSpeedup: headline,
	}
	for _, f := range figs {
		fj := figureJSON{Name: f.Name, Query: f.Query}
		for _, p := range f.Panels {
			pj := panelJSON{Overlap: p.Overlap}
			for _, s := range p.Series {
				pj.Series = append(pj.Series, seriesSummary(s))
			}
			fj.Panels = append(fj.Panels, pj)
		}
		sum.Figures = append(sum.Figures, fj)
	}
	if reg != nil {
		m := metricsJSON{}
		for _, c := range reg.Counters() {
			v := c.Value()
			switch c.Name() {
			case "redoop_cache_lookups_total":
				switch labelValue(c.Labels(), "result") {
				case "hit":
					m.CacheHits += v
				case "miss":
					m.CacheMisses += v
				case "lost":
					m.CacheLost += v
				}
			case "redoop_shuffle_bytes_total":
				m.ShuffleBytes += v
			case "redoop_map_tasks_total":
				m.MapTasks += v
			case "redoop_reduce_tasks_total":
				m.ReduceTasks += v
			case "redoop_dfs_read_bytes_total":
				m.DFSReadBytes += v
			case "redoop_dfs_write_bytes_total":
				m.DFSWriteBytes += v
			}
		}
		if total := m.CacheHits + m.CacheMisses + m.CacheLost; total > 0 {
			m.CacheHitRatio = m.CacheHits / total
		}
		sum.Metrics = &m
	}
	return sum
}

// parallelSummary folds a -par-bench measurement into the summary
// schema; nil in, nil out.
func parallelSummary(par *experiments.ParallelSpeedupResult) *parallelJSON {
	if par == nil {
		return nil
	}
	return &parallelJSON{
		Workers:        par.Workers,
		SerialWallNS:   par.SerialWall.Nanoseconds(),
		ParallelWallNS: par.ParallelWall.Nanoseconds(),
		Speedup:        par.Speedup,
		VirtualEqual:   par.VirtualEqual,
	}
}

// profileSummary reconstructs the run's task DAG from the observer's
// span and event streams and folds the profiler aggregates into the
// summary schema. Returns nil when no recurrence spans were recorded
// (e.g. an observer-less run).
func profileSummary(ob *obs.Observer, par *experiments.ParallelSpeedupResult) *profileJSON {
	if ob == nil {
		return nil
	}
	p := profile.Analyze(ob.Tracer.Events(), ob.Events.Events())
	if len(p.Recurrences) == 0 {
		return nil
	}
	pj := &profileJSON{
		CritPathNS:  int64(p.CritPathTotal()),
		TimeSavedNS: int64(p.TimeSaved()),
		ReusedPanes: len(p.Ledger),
		LedgerOK:    p.CheckInvariants() == nil,
	}
	if par != nil && par.Workers > 1 {
		f := profile.SerialFraction(par.Speedup, par.Workers)
		pj.SerialFraction = &f
	}
	names := make([]string, 0, len(p.Queries))
	for q := range p.Queries {
		names = append(names, q)
	}
	sort.Strings(names)
	for _, q := range names {
		qp := p.Queries[q]
		pj.Queries = append(pj.Queries, profileQueryJSON{
			Query:       q,
			Recurrences: len(qp.Recurrences),
			CritPathNS:  int64(qp.CritPath),
			TimeSavedNS: int64(qp.TimeSaved),
		})
	}
	return pj
}

// costsSummary folds the account ledger's end-of-run snapshot into the
// summary schema; nil ledger (or one that metered nothing) in, nil
// out. busyNS is the summed Node.Load() across every engine the run
// built — the conservation denominator.
func costsSummary(acct *account.Ledger, busyNS int64) *costsJSON {
	if acct == nil {
		return nil
	}
	snaps := acct.Snapshot()
	if len(snaps) == 0 {
		return nil
	}
	cj := &costsJSON{
		ConservationOK: acct.CheckConservation(busyNS) == nil,
		ClusterBusyNS:  busyNS,
		SlotComputeNS:  acct.SlotComputeNS(),
	}
	// Tenant rollups only when something is actually tenanted — an
	// all-anonymous run would just duplicate the query totals.
	for _, qc := range snaps {
		if qc.Tenant != "" {
			cj.Tenants = account.RollupTenants(snaps)
			break
		}
	}
	for _, qc := range snaps {
		var ioBytes int64
		for _, b := range qc.IOBytes {
			ioBytes += b
		}
		cj.Queries = append(cj.Queries, costQueryJSON{
			Query:             qc.Query,
			Tenant:            qc.Tenant,
			TotalComputeNS:    qc.TotalComputeNS,
			SlotComputeNS:     qc.SlotComputeNS,
			IOBytes:           ioBytes,
			CacheByteSeconds:  qc.CacheByteSeconds,
			PeakResidentBytes: qc.PeakResidentBytes,
			SavedNS:           qc.SavedNS,
			CacheROI:          qc.CacheROI,
		})
	}
	return cj
}

// lineageSummary folds the provenance store's end-of-run stats into
// the summary schema; nil store (or one that recorded nothing) in, nil
// out.
func lineageSummary(lin *lineage.Store) *lineageJSON {
	if lin == nil {
		return nil
	}
	st := lin.Stats()
	if st.Nodes == 0 && st.Batches == 0 {
		return nil
	}
	return &lineageJSON{
		Nodes:                st.Nodes,
		Edges:                st.Edges,
		Batches:              st.Batches,
		DistinctFingerprints: st.DistinctFingerprints,
		Rebuilds:             st.Rebuilds,
		Evicted:              st.Evicted,
		Faults:               st.Faults,
	}
}

// healthSummary folds the monitor's end-of-run snapshot into the
// trajectory schema.
func healthSummary(mon *health.Monitor) []queryHealthJSON {
	if mon == nil {
		return nil
	}
	var out []queryHealthJSON
	for _, st := range mon.Snapshot() {
		out = append(out, queryHealthJSON{
			Query:            st.Query,
			Status:           string(st.Status),
			Recurrences:      st.Recurrences,
			DeadlineMisses:   st.DeadlineMisses,
			MaxMissStreak:    st.MaxMissStreak,
			Anomalies:        st.Anomalies,
			AdaptivityMisses: st.AdaptivityMisses,
			MinHeadroomNS:    st.MinHeadroomNS,
			LastLagUnits:     st.WindowLagUnits,
		})
	}
	return out
}

func labelValue(labels []obs.Label, key string) string {
	for _, l := range labels {
		if strings.EqualFold(l.Key, key) {
			return l.Value
		}
	}
	return ""
}

func writeSummary(w io.Writer, sum summaryJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}
