package main

// The -chaos verification mode: instead of regenerating figures, run
// every engine regime under a deterministic seeded fault schedule with
// the differential window oracle attached, report per-regime verdicts,
// and (with -chaos-report) fold the schedule and every per-recurrence
// verdict into the -json-out summary.

import (
	"fmt"
	"io"

	"redoop/internal/chaos"
	"redoop/internal/experiments"
	"redoop/internal/oracle"
)

// chaosRegimeJSON is one regime's verified series in the run summary.
type chaosRegimeJSON struct {
	Regime      string `json:"regime"`
	Profile     string `json:"profile"`
	Windows     int    `json:"windows"`
	Divergences int    `json:"divergences"`
	// Error carries the oracle failure that aborted the series, if any.
	Error string `json:"error,omitempty"`
	// Schedule and Verdicts are included with -chaos-report.
	Schedule *chaos.Schedule  `json:"schedule,omitempty"`
	Verdicts []oracle.Verdict `json:"verdicts,omitempty"`
	// FirstDivergence repeats the first failing verdict for quick
	// triage without scanning the verdict list.
	FirstDivergence *oracle.Verdict `json:"firstDivergence,omitempty"`
}

// chaosJSON is the -chaos section of the run summary.
type chaosJSON struct {
	Seed    int64             `json:"seed"`
	Profile string            `json:"profile"`
	Regimes []chaosRegimeJSON `json:"regimes"`
}

// runChaos runs every chaos regime under the given SEED[:profile]
// spec. With the default (mixed) profile each regime gets the profile
// that exercises it (the speculative regime needs stragglers); an
// explicitly chosen profile applies to all regimes. Returns the
// summary section and whether any regime diverged.
func runChaos(w io.Writer, cfg experiments.Config, spec string, report, quiet bool) (*chaosJSON, bool, error) {
	_, seed, profile, err := chaos.ParseSpec(spec)
	if err != nil {
		return nil, false, err
	}
	cj := &chaosJSON{Seed: seed, Profile: profile}
	failed := false
	fmt.Fprintf(w, "chaos: seed %d, profile %s, %d windows per regime\n", seed, profile, cfg.Windows)
	for _, regime := range experiments.ChaosRegimes {
		p := profile
		if p == chaos.ProfileMixed {
			p = experiments.ProfileForRegime(regime)
		}
		sched, err := chaos.Generate(seed, p, cfg.Windows, cfg.Workers)
		if err != nil {
			return nil, false, err
		}
		rcfg := cfg
		rcfg.Chaos = sched
		verdicts, runErr := rcfg.RunChaosRegime(regime)
		rj := chaosRegimeJSON{Regime: regime, Profile: p, Windows: len(verdicts)}
		for i := range verdicts {
			if !verdicts[i].OK() {
				rj.Divergences++
				if rj.FirstDivergence == nil {
					rj.FirstDivergence = &verdicts[i]
				}
			}
		}
		if report {
			rj.Schedule = sched
			rj.Verdicts = verdicts
		}
		if runErr != nil {
			rj.Error = runErr.Error()
			failed = true
			fmt.Fprintf(w, "chaos: regime %-12s FAILED after %d window(s): %v\n", regime, len(verdicts), runErr)
		} else if rj.Divergences > 0 {
			// Divergences without a run error cannot happen today (the
			// series aborts on the first bad verdict), but guard anyway.
			failed = true
			fmt.Fprintf(w, "chaos: regime %-12s %d/%d windows verified, %d DIVERGED\n",
				regime, len(verdicts)-rj.Divergences, len(verdicts), rj.Divergences)
		} else {
			fmt.Fprintf(w, "chaos: regime %-12s %d/%d windows verified (%d scheduled faults)\n",
				regime, len(verdicts), len(verdicts), len(sched.Actions))
		}
		if !quiet && rj.FirstDivergence != nil {
			d := rj.FirstDivergence
			fmt.Fprintf(w, "chaos:   first divergence at window %d: match=%v", d.Recurrence+1, d.Match)
			if d.FirstDiff != nil {
				fmt.Fprintf(w, " firstDiff[%d] engine=%s oracle=%s", d.FirstDiff.Index, d.FirstDiff.EngineKV, d.FirstDiff.OracleKV)
			}
			fmt.Fprintln(w)
			for _, viol := range d.Violations {
				fmt.Fprintf(w, "chaos:   violation: %s\n", viol)
			}
		}
		cj.Regimes = append(cj.Regimes, rj)
	}
	if !failed {
		fmt.Fprintf(w, "chaos: all regimes verified — every window byte-identical to recomputation, zero invariant violations\n")
	}
	return cj, failed, nil
}
