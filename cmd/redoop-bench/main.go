// Command redoop-bench regenerates the paper's evaluation figures
// (Figures 6–9 of "Redoop: Supporting Recurring Queries in Hadoop",
// EDBT 2014) on the simulated cluster and prints the measured series
// as text tables.
//
// Usage:
//
//	redoop-bench [-fig 6|7|8|9|all] [-windows N] [-records N]
//	             [-nodes N] [-reducers N] [-seed N]
//	             [-workers N] [-par-bench N] [-reuse]
//	             [-chaos SEED[:profile]] [-chaos-report]
//	             [-metrics-out FILE] [-trace-out FILE]
//	             [-json-out FILE] [-serve ADDR]
//	             [-bench-dir DIR] [-rev REV]
//	             [-regress-soft PCT] [-regress-hard PCT]
//
// -nodes sets the simulated cluster's worker node count. -workers sets
// the host-side parallel compute pool each engine uses (0 = GOMAXPROCS,
// 1 = serial); it changes only wall-clock time — every virtual result
// is byte-identical across settings. -par-bench N additionally runs the
// Figure-6-scale workload serially and at N pool workers, prints the
// measured wall-clock speedup, and records it in the run summary.
//
// -reuse additionally runs the cross-query reuse workload — two
// identical Figure-6 aggregations plus a 2x tumbling roll-up over one
// shared WCC stream — twice, with the fingerprint-keyed reuse index
// (internal/reuse) detached and attached, the differential oracle on
// every window. The comparison is folded into the -json-out summary as
// a "reuse" block (map tasks off/on, index hit counters, per-query
// cross-query savings); outputs that differ byte-for-byte between the
// variants, or a sibling that still computed panes of its own with
// reuse enabled, exit 4. The block holds only virtual quantities, so
// it is byte-identical across -workers settings.
//
// -metrics-out writes the Prometheus text exposition of every metric
// the run produced (cache hits/misses, placement outcomes, shuffle
// bytes, task latencies); -trace-out writes a Chrome trace-event JSON
// loadable in Perfetto (https://ui.perfetto.dev) showing recurrence,
// phase and task spans per query and node. Both artifacts are written
// even when a figure fails, so partial runs remain inspectable.
//
// -chaos SEED[:profile] switches from figure regeneration to chaos
// verification: every engine regime (aggregation, join, adaptive,
// speculative) runs under the deterministic fault schedule the seed
// generates — node crashes and revivals, cache losses, pane-file
// corruption, delayed batches, stragglers — with the differential
// window oracle attached. Every window's output is compared
// byte-for-byte against an independent recomputation and the engine's
// structural invariants are checked after each recurrence; any
// divergence exits 4. Profiles: mixed (default), crash, cacheloss,
// corrupt, delay, straggle, speculative, none. -chaos-report folds the
// generated schedule, every per-recurrence verdict and the first
// divergence into the -json-out summary.
//
// -json-out writes a machine-readable run summary (configuration,
// per-figure series with per-window timings, makespans, shuffle
// totals, the headline speedup, cache hit/shuffle aggregates, a
// "costs" block with the resource-accounting ledger's per-query
// attribution and conservation verdict, and a "lineage" block with
// the provenance store's totals — derivation nodes, edges, distinct
// plan fingerprints, rebuild count) so bench trajectories can
// accumulate across commits.
//
// -bench-dir DIR enables trajectory mode: the run summary (with
// per-query SLO health aggregates) is written to DIR/BENCH_<rev>.json
// and compared against the newest prior BENCH_*.json in DIR. Series
// that slowed by more than -regress-soft percent (default 5) are
// flagged; more than -regress-hard percent (default 15) makes the
// process exit 3 so CI can gate on hard regressions. -rev labels the
// entry (default: git short hash, else a timestamp).
//
// -serve ADDR starts the live introspection HTTP server (/metrics,
// /debug/events, /debug/cache, /debug/panes, /debug/health,
// /debug/stream) before the figures run; every engine the experiments
// build attaches to it, so the endpoints can be polled while a figure
// is in flight.
//
// See EXPERIMENTS.md for how the printed numbers map onto the paper's
// plots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"redoop/internal/account"
	"redoop/internal/core"
	"redoop/internal/experiments"
	"redoop/internal/health"
	"redoop/internal/lineage"
	"redoop/internal/obs"
	"redoop/internal/obsserver"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, ablation-caching, ablation-scheduling, sweep, or all (= the paper's four figures)")
		windows  = flag.Int("windows", 0, "windows per series (default 10)")
		recs     = flag.Int("records", 0, "records per window (default 120000)")
		nodes    = flag.Int("nodes", 0, "cluster worker nodes (default 10)")
		reducers = flag.Int("reducers", 0, "reduce partitions (default 20)")
		workers  = flag.Int("workers", 0, "parallel compute pool per engine: 0 = GOMAXPROCS, 1 = serial (virtual results are identical either way)")
		parBench = flag.Int("par-bench", 0, "also measure wall-clock speedup of the Figure-6 workload at this many pool workers vs serial")
		reuseRun = flag.Bool("reuse", false, "also run the cross-query reuse workload (two identical Figure-6 aggregations + a 2x tumbling roll-up over one shared stream) with the reuse index off and on, verify byte-identical outputs, and fold the comparison into -json-out")
		chaosArg = flag.String("chaos", "", "run chaos verification instead of figures: SEED[:profile] seeds a deterministic fault schedule, the oracle verifies every window (profiles: mixed, crash, cacheloss, corrupt, delay, straggle, speculative, none)")
		chaosRep = flag.Bool("chaos-report", false, "with -chaos and -json-out: include the fault schedule and every per-recurrence oracle verdict in the summary")
		seed     = flag.Int64("seed", 0, "generator seed (default 42)")
		quiet    = flag.Bool("q", false, "suppress progress lines")
		csvPath  = flag.String("csv", "", "also append every series as tidy CSV to this file")
		metrics  = flag.String("metrics-out", "", "write a Prometheus text exposition of the run's metrics to this file")
		trace    = flag.String("trace-out", "", "write a Perfetto-loadable Chrome trace JSON of the run to this file")
		jsonOut  = flag.String("json-out", "", "write a machine-readable JSON run summary to this file")
		serve    = flag.String("serve", "", "serve the live introspection HTTP endpoints on this address (e.g. :8080) while figures run")
		benchDir = flag.String("bench-dir", "", "trajectory mode: write BENCH_<rev>.json here and compare against the newest prior entry")
		rev      = flag.String("rev", "", "revision label for the trajectory entry (default: git short hash, else a timestamp)")
		softPct  = flag.Float64("regress-soft", 5, "trajectory: warn when a series slows by more than this percent")
		hardPct  = flag.Float64("regress-hard", 15, "trajectory: exit 3 when a series slows by more than this percent")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *windows > 0 {
		cfg.Windows = *windows
	}
	if *recs > 0 {
		cfg.RecordsPerWindow = *recs
	}
	if *nodes > 0 {
		cfg.Workers = *nodes
	}
	if *reducers > 0 {
		cfg.Reducers = *reducers
	}
	cfg.ExecWorkers = *workers
	if *seed != 0 {
		cfg.Seed = *seed
	}
	var ob *obs.Observer
	if *metrics != "" || *trace != "" || *jsonOut != "" || *serve != "" || *benchDir != "" {
		ob = obs.New()
		cfg.Obs = ob
	}
	// One shared SLO monitor across every engine the figures build, so
	// the trajectory entry carries per-query health aggregates.
	var mon *health.Monitor
	if ob != nil {
		mon = health.NewMonitor(health.DefaultConfig())
		mon.SetObserver(ob)
		cfg.Health = mon
	}
	if *serve != "" {
		srv := obsserver.New(ob)
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoop-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[introspection server on http://%s]\n", addr)
		cfg.OnEngine = func(e *core.Engine) { srv.Attach(e) }
	}
	// One shared cost ledger across every Redoop engine the run builds,
	// so the summary carries per-query resource attribution. Engines are
	// collected through the same hook to total the clusters' busy time
	// for the conservation check (engines run sequentially, so the
	// append is race-free).
	var acct *account.Ledger
	var engines []*core.Engine
	if ob != nil {
		acct = account.New()
		cfg.Account = acct
		// One shared provenance store too, so the summary's lineage
		// block covers every engine and /debug/lineage (with -serve)
		// shows the whole run's derivation DAG.
		cfg.Lineage = lineage.New(0)
		attach := cfg.OnEngine
		cfg.OnEngine = func(e *core.Engine) {
			engines = append(engines, e)
			if attach != nil {
				attach(e)
			}
		}
	}
	// Artifacts are flushed on every exit path — including figure
	// failures — so a crashed or fault-injected run still leaves its
	// metrics and trace behind for inspection. Returns false when an
	// artifact could not be written, so callers exit nonzero rather
	// than letting scripts assume the file exists.
	writeArtifacts := func() bool {
		if ob == nil {
			return true
		}
		ok := true
		if *metrics != "" {
			if err := ob.Metrics.WriteMetricsFile(*metrics); err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: metrics-out: %v\n", err)
				ok = false
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "[metrics written to %s]\n", *metrics)
			}
		}
		if *trace != "" {
			if err := ob.Tracer.WriteTraceFile(*trace); err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: trace-out: %v\n", err)
				ok = false
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "[trace written to %s; open at https://ui.perfetto.dev]\n", *trace)
			}
		}
		return ok
	}

	if *chaosRep && *chaosArg == "" {
		fmt.Fprintln(os.Stderr, "redoop-bench: -chaos-report needs -chaos SEED[:profile]")
		os.Exit(2)
	}
	if *chaosArg != "" {
		cj, failed, err := runChaos(os.Stdout, cfg, *chaosArg, *chaosRep, *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoop-bench: chaos: %v\n", err)
			os.Exit(2)
		}
		if *jsonOut != "" {
			sum := buildSummary(cfg, nil, nil, ob.Metrics)
			sum.Health = healthSummary(mon)
			sum.Profile = profileSummary(ob, nil)
			sum.Costs = costsSummary(acct, clusterBusyNS(engines))
			warnConservation(sum.Costs)
			sum.Lineage = lineageSummary(cfg.Lineage)
			sum.Chaos = cj
			if err := obs.WriteFileAtomic(*jsonOut, func(w io.Writer) error {
				return writeSummary(w, sum)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: json-out: %v\n", err)
				os.Exit(1)
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "[run summary written to %s]\n", *jsonOut)
			}
		}
		if !writeArtifacts() {
			os.Exit(1)
		}
		if failed {
			os.Exit(4)
		}
		return
	}

	type figure struct {
		id  string
		run func(experiments.Config) (*experiments.FigResult, error)
		cum bool
	}
	figures := []figure{
		{"6", experiments.Fig6, false},
		{"7", experiments.Fig7, false},
		{"8", experiments.Fig8, false},
		{"9", experiments.Fig9, true},
		{"ablation-caching", experiments.AblationCaching, false},
		{"ablation-scheduling", experiments.AblationScheduling, false},
		{"ablation-speculation", experiments.AblationSpeculation, false},
		{"sweep", experiments.OverlapSweep, false},
		{"multiquery", experiments.MultiQuerySharing, false},
	}

	var fig6, fig7 *experiments.FigResult
	var results []*experiments.FigResult
	ran := false
	paperFigures := map[string]bool{"6": true, "7": true, "8": true, "9": true}
	for _, f := range figures {
		if *fig == "all" && !paperFigures[f.id] {
			continue
		}
		if *fig != "all" && *fig != f.id {
			continue
		}
		ran = true
		start := time.Now()
		res, err := f.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoop-bench: figure %s: %v\n", f.id, err)
			writeArtifacts()
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[figure %s regenerated in %v]\n", f.id, time.Since(start).Round(time.Millisecond))
		}
		if f.cum {
			res.FormatCumulative(os.Stdout)
		} else {
			res.Format(os.Stdout)
		}
		if *csvPath != "" {
			out, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: %v\n", err)
				os.Exit(1)
			}
			if err := res.FormatCSV(out); err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: csv: %v\n", err)
				os.Exit(1)
			}
			out.Close()
		}
		results = append(results, res)
		switch f.id {
		case "6":
			fig6 = res
		case "7":
			fig7 = res
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "redoop-bench: unknown figure %q (want 6, 7, 8, 9, ablation-caching, ablation-scheduling, sweep or all)\n", *fig)
		os.Exit(2)
	}
	var headline *float64
	if fig6 != nil && fig7 != nil {
		h := experiments.Headline(fig6, fig7)
		headline = &h
		fmt.Printf("headline: best steady-state speedup over plain Hadoop = %.1fx (paper: up to 9x)\n", h)
	}
	// The parallel-speedup report compares host wall-clock, so it runs
	// with a clean config (no shared observer/monitor) to keep both
	// modes' overheads identical.
	var par *experiments.ParallelSpeedupResult
	if *parBench > 0 {
		parCfg := cfg
		parCfg.Obs = nil
		parCfg.Health = nil
		parCfg.OnEngine = nil
		start := time.Now()
		p, err := parCfg.ParallelSpeedup(*parBench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoop-bench: par-bench: %v\n", err)
			writeArtifacts()
			os.Exit(1)
		}
		par = p
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[parallel speedup measured in %v]\n", time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf("parallel: %d workers vs serial = %.2fx wall-clock speedup (%v vs %v; virtual results identical: %v)\n",
			par.Workers, par.Speedup,
			par.SerialWall.Round(time.Millisecond), par.ParallelWall.Round(time.Millisecond),
			par.VirtualEqual)
	}
	// The cross-query reuse comparison runs on a clean config (its own
	// ledger, no shared observer) so its off/on runs do not bleed into
	// the figures' shared accounting; the resulting block holds only
	// virtual quantities metered at serial commit points, so it is
	// byte-identical across -workers settings.
	var reuseOff, reuseOn *experiments.ReuseReport
	if *reuseRun {
		rCfg := cfg
		rCfg.Obs = nil
		rCfg.Health = nil
		rCfg.OnEngine = nil
		rCfg.Account = nil
		rCfg.Lineage = nil
		rCfg.OracleCheck = true
		start := time.Now()
		var err error
		if reuseOff, err = experiments.RunCrossQueryReuse(rCfg, false); err == nil {
			reuseOn, err = experiments.RunCrossQueryReuse(rCfg, true)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoop-bench: reuse: %v\n", err)
			writeArtifacts()
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[reuse comparison measured in %v]\n", time.Since(start).Round(time.Millisecond))
		}
		for i := range reuseOff.Queries {
			if reuseOff.Queries[i].OutputDigest != reuseOn.Queries[i].OutputDigest {
				fmt.Fprintf(os.Stderr, "redoop-bench: reuse: query %s window outputs diverged between reuse off and on\n",
					reuseOff.Queries[i].Query)
				writeArtifacts()
				os.Exit(4)
			}
		}
		if n := reuseOn.Queries[1].MapTasks; n != 0 {
			fmt.Fprintf(os.Stderr, "redoop-bench: reuse: sibling %s ran %d map tasks with reuse enabled; want 0\n",
				reuseOn.Queries[1].Query, n)
			writeArtifacts()
			os.Exit(4)
		}
		fmt.Printf("reuse: %d map tasks without index, %d with (sibling computes nothing; outputs byte-identical off/on)\n",
			reuseOff.TotalMapTasks(), reuseOn.TotalMapTasks())
	}
	if *jsonOut != "" || *benchDir != "" {
		sum := buildSummary(cfg, results, headline, ob.Metrics)
		sum.Reuse = reuseSummary(reuseOff, reuseOn)
		sum.Health = healthSummary(mon)
		sum.Parallel = parallelSummary(par)
		sum.Profile = profileSummary(ob, par)
		sum.Costs = costsSummary(acct, clusterBusyNS(engines))
		warnConservation(sum.Costs)
		sum.Lineage = lineageSummary(cfg.Lineage)
		if *jsonOut != "" {
			if err := obs.WriteFileAtomic(*jsonOut, func(w io.Writer) error {
				return writeSummary(w, sum)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: json-out: %v\n", err)
				os.Exit(1)
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "[run summary written to %s]\n", *jsonOut)
			}
		}
		if *benchDir != "" {
			hard, err := runTrajectory(os.Stdout, *benchDir, *rev, sum, *softPct, *hardPct, *quiet)
			if err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: trajectory: %v\n", err)
				os.Exit(1)
			}
			if !writeArtifacts() {
				os.Exit(1)
			}
			if hard {
				os.Exit(3)
			}
			return
		}
	}
	if !writeArtifacts() {
		os.Exit(1)
	}
}

// clusterBusyNS totals Node.Load() across every engine the run built —
// the cluster-side busy time the account ledger's attributed slot
// compute must never exceed.
func clusterBusyNS(engines []*core.Engine) int64 {
	var busy int64
	for _, e := range engines {
		for _, n := range e.MR().Cluster.Nodes() {
			busy += int64(n.Load())
		}
	}
	return busy
}

// warnConservation makes a ledger-invariant violation loud even when
// no trajectory comparison runs (e.g. plain -json-out).
func warnConservation(c *costsJSON) {
	if c != nil && !c.ConservationOK {
		fmt.Fprintf(os.Stderr, "redoop-bench: WARNING: cost ledger conservation VIOLATED (slot compute %s > cluster busy %s)\n",
			fmtNS(c.SlotComputeNS), fmtNS(c.ClusterBusyNS))
	}
}

// runTrajectory writes the BENCH_<rev>.json entry and compares it
// against the newest prior entry. Returns whether a hard regression
// was found.
func runTrajectory(w io.Writer, dir, rev string, sum summaryJSON, softPct, hardPct float64, quiet bool) (bool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	if rev == "" {
		rev = defaultRev()
	}
	sum.Rev = rev
	path := benchFileFor(dir, rev)
	// Find the prior entry before writing ours, so re-running the same
	// revision compares against the previous revision, not itself.
	prior, err := findPriorBench(dir, path)
	if err != nil {
		return false, err
	}
	if err := obs.WriteFileAtomic(path, func(w io.Writer) error {
		return writeSummary(w, sum)
	}); err != nil {
		return false, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "[trajectory entry written to %s]\n", path)
	}
	if prior == "" {
		fmt.Fprintf(w, "\ntrajectory: first entry (%s); nothing to compare against\n", rev)
		return false, nil
	}
	old, err := readSummary(prior)
	if err != nil {
		return false, err
	}
	rows := compareSummaries(old, sum)
	hrows := compareHealth(old, sum)
	pnotes := compareProfile(old, sum)
	cnotes := compareCosts(old, sum)
	lnotes := compareLineage(old, sum)
	rnotes := compareReuse(old, sum)
	_, hard := regressReport(w, old.Rev, rev, rows, hrows, pnotes, cnotes, lnotes, rnotes, softPct, hardPct)
	return hard, nil
}

// defaultRev labels a trajectory entry when -rev is not given: the git
// short hash when available, else a wall-clock timestamp.
func defaultRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return time.Now().UTC().Format("20060102T150405Z")
}
