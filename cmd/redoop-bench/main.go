// Command redoop-bench regenerates the paper's evaluation figures
// (Figures 6–9 of "Redoop: Supporting Recurring Queries in Hadoop",
// EDBT 2014) on the simulated cluster and prints the measured series
// as text tables.
//
// Usage:
//
//	redoop-bench [-fig 6|7|8|9|all] [-windows N] [-records N]
//	             [-workers N] [-reducers N] [-seed N]
//
// See EXPERIMENTS.md for how the printed numbers map onto the paper's
// plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redoop/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, ablation-caching, ablation-scheduling, sweep, or all (= the paper's four figures)")
		windows  = flag.Int("windows", 0, "windows per series (default 10)")
		recs     = flag.Int("records", 0, "records per window (default 120000)")
		workers  = flag.Int("workers", 0, "cluster worker nodes (default 10)")
		reducers = flag.Int("reducers", 0, "reduce partitions (default 20)")
		seed     = flag.Int64("seed", 0, "generator seed (default 42)")
		quiet    = flag.Bool("q", false, "suppress progress lines")
		csvPath  = flag.String("csv", "", "also append every series as tidy CSV to this file")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *windows > 0 {
		cfg.Windows = *windows
	}
	if *recs > 0 {
		cfg.RecordsPerWindow = *recs
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *reducers > 0 {
		cfg.Reducers = *reducers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	type figure struct {
		id  string
		run func(experiments.Config) (*experiments.FigResult, error)
		cum bool
	}
	figures := []figure{
		{"6", experiments.Fig6, false},
		{"7", experiments.Fig7, false},
		{"8", experiments.Fig8, false},
		{"9", experiments.Fig9, true},
		{"ablation-caching", experiments.AblationCaching, false},
		{"ablation-scheduling", experiments.AblationScheduling, false},
		{"ablation-speculation", experiments.AblationSpeculation, false},
		{"sweep", experiments.OverlapSweep, false},
		{"multiquery", experiments.MultiQuerySharing, false},
	}

	var fig6, fig7 *experiments.FigResult
	ran := false
	paperFigures := map[string]bool{"6": true, "7": true, "8": true, "9": true}
	for _, f := range figures {
		if *fig == "all" && !paperFigures[f.id] {
			continue
		}
		if *fig != "all" && *fig != f.id {
			continue
		}
		ran = true
		start := time.Now()
		res, err := f.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoop-bench: figure %s: %v\n", f.id, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[figure %s regenerated in %v]\n", f.id, time.Since(start).Round(time.Millisecond))
		}
		if f.cum {
			res.FormatCumulative(os.Stdout)
		} else {
			res.Format(os.Stdout)
		}
		if *csvPath != "" {
			out, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: %v\n", err)
				os.Exit(1)
			}
			if err := res.FormatCSV(out); err != nil {
				fmt.Fprintf(os.Stderr, "redoop-bench: csv: %v\n", err)
				os.Exit(1)
			}
			out.Close()
		}
		switch f.id {
		case "6":
			fig6 = res
		case "7":
			fig7 = res
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "redoop-bench: unknown figure %q (want 6, 7, 8, 9, ablation-caching, ablation-scheduling, sweep or all)\n", *fig)
		os.Exit(2)
	}
	if fig6 != nil && fig7 != nil {
		fmt.Printf("headline: best steady-state speedup over plain Hadoop = %.1fx (paper: up to 9x)\n",
			experiments.Headline(fig6, fig7))
	}
}
