package main

// Trajectory mode: every invocation with -bench-dir writes one
// BENCH_<rev>.json into the directory and compares it against the
// newest prior entry, printing a per-series regression report. The
// directory accumulates one file per revision — a measured trajectory
// of the implementation over time, read against the paper's Figures
// 6–9 (see EXPERIMENTS.md).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchFileFor names the trajectory entry of one revision.
func benchFileFor(dir, rev string) string {
	return filepath.Join(dir, "BENCH_"+sanitizeRev(rev)+".json")
}

// sanitizeRev keeps revision strings filesystem-safe.
func sanitizeRev(rev string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, rev)
}

// findPriorBench returns the newest BENCH_*.json in dir by
// modification time, excluding the given path (the entry being
// written). Empty string when there is no prior entry.
func findPriorBench(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	type cand struct {
		path string
		mod  int64
	}
	var cands []cand
	for _, m := range matches {
		if sameFile(m, exclude) {
			continue
		}
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		cands = append(cands, cand{m, fi.ModTime().UnixNano()})
	}
	if len(cands) == 0 {
		return "", nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mod != cands[j].mod {
			return cands[i].mod > cands[j].mod
		}
		return cands[i].path > cands[j].path // stable tie-break
	})
	return cands[0].path, nil
}

func sameFile(a, b string) bool {
	if a == b {
		return true
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

func readSummary(path string) (summaryJSON, error) {
	var sum summaryJSON
	data, err := os.ReadFile(path)
	if err != nil {
		return sum, err
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		return sum, fmt.Errorf("%s: %w", path, err)
	}
	return sum, nil
}

// seriesKey addresses one measured series across summaries.
type seriesKey struct {
	Figure  string
	Overlap float64
	System  string
}

func (k seriesKey) String() string {
	return fmt.Sprintf("%s/overlap=%.2f/%s", k.Figure, k.Overlap, k.System)
}

// deltaRow is one metric's old-vs-new comparison.
type deltaRow struct {
	Key    seriesKey
	Metric string // "makespan" or "meanSteady"
	OldNS  int64
	NewNS  int64
	Pct    float64 // signed; positive = slower (regression)
}

// compareSummaries pairs up every series present in both summaries and
// computes the signed percentage change of its makespan and
// steady-state mean. Series present in only one side are skipped —
// trajectory entries may cover different figure subsets.
func compareSummaries(old, cur summaryJSON) []deltaRow {
	index := func(sum summaryJSON) map[seriesKey]seriesJSON {
		out := make(map[seriesKey]seriesJSON)
		for _, f := range sum.Figures {
			for _, p := range f.Panels {
				for _, s := range p.Series {
					out[seriesKey{f.Name, p.Overlap, s.System}] = s
				}
			}
		}
		return out
	}
	oldIdx := index(old)
	var rows []deltaRow
	for _, f := range cur.Figures {
		for _, p := range f.Panels {
			for _, s := range p.Series {
				k := seriesKey{f.Name, p.Overlap, s.System}
				o, ok := oldIdx[k]
				if !ok {
					continue
				}
				if o.MakespanNS > 0 {
					rows = append(rows, deltaRow{
						Key: k, Metric: "makespan",
						OldNS: o.MakespanNS, NewNS: s.MakespanNS,
						Pct: pctChange(o.MakespanNS, s.MakespanNS),
					})
				}
				if o.MeanSteadyNS > 0 {
					rows = append(rows, deltaRow{
						Key: k, Metric: "meanSteady",
						OldNS: o.MeanSteadyNS, NewNS: s.MeanSteadyNS,
						Pct: pctChange(o.MeanSteadyNS, s.MeanSteadyNS),
					})
				}
			}
		}
	}
	return rows
}

func pctChange(old, cur int64) float64 {
	return 100 * float64(cur-old) / float64(old)
}

// healthDeltas lines up per-query health aggregates between two
// summaries; a growth in deadline misses or adaptivity misses is
// reported alongside the timing rows.
type healthDelta struct {
	Query                string
	MissesOld, MissesNew int
	AnomOld, AnomNew     int
	AMissOld, AMissNew   int
	StatusOld, StatusNew string
}

func compareHealth(old, cur summaryJSON) []healthDelta {
	oldIdx := make(map[string]queryHealthJSON)
	for _, h := range old.Health {
		oldIdx[h.Query] = h
	}
	var out []healthDelta
	for _, h := range cur.Health {
		o, ok := oldIdx[h.Query]
		if !ok {
			continue
		}
		out = append(out, healthDelta{
			Query:     h.Query,
			MissesOld: o.DeadlineMisses, MissesNew: h.DeadlineMisses,
			AnomOld: o.Anomalies, AnomNew: h.Anomalies,
			AMissOld: o.AdaptivityMisses, AMissNew: h.AdaptivityMisses,
			StatusOld: o.Status, StatusNew: h.Status,
		})
	}
	return out
}

// compareProfile reports movements in the profiler aggregates between
// two trajectory entries. Informational only — critical-path length
// scales with the workload each revision chose to run, so it never
// gates; a ledger-invariant violation in the new entry is still
// surfaced loudly so the line is hard to miss in CI logs.
func compareProfile(old, cur summaryJSON) []string {
	if cur.Profile == nil {
		return nil
	}
	var out []string
	if !cur.Profile.LedgerOK {
		out = append(out, "cache-benefit ledger invariant VIOLATED")
	}
	if old.Profile == nil {
		return out
	}
	if old.Profile.CritPathNS > 0 {
		out = append(out, fmt.Sprintf("critical path %s -> %s  %+6.1f%%",
			fmtNS(old.Profile.CritPathNS), fmtNS(cur.Profile.CritPathNS),
			pctChange(old.Profile.CritPathNS, cur.Profile.CritPathNS)))
	}
	if old.Profile.TimeSavedNS > 0 {
		out = append(out, fmt.Sprintf("cache time saved %s -> %s  %+6.1f%%",
			fmtNS(old.Profile.TimeSavedNS), fmtNS(cur.Profile.TimeSavedNS),
			pctChange(old.Profile.TimeSavedNS, cur.Profile.TimeSavedNS)))
	}
	if old.Profile.SerialFraction != nil && cur.Profile.SerialFraction != nil {
		out = append(out, fmt.Sprintf("serial fraction %.3f -> %.3f",
			*old.Profile.SerialFraction, *cur.Profile.SerialFraction))
	}
	return out
}

// compareCosts reports movements in the cost-ledger aggregates between
// two trajectory entries. Informational only, with one exception: a
// conservation violation in the new entry is surfaced loudly. Entries
// written before the costs block existed simply lack the key — the
// comparison treats a missing old block as "nothing to compare
// against" rather than an error, so trajectories spanning the schema
// change keep working.
func compareCosts(old, cur summaryJSON) []string {
	if cur.Costs == nil {
		return nil
	}
	var out []string
	if !cur.Costs.ConservationOK {
		out = append(out, "resource-accounting conservation VIOLATED (slot compute exceeds cluster busy time)")
	}
	if old.Costs == nil {
		return out
	}
	oldIdx := make(map[string]costQueryJSON)
	for _, q := range old.Costs.Queries {
		oldIdx[q.Query] = q
	}
	for _, q := range cur.Costs.Queries {
		o, ok := oldIdx[q.Query]
		if !ok {
			continue
		}
		if o.TotalComputeNS > 0 {
			out = append(out, fmt.Sprintf("%s compute %s -> %s  %+6.1f%%",
				q.Query, fmtNS(o.TotalComputeNS), fmtNS(q.TotalComputeNS),
				pctChange(o.TotalComputeNS, q.TotalComputeNS)))
		}
		if o.SavedNS > 0 && q.SavedNS != o.SavedNS {
			out = append(out, fmt.Sprintf("%s cache saving %s -> %s  %+6.1f%%",
				q.Query, fmtNS(o.SavedNS), fmtNS(q.SavedNS),
				pctChange(o.SavedNS, q.SavedNS)))
		}
	}
	return out
}

// compareLineage reports movements in the provenance-store aggregates
// between two trajectory entries. Informational only — node and edge
// counts scale with the workload — but a rebuild count appearing on a
// clean run is called out, since rebuilds mean the recovery ladder
// fired. Entries written before the lineage block existed simply lack
// the key; a missing old block is "nothing to compare against", so
// trajectories spanning the schema change keep working.
func compareLineage(old, cur summaryJSON) []string {
	if cur.Lineage == nil {
		return nil
	}
	var out []string
	if cur.Lineage.Rebuilds > 0 && cur.Chaos == nil {
		out = append(out, fmt.Sprintf("%d cache rebuilds on a clean run (recovery fired without injected faults)", cur.Lineage.Rebuilds))
	}
	if old.Lineage == nil {
		return out
	}
	if old.Lineage.Nodes != cur.Lineage.Nodes || old.Lineage.Edges != cur.Lineage.Edges {
		out = append(out, fmt.Sprintf("derivations %d -> %d, edges %d -> %d",
			old.Lineage.Nodes, cur.Lineage.Nodes, old.Lineage.Edges, cur.Lineage.Edges))
	}
	if old.Lineage.DistinctFingerprints != cur.Lineage.DistinctFingerprints {
		out = append(out, fmt.Sprintf("distinct plan fingerprints %d -> %d",
			old.Lineage.DistinctFingerprints, cur.Lineage.DistinctFingerprints))
	}
	if old.Lineage.Rebuilds != cur.Lineage.Rebuilds {
		out = append(out, fmt.Sprintf("rebuilds %d -> %d", old.Lineage.Rebuilds, cur.Lineage.Rebuilds))
	}
	return out
}

// compareReuse reports movements in the cross-query reuse block
// between two trajectory entries. A broken invariant in the new entry
// — off/on outputs that diverged, or the identical-geometry sibling
// computing its own map tasks — is surfaced loudly; map-task and
// hit-count movements are informational. Entries written before the
// block existed lack the key; a missing old block is "nothing to
// compare against", so trajectories spanning the schema change keep
// working.
func compareReuse(old, cur summaryJSON) []string {
	if cur.Reuse == nil {
		return nil
	}
	var out []string
	for _, q := range cur.Reuse.Queries {
		if !q.OutputsEqual {
			out = append(out, fmt.Sprintf("%s outputs DIVERGED between reuse off and on", q.Query))
		}
	}
	if len(cur.Reuse.Queries) > 1 && cur.Reuse.Queries[1].MapTasksOn != 0 {
		out = append(out, fmt.Sprintf("sibling %s ran %d map tasks with reuse on (want 0)",
			cur.Reuse.Queries[1].Query, cur.Reuse.Queries[1].MapTasksOn))
	}
	if old.Reuse == nil {
		return out
	}
	if old.Reuse.TotalMapTasksOn != cur.Reuse.TotalMapTasksOn ||
		old.Reuse.TotalMapTasksOff != cur.Reuse.TotalMapTasksOff {
		out = append(out, fmt.Sprintf("map tasks off/on %d/%d -> %d/%d",
			old.Reuse.TotalMapTasksOff, old.Reuse.TotalMapTasksOn,
			cur.Reuse.TotalMapTasksOff, cur.Reuse.TotalMapTasksOn))
	}
	if old.Reuse.ExactHits != cur.Reuse.ExactHits || old.Reuse.SubsumHits != cur.Reuse.SubsumHits {
		out = append(out, fmt.Sprintf("index hits exact/subsume %d/%d -> %d/%d",
			old.Reuse.ExactHits, old.Reuse.SubsumHits, cur.Reuse.ExactHits, cur.Reuse.SubsumHits))
	}
	return out
}

// regressReport writes the comparison and returns whether any timing
// row regressed past the soft or the hard threshold (in percent).
func regressReport(w io.Writer, oldRev, curRev string, rows []deltaRow, hrows []healthDelta, pnotes, cnotes, lnotes, rnotes []string, softPct, hardPct float64) (soft, hard bool) {
	fmt.Fprintf(w, "\ntrajectory: %s -> %s\n", revLabel(oldRev), revLabel(curRev))
	if len(rows) == 0 {
		fmt.Fprintf(w, "  no comparable series (different figure subsets?)\n")
		return false, false
	}
	for _, r := range rows {
		mark := ""
		switch {
		case r.Pct > hardPct:
			mark = "  << HARD REGRESSION"
			hard = true
		case r.Pct > softPct:
			mark = "  << regression"
			soft = true
		case r.Pct < -softPct:
			mark = "  (improved)"
		}
		fmt.Fprintf(w, "  %-40s %-10s %12s -> %12s  %+6.1f%%%s\n",
			r.Key, r.Metric, fmtNS(r.OldNS), fmtNS(r.NewNS), r.Pct, mark)
	}
	for _, h := range hrows {
		notes := []string{}
		if h.MissesNew > h.MissesOld {
			notes = append(notes, fmt.Sprintf("deadline misses %d -> %d", h.MissesOld, h.MissesNew))
		}
		if h.AnomNew > h.AnomOld {
			notes = append(notes, fmt.Sprintf("anomalies %d -> %d", h.AnomOld, h.AnomNew))
		}
		if h.AMissNew > h.AMissOld {
			notes = append(notes, fmt.Sprintf("adaptivity misses %d -> %d", h.AMissOld, h.AMissNew))
		}
		if h.StatusNew != h.StatusOld {
			notes = append(notes, fmt.Sprintf("status %s -> %s", h.StatusOld, h.StatusNew))
		}
		if len(notes) > 0 {
			fmt.Fprintf(w, "  health %-33s %s\n", h.Query+":", strings.Join(notes, "; "))
		}
	}
	for _, n := range pnotes {
		fmt.Fprintf(w, "  profile: %s\n", n)
	}
	for _, n := range cnotes {
		fmt.Fprintf(w, "  costs: %s\n", n)
	}
	for _, n := range lnotes {
		fmt.Fprintf(w, "  lineage: %s\n", n)
	}
	for _, n := range rnotes {
		fmt.Fprintf(w, "  reuse: %s\n", n)
	}
	switch {
	case hard:
		fmt.Fprintf(w, "  verdict: HARD regression (> %.0f%%) — failing\n", hardPct)
	case soft:
		fmt.Fprintf(w, "  verdict: soft regression (> %.0f%%) — warning only\n", softPct)
	default:
		fmt.Fprintf(w, "  verdict: no regression beyond %.0f%%\n", softPct)
	}
	return soft, hard
}

func revLabel(rev string) string {
	if rev == "" {
		return "(unknown rev)"
	}
	return rev
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
