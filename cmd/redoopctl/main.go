// Command redoopctl runs a recurring query over generated data on the
// simulated cluster and reports per-window results — a workbench for
// exploring Redoop's behaviour without writing code.
//
// Usage:
//
//	redoopctl [metrics|explain|health|profile|costs|lineage|reuse] [-query agg|join] [-overlap 0.9]
//	          [-windows 10] [-records 120000] [-adaptive] [-baseline]
//	          [-failnode N] [-dropcaches] [-chaos SEED[:profile]]
//	          [-top K] [-seed N]
//	          [-workers N] [-spikewin N] [-spikefactor F] [-deadline DUR]
//	          [-cache-budget BYTESEC]
//	          [-metrics-out FILE] [-trace-out FILE] [-serve ADDR]
//	          [-folded-out FILE] [-critpath-out FILE]
//	          [-dot-out FILE] [-lineage-out FILE]
//
// -workers sets the host-side parallel compute pool the engine uses
// (0 = GOMAXPROCS, 1 = serial). It changes only real elapsed time:
// every simulated result — outputs, virtual timings, stats — is
// byte-identical across settings.
//
// -query agg runs the WCC click-ranking aggregation (the paper's Q1);
// -query join runs the FFG sensor join (Q2). -baseline executes the
// same query with the plain-Hadoop driver instead of Redoop.
//
// The "metrics" subcommand runs the query and dumps the full
// Prometheus text exposition of its metrics to stdout (the per-window
// table moves to stderr), so `redoopctl metrics | grep cache` works; a
// p50/p90/p99 quantile table of every histogram follows on stderr.
//
// The "explain" subcommand runs the query and renders a per-recurrence
// decision report from the flight recorder: the Equation 4 placement
// audit (each candidate node's Load_i + C_task,i and the chosen node),
// cache hit/miss/lost attribution per pane, and the Holt forecast vs.
// actual response times with re-plan markers. The per-window table
// moves to stderr.
//
// The "health" subcommand runs the query and prints the SLO monitor's
// per-query status table: deadline headroom against the slide, the
// watermark window lag, miss streaks and forecast-residual anomalies.
// -spikewin N multiplies the input volume of window N by -spikefactor
// (default 10) — an oversized-batch fault that exercises the anomaly
// detector. -deadline DUR tightens the SLO deadline from the natural
// slide (simulated responses are virtual milliseconds against
// multi-minute slides) so misses and the AT_RISK/MISSING_DEADLINES
// escalation can be observed on a real run. -cache-budget B flags any
// query whose cumulative cache occupancy exceeds B byte·seconds as
// AT_RISK (cost governance; 0 disables) — it escalates an OK status
// only, never masking a worse deadline-driven one, and applies to
// deadline-less queries too.
//
// The "profile" subcommand runs the query twice — once on a serial
// compute pool, once on the -workers pool (default GOMAXPROCS) — and
// prints the critical-path profile of the parallel run: per-query
// critical-path length, phase and wait breakdowns, the top-K
// critical-path segments, the cache-benefit ledger total, and an
// Amdahl serial fraction inverted from the two runs' host wall-clock
// speedup (the virtual results are byte-identical by construction, so
// the comparison isolates host-side parallelism). The run fails with a
// non-zero exit if any profiler invariant is violated: a critical path
// that does not tile its recurrence's wall-clock exactly, or a ledger
// entry whose cache-load cost exceeds the recompute cost it avoided.
// -folded-out writes the flamegraph folded stacks and -critpath-out
// the Chrome-trace critical-path overlay (both also work outside the
// profile subcommand, from the same instrumented run).
//
// The "costs" subcommand runs BOTH figure workloads — the WCC
// aggregation as tenant-a and the FFG join as tenant-b — against one
// shared cost ledger and prints the accounting report: the top-K
// queries by attributed compute with per-phase breakdowns, IO bytes,
// cache occupancy in byte·seconds, recompute nanoseconds saved by
// cache hits, and the cache-ROI quotient (saved ns per resident
// byte·second), followed by per-tenant rollups. After each run the
// ledger's conservation invariants are checked against the engine's
// own totals — attributed slot compute must not exceed the cluster's
// accrued busy time, and cache residencies must reconcile — and any
// violation fails the invocation with a non-zero exit (the CI smoke
// step relies on this). The report is byte-identical across -workers
// settings because all metering happens in serial commit paths.
//
// The "lineage" subcommand runs BOTH figure workloads against one
// shared provenance store and cost ledger, with the differential
// oracle attached to every window: besides the byte-for-byte output
// check, the oracle's lineage pass machine-checks the store — closure
// (every resident cache copy has a derivation, every claimed batch and
// input edge resolves, consumer links are symmetric) and a sampled
// derivation audit that recomputes pane bytes strictly from the
// lineage-claimed input records and asserts SHA equality with what the
// store recorded. Any violation fails the invocation with a non-zero
// exit (the CI smoke step relies on this). The report prints the
// per-query plan fingerprint, the final window's derivation DAG with
// per-edge virtual-time build costs joined against the cost ledger's
// attributed compute, and the store totals. -dot-out writes the whole
// derivation DAG as a Graphviz digraph and -lineage-out as JSON; both
// also work outside the subcommand (they attach a provenance store to
// any Redoop run) and are written even when the run fails partway.
//
// The "reuse" subcommand runs the cross-query reuse workload — two
// identical Figure-6 aggregations plus a coarser tumbling roll-up over
// one shared WCC stream — twice, with the fingerprint-keyed reuse
// index (internal/reuse) detached and attached, the differential
// oracle verifying every window of both runs. The report contrasts
// per-query map tasks and pane accounting between the variants and
// prints the cost ledger's cross-query savings attribution plus the
// index counters. The invocation fails with a non-zero exit if any
// query's window outputs differ byte-for-byte between reuse off and
// on, or if the identical-geometry sibling still ran map tasks of its
// own with reuse enabled (the CI smoke step relies on this). -chaos
// composes: both variants then run under the same seeded fault
// schedule.
//
// -chaos SEED[:profile] runs the query under a deterministic seeded
// fault schedule (node crashes and revivals, cache losses, pane-file
// corruption, delayed batches, stragglers — profile selects the fault
// family, default mixed) with the differential window oracle attached:
// every window's output is verified byte-for-byte against an
// independent recomputation plus the engine's structural invariants,
// and the per-window table gains an oracle column. A divergence fails
// the run. Incompatible with -baseline (the oracle checks the Redoop
// engine against the baseline semantics).
//
// -serve ADDR starts the live introspection HTTP server (endpoints:
// /metrics, /debug/events, /debug/cache, /debug/panes, /debug/health,
// /debug/stream) before the run and keeps the process alive after it
// finishes, until interrupted, so the final state stays inspectable.
//
// Independently, -metrics-out and -trace-out write the exposition and
// a Perfetto-loadable Chrome trace JSON to files; both are written
// even when the run fails partway (e.g. under -failnode or
// -dropcaches fault injection), so the partial run stays inspectable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"redoop/internal/account"
	"redoop/internal/baseline"
	"redoop/internal/chaos"
	"redoop/internal/core"
	"redoop/internal/experiments"
	"redoop/internal/explain"
	"redoop/internal/health"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/obsserver"
	"redoop/internal/oracle"
	"redoop/internal/profile"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/workload"
)

func main() {
	var (
		queryKind   = flag.String("query", "agg", "query to run: agg (Q1, WCC) or join (Q2, FFG)")
		overlap     = flag.Float64("overlap", 0.9, "window overlap factor (win-slide)/win")
		windows     = flag.Int("windows", 10, "number of recurrences")
		recs        = flag.Int("records", 120000, "records per window")
		adaptive    = flag.Bool("adaptive", false, "enable adaptive input partitioning")
		useBase     = flag.Bool("baseline", false, "run the plain-Hadoop baseline instead of Redoop")
		failNode    = flag.Int("failnode", -1, "kill this node before window 3")
		dropCache   = flag.Bool("dropcaches", false, "drop one node's caches before every window")
		chaosArg    = flag.String("chaos", "", "run under a seeded deterministic fault schedule with the oracle verifying every window: SEED[:profile] (profiles: mixed, crash, cacheloss, corrupt, delay, straggle, speculative, none)")
		topK        = flag.Int("top", 5, "print the top-K results of the final window")
		seed        = flag.Int64("seed", 42, "generator seed")
		workers     = flag.Int("workers", 0, "parallel compute pool: 0 = GOMAXPROCS, 1 = serial (simulated results are identical either way)")
		spikeWin    = flag.Int("spikewin", -1, "multiply this window's input volume by -spikefactor (oversized-batch fault)")
		spikeFac    = flag.Float64("spikefactor", 10, "input volume multiplier for -spikewin")
		deadline    = flag.Duration("deadline", 0, "override the SLO deadline (default: the query's slide, in virtual time)")
		cacheBudget = flag.Float64("cache-budget", 0, "flag queries whose cumulative cache occupancy exceeds this many byte·seconds as AT_RISK (0 disables)")
		metricsOut  = flag.String("metrics-out", "", "write a Prometheus text exposition of the run's metrics to this file")
		traceOut    = flag.String("trace-out", "", "write a Perfetto-loadable Chrome trace JSON of the run to this file")
		foldedOut   = flag.String("folded-out", "", "write flamegraph folded stacks of the run's task spans to this file")
		critpathOut = flag.String("critpath-out", "", "write a Chrome trace JSON with the critical-path overlay to this file")
		dotOut      = flag.String("dot-out", "", "write the run's derivation DAG as a Graphviz digraph to this file (attaches a provenance store)")
		lineageOut  = flag.String("lineage-out", "", "write the run's provenance store (stats, plans, derivation DAG) as JSON to this file")
		serveAddr   = flag.String("serve", "", "serve the live introspection HTTP endpoints on this address (e.g. :8080) during the run, then until interrupted")
	)
	args := os.Args[1:]
	metricsMode := len(args) > 0 && args[0] == "metrics"
	explainMode := len(args) > 0 && args[0] == "explain"
	healthMode := len(args) > 0 && args[0] == "health"
	profileMode := len(args) > 0 && args[0] == "profile"
	costsMode := len(args) > 0 && args[0] == "costs"
	lineageMode := len(args) > 0 && args[0] == "lineage"
	reuseMode := len(args) > 0 && args[0] == "reuse"
	if metricsMode || explainMode || healthMode || profileMode || costsMode || lineageMode || reuseMode {
		args = args[1:]
	} else if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		fmt.Fprintf(os.Stderr, "redoopctl: unknown subcommand %q (want metrics, explain, health, profile, costs, lineage or reuse)\n", args[0])
		os.Exit(2)
	}
	flag.CommandLine.Parse(args)
	if flag.CommandLine.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "redoopctl: unexpected argument %q\n", flag.CommandLine.Arg(0))
		os.Exit(2)
	}

	cfg := experiments.Default()
	cfg.Windows = *windows
	cfg.RecordsPerWindow = *recs
	cfg.Seed = *seed
	cfg.ExecWorkers = *workers

	var chaosSched *chaos.Schedule
	if *chaosArg != "" {
		if *useBase {
			fmt.Fprintln(os.Stderr, "redoopctl: -chaos cannot be combined with -baseline (the oracle verifies the Redoop engine against baseline semantics)")
			os.Exit(2)
		}
		_, cseed, cprofile, err := chaos.ParseSpec(*chaosArg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoopctl: %v\n", err)
			os.Exit(2)
		}
		chaosSched, err = chaos.Generate(cseed, cprofile, cfg.Windows, cfg.Workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoopctl: %v\n", err)
			os.Exit(2)
		}
	}

	if profileMode && *useBase {
		fmt.Fprintln(os.Stderr, "redoopctl: profile needs the instrumented Redoop engine; it cannot be combined with -baseline")
		os.Exit(2)
	}
	if (lineageMode || *dotOut != "" || *lineageOut != "") && *useBase {
		fmt.Fprintln(os.Stderr, "redoopctl: the baseline driver records no provenance; lineage cannot be combined with -baseline")
		os.Exit(2)
	}

	// Lineage mode (and the standalone DAG artifacts) attach a shared
	// provenance store; the subcommand's report additionally joins the
	// DAG against the cost ledger, so it needs one. -serve attaches
	// one too (baseline excepted — it records no provenance), so
	// /debug/lineage has a live store to show.
	if lineageMode || *dotOut != "" || *lineageOut != "" || (*serveAddr != "" && !*useBase) {
		cfg.Lineage = lineage.New(0)
	}
	if lineageMode && cfg.Account == nil {
		cfg.Account = account.New()
	}

	var ob *obs.Observer
	if metricsMode || explainMode || healthMode || profileMode ||
		*serveAddr != "" || *metricsOut != "" || *traceOut != "" || *foldedOut != "" || *critpathOut != "" {
		ob = obs.New()
		cfg.Obs = ob
	}

	// One shared SLO monitor so the health table survives the run and
	// the introspection server's /debug/health sees the same trackers.
	hcfg := health.DefaultConfig()
	hcfg.DeadlineOverride = simtime.Duration(*deadline)
	hcfg.CacheByteSecondBudget = *cacheBudget
	// The budget check reads cache occupancy from the cost ledger, so
	// health mode needs one attached for the numbers to be non-zero.
	if healthMode && cfg.Account == nil {
		cfg.Account = account.New()
	}
	mon := health.NewMonitor(hcfg)
	if ob != nil {
		mon.SetObserver(ob)
	}
	cfg.Health = mon

	var srv *obsserver.Server
	if *serveAddr != "" {
		srv = obsserver.New(ob)
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redoopctl: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[introspection server on http://%s]\n", addr)
		cfg.OnEngine = func(e *core.Engine) { srv.Attach(e) }
	}

	// In metrics, explain, health, profile, costs and lineage mode the
	// report owns stdout; the table moves to stderr so both remain
	// usable.
	tableOut := io.Writer(os.Stdout)
	if metricsMode || explainMode || healthMode || profileMode || costsMode || lineageMode || reuseMode {
		tableOut = os.Stderr
	}

	// The profile subcommand measures an Amdahl reference point first: an
	// identical run on a serial compute pool (own observer and monitor —
	// its instrumentation must not mix into the profiled run). Virtual
	// results are byte-identical across pool widths, so comparing the two
	// host wall-clocks isolates parallel-execution speedup.
	var serialElapsed time.Duration
	if profileMode {
		scfg := cfg
		scfg.ExecWorkers = 1
		scfg.Obs = nil
		scfg.Health = health.NewMonitor(hcfg)
		scfg.OnEngine = nil
		t0 := time.Now()
		if _, err := run(io.Discard, scfg, *queryKind, *overlap, *adaptive, *useBase, *failNode, *dropCache, 0, *spikeWin, *spikeFac, chaosSched, false, ""); err != nil {
			fmt.Fprintf(os.Stderr, "redoopctl: serial reference run: %v\n", err)
			os.Exit(1)
		}
		serialElapsed = time.Since(t0)
	}

	t0 := time.Now()
	var runErr error
	switch {
	case costsMode:
		runErr = runCosts(tableOut, os.Stdout, cfg, *overlap, *adaptive, *failNode, *dropCache, *topK, *spikeWin, *spikeFac, chaosSched)
	case lineageMode:
		runErr = runLineage(tableOut, os.Stdout, cfg, *overlap, *adaptive, *failNode, *dropCache, *spikeWin, *spikeFac, chaosSched)
	case reuseMode:
		runErr = runReuse(os.Stdout, cfg, chaosSched)
	default:
		_, runErr = run(tableOut, cfg, *queryKind, *overlap, *adaptive, *useBase, *failNode, *dropCache, *topK, *spikeWin, *spikeFac, chaosSched, false, "")
	}
	parallelElapsed := time.Since(t0)

	// Artifacts and the metrics dump are emitted even on failure so
	// fault-injected runs leave their partial series behind. A failed
	// artifact write is itself a failure: scripts must not read a
	// clean exit as "the artifact exists".
	artifactErr := false
	if ob != nil {
		if metricsMode {
			if err := ob.Metrics.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: metrics dump: %v\n", err)
				artifactErr = true
			}
			fmt.Fprintln(os.Stderr)
			if err := ob.Metrics.WriteQuantileTable(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: quantile table: %v\n", err)
				artifactErr = true
			}
		}
		if explainMode {
			rep := explain.FromLog(ob.Events, queryName(*queryKind))
			if err := rep.Write(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: explain: %v\n", err)
				artifactErr = true
			}
		}
	}
	if healthMode {
		if *useBase {
			fmt.Fprintln(os.Stderr, "redoopctl: the baseline driver has no health monitor; showing an empty table")
		}
		if err := mon.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "redoopctl: health: %v\n", err)
			artifactErr = true
		}
	}
	if ob != nil {
		if *metricsOut != "" {
			if err := ob.Metrics.WriteMetricsFile(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: metrics-out: %v\n", err)
				artifactErr = true
			}
		}
		if *traceOut != "" {
			if err := ob.Tracer.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: trace-out: %v\n", err)
				artifactErr = true
			}
		}
	}
	if ob != nil && (profileMode || *foldedOut != "" || *critpathOut != "") {
		p := profile.Analyze(ob.Tracer.Events(), ob.Events.Events())
		if profileMode {
			if err := p.Text(os.Stdout, *topK); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: profile report: %v\n", err)
				artifactErr = true
			}
			poolN := *workers
			if poolN <= 0 {
				poolN = runtime.GOMAXPROCS(0)
			}
			speedup := 0.0
			if parallelElapsed > 0 {
				speedup = float64(serialElapsed) / float64(parallelElapsed)
			}
			fmt.Printf("parallel execution: serial %v vs %d-worker %v → speedup %.2fx, Amdahl serial fraction %.3f\n",
				serialElapsed.Round(time.Millisecond), poolN, parallelElapsed.Round(time.Millisecond),
				speedup, profile.SerialFraction(speedup, poolN))
		}
		if *foldedOut != "" {
			if err := p.WriteFoldedFile(*foldedOut); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: folded-out: %v\n", err)
				artifactErr = true
			}
		}
		if *critpathOut != "" {
			if err := p.WriteCritPathTraceFile(*critpathOut); err != nil {
				fmt.Fprintf(os.Stderr, "redoopctl: critpath-out: %v\n", err)
				artifactErr = true
			}
		}
		// The profiler's structural guarantees are part of the contract:
		// a critical path that does not tile its recurrence, or a cache
		// reuse that cost more than it saved, fails the invocation.
		if err := p.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "redoopctl: %v\n", err)
			artifactErr = true
		}
	}
	if cfg.Lineage != nil && (*dotOut != "" || *lineageOut != "") {
		if err := writeLineageArtifacts(cfg.Lineage, *dotOut, *lineageOut); err != nil {
			fmt.Fprintf(os.Stderr, "redoopctl: %v\n", err)
			artifactErr = true
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "redoopctl: %v\n", runErr)
		os.Exit(1)
	}
	if artifactErr {
		os.Exit(1)
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "[run finished; introspection server still up — Ctrl-C to exit]\n")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// queryName maps the -query flag onto the query name the run
// constructs, for event-log filtering.
func queryName(kind string) string {
	if kind == "join" {
		return "q2"
	}
	return "q1"
}

// runCosts is the costs subcommand: both figure workloads, different
// tenants, one shared ledger; prints the accounting report to reportW
// and fails when any conservation invariant is violated.
func runCosts(tableW, reportW io.Writer, cfg experiments.Config, overlap float64, adaptive bool, failNode int, dropCache bool, topK, spikeWin int, spikeFac float64, chaosSched *chaos.Schedule) error {
	acct := account.New()
	cfg.Account = acct
	var violations []string
	for _, wl := range []struct{ kind, tenant string }{
		{"agg", "tenant-a"},
		{"join", "tenant-b"},
	} {
		eng, err := run(tableW, cfg, wl.kind, overlap, adaptive, false, failNode, dropCache, 0, spikeWin, spikeFac, chaosSched, false, wl.tenant)
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW)
		// Reconcile the ledger against the engine's own totals: the
		// compute attributed to this query can be at most the busy time
		// its cluster accrued, and every registered residency must have
		// been expired or still be open.
		var busy int64
		for _, n := range eng.MR().Cluster.Nodes() {
			busy += int64(n.Load())
		}
		name := eng.AccountName()
		if err := acct.CheckConservation(busy, name); err != nil {
			violations = append(violations, err.Error())
			fmt.Fprintf(reportW, "conservation %-4s VIOLATED: %v\n", name, err)
		} else {
			fmt.Fprintf(reportW, "conservation %-4s ok: slot compute %s ≤ cluster busy %s\n",
				name, fmtMS(simtime.Duration(acct.SlotComputeNS(name))), fmtMS(simtime.Duration(busy)))
		}
	}
	fmt.Fprintln(reportW)
	if err := account.WriteReport(reportW, acct.Snapshot(), topK); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("ledger conservation violated: %s", strings.Join(violations, "; "))
	}
	return nil
}

func run(w io.Writer, cfg experiments.Config, kind string, overlap float64, adaptive, useBase bool, failNode int, dropCache bool, topK, spikeWin int, spikeFac float64, chaosSched *chaos.Schedule, forceOracle bool, tenant string) (*core.Engine, error) {
	mr := cfg.NewRuntime(7)
	slide := cfg.SlideFor(overlap)

	var q *core.Query
	var gen func(src int, start, end int64, n int) []records.Record
	sources := 1
	switch kind {
	case "agg":
		q = queries.WCCAggregation("q1", cfg.WindowDur, slide, cfg.Reducers)
		wcc := workload.DefaultWCC(cfg.Seed)
		gen = func(_ int, start, end int64, n int) []records.Record {
			return workload.WCC(wcc, start, end, n)
		}
	case "join":
		q = queries.FFGJoin("q2", cfg.WindowDur, slide, cfg.Reducers)
		ffg := workload.DefaultFFG(cfg.Seed)
		sources = 2
		gen = func(src int, start, end int64, n int) []records.Record {
			if src == 0 {
				return workload.FFGReadings(ffg, start, end, n)
			}
			return workload.FFGEvents(ffg, start, end, n/4)
		}
	default:
		return nil, fmt.Errorf("unknown query %q (want agg or join)", kind)
	}

	q.TenantID = tenant

	spec := q.Spec()
	pane := spec.PaneUnit()
	perPane := int(float64(cfg.RecordsPerWindow) / float64(spec.PanesPerWindow()))
	fmt.Fprintf(w, "query=%s overlap=%.2f win=%v slide=%v pane=%v records/window=%d system=%s adaptive=%v\n\n",
		kind, overlap, time.Duration(spec.Win), time.Duration(spec.Slide),
		time.Duration(pane), cfg.RecordsPerWindow, systemName(useBase), adaptive)

	var eng *core.Engine
	var drv *baseline.Driver
	var err error
	if useBase {
		drv, err = baseline.NewDriver(mr, q)
	} else {
		eng, err = core.NewEngine(core.Config{MR: mr, Query: q, Adaptive: adaptive, Health: cfg.Health, Account: cfg.Account, Lineage: cfg.Lineage})
	}
	if err != nil {
		return nil, err
	}
	if eng != nil && cfg.OnEngine != nil {
		cfg.OnEngine(eng)
	}

	ingest := func(src int, rs []records.Record) error {
		if useBase {
			return drv.Ingest(src, rs)
		}
		return eng.Ingest(src, rs)
	}
	// Under -chaos, batches tee into the oracle on their way to the
	// engine, and the injector's delay gate wraps the whole chain so a
	// held batch is still observed by the oracle when released. The
	// lineage subcommand forces the oracle on even without chaos — its
	// lineage pass is the machine check the subcommand exists for.
	var ora *oracle.Oracle
	var inj *chaos.Injector
	var oracleInner func(src int, rs []records.Record) error
	if chaosSched != nil || forceOracle {
		ora, err = oracle.New(eng)
		if err != nil {
			return nil, err
		}
		oracleInner = ora.WrapIngest(eng.Ingest)
		ingest = oracleInner
	}
	if chaosSched != nil {
		inj = chaos.NewInjector(chaosSched, mr)
		inj.OnCorrupt = ora.ExcludePath
		ingest = inj.WrapIngest(eng, oracleInner)
		fmt.Fprintf(w, "chaos: seed %d profile %s, %d scheduled faults\n\n",
			chaosSched.Seed, chaosSched.Profile, len(chaosSched.Actions))
	}

	fmt.Fprintf(w, "%-7s %14s %12s %12s %12s %s\n", "window", "response", "shuffle", "reduce", "read(B)", "notes")
	fed := 0
	var lastOut []records.Pair
	for r := 0; r < cfg.Windows; r++ {
		close := spec.WindowClose(r)
		// The oversized-batch fault: the slides first consumed by
		// window -spikewin carry -spikefactor times the volume.
		n := perPane
		if r == spikeWin {
			n = int(float64(perPane) * spikeFac)
		}
		for ; int64(fed)*pane < close; fed++ {
			start := int64(fed) * pane
			for src := 0; src < sources; src++ {
				if err := ingest(src, gen(src, start, start+pane, n)); err != nil {
					return nil, err
				}
			}
		}
		if failNode >= 0 && r == 2 {
			mr.DFS.FailNodeAt(failNode, simtime.Time(spec.WindowClose(r-1)))
			mr.Cluster.FailNode(failNode)
			cfg.Obs.Emit(simtime.Time(spec.WindowClose(r-1)), eventlog.NodeFailure, q.Name,
				eventlog.NodeFailureData{Node: failNode})
		}
		if dropCache && r > 0 && !useBase {
			mr.Cluster.DropLocal(r%mr.Cluster.Config().Workers, "cache/")
		}
		if inj != nil {
			if err := inj.BeforeRecurrence(r, eng, oracleInner); err != nil {
				return nil, err
			}
		}

		var resp, shuffle, reduce simtime.Duration
		var read int64
		var verdictErr error
		notes := ""
		if useBase {
			res, err := drv.RunNext()
			if err != nil {
				return nil, err
			}
			resp, shuffle, reduce, read = res.ResponseTime, res.Stats.ShuffleTime, res.Stats.ReduceTime, res.Stats.BytesRead
			lastOut = res.Output
		} else {
			res, err := eng.RunNext()
			if err != nil {
				return nil, err
			}
			resp, shuffle, reduce, read = res.ResponseTime, res.Stats.ShuffleTime, res.Stats.ReduceTime, res.Stats.BytesRead
			lastOut = res.Output
			notes = fmt.Sprintf("panes %d/%d", res.NewPanes, res.ReusedPanes)
			if sources == 2 {
				notes += fmt.Sprintf(" pairs %d/%d", res.NewPairs, res.ReusedPairs)
			}
			if res.CacheRecoveries > 0 {
				notes += fmt.Sprintf(" recovered=%d", res.CacheRecoveries)
			}
			if res.Proactive {
				notes += fmt.Sprintf(" proactive(sub=%d)", res.SubPanes)
			}
			if ora != nil {
				if ver := ora.Check(res); ver.OK() {
					notes += " oracle=ok"
				} else {
					notes += " oracle=FAIL"
					verdictErr = ver.Err()
				}
			}
		}
		fmt.Fprintf(w, "%-7d %14s %12s %12s %12d %s\n", r+1,
			fmtMS(resp), fmtMS(shuffle), fmtMS(reduce), read, notes)
		if verdictErr != nil {
			return nil, verdictErr
		}
	}

	if topK > 0 && len(lastOut) > 0 {
		fmt.Fprintf(w, "\nfinal window: %d output pairs", len(lastOut))
		if kind == "agg" {
			fmt.Fprintf(w, "; top %d by count:\n", topK)
			for _, r := range queries.RankTopK(lastOut, topK) {
				fmt.Fprintf(w, "  %-12s %d\n", r.Key, r.Count)
			}
		} else {
			fmt.Fprintf(w, "; a sample:\n")
			mapreduce.SortPairs(lastOut)
			for i := 0; i < topK && i < len(lastOut); i++ {
				fmt.Fprintf(w, "  %s = %s\n", lastOut[i].Key, lastOut[i].Value)
			}
		}
	}
	return eng, nil
}

func fmtMS(d simtime.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/1e6)
}

func systemName(useBase bool) string {
	if useBase {
		return "hadoop-baseline"
	}
	return "redoop"
}
