package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"redoop/internal/account"
	"redoop/internal/chaos"
	"redoop/internal/core"
	"redoop/internal/experiments"
	"redoop/internal/lineage"
	"redoop/internal/simtime"
)

// maxTraceEdges bounds the per-window DAG rendering in the lineage
// report; the full graph is available via -dot-out / -lineage-out.
const maxTraceEdges = 24

// runLineage is the lineage subcommand: both figure workloads with the
// differential oracle forced on (its lineage pass machine-checks the
// provenance store's closure and a sampled SHA audit every window — a
// violation fails the run), recording into one shared provenance store
// and cost ledger. After each workload it prints that query's plan
// fingerprint and the final window's derivation DAG with per-edge
// virtual-time build costs joined against the ledger's attributed
// compute; the store totals close the report.
func runLineage(tableW, reportW io.Writer, cfg experiments.Config, overlap float64, adaptive bool, failNode int, dropCache bool, spikeWin int, spikeFac float64, chaosSched *chaos.Schedule) error {
	for _, wl := range []struct{ kind, tenant string }{
		{"agg", "tenant-a"},
		{"join", "tenant-b"},
	} {
		eng, err := run(tableW, cfg, wl.kind, overlap, adaptive, false, failNode, dropCache, 0, spikeWin, spikeFac, chaosSched, true, wl.tenant)
		if err != nil {
			return err
		}
		fmt.Fprintln(tableW)
		if err := writeLineageReport(reportW, cfg.Lineage, cfg.Account, eng, cfg.Windows-1); err != nil {
			return err
		}
	}

	st := cfg.Lineage.Stats()
	fmt.Fprintf(reportW, "provenance store: %d derivations, %d edges, %d batches, %d fingerprints, %d rebuilds, %d evicted, %d faults recorded\n",
		st.Nodes, st.Edges, st.Batches, st.DistinctFingerprints, st.Rebuilds, st.Evicted, st.Faults)
	plans := cfg.Lineage.Plans()
	fps := make([]string, 0, len(plans))
	for fp := range plans {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		fmt.Fprintf(reportW, "  plan %.12s… = %s\n", fp, plans[fp])
	}
	return nil
}

// writeLineageReport renders one query's section of the lineage
// report: its canonical plan fingerprint, then the final window's
// derivation trace — every edge with the consumer's virtual build
// cost — and the DAG-vs-ledger cost join.
func writeLineageReport(w io.Writer, lin *lineage.Store, acct *account.Ledger, eng *core.Engine, lastRec int) error {
	name := eng.AccountName()
	fmt.Fprintf(w, "lineage %s: plan fingerprint %s\n", name, eng.PlanFingerprint())

	winID := lineage.WindowID(name, lastRec)
	tr, ok := lin.Trace(winID)
	if !ok {
		return fmt.Errorf("lineage: window derivation %s missing from the provenance store", winID)
	}
	labels := make(map[string]string, len(tr.Nodes))
	for _, n := range tr.Nodes {
		labels[n.ID] = n.Label
	}
	fmt.Fprintf(w, "  window %s derives from %d nodes over %d edges:\n", winID, len(tr.Nodes), len(tr.Edges))
	for i, e := range tr.Edges {
		if i == maxTraceEdges {
			fmt.Fprintf(w, "    … and %d more edges (full DAG via -dot-out / -lineage-out)\n", len(tr.Edges)-maxTraceEdges)
			break
		}
		cost := ""
		if e.CostNS > 0 {
			cost = fmt.Sprintf("  [build %s]", fmtMS(simtime.Duration(e.CostNS)))
		}
		fmt.Fprintf(w, "    %s ← %s%s\n", labels[e.To], labels[e.From], cost)
	}

	// The cost join: the DAG's summed (re)build costs — each distinct
	// derivation counted once — against the compute the PR-7 ledger
	// attributed to the query. Cached panes reused across overlapping
	// windows keep the DAG sum well under fresh per-window compute.
	var dagCost int64
	for _, n := range tr.Nodes {
		if n.Kind == "batch" || n.Kind == "evicted" || n.ID == winID {
			continue
		}
		if d, ok := lin.Lookup(n.ID); ok {
			dagCost += d.CostNS
		}
	}
	fmt.Fprintf(w, "  cost join: DAG pane builds %s (virtual) vs ledger attributed compute %s\n\n",
		fmtMS(simtime.Duration(dagCost)), fmtMS(simtime.Duration(acct.SlotComputeNS(name))))
	return nil
}

// writeLineageArtifacts exports the provenance store's whole derivation
// DAG: dotPath as a Graphviz digraph, jsonPath as a JSON envelope with
// stats, plans and the graph. Empty paths are skipped.
func writeLineageArtifacts(lin *lineage.Store, dotPath, jsonPath string) error {
	graph := lin.Graph("", -1, "")
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(graph.DOT()), 0o644); err != nil {
			return fmt.Errorf("dot-out: %w", err)
		}
	}
	if jsonPath != "" {
		doc := map[string]any{
			"stats":     lin.Stats(),
			"watermark": lin.Watermark(),
			"plans":     lin.Plans(),
			"graph":     graph,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fmt.Errorf("lineage-out: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("lineage-out: %w", err)
		}
	}
	return nil
}
