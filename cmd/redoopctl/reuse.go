package main

import (
	"fmt"
	"io"

	"redoop/internal/chaos"
	"redoop/internal/experiments"
	"redoop/internal/simtime"
)

// runReuse is the reuse subcommand: the shared-stream workload — two
// identical Figure-6 aggregations plus a 2x tumbling roll-up over one
// WCC stream — runs twice, with the cross-query reuse index detached
// and attached, under the differential oracle. The report contrasts
// per-query map tasks and pane accounting between the two runs, prints
// the ledger's cross-query savings attribution and the index counters,
// and fails with a non-zero exit if any query's window outputs differ
// byte-for-byte between the variants or if the identical-geometry
// sibling still computed panes of its own (the CI smoke step relies on
// both checks).
func runReuse(w io.Writer, cfg experiments.Config, chaosSched *chaos.Schedule) error {
	cfg.Chaos = chaosSched
	cfg.OracleCheck = true
	off, err := experiments.RunCrossQueryReuse(cfg, false)
	if err != nil {
		return fmt.Errorf("reuse off: %w", err)
	}
	on, err := experiments.RunCrossQueryReuse(cfg, true)
	if err != nil {
		return fmt.Errorf("reuse on: %w", err)
	}

	fmt.Fprintf(w, "cross-query reuse: %d windows x %d queries over one shared stream (oracle on every window)\n\n",
		cfg.Windows, len(on.Queries))
	fmt.Fprintf(w, "%-10s %9s %9s %12s %12s %10s %12s %s\n",
		"query", "map(off)", "map(on)", "panes(off)", "panes(on)", "crosshits", "saved", "outputs")
	var digestErr error
	for i := range off.Queries {
		o, n := off.Queries[i], on.Queries[i]
		verdict := "identical"
		if o.OutputDigest != n.OutputDigest {
			verdict = "DIVERGED"
			digestErr = fmt.Errorf("reuse: query %s window outputs diverged between reuse off and on", o.Query)
		}
		fmt.Fprintf(w, "%-10s %9d %9d %7d/%-4d %7d/%-4d %10d %12s %s\n",
			o.Query, o.MapTasks, n.MapTasks,
			o.NewPanes, o.ReusedPanes, n.NewPanes, n.ReusedPanes,
			n.CrossQueryHits, fmtMS(simtime.Duration(n.CrossSavedNS)), verdict)
	}
	fmt.Fprintf(w, "\ntotal map tasks: %d without reuse, %d with reuse\n",
		off.TotalMapTasks(), on.TotalMapTasks())
	if on.Index != nil {
		s := on.Index
		fmt.Fprintf(w, "reuse index: %d entries, %d published, %d exact hits, %d subsumption hits, %d dropped, %d evicted\n",
			s.Entries, s.Published, s.ExactHits, s.SubsumHits, s.Dropped, s.Evicted)
	}
	if digestErr != nil {
		return digestErr
	}
	if n := on.Queries[1].MapTasks; n != 0 {
		return fmt.Errorf("reuse: sibling %s ran %d map tasks with reuse enabled; want 0 (every shared pane computed once)",
			on.Queries[1].Query, n)
	}
	return nil
}
