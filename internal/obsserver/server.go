// Package obsserver is Redoop's live-introspection HTTP server: it
// exposes the observability layer of a running (or finished)
// simulation so operators can watch a recurring query work instead of
// waiting for post-run artifacts.
//
// Endpoints:
//
//	GET /               endpoint index (JSON)
//	GET /metrics        Prometheus text exposition of the metrics registry
//	GET /debug/events   flight-recorder events as JSON;
//	                    ?type=cache.hit&query=q1&since=SEQ&limit=N filter
//	GET /debug/cache    live cache controller state: signatures with
//	                    doneQueryMask bits plus every node's local
//	                    cache registry
//	GET /debug/panes    per-engine partition plans, pane inventories,
//	                    home assignments and the cache status matrix
//	GET /debug/health   per-query SLO health: deadline headroom, window
//	                    lag, miss streaks, forecast anomalies
//	GET /debug/profile  critical-path profile of the run so far: per-
//	                    recurrence phase/wait breakdowns plus the
//	                    cache-benefit ledger (?query= filters)
//	GET /debug/critpath just the critical-path segment tilings
//	                    (?query= and ?recurrence= filter)
//	GET /debug/costs    per-query resource costs from the accounting
//	                    ledger: phase compute, IO bytes, cache
//	                    byte·seconds, recompute saved, cache ROI, plus
//	                    per-tenant rollups
//	GET /debug/lineage  provenance store: the derivation DAG with plan
//	                    fingerprints, batch claims and rebuild history
//	                    (?query=&pane=&fingerprint= filter, ?id= traces
//	                    one node, ?format=dot renders Graphviz)
//	GET /debug/reuse    cross-query reuse index: published entries with
//	                    their operator fingerprints, hit/miss/eviction
//	                    counters, per-engine fingerprints (?query=
//	                    filters the entries to one producer)
//	GET /debug/         HTML index of the mounted debug endpoints
//	GET /debug/stream   Server-Sent Events feed of the flight recorder:
//	                    replays retained events (?since=SEQ resumes)
//	                    then streams live ones until the client leaves;
//	                    idle periods carry keepalive comment frames
//
// The server holds no state of its own — every request snapshots the
// live components under their own locks — so it can be attached to a
// run mid-flight and polled while recurrences execute.
package obsserver

import (
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"redoop/internal/account"
	"redoop/internal/core"
	"redoop/internal/health"
	"redoop/internal/lineage"
	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/profile"
	"redoop/internal/reuse"
)

// DefaultKeepAlive is the idle interval after which /debug/stream
// emits an SSE comment frame so proxies and clients can tell a quiet
// recorder from a dead connection.
const DefaultKeepAlive = 15 * time.Second

// Server serves the introspection endpoints for one observer and any
// number of attached engines.
type Server struct {
	obs *obs.Observer

	// KeepAlive overrides the /debug/stream keepalive interval; zero
	// means DefaultKeepAlive, negative disables keepalives.
	KeepAlive time.Duration

	mu      sync.Mutex
	engines []*core.Engine
	ctrls   []*core.Controller
}

// New builds a server over an observer. A nil observer is allowed: the
// metrics and event endpoints serve empty documents.
func New(o *obs.Observer) *Server {
	return &Server{obs: o}
}

// Attach registers an engine (and its cache controller, deduplicated —
// engines may share one) with the debug endpoints. Safe to call while
// the server is running.
func (s *Server) Attach(engines ...*core.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range engines {
		if e == nil {
			continue
		}
		s.engines = append(s.engines, e)
		ctrl := e.Controller()
		seen := false
		for _, c := range s.ctrls {
			if c == ctrl {
				seen = true
				break
			}
		}
		if !seen && ctrl != nil {
			s.ctrls = append(s.ctrls, ctrl)
		}
	}
}

// endpoint is one mounted route: its path, the one-line description
// the indexes render, and its handler.
type endpoint struct {
	path string
	doc  string
	h    http.HandlerFunc
}

// endpoints is the single route registry: Handler mounts exactly these
// routes (plus the two index pages) and endpointDocs derives the
// catalogue from the same table, so the mux and the documentation
// cannot drift apart.
func (s *Server) endpoints() []endpoint {
	return []endpoint{
		{"/metrics", "Prometheus text exposition of the metrics registry", s.handleMetrics},
		{"/debug/events", "flight-recorder events (?type=&query=&since=&limit=)", s.handleEvents},
		{"/debug/cache", "cache controller signatures and node registries", s.handleCache},
		{"/debug/panes", "partition plans, pane files, homes and status matrix", s.handlePanes},
		{"/debug/health", "per-query SLO health: headroom, lag, streaks, anomalies", s.handleHealth},
		{"/debug/profile", "critical-path profile + cache-benefit ledger (?query=)", s.handleProfile},
		{"/debug/critpath", "critical-path segment tilings (?query=&recurrence=)", s.handleCritPath},
		{"/debug/costs", "per-query resource costs, cache ROI and tenant rollups", s.handleCosts},
		{"/debug/lineage", "provenance store: derivation DAG, plans, stats (?query=&pane=&fingerprint=&id=&format=dot)", s.handleLineage},
		{"/debug/reuse", "cross-query reuse index: entries, hit/eviction counters (?query= filters entries)", s.handleReuse},
		{"/debug/stream", "Server-Sent Events live feed (?since=SEQ resumes)", s.handleStream},
	}
}

// Handler returns the server's route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/debug/", s.handleDebugIndex)
	for _, ep := range s.endpoints() {
		mux.HandleFunc(ep.path, ep.h)
	}
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine, returning the bound address. The listener
// lives until the process exits — the debug server is an attachment to
// a run, not a managed service.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obsserver: listen %s: %w", addr, err)
	}
	go func() {
		_ = http.Serve(ln, s.Handler())
	}()
	return ln.Addr().String(), nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, s.endpointDocs())
}

// endpointDocs maps every mounted endpoint to its one-line description;
// the JSON root index and the /debug/ HTML index both render it. It is
// derived from the endpoints table, never hand-maintained.
func (s *Server) endpointDocs() map[string]string {
	docs := make(map[string]string)
	for _, ep := range s.endpoints() {
		docs[ep.path] = ep.doc
	}
	return docs
}

// handleDebugIndex serves /debug/ as a small HTML directory of the
// mounted debug endpoints, so a browser landing there can click through
// instead of guessing paths. Any other unmatched /debug/* path 404s.
func (s *Server) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/debug/" && r.URL.Path != "/debug" {
		http.NotFound(w, r)
		return
	}
	docs := s.endpointDocs()
	paths := make([]string, 0, len(docs))
	for p := range docs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!DOCTYPE html>\n<html><head><title>redoop debug</title></head><body>\n")
	fmt.Fprint(w, "<h1>redoop debug endpoints</h1>\n<ul>\n")
	for _, p := range paths {
		fmt.Fprintf(w, "<li><a href=%q>%s</a> — %s</li>\n",
			p, html.EscapeString(p), html.EscapeString(docs[p]))
	}
	fmt.Fprint(w, "</ul>\n</body></html>\n")
}

// handleCosts merges the cost-ledger snapshots of every distinct ledger
// the attached engines account to (engines usually share one) into a
// per-query cost document with per-tenant rollups.
func (s *Server) handleCosts(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	engines := append([]*core.Engine(nil), s.engines...)
	s.mu.Unlock()
	var ledgers []*account.Ledger
	for _, e := range engines {
		l := e.Account()
		if l == nil {
			continue
		}
		seen := false
		for _, have := range ledgers {
			if have == l {
				seen = true
				break
			}
		}
		if !seen {
			ledgers = append(ledgers, l)
		}
	}
	queries := []account.QueryCosts{}
	for _, l := range ledgers {
		queries = append(queries, l.Snapshot()...)
	}
	writeJSON(w, map[string]any{
		"queries": queries,
		"tenants": account.RollupTenants(queries),
	})
}

// lineageStores collects the distinct provenance stores the attached
// engines record into (engines usually share one), mirroring the
// ledger dedup in handleCosts.
func (s *Server) lineageStores() []*lineage.Store {
	s.mu.Lock()
	engines := append([]*core.Engine(nil), s.engines...)
	s.mu.Unlock()
	var stores []*lineage.Store
	for _, e := range engines {
		lin := e.Lineage()
		if lin == nil {
			continue
		}
		seen := false
		for _, have := range stores {
			if have == lin {
				seen = true
				break
			}
		}
		if !seen {
			stores = append(stores, lin)
		}
	}
	return stores
}

// handleLineage serves the provenance store: by default the whole
// retained derivation DAG (?query=, ?pane=, ?fingerprint= narrow it),
// or the ancestor/descendant trace of one node via ?id=. ?format=dot
// renders Graphviz instead of the JSON envelope.
func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	stores := s.lineageStores()
	qs := r.URL.Query()
	pane := int64(-1)
	if v := qs.Get("pane"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad pane", http.StatusBadRequest)
			return
		}
		pane = n
	}
	dot := false
	switch qs.Get("format") {
	case "", "json":
	case "dot":
		dot = true
	default:
		http.Error(w, "bad format (want json or dot)", http.StatusBadRequest)
		return
	}

	if id := qs.Get("id"); id != "" {
		for _, lin := range stores {
			if tr, ok := lin.Trace(id); ok {
				if dot {
					w.Header().Set("Content-Type", "text/plain; charset=utf-8")
					fmt.Fprint(w, tr.DOT())
					return
				}
				writeJSON(w, tr)
				return
			}
		}
		http.Error(w, "unknown derivation "+id, http.StatusNotFound)
		return
	}

	query := qs.Get("query")
	fp := qs.Get("fingerprint")
	if dot {
		// Stores are disjoint by construction (each derivation ID embeds
		// its query), so their graphs concatenate into one digraph.
		var merged lineage.Trace
		for _, lin := range stores {
			tr := lin.Graph(query, pane, fp)
			merged.Nodes = append(merged.Nodes, tr.Nodes...)
			merged.Edges = append(merged.Edges, tr.Edges...)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, merged.DOT())
		return
	}
	type storeDoc struct {
		Stats     lineage.Stats     `json:"stats"`
		Watermark uint64            `json:"watermark"`
		Plans     map[string]string `json:"plans"`
		Graph     lineage.Trace     `json:"graph"`
	}
	docs := []storeDoc{}
	for _, lin := range stores {
		docs = append(docs, storeDoc{
			Stats:     lin.Stats(),
			Watermark: lin.Watermark(),
			Plans:     lin.Plans(),
			Graph:     lin.Graph(query, pane, fp),
		})
	}
	writeJSON(w, map[string]any{"stores": docs})
}

// handleReuse serves the cross-query reuse layer: the distinct reuse
// indexes the attached engines share (usually one), each with its
// counters and surviving entries in canonical order, plus every
// engine's geometry-independent operator fingerprint so entries can be
// matched back to the queries that could consume them. ?query= narrows
// the entries to one producer.
func (s *Server) handleReuse(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	engines := append([]*core.Engine(nil), s.engines...)
	s.mu.Unlock()
	var indexes []*reuse.Index
	type engineFP struct {
		Query string `json:"query"`
		OpFP  string `json:"opFingerprint"`
	}
	fps := []engineFP{}
	for _, e := range engines {
		fps = append(fps, engineFP{Query: e.Query().Name, OpFP: e.OpFingerprint()})
		idx := e.ReuseIndex()
		if idx == nil {
			continue
		}
		seen := false
		for _, have := range indexes {
			if have == idx {
				seen = true
				break
			}
		}
		if !seen {
			indexes = append(indexes, idx)
		}
	}
	query := r.URL.Query().Get("query")
	type indexDoc struct {
		Stats   reuse.Stats   `json:"stats"`
		Entries []reuse.Entry `json:"entries"`
	}
	docs := []indexDoc{}
	for _, idx := range indexes {
		entries := idx.Snapshot()
		if query != "" {
			kept := entries[:0]
			for _, en := range entries {
				if en.Query == query {
					kept = append(kept, en)
				}
			}
			entries = kept
		}
		if entries == nil {
			entries = []reuse.Entry{}
		}
		docs = append(docs, indexDoc{Stats: idx.Stats(), Entries: entries})
	}
	writeJSON(w, map[string]any{"indexes": docs, "engines": fps})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.obs == nil || s.obs.Metrics == nil {
		return
	}
	_ = s.obs.Metrics.WritePrometheus(w)
}

// eventsPage is the /debug/events response envelope.
type eventsPage struct {
	// Seq is the recorder's latest sequence number — pass it back as
	// ?since= to poll for only newer events.
	Seq uint64 `json:"seq"`
	// Dropped counts events lost to ring wraparound since the start.
	Dropped uint64           `json:"dropped"`
	Events  []eventlog.Event `json:"events"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var log *eventlog.Log
	if s.obs != nil {
		log = s.obs.Events
	}
	f := eventlog.Filter{
		Type:  eventlog.Type(r.URL.Query().Get("type")),
		Query: r.URL.Query().Get("query"),
	}
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		f.SinceSeq = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	page := eventsPage{Seq: log.Seq(), Dropped: log.Dropped(), Events: log.Select(f)}
	if page.Events == nil {
		page.Events = []eventlog.Event{}
	}
	writeJSON(w, page)
}

func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ctrls := append([]*core.Controller(nil), s.ctrls...)
	s.mu.Unlock()
	dumps := make([]core.ControllerDump, 0, len(ctrls))
	for _, c := range ctrls {
		dumps = append(dumps, c.Dump())
	}
	writeJSON(w, map[string]any{"controllers": dumps})
}

func (s *Server) handlePanes(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	engines := append([]*core.Engine(nil), s.engines...)
	s.mu.Unlock()
	dumps := make([]core.EngineDump, 0, len(engines))
	for _, e := range engines {
		dumps = append(dumps, e.Dump())
	}
	writeJSON(w, map[string]any{"engines": dumps})
}

// handleHealth merges the SLO snapshots of every distinct monitor the
// attached engines report into one per-query status document. Engines
// sharing one monitor (the fleet configuration) contribute it once.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	engines := append([]*core.Engine(nil), s.engines...)
	s.mu.Unlock()
	var mons []*health.Monitor
	for _, e := range engines {
		m := e.Health()
		if m == nil {
			continue
		}
		seen := false
		for _, have := range mons {
			if have == m {
				seen = true
				break
			}
		}
		if !seen {
			mons = append(mons, m)
		}
	}
	queries := []health.QueryStatus{}
	worst := health.StatusOK
	for _, m := range mons {
		for _, st := range m.Snapshot() {
			queries = append(queries, st)
			if st.Status.Level() > worst.Level() {
				worst = st.Status
			}
		}
	}
	writeJSON(w, map[string]any{
		"status":  worst,
		"queries": queries,
	})
}

// snapshotProfile analyzes the observer's current span and event
// streams. Both snapshots are taken under their own locks, so the
// profile is consistent even while recurrences execute.
func (s *Server) snapshotProfile() *profile.Profile {
	var spans []obs.Event
	var events []eventlog.Event
	if s.obs != nil {
		spans = s.obs.Tracer.Events()
		events = s.obs.Events.Events()
	}
	return profile.Analyze(spans, events)
}

// handleProfile serves the full critical-path profile of the run so
// far: per-recurrence walls, phase and wait breakdowns, node and
// worker attribution, and the cache-benefit ledger.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	p := s.snapshotProfile()
	if q := r.URL.Query().Get("query"); q != "" {
		qp, ok := p.Queries[q]
		if !ok {
			http.Error(w, "unknown query "+q, http.StatusNotFound)
			return
		}
		ledger := []profile.PaneBenefit{}
		for _, e := range p.Ledger {
			if e.Query == q {
				ledger = append(ledger, e)
			}
		}
		writeJSON(w, map[string]any{"query": qp, "ledger": ledger})
		return
	}
	writeJSON(w, map[string]any{
		"queries":         p.Queries,
		"ledger":          p.Ledger,
		"critPathTotalNS": int64(p.CritPathTotal()),
		"timeSavedNS":     int64(p.TimeSaved()),
	})
}

// critPathEntry is one recurrence's tiling in the /debug/critpath
// response.
type critPathEntry struct {
	Query    string            `json:"query"`
	Index    int               `json:"index"`
	WallNS   int64             `json:"wallNS"`
	TaskNS   int64             `json:"taskNS"`
	WaitNS   int64             `json:"waitNS"`
	GapNS    int64             `json:"gapNS"`
	Segments []profile.Segment `json:"segments"`
}

// handleCritPath serves just the critical-path tilings, recurrence by
// recurrence; ?query= and ?recurrence= narrow the response.
func (s *Server) handleCritPath(w http.ResponseWriter, r *http.Request) {
	p := s.snapshotProfile()
	qFilter := r.URL.Query().Get("query")
	rFilter := -1
	if v := r.URL.Query().Get("recurrence"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad recurrence", http.StatusBadRequest)
			return
		}
		rFilter = n
	}
	entries := []critPathEntry{}
	for _, rec := range p.Recurrences {
		if qFilter != "" && rec.Query != qFilter {
			continue
		}
		if rFilter >= 0 && rec.Index != rFilter {
			continue
		}
		entries = append(entries, critPathEntry{
			Query: rec.Query, Index: rec.Index,
			WallNS: int64(rec.Wall), TaskNS: int64(rec.CritTask),
			WaitNS: int64(rec.CritWait), GapNS: int64(rec.CritGap),
			Segments: rec.CritPath,
		})
	}
	writeJSON(w, map[string]any{"recurrences": entries})
}

// handleStream serves the flight recorder as Server-Sent Events: the
// retained backlog first (so a client attaching after a fast run still
// sees the lifecycle), then live events as they are appended. Each
// frame carries the sequence number as its SSE id, the event type as
// its event name, and the JSON event as data.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var log *eventlog.Log
	if s.obs != nil {
		log = s.obs.Events
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe before replaying so no event falls between the backlog
	// snapshot and the live feed; duplicates from the overlap are
	// filtered by sequence number.
	ch, cancel := log.Subscribe(256)
	defer cancel()
	last := since
	for _, e := range log.Since(since) {
		if err := writeSSE(w, e); err != nil {
			return
		}
		last = e.Seq
	}
	fl.Flush()

	// A quiet recorder (run finished, or recurrences far apart) would
	// otherwise leave the connection silent for minutes; periodic SSE
	// comment frames keep intermediaries from reaping it and let the
	// client distinguish idle from dead.
	interval := s.KeepAlive
	if interval == 0 {
		interval = DefaultKeepAlive
	}
	var keepalive <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		keepalive = t.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case e, ok := <-ch:
			if !ok {
				return
			}
			if e.Seq <= last {
				continue
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			last = e.Seq
			fl.Flush()
		}
	}
}

// writeSSE emits one event in SSE framing: id, event name, data.
func writeSSE(w http.ResponseWriter, e eventlog.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
