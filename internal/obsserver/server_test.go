package obsserver_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"redoop/internal/account"
	"redoop/internal/cluster"
	"redoop/internal/core"
	"redoop/internal/dfs"
	"redoop/internal/health"
	"redoop/internal/iocost"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/obsserver"
	"redoop/internal/records"
	"redoop/internal/reuse"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

const (
	testWin   = 30 * simtime.Second
	testSlide = 10 * simtime.Second
)

func newRig(workers int, ob *obs.Observer) *mapreduce.Engine {
	cost := iocost.Default()
	cost.TaskOverhead = 200 * time.Microsecond
	cl := cluster.MustNew(cluster.Config{Workers: workers, MapSlots: 2, ReduceSlots: 2})
	ids := make([]int, workers)
	for i := range ids {
		ids[i] = i
	}
	d := dfs.MustNew(dfs.Config{BlockSize: 32 << 10, Replication: 2, Nodes: ids, Seed: 7})
	mr := mapreduce.MustNew(cl, d, cost)
	mr.Obs = ob
	return mr
}

func sumReduce(key []byte, values [][]byte, emit mapreduce.Emitter) {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	emit(key, []byte(strconv.Itoa(total)))
}

func countQuery(name string) *core.Query {
	return &core.Query{
		Name: name,
		Sources: []core.Source{{
			Name: "S1",
			Spec: window.NewTimeSpec(testWin, testSlide),
		}},
		Maps: []mapreduce.MapFunc{func(_ int64, payload []byte, emit mapreduce.Emitter) {
			emit(append([]byte(nil), payload...), []byte("1"))
		}},
		Reduce:      sumReduce,
		Combine:     sumReduce,
		Merge:       sumReduce,
		NumReducers: 2,
	}
}

func genWords(seed int64, slideIdx, n int) []records.Record {
	rng := rand.New(rand.NewSource(seed + int64(slideIdx)))
	base := int64(slideIdx) * int64(testSlide)
	out := make([]records.Record, n)
	for i := range out {
		ts := base + rng.Int63n(int64(testSlide))
		out[i] = records.Record{Ts: ts, Data: []byte(fmt.Sprintf("w%02d", rng.Intn(10)))}
	}
	return out
}

// runRecurrences drives a fresh engine through n recurrences and
// returns it with its observer and server.
func runRecurrences(t *testing.T, n int) (*obsserver.Server, *obs.Observer, *core.Engine) {
	t.Helper()
	ob := obs.New()
	mr := newRig(4, ob)
	eng, err := core.NewEngine(core.Config{MR: mr, Query: countQuery("q1")})
	if err != nil {
		t.Fatal(err)
	}
	slidesPerWin := int(testWin / testSlide)
	fed := 0
	for r := 0; r < n; r++ {
		for ; fed < slidesPerWin+r; fed++ {
			if err := eng.Ingest(0, genWords(11, fed, 200)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatal(err)
		}
	}
	srv := obsserver.New(ob)
	srv.Attach(eng)
	return srv, ob, eng
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := runRecurrences(t, 2)
	rec := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"redoop_recurrences_total", "redoop_cache_lookups_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

func TestEventsEndpointFilters(t *testing.T) {
	ob := obs.New()
	ob.Emit(1, eventlog.CacheHit, "q1", eventlog.CacheData{PID: "a", Node: 0})
	ob.Emit(2, eventlog.CacheMiss, "q1", eventlog.CacheData{PID: "b", Node: -1})
	ob.Emit(3, eventlog.CacheHit, "q2", eventlog.CacheData{PID: "c", Node: 1})
	srv := obsserver.New(ob)
	h := srv.Handler()

	var page struct {
		Seq     uint64           `json:"seq"`
		Dropped uint64           `json:"dropped"`
		Events  []eventlog.Event `json:"events"`
	}
	rec := get(t, h, "/debug/events")
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Seq != 3 || len(page.Events) != 3 {
		t.Fatalf("unfiltered: seq=%d events=%d, want 3/3", page.Seq, len(page.Events))
	}

	rec = get(t, h, "/debug/events?type=cache.hit&query=q1")
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 1 || page.Events[0].Seq != 1 {
		t.Fatalf("filtered: %+v, want just seq 1", page.Events)
	}

	rec = get(t, h, "/debug/events?since=2")
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 1 || page.Events[0].Seq != 3 {
		t.Fatalf("since: %+v, want just seq 3", page.Events)
	}

	if rec := get(t, h, "/debug/events?since=zap"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad since: status %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/debug/events?limit=-1"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", rec.Code)
	}
}

func TestCacheEndpoint(t *testing.T) {
	srv, _, _ := runRecurrences(t, 3)
	rec := get(t, srv.Handler(), "/debug/cache")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Controllers []core.ControllerDump `json:"controllers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Controllers) != 1 {
		t.Fatalf("controllers = %d, want 1", len(body.Controllers))
	}
	c := body.Controllers[0]
	if len(c.Queries) != 1 || c.Queries[0] != "q1" {
		t.Errorf("queries = %v", c.Queries)
	}
	if len(c.Signatures) == 0 {
		t.Fatal("no live signatures after 3 recurrences")
	}
	for _, s := range c.Signatures {
		if s.PID == "" || s.Type == "" || s.Ready == "" {
			t.Errorf("incomplete signature %+v", s)
		}
		if len(s.DoneQueryMask) != 1 {
			t.Errorf("doneQueryMask size %d, want 1", len(s.DoneQueryMask))
		}
	}
	if len(c.Registries) == 0 {
		t.Fatal("no node registries")
	}
}

func TestPanesEndpoint(t *testing.T) {
	srv, _, eng := runRecurrences(t, 3)
	rec := get(t, srv.Handler(), "/debug/panes")
	var body struct {
		Engines []core.EngineDump `json:"engines"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Engines) != 1 {
		t.Fatalf("engines = %d, want 1", len(body.Engines))
	}
	d := body.Engines[0]
	if d.Query != "q1" || d.NextRecurrence != eng.NextRecurrence() {
		t.Errorf("dump header %+v", d)
	}
	if len(d.Sources) != 1 || d.Sources[0].Name != "S1" {
		t.Fatalf("sources = %+v", d.Sources)
	}
	if len(d.Sources[0].Panes) == 0 {
		t.Error("no flushed panes listed")
	}
	for _, p := range d.Sources[0].Panes {
		for _, seg := range p.Segments {
			if seg.Path == "" {
				t.Errorf("pane %d has a segment without a path", p.Pane)
			}
		}
	}
	if d.Matrix == "" {
		t.Error("empty matrix rendering")
	}
}

// TestStreamSSE verifies the /debug/stream framing end to end: backlog
// replay, then live delivery of a later event, with id/event/data
// lines per frame.
func TestStreamSSE(t *testing.T) {
	ob := obs.New()
	ob.Emit(1, eventlog.RecurrenceStart, "q1", eventlog.RecurrenceStartData{Recurrence: 0})
	ob.Emit(2, eventlog.RecurrenceFinish, "q1", eventlog.RecurrenceFinishData{Recurrence: 0, ResponseNS: 42})
	srv := obsserver.New(ob)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	rd := bufio.NewReader(resp.Body)
	frame := func() (id, event, data string) {
		t.Helper()
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatalf("stream read: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "id: "):
				id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "":
				return id, event, data
			}
		}
	}

	id, event, data := frame()
	if id != "1" || event != "recurrence.start" {
		t.Fatalf("frame 1 = id %q event %q", id, event)
	}
	var ev eventlog.Event
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("frame 1 data %q: %v", data, err)
	}
	if ev.Seq != 1 || ev.Query != "q1" {
		t.Fatalf("frame 1 decoded %+v", ev)
	}
	if id, event, _ = frame(); id != "2" || event != "recurrence.finish" {
		t.Fatalf("frame 2 = id %q event %q", id, event)
	}

	// An event emitted after the client attached must arrive live.
	ob.Emit(3, eventlog.NodeFailure, "q1", eventlog.NodeFailureData{Node: 2})
	if id, event, _ = frame(); id != "3" || event != "node.failure" {
		t.Fatalf("live frame = id %q event %q", id, event)
	}
}

// TestStreamSince verifies ?since= skips the already-seen backlog.
func TestStreamSince(t *testing.T) {
	ob := obs.New()
	for i := 0; i < 5; i++ {
		ob.Emit(simtime.Time(i), eventlog.CacheHit, "q1", nil)
	}
	srv := obsserver.New(ob)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/stream?since=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(line); got != "id: 4" {
		t.Fatalf("first line = %q, want id: 4", got)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	srv := obsserver.New(obs.New())
	h := srv.Handler()
	if rec := get(t, h, "/"); rec.Code != http.StatusOK {
		t.Errorf("index status = %d", rec.Code)
	}
	if rec := get(t, h, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}

// TestServeDuringRun attaches the server before any recurrence runs and
// polls /debug/events while recurrences execute on another goroutine —
// the mid-run usability the flight recorder exists for (run with -race
// to exercise the locking).
func TestServeDuringRun(t *testing.T) {
	ob := obs.New()
	mr := newRig(4, ob)
	eng, err := core.NewEngine(core.Config{MR: mr, Query: countQuery("q1")})
	if err != nil {
		t.Fatal(err)
	}
	srv := obsserver.New(ob)
	srv.Attach(eng)
	h := srv.Handler()

	done := make(chan error, 1)
	go func() {
		slidesPerWin := int(testWin / testSlide)
		fed := 0
		for r := 0; r < 4; r++ {
			for ; fed < slidesPerWin+r; fed++ {
				if err := eng.Ingest(0, genWords(23, fed, 200)); err != nil {
					done <- err
					return
				}
			}
			if _, err := eng.RunNext(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// One final pass over every endpoint after the run.
			for _, p := range []string{"/metrics", "/debug/events", "/debug/cache", "/debug/panes"} {
				if rec := get(t, h, p); rec.Code != http.StatusOK {
					t.Errorf("%s status = %d", p, rec.Code)
				}
			}
			return
		default:
		}
		for _, p := range []string{"/metrics", "/debug/events", "/debug/cache", "/debug/panes"} {
			if rec := get(t, h, p); rec.Code != http.StatusOK {
				t.Fatalf("%s status = %d mid-run", p, rec.Code)
			}
		}
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv, _, eng := runRecurrences(t, 4)
	rec := get(t, srv.Handler(), "/debug/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Status  string               `json:"status"`
		Queries []health.QueryStatus `json:"queries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Queries) != 1 {
		t.Fatalf("queries = %+v, want exactly one", doc.Queries)
	}
	q := doc.Queries[0]
	if q.Query != "q1" {
		t.Errorf("query = %q, want q1", q.Query)
	}
	if q.Recurrences != 4 {
		t.Errorf("recurrences = %d, want 4", q.Recurrences)
	}
	if q.DeadlineNS != int64(testSlide) {
		t.Errorf("deadline = %d, want %d", q.DeadlineNS, int64(testSlide))
	}
	if doc.Status != string(health.StatusOK) {
		t.Errorf("overall status = %q, want %q", doc.Status, health.StatusOK)
	}
	_ = eng
}

// TestHealthEndpointSharedMonitor checks two engines sharing one
// monitor are reported once each, not duplicated per engine.
func TestHealthEndpointSharedMonitor(t *testing.T) {
	ob := obs.New()
	mon := health.NewMonitor(health.DefaultConfig())
	mon.SetObserver(ob)
	e1, err := core.NewEngine(core.Config{MR: newRig(2, ob), Query: countQuery("qa"), Health: mon})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.NewEngine(core.Config{MR: newRig(2, ob), Query: countQuery("qb"), Health: mon})
	if err != nil {
		t.Fatal(err)
	}
	srv := obsserver.New(ob)
	srv.Attach(e1, e2)
	rec := get(t, srv.Handler(), "/debug/health")
	var doc struct {
		Queries []health.QueryStatus `json:"queries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Queries) != 2 {
		t.Fatalf("queries = %+v, want qa and qb once each", doc.Queries)
	}
}

// TestStreamKeepAlive verifies idle /debug/stream connections carry
// periodic SSE comment frames between events.
func TestStreamKeepAlive(t *testing.T) {
	ob := obs.New()
	ob.Emit(1, eventlog.RecurrenceStart, "q1", nil)
	srv := obsserver.New(ob)
	srv.KeepAlive = 20 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)

	sawEvent, sawKeepalive := false, false
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- strings.TrimRight(line, "\n")
		}
	}()
	for !sawKeepalive {
		select {
		case <-deadline:
			t.Fatalf("no keepalive frame within 5s (event seen: %v)", sawEvent)
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before keepalive")
			}
			switch {
			case strings.HasPrefix(line, "id: 1"):
				sawEvent = true
			case strings.HasPrefix(line, ": keepalive"):
				sawKeepalive = true
			}
		}
	}
	if !sawEvent {
		t.Error("backlog event never arrived before keepalive")
	}

	// Events emitted after keepalives still flow.
	ob.Emit(2, eventlog.RecurrenceFinish, "q1", nil)
	deadline = time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("live event after keepalive never arrived")
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before live event")
			}
			if strings.HasPrefix(line, "id: 2") {
				return
			}
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	srv, _, _ := runRecurrences(t, 3)
	rec := get(t, srv.Handler(), "/debug/profile")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Queries map[string]struct {
			CritPathNS  int64 `json:"critPathNS"`
			TimeSavedNS int64 `json:"timeSavedNS"`
			Recurrences []struct {
				Index  int   `json:"index"`
				WallNS int64 `json:"wallNS"`
			} `json:"recurrences"`
		} `json:"queries"`
		CritPathTotalNS int64 `json:"critPathTotalNS"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	q, ok := doc.Queries["q1"]
	if !ok {
		t.Fatalf("no q1 in profile: %s", rec.Body.String())
	}
	if len(q.Recurrences) != 3 || q.CritPathNS <= 0 {
		t.Fatalf("q1 profile = %+v, want 3 recurrences with positive critical path", q)
	}
	// Overlapping windows (30s window, 10s slide) reuse cached panes
	// from the second recurrence on.
	if q.TimeSavedNS <= 0 {
		t.Fatalf("q1 time saved = %d, want > 0", q.TimeSavedNS)
	}
	if doc.CritPathTotalNS != q.CritPathNS {
		t.Fatalf("total %d != q1 %d", doc.CritPathTotalNS, q.CritPathNS)
	}

	// ?query= narrows; unknown names 404.
	if rec := get(t, srv.Handler(), "/debug/profile?query=q1"); rec.Code != http.StatusOK {
		t.Fatalf("?query=q1 status %d", rec.Code)
	}
	if rec := get(t, srv.Handler(), "/debug/profile?query=nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("?query=nope status %d, want 404", rec.Code)
	}
}

func TestCritPathEndpoint(t *testing.T) {
	srv, _, _ := runRecurrences(t, 2)
	rec := get(t, srv.Handler(), "/debug/critpath?query=q1&recurrence=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Recurrences []struct {
			Query    string `json:"query"`
			Index    int    `json:"index"`
			WallNS   int64  `json:"wallNS"`
			TaskNS   int64  `json:"taskNS"`
			WaitNS   int64  `json:"waitNS"`
			GapNS    int64  `json:"gapNS"`
			Segments []struct {
				Kind  string       `json:"kind"`
				Start simtime.Time `json:"start"`
				End   simtime.Time `json:"end"`
			} `json:"segments"`
		} `json:"recurrences"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(doc.Recurrences) != 1 {
		t.Fatalf("got %d recurrences, want exactly the filtered one", len(doc.Recurrences))
	}
	e := doc.Recurrences[0]
	if e.Query != "q1" || e.Index != 1 {
		t.Fatalf("entry = %s/%d, want q1/1", e.Query, e.Index)
	}
	// The tiling invariant, observed through the HTTP surface.
	var sum int64
	for _, s := range e.Segments {
		sum += int64(s.End.Sub(s.Start))
	}
	if sum != e.WallNS || e.TaskNS+e.WaitNS+e.GapNS != e.WallNS {
		t.Fatalf("segments sum to %d, wall is %d", sum, e.WallNS)
	}

	if rec := get(t, srv.Handler(), "/debug/critpath?recurrence=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad recurrence filter: status %d, want 400", rec.Code)
	}
}

// TestCostsEndpoint drives two engines sharing one cost ledger
// (different tenants) and checks /debug/costs reports each query once
// with nonzero compute, plus per-tenant rollups.
func TestCostsEndpoint(t *testing.T) {
	ob := obs.New()
	ledger := account.New()
	q1 := countQuery("qa")
	q1.TenantID = "tenant-a"
	q2 := countQuery("qb")
	q2.TenantID = "tenant-b"
	e1, err := core.NewEngine(core.Config{MR: newRig(2, ob), Query: q1, Account: ledger})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.NewEngine(core.Config{MR: newRig(2, ob), Query: q2, Account: ledger})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []*core.Engine{e1, e2} {
		for fed := 0; fed < int(testWin/testSlide); fed++ {
			if err := eng.Ingest(0, genWords(11, fed, 200)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatal(err)
		}
	}
	srv := obsserver.New(ob)
	srv.Attach(e1, e2)
	rec := get(t, srv.Handler(), "/debug/costs")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Queries []account.QueryCosts  `json:"queries"`
		Tenants []account.TenantCosts `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Queries) != 2 {
		t.Fatalf("queries = %+v, want qa and qb once each (shared ledger deduplicated)", doc.Queries)
	}
	for _, q := range doc.Queries {
		if q.TotalComputeNS <= 0 {
			t.Errorf("query %s metered no compute", q.Query)
		}
	}
	if len(doc.Tenants) != 2 {
		t.Fatalf("tenants = %+v, want tenant-a and tenant-b", doc.Tenants)
	}
	for _, tc := range doc.Tenants {
		if tc.Queries != 1 || tc.TotalComputeNS <= 0 {
			t.Errorf("tenant rollup %+v wrong", tc)
		}
	}
}

// TestDebugIndexPage checks /debug/ lists every mounted endpoint as an
// HTML directory and unmatched /debug/* paths still 404.
func TestDebugIndexPage(t *testing.T) {
	srv := obsserver.New(obs.New())
	h := srv.Handler()
	rec := get(t, h, "/debug/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q, want text/html", ct)
	}
	body := rec.Body.String()
	for _, path := range []string{
		"/metrics", "/debug/events", "/debug/cache", "/debug/panes",
		"/debug/health", "/debug/profile", "/debug/critpath",
		"/debug/costs", "/debug/stream",
	} {
		if !strings.Contains(body, fmt.Sprintf("href=%q", path)) {
			t.Errorf("/debug/ index is missing a link to %s", path)
		}
	}
	if rec := get(t, h, "/debug/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown debug path status = %d, want 404", rec.Code)
	}
}

// TestEndpointCatalogueMatchesMux is the drift guard: every endpoint
// the root catalogue documents must actually be mounted (non-404), and
// the catalogue must carry every route the table mounts — both sides
// now derive from one registry, so this fails the moment someone adds
// a route or a doc line anywhere else.
func TestEndpointCatalogueMatchesMux(t *testing.T) {
	srv := obsserver.New(obs.New())
	h := srv.Handler()

	var docs map[string]string
	rec := get(t, h, "/")
	if err := json.Unmarshal(rec.Body.Bytes(), &docs); err != nil {
		t.Fatalf("bad catalogue JSON: %v", err)
	}
	if len(docs) == 0 {
		t.Fatal("empty endpoint catalogue")
	}
	// Probe with a pre-cancelled request context so /debug/stream (an
	// SSE endpoint that otherwise serves forever) returns after its
	// backlog replay.
	probe := func(path string) int {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest("GET", path, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	for path, doc := range docs {
		if doc == "" {
			t.Errorf("catalogued endpoint %s has no description", path)
		}
		if code := probe(path); code == http.StatusNotFound {
			t.Errorf("catalogued endpoint %s is not mounted (404)", path)
		}
	}
	// Spot-check the routes the catalogue must cover, including the
	// provenance endpoint this PR adds.
	for _, path := range []string{
		"/metrics", "/debug/events", "/debug/cache", "/debug/panes",
		"/debug/health", "/debug/profile", "/debug/critpath",
		"/debug/costs", "/debug/lineage", "/debug/stream",
	} {
		if _, ok := docs[path]; !ok {
			t.Errorf("catalogue is missing %s", path)
		}
	}
}

// TestLineageEndpoint drives an engine with a provenance store attached
// and exercises /debug/lineage: the JSON envelope with stats, plans and
// the derivation DAG; query/pane/fingerprint filters; single-node
// traces via ?id=; DOT rendering; and the error paths.
func TestLineageEndpoint(t *testing.T) {
	ob := obs.New()
	lin := lineage.New(0)
	mr := newRig(4, ob)
	eng, err := core.NewEngine(core.Config{MR: mr, Query: countQuery("q1"), Lineage: lin})
	if err != nil {
		t.Fatal(err)
	}
	slidesPerWin := int(testWin / testSlide)
	fed := 0
	for r := 0; r < 3; r++ {
		for ; fed < slidesPerWin+r; fed++ {
			if err := eng.Ingest(0, genWords(11, fed, 200)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatal(err)
		}
	}
	srv := obsserver.New(ob)
	srv.Attach(eng)
	h := srv.Handler()

	type storeDoc struct {
		Stats     lineage.Stats     `json:"stats"`
		Watermark uint64            `json:"watermark"`
		Plans     map[string]string `json:"plans"`
		Graph     lineage.Trace     `json:"graph"`
	}
	var doc struct {
		Stores []storeDoc `json:"stores"`
	}
	rec := get(t, h, "/debug/lineage")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(doc.Stores) != 1 {
		t.Fatalf("stores = %d, want 1", len(doc.Stores))
	}
	st := doc.Stores[0]
	if st.Stats.Nodes == 0 || len(st.Graph.Nodes) == 0 {
		t.Fatalf("empty provenance document: stats %+v, %d graph nodes", st.Stats, len(st.Graph.Nodes))
	}
	if st.Stats.DistinctFingerprints != 1 || len(st.Plans) != 1 {
		t.Fatalf("fingerprints = %d, plans = %d, want one canonical plan", st.Stats.DistinctFingerprints, len(st.Plans))
	}
	var fp string
	for k := range st.Plans {
		fp = k
	}

	// The fingerprint filter keeps every derivation (one plan), a bogus
	// one keeps none; batch nodes ride along only with included panes.
	var filtered struct {
		Stores []storeDoc `json:"stores"`
	}
	rec = get(t, h, "/debug/lineage?query=q1&fingerprint="+fp)
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if got := len(filtered.Stores[0].Graph.Nodes); got != len(st.Graph.Nodes) {
		t.Errorf("matching fingerprint filter dropped nodes: %d != %d", got, len(st.Graph.Nodes))
	}
	rec = get(t, h, "/debug/lineage?query=nope")
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if got := len(filtered.Stores[0].Graph.Nodes); got != 0 {
		t.Errorf("query=nope still returned %d nodes", got)
	}

	// ?id= traces one node; pick any derivation from the full graph.
	var id string
	for _, n := range st.Graph.Nodes {
		if n.Kind != "batch" {
			id = n.ID
			break
		}
	}
	rec = get(t, h, "/debug/lineage?id="+url.QueryEscape(id))
	if rec.Code != http.StatusOK {
		t.Fatalf("?id= status = %d", rec.Code)
	}
	var tr lineage.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Root != id || len(tr.Nodes) == 0 {
		t.Fatalf("trace root = %q with %d nodes, want %q", tr.Root, len(tr.Nodes), id)
	}

	// DOT rendering, both whole-graph and single-trace.
	rec = get(t, h, "/debug/lineage?format=dot")
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "digraph lineage {") {
		t.Fatalf("DOT render: status %d body %.40q", rec.Code, rec.Body.String())
	}
	rec = get(t, h, "/debug/lineage?format=dot&id="+url.QueryEscape(id))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "penwidth=2") {
		t.Fatalf("DOT trace: status %d, root should be bold", rec.Code)
	}

	// Error paths.
	if rec := get(t, h, "/debug/lineage?id=no/such/node"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/debug/lineage?pane=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad pane status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/debug/lineage?format=xml"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad format status = %d, want 400", rec.Code)
	}
}

// TestReuseEndpoint drives two engines that share a cross-query reuse
// index and checks /debug/reuse exposes the deduplicated index with its
// counters, canonical entries, and per-engine operator fingerprints.
func TestReuseEndpoint(t *testing.T) {
	ob := obs.New()
	idx := reuse.NewIndex(1 << 20)
	qa, qb := countQuery("qa"), countQuery("qb")
	qa.Sources[0].CacheKey = "words"
	qb.Sources[0].CacheKey = "words"
	// countQuery inlines at each call site, splitting the anonymous Map
	// closure's symbol; share the func value so the fingerprints agree.
	qb.Maps = qa.Maps
	e1, err := core.NewEngine(core.Config{MR: newRig(2, ob), Query: qa, Reuse: idx})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.NewEngine(core.Config{MR: newRig(2, ob), Query: qb, Reuse: idx})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []*core.Engine{e1, e2} {
		for fed := 0; fed < int(testWin/testSlide); fed++ {
			if err := eng.Ingest(0, genWords(7, fed, 120)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatal(err)
		}
	}
	srv := obsserver.New(ob)
	srv.Attach(e1, e2)
	h := srv.Handler()

	rec := get(t, h, "/debug/reuse")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Indexes []struct {
			Stats   reuse.Stats `json:"stats"`
			Entries []reuse.Entry    `json:"entries"`
		} `json:"indexes"`
		Engines []struct {
			Query string `json:"query"`
			OpFP  string `json:"opFingerprint"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Indexes) != 1 {
		t.Fatalf("indexes = %d, want the shared index deduplicated to 1", len(doc.Indexes))
	}
	if doc.Indexes[0].Stats.Published == 0 || len(doc.Indexes[0].Entries) == 0 {
		t.Fatalf("shared index saw no published panes: %+v", doc.Indexes[0].Stats)
	}
	if len(doc.Engines) != 2 {
		t.Fatalf("engines = %+v, want qa and qb", doc.Engines)
	}
	if doc.Engines[0].OpFP == "" || doc.Engines[0].OpFP != doc.Engines[1].OpFP {
		t.Errorf("identical queries disagree on op fingerprint: %+v", doc.Engines)
	}

	// ?query= keeps only the named producer's entries.
	rec = get(t, h, "/debug/reuse?query=qa")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, en := range doc.Indexes[0].Entries {
		if en.Query != "qa" {
			t.Fatalf("query=qa filter leaked entry from %q", en.Query)
		}
	}
	rec = get(t, h, "/debug/reuse?query=nope")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Indexes[0].Entries); got != 0 {
		t.Errorf("query=nope still returned %d entries", got)
	}
}
