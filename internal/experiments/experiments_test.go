package experiments

import (
	"strings"
	"testing"

	"redoop/internal/simtime"
)

// tinyConfig keeps figure regenerations fast enough for unit tests
// while preserving the qualitative comparisons.
func tinyConfig() Config {
	cfg := Default()
	cfg.Windows = 4
	cfg.RecordsPerWindow = 24000
	return cfg
}

func TestDefaultsFillZeroFields(t *testing.T) {
	var c Config
	c = c.withDefaults()
	d := Default()
	if c.Workers != d.Workers || c.BlockSize != d.BlockSize || c.Windows != d.Windows {
		t.Errorf("withDefaults incomplete: %+v", c)
	}
	// Explicit fields survive.
	c2 := Config{Workers: 3}.withDefaults()
	if c2.Workers != 3 {
		t.Error("explicit Workers overwritten")
	}
}

func TestSlideFor(t *testing.T) {
	cfg := Default()
	for _, c := range []struct {
		overlap float64
		want    simtime.Duration
	}{
		{0.9, 6 * simtime.Minute},
		{0.5, 30 * simtime.Minute},
		{0.1, 54 * simtime.Minute},
	} {
		if got := cfg.SlideFor(c.overlap); got != c.want {
			t.Errorf("SlideFor(%v) = %v, want %v", c.overlap, got, c.want)
		}
	}
}

func TestSeriesAggregates(t *testing.T) {
	s := Series{System: "X", Windows: []WindowTiming{
		{Window: 1, Response: 10 * simtime.Second, Shuffle: 1 * simtime.Second, Reduce: 2 * simtime.Second},
		{Window: 2, Response: 4 * simtime.Second, Shuffle: 1 * simtime.Second, Reduce: 1 * simtime.Second},
		{Window: 3, Response: 6 * simtime.Second, Shuffle: 2 * simtime.Second, Reduce: 1 * simtime.Second},
	}}
	if s.TotalResponse() != 20*simtime.Second {
		t.Errorf("TotalResponse = %v", s.TotalResponse())
	}
	if s.TotalShuffle() != 4*simtime.Second || s.TotalReduce() != 4*simtime.Second {
		t.Error("phase totals wrong")
	}
	if s.MeanResponse(2) != 5*simtime.Second {
		t.Errorf("MeanResponse(2) = %v, want 5s", s.MeanResponse(2))
	}
	if s.MeanResponse(9) != 0 {
		t.Error("MeanResponse past the end should be 0")
	}
	other := Series{Windows: []WindowTiming{{Window: 2, Response: 10 * simtime.Second}}}
	if got := Speedup(s, other, 2); got != 0.5 {
		t.Errorf("Speedup = %v, want 0.5", got)
	}
}

// Figure 6 at tiny scale: Redoop must beat Hadoop at overlap 0.9 after
// the cold start, and the speedup must be monotone in overlap.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	res, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("got %d panels", len(res.Panels))
	}
	var speedups []float64
	for _, p := range res.Panels {
		h, ok1 := p.Find("Hadoop")
		r, ok2 := p.Find("Redoop")
		if !ok1 || !ok2 {
			t.Fatal("missing series")
		}
		if len(h.Windows) != 4 || len(r.Windows) != 4 {
			t.Fatal("wrong window counts")
		}
		speedups = append(speedups, Speedup(h, r, 2))
	}
	// Panels are ordered 0.9, 0.5, 0.1.
	if speedups[0] <= 1.5 {
		t.Errorf("overlap 0.9 speedup = %.2f, want > 1.5", speedups[0])
	}
	if speedups[0] <= speedups[1] || speedups[1] < speedups[2]*0.8 {
		t.Errorf("speedups should decline with overlap: %v", speedups)
	}
	// At tiny scale the constant per-task overheads weigh more than
	// at full scale, so near-parity at overlap 0.1 has a wider band
	// (the full-size run in EXPERIMENTS.md is above 1).
	if speedups[2] < 0.7 {
		t.Errorf("overlap 0.1 should be near parity, got %.2f", speedups[2])
	}
}

// Figure 9 at tiny scale: the failure ordering must hold —
// Hadoop(f) worst, Redoop best, Redoop(f) still under Hadoop.
func TestFig9Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	res, err := Fig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Panels[0]
	get := func(name string) simtime.Duration {
		s, ok := p.Find(name)
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		return s.TotalResponse()
	}
	hadoop, hadoopF := get("Hadoop"), get("Hadoop(f)")
	redoop, redoopF := get("Redoop"), get("Redoop(f)")
	if !(hadoopF > hadoop) {
		t.Errorf("Hadoop(f)=%v should exceed Hadoop=%v", hadoopF, hadoop)
	}
	if !(redoopF >= redoop) {
		t.Errorf("Redoop(f)=%v should be at least Redoop=%v", redoopF, redoop)
	}
	if !(redoopF < hadoopF) {
		t.Errorf("Redoop(f)=%v should beat Hadoop(f)=%v", redoopF, hadoopF)
	}
}

func TestFormatOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	res, err := Fig6(Config{Windows: 2, RecordsPerWindow: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Format(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 6", "overlap = 0.9", "speedup", "shuffle", "reduce"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q", want)
		}
	}
	var cb strings.Builder
	res.FormatCumulative(&cb)
	if !strings.Contains(cb.String(), "cumulative") {
		t.Error("FormatCumulative missing header")
	}
}

func TestHeadline(t *testing.T) {
	mk := func(h, r simtime.Duration) *FigResult {
		return &FigResult{Panels: []Panel{{
			Overlap: 0.9,
			Series: []Series{
				{System: "Hadoop", Windows: []WindowTiming{{Window: 2, Response: h}}},
				{System: "Redoop", Windows: []WindowTiming{{Window: 2, Response: r}}},
			},
		}}}
	}
	got := Headline(mk(90*simtime.Second, 10*simtime.Second), mk(60*simtime.Second, 10*simtime.Second))
	if got != 9 {
		t.Errorf("Headline = %v, want 9", got)
	}
	if Headline(nil, nil) != 0 {
		t.Error("Headline of nothing should be 0")
	}
}

// Ablation A: full Redoop must beat the no-reuse variant, which in
// turn should not beat Hadoop by much (pane-shaping alone is not the
// win; caching is).
func TestAblationCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	res, err := AblationCaching(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Panels[0]
	hadoop, _ := p.Find("Hadoop")
	noReuse, _ := p.Find("Redoop (no cache reuse)")
	full, _ := p.Find("Redoop")
	if full.MeanResponse(2) >= noReuse.MeanResponse(2) {
		t.Errorf("caching should help: full=%v noReuse=%v",
			full.MeanResponse(2), noReuse.MeanResponse(2))
	}
	if s := Speedup(hadoop, noReuse, 2); s > 2 {
		t.Errorf("no-reuse Redoop should not massively beat Hadoop, got %.2fx", s)
	}
}

// Ablation B: cache-aware placement must beat cache-oblivious
// placement on the cache-read-heavy join.
func TestAblationScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	res, err := AblationScheduling(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Panels[0]
	oblivious, _ := p.Find("Redoop (cache-oblivious)")
	full, _ := p.Find("Redoop")
	if full.MeanResponse(2) >= oblivious.MeanResponse(2) {
		t.Errorf("Eq. 4 placement should help: full=%v oblivious=%v",
			full.MeanResponse(2), oblivious.MeanResponse(2))
	}
}

func TestFormatCSV(t *testing.T) {
	fig := &FigResult{Name: "F", Panels: []Panel{{
		Overlap: 0.9,
		Series: []Series{{System: "Hadoop", Windows: []WindowTiming{
			{Window: 1, Response: 2 * simtime.Millisecond, Shuffle: simtime.Millisecond, Reduce: simtime.Millisecond},
		}}},
	}}}
	var sb strings.Builder
	if err := fig.FormatCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d CSV lines, want header + 1 row:\n%s", len(lines), sb.String())
	}
	if lines[0] != "figure,overlap,system,window,response_ms,shuffle_ms,reduce_ms" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "F,0.90,Hadoop,1,2.0000,1.0000,1.0000") {
		t.Errorf("row = %q", lines[1])
	}
}

// Multi-query sharing: the shared variant must read substantially
// fewer DFS bytes than the private one as query count grows (the
// Shuffle column carries read bytes in this figure).
func TestMultiQuerySharing(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	cfg := tinyConfig()
	cfg.Windows = 3
	res, err := MultiQuerySharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Panels {
		if p.Overlap < 2 {
			continue // a single query cannot share with itself
		}
		var private, shared Series
		for _, s := range p.Series {
			if strings.Contains(s.System, "private") {
				private = s
			} else {
				shared = s
			}
		}
		if shared.TotalShuffle() >= private.TotalShuffle() {
			t.Errorf("k=%.0f: shared reads %d, want under private's %d",
				p.Overlap, shared.TotalShuffle(), private.TotalShuffle())
		}
		// The dedup factor grows with the query count.
		if p.Overlap >= 4 && shared.TotalShuffle()*2 >= private.TotalShuffle() {
			t.Errorf("k=%.0f: shared reads %d, want well under half of private's %d",
				p.Overlap, shared.TotalShuffle(), private.TotalShuffle())
		}
	}
}

// Figure 7 at tiny scale: the join's advantage must be largest at
// overlap 0.9 and Redoop must never lose badly.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	// The join's economics need data volume (its tasks are output- and
	// cache-read-bound); the tiny config is overhead-dominated, so
	// this test runs a mid-size one.
	cfg := tinyConfig()
	cfg.RecordsPerWindow = 120000
	res, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var speedups []float64
	for _, p := range res.Panels {
		h, _ := p.Find("Hadoop")
		r, _ := p.Find("Redoop")
		speedups = append(speedups, Speedup(h, r, 2))
	}
	if speedups[0] <= 1.5 {
		t.Errorf("join speedup at overlap 0.9 = %.2f, want > 1.5", speedups[0])
	}
	if speedups[0] <= speedups[2] {
		t.Errorf("join speedups should decline with overlap: %v", speedups)
	}
	if speedups[2] < 0.6 {
		t.Errorf("overlap 0.1 should stay near parity, got %.2f", speedups[2])
	}
}

// Figure 8 at tiny scale: adaptive Redoop must never lose to
// non-adaptive Redoop, and both must beat Hadoop during fluctuation.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	cfg := tinyConfig()
	cfg.Windows = 6
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Panels {
		h, _ := p.Find("Hadoop")
		r, _ := p.Find("Redoop")
		a, _ := p.Find("Adaptive Redoop")
		sr, sa := Speedup(h, r, 2), Speedup(h, a, 2)
		if sa < sr*0.9 {
			t.Errorf("overlap %.1f: adaptive %.2fx should not trail non-adaptive %.2fx",
				p.Overlap, sa, sr)
		}
		if sr <= 0.8 {
			t.Errorf("overlap %.1f: Redoop %.2fx should not collapse vs Hadoop", p.Overlap, sr)
		}
	}
}

// Ablation C at tiny scale: speculation must stay second-order for
// both systems (within 2x either way).
func TestAblationSpeculation(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	res, err := AblationSpeculation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Panels[0]
	for _, base := range []string{"Hadoop", "Redoop"} {
		off, ok1 := p.Find(base)
		on, ok2 := p.Find(base + " (speculative)")
		if !ok1 || !ok2 {
			t.Fatalf("missing series for %s", base)
		}
		ratio := float64(on.TotalResponse()) / float64(off.TotalResponse())
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: speculation changed cumulative time by %.2fx — should be second-order", base, ratio)
		}
	}
}

// Overlap sweep at tiny scale: endpoints must bracket the middle
// roughly monotonically (0.9 best).
func TestOverlapSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	cfg := tinyConfig()
	cfg.Windows = 3
	res, err := OverlapSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 9 {
		t.Fatalf("sweep should cover 9 overlaps, got %d", len(res.Panels))
	}
	first := res.Panels[0]
	last := res.Panels[len(res.Panels)-1]
	h0, _ := first.Find("Hadoop")
	r0, _ := first.Find("Redoop")
	h8, _ := last.Find("Hadoop")
	r8, _ := last.Find("Redoop")
	if Speedup(h0, r0, 2) <= Speedup(h8, r8, 2) {
		t.Errorf("overlap 0.9 speedup (%.2f) should exceed overlap 0.1's (%.2f)",
			Speedup(h0, r0, 2), Speedup(h8, r8, 2))
	}
}
