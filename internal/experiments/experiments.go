// Package experiments regenerates the paper's evaluation artifacts
// (Figures 6–9, §6) on the simulated cluster.
//
// Everything runs at a 1000×-reduced scale model of the paper's
// testbed: 64 KiB blocks instead of 64 MiB, megabyte instead of
// gigabyte windows, and a per-task overhead shrunk by the same factor,
// so task counts, wave counts and phase ratios — the quantities that
// determine the figures' shapes — are preserved while a full figure
// regenerates in seconds. Absolute numbers are therefore in
// milliseconds where the paper reports hundreds of seconds; the
// comparisons (who wins, by what factor, where crossovers fall) are
// the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"math"
	"time"

	"redoop/internal/account"
	"redoop/internal/baseline"
	"redoop/internal/chaos"
	"redoop/internal/cluster"
	"redoop/internal/core"
	"redoop/internal/dfs"
	"redoop/internal/health"
	"redoop/internal/iocost"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/oracle"
	"redoop/internal/records"
	"redoop/internal/reuse"
	"redoop/internal/simtime"
	"redoop/internal/workload"
)

// Config parameterizes an experiment run. Zero fields take defaults
// from Default().
type Config struct {
	// Cluster shape (paper: 30 slaves, 6 map + 2 reduce slots each).
	Workers     int
	MapSlots    int
	ReduceSlots int
	// ExecWorkers bounds the mapreduce engine's parallel-compute pool
	// (mapreduce.Engine.Workers): 0 means GOMAXPROCS, 1 forces fully
	// serial execution. Results are byte-identical at any setting —
	// only host wall-clock changes.
	ExecWorkers int
	// BlockSize is the DFS block size of the scale model.
	BlockSize   int64
	Replication int
	// Cost is the task cost model.
	Cost iocost.Model
	// Windows is how many recurrences each series measures (paper: 10).
	Windows int
	// WindowDur is the window size; the slide per panel derives from
	// the panel's overlap factor.
	WindowDur simtime.Duration
	// RecordsPerWindow fixes the data volume of one window; the
	// per-slide batch size derives from it so total window volume is
	// constant across overlaps.
	RecordsPerWindow int
	// Reducers is the query's fixed reduce partition count.
	Reducers int
	// Seed drives all generators.
	Seed int64
	// Obs optionally instruments every runtime built by NewRuntime
	// (metrics registry + trace spans); nil disables observability.
	Obs *obs.Observer
	// Health optionally shares one SLO monitor across every Redoop
	// engine an experiment builds, so a whole figure's queries land in
	// a single /debug/health snapshot; nil gives each engine a private
	// monitor.
	Health *health.Monitor
	// Account optionally shares one cost ledger across every Redoop
	// engine an experiment builds, so a whole figure's queries roll up
	// into a single /debug/costs snapshot; nil disables cost
	// accounting.
	Account *account.Ledger
	// OnEngine, when non-nil, receives every Redoop engine an
	// experiment builds, as soon as it exists — the hook a live
	// introspection server uses to attach its /debug endpoints to
	// runs in flight.
	OnEngine func(*core.Engine)
	// Reuse optionally attaches a cross-query pane reuse index to
	// every Redoop engine an experiment builds. Single-query runs
	// publish into it but never hit (there is no sibling to reuse
	// from); the shared-stream reuse workload builds its own index.
	Reuse *reuse.Index
	// Chaos, when non-nil, replays the deterministic fault schedule
	// against every Redoop run an experiment performs: its actions
	// land between a window's batches and its trigger, its task-
	// attempt faults and straggler knobs compose with any figure-
	// scripted FaultPlan. The Hadoop baseline runs clean — chaos
	// verifies Redoop's recovery, not Hadoop's.
	Chaos *chaos.Schedule
	// Lineage optionally shares one provenance store across every
	// Redoop engine an experiment builds, so a whole figure's
	// derivations land in a single /debug/lineage snapshot. When nil
	// and OracleCheck is set, each Redoop run gets a private store so
	// the oracle's lineage audit always has provenance to check.
	Lineage *lineage.Store
	// CacheDiskLimit bounds each node's local bytes on every Redoop
	// engine an experiment builds (core.Config.CacheDiskLimit): over
	// the limit, cost-based replacement evicts the lowest benefit-
	// density reduce-input caches after the purge tick. 0 disables it.
	CacheDiskLimit int64
	// OracleCheck runs the differential window oracle after every
	// Redoop recurrence: a divergence from baseline recomputation or
	// a structural-invariant violation fails the run.
	OracleCheck bool
	// OnVerdict, when non-nil, receives every oracle verdict (system
	// label + per-recurrence result) before pass/fail is enforced —
	// the hook -chaos-report uses to build its JSON section.
	OnVerdict func(system string, v oracle.Verdict)
}

// notifyEngine invokes the OnEngine hook if set.
func (c Config) notifyEngine(e *core.Engine) {
	if c.OnEngine != nil {
		c.OnEngine(e)
	}
}

// Default returns the calibrated scale-model configuration.
func Default() Config {
	cost := iocost.Default()
	cost.TaskOverhead = 200 * time.Microsecond // sub-ms: the 0.8 s Hadoop task launch ÷ the 1000× scale, halved for the smaller blocks
	return Config{
		Workers:          10,
		MapSlots:         6,
		ReduceSlots:      2,
		BlockSize:        16 << 10,
		Replication:      3,
		Cost:             cost,
		Windows:          10,
		WindowDur:        60 * simtime.Minute,
		RecordsPerWindow: 240000,
		Reducers:         20,
		Seed:             42,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := Default()
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.MapSlots == 0 {
		c.MapSlots = d.MapSlots
	}
	if c.ReduceSlots == 0 {
		c.ReduceSlots = d.ReduceSlots
	}
	if c.BlockSize == 0 {
		c.BlockSize = d.BlockSize
	}
	if c.Replication == 0 {
		c.Replication = d.Replication
	}
	if c.Cost == (iocost.Model{}) {
		c.Cost = d.Cost
	}
	if c.Windows == 0 {
		c.Windows = d.Windows
	}
	if c.WindowDur == 0 {
		c.WindowDur = d.WindowDur
	}
	if c.RecordsPerWindow == 0 {
		c.RecordsPerWindow = d.RecordsPerWindow
	}
	if c.Reducers == 0 {
		c.Reducers = d.Reducers
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// SlideFor derives the slide from an overlap factor, snapped to whole
// minutes so pane units stay friendly (paper: overlap = (win-slide)/win).
func (c Config) SlideFor(overlap float64) simtime.Duration {
	slide := time.Duration(float64(c.WindowDur) * (1 - overlap))
	minute := simtime.Minute
	snapped := ((slide + minute/2) / minute) * minute
	if snapped < minute {
		snapped = minute
	}
	if snapped > c.WindowDur {
		snapped = c.WindowDur
	}
	return snapped
}

// WindowTiming is one window's measured times for one system.
type WindowTiming struct {
	Window   int // 1-based, as in the paper's plots
	Response simtime.Duration
	Shuffle  simtime.Duration
	Reduce   simtime.Duration
}

// Series is one system's measurements across the experiment's windows.
type Series struct {
	System  string
	Overlap float64
	Windows []WindowTiming
}

// TotalShuffle sums the shuffle phase over all windows (the paper's
// right-column bars).
func (s Series) TotalShuffle() simtime.Duration {
	var t simtime.Duration
	for _, w := range s.Windows {
		t += w.Shuffle
	}
	return t
}

// TotalReduce sums the reduce phase over all windows.
func (s Series) TotalReduce() simtime.Duration {
	var t simtime.Duration
	for _, w := range s.Windows {
		t += w.Reduce
	}
	return t
}

// TotalResponse sums per-window response times.
func (s Series) TotalResponse() simtime.Duration {
	var t simtime.Duration
	for _, w := range s.Windows {
		t += w.Response
	}
	return t
}

// MeanResponse averages the response time of windows from `from`
// (1-based) onward; from=2 skips the cold first window as the paper's
// speedup numbers do.
func (s Series) MeanResponse(from int) simtime.Duration {
	var t simtime.Duration
	n := 0
	for _, w := range s.Windows {
		if w.Window >= from {
			t += w.Response
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return t / simtime.Duration(n)
}

// Speedup returns a/b mean response from window `from`, guarding
// against zero.
func Speedup(a, b Series, from int) float64 {
	den := float64(b.MeanResponse(from))
	if den == 0 {
		return math.NaN()
	}
	return float64(a.MeanResponse(from)) / den
}

// Panel is one sub-figure: every system's series at one overlap.
type Panel struct {
	Overlap float64
	Series  []Series
}

// Find returns the named system's series.
func (p Panel) Find(system string) (Series, bool) {
	for _, s := range p.Series {
		if s.System == system {
			return s, true
		}
	}
	return Series{}, false
}

// FigResult is a regenerated figure.
type FigResult struct {
	Name   string
	Query  string
	Panels []Panel
}

// runSpec bundles what varies between figures.
type runSpec struct {
	queryName string
	sources   int
	query     func() *core.Query
	// gen generates source src's batch for [startUnit, endUnit).
	gen      func(src int, startUnit, endUnit int64, n int) []records.Record
	sched    workload.RateSchedule
	overlap  float64
	windows  int
	adaptive bool
	// redoopBefore runs before each Redoop recurrence (fault
	// injection hooks).
	redoopBefore func(r int, eng *core.Engine)
	// faults optionally injects task-attempt failures into either
	// system's runtime.
	faults mapreduce.FaultPlan
}

// NewRuntime builds an isolated cluster+DFS+runtime for the
// configuration (exported for the CLI tools).
func (c Config) NewRuntime(seedShift int64) *mapreduce.Engine {
	ids := make([]int, c.Workers)
	for i := range ids {
		ids[i] = i
	}
	cl := cluster.MustNew(cluster.Config{
		Workers: c.Workers, MapSlots: c.MapSlots, ReduceSlots: c.ReduceSlots,
	})
	d := dfs.MustNew(dfs.Config{
		BlockSize:   c.BlockSize,
		Replication: c.Replication,
		Nodes:       ids,
		Seed:        c.Seed + seedShift,
	})
	d.SetObserver(c.Obs)
	d.SetTransferCost(c.Cost.NetTransfer)
	mr := mapreduce.MustNew(cl, d, c.Cost)
	mr.Obs = c.Obs
	mr.Workers = c.ExecWorkers
	return mr
}

// feeder incrementally delivers batches to a consumer. Batches arrive
// at pane granularity — the periodic log-collection uploads of §2.1 —
// so the baseline driver's file selection aligns with window edges the
// way the paper's Hadoop setup does. The fluctuation schedule is still
// indexed by slide: every pane inside one slide interval carries that
// slide's multiplier.
type feeder struct {
	cfg   Config
	spec  runSpec
	slide simtime.Duration
	pane  simtime.Duration
	base  int // records per pane at multiplier 1
	fed   int // panes delivered
}

func newFeeder(cfg Config, spec runSpec) *feeder {
	slide := cfg.SlideFor(spec.overlap)
	pane := simtime.Duration(windowGCD(int64(cfg.WindowDur), int64(slide)))
	panesPerWin := float64(cfg.WindowDur) / float64(pane)
	base := int(float64(cfg.RecordsPerWindow) / panesPerWin)
	return &feeder{cfg: cfg, spec: spec, slide: slide, pane: pane, base: base}
}

func windowGCD(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// feedThrough delivers every pane batch whose range starts before the
// given unit bound.
func (f *feeder) feedThrough(unit int64, deliver func(src int, recs []records.Record) error) error {
	for ; int64(f.fed)*int64(f.pane) < unit; f.fed++ {
		start := int64(f.fed) * int64(f.pane)
		end := start + int64(f.pane)
		slideIdx := int(start / int64(f.slide))
		n := int(float64(f.base) * f.spec.sched(slideIdx))
		for src := 0; src < f.spec.sources; src++ {
			if err := deliver(src, f.spec.gen(src, start, end, n)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runRedoop measures the Redoop engine on the spec.
func (c Config) runRedoop(spec runSpec, systemName string) (Series, error) {
	mr := c.NewRuntime(1)
	mr.Faults = spec.faults
	q := spec.query()
	lin := c.Lineage
	if lin == nil && c.OracleCheck {
		lin = lineage.New(0)
	}
	eng, err := core.NewEngine(core.Config{MR: mr, Query: q, Adaptive: spec.adaptive, Health: c.Health, Account: c.Account, Lineage: lin, Reuse: c.Reuse, CacheDiskLimit: c.CacheDiskLimit})
	if err != nil {
		return Series{}, err
	}
	c.notifyEngine(eng)

	// Ingest chain, innermost first: engine ← oracle tee ← chaos
	// delay gate. Batches a DelayBatch action holds bypass the tee
	// until the injector releases them through `inner`, so the oracle
	// always retains exactly what the engine eventually receives.
	inner := eng.Ingest
	var ora *oracle.Oracle
	if c.OracleCheck {
		ora, err = oracle.New(eng)
		if err != nil {
			return Series{}, err
		}
		inner = ora.WrapIngest(inner)
	}
	ingest := inner
	var inj *chaos.Injector
	if c.Chaos != nil {
		inj = chaos.NewInjector(c.Chaos, mr)
		if ora != nil {
			inj.OnCorrupt = ora.ExcludePath
		}
		ingest = inj.WrapIngest(eng, inner)
	}

	f := newFeeder(c, spec)
	series := Series{System: systemName, Overlap: spec.overlap}
	winSpec := q.Spec()
	for r := 0; r < spec.windows; r++ {
		if err := f.feedThrough(winSpec.WindowClose(r), ingest); err != nil {
			return Series{}, err
		}
		if inj != nil {
			if err := inj.BeforeRecurrence(r, eng, inner); err != nil {
				return Series{}, fmt.Errorf("%s window %d: %w", systemName, r+1, err)
			}
		}
		if spec.redoopBefore != nil {
			spec.redoopBefore(r, eng)
		}
		res, err := eng.RunNext()
		if err != nil {
			return Series{}, fmt.Errorf("%s window %d: %w", systemName, r+1, err)
		}
		if ora != nil {
			ver := ora.Check(res)
			if c.OnVerdict != nil {
				c.OnVerdict(systemName, ver)
			}
			if verr := ver.Err(); verr != nil {
				return Series{}, fmt.Errorf("%s window %d: %w", systemName, r+1, verr)
			}
		}
		series.Windows = append(series.Windows, WindowTiming{
			Window:   r + 1,
			Response: res.ResponseTime,
			Shuffle:  res.Stats.ShuffleTime,
			Reduce:   res.Stats.ReduceTime,
		})
	}
	return series, nil
}

// runHadoop measures the plain-Hadoop baseline on the spec.
func (c Config) runHadoop(spec runSpec, systemName string) (Series, error) {
	mr := c.NewRuntime(2)
	mr.Faults = spec.faults
	q := spec.query()
	drv, err := baseline.NewDriver(mr, q)
	if err != nil {
		return Series{}, err
	}
	f := newFeeder(c, spec)
	series := Series{System: systemName, Overlap: spec.overlap}
	winSpec := q.Spec()
	for r := 0; r < spec.windows; r++ {
		if err := f.feedThrough(winSpec.WindowClose(r), drv.Ingest); err != nil {
			return Series{}, err
		}
		res, err := drv.RunNext()
		if err != nil {
			return Series{}, fmt.Errorf("%s window %d: %w", systemName, r+1, err)
		}
		series.Windows = append(series.Windows, WindowTiming{
			Window:   r + 1,
			Response: res.ResponseTime,
			Shuffle:  res.Stats.ShuffleTime,
			Reduce:   res.Stats.ReduceTime,
		})
	}
	return series, nil
}
