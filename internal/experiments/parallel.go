package experiments

import (
	"fmt"
	"reflect"
	"time"

	"redoop/internal/core"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/workload"
)

// ParallelSpeedupResult reports the host wall-clock comparison of the
// same Figure-6-scale workload executed serially (ExecWorkers=1) and
// with a parallel compute pool. Virtual results are identical by
// construction; VirtualEqual verifies it end to end.
type ParallelSpeedupResult struct {
	// Workers is the parallel pool width measured against serial.
	Workers int
	// SerialWall / ParallelWall are host (real) elapsed times.
	SerialWall   time.Duration
	ParallelWall time.Duration
	// Speedup is SerialWall / ParallelWall.
	Speedup float64
	// VirtualEqual is true when both modes produced identical
	// per-window virtual timings for every series.
	VirtualEqual bool
	// Series are the parallel run's measurements (identical to the
	// serial run's when VirtualEqual).
	Series []Series
}

// parallelSpec is the Figure-6 overlap-0.9 aggregation workload — the
// heaviest steady-state map volume of the paper's figures, and the
// benchmark the ≥2× parallel speedup acceptance target is measured on.
func parallelSpec(cfg Config) runSpec {
	wcc := workload.DefaultWCC(cfg.Seed)
	const overlap = 0.9
	return runSpec{
		queryName: "Q1-par",
		sources:   1,
		overlap:   overlap,
		windows:   cfg.Windows,
		sched:     workload.SteadyRate,
		gen: func(_ int, start, end int64, n int) []records.Record {
			return workload.WCC(wcc, start, end, n)
		},
		query: func() *core.Query {
			return queries.WCCAggregation("q1p", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
		},
	}
}

// ParallelSpeedup runs the Figure-6-scale workload (Hadoop + Redoop
// series) twice — ExecWorkers=1, then ExecWorkers=workers — and
// reports the wall-clock ratio plus a virtual-equality check.
func (c Config) ParallelSpeedup(workers int) (*ParallelSpeedupResult, error) {
	c = c.withDefaults()
	if workers <= 0 {
		workers = 4
	}
	run := func(execWorkers int) ([]Series, time.Duration, error) {
		cfg := c
		cfg.ExecWorkers = execWorkers
		spec := parallelSpec(cfg)
		start := time.Now()
		hadoop, err := cfg.runHadoop(spec, "Hadoop")
		if err != nil {
			return nil, 0, err
		}
		redoop, err := cfg.runRedoop(spec, "Redoop")
		if err != nil {
			return nil, 0, err
		}
		return []Series{hadoop, redoop}, time.Since(start), nil
	}

	serialSeries, serialWall, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("serial run: %w", err)
	}
	parSeries, parWall, err := run(workers)
	if err != nil {
		return nil, fmt.Errorf("parallel run: %w", err)
	}

	res := &ParallelSpeedupResult{
		Workers:      workers,
		SerialWall:   serialWall,
		ParallelWall: parWall,
		VirtualEqual: reflect.DeepEqual(serialSeries, parSeries),
		Series:       parSeries,
	}
	if parWall > 0 {
		res.Speedup = float64(serialWall) / float64(parWall)
	}
	return res, nil
}
