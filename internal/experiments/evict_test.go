package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"redoop/internal/account"
	"redoop/internal/chaos"
	"redoop/internal/core"
)

// evictLimit is a per-node cache budget small enough that the steady
// state of the high-overlap aggregation workload cannot hold every
// unexpired reduce-input cache, so cost-based replacement must fire.
const evictLimit = 24 << 10

// TestEvictionFiresAndStaysCorrect pins the replacement tier's
// end-to-end contract on the aggregation workload: with a tight disk
// limit evictions actually happen, every evicted cache is rebuilt on
// demand through the §5 ladder (the oracle byte-checks every window
// against independent recomputation), and the decision log carries the
// ledger's feature vector for each victim.
func TestEvictionFiresAndStaysCorrect(t *testing.T) {
	cfg := detConfig()
	cfg.RecordsPerWindow /= 4
	cfg.Account = account.New()
	cfg.CacheDiskLimit = evictLimit
	cfg.OracleCheck = true
	var engines []*core.Engine
	cfg.OnEngine = func(e *core.Engine) { engines = append(engines, e) }
	if _, err := cfg.runRedoop(aggSpec(cfg, 0.9), "evict"); err != nil {
		t.Fatal(err)
	}
	if len(engines) != 1 {
		t.Fatalf("captured %d engines, want 1", len(engines))
	}
	log := engines[0].EvictionLog()
	if len(log) == 0 {
		t.Fatalf("disk limit %d never triggered an eviction — the replacement tier is dead code at this scale", evictLimit)
	}
	for _, line := range log {
		var r, node, bytes, recompute, hits int64
		var pid string
		if _, err := fmt.Sscanf(line, "r=%d node=%d pid=%s bytes=%d recompute=%d hits=%d",
			&r, &node, &pid, &bytes, &recompute, &hits); err != nil {
			t.Fatalf("malformed decision line %q: %v", line, err)
		}
		if bytes <= 0 {
			t.Fatalf("evicted a zero-byte cache: %q", line)
		}
	}
}

// TestEvictionLogSerialParallelIdentical extends the two-phase
// determinism contract to replacement decisions: the eviction sequence
// — victims, order, features — must be byte-identical whether the
// engine computes with one worker or a wide pool, because every
// decision runs in RunNext's serial tail over ledger state that is
// itself worker-invariant.
func TestEvictionLogSerialParallelIdentical(t *testing.T) {
	run := func(workers int) ([]string, []account.QueryCosts) {
		cfg := detConfig()
		cfg.RecordsPerWindow /= 4
		cfg.ExecWorkers = workers
		cfg.Account = account.New()
		cfg.CacheDiskLimit = evictLimit
		cfg.OracleCheck = true
		var engines []*core.Engine
		cfg.OnEngine = func(e *core.Engine) { engines = append(engines, e) }
		if _, err := cfg.runRedoop(aggSpec(cfg, 0.9), "det"); err != nil {
			t.Fatal(err)
		}
		if len(engines) != 1 {
			t.Fatalf("captured %d engines, want 1", len(engines))
		}
		return engines[0].EvictionLog(), cfg.Account.Snapshot()
	}
	serialLog, serialCosts := run(1)
	parLog, parCosts := run(parWorkers())
	if len(serialLog) == 0 {
		t.Fatal("no evictions fired; the determinism check is vacuous")
	}
	if !reflect.DeepEqual(serialLog, parLog) {
		t.Errorf("eviction decisions diverge across worker counts:\nserial:   %v\nparallel: %v", serialLog, parLog)
	}
	if !reflect.DeepEqual(serialCosts, parCosts) {
		t.Errorf("cost snapshots diverge under eviction:\nserial:   %+v\nparallel: %+v", serialCosts, parCosts)
	}
}

// TestEvictionUnderChaos replays the seed-matrix fault storms with the
// disk limit engaged: cache drops, node crashes and pane corruption
// compose with policy evictions, and every window must still verify
// against the oracle. The same schedule replayed twice must make the
// same decisions — CI failures stay local repros.
func TestEvictionUnderChaos(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runOnce := func() []string {
				cfg := soakConfig(seed)
				cfg.Windows = 4
				sched, err := chaos.Generate(seed, chaos.ProfileMixed, cfg.Windows, cfg.Workers)
				if err != nil {
					t.Fatalf("generate schedule: %v", err)
				}
				cfg.Chaos = sched
				cfg.Account = account.New()
				cfg.CacheDiskLimit = evictLimit
				var engines []*core.Engine
				cfg.OnEngine = func(e *core.Engine) { engines = append(engines, e) }
				verdicts, err := cfg.RunChaosRegime("agg")
				if err != nil {
					t.Fatalf("agg under %s: %v", sched, err)
				}
				for _, v := range verdicts {
					if !v.OK() {
						t.Errorf("window %d: match=%v violations=%v", v.Recurrence+1, v.Match, v.Violations)
					}
				}
				var log []string
				for _, e := range engines {
					log = append(log, e.EvictionLog()...)
				}
				return log
			}
			a, b := runOnce(), runOnce()
			if len(a) == 0 {
				t.Fatal("no evictions under this schedule; the replay check is vacuous")
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("replayed schedule made different eviction decisions:\n%v\n%v", a, b)
			}
		})
	}
}
