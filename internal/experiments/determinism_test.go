package experiments

// The serial-vs-parallel determinism harness: every workload shape the
// suite exercises — plain aggregation, join, jitter + stragglers,
// speculative execution, fault injection — must produce byte-identical
// outputs, equal virtual end times, and equal Stats whether the engine
// computes with one worker or a wide pool. This is the contract that
// makes Engine.Workers a pure wall-clock knob.

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"redoop/internal/baseline"
	"redoop/internal/core"
	"redoop/internal/mapreduce"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/workload"
)

// windowCapture is one recurrence's full observable outcome.
type windowCapture struct {
	Output      []byte
	CompletedAt simtime.Time
	Stats       mapreduce.Stats
}

func detConfig() Config {
	cfg := Default()
	cfg.Windows = 4
	cfg.RecordsPerWindow = 40000
	return cfg
}

func aggSpec(cfg Config, overlap float64) runSpec {
	wcc := workload.DefaultWCC(cfg.Seed)
	return runSpec{
		queryName: "Q1-det",
		sources:   1,
		overlap:   overlap,
		windows:   cfg.Windows,
		sched:     workload.SteadyRate,
		gen: func(_ int, start, end int64, n int) []records.Record {
			return workload.WCC(wcc, start, end, n)
		},
		query: func() *core.Query {
			return queries.WCCAggregation("q1d", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
		},
	}
}

func joinSpec(cfg Config, overlap float64) runSpec {
	ffg := workload.DefaultFFG(cfg.Seed)
	return runSpec{
		queryName: "Q2-det",
		sources:   2,
		overlap:   overlap,
		windows:   cfg.Windows,
		sched:     workload.SteadyRate,
		gen: func(src int, start, end int64, n int) []records.Record {
			if src == 0 {
				return workload.FFGReadings(ffg, start, end, n)
			}
			return workload.FFGEvents(ffg, start, end, n/4)
		},
		query: func() *core.Query {
			return queries.FFGJoin("q2d", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
		},
	}
}

// runRedoopCapture runs the Redoop engine over the spec and captures
// each window's output bytes, virtual completion time, and Stats.
func runRedoopCapture(t *testing.T, cfg Config, spec runSpec, tune func(*mapreduce.Engine)) []windowCapture {
	t.Helper()
	mr := cfg.NewRuntime(1)
	mr.Faults = spec.faults
	if tune != nil {
		tune(mr)
	}
	q := spec.query()
	eng, err := core.NewEngine(core.Config{MR: mr, Query: q, Adaptive: spec.adaptive})
	if err != nil {
		t.Fatal(err)
	}
	f := newFeeder(cfg, spec)
	winSpec := q.Spec()
	var caps []windowCapture
	for r := 0; r < spec.windows; r++ {
		if err := f.feedThrough(winSpec.WindowClose(r), eng.Ingest); err != nil {
			t.Fatal(err)
		}
		if spec.redoopBefore != nil {
			spec.redoopBefore(r, eng)
		}
		res, err := eng.RunNext()
		if err != nil {
			t.Fatalf("redoop window %d: %v", r+1, err)
		}
		caps = append(caps, windowCapture{
			Output:      records.EncodePairs(res.Output),
			CompletedAt: res.CompletedAt,
			Stats:       res.Stats,
		})
	}
	return caps
}

// runHadoopCapture is runRedoopCapture for the plain-Hadoop baseline.
func runHadoopCapture(t *testing.T, cfg Config, spec runSpec, tune func(*mapreduce.Engine)) []windowCapture {
	t.Helper()
	mr := cfg.NewRuntime(2)
	mr.Faults = spec.faults
	if tune != nil {
		tune(mr)
	}
	q := spec.query()
	drv, err := baseline.NewDriver(mr, q)
	if err != nil {
		t.Fatal(err)
	}
	f := newFeeder(cfg, spec)
	winSpec := q.Spec()
	var caps []windowCapture
	for r := 0; r < spec.windows; r++ {
		if err := f.feedThrough(winSpec.WindowClose(r), drv.Ingest); err != nil {
			t.Fatal(err)
		}
		res, err := drv.RunNext()
		if err != nil {
			t.Fatalf("hadoop window %d: %v", r+1, err)
		}
		caps = append(caps, windowCapture{
			Output:      records.EncodePairs(res.Output),
			CompletedAt: res.CompletedAt,
			Stats:       res.Stats,
		})
	}
	return caps
}

func assertCapturesEqual(t *testing.T, name string, serial, par []windowCapture) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("%s: window counts diverge: %d vs %d", name, len(serial), len(par))
	}
	for i := range serial {
		if !bytes.Equal(serial[i].Output, par[i].Output) {
			t.Errorf("%s window %d: outputs diverge (%d vs %d bytes)",
				name, i+1, len(serial[i].Output), len(par[i].Output))
		}
		if serial[i].CompletedAt != par[i].CompletedAt {
			t.Errorf("%s window %d: virtual end times diverge: %v vs %v",
				name, i+1, serial[i].CompletedAt, par[i].CompletedAt)
		}
		if !reflect.DeepEqual(serial[i].Stats, par[i].Stats) {
			t.Errorf("%s window %d: stats diverge:\nserial:   %+v\nparallel: %+v",
				name, i+1, serial[i].Stats, par[i].Stats)
		}
	}
}

func parWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	return w
}

// jitterize gives every configuration non-trivial, seeded duration
// noise plus stragglers — the regime where accounting-order mistakes
// would show up as timeline divergence.
func jitterize(cfg Config) func(*mapreduce.Engine) {
	return func(mr *mapreduce.Engine) {
		mr.Jitter = 0.3
		mr.StragglerProb = 0.08
		mr.StragglerFactor = 6
		mr.JitterSeed = cfg.Seed
	}
}

func TestSerialParallelDeterminism(t *testing.T) {
	base := detConfig()
	cases := []struct {
		name string
		spec func(Config) runSpec
		cfg  func() Config
		tune func(Config) func(*mapreduce.Engine)
	}{
		{
			name: "aggregation",
			spec: func(c Config) runSpec { return aggSpec(c, 0.9) },
			cfg:  func() Config { return base },
		},
		{
			name: "join",
			spec: func(c Config) runSpec { return joinSpec(c, 0.5) },
			cfg: func() Config {
				c := base
				c.RecordsPerWindow /= 4
				return c
			},
		},
		{
			name: "jitter-stragglers",
			spec: func(c Config) runSpec { return aggSpec(c, 0.9) },
			cfg:  func() Config { return base },
			tune: jitterize,
		},
		{
			name: "speculative",
			spec: func(c Config) runSpec { return aggSpec(c, 0.9) },
			cfg:  func() Config { return base },
			tune: func(c Config) func(*mapreduce.Engine) {
				j := jitterize(c)
				return func(mr *mapreduce.Engine) {
					j(mr)
					mr.Speculative = true
				}
			},
		},
		{
			name: "fault-injection",
			spec: func(c Config) runSpec {
				s := aggSpec(c, 0.5)
				s.faults = newFig9FaultPlan()
				s.redoopBefore = func(r int, eng *core.Engine) { dropCaches(eng, r, 4) }
				return s
			},
			cfg: func() Config { return base },
		},
		{
			name: "adaptive-proactive",
			spec: func(c Config) runSpec {
				s := aggSpec(c, 0.9)
				s.adaptive = true
				return s
			},
			cfg: func() Config { return base },
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			var tune func(*mapreduce.Engine)
			if tc.tune != nil {
				tune = tc.tune(cfg)
			}

			serialCfg := cfg
			serialCfg.ExecWorkers = 1
			parCfg := cfg
			parCfg.ExecWorkers = parWorkers()

			serialR := runRedoopCapture(t, serialCfg, tc.spec(serialCfg), tune)
			parR := runRedoopCapture(t, parCfg, tc.spec(parCfg), tune)
			assertCapturesEqual(t, tc.name+"/redoop", serialR, parR)

			serialH := runHadoopCapture(t, serialCfg, tc.spec(serialCfg), tune)
			parH := runHadoopCapture(t, parCfg, tc.spec(parCfg), tune)
			assertCapturesEqual(t, tc.name+"/hadoop", serialH, parH)
		})
	}
}

// ParallelSpeedup's virtual-equality flag must hold on the bench
// workload itself (small scale here; the CLI runs it full-size).
func TestParallelSpeedupVirtualEqual(t *testing.T) {
	cfg := detConfig()
	cfg.Windows = 2
	cfg.RecordsPerWindow = 20000
	res, err := cfg.ParallelSpeedup(parWorkers())
	if err != nil {
		t.Fatal(err)
	}
	if !res.VirtualEqual {
		t.Error("serial and parallel runs must produce identical virtual series")
	}
	if res.Workers != parWorkers() {
		t.Errorf("Workers = %d, want %d", res.Workers, parWorkers())
	}
}
