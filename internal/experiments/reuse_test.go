package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"redoop/internal/chaos"
	"redoop/internal/reuse"
	"redoop/internal/simtime"
)

func reuseTestConfig() Config {
	return Config{
		Workers:          6,
		MapSlots:         4,
		ReduceSlots:      2,
		BlockSize:        16 << 10,
		Windows:          5,
		WindowDur:        60 * simtime.Minute,
		RecordsPerWindow: 6000,
		Reducers:         4,
		Seed:             7,
	}
}

// TestCrossQueryReuse is the tentpole acceptance check: the two
// identical Figure-6 aggregations over one shared stream compute each
// shared pane exactly once (the sibling runs zero map tasks), the
// tumbling roll-up composes its panes from the finer ones, and every
// query's window outputs are byte-identical with the index on or off
// — all under the differential oracle.
func TestCrossQueryReuse(t *testing.T) {
	cfg := reuseTestConfig()
	cfg.OracleCheck = true
	off, err := RunCrossQueryReuse(cfg, false)
	if err != nil {
		t.Fatalf("reuse off: %v", err)
	}
	on, err := RunCrossQueryReuse(cfg, true)
	if err != nil {
		t.Fatalf("reuse on: %v", err)
	}
	if off.Index != nil {
		t.Errorf("reuse-off run reported index stats: %+v", off.Index)
	}
	for i := range off.Queries {
		o, n := off.Queries[i], on.Queries[i]
		if o.Query != n.Query {
			t.Fatalf("query order diverged: %q vs %q", o.Query, n.Query)
		}
		if o.OutputDigest != n.OutputDigest {
			t.Errorf("%s: output digest diverged: off=%s on=%s", o.Query, o.OutputDigest, n.OutputDigest)
		}
		if o.Windows != cfg.Windows || n.Windows != cfg.Windows {
			t.Errorf("%s: windows off=%d on=%d, want %d", o.Query, o.Windows, n.Windows, cfg.Windows)
		}
	}
	// The identical-geometry sibling must never map: every one of its
	// panes is satisfied from fig6-a's published routs.
	if n := on.Queries[1].MapTasks; n != 0 {
		t.Errorf("sibling %s ran %d map tasks with reuse on, want 0", on.Queries[1].Query, n)
	}
	if on.Queries[1].CrossQueryHits == 0 {
		t.Errorf("sibling %s recorded no cross-query hits", on.Queries[1].Query)
	}
	if on.Queries[1].CrossSavedNS <= 0 {
		t.Errorf("sibling %s saved nothing cross-query: %d", on.Queries[1].Query, on.Queries[1].CrossSavedNS)
	}
	// The roll-up composes all but its first window via subsumption.
	if on.Queries[2].CrossQueryHits == 0 {
		t.Errorf("roll-up %s recorded no cross-query hits", on.Queries[2].Query)
	}
	if on.Index == nil {
		t.Fatal("reuse-on run reported no index stats")
	}
	if on.Index.ExactHits == 0 || on.Index.SubsumHits == 0 {
		t.Errorf("index stats missing hit kinds: %+v", on.Index)
	}
	if onTotal, offTotal := on.TotalMapTasks(), off.TotalMapTasks(); onTotal >= offTotal {
		t.Errorf("reuse did not reduce total map tasks: on=%d off=%d", onTotal, offTotal)
	}
}

// TestCrossQueryReuseFigure exercises the figure wrapper, which
// re-asserts digest equality and the sibling's zero map tasks before
// emitting panels.
func TestCrossQueryReuseFigure(t *testing.T) {
	cfg := reuseTestConfig()
	res, err := CrossQueryReuse(cfg)
	if err != nil {
		t.Fatalf("CrossQueryReuse: %v", err)
	}
	if len(res.Panels) != 1 || len(res.Panels[0].Series) != 6 {
		t.Fatalf("want 1 panel with 6 series (3 queries x on/off), got %+v", res.Panels)
	}
}

// TestReuseIndexWorkersDeterminism: the reuse index is populated and
// probed only at serial commit points, so its end-of-run snapshot —
// and every per-query stat — must be identical between a fully serial
// run and a parallel one.
func TestReuseIndexWorkersDeterminism(t *testing.T) {
	run := func(workers int) *ReuseReport {
		cfg := reuseTestConfig()
		cfg.ExecWorkers = workers
		rep, err := RunCrossQueryReuse(cfg, true)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep
	}
	w1, w4 := run(1), run(4)
	if !reflect.DeepEqual(w1.Snapshot, w4.Snapshot) {
		t.Errorf("index snapshots diverge between -workers 1 and 4:\nw1=%+v\nw4=%+v", w1.Snapshot, w4.Snapshot)
	}
	if !reflect.DeepEqual(w1.Queries, w4.Queries) {
		t.Errorf("per-query stats diverge between -workers 1 and 4:\nw1=%+v\nw4=%+v", w1.Queries, w4.Queries)
	}
	if !reflect.DeepEqual(w1.Index, w4.Index) {
		t.Errorf("index stats diverge: w1=%+v w4=%+v", w1.Index, w4.Index)
	}
}

// TestChaosReuseSoak extends the chaos soak to cross-query reuse: per
// seed, the shared-stream workload runs under the mixed fault storm
// with the oracle checking every window, reuse off then on, and every
// query's outputs must be byte-identical between the two variants.
// The join leg attaches a reuse index to the join soak regime —
// joins are reuse-ineligible, so the index must not perturb them.
func TestChaosReuseSoak(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		t.Run(fmt.Sprintf("seed%d/agg", seed), func(t *testing.T) {
			cfg := soakConfig(seed)
			cfg.OracleCheck = true
			sched, err := chaos.Generate(seed, chaos.ProfileMixed, cfg.Windows, cfg.Workers)
			if err != nil {
				t.Fatalf("generate schedule: %v", err)
			}
			cfg.Chaos = sched
			off, err := RunCrossQueryReuse(cfg, false)
			if err != nil {
				t.Fatalf("reuse off under %s: %v", sched, err)
			}
			on, err := RunCrossQueryReuse(cfg, true)
			if err != nil {
				t.Fatalf("reuse on under %s: %v", sched, err)
			}
			for i := range off.Queries {
				if off.Queries[i].OutputDigest != on.Queries[i].OutputDigest {
					t.Errorf("%s: outputs diverge between reuse off/on under chaos", off.Queries[i].Query)
				}
			}
		})
		t.Run(fmt.Sprintf("seed%d/join", seed), func(t *testing.T) {
			cfg := soakConfig(seed)
			sched, err := chaos.Generate(seed, chaos.ProfileMixed, cfg.Windows, cfg.Workers)
			if err != nil {
				t.Fatalf("generate schedule: %v", err)
			}
			cfg.Chaos = sched
			cfg.Reuse = reuse.NewIndex(0)
			verdicts, err := cfg.RunChaosRegime("join")
			if err != nil {
				t.Fatalf("join with reuse index under %s: %v", sched, err)
			}
			for _, v := range verdicts {
				if !v.OK() {
					t.Errorf("window %d: match=%v violations=%v", v.Recurrence+1, v.Match, v.Violations)
				}
			}
			if s := cfg.Reuse.Stats(); s.Entries != 0 || s.Published != 0 {
				t.Errorf("join published into the reuse index: %+v", s)
			}
		})
	}
}
