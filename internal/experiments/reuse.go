package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"redoop/internal/account"
	"redoop/internal/chaos"
	"redoop/internal/core"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/oracle"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/reuse"
	"redoop/internal/simtime"
	"redoop/internal/workload"
)

// This file measures cross-query pane reuse (internal/reuse): the two
// Figure-6 aggregation workloads plus a coarser tumbling roll-up share
// one WCC stream through the SourceHub, and the reuse index lets the
// later queries satisfy their pane builds from the first query's
// reduce-output caches — an exact copy for the identical-geometry
// sibling, a Merge composition for the tumbling consumer whose pane
// unit is a multiple of the producer's.

// ReuseQueryStats is one query's share of a shared-stream reuse run.
type ReuseQueryStats struct {
	Query string `json:"query"`
	// Windows is how many recurrences the query completed.
	Windows int `json:"windows"`
	// MapTasks counts the map tasks the query ran across all windows —
	// the quantity cross-query reuse drives to zero for queries that
	// can consume a sibling's panes.
	MapTasks int `json:"mapTasks"`
	// NewPanes/ReusedPanes aggregate the engine's per-window pane
	// accounting (a cross-query hit counts as reused, not new).
	NewPanes    int `json:"newPanes"`
	ReusedPanes int `json:"reusedPanes"`
	// CrossQueryHits / CrossSavedNS are the ledger's cross-query reuse
	// attribution for the query (0 when reuse is disabled).
	CrossQueryHits int   `json:"crossQueryHits"`
	CrossSavedNS   int64 `json:"crossSavedNS"`
	// OutputDigest is a SHA-256 over the query's canonicalized window
	// outputs, in window order — the byte-equality anchor between
	// reuse-on and reuse-off runs.
	OutputDigest string `json:"outputDigest"`
	// Timings carries the per-window measurements for figure series.
	Timings []WindowTiming `json:"-"`
}

// ReuseReport summarizes one shared-stream run of the reuse workload.
type ReuseReport struct {
	// Enabled records whether the reuse index was attached.
	Enabled bool `json:"enabled"`
	// Queries reports per-query stats in engine-creation order: the
	// producer first, its exact-geometry sibling second, the coarser
	// tumbling consumer third.
	Queries []ReuseQueryStats `json:"queries"`
	// Index is the reuse index's counters at end of run (nil when
	// disabled).
	Index *reuse.Stats `json:"index,omitempty"`
	// Snapshot is the index's surviving entries in canonical order,
	// for determinism checks across -workers settings.
	Snapshot []reuse.Entry `json:"-"`
}

// TotalMapTasks sums map tasks across the run's queries.
func (r *ReuseReport) TotalMapTasks() int {
	t := 0
	for _, q := range r.Queries {
		t += q.MapTasks
	}
	return t
}

// reuseWorkloadQueries builds the shared-stream reuse trio: two
// identical-geometry Figure-6 aggregations (exact reuse) and a
// tumbling roll-up whose pane unit is twice theirs (subsumption).
// All three opt into the shared source via CacheKey.
func reuseWorkloadQueries(cfg Config, slide simtime.Duration) []*core.Query {
	mk := func(name string, win, sl simtime.Duration) *core.Query {
		q := queries.WCCAggregation(name, win, sl, cfg.Reducers)
		q.Sources[0].CacheKey = "wcc"
		return q
	}
	return []*core.Query{
		mk("fig6-a", cfg.WindowDur, slide),
		mk("fig6-b", cfg.WindowDur, slide),
		mk("rollup-2x", 2*slide, 2*slide),
	}
}

// RunCrossQueryReuse executes the shared-stream reuse workload once,
// with or without the reuse index attached, and reports per-query map
// task counts, pane accounting, savings attribution and output
// digests. With cfg.OracleCheck set, every recurrence of every query
// is additionally verified against the differential oracle.
func RunCrossQueryReuse(cfg Config, enabled bool) (*ReuseReport, error) {
	cfg = cfg.withDefaults()
	slide := cfg.SlideFor(0.75)
	wcc := workload.DefaultWCC(cfg.Seed)
	paneUnit := int64(slide)
	perPane := int(float64(cfg.RecordsPerWindow) / (float64(cfg.WindowDur) / float64(slide)))

	mr := cfg.NewRuntime(3)
	ctrl := core.NewController()
	hub := core.NewSourceHub(mr.DFS, mr.DFS.BlockSize())
	hub.SetObserver(cfg.Obs)
	qs := reuseWorkloadQueries(cfg, slide)
	if err := hub.Share("wcc", "wcc", qs[0].Sources[0].Spec, 0); err != nil {
		return nil, err
	}

	var idx *reuse.Index
	if enabled {
		idx = reuse.NewIndex(0)
	}
	acct := cfg.Account
	if acct == nil {
		acct = account.New()
	}
	lin := cfg.Lineage
	if lin == nil && cfg.OracleCheck {
		lin = lineage.New(0)
	}

	engines := make([]*core.Engine, len(qs))
	oracles := make([]*oracle.Oracle, len(qs))
	for i, q := range qs {
		eng, err := core.NewEngine(core.Config{
			MR: mr, Query: q, Controller: ctrl, Hub: hub,
			Reuse: idx, Account: acct, Lineage: lin, Health: cfg.Health,
		})
		if err != nil {
			return nil, err
		}
		cfg.notifyEngine(eng)
		engines[i] = eng
		if cfg.OracleCheck {
			oracles[i], err = oracle.New(eng)
			if err != nil {
				return nil, err
			}
		}
	}

	// One hub feed; every engine's oracle observes the same batches.
	deliver := func(_ int, batch []records.Record) error {
		for _, ora := range oracles {
			if ora != nil {
				ora.Observe(0, batch)
			}
		}
		return hub.Ingest("wcc", batch)
	}
	fedPanes := 0
	feed := func(throughUnit int64) error {
		for ; int64(fedPanes)*paneUnit < throughUnit; fedPanes++ {
			start := int64(fedPanes) * paneUnit
			batch := workload.WCC(wcc, start, start+paneUnit, perPane)
			if err := deliver(0, batch); err != nil {
				return err
			}
		}
		return nil
	}

	// Chaos composes with the shared stream: node crashes, cache drops
	// and pane corruptions land between a window's batches and its
	// trigger, exactly as in the single-engine soak. (Batch-delay
	// actions are ingest-path gates and do not apply to the hub's
	// single shared feed.)
	var inj *chaos.Injector
	if cfg.Chaos != nil {
		inj = chaos.NewInjector(cfg.Chaos, mr)
		inj.OnCorrupt = func(path string) {
			for _, ora := range oracles {
				if ora != nil {
					ora.ExcludePath(path)
				}
			}
		}
	}

	// Engines sharing one runtime execute in global window-close order
	// (slot timelines are monotonic); the strict < keeps ties on the
	// lowest engine index, so fig6-a always leads its identical sibling
	// and the reuse direction is deterministic.
	closes := make([]func(int) int64, len(engines))
	for i, eng := range engines {
		frames, err := eng.Query().Frames()
		if err != nil {
			return nil, err
		}
		closes[i] = frames[0].WindowClose
	}
	report := &ReuseReport{Enabled: enabled, Queries: make([]ReuseQueryStats, len(engines))}
	digests := make([]*digestWriter, len(engines))
	for i, q := range qs {
		report.Queries[i].Query = q.Name
		digests[i] = newDigestWriter()
	}
	for done := 0; done < len(engines)*cfg.Windows; done++ {
		best := -1
		var bestClose int64
		for i, eng := range engines {
			r := eng.NextRecurrence()
			if r >= cfg.Windows {
				continue
			}
			if c := closes[i](r); best < 0 || c < bestClose {
				best, bestClose = i, c
			}
		}
		if err := feed(bestClose); err != nil {
			return nil, err
		}
		if inj != nil {
			if err := inj.BeforeRecurrence(engines[best].NextRecurrence(), engines[best], deliver); err != nil {
				return nil, fmt.Errorf("%s: %w", qs[best].Name, err)
			}
		}
		res, err := engines[best].RunNext()
		if err != nil {
			return nil, fmt.Errorf("%s window %d: %w", qs[best].Name, res.Recurrence+1, err)
		}
		if ora := oracles[best]; ora != nil {
			ver := ora.Check(res)
			if cfg.OnVerdict != nil {
				cfg.OnVerdict(qs[best].Name, ver)
			}
			if verr := ver.Err(); verr != nil {
				return nil, fmt.Errorf("%s window %d: %w", qs[best].Name, res.Recurrence+1, verr)
			}
		}
		st := &report.Queries[best]
		st.Windows++
		st.MapTasks += res.Stats.MapTasks
		st.NewPanes += res.NewPanes
		st.ReusedPanes += res.ReusedPanes
		digests[best].addWindow(res.Output)
		st.Timings = append(st.Timings, WindowTiming{
			Window:   res.Recurrence + 1,
			Response: res.ResponseTime,
			Shuffle:  res.Stats.ShuffleTime,
			Reduce:   res.Stats.ReduceTime,
		})
	}
	for i := range report.Queries {
		report.Queries[i].OutputDigest = digests[i].sum()
	}
	for _, qc := range acct.Snapshot() {
		for i := range report.Queries {
			if report.Queries[i].Query == qc.Query {
				report.Queries[i].CrossQueryHits = qc.CrossQueryHits
				report.Queries[i].CrossSavedNS = qc.CrossSavedNS
			}
		}
	}
	if idx != nil {
		s := idx.Stats()
		report.Index = &s
		report.Snapshot = idx.Snapshot()
	}
	return report, nil
}

// digestWriter folds canonicalized window outputs into one SHA-256.
type digestWriter struct{ h [32]byte; any bool }

func newDigestWriter() *digestWriter { return &digestWriter{} }

func (d *digestWriter) addWindow(out []records.Pair) {
	cp := append([]records.Pair(nil), out...)
	mapreduce.SortPairs(cp)
	payload := append(d.h[:], records.EncodePairs(cp)...)
	d.h = sha256.Sum256(payload)
	d.any = true
}

func (d *digestWriter) sum() string { return hex.EncodeToString(d.h[:]) }

// CrossQueryReuse is the figure-style experiment: the shared-stream
// workload runs twice — reuse index detached, then attached — and the
// panel contrasts each query's response times. The run fails if any
// query's window outputs differ between the two variants (byte-level,
// canonical order) or, with reuse on, if the identical-geometry
// sibling still ran map tasks of its own.
func CrossQueryReuse(cfg Config) (*FigResult, error) {
	off, err := RunCrossQueryReuse(cfg, false)
	if err != nil {
		return nil, err
	}
	on, err := RunCrossQueryReuse(cfg, true)
	if err != nil {
		return nil, err
	}
	for i := range off.Queries {
		if off.Queries[i].OutputDigest != on.Queries[i].OutputDigest {
			return nil, fmt.Errorf("reuse: query %s output digest diverged: off=%s on=%s",
				off.Queries[i].Query, off.Queries[i].OutputDigest, on.Queries[i].OutputDigest)
		}
	}
	if n := on.Queries[1].MapTasks; n != 0 {
		return nil, fmt.Errorf("reuse: sibling %s ran %d map tasks with reuse enabled; want 0 (every shared pane computed once)",
			on.Queries[1].Query, n)
	}
	res := &FigResult{
		Name:  "Cross-query pane reuse",
		Query: "two identical Figure-6 aggregations + a 2x tumbling roll-up over one shared WCC stream",
	}
	mkSeries := func(r *ReuseReport, label string) []Series {
		out := make([]Series, len(r.Queries))
		for i, qs := range r.Queries {
			out[i] = Series{System: fmt.Sprintf("%s %s", qs.Query, label), Windows: qs.Timings}
		}
		return out
	}
	res.Panels = append(res.Panels, Panel{Series: append(mkSeries(off, "reuse-off"), mkSeries(on, "reuse-on")...)})
	return res, nil
}
