package experiments

// Provenance-store determinism and oracle-audit tests: the lineage
// store must be byte-identical between a fully serial and a wide
// parallel run (its writes happen only on serial commit paths), and
// the oracle's lineage audit must actually catch a derivation whose
// recorded SHA does not match a recompute from its claimed inputs.

import (
	"reflect"
	"strings"
	"testing"

	"redoop/internal/core"
	"redoop/internal/lineage"
	"redoop/internal/oracle"
)

// runRedoopLineage drives the Redoop engine over spec with a fresh
// provenance store attached and returns the store's final snapshot.
func runRedoopLineage(t *testing.T, cfg Config, spec runSpec) lineage.Snapshot {
	t.Helper()
	lin := lineage.New(0)
	mr := cfg.NewRuntime(1)
	mr.Faults = spec.faults
	q := spec.query()
	eng, err := core.NewEngine(core.Config{MR: mr, Query: q, Lineage: lin})
	if err != nil {
		t.Fatal(err)
	}
	f := newFeeder(cfg, spec)
	winSpec := q.Spec()
	for r := 0; r < spec.windows; r++ {
		if err := f.feedThrough(winSpec.WindowClose(r), eng.Ingest); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatalf("redoop window %d: %v", r+1, err)
		}
	}
	return lin.Snapshot()
}

// TestLineageWorkersDeepEqual asserts the whole provenance store —
// derivations, batches, attempts, file events, watermark — is
// DeepEqual between ExecWorkers=1 and a wide pool, for both figure
// workloads. Any lineage write reachable from a parallel compute path
// would break this.
func TestLineageWorkersDeepEqual(t *testing.T) {
	base := detConfig()
	base.Windows = 3
	base.RecordsPerWindow = 16000
	cases := []struct {
		name string
		spec func(Config) runSpec
		cfg  func() Config
	}{
		{
			name: "aggregation",
			spec: func(c Config) runSpec { return aggSpec(c, 0.9) },
			cfg:  func() Config { return base },
		},
		{
			name: "join",
			spec: func(c Config) runSpec { return joinSpec(c, 0.5) },
			cfg: func() Config {
				c := base
				c.RecordsPerWindow /= 4
				return c
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			serialCfg := cfg
			serialCfg.ExecWorkers = 1
			parCfg := cfg
			parCfg.ExecWorkers = parWorkers()

			serial := runRedoopLineage(t, serialCfg, tc.spec(serialCfg))
			par := runRedoopLineage(t, parCfg, tc.spec(parCfg))
			if serial.Stats.Nodes == 0 {
				t.Fatal("provenance store stayed empty — lineage is not wired")
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("lineage snapshots diverge between workers=1 and workers=%d:\nserial stats:   %+v\nparallel stats: %+v",
					parWorkers(), serial.Stats, par.Stats)
			}
		})
	}
}

// TestLineageAuditCatchesBadSHA proves the oracle's sampled derivation
// audit is non-vacuous: a clean run passes every verdict, and
// poisoning the newest pane derivation's recorded SHA before the final
// Check produces a lineage violation.
func TestLineageAuditCatchesBadSHA(t *testing.T) {
	base := detConfig()
	base.Windows = 3
	base.RecordsPerWindow = 16000
	t.Run("aggregation", func(t *testing.T) {
		auditCatchesBadSHA(t, base, aggSpec(base, 0.9), "pane-rout")
	})
	t.Run("join", func(t *testing.T) {
		cfg := base
		cfg.RecordsPerWindow /= 4
		auditCatchesBadSHA(t, cfg, joinSpec(cfg, 0.5), "pane-rin")
	})
}

func auditCatchesBadSHA(t *testing.T, cfg Config, spec runSpec, kind string) {
	t.Helper()
	lin := lineage.New(0)
	mr := cfg.NewRuntime(1)
	q := spec.query()
	eng, err := core.NewEngine(core.Config{MR: mr, Query: q, Lineage: lin})
	if err != nil {
		t.Fatal(err)
	}
	ora, err := oracle.New(eng)
	if err != nil {
		t.Fatal(err)
	}
	ingest := ora.WrapIngest(eng.Ingest)
	f := newFeeder(cfg, spec)
	winSpec := q.Spec()
	for r := 0; r < spec.windows; r++ {
		if err := f.feedThrough(winSpec.WindowClose(r), ingest); err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunNext()
		if err != nil {
			t.Fatalf("redoop window %d: %v", r+1, err)
		}
		last := r == spec.windows-1
		if last {
			poisonNewestDerivation(t, lin, eng.AccountName(), kind)
		}
		v := ora.Check(res)
		if last {
			found := false
			for _, viol := range v.Violations {
				if strings.Contains(viol, "lineage:") && strings.Contains(viol, "hash") {
					found = true
				}
			}
			if !found {
				t.Fatalf("poisoned SHA went undetected; violations: %v", v.Violations)
			}
		} else if err := v.Err(); err != nil {
			t.Fatalf("clean window %d failed the oracle: %v", r+1, err)
		}
	}
}

// poisonNewestDerivation rewrites the newest unexpired derivation of
// the audited kind with a SHA that cannot match any recompute.
func poisonNewestDerivation(t *testing.T, lin *lineage.Store, query, kind string) {
	t.Helper()
	snap := lin.Snapshot()
	for i := len(snap.Derivations) - 1; i >= 0; i-- {
		d := snap.Derivations[i]
		if d.Kind != kind || d.Expired || d.Query != query {
			continue
		}
		d.SHA = lineage.SHA([]byte("poison"))
		lin.RecordDerivation(d)
		return
	}
	t.Fatalf("no unexpired %s derivation to poison", kind)
}
