package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"redoop/internal/simtime"
)

// ms renders a virtual duration in milliseconds with two decimals, the
// unit the scale model's windows complete in.
func ms(d simtime.Duration) string {
	return fmt.Sprintf("%8.2f", float64(d)/1e6)
}

// Format writes the figure as aligned text tables: one per-window
// response-time table per panel (the paper's left column), the
// shuffle/reduce totals (the right column), and the steady-state
// speedup line.
func (f *FigResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.Name, f.Query)
	fmt.Fprintf(w, "%s\n", strings.Repeat("=", 64))
	for _, p := range f.Panels {
		fmt.Fprintf(w, "\noverlap = %.1f\n", p.Overlap)

		// Per-window response times (ms), one column per system.
		fmt.Fprintf(w, "%-8s", "window")
		for _, s := range p.Series {
			fmt.Fprintf(w, " %16s", s.System)
		}
		fmt.Fprintln(w)
		if len(p.Series) > 0 {
			for i := range p.Series[0].Windows {
				fmt.Fprintf(w, "%-8d", p.Series[0].Windows[i].Window)
				for _, s := range p.Series {
					fmt.Fprintf(w, " %16s", ms(s.Windows[i].Response))
				}
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintf(w, "%-8s", "cumul.")
		for _, s := range p.Series {
			fmt.Fprintf(w, " %16s", ms(s.TotalResponse()))
		}
		fmt.Fprintln(w)

		// Phase totals (the paper's shuffle-vs-reduce bars).
		fmt.Fprintf(w, "\n%-18s %12s %12s\n", "phase totals (ms)", "shuffle", "reduce")
		for _, s := range p.Series {
			fmt.Fprintf(w, "%-18s %12s %12s\n", s.System, ms(s.TotalShuffle()), ms(s.TotalReduce()))
		}

		// Steady-state speedups vs the first series (Hadoop).
		if len(p.Series) > 1 {
			base := p.Series[0]
			for _, s := range p.Series[1:] {
				fmt.Fprintf(w, "speedup of %s over %s (windows 2+): %.2fx\n",
					s.System, base.System, Speedup(base, s, 2))
			}
		}
	}
	fmt.Fprintln(w)
}

// FormatCumulative writes the Figure 9 style cumulative-time series.
func (f *FigResult) FormatCumulative(w io.Writer) {
	fmt.Fprintf(w, "%s — %s (cumulative running time, ms)\n", f.Name, f.Query)
	fmt.Fprintf(w, "%s\n", strings.Repeat("=", 64))
	for _, p := range f.Panels {
		fmt.Fprintf(w, "%-8s", "window")
		for _, s := range p.Series {
			fmt.Fprintf(w, " %16s", s.System)
		}
		fmt.Fprintln(w)
		if len(p.Series) == 0 {
			continue
		}
		cums := make([]simtime.Duration, len(p.Series))
		for i := range p.Series[0].Windows {
			fmt.Fprintf(w, "%-8d", p.Series[0].Windows[i].Window)
			for j, s := range p.Series {
				cums[j] += s.Windows[i].Response
				fmt.Fprintf(w, " %16s", ms(cums[j]))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// FormatCSV writes the figure as tidy CSV rows suitable for plotting:
// figure, overlap, system, window, response_ms, shuffle_ms, reduce_ms.
func (f *FigResult) FormatCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"figure", "overlap", "system", "window", "response_ms", "shuffle_ms", "reduce_ms"}); err != nil {
		return err
	}
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for _, wt := range s.Windows {
				row := []string{
					f.Name,
					strconv.FormatFloat(p.Overlap, 'f', 2, 64),
					s.System,
					strconv.Itoa(wt.Window),
					strconv.FormatFloat(float64(wt.Response)/1e6, 'f', 4, 64),
					strconv.FormatFloat(float64(wt.Shuffle)/1e6, 'f', 4, 64),
					strconv.FormatFloat(float64(wt.Reduce)/1e6, 'f', 4, 64),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
