package experiments

// Chaos verification runs: one Redoop series per regime under a
// deterministic fault schedule with the differential oracle enabled.
// This is the workload behind the CI soak matrix and the regression
// tests — a figure-independent way to say "run the engine through a
// storm and prove every window's answer".

import (
	"fmt"

	"redoop/internal/chaos"
	"redoop/internal/core"
	"redoop/internal/oracle"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/workload"
)

// ChaosRegimes lists the engine regimes the soak matrix verifies:
// pane aggregation, the binary join, adaptive re-planning, and
// speculative execution.
var ChaosRegimes = []string{"agg", "join", "adaptive", "speculative"}

// ProfileForRegime pairs a regime with the chaos profile that
// exercises it: the speculative regime needs the straggler/speculation
// profile (speculation never triggers without jitter); everything else
// gets the full mixed storm.
func ProfileForRegime(regime string) string {
	if regime == "speculative" {
		return chaos.ProfileSpeculative
	}
	return chaos.ProfileMixed
}

// chaosSpec builds the fixed verification workload of one regime, at
// the configured scale. Overlap 0.75 keeps several panes shared
// between consecutive windows, so cache reuse — the thing chaos
// attacks — is always in play.
func (c Config) chaosSpec(regime string) (runSpec, error) {
	const overlap = 0.75
	switch regime {
	case "agg", "adaptive", "speculative":
		wcc := workload.DefaultWCC(c.Seed)
		return runSpec{
			queryName: "chaos-" + regime,
			sources:   1,
			overlap:   overlap,
			windows:   c.Windows,
			sched:     workload.SteadyRate,
			adaptive:  regime == "adaptive",
			gen: func(_ int, start, end int64, n int) []records.Record {
				return workload.WCC(wcc, start, end, n)
			},
			query: func() *core.Query {
				return queries.WCCAggregation("qchaos", c.WindowDur, c.SlideFor(overlap), c.Reducers)
			},
		}, nil
	case "join":
		ffg := workload.DefaultFFG(c.Seed)
		return runSpec{
			queryName: "chaos-join",
			sources:   2,
			overlap:   overlap,
			windows:   c.Windows,
			sched:     workload.SteadyRate,
			gen: func(src int, start, end int64, n int) []records.Record {
				if src == 0 {
					return workload.FFGReadings(ffg, start, end, n)
				}
				return workload.FFGEvents(ffg, start, end, n/4)
			},
			query: func() *core.Query {
				return queries.FFGJoin("qchaosj", c.WindowDur, c.SlideFor(overlap), c.Reducers)
			},
		}, nil
	default:
		return runSpec{}, fmt.Errorf("experiments: unknown chaos regime %q (want one of %v)", regime, ChaosRegimes)
	}
}

// RunChaosRegime runs one regime's Redoop series under c.Chaos with
// the oracle enabled and returns every per-recurrence verdict. The
// returned error is non-nil when any window diverged or violated an
// invariant (the first failure aborts the series).
func (c Config) RunChaosRegime(regime string) ([]oracle.Verdict, error) {
	c = c.withDefaults()
	spec, err := c.chaosSpec(regime)
	if err != nil {
		return nil, err
	}
	var verdicts []oracle.Verdict
	prev := c.OnVerdict
	c.OracleCheck = true
	c.OnVerdict = func(system string, v oracle.Verdict) {
		verdicts = append(verdicts, v)
		if prev != nil {
			prev(system, v)
		}
	}
	_, err = c.runRedoop(spec, "Redoop/"+regime)
	return verdicts, err
}
