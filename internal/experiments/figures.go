package experiments

import (
	"hash/fnv"
	"sort"
	"time"

	"redoop/internal/core"
	"redoop/internal/mapreduce"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/workload"
)

// Overlaps are the paper's three overlap settings.
var Overlaps = []float64{0.9, 0.5, 0.1}

// Fig6 regenerates Figure 6: the Q1 aggregation over the WCC dataset,
// Hadoop vs Redoop, per-window response times and shuffle/reduce
// totals at overlaps 0.9, 0.5 and 0.1.
func Fig6(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	res := &FigResult{Name: "Figure 6", Query: "Q1 aggregation (WCC)"}
	wcc := workload.DefaultWCC(cfg.Seed)
	for _, overlap := range Overlaps {
		spec := runSpec{
			queryName: "Q1",
			sources:   1,
			overlap:   overlap,
			windows:   cfg.Windows,
			sched:     workload.SteadyRate,
			gen: func(_ int, start, end int64, n int) []records.Record {
				return workload.WCC(wcc, start, end, n)
			},
			query: func() *core.Query {
				return queries.WCCAggregation("q1", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
			},
		}
		hadoop, err := cfg.runHadoop(spec, "Hadoop")
		if err != nil {
			return nil, err
		}
		redoop, err := cfg.runRedoop(spec, "Redoop")
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, Panel{Overlap: overlap, Series: []Series{hadoop, redoop}})
	}
	return res, nil
}

// Fig7 regenerates Figure 7: the Q2 join over the FFG dataset with the
// same structure as Figure 6.
func Fig7(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	// The join is quadratic in pane pairs; a quarter of the
	// aggregation volume keeps the window-1 cross product (all K²
	// pane pairs) tractable while preserving the phase ratios.
	cfg.RecordsPerWindow /= 4
	res := &FigResult{Name: "Figure 7", Query: "Q2 join (FFG)"}
	ffg := workload.DefaultFFG(cfg.Seed)
	for _, overlap := range Overlaps {
		spec := runSpec{
			queryName: "Q2",
			sources:   2,
			overlap:   overlap,
			windows:   cfg.Windows,
			sched:     workload.SteadyRate,
			gen: func(src int, start, end int64, n int) []records.Record {
				if src == 0 {
					return workload.FFGReadings(ffg, start, end, n)
				}
				// The event side is sparse — game events are rare
				// relative to position samples, which keeps the
				// join selective.
				return workload.FFGEvents(ffg, start, end, n/4)
			},
			query: func() *core.Query {
				return queries.FFGJoin("q2", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
			},
		}
		hadoop, err := cfg.runHadoop(spec, "Hadoop")
		if err != nil {
			return nil, err
		}
		redoop, err := cfg.runRedoop(spec, "Redoop")
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, Panel{Overlap: overlap, Series: []Series{hadoop, redoop}})
	}
	return res, nil
}

// Fig8 regenerates Figure 8: adaptive input partitioning under the
// paper's periodic load fluctuation (windows 1, 4, 7, 10 normal, the
// rest doubled), comparing Hadoop, non-adaptive Redoop and adaptive
// Redoop at the three overlaps.
//
// Adaptivity only matters when executions approach the slide deadline
// (§3.3), so this experiment uses a compressed window scale where the
// doubled load genuinely threatens the deadline, as on the paper's
// loaded testbed.
func Fig8(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	// Adaptivity matters only when executions are commensurate with
	// the slide deadline (§3.3). Each panel first probes the query at
	// the base cluster speed, then slows the cluster so Redoop's
	// steady-state execution costs ~55% of the slide deadline: normal load is
	// sustainable, the doubled windows overrun the deadline, and the
	// best-effort proactive mode has genuine slack to exploit — the
	// regime the paper's Figure 8 exercises.
	cfg.WindowDur = 10 * simtime.Minute
	cfg.RecordsPerWindow /= 2
	res := &FigResult{Name: "Figure 8", Query: "Q1 aggregation (WCC), fluctuating load"}
	wcc := workload.DefaultWCC(cfg.Seed)
	for _, overlap := range Overlaps {
		slide := cfg.SlideFor(overlap)
		slidesPerWin := int((cfg.WindowDur + slide - 1) / slide)
		mkSpec := func(windows int, sched workload.RateSchedule) runSpec {
			return runSpec{
				queryName: "Q1-fluct",
				sources:   1,
				overlap:   overlap,
				windows:   windows,
				sched:     sched,
				gen: func(_ int, start, end int64, n int) []records.Record {
					return workload.WCC(wcc, start, end, n)
				},
				query: func() *core.Query {
					return queries.WCCAggregation("q1f", cfg.WindowDur, slide, cfg.Reducers)
				},
			}
		}

		// Calibration: slow the cluster until non-adaptive Redoop's
		// steady-state response is ~60% of the slide. The per-task
		// overhead saturates at the real ~0.8 s Hadoop launch cost, a
		// non-linearity the loop corrects by re-probing at the scaled
		// speed until the target holds.
		panelCfg := cfg
		target := 0.6 * float64(slide)
		for pass := 0; pass < 4; pass++ {
			probeCfg := panelCfg
			probe, err := probeCfg.runRedoop(mkSpec(3, workload.SteadyRate), "probe")
			if err != nil {
				return nil, err
			}
			norm := probe.Windows[2].Response
			if norm <= 0 {
				norm = time.Millisecond
			}
			ratio := target / float64(norm)
			if ratio > 0.8 && ratio < 1.25 {
				break // close enough
			}
			slow := panelCfg.Cost
			slow.DiskReadBps /= ratio
			slow.DiskWriteBps /= ratio
			slow.NetBps /= ratio
			slow.MapCPUBps /= ratio
			slow.ReduceCPUBps /= ratio
			slow.SortBps /= ratio
			overhead := time.Duration(float64(slow.TaskOverhead) * ratio)
			if overhead > 800*time.Millisecond {
				overhead = 800 * time.Millisecond // real Hadoop task launch
			}
			slow.TaskOverhead = overhead
			panelCfg.Cost = slow
		}

		spec := mkSpec(cfg.Windows, workload.PaperFluctuation(slidesPerWin))
		hadoop, err := panelCfg.runHadoop(spec, "Hadoop")
		if err != nil {
			return nil, err
		}
		redoop, err := panelCfg.runRedoop(spec, "Redoop")
		if err != nil {
			return nil, err
		}
		adaptiveSpec := spec
		adaptiveSpec.adaptive = true
		adaptive, err := panelCfg.runRedoop(adaptiveSpec, "Adaptive Redoop")
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, Panel{
			Overlap: overlap,
			Series:  []Series{hadoop, redoop, adaptive},
		})
	}
	return res, nil
}

// fig9FaultPlan injects the task failures of §6.4's (f) runs: the
// first attempt of one in five map tasks fails (the work a lost node's
// in-flight tasks would re-execute), and every job's first reduce
// partition loses its first attempt, forcing a re-shuffle.
type fig9FaultPlan struct{}

func newFig9FaultPlan() *fig9FaultPlan { return &fig9FaultPlan{} }

// MapAttemptFails implements mapreduce.FaultPlan.
func (f *fig9FaultPlan) MapAttemptFails(jobName, splitID string, attempt int) bool {
	if attempt > 0 {
		return false
	}
	h := fnv.New32a()
	h.Write([]byte(splitID))
	return h.Sum32()%5 == 0
}

// ReduceAttemptFails implements mapreduce.FaultPlan.
func (f *fig9FaultPlan) ReduceAttemptFails(_ string, part, attempt int) bool {
	return part == 0 && attempt == 0
}

// dropCaches deletes `count` cached entries (deterministically chosen,
// rotating with the window index) from the cluster's local file
// systems — the pane-granular cache loss of §6.4, which Redoop repairs
// by re-executing only the affected panes' tasks.
func dropCaches(eng *core.Engine, window, count int) {
	type loc struct {
		node int
		key  string
	}
	var all []loc
	for _, n := range eng.MR().Cluster.Nodes() {
		for _, k := range n.LocalKeys("cache/") {
			all = append(all, loc{node: n.ID, key: k})
		}
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].key != all[j].key {
			return all[i].key < all[j].key
		}
		return all[i].node < all[j].node
	})
	for i := 0; i < count; i++ {
		l := all[(window*13+i*7)%len(all)]
		eng.MR().Cluster.Node(l.node).DeleteLocal(l.key)
	}
}

// Fig9 regenerates Figure 9: fault tolerance under cache loss. An
// aggregation over FFG data at overlap 0.5 runs in four variants:
// Hadoop and Redoop clean, and Hadoop(f)/Redoop(f) with failures
// injected at the beginning of each window — a task failure for both,
// plus the loss of one node's caches for Redoop(f). The paper plots
// cumulative running time; Format prints both per-window and
// cumulative columns.
func Fig9(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	const overlap = 0.5
	ffg := workload.DefaultFFG(cfg.Seed)
	mkSpec := func() runSpec {
		return runSpec{
			queryName: "Q1-ffg",
			sources:   1,
			overlap:   overlap,
			windows:   cfg.Windows,
			sched:     workload.SteadyRate,
			gen: func(_ int, start, end int64, n int) []records.Record {
				return workload.FFGReadings(ffg, start, end, n)
			},
			query: func() *core.Query {
				return ffgAggregation(cfg, overlap)
			},
		}
	}

	hadoop, err := cfg.runHadoop(mkSpec(), "Hadoop")
	if err != nil {
		return nil, err
	}
	redoop, err := cfg.runRedoop(mkSpec(), "Redoop")
	if err != nil {
		return nil, err
	}

	specHF := mkSpec()
	specHF.faults = newFig9FaultPlan()
	hadoopF, err := cfg.runHadoop(specHF, "Hadoop(f)")
	if err != nil {
		return nil, err
	}

	// Redoop's failure mode is cache loss (§6.4 "we focus on cache
	// failure where the cached data is lost from a given node");
	// Hadoop, having no caches, suffers the equivalent failures as
	// task re-executions instead.
	specRF := mkSpec()
	specRF.redoopBefore = func(r int, eng *core.Engine) {
		// Cache removal injected at the beginning of each window.
		dropCaches(eng, r, 4)
	}
	redoopF, err := cfg.runRedoop(specRF, "Redoop(f)")
	if err != nil {
		return nil, err
	}

	return &FigResult{
		Name:  "Figure 9",
		Query: "aggregation (FFG), overlap 0.5, cache-failure injection",
		Panels: []Panel{{
			Overlap: overlap,
			Series:  []Series{hadoop, hadoopF, redoop, redoopF},
		}},
	}, nil
}

// ffgAggregation counts readings per sensor — the FFG-flavoured
// aggregation §6.4 uses as middle ground.
func ffgAggregation(cfg Config, overlap float64) *core.Query {
	q := queries.WCCAggregation("q9", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
	q.Maps = []mapreduce.MapFunc{func(_ int64, payload []byte, emit mapreduce.Emitter) {
		// Key by the sensor id (field 0 of an FFG reading).
		i := 0
		for i < len(payload) && payload[i] != ',' {
			i++
		}
		emit(append([]byte(nil), payload[:i]...), []byte("1"))
	}}
	return q
}

// Headline computes the paper's headline claim — "up to 9× speedup
// over plain Hadoop" — as the best steady-state speedup observed
// across the Figure 6 and Figure 7 panels.
func Headline(fig6, fig7 *FigResult) float64 {
	best := 0.0
	for _, fig := range []*FigResult{fig6, fig7} {
		if fig == nil {
			continue
		}
		for _, p := range fig.Panels {
			h, ok1 := p.Find("Hadoop")
			r, ok2 := p.Find("Redoop")
			if !ok1 || !ok2 {
				continue
			}
			if s := Speedup(h, r, 2); s > best {
				best = s
			}
		}
	}
	return best
}
