package experiments

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"redoop/internal/account"
	"redoop/internal/chaos"
	"redoop/internal/simtime"
)

// ledgerSoakSeeds is the fixed seed sweep of the conservation soak: a
// breadth-first sample of chaos storms (node crashes, cache drops,
// batch delays, stragglers) rather than a single lucky schedule.
var ledgerSoakSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}

// TestChaosLedgerConservation drives the agg and join regimes through
// eight distinct chaos storms with a cost ledger attached. The oracle's
// accounting pass runs after every window (slot compute ≤ cluster busy
// time, residencies reconcile with controller signatures), and the test
// re-checks the ledger's terminal state: compute and occupancy were
// actually metered, and no residency leaked past retirement.
func TestChaosLedgerConservation(t *testing.T) {
	for _, seed := range ledgerSoakSeeds {
		for _, regime := range []string{"agg", "join"} {
			t.Run(fmt.Sprintf("seed%d/%s", seed, regime), func(t *testing.T) {
				cfg := soakConfig(seed)
				cfg.Windows = 4
				sched, err := chaos.Generate(seed, chaos.ProfileMixed, cfg.Windows, cfg.Workers)
				if err != nil {
					t.Fatalf("generate schedule: %v", err)
				}
				cfg.Chaos = sched
				cfg.Account = account.New()
				verdicts, err := cfg.RunChaosRegime(regime)
				if err != nil {
					t.Fatalf("%s under %s: %v", regime, sched, err)
				}
				for _, v := range verdicts {
					if !v.OK() {
						t.Errorf("window %d: match=%v violations=%v", v.Recurrence+1, v.Match, v.Violations)
					}
				}
				snaps := cfg.Account.Snapshot()
				if len(snaps) != 1 {
					t.Fatalf("ledger tracked %d queries, want 1", len(snaps))
				}
				s := snaps[0]
				if s.TotalComputeNS <= 0 {
					t.Errorf("no compute metered for %s", s.Query)
				}
				if s.CacheByteSeconds <= 0 {
					t.Errorf("no cache occupancy metered for %s", s.Query)
				}
				if s.CacheRegistered != s.CacheExpired+s.OpenResidencies {
					t.Errorf("residency leak: registered %d != expired %d + open %d",
						s.CacheRegistered, s.CacheExpired, s.OpenResidencies)
				}
			})
		}
	}
}

// TestLedgerSerialParallelIdentical extends the two-phase determinism
// contract to cost attribution: every ledger field — phase durations,
// IO bytes, byte·seconds, recompute savings, ROI — must be
// byte-identical whether the engine computes with one worker or a wide
// pool, because all metering happens in serial commit paths.
func TestLedgerSerialParallelIdentical(t *testing.T) {
	run := func(workers int, mkSpec func(Config) runSpec) []account.QueryCosts {
		cfg := detConfig()
		cfg.RecordsPerWindow /= 4
		cfg.ExecWorkers = workers
		cfg.Account = account.New()
		if _, err := cfg.runRedoop(mkSpec(cfg), "det"); err != nil {
			t.Fatal(err)
		}
		return cfg.Account.Snapshot()
	}
	for _, tc := range []struct {
		name string
		spec func(Config) runSpec
	}{
		{"aggregation", func(c Config) runSpec { return aggSpec(c, 0.9) }},
		{"join", func(c Config) runSpec { return joinSpec(c, 0.5) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := run(1, tc.spec)
			par := run(parWorkers(), tc.spec)
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("cost snapshots diverge across worker counts:\nserial:   %+v\nparallel: %+v", serial, par)
			}
			if len(serial) != 1 || serial[0].TotalComputeNS == 0 {
				t.Fatalf("degenerate snapshot: %+v", serial)
			}
		})
	}
}

// TestLedgerExpiredResidenciesStopAccruing is the no-double-count
// property under chaos: after a run whose schedule dropped cache
// partitions and crashed nodes mid-recurrence, advancing virtual time
// must grow byte·seconds by exactly (still-open bytes) × Δt — an
// expired or chaos-lost residency that kept accruing would show up as
// excess growth.
func TestLedgerExpiredResidenciesStopAccruing(t *testing.T) {
	cfg := soakConfig(2)
	cfg.Windows = 4
	sched, err := chaos.Generate(2, chaos.ProfileMixed, cfg.Windows, cfg.Workers)
	if err != nil {
		t.Fatalf("generate schedule: %v", err)
	}
	var drops, crashes int
	for _, a := range sched.Actions {
		switch a.Kind {
		case chaos.CacheDrop:
			drops++
		case chaos.NodeCrash:
			crashes++
		}
	}
	if drops == 0 || crashes == 0 {
		t.Fatalf("schedule exercises neither loss path (drops=%d crashes=%d): %s", drops, crashes, sched)
	}
	cfg.Chaos = sched
	acct := account.New()
	cfg.Account = acct
	if _, err := cfg.RunChaosRegime("agg"); err != nil {
		t.Fatalf("agg under %s: %v", sched, err)
	}

	snaps := acct.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("ledger tracked %d queries, want 1", len(snaps))
	}
	query := snaps[0].Query
	var openBytes int64
	for _, r := range acct.OpenResidencies() {
		openBytes += r.Bytes
	}

	// Two advances past the run: the delta between them isolates open
	// residencies' accrual from whatever partial interval preceded t1.
	t1 := simtime.Time(1) << 50
	const deltaSec = 1000
	t2 := t1.Add(deltaSec * simtime.Second)
	acct.Advance(t1)
	bs1 := acct.ByteSeconds(query)
	acct.Advance(t2)
	bs2 := acct.ByteSeconds(query)

	want := float64(openBytes) * deltaSec
	got := bs2 - bs1
	if math.Abs(got-want) > 1e-6*math.Max(want, 1) {
		t.Fatalf("byte·seconds grew by %g over %ds but %d bytes are open (want %g): an expired residency is still accruing",
			got, deltaSec, openBytes, want)
	}
}
