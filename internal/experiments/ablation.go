package experiments

import (
	"fmt"

	"redoop/internal/baseline"
	"redoop/internal/core"
	"redoop/internal/mapreduce"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/workload"
)

// The ablation experiments isolate the design choices DESIGN.md calls
// out: how much of Redoop's win comes from window-aware caching versus
// merely pane-shaped execution, and from cache-aware task placement
// (Equation 4) versus slot-availability placement. They extend the
// paper's evaluation — the paper reports only end-to-end comparisons.

// ablationVariant parameterizes one Redoop configuration under test.
type ablationVariant struct {
	name           string
	disableReuse   bool
	cacheOblivious bool
}

// runVariant measures one Redoop variant on the spec.
func (c Config) runVariant(spec runSpec, v ablationVariant) (Series, error) {
	mr := c.NewRuntime(3)
	q := spec.query()
	eng, err := core.NewEngine(core.Config{
		MR:                      mr,
		Query:                   q,
		Adaptive:                spec.adaptive,
		DisableCacheReuse:       v.disableReuse,
		CacheObliviousPlacement: v.cacheOblivious,
	})
	if err != nil {
		return Series{}, err
	}
	c.notifyEngine(eng)
	f := newFeeder(c, spec)
	series := Series{System: v.name, Overlap: spec.overlap}
	winSpec := q.Spec()
	for r := 0; r < spec.windows; r++ {
		if err := f.feedThrough(winSpec.WindowClose(r), eng.Ingest); err != nil {
			return Series{}, err
		}
		res, err := eng.RunNext()
		if err != nil {
			return Series{}, fmt.Errorf("%s window %d: %w", v.name, r+1, err)
		}
		series.Windows = append(series.Windows, WindowTiming{
			Window:   r + 1,
			Response: res.ResponseTime,
			Shuffle:  res.Stats.ShuffleTime,
			Reduce:   res.Stats.ReduceTime,
		})
	}
	return series, nil
}

// AblationCaching compares, at overlap 0.9 on the Q1 aggregation:
// plain Hadoop, Redoop with cache reuse disabled (pane-shaped
// execution but every pane reprocessed), and full Redoop. The gap
// between the last two is the value of window-aware caching itself.
func AblationCaching(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	const overlap = 0.9
	wcc := workload.DefaultWCC(cfg.Seed)
	spec := runSpec{
		queryName: "Q1-ablation",
		sources:   1,
		overlap:   overlap,
		windows:   cfg.Windows,
		sched:     workload.SteadyRate,
		gen: func(_ int, start, end int64, n int) []records.Record {
			return workload.WCC(wcc, start, end, n)
		},
		query: func() *core.Query {
			return queries.WCCAggregation("q1a", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
		},
	}
	hadoop, err := cfg.runHadoop(spec, "Hadoop")
	if err != nil {
		return nil, err
	}
	noReuse, err := cfg.runVariant(spec, ablationVariant{name: "Redoop (no cache reuse)", disableReuse: true})
	if err != nil {
		return nil, err
	}
	full, err := cfg.runRedoop(spec, "Redoop")
	if err != nil {
		return nil, err
	}
	return &FigResult{
		Name:  "Ablation A",
		Query: "window-aware caching (Q1, overlap 0.9)",
		Panels: []Panel{{
			Overlap: overlap,
			Series:  []Series{hadoop, noReuse, full},
		}},
	}, nil
}

// AblationScheduling compares, at overlap 0.9 on the Q2 join (whose
// pane-pair tasks are cache-read heavy), full Redoop against Redoop
// with cache-oblivious task placement: Equation 4's C_task term
// disabled, so pair tasks land wherever a slot frees first and pull
// their caches across the network.
func AblationScheduling(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	cfg.RecordsPerWindow /= 4 // join volume, as in Fig7
	const overlap = 0.9
	ffg := workload.DefaultFFG(cfg.Seed)
	spec := runSpec{
		queryName: "Q2-ablation",
		sources:   2,
		overlap:   overlap,
		windows:   cfg.Windows,
		sched:     workload.SteadyRate,
		gen: func(src int, start, end int64, n int) []records.Record {
			if src == 0 {
				return workload.FFGReadings(ffg, start, end, n)
			}
			return workload.FFGEvents(ffg, start, end, n/4)
		},
		query: func() *core.Query {
			return queries.FFGJoin("q2a", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
		},
	}
	oblivious, err := cfg.runVariant(spec, ablationVariant{name: "Redoop (cache-oblivious)", cacheOblivious: true})
	if err != nil {
		return nil, err
	}
	full, err := cfg.runRedoop(spec, "Redoop")
	if err != nil {
		return nil, err
	}
	return &FigResult{
		Name:  "Ablation B",
		Query: "cache-aware scheduling, Eq. 4 (Q2, overlap 0.9)",
		Panels: []Panel{{
			Overlap: overlap,
			Series:  []Series{oblivious, full},
		}},
	}, nil
}

// OverlapSweep extends the paper's three overlap settings to a finer
// sweep, charting how the Q1 speedup scales with the shared-data
// fraction.
func OverlapSweep(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	wcc := workload.DefaultWCC(cfg.Seed)
	res := &FigResult{Name: "Overlap sweep", Query: "Q1 aggregation speedup vs overlap"}
	for _, overlap := range []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1} {
		overlap := overlap
		spec := runSpec{
			queryName: "Q1-sweep",
			sources:   1,
			overlap:   overlap,
			windows:   cfg.Windows,
			sched:     workload.SteadyRate,
			gen: func(_ int, start, end int64, n int) []records.Record {
				return workload.WCC(wcc, start, end, n)
			},
			query: func() *core.Query {
				return queries.WCCAggregation("q1s", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
			},
		}
		hadoop, err := cfg.runHadoop(spec, "Hadoop")
		if err != nil {
			return nil, err
		}
		redoop, err := cfg.runRedoop(spec, "Redoop")
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, Panel{Overlap: overlap, Series: []Series{hadoop, redoop}})
	}
	return res, nil
}

// AblationSpeculation measures the configuration choice of §6.1
// ("speculative execution was turned off so to boost performance"):
// each system runs with and without speculative map backups on a
// cluster with straggler-prone task durations. The trade-off is
// slot-occupancy-dependent: backups are nearly free when slots sit
// idle (Redoop's small steady-state waves) and compete with real work
// when the cluster is saturated (Hadoop's full-window re-runs) — which
// is what the four series let one measure.
func AblationSpeculation(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	const overlap = 0.9
	wcc := workload.DefaultWCC(cfg.Seed)
	mkSpec := func() runSpec {
		return runSpec{
			queryName: "Q1-spec",
			sources:   1,
			overlap:   overlap,
			windows:   cfg.Windows,
			sched:     workload.SteadyRate,
			gen: func(_ int, start, end int64, n int) []records.Record {
				return workload.WCC(wcc, start, end, n)
			},
			query: func() *core.Query {
				return queries.WCCAggregation("q1sp", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
			},
		}
	}
	jitterize := func(mr *mapreduce.Engine) {
		mr.Jitter = 0.3
		mr.StragglerProb = 0.08
		mr.StragglerFactor = 6
		mr.JitterSeed = cfg.Seed
	}

	runH := func(speculative bool, name string) (Series, error) {
		mr := cfg.NewRuntime(4)
		jitterize(mr)
		mr.Speculative = speculative
		drv, err := baseline.NewDriver(mr, mkSpec().query())
		if err != nil {
			return Series{}, err
		}
		f := newFeeder(cfg, mkSpec())
		s := Series{System: name, Overlap: overlap}
		spec := mkSpec()
		winSpec := spec.query().Spec()
		for r := 0; r < spec.windows; r++ {
			if err := f.feedThrough(winSpec.WindowClose(r), drv.Ingest); err != nil {
				return Series{}, err
			}
			res, err := drv.RunNext()
			if err != nil {
				return Series{}, err
			}
			s.Windows = append(s.Windows, WindowTiming{
				Window: r + 1, Response: res.ResponseTime,
				Shuffle: res.Stats.ShuffleTime, Reduce: res.Stats.ReduceTime,
			})
		}
		return s, nil
	}
	runR := func(speculative bool, name string) (Series, error) {
		mr := cfg.NewRuntime(5)
		jitterize(mr)
		mr.Speculative = speculative
		eng, err := core.NewEngine(core.Config{MR: mr, Query: mkSpec().query()})
		if err != nil {
			return Series{}, err
		}
		cfg.notifyEngine(eng)
		f := newFeeder(cfg, mkSpec())
		s := Series{System: name, Overlap: overlap}
		spec := mkSpec()
		winSpec := spec.query().Spec()
		for r := 0; r < spec.windows; r++ {
			if err := f.feedThrough(winSpec.WindowClose(r), eng.Ingest); err != nil {
				return Series{}, err
			}
			res, err := eng.RunNext()
			if err != nil {
				return Series{}, err
			}
			s.Windows = append(s.Windows, WindowTiming{
				Window: r + 1, Response: res.ResponseTime,
				Shuffle: res.Stats.ShuffleTime, Reduce: res.Stats.ReduceTime,
			})
		}
		return s, nil
	}

	hadoopOff, err := runH(false, "Hadoop")
	if err != nil {
		return nil, err
	}
	hadoopOn, err := runH(true, "Hadoop (speculative)")
	if err != nil {
		return nil, err
	}
	redoopOff, err := runR(false, "Redoop")
	if err != nil {
		return nil, err
	}
	redoopOn, err := runR(true, "Redoop (speculative)")
	if err != nil {
		return nil, err
	}
	return &FigResult{
		Name:  "Ablation C",
		Query: "speculative execution under stragglers (Q1, overlap 0.9)",
		Panels: []Panel{{
			Overlap: overlap,
			Series:  []Series{hadoopOff, hadoopOn, redoopOff, redoopOn},
		}},
	}, nil
}

// MultiQuerySharing measures the multi-query Semantic Analyzer end to
// end (§3.1): k recurring aggregations with different window sizes
// over one WCC stream, run twice — each query packing and mapping the
// stream privately, versus all of them consuming one shared source
// (one set of pane files, group-claimed reduce-input caches). The
// series report each variant's total DFS read volume as it scales
// with k.
func MultiQuerySharing(cfg Config) (*FigResult, error) {
	cfg = cfg.withDefaults()
	wcc := workload.DefaultWCC(cfg.Seed)
	slide := cfg.SlideFor(0.9)
	paneUnit := int64(slide) // windows are slide multiples => pane = slide
	perPane := int(float64(cfg.RecordsPerWindow) / float64(int64(cfg.WindowDur)/paneUnit))

	mkQuery := func(i int, shared bool) *core.Query {
		// Window sizes spread across slide multiples.
		win := slide * simtime.Duration(2+i%9)
		q := queries.WCCAggregation(fmt.Sprintf("mq%d", i), win, slide, cfg.Reducers)
		if shared {
			q.Sources[0].CacheKey = "wcc"
		}
		return q
	}

	run := func(k int, shared bool, name string) (Series, error) {
		mr := cfg.NewRuntime(6)
		ctrl := core.NewController()
		hub := core.NewSourceHub(mr.DFS, mr.DFS.BlockSize())
		hub.SetObserver(cfg.Obs)
		if shared {
			if err := hub.Share("wcc", "wcc", queries.WCCAggregation("spec", cfg.WindowDur, slide, cfg.Reducers).Sources[0].Spec, 0); err != nil {
				return Series{}, err
			}
		}
		var engines []*core.Engine
		for i := 0; i < k; i++ {
			eng, err := core.NewEngine(core.Config{MR: mr, Query: mkQuery(i, shared), Controller: ctrl, Hub: hub})
			if err != nil {
				return Series{}, err
			}
			cfg.notifyEngine(eng)
			engines = append(engines, eng)
		}
		series := Series{System: name}
		wts := make([]WindowTiming, cfg.Windows)
		for r := range wts {
			wts[r].Window = r + 1
		}
		fedPanes := 0
		feed := func(throughUnit int64) error {
			for ; int64(fedPanes)*paneUnit < throughUnit; fedPanes++ {
				start := int64(fedPanes) * paneUnit
				batch := workload.WCC(wcc, start, start+paneUnit, perPane)
				if shared {
					if err := hub.Ingest("wcc", batch); err != nil {
						return err
					}
				} else {
					for _, eng := range engines {
						if err := eng.Ingest(0, batch); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}
		// Engines sharing one runtime must execute in global trigger
		// order: slot timelines advance monotonically, so a recurrence
		// whose window closes earlier must run first even if it
		// belongs to a different query.
		closes := make([]func(int) int64, k)
		for i, eng := range engines {
			frames, err := eng.Query().Frames()
			if err != nil {
				return Series{}, err
			}
			closes[i] = frames[0].WindowClose
		}
		for done := 0; done < k*cfg.Windows; done++ {
			best := -1
			var bestClose int64
			for i, eng := range engines {
				r := eng.NextRecurrence()
				if r >= cfg.Windows {
					continue
				}
				if c := closes[i](r); best < 0 || c < bestClose {
					best, bestClose = i, c
				}
			}
			if err := feed(bestClose); err != nil {
				return Series{}, err
			}
			res, err := engines[best].RunNext()
			if err != nil {
				return Series{}, err
			}
			wt := &wts[res.Recurrence]
			wt.Response += res.ResponseTime
			// Reuse the Shuffle column for read volume (ms fields
			// carry bytes/1e6 here; Format prints raw series, the
			// caller interprets).
			wt.Shuffle += simtime.Duration(res.Stats.BytesRead)
			wt.Reduce += simtime.Duration(res.Stats.BytesShuffled)
		}
		series.Windows = wts
		return series, nil
	}

	res := &FigResult{
		Name:  "Multi-query sharing",
		Query: "k aggregations over one WCC stream; shuffle column = DFS bytes read (scaled), reduce column = shuffled bytes",
	}
	for _, k := range []int{1, 2, 4, 8} {
		private, err := run(k, false, fmt.Sprintf("%d private", k))
		if err != nil {
			return nil, err
		}
		shared, err := run(k, true, fmt.Sprintf("%d shared", k))
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, Panel{
			Overlap: float64(k),
			Series:  []Series{private, shared},
		})
	}
	return res, nil
}
