package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"redoop/internal/core"
	"redoop/internal/obs"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/workload"
)

// TestObservedRunProducesKeySeries runs a small instrumented Redoop
// series end to end and asserts the observability layer captured the
// quantities the paper's evaluation is built from: cache hits and
// misses, Equation 4 placement outcomes, shuffle bytes, and a
// Perfetto-loadable trace whose recurrence spans contain task spans.
func TestObservedRunProducesKeySeries(t *testing.T) {
	cfg := tinyConfig()
	ob := obs.New()
	cfg.Obs = ob
	wcc := workload.DefaultWCC(cfg.Seed)
	overlap := 0.9
	spec := runSpec{
		queryName: "Q1",
		sources:   1,
		overlap:   overlap,
		windows:   cfg.Windows,
		sched:     workload.SteadyRate,
		gen: func(_ int, start, end int64, n int) []records.Record {
			return workload.WCC(wcc, start, end, n)
		},
		query: func() *core.Query {
			return queries.WCCAggregation("q1", cfg.WindowDur, cfg.SlideFor(overlap), cfg.Reducers)
		},
	}
	if _, err := cfg.runRedoop(spec, "Redoop"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ob.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	// The high-overlap steady state must show real cache reuse, real
	// placement decisions and real shuffle traffic — a zero here means
	// an instrumentation hook fell off.
	for _, series := range []string{
		`redoop_cache_lookups_total{result="hit"`,
		`redoop_cache_lookups_total{result="miss"`,
		`redoop_placements_total{outcome="cache-local"}`,
		`redoop_shuffle_bytes_total{locality=`,
		`redoop_map_tasks_total`,
		`redoop_recurrences_total{query="q1"`,
		`redoop_cache_registrations_total`,
		`redoop_dfs_writes_total`,
	} {
		if !strings.Contains(exposition, series) {
			t.Errorf("exposition missing series %q", series)
		}
	}

	buf.Reset()
	if err := ob.Tracer.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	tracks := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if c, ok := e["cat"].(string); ok {
			cats[c]++
		}
		if e["ph"] == "M" && e["name"] == "thread_name" {
			args := e["args"].(map[string]any)
			tracks[args["name"].(string)] = true
		}
	}
	for _, cat := range []string{"recurrence", "phase", "map", "reduce"} {
		if cats[cat] == 0 {
			t.Errorf("trace has no %q spans (cats: %v)", cat, cats)
		}
	}
	if !tracks["query:q1"] {
		t.Errorf("trace missing the query track (tracks: %v)", tracks)
	}
	if cats["recurrence"] != cfg.Windows {
		t.Errorf("recurrence spans = %d, want %d", cats["recurrence"], cfg.Windows)
	}
}
