package experiments

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"redoop/internal/chaos"
	"redoop/internal/simtime"
)

// soakConfig is the fixed small-scale shape of one soak run: big
// enough for multi-wave maps, shared pane files and several panes of
// window overlap, small enough that a full regime sweep stays in
// test-suite time.
func soakConfig(seed int64) Config {
	return Config{
		Workers:          6,
		MapSlots:         4,
		ReduceSlots:      2,
		BlockSize:        16 << 10,
		Windows:          6,
		WindowDur:        60 * simtime.Minute,
		RecordsPerWindow: 6000,
		Reducers:         4,
		Seed:             100 + seed,
	}
}

// soakSeeds returns the chaos seeds to sweep: the CI matrix passes one
// seed per job via REDOOP_CHAOS_SEEDS (comma-separated); a plain
// `go test` run covers a short fixed subset.
func soakSeeds(t *testing.T) []int64 {
	env := os.Getenv("REDOOP_CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 5}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("REDOOP_CHAOS_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestChaosSoak drives every regime (agg, join, adaptive, speculative)
// through a deterministic fault storm with the differential oracle
// checking every window: byte-identical results vs baseline
// recomputation and zero structural-invariant violations, or the test
// fails with the first divergence. Reproduce any CI failure locally
// with REDOOP_CHAOS_SEEDS=<seed> go test -race -run TestChaosSoak ./internal/experiments
func TestChaosSoak(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		for _, regime := range ChaosRegimes {
			t.Run(fmt.Sprintf("seed%d/%s", seed, regime), func(t *testing.T) {
				cfg := soakConfig(seed)
				sched, err := chaos.Generate(seed, ProfileForRegime(regime), cfg.Windows, cfg.Workers)
				if err != nil {
					t.Fatalf("generate schedule: %v", err)
				}
				cfg.Chaos = sched
				verdicts, err := cfg.RunChaosRegime(regime)
				if err != nil {
					t.Fatalf("%s under %s: %v", regime, sched, err)
				}
				if len(verdicts) != cfg.Windows {
					t.Fatalf("got %d verdicts for %d windows", len(verdicts), cfg.Windows)
				}
				for _, v := range verdicts {
					if !v.OK() {
						t.Errorf("window %d: match=%v violations=%v", v.Recurrence+1, v.Match, v.Violations)
					}
				}
			})
		}
	}
}

// TestChaosReplayDeterminism: a chaos run is fully replayable — the
// same seed through the same regime yields identical verdicts, pair
// counts included. This is what makes a CI matrix failure a local
// repro rather than a flake report.
func TestChaosReplayDeterminism(t *testing.T) {
	runOnce := func() []int {
		cfg := soakConfig(2)
		sched, err := chaos.Generate(2, chaos.ProfileMixed, cfg.Windows, cfg.Workers)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		cfg.Chaos = sched
		verdicts, err := cfg.RunChaosRegime("agg")
		if err != nil {
			t.Fatalf("agg under %s: %v", sched, err)
		}
		var pairs []int
		for _, v := range verdicts {
			if !v.OK() {
				t.Fatalf("window %d failed: %+v", v.Recurrence+1, v)
			}
			pairs = append(pairs, v.EnginePairs)
		}
		return pairs
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two replays of the same schedule produced different outputs:\n%v\n%v", a, b)
	}
}

// TestChaosCorruptProfile verifies the corrupt profile end to end: the
// injector mangles already-mapped in-window pane files, and because
// reduce-input caches cover the overlap region, the engine never
// re-reads the damaged bytes — every window still verifies.
func TestChaosCorruptProfile(t *testing.T) {
	cfg := soakConfig(3)
	sched, err := chaos.Generate(3, chaos.ProfileCorrupt, cfg.Windows, cfg.Workers)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(sched.Actions) == 0 {
		t.Fatalf("corrupt profile generated no actions")
	}
	cfg.Chaos = sched
	if _, err := cfg.RunChaosRegime("agg"); err != nil {
		t.Fatalf("agg under %s: %v", sched, err)
	}
	if _, err := cfg.RunChaosRegime("join"); err != nil {
		t.Fatalf("join under %s: %v", sched, err)
	}
}
