package iocost

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default model invalid: %v", err)
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.DiskReadBps = 0 },
		func(m *Model) { m.DiskWriteBps = -1 },
		func(m *Model) { m.NetBps = math.NaN() },
		func(m *Model) { m.MapCPUBps = math.Inf(1) },
		func(m *Model) { m.ReduceCPUBps = 0 },
		func(m *Model) { m.SortBps = 0 },
		func(m *Model) { m.TaskOverhead = -time.Second },
	}
	for i, mutate := range cases {
		m := Default()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRateArithmetic(t *testing.T) {
	m := Default()
	m.DiskReadBps = 100e6
	if got := m.DiskRead(100e6); got != time.Second {
		t.Errorf("DiskRead(100MB) = %v, want 1s", got)
	}
	if got := m.DiskRead(0); got != 0 {
		t.Errorf("DiskRead(0) = %v, want 0", got)
	}
	if got := m.DiskRead(-5); got != 0 {
		t.Errorf("DiskRead(-5) = %v, want 0", got)
	}
}

func TestMapTaskComposition(t *testing.T) {
	m := Default()
	allLocal := m.MapTask(1e6, 1e6, 1e6)
	allRemote := m.MapTask(1e6, 0, 1e6)
	if allRemote <= allLocal && m.NetBps < m.DiskReadBps {
		t.Errorf("remote read should cost more when net is slower: local=%v remote=%v", allLocal, allRemote)
	}
	// localBytes is clamped to inBytes.
	clamped := m.MapTask(1e6, 2e6, 1e6)
	if clamped != allLocal {
		t.Errorf("over-reported local bytes should clamp: %v vs %v", clamped, allLocal)
	}
	if got := m.MapTask(0, 0, 0); got != m.TaskOverhead {
		t.Errorf("empty map task should cost only the overhead, got %v", got)
	}
}

func TestReduceTaskMonotone(t *testing.T) {
	m := Default()
	small := m.ReduceTask(1e6, 1e5)
	big := m.ReduceTask(10e6, 1e5)
	if big <= small {
		t.Errorf("bigger input should cost more: %v vs %v", small, big)
	}
}

func TestCacheReadLocalCheaper(t *testing.T) {
	m := Default()
	local := m.CacheRead(1e6, true)
	remote := m.CacheRead(1e6, false)
	if remote <= local {
		t.Errorf("remote cache read must cost strictly more (it adds a network hop): local=%v remote=%v", local, remote)
	}
	if want := local + m.NetTransfer(1e6); remote != want {
		t.Errorf("remote = %v, want local+net = %v", remote, want)
	}
}

func TestMergeTaskIncludesOverhead(t *testing.T) {
	m := Default()
	if got := m.MergeTask(0, 0); got != m.TaskOverhead {
		t.Errorf("empty merge = %v, want the task overhead %v", got, m.TaskOverhead)
	}
}

// Property: every cost function is monotone non-decreasing in its byte
// arguments and never negative.
func TestCostMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		lo, hi := x, y
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.DiskRead(lo) <= m.DiskRead(hi) &&
			m.DiskWrite(lo) <= m.DiskWrite(hi) &&
			m.NetTransfer(lo) <= m.NetTransfer(hi) &&
			m.Sort(lo) <= m.Sort(hi) &&
			m.ReduceTask(lo, 0) <= m.ReduceTask(hi, 0) &&
			m.MapTask(lo, 0, 0) <= m.MapTask(hi, 0, 0) &&
			m.DiskRead(lo) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
