// Package iocost models the I/O and CPU costs of MapReduce task
// execution on the simulated cluster.
//
// The Redoop paper's evaluation ran on a real 31-node Hadoop cluster; we
// reproduce the *shape* of its results by charging each task a virtual
// duration derived from the bytes it reads, shuffles, sorts, computes
// over and writes. The model follows the observation (cited by the paper
// from Li et al., SOPA) that I/O cost dominates MapReduce execution, and
// it is the C_task term of the paper's Equation 4 scheduling metric.
package iocost

import (
	"fmt"
	"math"
	"time"
)

// Model holds the throughput parameters of one cluster configuration.
// All rates are bytes per second of virtual time. The zero Model is not
// usable; start from Default().
type Model struct {
	// DiskReadBps is the sequential read bandwidth of a node's local
	// disk (also used for DFS reads served by the local replica).
	DiskReadBps float64
	// DiskWriteBps is the sequential write bandwidth of a node's local
	// disk (spills, cache writes, DFS writes).
	DiskWriteBps float64
	// NetBps is the per-node network bandwidth used for non-local DFS
	// reads and for the shuffle.
	NetBps float64
	// MapCPUBps is the rate at which a map task processes its input
	// (parsing plus the user map function).
	MapCPUBps float64
	// ReduceCPUBps is the rate at which a reduce task processes its
	// grouped input (the user reduce function).
	ReduceCPUBps float64
	// SortBps is the rate of the sort/merge/group stage that precedes
	// the reduce function.
	SortBps float64
	// TaskOverhead is the fixed per-task-attempt startup cost (process
	// launch, heartbeat scheduling latency). Hadoop clusters of the
	// paper's era paid on the order of a second per task.
	TaskOverhead time.Duration
}

// Default returns a model calibrated to the paper's testbed: commodity
// 2008-era servers (quad-core 2.66 GHz, single SATA disk, 1 Gbit
// Ethernet) running Hadoop 0.20.2.
func Default() Model {
	return Model{
		DiskReadBps:  90e6,
		DiskWriteBps: 70e6,
		NetBps:       110e6, // ~1 Gbit/s payload rate
		MapCPUBps:    60e6,
		ReduceCPUBps: 50e6,
		SortBps:      80e6,
		TaskOverhead: 800 * time.Millisecond,
		// I/O-bound by construction: CPU rates are within a small
		// factor of disk rates, as on the paper's hardware.
	}
}

// Validate reports whether every rate is positive and finite.
func (m Model) Validate() error {
	check := func(name string, v float64) error {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("iocost: %s must be positive and finite, got %v", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"DiskReadBps", m.DiskReadBps},
		{"DiskWriteBps", m.DiskWriteBps},
		{"NetBps", m.NetBps},
		{"MapCPUBps", m.MapCPUBps},
		{"ReduceCPUBps", m.ReduceCPUBps},
		{"SortBps", m.SortBps},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if m.TaskOverhead < 0 {
		return fmt.Errorf("iocost: TaskOverhead must be non-negative, got %v", m.TaskOverhead)
	}
	return nil
}

// dur converts bytes at a rate to a duration, saturating at zero for
// non-positive byte counts.
func dur(bytes int64, bps float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bps * float64(time.Second))
}

// DiskRead returns the virtual time to read n bytes from local disk.
func (m Model) DiskRead(n int64) time.Duration { return dur(n, m.DiskReadBps) }

// DiskWrite returns the virtual time to write n bytes to local disk.
func (m Model) DiskWrite(n int64) time.Duration { return dur(n, m.DiskWriteBps) }

// NetTransfer returns the virtual time to move n bytes across the
// network between two nodes.
func (m Model) NetTransfer(n int64) time.Duration { return dur(n, m.NetBps) }

// Sort returns the virtual time for the sort/merge/group stage over n
// bytes of shuffled input.
func (m Model) Sort(n int64) time.Duration { return dur(n, m.SortBps) }

// MapTask returns the duration of one map task attempt that reads
// inBytes (localBytes of which are served by a local replica), produces
// outBytes of intermediate data, and spills it to local disk.
func (m Model) MapTask(inBytes, localBytes, outBytes int64) time.Duration {
	if localBytes > inBytes {
		localBytes = inBytes
	}
	remote := inBytes - localBytes
	return m.TaskOverhead +
		m.DiskRead(localBytes) +
		m.NetTransfer(remote) +
		dur(inBytes, m.MapCPUBps) +
		m.DiskWrite(outBytes)
}

// ReduceTask returns the duration of one reduce task attempt that sorts
// and reduces inBytes of shuffled input and produces outBytes of output.
// The reduce function's cost covers both sides — for joins the output
// enumeration dominates (paper §6.2.2) — and the output is written to
// disk. Shuffle transfer time is charged separately by the engine
// because it overlaps the map phase.
func (m Model) ReduceTask(inBytes, outBytes int64) time.Duration {
	return m.TaskOverhead +
		m.Sort(inBytes) +
		dur(inBytes+outBytes, m.ReduceCPUBps) +
		m.DiskWrite(outBytes)
}

// CacheRead returns the virtual time for a reduce task to load n bytes
// of window-aware cache. Local caches are disk reads; remote caches pay
// the network as well, which is why the cache-aware scheduler prefers
// the cache's home node.
func (m Model) CacheRead(n int64, local bool) time.Duration {
	if local {
		return m.DiskRead(n)
	}
	return m.DiskRead(n) + m.NetTransfer(n)
}

// CachedReduceTask returns the duration of a reduce-style task fed by
// pre-sorted cached inputs (Redoop's pane-pair joins): the sort was
// paid once when the reduce-input cache was built, so the task charges
// only the reduce function (input and output sides) and the output
// write. The startup overhead is a quarter of a full task launch —
// cache-fed tasks skip input-split negotiation and reuse the node's
// long-lived cache manager, the implementation point of the paper's
// modified ReduceTask/TaskTracker (§5). Cache-read time is charged
// separately via CacheRead, since locality varies.
func (m Model) CachedReduceTask(inBytes, outBytes int64) time.Duration {
	return m.TaskOverhead/4 + dur(inBytes+outBytes, m.ReduceCPUBps) + m.DiskWrite(outBytes)
}

// ConcatTask returns the duration of a finalization step that merely
// concatenates cached partial outputs (a join window's result is the
// union of its pane pairs' outputs): an output write plus overhead.
func (m Model) ConcatTask(outBytes int64) time.Duration {
	return m.TaskOverhead + m.DiskWrite(outBytes)
}

// MergeTask returns the duration of the finalization step that merges
// nPanes cached pane outputs totalling inBytes into outBytes of window
// output. It is pane-based rather than tuple-based (paper §6.2.1), so
// its CPU charge uses the sort rate over the pane outputs only.
func (m Model) MergeTask(inBytes, outBytes int64) time.Duration {
	return m.TaskOverhead + m.Sort(inBytes) + m.DiskWrite(outBytes)
}
