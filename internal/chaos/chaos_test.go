package chaos

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic: the same (seed, profile, shape) must
// yield byte-identical schedules — the reproducibility contract the
// CI matrix depends on.
func TestGenerateDeterministic(t *testing.T) {
	for _, profile := range Profiles() {
		a, err := Generate(42, profile, 10, 6)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		b, err := Generate(42, profile, 10, 6)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different schedules:\n%+v\n%+v", profile, a, b)
		}
	}
	a, _ := Generate(1, ProfileMixed, 10, 6)
	b, _ := Generate(2, ProfileMixed, 10, 6)
	if reflect.DeepEqual(a.Actions, b.Actions) && a.MapFailPct == b.MapFailPct {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// TestGenerateShape: profiles emit only their own action kinds and
// every crash stays recoverable (a matching revive or end-of-run).
func TestGenerateShape(t *testing.T) {
	allowed := map[string]map[Kind]bool{
		ProfileCrash:     {NodeCrash: true, NodeRevive: true},
		ProfileCacheLoss: {CacheDrop: true},
		ProfileDelay:     {DelayBatch: true},
		ProfileCorrupt:   {PaneCorrupt: true, PaneTruncate: true},
	}
	for profile, kinds := range allowed {
		s, err := Generate(42, profile, 12, 6)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if len(s.Actions) == 0 {
			t.Fatalf("%s: no actions generated over 12 windows", profile)
		}
		for _, a := range s.Actions {
			if !kinds[a.Kind] {
				t.Fatalf("%s: unexpected action kind %s", profile, a.Kind)
			}
		}
		if s.MapFailPct != 0 || s.ReduceFailPct != 0 || s.Jitter != 0 {
			t.Fatalf("%s: single-fault profile must not enable task faults/jitter: %+v", profile, s)
		}
	}
	none, err := Generate(42, ProfileNone, 12, 6)
	if err != nil {
		t.Fatalf("none: %v", err)
	}
	if len(none.Actions) != 0 || none.MapFailPct != 0 || none.Jitter != 0 {
		t.Fatalf("none profile is not empty: %+v", none)
	}
	spec, err := Generate(42, ProfileSpeculative, 12, 6)
	if err != nil {
		t.Fatalf("speculative: %v", err)
	}
	if !spec.Speculative || spec.Jitter == 0 {
		t.Fatalf("speculative profile must enable speculation and jitter: %+v", spec)
	}
}

// TestFaultPlanDeterministicAndRecoverable: the task-fault plan is a
// pure function of (seed, task identity), hits roughly its configured
// rate, and never fails a retry — so MaxAttempts always recovers.
func TestFaultPlanDeterministicAndRecoverable(t *testing.T) {
	s, err := Generate(42, ProfileStraggle, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.MapFailPct == 0 || s.ReduceFailPct == 0 {
		t.Fatalf("straggle profile has no task faults: %+v", s)
	}
	failed := 0
	for i := 0; i < 1000; i++ {
		split := string(rune('a'+i%26)) + string(rune('0'+i%10))
		first := s.MapAttemptFails("job", split, 0)
		if first != s.MapAttemptFails("job", split, 0) {
			t.Fatalf("non-deterministic verdict for split %q", split)
		}
		if first {
			failed++
		}
		for attempt := 1; attempt < 4; attempt++ {
			if s.MapAttemptFails("job", split, attempt) {
				t.Fatalf("retry attempt %d failed — chaos must stay recoverable", attempt)
			}
			if s.ReduceAttemptFails("job", attempt, attempt) {
				t.Fatalf("reduce retry attempt %d failed", attempt)
			}
		}
	}
	if failed == 0 {
		t.Fatalf("fault plan with MapFailPct=%d failed nothing over 1000 tasks", s.MapFailPct)
	}
}

func TestParseSpec(t *testing.T) {
	_, seed, profile, err := ParseSpec("7")
	if err != nil || seed != 7 || profile != ProfileMixed {
		t.Fatalf("ParseSpec(7) = %d %q %v", seed, profile, err)
	}
	_, seed, profile, err = ParseSpec("-3:crash")
	if err != nil || seed != -3 || profile != ProfileCrash {
		t.Fatalf("ParseSpec(-3:crash) = %d %q %v", seed, profile, err)
	}
	for _, bad := range []string{"", "x", "7:bogus", ":crash"} {
		if _, _, _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
