// Package chaos generates seeded, fully deterministic fault schedules
// for the simulated Redoop cluster: node crashes and revivals at chosen
// recurrences, cache-entry loss, pane-file corruption and truncation,
// delayed batch arrival into the Packer, and straggler slowdowns.
//
// A Schedule is a pure value: generating it twice from the same
// (seed, profile, shape) yields byte-identical actions, and replaying
// it against the virtual-time runtime reproduces the same fault
// interleaving every run. That makes any failure found under chaos
// reproducible from the seed alone — the property the CI soak matrix
// and `redoop-bench -chaos` rely on.
//
// The schedule generalizes the existing mapreduce.FaultPlan hook
// (task-attempt failures) with recurrence-scoped cluster/storage
// actions applied by an Injector between feeding a window's batches
// and triggering its recurrence. Because every action lands before
// RunNext, the engine's §5 recovery ladder (reuse rout → rebuild from
// rin → full re-map, with the controller's 2→1 rollback) is exercised
// while the post-recurrence state stays checkable by the differential
// oracle.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
)

// Kind names one chaos action.
type Kind string

const (
	// NodeCrash fails a worker: its cluster timeline and local state
	// (including caches) are lost and the DFS re-replicates its blocks.
	NodeCrash Kind = "node-crash"
	// NodeRevive brings a previously crashed worker back empty.
	NodeRevive Kind = "node-revive"
	// CacheDrop silently clears one node's cache partition (rin/rout
	// bytes) without failing the node — the pure cache-loss failure of
	// paper §5, discovered lazily at the next lookup.
	CacheDrop Kind = "cache-drop"
	// PaneCorrupt flips bytes in the middle of an already-consumed
	// pane file that is still inside the current window.
	PaneCorrupt Kind = "pane-corrupt"
	// PaneTruncate cuts an already-consumed, still-in-window pane
	// file to half its length.
	PaneTruncate Kind = "pane-truncate"
	// DelayBatch holds early batches of the recurrence's fill and
	// releases them out of order, just before the window triggers.
	DelayBatch Kind = "delay-batch"
)

// Action is one scheduled fault. Node/Source/Count parameterize the
// kind; Pick deterministically selects among runtime-resolved targets
// (e.g. which pane file to corrupt) so the schedule stays replayable
// without knowing file names up front.
type Action struct {
	Recurrence int   `json:"recurrence"`
	Kind       Kind  `json:"kind"`
	Node       int   `json:"node,omitempty"`
	Source     int   `json:"source,omitempty"`
	Count      int   `json:"count,omitempty"`
	Pick       int64 `json:"pick,omitempty"`
}

// Schedule is a replayable fault plan: recurrence-scoped actions plus
// task-attempt failure rates and straggler knobs applied for the whole
// run. It implements mapreduce.FaultPlan.
type Schedule struct {
	Seed    int64    `json:"seed"`
	Profile string   `json:"profile"`
	Actions []Action `json:"actions,omitempty"`
	// MapFailPct / ReduceFailPct make that percentage of first task
	// attempts fail deterministically (hash of seed and task
	// identity). Only attempt 0 ever fails, so MaxAttempts retries
	// always recover and chaos never turns into an unrecoverable job
	// failure.
	MapFailPct    int `json:"mapFailPct,omitempty"`
	ReduceFailPct int `json:"reduceFailPct,omitempty"`
	// Straggler knobs copied onto the mapreduce engine: durations
	// jitter but stay seeded, so runs remain reproducible.
	Jitter          float64 `json:"jitter,omitempty"`
	StragglerProb   float64 `json:"stragglerProb,omitempty"`
	StragglerFactor float64 `json:"stragglerFactor,omitempty"`
	// Speculative additionally enables speculative map execution, the
	// regime where duplicate attempts race and the loser is discarded.
	Speculative bool `json:"speculative,omitempty"`
}

// Profiles supported by Generate and ParseSpec.
const (
	ProfileMixed       = "mixed"       // crashes, revivals, cache drops, delayed batches, task faults, stragglers
	ProfileCrash       = "crash"       // node crash/revive only
	ProfileCacheLoss   = "cacheloss"   // silent cache drops only
	ProfileCorrupt     = "corrupt"     // pane-file corruption/truncation only (no cache disturbance, so the engine must never re-read the mangled files)
	ProfileDelay       = "delay"       // delayed batch arrival only
	ProfileStraggle    = "straggle"    // jitter + stragglers + task-attempt faults
	ProfileSpeculative = "speculative" // straggle with speculative execution enabled
	ProfileNone        = "none"        // empty schedule (oracle-only run)
)

// Profiles lists every profile name Generate accepts.
func Profiles() []string {
	return []string{
		ProfileMixed, ProfileCrash, ProfileCacheLoss, ProfileCorrupt,
		ProfileDelay, ProfileStraggle, ProfileSpeculative, ProfileNone,
	}
}

// ParseSpec parses the CLI form "SEED[:profile]" (e.g. "7", "7:crash").
func ParseSpec(s string) (*Schedule, int64, string, error) {
	seedStr, profile := s, ProfileMixed
	if i := strings.IndexByte(s, ':'); i >= 0 {
		seedStr, profile = s[:i], s[i+1:]
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return nil, 0, "", fmt.Errorf("chaos: bad seed in spec %q: %w", s, err)
	}
	if !validProfile(profile) {
		return nil, 0, "", fmt.Errorf("chaos: unknown profile %q (want one of %s)",
			profile, strings.Join(Profiles(), ", "))
	}
	return nil, seed, profile, nil
}

func validProfile(p string) bool {
	for _, q := range Profiles() {
		if p == q {
			return true
		}
	}
	return false
}

// Generate builds a deterministic schedule for a run of `windows`
// recurrences on `workers` nodes. The same (seed, profile, windows,
// workers) always yields the same schedule.
//
// Generation keeps every fault recoverable: at most workers-1 nodes
// are ever dead at once, crashed nodes revive within two recurrences,
// and file corruption (corrupt profile only) targets panes that were
// mapped in an earlier window and whose reduce-input caches the
// profile never disturbs — so the engine, per §4.2, reuses caches and
// never re-reads the mangled bytes.
func Generate(seed int64, profile string, windows, workers int) (*Schedule, error) {
	if !validProfile(profile) {
		return nil, fmt.Errorf("chaos: unknown profile %q", profile)
	}
	if windows < 1 || workers < 1 {
		return nil, fmt.Errorf("chaos: need positive windows (%d) and workers (%d)", windows, workers)
	}
	s := &Schedule{Seed: seed, Profile: profile}
	rng := rand.New(rand.NewSource(seed*2654435761 + int64(windows)))

	crash := profile == ProfileMixed || profile == ProfileCrash
	drops := profile == ProfileMixed || profile == ProfileCacheLoss
	delay := profile == ProfileMixed || profile == ProfileDelay
	corrupt := profile == ProfileCorrupt
	straggle := profile == ProfileMixed || profile == ProfileStraggle || profile == ProfileSpeculative

	if straggle {
		s.MapFailPct = 10 + rng.Intn(11)   // 10–20% of first map attempts
		s.ReduceFailPct = 5 + rng.Intn(11) // 5–15% of first reduce attempts
		s.Jitter = 0.2 + 0.3*rng.Float64()
		s.StragglerProb = 0.05 + 0.10*rng.Float64()
		s.StragglerFactor = 2 + 3*rng.Float64()
	}
	s.Speculative = profile == ProfileSpeculative

	dead := map[int]bool{}
	for r := 1; r < windows; r++ {
		// Revive pending crashes first so the dead set never grows
		// unboundedly; each crash schedules its own revival 1–2
		// recurrences out, emitted when its turn comes.
		if crash && len(dead) < workers-1 && rng.Float64() < 0.45 {
			n := rng.Intn(workers)
			for dead[n] {
				n = (n + 1) % workers
			}
			dead[n] = true
			s.Actions = append(s.Actions, Action{Recurrence: r, Kind: NodeCrash, Node: n})
			back := r + 1 + rng.Intn(2)
			if back < windows {
				s.Actions = append(s.Actions, Action{Recurrence: back, Kind: NodeRevive, Node: n})
			}
		}
		for _, a := range s.Actions {
			if a.Kind == NodeRevive && a.Recurrence == r {
				delete(dead, a.Node)
			}
		}
		if drops && rng.Float64() < 0.5 {
			n := rng.Intn(workers)
			s.Actions = append(s.Actions, Action{Recurrence: r, Kind: CacheDrop, Node: n})
		}
		if delay && rng.Float64() < 0.5 {
			s.Actions = append(s.Actions, Action{
				Recurrence: r, Kind: DelayBatch,
				Source: rng.Intn(2), Count: 1 + rng.Intn(3),
			})
		}
		if corrupt && r >= 2 && rng.Float64() < 0.6 {
			kind := PaneCorrupt
			if rng.Intn(2) == 1 {
				kind = PaneTruncate
			}
			s.Actions = append(s.Actions, Action{
				Recurrence: r, Kind: kind,
				Source: rng.Intn(2), Pick: rng.Int63(),
			})
		}
	}
	return s, nil
}

// hashPct maps a task identity to [0,100) deterministically.
func hashPct(seed int64, kind, job, task string) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s", seed, kind, job, task)
	return int(h.Sum64() % 100)
}

// MapAttemptFails implements mapreduce.FaultPlan: a deterministic
// MapFailPct slice of first attempts fail; retries always succeed.
func (s *Schedule) MapAttemptFails(jobName, splitID string, attempt int) bool {
	if s == nil || attempt != 0 || s.MapFailPct <= 0 {
		return false
	}
	return hashPct(s.Seed, "map", jobName, splitID) < s.MapFailPct
}

// ReduceAttemptFails implements mapreduce.FaultPlan for reduce tasks.
func (s *Schedule) ReduceAttemptFails(jobName string, part, attempt int) bool {
	if s == nil || attempt != 0 || s.ReduceFailPct <= 0 {
		return false
	}
	return hashPct(s.Seed, "reduce", jobName, strconv.Itoa(part)) < s.ReduceFailPct
}

// ActionsAt returns the actions scheduled for recurrence r, in
// schedule order.
func (s *Schedule) ActionsAt(r int) []Action {
	var out []Action
	for _, a := range s.Actions {
		if a.Recurrence == r {
			out = append(out, a)
		}
	}
	return out
}

// String summarizes the schedule for logs.
func (s *Schedule) String() string {
	return fmt.Sprintf("chaos seed=%d profile=%s actions=%d mapFail=%d%% reduceFail=%d%% jitter=%.2f spec=%v",
		s.Seed, s.Profile, len(s.Actions), s.MapFailPct, s.ReduceFailPct, s.Jitter, s.Speculative)
}
