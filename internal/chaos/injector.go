package chaos

import (
	"fmt"

	"redoop/internal/core"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// Applied records one action as it actually landed at runtime, with
// runtime-resolved targets (node after clamping, corrupted file path).
type Applied struct {
	Recurrence int    `json:"recurrence"`
	Kind       Kind   `json:"kind"`
	Node       int    `json:"node,omitempty"`
	Target     string `json:"target,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// Injector replays a Schedule against one Redoop run: it composes the
// schedule's task-attempt faults and straggler knobs into the
// mapreduce engine at Bind time, gates batch delivery to realize
// delayed arrivals, and applies the recurrence-scoped actions in
// BeforeRecurrence — always between the window's last batch and its
// trigger, so every post-RunNext oracle check sees the engine's
// recovered state, not a half-applied fault.
type Injector struct {
	sched *Schedule
	mr    *mapreduce.Engine

	held     map[int][][]records.Record // delayed batches per source
	consumed map[int]int                // batches held so far, per action index
	applied  []Applied
	// OnCorrupt, when set, receives every DFS path the injector
	// mangles (the oracle uses it to skip header cross-checks on
	// deliberately damaged files).
	OnCorrupt func(path string)
}

// NewInjector binds a schedule to a runtime: the schedule's fault plan
// is composed with any plan already installed (both get a vote), and
// the straggler/speculative knobs are copied over. Call WrapIngest and
// BeforeRecurrence to complete the wiring for one engine.
func NewInjector(s *Schedule, mr *mapreduce.Engine) *Injector {
	in := &Injector{
		sched:    s,
		mr:       mr,
		held:     map[int][][]records.Record{},
		consumed: map[int]int{},
	}
	if s.MapFailPct > 0 || s.ReduceFailPct > 0 {
		if mr.Faults != nil {
			mr.Faults = mapreduce.FaultPlans{mr.Faults, s}
		} else {
			mr.Faults = s
		}
	}
	if s.Jitter > 0 {
		mr.Jitter = s.Jitter
		mr.StragglerProb = s.StragglerProb
		mr.StragglerFactor = s.StragglerFactor
		mr.JitterSeed = s.Seed
	}
	if s.Speculative {
		mr.Speculative = true
	}
	return in
}

// Applied returns the log of actions as they landed.
func (in *Injector) Applied() []Applied { return in.applied }

// WrapIngest interposes the delay gate on an engine's ingest path:
// batches selected by a DelayBatch action for the upcoming recurrence
// are held and released — out of arrival order — by BeforeRecurrence,
// just before the window triggers. Out-of-order arrival between
// flushes is legal for the Packer (it buffers by pane until
// FlushThrough), which is exactly the §2.1 upload-lag scenario the
// action models.
func (in *Injector) WrapIngest(eng *core.Engine, inner func(src int, recs []records.Record) error) func(src int, recs []records.Record) error {
	nsrc := len(eng.Query().Sources)
	return func(src int, recs []records.Record) error {
		r := eng.NextRecurrence()
		for i, a := range in.sched.Actions {
			if a.Kind != DelayBatch || a.Recurrence != r || a.Source%nsrc != src {
				continue
			}
			if in.consumed[i] < a.Count {
				in.consumed[i]++
				in.held[src] = append(in.held[src], recs)
				return nil
			}
		}
		return inner(src, recs)
	}
}

// releaseHeld delivers every delayed batch, in hold order.
func (in *Injector) releaseHeld(r int, inner func(src int, recs []records.Record) error) error {
	for src, batches := range in.held {
		for _, b := range batches {
			if err := inner(src, b); err != nil {
				return fmt.Errorf("chaos: releasing delayed batch (src %d, recurrence %d): %w", src, r, err)
			}
		}
		if n := len(batches); n > 0 {
			in.applied = append(in.applied, Applied{
				Recurrence: r, Kind: DelayBatch, Node: -1,
				Detail: fmt.Sprintf("released %d delayed batch(es) for source %d", n, src),
			})
		}
		delete(in.held, src)
	}
	return nil
}

// BeforeRecurrence applies every action scheduled for recurrence r.
// Call it after feeding the window's batches and before RunNext;
// `ingest` must be the same sink WrapIngest wraps (typically
// eng.Ingest, or the oracle's tee of it).
func (in *Injector) BeforeRecurrence(r int, eng *core.Engine, ingest func(src int, recs []records.Record) error) error {
	if err := in.releaseHeld(r, ingest); err != nil {
		return err
	}
	workers := len(in.mr.Cluster.NodeIDs())
	for _, a := range in.sched.ActionsAt(r) {
		switch a.Kind {
		case NodeCrash:
			n := a.Node % workers
			if !in.mr.Cluster.Node(n).Alive() || in.aliveCount() <= 1 {
				continue
			}
			moved := in.mr.DFS.FailNodeAt(n, in.triggerTime(eng, r))
			in.mr.Cluster.FailNode(n)
			in.mr.Lineage.RecordFault(lineage.Fault{
				Kind: string(NodeCrash), Node: n, Recurrence: r,
				AtNS: int64(in.triggerTime(eng, r)),
			})
			in.applied = append(in.applied, Applied{
				Recurrence: r, Kind: NodeCrash, Node: n,
				Detail: fmt.Sprintf("re-replicated %d bytes", moved),
			})
		case NodeRevive:
			n := a.Node % workers
			if in.mr.Cluster.Node(n).Alive() {
				continue
			}
			in.mr.Cluster.ReviveNode(n, in.triggerTime(eng, r))
			in.mr.DFS.ReviveNode(n)
			in.applied = append(in.applied, Applied{Recurrence: r, Kind: NodeRevive, Node: n})
		case CacheDrop:
			n := a.Node % workers
			if !in.mr.Cluster.Node(n).Alive() {
				continue
			}
			dropped := in.mr.Cluster.DropLocal(n, "cache/")
			in.mr.Lineage.RecordFault(lineage.Fault{
				Kind: string(CacheDrop), Node: n, Recurrence: r,
				AtNS: int64(in.triggerTime(eng, r)),
			})
			in.applied = append(in.applied, Applied{
				Recurrence: r, Kind: CacheDrop, Node: n,
				Detail: fmt.Sprintf("dropped %d cache entries", dropped),
			})
		case PaneCorrupt, PaneTruncate:
			if err := in.corruptPane(r, eng, a); err != nil {
				return err
			}
		case DelayBatch:
			// Realized by the ingest gate + releaseHeld above.
		default:
			return fmt.Errorf("chaos: unknown action kind %q", a.Kind)
		}
	}
	return nil
}

func (in *Injector) aliveCount() int {
	n := 0
	for _, id := range in.mr.Cluster.NodeIDs() {
		if in.mr.Cluster.Node(id).Alive() {
			n++
		}
	}
	return n
}

// triggerTime is recurrence r's window-close instant (zero for
// count-based windows, whose units are not times).
func (in *Injector) triggerTime(eng *core.Engine, r int) simtime.Time {
	spec := eng.Query().Spec()
	if spec.Kind != window.TimeBased {
		return 0
	}
	return simtime.Time(spec.WindowClose(r))
}

// corruptPane mangles one already-mapped pane file that is still
// inside the current window: a pane in the overlap region
// [winLo(r), winHi(r-1)] was mapped (and its reduce-input cached)
// during an earlier recurrence, so a correct engine serves the current
// window from caches and never re-reads the damaged bytes. Requires
// r ≥ 1 and overlapping windows; otherwise the action is a no-op.
func (in *Injector) corruptPane(r int, eng *core.Engine, a Action) error {
	if r < 1 {
		return nil
	}
	frames, err := eng.Query().Frames()
	if err != nil {
		return err
	}
	src := a.Source % len(frames)
	lo, _ := frames[src].WindowRange(r)
	_, prevHi := frames[src].WindowRange(r - 1)
	var candidates []string
	seen := map[string]bool{}
	for p := lo; p <= prevHi; p++ {
		inputs, ok := eng.PaneInputs(src, p)
		if !ok {
			continue
		}
		for _, pi := range inputs {
			if path := pi.Input.Path; !seen[path] && in.mr.DFS.Exists(path) {
				seen[path] = true
				candidates = append(candidates, path)
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	path := candidates[int(a.Pick%int64(len(candidates)))]
	data, err := in.mr.DFS.Read(path)
	if err != nil || len(data) == 0 {
		return err
	}
	detail := ""
	if a.Kind == PaneTruncate {
		data = data[:len(data)/2]
		detail = fmt.Sprintf("truncated to %d bytes", len(data))
	} else {
		for i := len(data) / 3; i < 2*len(data)/3; i++ {
			data[i] ^= 0xA5
		}
		detail = fmt.Sprintf("flipped bytes %d..%d", len(data)/3, 2*len(data)/3)
	}
	if err := in.mr.DFS.Write(path, data); err != nil {
		return err
	}
	if in.OnCorrupt != nil {
		in.OnCorrupt(path)
	}
	in.mr.Lineage.RecordFault(lineage.Fault{
		Kind: string(a.Kind), Node: -1, Path: path, Recurrence: r,
		AtNS: int64(in.triggerTime(eng, r)),
	})
	in.applied = append(in.applied, Applied{
		Recurrence: r, Kind: a.Kind, Node: -1, Target: path, Detail: detail,
	})
	return nil
}
