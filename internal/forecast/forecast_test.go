package forecast

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHoltValidation(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{
		{0, 0.3}, {-0.1, 0.3}, {1.1, 0.3}, {0.5, 0}, {0.5, 2}, {math.NaN(), 0.3}, {0.5, math.NaN()},
	} {
		if _, err := NewHolt(c.a, c.b); err == nil {
			t.Errorf("NewHolt(%v,%v) should fail", c.a, c.b)
		}
	}
	if _, err := NewHolt(0.5, 0.3); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestMustNewHoltPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewHolt should panic on invalid params")
		}
	}()
	MustNewHolt(0, 0)
}

func TestInitialization(t *testing.T) {
	h := MustNewHolt(0.5, 0.3)
	if h.Forecast(1) != 0 {
		t.Error("forecast before any observation should be zero")
	}
	h.Observe(100)
	if h.Level() != 100 || h.Trend() != 0 {
		t.Errorf("after first obs: level=%v trend=%v, want 100, 0", h.Level(), h.Trend())
	}
	if h.Ready() {
		t.Error("one observation should not make the estimator ready")
	}
	h.Observe(110)
	if h.Level() != 110 || h.Trend() != 10 {
		t.Errorf("after second obs: level=%v trend=%v, want 110, 10", h.Level(), h.Trend())
	}
	if !h.Ready() {
		t.Error("two observations should make the estimator ready")
	}
	if h.N() != 2 {
		t.Errorf("N = %d, want 2", h.N())
	}
}

func TestLinearTrendForecastIsExact(t *testing.T) {
	// For a perfectly linear series the smoothed level and trend lock
	// onto the line, so the k-step forecast is exact.
	h := MustNewHolt(0.5, 0.3)
	for i := 0; i < 20; i++ {
		h.Observe(50 + 10*float64(i))
	}
	got := h.Forecast(3)
	want := 50 + 10*float64(22)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Forecast(3) = %v, want %v", got, want)
	}
}

func TestConstantSeries(t *testing.T) {
	h := MustNewHolt(0.5, 0.3)
	for i := 0; i < 10; i++ {
		h.Observe(42)
	}
	if math.Abs(h.Forecast(5)-42) > 1e-9 {
		t.Errorf("constant series should forecast the constant, got %v", h.Forecast(5))
	}
}

func TestSpikeDetection(t *testing.T) {
	// The profiler's use case: execution times double; the forecast
	// should move decisively toward the new regime.
	h := MustNewHolt(0.5, 0.3)
	for i := 0; i < 5; i++ {
		h.Observe(100)
	}
	h.Observe(200)
	h.Observe(200)
	if f := h.Forecast(1); f < 150 {
		t.Errorf("forecast after a sustained doubling should exceed 150, got %v", f)
	}
}

func TestForecastKClamped(t *testing.T) {
	h := MustNewHolt(0.5, 0.3)
	h.Observe(10)
	h.Observe(20)
	if h.Forecast(0) != h.Forecast(1) || h.Forecast(-3) != h.Forecast(1) {
		t.Error("k < 1 should clamp to 1")
	}
}

func TestReset(t *testing.T) {
	h := MustNewHolt(0.5, 0.3)
	h.Observe(10)
	h.Observe(20)
	h.Reset()
	if h.N() != 0 || h.Level() != 0 || h.Trend() != 0 || h.Ready() {
		t.Error("Reset should clear all state")
	}
	h.Observe(7)
	if h.Level() != 7 {
		t.Error("estimator should re-initialize after Reset")
	}
}

// Property: for any bounded positive series, forecasts stay finite and
// the one-step forecast after many constant observations converges to
// the constant.
func TestForecastStabilityProperty(t *testing.T) {
	f := func(vals []uint16, tail uint16) bool {
		h := MustNewHolt(0.5, 0.3)
		for _, v := range vals {
			h.Observe(float64(v%1000) + 1)
		}
		c := float64(tail%1000) + 1
		for i := 0; i < 60; i++ {
			h.Observe(c)
		}
		got := h.Forecast(1)
		return !math.IsNaN(got) && !math.IsInf(got, 0) && math.Abs(got-c) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
