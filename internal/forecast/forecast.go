// Package forecast implements Holt's double exponential smoothing, the
// estimation model Redoop's Execution Profiler uses to predict the
// execution time of future query recurrences (paper §3.3, Equations
// 1–3; Chatfield, "The Holt-Winters forecasting procedure").
//
// After observing execution time X_i of the i-th recurrence the profiler
// updates a local level L_i and trend T_i:
//
//	L_i = α·X_i + (1-α)·(L_{i-1} + T_{i-1})
//	T_i = β·(L_i - L_{i-1}) + (1-β)·T_{i-1}
//
// and forecasts the (i+k)-th recurrence as X̂_{i+k} = L_i + k·T_i.
package forecast

import (
	"fmt"
	"math"
)

// Holt is a double-exponential-smoothing estimator. The zero value is
// not usable; construct with NewHolt.
type Holt struct {
	alpha, beta float64
	level       float64
	trend       float64
	n           int // observations seen
}

// NewHolt returns an estimator with the given smoothing parameters.
// Both must lie in (0, 1]; the paper selects them by fitting historical
// data, and Redoop's profiler defaults to α=0.5, β=0.3.
func NewHolt(alpha, beta float64) (*Holt, error) {
	if !(alpha > 0 && alpha <= 1) || math.IsNaN(alpha) {
		return nil, fmt.Errorf("forecast: alpha must be in (0,1], got %v", alpha)
	}
	if !(beta > 0 && beta <= 1) || math.IsNaN(beta) {
		return nil, fmt.Errorf("forecast: beta must be in (0,1], got %v", beta)
	}
	return &Holt{alpha: alpha, beta: beta}, nil
}

// MustNewHolt is NewHolt that panics on invalid parameters; intended for
// package-level defaults with constant arguments.
func MustNewHolt(alpha, beta float64) *Holt {
	h, err := NewHolt(alpha, beta)
	if err != nil {
		panic(err)
	}
	return h
}

// N returns the number of observations absorbed so far.
func (h *Holt) N() int { return h.n }

// Level returns the current smoothed level L_i.
func (h *Holt) Level() float64 { return h.level }

// Trend returns the current smoothed trend T_i.
func (h *Holt) Trend() float64 { return h.trend }

// Observe absorbs the execution time (or any series value) of the next
// recurrence. The first observation initializes the level; the second
// initializes the trend; thereafter Equations 1 and 2 apply.
func (h *Holt) Observe(x float64) {
	switch h.n {
	case 0:
		h.level = x
	case 1:
		h.trend = x - h.level
		h.level = x
	default:
		prevLevel := h.level
		h.level = h.alpha*x + (1-h.alpha)*(h.level+h.trend)
		h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	}
	h.n++
}

// Forecast returns X̂_{i+k} = L_i + k·T_i, the k-step-ahead prediction
// (Equation 3). k must be at least 1. Before any observation the
// forecast is zero; after a single observation it is the level (no trend
// information yet).
func (h *Holt) Forecast(k int) float64 {
	if k < 1 {
		k = 1
	}
	if h.n == 0 {
		return 0
	}
	return h.level + float64(k)*h.trend
}

// Ready reports whether the estimator has seen enough observations (two)
// for its trend term to be meaningful. Redoop does not switch execution
// modes off an unprimed estimator.
func (h *Holt) Ready() bool { return h.n >= 2 }

// Reset clears all state, keeping the smoothing parameters. The profiler
// resets the estimator when the partition plan changes scale, because
// execution times under the old plan no longer predict the new one.
func (h *Holt) Reset() {
	h.level, h.trend, h.n = 0, 0, 0
}
