// Package health is the recurring-query SLO monitor: the closed-loop
// judgment layer over the raw telemetry of internal/obs. Redoop's
// contract is that recurrence i of Q(win, slide) finishes before the
// next slide boundary; this package measures that contract per query
// and per recurrence:
//
//   - Deadline headroom — slide minus the realized response time. A
//     recurrence whose response exceeds its slide has missed its
//     deadline: the next window was already due when this one's output
//     appeared.
//   - Window lag — a watermark-style measure of how far ingestion has
//     run ahead of processing: the virtual-clock distance between the
//     newest packed pane and the newest pane the last completed
//     recurrence actually covered. A growing lag means the query is
//     falling behind its input even if individual recurrences still
//     look fast.
//   - Miss streaks — consecutive deadline misses, thresholded into
//     OK / AT_RISK / MISSING_DEADLINES.
//   - Forecast anomalies — the Execution Profiler's Holt model (§3.3)
//     predicts each recurrence's duration; the monitor keeps an EWMA of
//     the absolute forecast residuals and flags recurrences whose
//     residual exceeds K times that scale. When an anomaly fires and
//     the engine's adaptive re-planner did NOT react, the monitor
//     records an "adaptivity miss" — the signal that the §3.3 loop
//     failed to respond to a regime change it should have seen.
//
// The monitor emits flight-recorder events (health.status,
// health.anomaly, health.adaptivity_miss) and obs metrics
// (redoop_health_status, redoop_deadline_headroom_seconds,
// redoop_window_lag_units, redoop_deadline_misses_total,
// redoop_health_anomalies_total, redoop_adaptivity_misses_total), so
// the judgments flow through the same introspection surfaces as the
// raw telemetry: /debug/health, /metrics, redoopctl health, and the
// bench trajectory files.
//
// Like the rest of the obs stack, a nil *Monitor or *Tracker is a
// valid no-op, so the engine instruments unconditionally.
package health

import (
	"fmt"
	"io"
	"math"
	"sync"

	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/simtime"
)

// Status classifies a query's deadline health.
type Status string

const (
	// StatusOK: the last recurrence met its deadline with comfortable
	// headroom.
	StatusOK Status = "OK"
	// StatusAtRisk: the last recurrence missed its deadline, or met it
	// with less than the configured headroom fraction to spare.
	StatusAtRisk Status = "AT_RISK"
	// StatusMissingDeadlines: the query has missed MissStreak or more
	// consecutive deadlines — it is persistently behind its slide.
	StatusMissingDeadlines Status = "MISSING_DEADLINES"
)

// Level orders statuses by severity (OK=0, AT_RISK=1,
// MISSING_DEADLINES=2) — the value of the redoop_health_status gauge.
func (s Status) Level() int {
	switch s {
	case StatusAtRisk:
		return 1
	case StatusMissingDeadlines:
		return 2
	default:
		return 0
	}
}

// Config tunes the monitor's thresholds. The zero Config is filled
// with defaults by NewMonitor.
type Config struct {
	// AnomalyK flags a recurrence when its absolute Holt residual
	// exceeds AnomalyK times the residual EWMA. Default 3.
	AnomalyK float64
	// ResidualAlpha is the EWMA smoothing factor of the absolute
	// residual scale, in (0, 1]. Default 0.3.
	ResidualAlpha float64
	// MinResidualSamples is how many residuals must be absorbed before
	// anomaly detection arms — a cold-start guard so the first noisy
	// forecasts don't fire alerts. Default 3.
	MinResidualSamples int
	// AtRiskFraction: headroom below AtRiskFraction·slide marks the
	// query AT_RISK even when the deadline was met. Default 0.2.
	AtRiskFraction float64
	// MissStreak is how many consecutive deadline misses escalate
	// AT_RISK to MISSING_DEADLINES. Default 3.
	MissStreak int
	// DeadlineOverride, when positive, replaces every registered
	// query's natural deadline (its slide). Simulated runs finish
	// recurrences in virtual milliseconds against multi-minute slides,
	// so operators tighten the SLO to exercise the miss machinery.
	DeadlineOverride simtime.Duration
	// CacheByteSecondBudget flags a query AT_RISK when its cumulative
	// cache occupancy (byte·seconds, from the cost ledger) exceeds this
	// value. Applies even to deadline-less queries. 0 disables.
	CacheByteSecondBudget float64
}

// DefaultConfig returns the default thresholds.
func DefaultConfig() Config {
	return Config{
		AnomalyK:           3,
		ResidualAlpha:      0.3,
		MinResidualSamples: 3,
		AtRiskFraction:     0.2,
		MissStreak:         3,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.AnomalyK <= 0 {
		c.AnomalyK = d.AnomalyK
	}
	if c.ResidualAlpha <= 0 || c.ResidualAlpha > 1 {
		c.ResidualAlpha = d.ResidualAlpha
	}
	if c.MinResidualSamples <= 0 {
		c.MinResidualSamples = d.MinResidualSamples
	}
	if c.AtRiskFraction <= 0 {
		c.AtRiskFraction = d.AtRiskFraction
	}
	if c.MissStreak <= 0 {
		c.MissStreak = d.MissStreak
	}
	return c
}

// Sample is what the engine reports at each recurrence boundary, after
// the adaptive re-planning decision for the next recurrence has been
// made (so ReplanFired is known).
type Sample struct {
	Recurrence  int
	TriggerAt   simtime.Time
	CompletedAt simtime.Time
	// Response is the recurrence's realized response time.
	Response simtime.Duration
	// Forecast is the Holt forecast that was made for THIS recurrence
	// at the end of the previous one; HaveForecast is false before the
	// profiler warms up (no residual is recorded then).
	Forecast     simtime.Duration
	HaveForecast bool
	// ReplanFired reports whether the engine's adaptive re-planner
	// changed the partition plan at this boundary.
	ReplanFired bool
	// NewestPackedUnit is the exclusive upper unit bound of the newest
	// pane any source has packed data for; CoveredUnit is the exclusive
	// upper bound this recurrence's window covered. Their difference is
	// the window lag.
	NewestPackedUnit int64
	CoveredUnit      int64
	// CacheByteSeconds is the query's cumulative cache occupancy from
	// the cost ledger (0 when no ledger is attached). Compared against
	// Config.CacheByteSecondBudget.
	CacheByteSeconds float64
}

// QueryStatus is one query's health snapshot, JSON-shaped for
// /debug/health and redoopctl health.
type QueryStatus struct {
	Query       string `json:"query"`
	Status      Status `json:"status"`
	Recurrences int    `json:"recurrences"`
	// LastRecurrence is the index of the newest observed recurrence
	// (-1 before any).
	LastRecurrence int `json:"lastRecurrence"`
	// DeadlineNS is the per-recurrence deadline (the slide); 0 means
	// the query has no deadline (count-based windows).
	DeadlineNS     int64 `json:"deadlineNS"`
	LastResponseNS int64 `json:"lastResponseNS"`
	// HeadroomNS is deadline − last response (negative = missed);
	// MinHeadroomNS is the worst headroom ever observed.
	HeadroomNS    int64 `json:"headroomNS"`
	MinHeadroomNS int64 `json:"minHeadroomNS"`
	// WindowLagUnits is the watermark distance between packed and
	// covered data, in window units (virtual nanoseconds for
	// time-based windows).
	WindowLagUnits   int64 `json:"windowLagUnits"`
	MissStreak       int   `json:"missStreak"`
	MaxMissStreak    int   `json:"maxMissStreak"`
	DeadlineMisses   int   `json:"deadlineMisses"`
	Anomalies        int   `json:"anomalies"`
	AdaptivityMisses int   `json:"adaptivityMisses"`
	// ResidualEWMANS is the current EWMA of absolute Holt residuals;
	// LastForecastNS is the newest forecast observed (-1 before the
	// profiler warms up).
	ResidualEWMANS int64 `json:"residualEwmaNS"`
	LastForecastNS int64 `json:"lastForecastNS"`
	// CacheByteSeconds is the query's cumulative cache occupancy;
	// OverCacheBudget reports whether it exceeds the configured
	// byte·second budget (always false when the budget is disabled).
	CacheByteSeconds float64 `json:"cacheByteSeconds"`
	OverCacheBudget  bool    `json:"overCacheBudget"`
}

// Monitor tracks the health of any number of recurring queries. One
// monitor may be shared by several engines (like a Controller); its
// trackers are registered per engine.
type Monitor struct {
	mu       sync.Mutex
	cfg      Config
	obs      *obs.Observer
	trackers []*Tracker
	names    map[string]int // base-name registrations, for suffixing
}

// NewMonitor returns a monitor with the given thresholds (zero fields
// take defaults).
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), names: make(map[string]int)}
}

// SetObserver attaches the observability layer the monitor emits its
// events and metrics through. Setting nil detaches it. Safe to call
// concurrently with Observe.
func (m *Monitor) SetObserver(o *obs.Observer) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.obs = o
	m.mu.Unlock()
}

// Observer returns the currently attached observer.
func (m *Monitor) Observer() *obs.Observer {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.obs
}

// Config returns the monitor's effective thresholds.
func (m *Monitor) Config() Config {
	if m == nil {
		return DefaultConfig()
	}
	return m.cfg
}

// Register adds a query to the monitor and returns its tracker.
// deadline is the per-recurrence SLO — the slide for time-based
// windows; pass 0 for queries with no deadline (count-based windows).
// Registering a name twice yields distinct trackers, the second
// suffixed "#2" and so on, so engines re-using a query name (e.g.
// figure panels at different overlaps) stay separately tracked.
func (m *Monitor) Register(name string, deadline simtime.Duration) *Tracker {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.names[name]++
	if n := m.names[name]; n > 1 {
		name = fmt.Sprintf("%s#%d", name, n)
	}
	if m.cfg.DeadlineOverride > 0 {
		deadline = m.cfg.DeadlineOverride
	}
	t := &Tracker{
		m:              m,
		name:           name,
		deadline:       deadline,
		lastRec:        -1,
		status:         StatusOK,
		lastForecastNS: -1,
	}
	m.trackers = append(m.trackers, t)
	return t
}

// Snapshot returns every registered query's status, in registration
// order.
func (m *Monitor) Snapshot() []QueryStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueryStatus, 0, len(m.trackers))
	for _, t := range m.trackers {
		out = append(out, t.statusLocked())
	}
	return out
}

// Status returns the named query's snapshot.
func (m *Monitor) Status(query string) (QueryStatus, bool) {
	if m == nil {
		return QueryStatus{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.trackers {
		if t.name == query {
			return t.statusLocked(), true
		}
	}
	return QueryStatus{}, false
}

// WriteText renders the snapshot as a fixed-width status table.
func (m *Monitor) WriteText(w io.Writer) error {
	statuses := m.Snapshot()
	if _, err := fmt.Fprintf(w, "%-14s %-18s %5s %12s %12s %12s %10s %6s %6s %5s %6s\n",
		"query", "status", "recs", "deadline", "response", "headroom", "lag", "streak", "misses", "anom", "a-miss"); err != nil {
		return err
	}
	for _, s := range statuses {
		deadline, headroom := "-", "-"
		if s.DeadlineNS > 0 {
			deadline = fmtNS(s.DeadlineNS)
			headroom = fmtNS(s.HeadroomNS)
		}
		if _, err := fmt.Fprintf(w, "%-14s %-18s %5d %12s %12s %12s %10s %6d %6d %5d %6d\n",
			s.Query, s.Status, s.Recurrences, deadline, fmtNS(s.LastResponseNS), headroom,
			fmtNS(s.WindowLagUnits), s.MissStreak, s.DeadlineMisses, s.Anomalies, s.AdaptivityMisses); err != nil {
			return err
		}
	}
	return nil
}

// Tracker is one query's health state. Observe is driven by the
// engine at each recurrence boundary; all state is guarded by the
// owning monitor's lock so Snapshot sees consistent rows.
type Tracker struct {
	m        *Monitor
	name     string
	deadline simtime.Duration

	recurrences    int
	lastRec        int
	lastResponse   simtime.Duration
	headroom       simtime.Duration
	minHeadroom    simtime.Duration
	haveHeadroom   bool
	lag            int64
	streak         int
	maxStreak      int
	misses         int
	anomalies      int
	adaptMisses    int
	resEWMA        float64 // absolute residual scale, ns
	resSamples     int
	status         Status
	lastForecastNS int64
	cacheByteSec   float64
	overBudget     bool
}

// Name returns the tracker's (possibly suffixed) query name.
func (t *Tracker) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Deadline returns the tracker's per-recurrence deadline (0 = none).
func (t *Tracker) Deadline() simtime.Duration {
	if t == nil {
		return 0
	}
	return t.deadline
}

// Status returns the query's current snapshot.
func (t *Tracker) Status() QueryStatus {
	if t == nil {
		return QueryStatus{}
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.statusLocked()
}

func (t *Tracker) statusLocked() QueryStatus {
	return QueryStatus{
		Query:            t.name,
		Status:           t.status,
		Recurrences:      t.recurrences,
		LastRecurrence:   t.lastRec,
		DeadlineNS:       int64(t.deadline),
		LastResponseNS:   int64(t.lastResponse),
		HeadroomNS:       int64(t.headroom),
		MinHeadroomNS:    int64(t.minHeadroom),
		WindowLagUnits:   t.lag,
		MissStreak:       t.streak,
		MaxMissStreak:    t.maxStreak,
		DeadlineMisses:   t.misses,
		Anomalies:        t.anomalies,
		AdaptivityMisses: t.adaptMisses,
		ResidualEWMANS:   int64(t.resEWMA),
		LastForecastNS:   t.lastForecastNS,
		CacheByteSeconds: t.cacheByteSec,
		OverCacheBudget:  t.overBudget,
	}
}

// Observe absorbs one completed recurrence, updates the query's
// health, and emits the resulting events and metrics. Nil-safe.
func (t *Tracker) Observe(s Sample) {
	if t == nil {
		return
	}
	m := t.m
	m.mu.Lock()
	cfg := m.cfg
	o := m.obs

	t.recurrences++
	t.lastRec = s.Recurrence
	t.lastResponse = s.Response
	lag := s.NewestPackedUnit - s.CoveredUnit
	if lag < 0 {
		lag = 0
	}
	t.lag = lag

	missed := false
	if t.deadline > 0 {
		t.headroom = t.deadline - s.Response
		if !t.haveHeadroom || t.headroom < t.minHeadroom {
			t.minHeadroom = t.headroom
			t.haveHeadroom = true
		}
		if s.Response > t.deadline {
			missed = true
			t.streak++
			t.misses++
			if t.streak > t.maxStreak {
				t.maxStreak = t.streak
			}
		} else {
			t.streak = 0
		}
	}

	// Anomaly detection on the Holt residual. The current residual is
	// judged against the EWMA of PRIOR residuals — a regime change is a
	// deviation from established forecast quality, so the sample that
	// trips the detector must not have smoothed itself in first.
	anomaly := false
	var residualNS float64
	var ewmaBefore float64
	if s.HaveForecast {
		residualNS = math.Abs(float64(s.Response - s.Forecast))
		ewmaBefore = t.resEWMA
		if t.resSamples >= cfg.MinResidualSamples && residualNS > cfg.AnomalyK*ewmaBefore {
			anomaly = true
			t.anomalies++
		}
		if t.resSamples == 0 {
			t.resEWMA = residualNS
		} else {
			t.resEWMA = cfg.ResidualAlpha*residualNS + (1-cfg.ResidualAlpha)*t.resEWMA
		}
		t.resSamples++
		t.lastForecastNS = int64(s.Forecast)
	}
	adaptMiss := anomaly && !s.ReplanFired
	if adaptMiss {
		t.adaptMisses++
	}

	// Cache-budget check is deadline-independent: a count-based query
	// with no SLO can still hog the caches.
	t.cacheByteSec = s.CacheByteSeconds
	t.overBudget = cfg.CacheByteSecondBudget > 0 && s.CacheByteSeconds > cfg.CacheByteSecondBudget

	prev := t.status
	next := StatusOK
	if t.deadline > 0 {
		switch {
		case t.streak >= cfg.MissStreak:
			next = StatusMissingDeadlines
		case missed || float64(t.headroom) < cfg.AtRiskFraction*float64(t.deadline):
			next = StatusAtRisk
		}
	}
	if t.overBudget && next == StatusOK {
		next = StatusAtRisk
	}
	t.status = next
	headroom := t.headroom
	streak := t.streak
	m.mu.Unlock()

	// Metrics and events are emitted outside the monitor lock; the
	// captured values keep the emission consistent with the transition.
	name := t.name
	o.Gauge("redoop_health_status", obs.L("query", name)).Set(float64(next.Level()))
	o.Gauge("redoop_window_lag_units", obs.L("query", name)).Set(float64(lag))
	o.Gauge("redoop_miss_streak", obs.L("query", name)).Set(float64(streak))
	if t.deadline > 0 {
		o.Gauge("redoop_deadline_headroom_seconds", obs.L("query", name)).Set(headroom.Seconds())
	}
	if missed {
		o.Counter("redoop_deadline_misses_total", obs.L("query", name)).Inc()
	}
	if anomaly {
		o.Counter("redoop_health_anomalies_total", obs.L("query", name)).Inc()
		o.Emit(s.CompletedAt, eventlog.HealthAnomaly, name, eventlog.HealthAnomalyData{
			Recurrence:  s.Recurrence,
			ForecastNS:  int64(s.Forecast),
			ActualNS:    int64(s.Response),
			ResidualNS:  int64(residualNS),
			EWMANS:      int64(ewmaBefore),
			K:           cfg.AnomalyK,
			ReplanFired: s.ReplanFired,
		})
	}
	if adaptMiss {
		o.Counter("redoop_adaptivity_misses_total", obs.L("query", name)).Inc()
		o.Emit(s.CompletedAt, eventlog.AdaptivityMiss, name, eventlog.AdaptivityMissData{
			Recurrence: s.Recurrence,
			ForecastNS: int64(s.Forecast),
			ActualNS:   int64(s.Response),
			ResidualNS: int64(residualNS),
		})
	}
	if next != prev {
		o.Emit(s.CompletedAt, eventlog.HealthStatus, name, eventlog.HealthStatusData{
			Recurrence: s.Recurrence,
			From:       string(prev),
			To:         string(next),
			MissStreak: streak,
			HeadroomNS: int64(headroom),
			LagUnits:   lag,
		})
	}
}

// fmtNS renders a nanosecond quantity human-readably (mirrors the
// explain package's formatting so reports read alike).
func fmtNS(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%s%.2fs", neg, float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%s%.2fms", neg, float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%s%.1fµs", neg, float64(ns)/1e3)
	default:
		return fmt.Sprintf("%s%dns", neg, ns)
	}
}
