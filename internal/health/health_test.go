package health

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/simtime"
)

func sampleAt(r int, response, forecast simtime.Duration, haveForecast bool) Sample {
	return Sample{
		Recurrence:   r,
		TriggerAt:    simtime.Time(r) * 100,
		CompletedAt:  simtime.Time(r)*100 + simtime.Time(response),
		Response:     response,
		Forecast:     forecast,
		HaveForecast: haveForecast,
	}
}

func TestStatusTransitions(t *testing.T) {
	o := obs.New()
	m := NewMonitor(Config{MissStreak: 2, AtRiskFraction: 0.2})
	m.SetObserver(o)
	trk := m.Register("q1", 100*simtime.Millisecond)

	// Comfortable headroom: OK.
	trk.Observe(sampleAt(0, 50*simtime.Millisecond, 0, false))
	if got := trk.Status(); got.Status != StatusOK {
		t.Fatalf("status = %v, want OK", got.Status)
	}

	// Met the deadline but inside the at-risk fraction (headroom 10ms
	// < 0.2·100ms): AT_RISK without a miss.
	trk.Observe(sampleAt(1, 90*simtime.Millisecond, 0, false))
	st := trk.Status()
	if st.Status != StatusAtRisk {
		t.Fatalf("status = %v, want AT_RISK", st.Status)
	}
	if st.DeadlineMisses != 0 {
		t.Fatalf("deadline misses = %d, want 0", st.DeadlineMisses)
	}

	// First miss: still AT_RISK (streak 1 < MissStreak 2).
	trk.Observe(sampleAt(2, 150*simtime.Millisecond, 0, false))
	st = trk.Status()
	if st.Status != StatusAtRisk || st.MissStreak != 1 || st.DeadlineMisses != 1 {
		t.Fatalf("after one miss: %+v", st)
	}
	if st.HeadroomNS != int64(-50*simtime.Millisecond) {
		t.Fatalf("headroom = %d, want -50ms", st.HeadroomNS)
	}

	// Second consecutive miss: MISSING_DEADLINES.
	trk.Observe(sampleAt(3, 180*simtime.Millisecond, 0, false))
	st = trk.Status()
	if st.Status != StatusMissingDeadlines || st.MissStreak != 2 {
		t.Fatalf("after two misses: %+v", st)
	}
	if st.MinHeadroomNS != int64(-80*simtime.Millisecond) {
		t.Fatalf("min headroom = %d, want -80ms", st.MinHeadroomNS)
	}

	// Recovery resets the streak and the status.
	trk.Observe(sampleAt(4, 40*simtime.Millisecond, 0, false))
	st = trk.Status()
	if st.Status != StatusOK || st.MissStreak != 0 || st.MaxMissStreak != 2 {
		t.Fatalf("after recovery: %+v", st)
	}

	// Status transitions were recorded as events: OK->AT_RISK,
	// AT_RISK->MISSING_DEADLINES, MISSING_DEADLINES->OK.
	evs := o.Events.Select(eventlog.Filter{Type: eventlog.HealthStatus})
	if len(evs) != 3 {
		t.Fatalf("health.status events = %d, want 3", len(evs))
	}
	last := evs[2].Data.(eventlog.HealthStatusData)
	if last.From != string(StatusMissingDeadlines) || last.To != string(StatusOK) {
		t.Fatalf("last transition = %+v", last)
	}

	// Counters and gauges reflect the history.
	if v := o.Metrics.Counter("redoop_deadline_misses_total", obs.L("query", "q1")).Value(); v != 2 {
		t.Fatalf("misses counter = %v, want 2", v)
	}
	if v := o.Metrics.Gauge("redoop_health_status", obs.L("query", "q1")).Value(); v != 0 {
		t.Fatalf("status gauge = %v, want 0", v)
	}
}

// TestCacheByteSecondBudget pins the cost-governance hook: a query
// whose cumulative cache occupancy exceeds the configured byte·second
// budget is escalated from OK to AT_RISK, the escalation applies to
// deadline-less queries too, and it never downgrades a status the
// deadline machinery already made worse.
func TestCacheByteSecondBudget(t *testing.T) {
	m := NewMonitor(Config{CacheByteSecondBudget: 1000})
	trk := m.Register("q1", 100*simtime.Millisecond)

	s := sampleAt(0, 50*simtime.Millisecond, 0, false)
	s.CacheByteSeconds = 999
	trk.Observe(s)
	if st := trk.Status(); st.Status != StatusOK || st.OverCacheBudget {
		t.Fatalf("under budget: %+v", st)
	}

	s = sampleAt(1, 50*simtime.Millisecond, 0, false)
	s.CacheByteSeconds = 1001
	trk.Observe(s)
	st := trk.Status()
	if st.Status != StatusAtRisk || !st.OverCacheBudget {
		t.Fatalf("over budget: %+v", st)
	}
	if st.CacheByteSeconds != 1001 {
		t.Fatalf("byte·seconds = %v, want 1001", st.CacheByteSeconds)
	}

	// Over budget AND missing deadlines: the worse status wins.
	miss := Config{CacheByteSecondBudget: 1000, MissStreak: 1}
	m2 := NewMonitor(miss)
	trk2 := m2.Register("q2", 100*simtime.Millisecond)
	s = sampleAt(0, 150*simtime.Millisecond, 0, false)
	s.CacheByteSeconds = 2000
	trk2.Observe(s)
	if st := trk2.Status(); st.Status != StatusMissingDeadlines || !st.OverCacheBudget {
		t.Fatalf("budget must not mask missed deadlines: %+v", st)
	}

	// Deadline-less queries still get the budget escalation — cost
	// governance is independent of SLO deadlines.
	m3 := NewMonitor(Config{CacheByteSecondBudget: 1000})
	trk3 := m3.Register("q3", 0)
	s = sampleAt(0, 50*simtime.Millisecond, 0, false)
	s.CacheByteSeconds = 5000
	trk3.Observe(s)
	if st := trk3.Status(); st.Status != StatusAtRisk || !st.OverCacheBudget {
		t.Fatalf("deadline-less over budget: %+v", st)
	}

	// Zero budget disables the check entirely.
	m4 := NewMonitor(Config{})
	trk4 := m4.Register("q4", 100*simtime.Millisecond)
	s = sampleAt(0, 50*simtime.Millisecond, 0, false)
	s.CacheByteSeconds = 1e12
	trk4.Observe(s)
	if st := trk4.Status(); st.Status != StatusOK || st.OverCacheBudget {
		t.Fatalf("disabled budget still fired: %+v", st)
	}
}

func TestAnomalyDetectionAndAdaptivityMiss(t *testing.T) {
	o := obs.New()
	m := NewMonitor(Config{AnomalyK: 3, ResidualAlpha: 0.5, MinResidualSamples: 2})
	m.SetObserver(o)
	trk := m.Register("q1", simtime.Second)

	// Cold start: no forecast, no residual history — never anomalous.
	trk.Observe(sampleAt(0, 100*simtime.Millisecond, 0, false))
	if st := trk.Status(); st.Anomalies != 0 || st.ResidualEWMANS != 0 || st.LastForecastNS != -1 {
		t.Fatalf("cold start: %+v", st)
	}

	// First residual (10ms) seeds the EWMA exactly — the single-sample
	// case — and cannot itself be an anomaly (samples < min).
	trk.Observe(sampleAt(1, 110*simtime.Millisecond, 100*simtime.Millisecond, true))
	st := trk.Status()
	if st.Anomalies != 0 {
		t.Fatalf("anomaly on first residual: %+v", st)
	}
	if st.ResidualEWMANS != int64(10*simtime.Millisecond) {
		t.Fatalf("single-sample EWMA = %d, want 10ms", st.ResidualEWMANS)
	}

	// Second residual (10ms): EWMA stays 10ms; still below min samples.
	trk.Observe(sampleAt(2, 110*simtime.Millisecond, 100*simtime.Millisecond, true))
	if st := trk.Status(); st.Anomalies != 0 || st.ResidualEWMANS != int64(10*simtime.Millisecond) {
		t.Fatalf("second residual: %+v", st)
	}

	// Detector armed (2 samples ≥ min). A 100ms residual > 3·10ms EWMA
	// fires; no re-plan happened, so it is also an adaptivity miss.
	trk.Observe(sampleAt(3, 200*simtime.Millisecond, 100*simtime.Millisecond, true))
	st = trk.Status()
	if st.Anomalies != 1 || st.AdaptivityMisses != 1 {
		t.Fatalf("anomaly not flagged: %+v", st)
	}
	anoms := o.Events.Select(eventlog.Filter{Type: eventlog.HealthAnomaly})
	if len(anoms) != 1 {
		t.Fatalf("anomaly events = %d, want 1", len(anoms))
	}
	ad := anoms[0].Data.(eventlog.HealthAnomalyData)
	if ad.ResidualNS != int64(100*simtime.Millisecond) || ad.EWMANS != int64(10*simtime.Millisecond) || ad.ReplanFired {
		t.Fatalf("anomaly payload = %+v", ad)
	}
	if n := len(o.Events.Select(eventlog.Filter{Type: eventlog.AdaptivityMiss})); n != 1 {
		t.Fatalf("adaptivity-miss events = %d, want 1", n)
	}

	// Another deviation (the EWMA absorbed the first anomaly, so the
	// bar is now 3·55ms), but the re-planner reacted: an anomaly, not
	// an adaptivity miss.
	s := sampleAt(4, 300*simtime.Millisecond, 100*simtime.Millisecond, true)
	s.ReplanFired = true
	trk.Observe(s)
	st = trk.Status()
	if st.Anomalies != 2 || st.AdaptivityMisses != 1 {
		t.Fatalf("replan-covered anomaly: %+v", st)
	}
	if v := o.Metrics.Counter("redoop_health_anomalies_total", obs.L("query", "q1")).Value(); v != 2 {
		t.Fatalf("anomaly counter = %v, want 2", v)
	}
	if v := o.Metrics.Counter("redoop_adaptivity_misses_total", obs.L("query", "q1")).Value(); v != 1 {
		t.Fatalf("adaptivity-miss counter = %v, want 1", v)
	}
}

func TestZeroDurationRecurrences(t *testing.T) {
	m := NewMonitor(Config{})
	trk := m.Register("q1", simtime.Second)
	// A zero-duration recurrence has full headroom and a zero residual
	// against a zero forecast — never a miss, never an anomaly.
	for r := 0; r < 5; r++ {
		trk.Observe(sampleAt(r, 0, 0, r > 0))
	}
	st := trk.Status()
	if st.Status != StatusOK || st.DeadlineMisses != 0 || st.Anomalies != 0 {
		t.Fatalf("zero-duration run: %+v", st)
	}
	if st.HeadroomNS != int64(simtime.Second) || st.MinHeadroomNS != int64(simtime.Second) {
		t.Fatalf("headroom = %d/%d, want full", st.HeadroomNS, st.MinHeadroomNS)
	}
}

func TestNoDeadlineQueries(t *testing.T) {
	m := NewMonitor(Config{})
	trk := m.Register("count-based", 0)
	// Arbitrary response times: no deadline means no misses and a
	// permanent OK status; anomaly detection still runs.
	trk.Observe(sampleAt(0, 5*simtime.Second, 0, false))
	trk.Observe(sampleAt(1, 9*simtime.Second, simtime.Second, true))
	st := trk.Status()
	if st.Status != StatusOK || st.DeadlineMisses != 0 || st.HeadroomNS != 0 {
		t.Fatalf("no-deadline query: %+v", st)
	}
	if st.ResidualEWMANS != int64(8*simtime.Second) {
		t.Fatalf("residual EWMA = %d, want 8s", st.ResidualEWMANS)
	}
}

func TestWindowLagWatermark(t *testing.T) {
	o := obs.New()
	m := NewMonitor(Config{})
	m.SetObserver(o)
	trk := m.Register("q1", simtime.Second)

	s := sampleAt(0, 10*simtime.Millisecond, 0, false)
	s.NewestPackedUnit = 500
	s.CoveredUnit = 300
	trk.Observe(s)
	if st := trk.Status(); st.WindowLagUnits != 200 {
		t.Fatalf("lag = %d, want 200", st.WindowLagUnits)
	}
	if v := o.Metrics.Gauge("redoop_window_lag_units", obs.L("query", "q1")).Value(); v != 200 {
		t.Fatalf("lag gauge = %v, want 200", v)
	}

	// Covered beyond packed (sources drained): lag clamps to zero.
	s = sampleAt(1, 10*simtime.Millisecond, 0, false)
	s.NewestPackedUnit = 500
	s.CoveredUnit = 600
	trk.Observe(s)
	if st := trk.Status(); st.WindowLagUnits != 0 {
		t.Fatalf("drained lag = %d, want 0", st.WindowLagUnits)
	}
}

func TestRegisterDuplicateNames(t *testing.T) {
	m := NewMonitor(Config{})
	a := m.Register("q1", simtime.Second)
	b := m.Register("q1", 2*simtime.Second)
	if a.Name() != "q1" || b.Name() != "q1#2" {
		t.Fatalf("names = %q, %q", a.Name(), b.Name())
	}
	a.Observe(sampleAt(0, simtime.Millisecond, 0, false))
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Recurrences != 1 || snap[1].Recurrences != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if _, ok := m.Status("q1#2"); !ok {
		t.Fatalf("suffixed query not addressable")
	}
}

func TestNilSafety(t *testing.T) {
	var m *Monitor
	var trk *Tracker
	m.SetObserver(nil)
	if m.Snapshot() != nil {
		t.Fatalf("nil monitor snapshot not nil")
	}
	if m.Register("q", 0) != nil {
		t.Fatalf("nil monitor register not nil")
	}
	trk.Observe(Sample{})
	if trk.Name() != "" || trk.Deadline() != 0 {
		t.Fatalf("nil tracker accessors")
	}

	// A monitor without an observer still tracks state.
	m2 := NewMonitor(Config{})
	trk2 := m2.Register("q", simtime.Second)
	trk2.Observe(sampleAt(0, 2*simtime.Second, 0, false))
	if st := trk2.Status(); st.DeadlineMisses != 1 {
		t.Fatalf("observer-less tracking: %+v", st)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	m := NewMonitor(Config{})
	trk := m.Register("q1", simtime.Second)
	trk.Observe(sampleAt(0, 100*simtime.Millisecond, 0, false))
	data, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"query"`, `"status"`, `"headroomNS"`, `"windowLagUnits"`, `"missStreak"`, `"anomalies"`, `"adaptivityMisses"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("snapshot JSON missing %s: %s", key, data)
		}
	}
}

func TestWriteText(t *testing.T) {
	m := NewMonitor(Config{MissStreak: 1})
	trk := m.Register("q1", 100*simtime.Millisecond)
	m.Register("count-q", 0)
	trk.Observe(sampleAt(0, 150*simtime.Millisecond, 0, false))
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "MISSING_DEADLINES") {
		t.Fatalf("report missing status:\n%s", out)
	}
	if !strings.Contains(out, "count-q") {
		t.Fatalf("report missing deadline-less query:\n%s", out)
	}
}

func TestConcurrentObserve(t *testing.T) {
	o := obs.New()
	m := NewMonitor(Config{})
	m.SetObserver(o)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		trk := m.Register("q", simtime.Second)
		wg.Add(1)
		go func(trk *Tracker) {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				trk.Observe(sampleAt(r, simtime.Duration(r)*simtime.Millisecond, simtime.Millisecond, r > 0))
				if r%10 == 0 {
					_ = m.Snapshot()
				}
			}
		}(trk)
	}
	wg.Wait()
	for _, st := range m.Snapshot() {
		if st.Recurrences != 200 {
			t.Fatalf("query %s saw %d recurrences, want 200", st.Query, st.Recurrences)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	m := NewMonitor(Config{})
	cfg := m.Config()
	if cfg.AnomalyK != 3 || cfg.ResidualAlpha != 0.3 || cfg.MinResidualSamples != 3 ||
		cfg.AtRiskFraction != 0.2 || cfg.MissStreak != 3 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// Explicit values survive.
	m2 := NewMonitor(Config{AnomalyK: 5, MissStreak: 1})
	if got := m2.Config(); got.AnomalyK != 5 || got.MissStreak != 1 {
		t.Fatalf("explicit config overridden: %+v", got)
	}
}

func TestDeadlineOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeadlineOverride = 5 * simtime.Millisecond
	m := NewMonitor(cfg)
	tk := m.Register("q", 10*simtime.Minute)
	tk.Observe(Sample{Recurrence: 0, Response: 7 * simtime.Millisecond})
	st := tk.Status()
	if st.DeadlineNS != int64(5*simtime.Millisecond) {
		t.Errorf("deadline = %d, want override %d", st.DeadlineNS, int64(5*simtime.Millisecond))
	}
	if st.DeadlineMisses != 1 {
		t.Errorf("misses = %d, want 1 (7ms > 5ms override)", st.DeadlineMisses)
	}

	// Override also applies to queries with no natural deadline.
	tk2 := m.Register("cb", 0)
	tk2.Observe(Sample{Recurrence: 0, Response: simtime.Millisecond})
	if st2 := tk2.Status(); st2.DeadlineNS != int64(5*simtime.Millisecond) {
		t.Errorf("count-based deadline = %d, want override", st2.DeadlineNS)
	}
}

// TestResidualEWMASingleSample pins down the seeding rule: the first
// residual becomes the EWMA exactly (no smoothing against a zero
// prior), and a single sample never arms the detector when
// MinResidualSamples > 1.
func TestResidualEWMASingleSample(t *testing.T) {
	m := NewMonitor(Config{AnomalyK: 3, ResidualAlpha: 0.3, MinResidualSamples: 2})
	trk := m.Register("q", 0)

	// First forecasted recurrence: residual 40ms seeds the EWMA.
	trk.Observe(sampleAt(0, 100*simtime.Millisecond, 60*simtime.Millisecond, true))
	st := trk.Status()
	if st.ResidualEWMANS != int64(40*simtime.Millisecond) {
		t.Fatalf("EWMA after one sample = %d, want seeded 40ms", st.ResidualEWMANS)
	}
	if st.Anomalies != 0 {
		t.Fatalf("single sample armed the detector: %+v", st)
	}

	// Second sample smooths: 0.3·10ms + 0.7·40ms = 31ms.
	trk.Observe(sampleAt(1, 70*simtime.Millisecond, 60*simtime.Millisecond, true))
	if st := trk.Status(); st.ResidualEWMANS != int64(31*simtime.Millisecond) {
		t.Fatalf("EWMA after two samples = %d, want 31ms", st.ResidualEWMANS)
	}
}

// TestFirstRecurrenceColdStart: with no forecast at all, the monitor
// records timings but neither the residual EWMA nor the anomaly
// counter move, and lastForecastNS stays -1.
func TestFirstRecurrenceColdStart(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	trk := m.Register("q", 50*simtime.Millisecond)
	trk.Observe(sampleAt(0, 10*simtime.Millisecond, 0, false))
	st := trk.Status()
	if st.Recurrences != 1 || st.LastResponseNS != int64(10*simtime.Millisecond) {
		t.Fatalf("cold start status: %+v", st)
	}
	if st.LastForecastNS != -1 {
		t.Fatalf("lastForecastNS = %d, want -1 before any forecast", st.LastForecastNS)
	}
	if st.ResidualEWMANS != 0 || st.Anomalies != 0 {
		t.Fatalf("residual state moved without a forecast: %+v", st)
	}
}
