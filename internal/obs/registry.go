package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds all metric instruments of one run, keyed by metric
// name plus its label set. Instruments are created lazily on first
// use and live for the registry's lifetime. All methods are safe for
// concurrent use; a nil *Registry is a valid no-op registry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// seriesKey is the map key of one (name, labels) series.
func seriesKey(name string, labels []Label) string {
	return name + labelString(labels)
}

// Counter returns the counter for (name, labels), creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{name: name, labels: append([]Label(nil), labels...)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge for (name, labels), creating it on first
// use. Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{name: name, labels: append([]Label(nil), labels...)}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram for (name, labels) with the default
// exponential buckets, creating it on first use. Returns nil (a no-op
// histogram) on a nil registry.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramBuckets(name, nil, labels...)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds
// (ascending; +Inf is implicit). Bounds apply only on first creation
// of the series; nil bounds select DefBuckets.
func (r *Registry) HistogramBuckets(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		h = newHistogram(name, labels, bounds)
		r.hists[key] = h
	}
	return h
}

// snapshot views, sorted by series key for deterministic export.

// Counters returns the registered counters sorted by series key.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series() < out[j].Series() })
	return out
}

// Gauges returns the registered gauges sorted by series key.
func (r *Registry) Gauges() []*Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series() < out[j].Series() })
	return out
}

// Histograms returns the registered histograms sorted by series key.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series() < out[j].Series() })
	return out
}

// Counter is a monotonically increasing metric (task counts, byte
// volumes). Add is lock-free; a nil *Counter is a no-op.
type Counter struct {
	name   string
	labels []Label
	bits   atomic.Uint64 // float64 bits
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Labels returns the series' labels.
func (c *Counter) Labels() []Label { return c.labels }

// Series returns the full series identity, name plus label string.
func (c *Counter) Series() string { return seriesKey(c.name, c.labels) }

// Add increases the counter by v (negative deltas are ignored to keep
// the counter monotone).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current value (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a point-in-time metric (current cache bytes, current
// sub-pane factor). A nil *Gauge is a no-op.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Labels returns the series' labels.
func (g *Gauge) Labels() []Label { return g.labels }

// Series returns the full series identity, name plus label string.
func (g *Gauge) Series() string { return seriesKey(g.name, g.labels) }

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by a (possibly negative) delta.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the gauge's current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
