package obs

import (
	"math"
	"sort"
	"sync"
)

// DefBuckets are the default histogram bucket upper bounds: base-4
// exponential from 1e-6 up through ~1.1e6, wide enough to cover both
// virtual-second durations (micro- to kilo-seconds) and byte volumes
// when callers prefer not to pick bounds per metric.
var DefBuckets = func() []float64 {
	out := make([]float64, 0, 21)
	for v := 1e-6; v < 2e6; v *= 4 {
		out = append(out, v)
	}
	return out
}()

// Histogram accumulates observations into fixed buckets and tracks
// count, sum, min and max. Quantiles are estimated by linear
// interpolation within the bucket containing the target rank, clamped
// to the observed min/max. A nil *Histogram is a no-op.
type Histogram struct {
	name   string
	labels []Label

	mu       sync.Mutex
	bounds   []float64 // ascending upper bounds; +Inf implicit
	counts   []int64   // len(bounds)+1, non-cumulative
	count    int64
	sum      float64
	min, max float64
}

func newHistogram(name string, labels []Label, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		name:   name,
		labels: append([]Label(nil), labels...),
		bounds: b,
		counts: make([]int64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Labels returns the series' labels.
func (h *Histogram) Labels() []Label { return h.labels }

// Series returns the full series identity, name plus label string.
func (h *Histogram) Series() string { return seriesKey(h.name, h.labels) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// BucketCount is one exported bucket: the upper bound (inclusive) and
// the cumulative count of samples at or below it, Prometheus `le`
// semantics. The final bucket has UpperBound +Inf.
type BucketCount struct {
	UpperBound float64
	Count      int64 // cumulative
}

// Buckets returns the cumulative bucket counts.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]BucketCount, 0, len(h.counts))
	var cum int64
	for i, c := range h.counts {
		cum += c
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out = append(out, BucketCount{UpperBound: ub, Count: cum})
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// samples: the bucket containing the target rank is located and the
// value interpolated linearly across it, clamped to the observed
// min/max so estimates never leave the sampled range. With no samples
// it returns 0; NaN is returned for q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.max
}
