package obs

import (
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// repeated instrument resolution plus updates — and checks the totals.
// Run with -race to exercise the synchronization.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits", L("shard", "a")).Inc()
				r.Counter("hits", L("shard", "b")).Add(2)
				r.Gauge("depth").Add(1)
				r.Histogram("lat").Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("hits", L("shard", "a")).Value(); got != workers*perWorker {
		t.Errorf("shard a = %v, want %v", got, workers*perWorker)
	}
	if got := r.Counter("hits", L("shard", "b")).Value(); got != 2*workers*perWorker {
		t.Errorf("shard b = %v, want %v", got, 2*workers*perWorker)
	}
	if got := r.Gauge("depth").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %v", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %v", got, workers*perWorker)
	}
}

// TestLabelSeparation checks that differing label sets are independent
// series of one metric name.
func TestLabelSeparation(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "v1")).Inc()
	r.Counter("c", L("k", "v2")).Add(5)
	r.Counter("c").Add(9)
	if got := r.Counter("c", L("k", "v1")).Value(); got != 1 {
		t.Errorf("v1 = %v", got)
	}
	if got := r.Counter("c", L("k", "v2")).Value(); got != 5 {
		t.Errorf("v2 = %v", got)
	}
	if got := r.Counter("c").Value(); got != 9 {
		t.Errorf("unlabeled = %v", got)
	}
	if n := len(r.Counters()); n != 3 {
		t.Errorf("series count = %d, want 3", n)
	}
}

// TestCounterMonotone checks negative deltas are rejected.
func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Add(-5)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
}

// TestNilSafety calls every instrument method through nil receivers —
// the no-op mode library users get without configuring observability.
func TestNilSafety(t *testing.T) {
	var r *Registry
	var o *Observer
	var tr *Tracer

	r.Counter("c", L("a", "b")).Inc()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(4)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(1)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Error("nil registry must read zero")
	}
	if r.Counters() != nil || r.Gauges() != nil || r.Histograms() != nil {
		t.Error("nil registry snapshots must be nil")
	}

	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Histogram("h").Observe(1)
	o.Span("t", "cat", "s", 0, 10)
	o.Instant("t", "cat", "i", 5)

	tr.Span("t", "cat", "s", 0, 10)
	tr.Instant("t", "cat", "i", 5)
	if tr.Len() != 0 || tr.Events() != nil || tr.Tracks() != nil {
		t.Error("nil tracer must be empty")
	}

	// An Observer with nil fields is likewise inert.
	o2 := &Observer{}
	o2.Counter("c").Inc()
	o2.Span("t", "cat", "s", 0, 10)
}

// TestGaugeSet checks last-write-wins semantics.
func TestGaugeSet(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", L("node", "3"))
	g.Set(7)
	g.Set(2)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %v, want 1", got)
	}
}
