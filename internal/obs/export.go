package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
)

// --- Prometheus text exposition ---

// promFloat formats a value the way the Prometheus text format expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// bucketLabels appends the `le` label to a histogram's label set.
func bucketLabels(labels []Label, ub float64) string {
	ls := append(append([]Label(nil), labels...), L("le", promFloat(ub)))
	return labelString(ls)
}

// WritePrometheus writes every registered series in the Prometheus
// text exposition format (sorted by series key; one # TYPE line per
// metric name). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	typed := make(map[string]bool)
	writeType := func(name, typ string) {
		if !typed[name] {
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
			typed[name] = true
		}
	}
	for _, c := range r.Counters() {
		writeType(c.Name(), "counter")
		fmt.Fprintf(bw, "%s%s %s\n", c.Name(), labelString(c.Labels()), promFloat(c.Value()))
	}
	for _, g := range r.Gauges() {
		writeType(g.Name(), "gauge")
		fmt.Fprintf(bw, "%s%s %s\n", g.Name(), labelString(g.Labels()), promFloat(g.Value()))
	}
	for _, h := range r.Histograms() {
		writeType(h.Name(), "histogram")
		for _, b := range h.Buckets() {
			fmt.Fprintf(bw, "%s_bucket%s %d\n", h.Name(), bucketLabels(h.Labels(), b.UpperBound), b.Count)
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", h.Name(), labelString(h.Labels()), promFloat(h.Sum()))
		fmt.Fprintf(bw, "%s_count%s %d\n", h.Name(), labelString(h.Labels()), h.Count())
		// Pre-computed quantiles as a companion gauge series, so
		// `grep _quantile` answers latency questions without bucket
		// math. (Real Prometheus would derive these with
		// histogram_quantile; the text artifact has no query engine.)
		writeType(h.Name()+"_quantile", "gauge")
		for _, q := range exportQuantiles {
			ls := append(append([]Label(nil), h.Labels()...), L("quantile", q.label))
			fmt.Fprintf(bw, "%s_quantile%s %s\n", h.Name(), labelString(ls), promFloat(h.Quantile(q.q)))
		}
	}
	return bw.Flush()
}

// exportQuantiles are the quantiles materialized in the exposition and
// the CLI table.
var exportQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}}

// WriteQuantileTable renders every histogram as one table row — count,
// p50/p90/p99 and max — the human-readable companion the `redoopctl
// metrics` subcommand prints to stderr. A nil registry writes nothing.
func (r *Registry) WriteQuantileTable(w io.Writer) error {
	if r == nil {
		return nil
	}
	hists := r.Histograms()
	if len(hists) == 0 {
		return nil
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-52s %8s %12s %12s %12s %12s\n", "histogram", "count", "p50", "p90", "p99", "max")
	for _, h := range hists {
		fmt.Fprintf(bw, "%-52s %8d %12s %12s %12s %12s\n",
			h.Series(), h.Count(),
			promFloat(round6(h.Quantile(0.5))),
			promFloat(round6(h.Quantile(0.9))),
			promFloat(round6(h.Quantile(0.99))),
			promFloat(round6(h.Max())))
	}
	return bw.Flush()
}

// round6 trims quantile interpolation noise for display.
func round6(v float64) float64 {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	scale := math.Pow(10, 6-math.Ceil(math.Log10(math.Abs(v))))
	return math.Round(v*scale) / scale
}

// --- JSON snapshot ---

// SeriesSnapshot is one counter or gauge in the JSON snapshot.
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnapshot is one histogram in the JSON snapshot, with
// pre-computed quantiles so downstream tooling needs no bucket math.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []BucketJSON      `json:"buckets"`
}

// BucketJSON is one cumulative bucket; Le is "+Inf" for the last.
type BucketJSON struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot is the registry's full JSON snapshot document.
type Snapshot struct {
	Counters   []SeriesSnapshot    `json:"counters"`
	Gauges     []SeriesSnapshot    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures every registered series. A nil registry yields an
// empty (but non-nil-fielded) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   []SeriesSnapshot{},
		Gauges:     []SeriesSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for _, c := range r.Counters() {
		s.Counters = append(s.Counters, SeriesSnapshot{Name: c.Name(), Labels: labelMap(c.Labels()), Value: c.Value()})
	}
	for _, g := range r.Gauges() {
		s.Gauges = append(s.Gauges, SeriesSnapshot{Name: g.Name(), Labels: labelMap(g.Labels()), Value: g.Value()})
	}
	for _, h := range r.Histograms() {
		hs := HistogramSnapshot{
			Name: h.Name(), Labels: labelMap(h.Labels()),
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
		}
		for _, b := range h.Buckets() {
			hs.Buckets = append(hs.Buckets, BucketJSON{Le: promFloat(b.UpperBound), Count: b.Count})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// --- Chrome trace-event JSON ---

// traceEventJSON is the on-the-wire Chrome trace event. Timestamps and
// durations are microseconds (fractional values carry the simulation's
// nanosecond precision).
type traceEventJSON struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON-object trace container Perfetto accepts.
type traceDoc struct {
	TraceEvents     []traceEventJSON `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
}

const tracePid = 1

// WriteTraceJSON serializes the recorded events as a Chrome trace
// document: one metadata event names each track, then every span as a
// complete ("X") event and every marker as an instant ("i") event on
// its track's tid. A nil tracer writes an empty but valid document.
func (t *Tracer) WriteTraceJSON(w io.Writer) error {
	doc := traceDoc{TraceEvents: []traceEventJSON{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		tracks := append([]string(nil), t.tracks...)
		events := append([]Event(nil), t.events...)
		tids := make(map[string]int, len(t.tids))
		for k, v := range t.tids {
			tids[k] = v
		}
		t.mu.Unlock()

		doc.TraceEvents = append(doc.TraceEvents, traceEventJSON{
			Name: "process_name", Ph: "M", Pid: tracePid,
			Args: map[string]any{"name": "redoop (virtual time)"},
		})
		for tid, track := range tracks {
			doc.TraceEvents = append(doc.TraceEvents, traceEventJSON{
				Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
				Args: map[string]any{"name": track},
			})
		}
		for _, e := range events {
			ev := traceEventJSON{
				Name: e.Name, Cat: e.Cat, Pid: tracePid, Tid: tids[e.Track],
				Ts: float64(e.Start) / 1e3,
			}
			if e.Instant {
				ev.Ph = "i"
				ev.S = "t" // thread-scoped marker
			} else {
				ev.Ph = "X"
				dur := float64(e.End.Sub(e.Start)) / 1e3
				ev.Dur = &dur
			}
			if len(e.Args) > 0 {
				ev.Args = make(map[string]any, len(e.Args))
				for _, a := range e.Args {
					ev.Args[a.Key] = a.Value
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// --- file helpers shared by the CLIs ---

// WriteFileAtomic writes an artifact through `write` into a temp file
// next to path, then renames it into place, creating parent
// directories as needed. Readers never see a partial file and a failed
// write leaves any previous artifact untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WriteMetricsFile writes the registry's Prometheus text exposition to
// a file, atomically, creating parent directories. A nil registry
// still produces the (empty) file, so callers can rely on the artifact
// existing.
func (r *Registry) WriteMetricsFile(path string) error {
	return WriteFileAtomic(path, r.WritePrometheus)
}

// WriteTraceFile writes the Chrome trace JSON to a file, atomically,
// creating parent directories.
func (t *Tracer) WriteTraceFile(path string) error {
	return WriteFileAtomic(path, t.WriteTraceJSON)
}
