package eventlog

import (
	"sync"
	"testing"

	"redoop/internal/simtime"
)

func TestAppendAssignsIncreasingSeq(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 5; i++ {
		e := l.Append(simtime.Time(i), CacheHit, "q1", nil)
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d got seq %d", i, e.Seq)
		}
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("events[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if l.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", l.Dropped())
	}
}

func TestWraparoundKeepsNewestAndBoundsMemory(t *testing.T) {
	const capacity = 16
	l := NewLog(capacity)
	const total = 100
	for i := 0; i < total; i++ {
		l.Append(simtime.Time(i), PaneIngest, "q1", PaneIngestData{Pane: int64(i)})
	}
	if l.Len() != capacity {
		t.Fatalf("len = %d, want capacity %d", l.Len(), capacity)
	}
	if l.Cap() != capacity {
		t.Fatalf("cap = %d, want %d", l.Cap(), capacity)
	}
	if got, want := l.Dropped(), uint64(total-capacity); got != want {
		t.Errorf("dropped = %d, want %d", got, want)
	}
	evs := l.Events()
	if len(evs) != capacity {
		t.Fatalf("events len = %d, want %d", len(evs), capacity)
	}
	// The retained window is exactly the newest `capacity` events, in
	// order.
	for i, e := range evs {
		want := uint64(total - capacity + i + 1)
		if e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestSinceResumesFromSeq(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 6; i++ {
		l.Append(0, CacheMiss, "q", nil)
	}
	evs := l.Since(4)
	if len(evs) != 2 || evs[0].Seq != 5 || evs[1].Seq != 6 {
		t.Fatalf("Since(4) = %+v, want seqs 5,6", evs)
	}
	if got := l.Since(100); len(got) != 0 {
		t.Errorf("Since(future) = %d events, want 0", len(got))
	}
}

func TestSelectFilters(t *testing.T) {
	l := NewLog(32)
	l.Append(1, CacheHit, "q1", nil)
	l.Append(2, CacheMiss, "q1", nil)
	l.Append(3, CacheHit, "q2", nil)
	l.Append(4, Placement, "q1", nil)

	if got := l.Select(Filter{Type: CacheHit}); len(got) != 2 {
		t.Errorf("Type filter: %d events, want 2", len(got))
	}
	if got := l.Select(Filter{Query: "q1"}); len(got) != 3 {
		t.Errorf("Query filter: %d events, want 3", len(got))
	}
	if got := l.Select(Filter{Type: CacheHit, Query: "q2"}); len(got) != 1 || got[0].Seq != 3 {
		t.Errorf("combined filter: %+v, want the one q2 hit", got)
	}
	if got := l.Select(Filter{Limit: 2}); len(got) != 2 || got[1].Seq != 2 {
		t.Errorf("limit: %+v, want first two", got)
	}
	if got := l.Select(Filter{SinceSeq: 3}); len(got) != 1 || got[0].Seq != 4 {
		t.Errorf("since: %+v, want just seq 4", got)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	l := NewLog(64)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Append(simtime.Time(i), CacheHit, "q", CacheData{Node: w})
			}
		}(w)
	}
	// Concurrent readers must never observe a torn ring.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			evs := l.Events()
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("out-of-order seqs %d after %d", evs[j].Seq, evs[j-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	if got, want := l.Seq(), uint64(writers*perWriter); got != want {
		t.Errorf("final seq = %d, want %d", got, want)
	}
	if l.Len() != 64 {
		t.Errorf("len = %d, want capacity 64", l.Len())
	}
}

func TestSubscribeDeliversLiveEvents(t *testing.T) {
	l := NewLog(8)
	l.Append(0, CacheHit, "q", nil) // before subscribe: not delivered
	ch, cancel := l.Subscribe(4)
	defer cancel()
	l.Append(1, CacheMiss, "q", nil)
	l.Append(2, Placement, "q", nil)
	e1 := <-ch
	e2 := <-ch
	if e1.Type != CacheMiss || e2.Type != Placement {
		t.Fatalf("got %v, %v; want cache.miss, placement", e1.Type, e2.Type)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel should be closed after cancel")
	}
	// Appending after cancel must not panic or block.
	l.Append(3, CacheHit, "q", nil)
}

func TestSubscribeSlowConsumerDropsNotBlocks(t *testing.T) {
	l := NewLog(8)
	_, cancel := l.Subscribe(1)
	defer cancel()
	for i := 0; i < 10; i++ {
		l.Append(simtime.Time(i), CacheHit, "q", nil) // must not block
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	if e := l.Append(0, CacheHit, "q", nil); e.Seq != 0 {
		t.Error("nil append should return zero event")
	}
	if l.Len() != 0 || l.Cap() != 0 || l.Seq() != 0 || l.Dropped() != 0 {
		t.Error("nil accessors should be zero")
	}
	if l.Events() != nil || l.Since(0) != nil || l.Select(Filter{}) != nil {
		t.Error("nil queries should be nil")
	}
	ch, cancel := l.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Error("nil subscribe should return a closed channel")
	}
}
