// Package eventlog is Redoop's flight recorder: a bounded,
// concurrency-safe ring buffer of typed structured events describing
// the system's adaptive decisions — recurrence lifecycles, pane
// ingestion, cache registrations and lookups, Equation 4 placement
// choices with their full per-candidate cost breakdown, adaptive
// re-planning, and failures.
//
// Events carry virtual-clock timestamps (internal/simtime) and a
// monotonically increasing sequence number, so a consumer can order
// them, resume from where it left off (`Since`), or follow them live
// (`Subscribe`, which backs the debug server's SSE stream). The buffer
// is bounded: once capacity is reached the oldest events are
// overwritten and counted in Dropped, so a long-running recurring
// query records forever in constant memory.
//
// Like the rest of the obs layer, a nil *Log is a valid no-op, so
// emitting code instruments unconditionally.
package eventlog

import (
	"sync"

	"redoop/internal/simtime"
)

// Type names one kind of recorded event.
type Type string

// The event vocabulary. Payload types below document each event's
// Data field.
const (
	RecurrenceStart  Type = "recurrence.start"
	RecurrenceFinish Type = "recurrence.finish"
	PaneIngest       Type = "pane.ingest"
	PaneRetire       Type = "pane.retire"
	CacheRegister    Type = "cache.register"
	CacheHit         Type = "cache.hit"
	CacheMiss        Type = "cache.miss"
	// CacheLost is a lookup that found the signature but not the bytes
	// (the §5 failure path); it is always followed by a rollback.
	CacheLost Type = "cache.lost"
	// CacheLoad is one cached artifact being read into a cache task:
	// the load-side cost of reuse (CacheLoadData), paired against the
	// RecomputeNS recorded at registration to form the profiler's
	// cache-benefit ledger.
	CacheLoad     Type = "cache.load"
	CachePurge    Type = "cache.purge"
	CacheRollback Type = "cache.rollback"
	// CacheEvict is one unexpired cache removed by cost-based
	// replacement under a disk limit (CacheData): the signature rolls
	// back to HDFS-available, so the entry is rebuildable, not lost.
	CacheEvict Type = "cache.evict"
	// Placement is one Equation 4 decision with its full per-candidate
	// breakdown (PlacementData).
	Placement Type = "placement"
	Replan    Type = "replan"
	// TaskRetry is a failed task attempt that will be retried.
	TaskRetry   Type = "task.retry"
	NodeFailure Type = "node.failure"
	// HealthStatus is a query's SLO status transition
	// (OK / AT_RISK / MISSING_DEADLINES).
	HealthStatus Type = "health.status"
	// HealthAnomaly flags a recurrence whose Holt forecast residual
	// exceeded K times the residual EWMA.
	HealthAnomaly Type = "health.anomaly"
	// AdaptivityMiss is a forecast anomaly the adaptive re-planner did
	// not react to — the §3.3 loop missed a regime change.
	AdaptivityMiss Type = "health.adaptivity_miss"
	// LineageDerived is one derivation node recorded in the provenance
	// store: a pane cache or emitted window, with its plan fingerprint
	// (LineageDerivedData).
	LineageDerived Type = "lineage.derived"
	// LineageCopyRehome is a cache copy re-homed to a different node by
	// a rebuild (LineageRehomeData).
	LineageCopyRehome Type = "lineage.copy_rehome"
	// LineageRebuild is a derivation rebuilt after its cached bytes were
	// lost, with the fault named as the cause when one matches
	// (LineageRebuildData).
	LineageRebuild Type = "lineage.rebuild"
)

// Event is one recorded entry of the flight recorder.
type Event struct {
	// Seq is the event's global sequence number, 1-based and strictly
	// increasing in record order.
	Seq uint64 `json:"seq"`
	// At is the event's virtual-clock instant.
	At   simtime.Time `json:"at"`
	Type Type         `json:"type"`
	// Query labels the owning recurring query, when one applies.
	Query string `json:"query,omitempty"`
	// Data is the event's typed payload (one of the *Data structs
	// below), JSON-serializable.
	Data any `json:"data,omitempty"`
}

// RecurrenceStartData reports a recurrence trigger firing.
type RecurrenceStartData struct {
	Recurrence int   `json:"recurrence"`
	WindowLo   int64 `json:"windowLo"`
	WindowHi   int64 `json:"windowHi"`
}

// RecurrenceFinishData reports a completed recurrence. ForecastNS is
// the Holt forecast that was made for this recurrence at the end of
// the previous one (-1 before the profiler warms up), so forecast
// error is computable directly from the pair.
type RecurrenceFinishData struct {
	Recurrence      int   `json:"recurrence"`
	ResponseNS      int64 `json:"responseNS"`
	ForecastNS      int64 `json:"forecastNS"`
	NewPanes        int   `json:"newPanes"`
	ReusedPanes     int   `json:"reusedPanes"`
	NewPairs        int   `json:"newPairs,omitempty"`
	ReusedPairs     int   `json:"reusedPairs,omitempty"`
	CacheRecoveries int   `json:"cacheRecoveries,omitempty"`
	Proactive       bool  `json:"proactive,omitempty"`
	SubPanes        int   `json:"subPanes"`
}

// PaneIngestData reports one pane segment flushed to a DFS file by the
// Dynamic Data Packer.
type PaneIngestData struct {
	Source  string `json:"source"`
	Pane    int64  `json:"pane"`
	SubPane int    `json:"subPane"`
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
}

// PaneRetireData reports panes retired from the cache status matrix
// after sliding out of every window.
type PaneRetireData struct {
	Source int     `json:"source"`
	Panes  []int64 `json:"panes"`
}

// CacheData is the payload of every cache.* event: which cache, where
// it lives, and which recurrence touched it. For hit events the PID
// attributes the reused bytes back to the pane (and recurrence) that
// produced them — the pane ids are embedded in the PID's P segment.
type CacheData struct {
	PID       string `json:"pid"`
	CacheType string `json:"cacheType"`
	Node      int    `json:"node"`
	Bytes     int64  `json:"bytes,omitempty"`
	// Recurrence is the recurrence during which the event fired; -1
	// when unknown (controller-side purges).
	Recurrence int `json:"recurrence"`
	// RecomputeNS, on register events, is the cost of producing this
	// cache entry from scratch: the actual map+shuffle+reduce share on
	// cold builds, the iocost-modeled rebuild cost otherwise. It is
	// what a later hit on this entry avoids paying.
	RecomputeNS int64 `json:"recomputeNS,omitempty"`
}

// CacheLoadData is the payload of a cache.load event: one cached
// artifact read into a cache task, with its modeled load cost. Local
// records whether the read avoided a network transfer (the cache lived
// on the node Equation 4 chose).
type CacheLoadData struct {
	PID        string `json:"pid"`
	Node       int    `json:"node"`
	Local      bool   `json:"local"`
	Bytes      int64  `json:"bytes"`
	LoadNS     int64  `json:"loadNS"`
	Recurrence int    `json:"recurrence"`
}

// PlacementCandidate is one node's Equation 4 cost breakdown:
// Load_i (queueing delay before a reduce slot frees) plus C_task,i
// (the I/O cost of loading the task's caches from this node).
type PlacementCandidate struct {
	Node        int   `json:"node"`
	LoadNS      int64 `json:"loadNS"`
	CacheCostNS int64 `json:"cacheCostNS"`
	TotalNS     int64 `json:"totalNS"`
}

// PlacementData records one cache-task placement decision: every alive
// candidate's cost terms, the chosen node (the argmin), and the
// outcome classification.
type PlacementData struct {
	Recurrence int                  `json:"recurrence"`
	Chosen     int                  `json:"chosen"`
	Outcome    string               `json:"outcome"`
	Caches     int                  `json:"caches"`
	Candidates []PlacementCandidate `json:"candidates"`
}

// ReplanData records an adaptive re-planning decision (§3.3).
type ReplanData struct {
	Recurrence int   `json:"recurrence"`
	Source     int   `json:"source"`
	SubPanes   int   `json:"subPanes"`
	Proactive  bool  `json:"proactive"`
	ForecastNS int64 `json:"forecastNS"`
	DeadlineNS int64 `json:"deadlineNS"`
}

// TaskRetryData records a failed task attempt about to be retried.
type TaskRetryData struct {
	Job     string `json:"job"`
	Task    string `json:"task"`
	Phase   string `json:"phase"`
	Attempt int    `json:"attempt"`
}

// NodeFailureData records a node death.
type NodeFailureData struct {
	Node int `json:"node"`
}

// HealthStatusData records a query's SLO status transition.
type HealthStatusData struct {
	Recurrence int    `json:"recurrence"`
	From       string `json:"from"`
	To         string `json:"to"`
	MissStreak int    `json:"missStreak"`
	HeadroomNS int64  `json:"headroomNS"`
	LagUnits   int64  `json:"lagUnits"`
}

// HealthAnomalyData records a Holt forecast residual anomaly: the
// residual |actual − forecast| exceeded K times the EWMA of prior
// residuals (EWMANS is that prior scale).
type HealthAnomalyData struct {
	Recurrence  int     `json:"recurrence"`
	ForecastNS  int64   `json:"forecastNS"`
	ActualNS    int64   `json:"actualNS"`
	ResidualNS  int64   `json:"residualNS"`
	EWMANS      int64   `json:"ewmaNS"`
	K           float64 `json:"k"`
	ReplanFired bool    `json:"replanFired"`
}

// AdaptivityMissData records a forecast anomaly that fired without the
// adaptive re-planner reacting at the same recurrence boundary.
type AdaptivityMissData struct {
	Recurrence int   `json:"recurrence"`
	ForecastNS int64 `json:"forecastNS"`
	ActualNS   int64 `json:"actualNS"`
	ResidualNS int64 `json:"residualNS"`
}

// LineageDerivedData records one derivation node entering the
// provenance store.
type LineageDerivedData struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Pane        int64  `json:"pane"`
	Part        int    `json:"part"`
	Bytes       int64  `json:"bytes"`
	Fingerprint string `json:"fingerprint"`
}

// LineageRehomeData records a cache copy re-homed across nodes by a
// rebuild.
type LineageRehomeData struct {
	ID   string `json:"id"`
	From int    `json:"from"`
	To   int    `json:"to"`
}

// LineageRebuildData records a derivation rebuilt after loss; Cause
// names the matched fault ("" when none matched).
type LineageRebuildData struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Cause string `json:"cause,omitempty"`
}

// DefaultCapacity bounds the default flight recorder. At Redoop's
// event rates (tens of events per recurrence) this covers hundreds of
// recurrences while staying a few MiB at most.
const DefaultCapacity = 8192

// Log is the bounded event ring buffer. All methods are safe for
// concurrent use; a nil *Log is a no-op.
type Log struct {
	mu      sync.Mutex
	buf     []Event // ring storage, len == capacity
	start   int     // index of the oldest retained event
	n       int     // retained count
	seq     uint64  // last assigned sequence number
	dropped uint64  // events overwritten by wraparound

	subs    map[int]chan Event
	nextSub int
	subDrop uint64 // events not delivered to a slow subscriber
}

// NewLog returns an empty log retaining at most capacity events;
// capacity <= 0 selects DefaultCapacity.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{buf: make([]Event, capacity), subs: make(map[int]chan Event)}
}

// Append records one event, stamping its sequence number, and returns
// it. When the buffer is full the oldest event is overwritten. A nil
// log returns a zero Event.
func (l *Log) Append(at simtime.Time, typ Type, query string, data any) Event {
	if l == nil {
		return Event{}
	}
	l.mu.Lock()
	l.seq++
	e := Event{Seq: l.seq, At: at, Type: typ, Query: query, Data: data}
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
		l.dropped++
	}
	for _, ch := range l.subs {
		select {
		case ch <- e:
		default:
			l.subDrop++ // slow subscriber: drop rather than block the run
		}
	}
	l.mu.Unlock()
	return e
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Cap returns the ring capacity (0 for nil).
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many events were overwritten by wraparound.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	return l.Since(0)
}

// Since returns the retained events with Seq > seq, oldest first.
// Passing the Seq of the last event a consumer saw resumes from there
// (events older than the retention window are simply gone).
func (l *Log) Since(seq uint64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.start+i)%len(l.buf)]
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	return out
}

// Filter selects events from the retained window.
type Filter struct {
	// Type keeps only events of this exact type ("" keeps all).
	Type Type
	// Query keeps only events labeled with this query ("" keeps all).
	Query string
	// SinceSeq keeps only events with Seq > SinceSeq.
	SinceSeq uint64
	// Limit truncates the result to the first Limit matches (0 = all).
	Limit int
}

// Select returns the retained events matching f, oldest first.
func (l *Log) Select(f Filter) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.start+i)%len(l.buf)]
		if e.Seq <= f.SinceSeq {
			continue
		}
		if f.Type != "" && e.Type != f.Type {
			continue
		}
		if f.Query != "" && e.Query != f.Query {
			continue
		}
		out = append(out, e)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Subscribe registers a live event feed: every Append after this call
// is delivered to the returned channel (best-effort: a subscriber that
// falls behind its buffer loses events rather than stalling the
// recorder — resync with Since). cancel unregisters and closes the
// channel; it is safe to call more than once. A nil log returns a
// closed channel.
func (l *Log) Subscribe(buffer int) (<-chan Event, func()) {
	if l == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	l.mu.Lock()
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			l.mu.Lock()
			delete(l.subs, id)
			l.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}
