package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantiles checks interpolation against a uniform sample
// set with known quantiles.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	cases := []struct {
		q    float64
		want float64
		tol  float64
	}{
		{0, 1, 1.5},     // clamped to observed min
		{0.5, 50, 5},    // median of uniform 1..100
		{0.9, 90, 5},    // p90
		{0.99, 99, 5},   // p99
		{1.0, 100, 0.1}, // max
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", c.q, got, c.want, c.tol)
		}
	}
}

// TestHistogramSingleBucket checks quantiles clamp to the observed
// min/max when all samples land in one bucket.
func TestHistogramSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{1000})
	h.Observe(40)
	h.Observe(60)
	if got := h.Quantile(0); got < 40 || got > 60 {
		t.Errorf("Quantile(0) = %v, want within [40, 60]", got)
	}
	if got := h.Quantile(1); got != 60 {
		t.Errorf("Quantile(1) = %v, want 60", got)
	}
	if h.Min() != 40 || h.Max() != 60 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramOverflowBucket checks samples above every bound land in
// the +Inf bucket and quantiles stay within the observed range.
func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{1, 2})
	h.Observe(1e9)
	h.Observe(2e9)
	bs := h.Buckets()
	if got := bs[len(bs)-1].Count; got != 2 {
		t.Errorf("+Inf bucket = %d, want 2", got)
	}
	if !math.IsInf(bs[len(bs)-1].UpperBound, 1) {
		t.Errorf("last bound = %v, want +Inf", bs[len(bs)-1].UpperBound)
	}
	if got := h.Quantile(0.99); got > 2e9 || got < 1e9 {
		t.Errorf("Quantile(0.99) = %v outside observed range", got)
	}
}

// TestHistogramEmptyAndInvalid checks the degenerate cases.
func TestHistogramEmptyAndInvalid(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	h.Observe(5)
	if got := h.Quantile(1.5); !math.IsNaN(got) {
		t.Errorf("Quantile(1.5) = %v, want NaN", got)
	}
	if got := h.Quantile(-0.1); !math.IsNaN(got) {
		t.Errorf("Quantile(-0.1) = %v, want NaN", got)
	}
}

// TestHistogramCumulativeBuckets checks Prometheus le semantics: bucket
// counts are cumulative and a boundary value counts into its bucket.
func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{10, 20})
	h.Observe(10) // le="10"
	h.Observe(15) // le="20"
	h.Observe(25) // +Inf
	bs := h.Buckets()
	wants := []int64{1, 2, 3}
	for i, w := range wants {
		if bs[i].Count != w {
			t.Errorf("bucket[%d] = %d, want %d", i, bs[i].Count, w)
		}
	}
	if h.Sum() != 50 || h.Count() != 3 {
		t.Errorf("sum/count = %v/%v", h.Sum(), h.Count())
	}
}
