// Package obs is the simulation-time observability layer: a
// concurrency-safe metrics registry (counters, gauges, histograms
// keyed by name + labels), a lightweight span tracer that emits Chrome
// trace-event JSON viewable in Perfetto / about:tracing, and exporters
// for a Prometheus-style text exposition and a JSON snapshot.
//
// All timestamps come from internal/simtime, so a simulated run
// produces one coherent series on the virtual clock — the quantities
// the paper's evaluation plots (per-recurrence cache hit ratios,
// shuffle volumes, Equation 4 placement decisions, Holt forecast
// error) become observable from a running system instead of living in
// ad-hoc prints.
//
// Every type in the package is nil-safe: methods on a nil *Registry,
// *Tracer, *Observer, *Counter, *Gauge or *Histogram are no-ops, so
// library code instruments unconditionally and un-configured users pay
// only a nil check (benchmark-verified in the repository root's
// bench_test.go).
package obs

import (
	"fmt"

	"redoop/internal/obs/eventlog"
	"redoop/internal/simtime"
)

// Label is one name dimension of a metric or span attribute.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelString serializes labels in Prometheus form, e.g.
// `{locality="local",source="S1"}`; empty input yields "".
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return s + "}"
}

// NodeTrack names the trace track of one cluster node's task slots.
func NodeTrack(id int) string { return fmt.Sprintf("node:%d", id) }

// QueryTrack names the trace track of one query's recurrence/phase
// spans.
func QueryTrack(name string) string { return "query:" + name }

// Observer bundles the metrics registry, the span tracer and the
// flight-recorder event log that instrumented components share. A nil
// *Observer (or nil fields) disables the corresponding instrument with
// ~zero overhead.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
	// Events is the bounded flight recorder of structured decision
	// events (cache lookups, Equation 4 placements, re-plans); the
	// debug server's /debug/events and /debug/stream read from it.
	Events *eventlog.Log
}

// New returns an Observer with a fresh registry, tracer, and a
// default-capacity event log.
func New() *Observer {
	o := &Observer{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(),
		Events:  eventlog.NewLog(eventlog.DefaultCapacity),
	}
	// Pre-create the overflow counter so ring health is visible in
	// every exposition from the first scrape, not only after the first
	// drop.
	o.Metrics.Counter("redoop_eventlog_dropped_total")
	return o
}

// Emit appends a structured event to the bundled flight recorder;
// nil-safe, returns the stamped event. Once the ring is full every
// append overwrites (drops) exactly one retained event; that overflow
// is surfaced as the redoop_eventlog_dropped_total counter so a
// wrapped flight recorder is never silent.
func (o *Observer) Emit(at simtime.Time, typ eventlog.Type, query string, data any) eventlog.Event {
	if o == nil {
		return eventlog.Event{}
	}
	e := o.Events.Append(at, typ, query, data)
	if e.Seq > uint64(o.Events.Cap()) {
		o.Metrics.Counter("redoop_eventlog_dropped_total").Inc()
	}
	return e
}

// EmitEnabled reports whether an event log is attached — emitters that
// must build a payload (e.g. the per-candidate placement breakdown)
// check it first to skip the work when recording is off.
func (o *Observer) EmitEnabled() bool {
	return o != nil && o.Events != nil
}

// Counter resolves a counter on the bundled registry; nil-safe.
func (o *Observer) Counter(name string, labels ...Label) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, labels...)
}

// Gauge resolves a gauge on the bundled registry; nil-safe.
func (o *Observer) Gauge(name string, labels ...Label) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, labels...)
}

// Histogram resolves a histogram on the bundled registry; nil-safe.
func (o *Observer) Histogram(name string, labels ...Label) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, labels...)
}
