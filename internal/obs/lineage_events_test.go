package obs

import (
	"testing"

	"redoop/internal/obs/eventlog"
)

// TestLineageEventsRingOverflowAccounted floods a small flight
// recorder with lineage.* typed events past its capacity and asserts
// redoop_eventlog_dropped_total accounts for every overwritten event:
// provenance emissions ride the same bounded ring as every other
// event family, and their loss is never silent.
func TestLineageEventsRingOverflowAccounted(t *testing.T) {
	o := New()
	const cap = 8
	o.Events = eventlog.NewLog(cap)

	types := []eventlog.Type{eventlog.LineageDerived, eventlog.LineageCopyRehome, eventlog.LineageRebuild}
	payload := func(typ eventlog.Type, i int) any {
		switch typ {
		case eventlog.LineageDerived:
			return eventlog.LineageDerivedData{ID: "query/q/P1/r0|1", Kind: "pane-rout", Pane: int64(i), Bytes: 64}
		case eventlog.LineageCopyRehome:
			return eventlog.LineageRehomeData{ID: "query/q/P1/r0|1", From: 0, To: 1}
		default:
			return eventlog.LineageRebuildData{ID: "query/q/P1/r0|1", Kind: "pane-rout", Cause: "node-crash node 1 @r2"}
		}
	}

	const emitted = cap + 13
	for i := 0; i < emitted; i++ {
		typ := types[i%len(types)]
		o.Emit(0, typ, "q", payload(typ, i))
	}

	dropped := o.Metrics.Counter("redoop_eventlog_dropped_total").Value()
	if want := float64(emitted - cap); dropped != want {
		t.Fatalf("redoop_eventlog_dropped_total = %v, want %v (emitted %d into a %d-slot ring)",
			dropped, want, emitted, cap)
	}

	// The ring retains exactly the newest cap events, all lineage-typed.
	evs := o.Events.Since(0)
	if len(evs) != cap {
		t.Fatalf("ring retains %d events, want %d", len(evs), cap)
	}
	for _, e := range evs {
		switch e.Type {
		case eventlog.LineageDerived, eventlog.LineageCopyRehome, eventlog.LineageRebuild:
		default:
			t.Fatalf("retained event has unexpected type %q", e.Type)
		}
	}
	if first := evs[0].Seq; first != emitted-cap+1 {
		t.Fatalf("oldest retained seq = %d, want %d", first, emitted-cap+1)
	}
}
