package obs

import (
	"sync"

	"redoop/internal/simtime"
)

// Tracer records completed spans and instant events on named tracks of
// the virtual timeline and serializes them as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing). Because the simulation
// knows every span's start and end when it is recorded, the API takes
// closed spans rather than begin/end pairs: one call per span, safe
// for concurrent use. A nil *Tracer is a no-op.
//
// Tracks become trace "threads" (one tid per track, named via metadata
// events); nesting inside a track follows virtual-time containment, so
// a recurrence span contains its phase spans, which contain their task
// spans when recorded on the same track.
type Tracer struct {
	mu     sync.Mutex
	tids   map[string]int
	tracks []string // tid order
	events []Event
	nextID SpanID // last allocated task-span ID
}

// SpanID identifies one recorded task span within a Tracer. IDs are
// allocated in record order (serial accounting order), so they are
// deterministic across runs regardless of the compute pool width. The
// zero SpanID means "no span" — legacy Span/Instant events carry it,
// and a dependency on span 0 is never recorded.
type SpanID uint64

// Event is one recorded trace event.
type Event struct {
	Track string
	Cat   string
	Name  string
	Start simtime.Time
	// End is the span's end instant; for instant events End == Start
	// and Instant is set.
	End     simtime.Time
	Instant bool
	Args    []Label

	// ID identifies this span for dependency edges; zero for events
	// recorded through Span/Instant (which predate span identity).
	ID SpanID
	// Parent is the enclosing span (a recurrence root for task spans);
	// zero when the span has no recorded parent.
	Parent SpanID
	// Deps are the spans whose completion this span's readiness waited
	// on (shuffle → maps, reduce → shuffle, cache task → producing
	// tasks). An empty Deps with a non-zero ID means the span was ready
	// at its trigger — e.g. a map over a freshly ingested pane, or a
	// cache hit short-circuiting recomputation.
	Deps []SpanID
	// Ready is the instant the task became eligible to run; Start−Ready
	// is schedule wait (slot-queueing delay). Zero-valued Ready on a
	// legacy event means "unknown" and profilers treat it as Start.
	Ready simtime.Time
}

// TaskSpan describes one task span with identity, dependency edges and
// readiness, recorded via Tracer.Task.
type TaskSpan struct {
	Track string
	Cat   string
	Name  string
	Start simtime.Time
	End   simtime.Time
	// Ready is when the task's inputs were available; defaults to Start
	// when unset or later than Start.
	Ready simtime.Time
	// ID, when non-zero, must come from Reserve (pre-allocated roots);
	// zero lets Task allocate the next ID.
	ID     SpanID
	Parent SpanID
	Deps   []SpanID
	Args   []Label
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{tids: make(map[string]int)}
}

// Reserve pre-allocates a SpanID without recording an event, so a
// parent span whose extent is only known at the end (a recurrence
// root) can hand its ID to children recorded before it. A nil tracer
// returns 0.
func (t *Tracer) Reserve() SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// Task records a completed task span with identity and dependency
// edges. When ts.ID is zero a fresh SpanID is allocated; a non-zero
// ts.ID (from Reserve) records under that identity. Spans whose end
// precedes their start are clamped to zero duration; Ready is clamped
// to at most Start. Returns the span's ID (0 on a nil tracer).
func (t *Tracer) Task(ts TaskSpan) SpanID {
	if t == nil {
		return 0
	}
	if ts.End < ts.Start {
		ts.End = ts.Start
	}
	if ts.Ready == 0 || ts.Ready > ts.Start {
		ts.Ready = ts.Start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tid(ts.Track)
	id := ts.ID
	if id == 0 {
		t.nextID++
		id = t.nextID
	}
	// Drop zero deps (a "no producing span" sentinel, e.g. a cache
	// carried over from an earlier recurrence) so consumers never see
	// edges to nowhere.
	deps := make([]SpanID, 0, len(ts.Deps))
	for _, d := range ts.Deps {
		if d != 0 {
			deps = append(deps, d)
		}
	}
	if len(deps) == 0 {
		deps = nil
	}
	t.events = append(t.events, Event{
		Track: ts.Track, Cat: ts.Cat, Name: ts.Name,
		Start: ts.Start, End: ts.End, Ready: ts.Ready,
		ID: id, Parent: ts.Parent, Deps: deps, Args: ts.Args,
	})
	return id
}

func (t *Tracer) tid(track string) int {
	id, ok := t.tids[track]
	if !ok {
		id = len(t.tracks)
		t.tids[track] = id
		t.tracks = append(t.tracks, track)
	}
	return id
}

// Span records a completed span on a track. Spans whose end precedes
// their start are clamped to zero duration rather than dropped, so
// bookkeeping bugs stay visible in the trace.
func (t *Tracer) Span(track, cat, name string, start, end simtime.Time, args ...Label) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tid(track)
	t.events = append(t.events, Event{
		Track: track, Cat: cat, Name: name,
		Start: start, End: end, Args: args,
	})
}

// Instant records a zero-duration marker (re-plan decisions, cache
// losses, node failures) on a track.
func (t *Tracer) Instant(track, cat, name string, at simtime.Time, args ...Label) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tid(track)
	t.events = append(t.events, Event{
		Track: track, Cat: cat, Name: name,
		Start: at, End: at, Instant: true, Args: args,
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot of the recorded events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Tracks returns the track names in tid order.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.tracks...)
}

// Span records a completed span via the bundled tracer; nil-safe.
func (o *Observer) Span(track, cat, name string, start, end simtime.Time, args ...Label) {
	if o == nil {
		return
	}
	o.Tracer.Span(track, cat, name, start, end, args...)
}

// Instant records an instant event via the bundled tracer; nil-safe.
func (o *Observer) Instant(track, cat, name string, at simtime.Time, args ...Label) {
	if o == nil {
		return
	}
	o.Tracer.Instant(track, cat, name, at, args...)
}

// Task records a task span via the bundled tracer; nil-safe (returns 0).
func (o *Observer) Task(ts TaskSpan) SpanID {
	if o == nil {
		return 0
	}
	return o.Tracer.Task(ts)
}

// ReserveSpanID pre-allocates a span ID via the bundled tracer;
// nil-safe (returns 0).
func (o *Observer) ReserveSpanID() SpanID {
	if o == nil {
		return 0
	}
	return o.Tracer.Reserve()
}
