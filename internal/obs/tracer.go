package obs

import (
	"sync"

	"redoop/internal/simtime"
)

// Tracer records completed spans and instant events on named tracks of
// the virtual timeline and serializes them as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing). Because the simulation
// knows every span's start and end when it is recorded, the API takes
// closed spans rather than begin/end pairs: one call per span, safe
// for concurrent use. A nil *Tracer is a no-op.
//
// Tracks become trace "threads" (one tid per track, named via metadata
// events); nesting inside a track follows virtual-time containment, so
// a recurrence span contains its phase spans, which contain their task
// spans when recorded on the same track.
type Tracer struct {
	mu     sync.Mutex
	tids   map[string]int
	tracks []string // tid order
	events []Event
}

// Event is one recorded trace event.
type Event struct {
	Track string
	Cat   string
	Name  string
	Start simtime.Time
	// End is the span's end instant; for instant events End == Start
	// and Instant is set.
	End     simtime.Time
	Instant bool
	Args    []Label
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{tids: make(map[string]int)}
}

func (t *Tracer) tid(track string) int {
	id, ok := t.tids[track]
	if !ok {
		id = len(t.tracks)
		t.tids[track] = id
		t.tracks = append(t.tracks, track)
	}
	return id
}

// Span records a completed span on a track. Spans whose end precedes
// their start are clamped to zero duration rather than dropped, so
// bookkeeping bugs stay visible in the trace.
func (t *Tracer) Span(track, cat, name string, start, end simtime.Time, args ...Label) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tid(track)
	t.events = append(t.events, Event{
		Track: track, Cat: cat, Name: name,
		Start: start, End: end, Args: args,
	})
}

// Instant records a zero-duration marker (re-plan decisions, cache
// losses, node failures) on a track.
func (t *Tracer) Instant(track, cat, name string, at simtime.Time, args ...Label) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tid(track)
	t.events = append(t.events, Event{
		Track: track, Cat: cat, Name: name,
		Start: at, End: at, Instant: true, Args: args,
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot of the recorded events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Tracks returns the track names in tid order.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.tracks...)
}

// Span records a completed span via the bundled tracer; nil-safe.
func (o *Observer) Span(track, cat, name string, start, end simtime.Time, args ...Label) {
	if o == nil {
		return
	}
	o.Tracer.Span(track, cat, name, start, end, args...)
}

// Instant records an instant event via the bundled tracer; nil-safe.
func (o *Observer) Instant(track, cat, name string, at simtime.Time, args ...Label) {
	if o == nil {
		return
	}
	o.Tracer.Instant(track, cat, name, at, args...)
}
