package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redoop/internal/simtime"
)

// TestWritePrometheus checks the text exposition: TYPE lines, label
// rendering, histogram _bucket/_sum/_count series, and deterministic
// ordering.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("redoop_cache_lookups_total", L("result", "hit")).Add(7)
	r.Counter("redoop_cache_lookups_total", L("result", "miss")).Add(3)
	r.Gauge("redoop_dfs_bytes").Set(1024)
	h := r.HistogramBuckets("redoop_task_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE redoop_cache_lookups_total counter",
		`redoop_cache_lookups_total{result="hit"} 7`,
		`redoop_cache_lookups_total{result="miss"} 3`,
		"# TYPE redoop_dfs_bytes gauge",
		"redoop_dfs_bytes 1024",
		"# TYPE redoop_task_seconds histogram",
		`redoop_task_seconds_bucket{le="0.1"} 1`,
		`redoop_task_seconds_bucket{le="1"} 2`,
		`redoop_task_seconds_bucket{le="+Inf"} 3`,
		"redoop_task_seconds_sum 5.55",
		"redoop_task_seconds_count 3",
		"# TYPE redoop_task_seconds_quantile gauge",
		`redoop_task_seconds_quantile{quantile="0.5"}`,
		`redoop_task_seconds_quantile{quantile="0.9"}`,
		`redoop_task_seconds_quantile{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// TYPE line appears once per metric name, not per series.
	if n := strings.Count(out, "# TYPE redoop_cache_lookups_total"); n != 1 {
		t.Errorf("TYPE line count = %d, want 1", n)
	}
	// Deterministic: a second export matches byte-for-byte.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

// TestQuantileLinesOrdered checks the exposed quantile estimates are
// monotone (p50 <= p90 <= p99) and clamped to the observed range.
func TestQuantileLinesOrdered(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{1, 10, 100})
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v % 90))
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p90, p99)
	}
	if p99 > h.Max() || p50 < h.Min() {
		t.Errorf("quantiles leave the observed range: p50=%v p99=%v min=%v max=%v",
			p50, p99, h.Min(), h.Max())
	}
}

// TestWriteQuantileTable checks the stderr table: header, one row per
// histogram series, nothing for an empty or nil registry.
func TestWriteQuantileTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("only_counter").Inc()
	var buf bytes.Buffer
	if err := r.WriteQuantileTable(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("table with no histograms = %q", buf.String())
	}

	r.Histogram("a_seconds", L("phase", "map")).Observe(2)
	r.Histogram("a_seconds", L("phase", "reduce")).Observe(3)
	buf.Reset()
	if err := r.WriteQuantileTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d, want header + 2 rows:\n%s", len(lines), out)
	}
	for _, want := range []string{"p50", "p90", "p99", `a_seconds{phase="map"}`, `a_seconds{phase="reduce"}`} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WriteQuantileTable(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry table: err=%v out=%q", err, buf.String())
	}
}

// TestWriteFilesAtomicCreatesDirs checks the artifact writers create
// missing parent directories and leave no temp files behind.
func TestWriteFilesAtomicCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	r.Counter("c").Inc()
	mpath := filepath.Join(dir, "out", "nested", "metrics.prom")
	if err := r.WriteMetricsFile(mpath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "c 1") {
		t.Errorf("metrics file content = %q", data)
	}

	tr := NewTracer()
	tr.Instant("t", "c", "m", 0)
	tpath := filepath.Join(dir, "traces", "run.trace.json")
	if err := tr.WriteTraceFile(tpath); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	raw, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}

	for _, d := range []string{filepath.Dir(mpath), filepath.Dir(tpath)} {
		ents, err := os.ReadDir(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 1 {
			t.Errorf("%s holds %d entries, want only the artifact", d, len(ents))
		}
	}
}

// TestWriteFileAtomicFailureKeepsOld checks a failing write leaves the
// previous artifact intact.
func TestWriteFileAtomicFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "art.txt")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "good" {
		t.Errorf("artifact = %q after failed rewrite, want %q", data, "good")
	}
}

// TestWriteJSONSnapshot checks the JSON exporter round-trips through
// encoding/json and carries quantiles.
func TestWriteJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "v")).Add(2)
	r.Gauge("g").Set(-3)
	h := r.HistogramBuckets("h", []float64{10, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 2 || snap.Counters[0].Labels["k"] != "v" {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != -3 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Count != 100 || hs.Min != 1 || hs.Max != 100 {
		t.Errorf("histogram stats = %+v", hs)
	}
	if hs.P50 < 30 || hs.P50 > 70 {
		t.Errorf("p50 = %v, want ~50", hs.P50)
	}
	if hs.Buckets[len(hs.Buckets)-1].Le != "+Inf" {
		t.Errorf("last bucket le = %q", hs.Buckets[len(hs.Buckets)-1].Le)
	}
}

// TestWriteTraceJSON checks the Chrome trace document: valid JSON,
// track metadata, complete events with microsecond ts/dur, instant
// events, and nesting-compatible timestamps.
func TestWriteTraceJSON(t *testing.T) {
	tr := NewTracer()
	// recurrence span containing a phase span containing a task span,
	// all on one track — the containment Perfetto renders as nesting.
	tr.Span("query:q1", "recurrence", "recurrence 0", 0, simtime.Time(10*simtime.Millisecond))
	tr.Span("query:q1", "phase", "map pane 3", simtime.Time(simtime.Millisecond), simtime.Time(4*simtime.Millisecond))
	tr.Span("node:2", "task", "map S1P3", simtime.Time(simtime.Millisecond), simtime.Time(2*simtime.Millisecond),
		L("attempt", "1"))
	tr.Instant("query:q1", "adapt", "re-plan", simtime.Time(9*simtime.Millisecond))

	var buf bytes.Buffer
	if err := tr.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 1 process_name + 2 thread_name + 3 spans + 1 instant.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("event count = %d, want 7", len(doc.TraceEvents))
	}
	var spans, instants, meta int
	threadNames := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("span %v has no dur", e["name"])
			}
		case "i":
			instants++
		case "M":
			meta++
			if e["name"] == "thread_name" {
				args := e["args"].(map[string]any)
				threadNames[args["name"].(string)] = true
			}
		}
	}
	if spans != 3 || instants != 1 || meta != 3 {
		t.Errorf("spans/instants/meta = %d/%d/%d", spans, instants, meta)
	}
	if !threadNames["query:q1"] || !threadNames["node:2"] {
		t.Errorf("track names missing: %v", threadNames)
	}
	// The recurrence span: ts 0, dur 10ms == 10000 µs.
	for _, e := range doc.TraceEvents {
		if e["name"] == "recurrence 0" {
			if ts := e["ts"].(float64); ts != 0 {
				t.Errorf("recurrence ts = %v", ts)
			}
			if dur := e["dur"].(float64); dur != 10000 {
				t.Errorf("recurrence dur = %v µs, want 10000", dur)
			}
		}
	}
}

// TestTraceBackwardsSpanClamped checks end<start clamps instead of
// producing a negative duration.
func TestTraceBackwardsSpanClamped(t *testing.T) {
	tr := NewTracer()
	tr.Span("t", "c", "oops", 100, 50)
	ev := tr.Events()[0]
	if ev.End != ev.Start {
		t.Errorf("span not clamped: %+v", ev)
	}
}

// TestNilExporters checks nil registry/tracer still produce valid,
// empty documents.
func TestNilExporters(t *testing.T) {
	var r *Registry
	var tr *Tracer
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry exposition = %q", buf.String())
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := tr.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("nil tracer doc missing traceEvents")
	}
}
