package cluster

import (
	"reflect"
	"testing"

	"redoop/internal/simtime"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{Workers: 4, MapSlots: 6, ReduceSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 0, MapSlots: 1, ReduceSlots: 1},
		{Workers: 1, MapSlots: 0, ReduceSlots: 1},
		{Workers: 1, MapSlots: 1, ReduceSlots: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	def := DefaultConfig()
	if def.Workers != 30 || def.MapSlots != 6 || def.ReduceSlots != 2 {
		t.Errorf("DefaultConfig should mirror the paper's testbed, got %+v", def)
	}
}

func TestNodeAccessors(t *testing.T) {
	c := testCluster(t)
	if c.Node(0) == nil || c.Node(3) == nil {
		t.Fatal("nodes 0..3 should exist")
	}
	if c.Node(-1) != nil || c.Node(4) != nil {
		t.Error("out-of-range nodes should be nil")
	}
	if got := c.NodeIDs(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("NodeIDs = %v", got)
	}
	if c.Node(1).Map.Slots() != 6 || c.Node(1).Reduce.Slots() != 2 {
		t.Error("slot counts wrong")
	}
	if c.Config().Workers != 4 {
		t.Error("Config accessor wrong")
	}
}

func TestLocalFS(t *testing.T) {
	c := testCluster(t)
	n := c.Node(0)
	n.PutLocal("cache/S1P1", []byte("data1"))
	n.PutLocal("cache/S1P2", []byte("data22"))
	n.PutLocal("spill/x", []byte("y"))

	if got, ok := n.GetLocal("cache/S1P1"); !ok || string(got) != "data1" {
		t.Errorf("GetLocal = %q, %v", got, ok)
	}
	if _, ok := n.GetLocal("missing"); ok {
		t.Error("missing key should not be found")
	}
	if !n.HasLocal("cache/S1P2") || n.HasLocal("cache/S1P3") {
		t.Error("HasLocal wrong")
	}
	if n.LocalSize("cache/S1P2") != 6 || n.LocalSize("missing") != -1 {
		t.Error("LocalSize wrong")
	}
	if got := n.LocalKeys("cache/"); !reflect.DeepEqual(got, []string{"cache/S1P1", "cache/S1P2"}) {
		t.Errorf("LocalKeys = %v", got)
	}
	if n.LocalBytes() != 5+6+1 {
		t.Errorf("LocalBytes = %d, want 12", n.LocalBytes())
	}
	n.DeleteLocal("cache/S1P1")
	if n.HasLocal("cache/S1P1") {
		t.Error("deleted key still present")
	}
	n.DeleteLocal("cache/S1P1") // idempotent
}

func TestPutLocalCopies(t *testing.T) {
	c := testCluster(t)
	n := c.Node(0)
	buf := []byte("abc")
	n.PutLocal("k", buf)
	buf[0] = 'z'
	if got, _ := n.GetLocal("k"); string(got) != "abc" {
		t.Error("PutLocal must copy its input")
	}
	got, _ := n.GetLocal("k")
	got[0] = 'q'
	if again, _ := n.GetLocal("k"); string(again) != "abc" {
		t.Error("GetLocal must return a copy")
	}
}

func TestLoadAccrual(t *testing.T) {
	c := testCluster(t)
	n := c.Node(2)
	n.AddLoad(3 * simtime.Second)
	n.AddLoad(2 * simtime.Second)
	if got := n.Load(); got != 5*simtime.Second {
		t.Errorf("Load = %v, want 5s", got)
	}
}

func TestFailNodeLosesLocalState(t *testing.T) {
	c := testCluster(t)
	n := c.Node(1)
	n.PutLocal("cache/x", []byte("v"))
	c.FailNode(1)
	if n.Alive() {
		t.Error("failed node should be dead")
	}
	if n.HasLocal("cache/x") {
		t.Error("local data must be lost on node failure")
	}
	n.PutLocal("cache/y", []byte("v"))
	if n.HasLocal("cache/y") {
		t.Error("writes to a dead node must be dropped")
	}
	if got := len(c.AliveNodes()); got != 3 {
		t.Errorf("AliveNodes = %d, want 3", got)
	}
}

func TestReviveNode(t *testing.T) {
	c := testCluster(t)
	c.Node(1).Map.Acquire(0, 100)
	c.FailNode(1)
	c.ReviveNode(1, simtime.Time(500))
	n := c.Node(1)
	if !n.Alive() {
		t.Error("revived node should be alive")
	}
	if got := n.Map.EarliestFree(); got != 500 {
		t.Errorf("revived node slots should free at 500, got %v", got)
	}
}

func TestDropLocal(t *testing.T) {
	c := testCluster(t)
	n := c.Node(0)
	n.PutLocal("cache/a", []byte("1"))
	n.PutLocal("cache/b", []byte("2"))
	n.PutLocal("other", []byte("3"))
	if got := c.DropLocal(0, "cache/"); got != 2 {
		t.Errorf("DropLocal = %d, want 2", got)
	}
	if !n.HasLocal("other") {
		t.Error("non-matching key should survive")
	}
	if c.DropLocal(99, "x") != 0 {
		t.Error("DropLocal on a bad node should be 0")
	}
}
