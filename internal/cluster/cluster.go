// Package cluster simulates the shared-nothing compute cluster Redoop
// runs on: a set of worker (slave) nodes, each with a fixed number of
// map and reduce task slots, a local file system for intermediate data
// and window-aware caches, and an accumulated-load metric used by the
// cache-aware scheduler's Equation 4.
//
// The paper's testbed is 30 slave nodes plus one master, each worker
// configured for up to 6 concurrent map tasks and 2 concurrent reduce
// tasks; DefaultConfig mirrors that.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"redoop/internal/simtime"
)

// Config parameterizes a cluster.
type Config struct {
	// Workers is the number of slave nodes (IDs 0..Workers-1).
	Workers int
	// MapSlots is the number of concurrent map tasks per node.
	MapSlots int
	// ReduceSlots is the number of concurrent reduce tasks per node.
	ReduceSlots int
}

// DefaultConfig mirrors the paper's testbed: 30 workers, 6 map slots and
// 2 reduce slots each.
func DefaultConfig() Config {
	return Config{Workers: 30, MapSlots: 6, ReduceSlots: 2}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("cluster: need at least one worker, got %d", c.Workers)
	}
	if c.MapSlots <= 0 {
		return fmt.Errorf("cluster: map slots must be positive, got %d", c.MapSlots)
	}
	if c.ReduceSlots <= 0 {
		return fmt.Errorf("cluster: reduce slots must be positive, got %d", c.ReduceSlots)
	}
	return nil
}

// Node is one worker. Its slot timelines are manipulated by the
// MapReduce engine during job simulation; its local file system holds
// map spills and Redoop's window-aware caches.
type Node struct {
	ID     int
	Map    *simtime.Timeline
	Reduce *simtime.Timeline

	mu    sync.Mutex
	local map[string][]byte
	busy  simtime.Duration
	alive bool
}

// Alive reports whether the node is up.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// AddLoad accrues busy time onto the node's load metric.
func (n *Node) AddLoad(d simtime.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.busy += d
}

// Load returns the node's accumulated busy time — the Load_i term of
// the paper's Equation 4.
func (n *Node) Load() simtime.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.busy
}

// PutLocal stores bytes on the node's local file system.
func (n *Node) PutLocal(key string, data []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return // writes to a dead node are lost
	}
	n.local[key] = append([]byte(nil), data...)
}

// GetLocal retrieves bytes from the node's local file system.
func (n *Node) GetLocal(key string) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	d, ok := n.local[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// HasLocal reports whether a key is present.
func (n *Node) HasLocal(key string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.local[key]
	return ok
}

// LocalSize returns the stored size of a key, or -1 if absent.
func (n *Node) LocalSize(key string) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	d, ok := n.local[key]
	if !ok {
		return -1
	}
	return int64(len(d))
}

// DeleteLocal removes a key; removing an absent key is a no-op (purges
// may race with failures).
func (n *Node) DeleteLocal(key string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.local, key)
}

// LocalKeys returns the node's local keys with the given prefix, sorted.
func (n *Node) LocalKeys(prefix string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for k := range n.local {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// LocalBytes returns the total bytes on the node's local file system.
func (n *Node) LocalBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total int64
	for _, d := range n.local {
		total += int64(len(d))
	}
	return total
}

// Cluster is the set of worker nodes. It is safe for concurrent use at
// the node-state level; slot timelines are owned by the single-threaded
// job simulation.
type Cluster struct {
	cfg   Config
	nodes []*Node
}

// New builds a cluster with all nodes alive and idle.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		c.nodes = append(c.nodes, &Node{
			ID:     i,
			Map:    simtime.NewTimeline(cfg.MapSlots),
			Reduce: simtime.NewTimeline(cfg.ReduceSlots),
			local:  make(map[string][]byte),
			alive:  true,
		})
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Node returns the node with the given ID, or nil if out of range.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// Nodes returns all nodes in ID order (including dead ones).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// AliveNodes returns the alive nodes in ID order.
func (c *Cluster) AliveNodes() []*Node {
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.Alive() {
			out = append(out, n)
		}
	}
	return out
}

// NodeIDs returns the IDs of all configured nodes.
func (c *Cluster) NodeIDs() []int {
	ids := make([]int, len(c.nodes))
	for i := range c.nodes {
		ids[i] = i
	}
	return ids
}

// FailNode marks a node dead and discards its local file system (map
// spills and caches are written only to local disk, so a node failure
// loses them — the failure case Redoop's recovery handles, §5).
func (c *Cluster) FailNode(id int) {
	n := c.Node(id)
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
	n.local = make(map[string][]byte)
}

// ReviveNode brings a failed node back, empty and idle from the given
// virtual instant.
func (c *Cluster) ReviveNode(id int, at simtime.Time) {
	n := c.Node(id)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.alive = true
	n.local = make(map[string][]byte)
	n.mu.Unlock()
	n.Map.Reset(at)
	n.Reduce.Reset(at)
}

// DropLocal removes every local key with the given prefix from a node,
// returning how many entries were dropped. The fault-tolerance
// experiment (Fig. 9) uses this to inject cache loss without killing
// the node.
func (c *Cluster) DropLocal(id int, prefix string) int {
	n := c.Node(id)
	if n == nil {
		return 0
	}
	keys := n.LocalKeys(prefix)
	for _, k := range keys {
		n.DeleteLocal(k)
	}
	return len(keys)
}
