package lineage

import (
	"reflect"
	"strings"
	"testing"
)

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if seq := s.RecordBatch("q", "S1", 3, nil); seq != -1 {
		t.Fatalf("nil RecordBatch = %d, want -1", seq)
	}
	s.RecordPlan("fp", Plan{})
	s.RecordDerivation(Derivation{ID: "x"})
	s.AddCopy("x", CopyEvent{})
	s.MarkExpired("x", 0)
	s.MarkLost("x", 1, 0)
	s.RecordAttempt(Attempt{Job: "j"})
	s.RecordFault(Fault{})
	s.RecordFileEvent("p", FileEvent{})
	if _, ok := s.Lookup("x"); ok {
		t.Fatal("nil Lookup found something")
	}
	if got := s.Closure(nil); got != nil {
		t.Fatalf("nil Closure = %v", got)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if _, ok := s.Trace("x"); ok {
		t.Fatal("nil Trace found something")
	}
}

func TestDerivationLifecycleAndClosure(t *testing.T) {
	s := New(0)
	s.RecordBatch("q", "S1", 10, []PaneRange{{Pane: 0, R: Range{0, 10}}})
	s.RecordBatch("q", "S1", 5, []PaneRange{{Pane: 1, R: Range{0, 5}}})

	rinID := DerivID("query/q/S1/u900/P0/r3", 0)
	batches := s.BatchesForPane("q", "S1", 0)
	if len(batches) != 1 || batches[0].Ranges[0] != (Range{0, 10}) {
		t.Fatalf("BatchesForPane = %+v", batches)
	}
	rebuilt, _ := s.RecordDerivation(Derivation{
		ID: rinID, Kind: "pane-rin", Query: "q", Pane: 0, Batches: batches,
	})
	if rebuilt {
		t.Fatal("first build reported as rebuild")
	}
	s.AddCopy(rinID, CopyEvent{Kind: "register", Node: 2, AtNS: 100})

	routID := DerivID("query/q/P0/r3", 1)
	seq, _ := s.Seq(rinID)
	s.RecordDerivation(Derivation{
		ID: routID, Kind: "pane-rout", Query: "q", Pane: 0,
		Inputs: []InputRef{{ID: rinID, Seq: seq}},
	})
	if d, _ := s.Lookup(rinID); len(d.Consumers) != 1 || d.Consumers[0] != routID {
		t.Fatalf("consumer edge missing: %+v", d.Consumers)
	}

	resident := []ResidentRef{{ID: rinID, Node: 2}, {ID: routID, Node: 2}}
	if bad := s.Closure(resident); len(bad) != 0 {
		t.Fatalf("closure violations: %v", bad)
	}
	if bad := s.Closure([]ResidentRef{{ID: "ghost"}}); len(bad) != 1 ||
		!strings.Contains(bad[0], "no derivation") {
		t.Fatalf("ghost resident not flagged: %v", bad)
	}

	// Loss then rebuild: cause comes from the recorded fault.
	s.RecordFault(Fault{Kind: "node-crash", Node: 2, Recurrence: 4, AtNS: 500})
	cause := s.MarkLost(rinID, 2, 600)
	if !strings.Contains(cause, "node-crash") {
		t.Fatalf("MarkLost cause = %q", cause)
	}
	rebuilt, cause2 := s.RecordDerivation(Derivation{
		ID: rinID, Kind: "pane-rin", Query: "q", Pane: 0, Recurrence: 4, Batches: batches,
	})
	if !rebuilt || !strings.Contains(cause2, "node-crash") {
		t.Fatalf("rebuild = %v cause = %q", rebuilt, cause2)
	}
	if st := s.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}

	tr, ok := s.Trace(routID)
	if !ok {
		t.Fatal("Trace failed")
	}
	foundBatch := false
	for _, n := range tr.Nodes {
		if n.Kind == "batch" {
			foundBatch = true
		}
	}
	if !foundBatch {
		t.Fatalf("trace misses raw batch ancestors: %+v", tr.Nodes)
	}
	if dot := tr.DOT(); !strings.Contains(dot, "digraph lineage") {
		t.Fatalf("DOT output malformed: %s", dot)
	}
}

// Two engines running a same-named query against one shared store
// collide on derivation IDs (IDs embed the raw query name) while
// keeping distinct accounting names. That collision is an alias, not
// a recovery rebuild: the node is re-homed to the latest writer and
// neither Builds nor the rebuild counter moves.
func TestAliasedWriteIsNotARebuild(t *testing.T) {
	s := New(0)
	id := DerivID("query/q1/P0/r0", 1)
	s.RecordDerivation(Derivation{ID: id, Kind: "pane-rout", Query: "q1", Bytes: 10})
	s.AddCopy(id, CopyEvent{Kind: "register", Node: 1, AtNS: 50})

	rebuilt, cause := s.RecordDerivation(Derivation{ID: id, Kind: "pane-rout", Query: "q1#2", Bytes: 12})
	if rebuilt || cause != "" {
		t.Fatalf("alias write reported as rebuild (%v, %q)", rebuilt, cause)
	}
	d, ok := s.Lookup(id)
	if !ok {
		t.Fatal("derivation lost after alias write")
	}
	if d.Query != "q1#2" || d.Bytes != 12 {
		t.Fatalf("node not re-homed: query %q bytes %d", d.Query, d.Bytes)
	}
	if d.Builds != 1 {
		t.Fatalf("Builds = %d after alias write, want 1", d.Builds)
	}
	if len(d.Copies) != 1 {
		t.Fatalf("copy history dropped on re-home: %+v", d.Copies)
	}
	if st := s.Stats(); st.Rebuilds != 0 {
		t.Fatalf("Rebuilds = %d after alias write, want 0", st.Rebuilds)
	}

	// A second write from the now-owning query IS a rebuild.
	rebuilt, _ = s.RecordDerivation(Derivation{ID: id, Kind: "pane-rout", Query: "q1#2", Bytes: 12})
	if !rebuilt {
		t.Fatal("same-query re-record not counted as rebuild")
	}
	if st := s.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}
}

func TestBoundedEvictionKeepsResidentNodes(t *testing.T) {
	s := New(4)
	for i := 0; i < 10; i++ {
		id := DerivID("p", i)
		s.RecordDerivation(Derivation{ID: id, Kind: "pane-rin", Query: "q"})
		if i < 8 {
			s.MarkExpired(id, int64(i))
		}
	}
	st := s.Stats()
	if st.Nodes > 4+2 { // the two resident nodes may hold the line
		t.Fatalf("store exceeded bound: %d nodes", st.Nodes)
	}
	// Resident (unexpired) derivations must survive eviction.
	for i := 8; i < 10; i++ {
		if _, ok := s.Lookup(DerivID("p", i)); !ok {
			t.Fatalf("resident derivation %d evicted", i)
		}
	}
	if s.Watermark() == 0 {
		t.Fatal("eviction did not advance the watermark")
	}
	// A reference below the watermark counts as evicted, not missing.
	evictedSeq := uint64(1)
	s.RecordDerivation(Derivation{
		ID: "consumer", Kind: "window", Query: "q",
		Inputs: []InputRef{{ID: DerivID("p", 0), Seq: evictedSeq}},
	})
	if bad := s.Closure(nil); len(bad) != 0 {
		t.Fatalf("evicted input flagged as violation: %v", bad)
	}
}

func TestFingerprintInjectivityViolationSurfacesInClosure(t *testing.T) {
	s := New(0)
	s.RecordPlan("samefp", Plan{Reduce: "a"})
	s.RecordPlan("samefp", Plan{Reduce: "b"})
	bad := s.Closure(nil)
	if len(bad) != 1 || !strings.Contains(bad[0], "two plans") {
		t.Fatalf("collision not surfaced: %v", bad)
	}
}

func TestSnapshotDeepEqualAndIndependence(t *testing.T) {
	build := func() *Store {
		s := New(0)
		s.RecordBatch("q", "S1", 3, []PaneRange{{Pane: 0, R: Range{0, 3}}})
		s.RecordPlan("fp", Plan{Reduce: "r"})
		s.RecordDerivation(Derivation{ID: "a", Kind: "pane-rin", Query: "q",
			Batches: s.BatchesForPane("q", "S1", 0)})
		s.AddCopy("a", CopyEvent{Kind: "register", Node: 1, AtNS: 10})
		s.RecordAttempt(Attempt{Job: "j", Task: "t", Phase: "map", Node: 1, OK: true})
		s.RecordFileEvent("/data/f", FileEvent{Kind: "place", Nodes: []int{1, 2}})
		return s
	}
	a, b := build().Snapshot(), build().Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical construction produced unequal snapshots:\n%+v\nvs\n%+v", a, b)
	}
	// The snapshot must be a deep copy: mutating it must not leak back.
	a.Derivations[0].Consumers = append(a.Derivations[0].Consumers, "x")
	s := build()
	snap := s.Snapshot()
	snap.Derivations[0].Batches[0].Ranges[0].Hi = 99
	if d, _ := s.Lookup("a"); d.Batches[0].Ranges[0].Hi == 99 {
		t.Fatal("snapshot aliases store memory")
	}
}

// TestBatchEvictionFloorHonorsLiveClaims is the regression test for a
// silent provenance hole: the batch bound used to evict the oldest
// batch unconditionally, and when a live derivation still claimed it,
// the floor advance made Closure treat the claim as a legitimate
// eviction — the audit trail lied. Claimed batches must hold the
// eviction line until the claim expires.
func TestBatchEvictionFloorHonorsLiveClaims(t *testing.T) {
	s := New(4)
	s.RecordBatch("q", "S1", 1, []PaneRange{{Pane: 0, R: Range{0, 1}}})
	claims := s.BatchesForPane("q", "S1", 0)
	if len(claims) != 1 {
		t.Fatalf("claims = %+v", claims)
	}
	s.RecordDerivation(Derivation{ID: "d0", Kind: "pane-rin", Query: "q", Pane: 0, Batches: claims})

	// Push well past the bound: the oldest batch is claimed, so the
	// bound must stop at it rather than punch a hole under d0.
	for i := 0; i < 10; i++ {
		s.RecordBatch("q", "S1", 1, nil)
	}
	st := s.Stats()
	if st.Evicted != 0 {
		t.Fatalf("evicted %d batches past a live claim", st.Evicted)
	}
	if st.Batches != 11 {
		t.Fatalf("Batches = %d, want all 11 retained while the claim is live", st.Batches)
	}
	if bad := s.Closure([]ResidentRef{{ID: "d0"}}); len(bad) != 0 {
		t.Fatalf("closure violations with claimed batch retained: %v", bad)
	}

	// Once the claim expires the bound resumes on the next ingest.
	s.MarkExpired("d0", 100)
	s.RecordBatch("q", "S1", 1, nil)
	st = s.Stats()
	if st.Batches != 4 {
		t.Fatalf("Batches = %d after claim expiry, want cap 4", st.Batches)
	}
	if st.Evicted != 8 {
		t.Fatalf("Evicted = %d, want 8", st.Evicted)
	}

	// A rebuild that re-records the derivation shifts its claims, not
	// leaks them: expiring the rebuild must leave no residual claim.
	s.RecordBatch("q2", "S1", 1, []PaneRange{{Pane: 0, R: Range{0, 1}}})
	c2 := s.BatchesForPane("q2", "S1", 0)
	s.RecordDerivation(Derivation{ID: "d2", Kind: "pane-rin", Query: "q2", Pane: 0, Batches: c2})
	s.RecordDerivation(Derivation{ID: "d2", Kind: "pane-rin", Query: "q2", Pane: 0, Batches: c2})
	s.MarkLost("d2", 1, 200)
	if n := s.batchClaims[BatchID("q2", "S1", 0)]; n != 0 {
		t.Fatalf("claim count leaked across rebuild: %d", n)
	}
}
