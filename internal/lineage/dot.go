package lineage

import (
	"fmt"
	"sort"
	"strings"
)

// TraceNode is one node of a rendered derivation DAG.
type TraceNode struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // batch | pane-rin | pane-rout | tuple-rout | window
	Label string `json:"label"`
	// Depth is the BFS distance from the trace root (negative for
	// ancestors, positive for descendants, 0 for the root).
	Depth int `json:"depth"`
}

// TraceEdge is one directed derivation edge (producer -> consumer),
// carrying the consumer's modeled build cost for display.
type TraceEdge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	CostNS int64  `json:"costNS,omitempty"`
}

// Trace is a derivation DAG rooted at one node: ancestors back to raw
// batches, descendants forward to emitted windows.
type Trace struct {
	Root  string      `json:"root"`
	Nodes []TraceNode `json:"nodes"`
	Edges []TraceEdge `json:"edges"`
}

// Trace walks the DAG around id: upstream through Inputs and Batches,
// downstream through Consumers. Returns ok=false when id is not
// retained.
func (s *Store) Trace(id string) (Trace, bool) {
	if s == nil {
		return Trace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	root, ok := s.derivs[id]
	if !ok {
		return Trace{}, false
	}
	tr := Trace{Root: id}
	seen := map[string]bool{}
	add := func(n TraceNode) {
		if !seen[n.ID] {
			seen[n.ID] = true
			tr.Nodes = append(tr.Nodes, n)
		}
	}
	label := derivLabel
	add(TraceNode{ID: id, Kind: root.Kind, Label: label(root), Depth: 0})

	// Ancestors: BFS through inputs and batch claims.
	type qe struct {
		id    string
		depth int
	}
	queue := []qe{{id, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d, ok := s.derivs[cur.id]
		if !ok {
			continue
		}
		for _, in := range d.Inputs {
			tr.Edges = append(tr.Edges, TraceEdge{From: in.ID, To: cur.id, CostNS: d.CostNS})
			up, ok := s.derivs[in.ID]
			if !ok {
				add(TraceNode{ID: in.ID, Kind: "evicted", Label: in.ID + " (evicted)", Depth: cur.depth - 1})
				continue
			}
			if !seen[in.ID] {
				add(TraceNode{ID: in.ID, Kind: up.Kind, Label: label(up), Depth: cur.depth - 1})
				queue = append(queue, qe{in.ID, cur.depth - 1})
			}
		}
		for _, b := range d.Batches {
			bid := BatchID(d.Query, b.Source, b.Seq)
			tr.Edges = append(tr.Edges, TraceEdge{From: bid, To: cur.id, CostNS: d.CostNS})
			if seen[bid] {
				continue
			}
			lbl := bid + " (evicted)"
			if batch, ok := s.batches[bid]; ok {
				lbl = fmt.Sprintf("batch %s/%s #%d (%d records)", batch.Query, batch.Source, batch.Seq, batch.Records)
			}
			add(TraceNode{ID: bid, Kind: "batch", Label: lbl, Depth: cur.depth - 1})
		}
	}

	// Descendants: BFS through consumers.
	queue = []qe{{id, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d, ok := s.derivs[cur.id]
		if !ok {
			continue
		}
		for _, c := range d.Consumers {
			down, ok := s.derivs[c]
			cost := int64(0)
			if ok {
				cost = down.CostNS
			}
			tr.Edges = append(tr.Edges, TraceEdge{From: cur.id, To: c, CostNS: cost})
			if seen[c] {
				continue
			}
			if !ok {
				add(TraceNode{ID: c, Kind: "evicted", Label: c + " (evicted)", Depth: cur.depth + 1})
				continue
			}
			add(TraceNode{ID: c, Kind: down.Kind, Label: label(down), Depth: cur.depth + 1})
			queue = append(queue, qe{c, cur.depth + 1})
		}
	}

	// Deduplicate edges (a node reached from both directions would
	// re-walk its edges) and order deterministically.
	dedup := map[string]TraceEdge{}
	for _, e := range tr.Edges {
		dedup[e.From+"->"+e.To] = e
	}
	tr.Edges = tr.Edges[:0]
	keys := make([]string, 0, len(dedup))
	for k := range dedup {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tr.Edges = append(tr.Edges, dedup[k])
	}
	return tr, true
}

// derivLabel is the human-readable one-liner traces render per node.
func derivLabel(d *Derivation) string {
	state := "resident"
	if d.Expired {
		state = "expired"
	}
	return fmt.Sprintf("%s %s r%d pane %d part %d (%d B, builds %d, %s)",
		d.Kind, d.Query, d.Recurrence, d.Pane, d.Part, d.Bytes, d.Builds, state)
}

// Graph renders the whole retained DAG as a Trace (no root), optionally
// filtered: a non-empty query narrows to one query's derivations,
// pane >= 0 to one pane's (windows carry no pane and are excluded), a
// non-empty fp to one plan fingerprint's. Claimed batches of included
// derivations appear as batch nodes; derivation-to-derivation edges are
// kept only between included nodes.
func (s *Store) Graph(query string, pane int64, fp string) Trace {
	if s == nil {
		return Trace{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var tr Trace
	included := map[string]bool{}
	for _, id := range s.order {
		d := s.derivs[id]
		if query != "" && d.Query != query {
			continue
		}
		if pane >= 0 && (d.Kind == "window" || d.Pane != pane) {
			continue
		}
		if fp != "" && d.Fingerprint != fp {
			continue
		}
		included[id] = true
		tr.Nodes = append(tr.Nodes, TraceNode{ID: id, Kind: d.Kind, Label: derivLabel(d)})
	}
	seenBatch := map[string]bool{}
	for _, id := range s.order {
		if !included[id] {
			continue
		}
		d := s.derivs[id]
		for _, in := range d.Inputs {
			if included[in.ID] {
				tr.Edges = append(tr.Edges, TraceEdge{From: in.ID, To: id, CostNS: d.CostNS})
			}
		}
		for _, b := range d.Batches {
			bid := BatchID(d.Query, b.Source, b.Seq)
			if !seenBatch[bid] {
				seenBatch[bid] = true
				lbl := bid + " (evicted)"
				if batch, ok := s.batches[bid]; ok {
					lbl = fmt.Sprintf("batch %s/%s #%d (%d records)",
						batch.Query, batch.Source, batch.Seq, batch.Records)
				}
				tr.Nodes = append(tr.Nodes, TraceNode{ID: bid, Kind: "batch", Label: lbl})
			}
			tr.Edges = append(tr.Edges, TraceEdge{From: bid, To: id, CostNS: d.CostNS})
		}
	}
	return tr
}

// DOT renders a trace as a Graphviz digraph.
func (t Trace) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lineage {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	esc := func(s string) string { return strings.ReplaceAll(s, `"`, `\"`) }
	for _, n := range t.Nodes {
		attrs := ""
		switch n.Kind {
		case "batch":
			attrs = ", style=filled, fillcolor=lightyellow"
		case "window":
			attrs = ", style=filled, fillcolor=lightblue"
		case "evicted":
			attrs = ", style=dashed"
		}
		if n.ID == t.Root {
			attrs += ", penwidth=2"
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\"%s];\n", n.ID, esc(n.Label), attrs)
	}
	for _, e := range t.Edges {
		if e.CostNS > 0 {
			fmt.Fprintf(&b, "  %q -> %q [label=\"%dns\", fontsize=8];\n", e.From, e.To, e.CostNS)
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
