package lineage

import (
	"testing"
)

func basePlan() Plan {
	return Plan{
		WindowKind: "time",
		WinUnits:   3600, SlideUnits: 900, PaneUnits: 900,
		Sources: []PlanSource{
			{Name: "S1", CacheKey: "clicks", Map: "redoop/internal/queries.wordMap"},
		},
		Combine:     "redoop/internal/queries.sumReduce",
		Reduce:      "redoop/internal/queries.sumReduce",
		Merge:       "-",
		Partition:   "-",
		NumReducers: 20,
	}
}

// TestFingerprintNearMiss asserts near-miss plans — same operator set,
// one knob changed — fingerprint distinctly, and that equal plans
// fingerprint equally.
func TestFingerprintNearMiss(t *testing.T) {
	base := basePlan()
	fp := Fingerprint(base)
	if fp != Fingerprint(basePlan()) {
		t.Fatalf("equal plans produced unequal fingerprints")
	}
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a hex sha256", fp)
	}

	mutations := map[string]func(*Plan){
		"pane size":        func(p *Plan) { p.PaneUnits = 450 },
		"window size":      func(p *Plan) { p.WinUnits = 7200 },
		"slide":            func(p *Plan) { p.SlideUnits = 1800 },
		"window kind":      func(p *Plan) { p.WindowKind = "count" },
		"combiner dropped": func(p *Plan) { p.Combine = "-" },
		"combiner changed": func(p *Plan) { p.Combine = "redoop/internal/queries.maxReduce" },
		"reduce changed":   func(p *Plan) { p.Reduce = "redoop/internal/queries.maxReduce" },
		"merge added":      func(p *Plan) { p.Merge = "redoop/internal/queries.mergeTopK" },
		"partitioner":      func(p *Plan) { p.Partition = "custom" },
		"reducer arity":    func(p *Plan) { p.NumReducers = 10 },
		"source map":       func(p *Plan) { p.Sources[0].Map = "redoop/internal/queries.joinMap" },
		"source key type":  func(p *Plan) { p.Sources[0].CacheKey = "views" },
		"source name":      func(p *Plan) { p.Sources[0].Name = "S2" },
		"second source": func(p *Plan) {
			p.Sources = append(p.Sources, PlanSource{Name: "S2", Map: "m"})
		},
	}
	seen := map[string]string{fp: "base"}
	for name, mutate := range mutations {
		p := basePlan()
		mutate(&p)
		got := Fingerprint(p)
		if prev, dup := seen[got]; dup {
			t.Errorf("near-miss %q collides with %q (fingerprint %s)", name, prev, got)
		}
		seen[got] = name
	}
}

// TestFingerprintNoFieldConcatAmbiguity guards the length-prefixed
// encoding: moving a suffix between adjacent fields must change the
// fingerprint.
func TestFingerprintNoFieldConcatAmbiguity(t *testing.T) {
	a := basePlan()
	a.Combine = "ab"
	a.Reduce = "c"
	b := basePlan()
	b.Combine = "a"
	b.Reduce = "bc"
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatalf("field concatenation ambiguity: %q/%q vs %q/%q collide",
			a.Combine, a.Reduce, b.Combine, b.Reduce)
	}
}

// FuzzPlanFingerprint asserts the fingerprint function never panics
// and that structurally equal plans always fingerprint equally.
func FuzzPlanFingerprint(f *testing.F) {
	f.Add("time", int64(3600), int64(900), int64(900), "S1", "k", "m", "c", "r", "g", "p", 20)
	f.Add("count", int64(0), int64(-1), int64(1), "", "", "", "", "", "", "", 0)
	f.Add("x", int64(1<<62), int64(7), int64(13), "a;b", "3:", "|", `"`, "\x00", "é", ";", -5)
	f.Fuzz(func(t *testing.T, kind string, win, slide, pane int64,
		src, key, mp, combine, reduce, merge, part string, reducers int) {
		p := Plan{
			WindowKind: kind, WinUnits: win, SlideUnits: slide, PaneUnits: pane,
			Sources: []PlanSource{{Name: src, CacheKey: key, Map: mp}},
			Combine: combine, Reduce: reduce, Merge: merge, Partition: part,
			NumReducers: reducers,
		}
		fp1 := Fingerprint(p)
		q := Plan{
			WindowKind: kind, WinUnits: win, SlideUnits: slide, PaneUnits: pane,
			Sources: []PlanSource{{Name: src, CacheKey: key, Map: mp}},
			Combine: combine, Reduce: reduce, Merge: merge, Partition: part,
			NumReducers: reducers,
		}
		if fp2 := Fingerprint(q); fp1 != fp2 {
			t.Fatalf("equal plans fingerprint unequally: %s vs %s", fp1, fp2)
		}
		if len(fp1) != 64 {
			t.Fatalf("fingerprint %q is not 64 hex chars", fp1)
		}
	})
}

// TestOpFingerprintGeometryIndependent pins the reuse-index matching
// key's contract: window geometry and source *names* are excluded —
// two queries over the same shared stream with the same operators
// match regardless of win/slide — while everything that changes pane
// bytes (operators, CacheKey, arity, window kind) still separates.
func TestOpFingerprintGeometryIndependent(t *testing.T) {
	base := basePlan()
	op := OpFingerprint(base)
	if len(op) != 64 {
		t.Fatalf("op fingerprint %q is not a hex sha256", op)
	}
	if op == Fingerprint(base) {
		t.Fatalf("op fingerprint must be domain-separated from the plan fingerprint")
	}

	ignored := map[string]func(*Plan){
		"window size": func(p *Plan) { p.WinUnits = 7200 },
		"slide":       func(p *Plan) { p.SlideUnits = 1800 },
		"pane size":   func(p *Plan) { p.PaneUnits = 450 },
		"source name": func(p *Plan) { p.Sources[0].Name = "S2" },
	}
	for name, mutate := range ignored {
		p := basePlan()
		mutate(&p)
		if got := OpFingerprint(p); got != op {
			t.Errorf("%s changed the op fingerprint; reuse would never match across geometries", name)
		}
		if Fingerprint(p) == Fingerprint(base) {
			t.Errorf("%s must still change the full plan fingerprint", name)
		}
	}

	separated := map[string]func(*Plan){
		"window kind":      func(p *Plan) { p.WindowKind = "count" },
		"combiner dropped": func(p *Plan) { p.Combine = "-" },
		"reduce changed":   func(p *Plan) { p.Reduce = "redoop/internal/queries.maxReduce" },
		"merge added":      func(p *Plan) { p.Merge = "redoop/internal/queries.mergeTopK" },
		"partitioner":      func(p *Plan) { p.Partition = "custom" },
		"reducer arity":    func(p *Plan) { p.NumReducers = 10 },
		"source map":       func(p *Plan) { p.Sources[0].Map = "redoop/internal/queries.joinMap" },
		"cache key":        func(p *Plan) { p.Sources[0].CacheKey = "views" },
		"second source": func(p *Plan) {
			p.Sources = append(p.Sources, PlanSource{Name: "S2", Map: "m"})
		},
	}
	seen := map[string]string{op: "base"}
	for name, mutate := range separated {
		p := basePlan()
		mutate(&p)
		got := OpFingerprint(p)
		if prev, dup := seen[got]; dup {
			t.Errorf("op-fingerprint near-miss %q collides with %q", name, prev)
		}
		seen[got] = name
	}
}
