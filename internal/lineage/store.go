package lineage

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultCap is the default bound on retained derivations (and on
// retained batches per store). Expired derivations beyond the bound
// are evicted oldest-first; the eviction watermark lets closure checks
// distinguish "evicted" from "missing".
const DefaultCap = 8192

// Range is a half-open record-index range [Lo, Hi) within one batch.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// PaneRange attributes one contiguous index run of a batch to a pane.
// A batch whose records interleave panes (late data, delayed delivery)
// carries several runs per pane.
type PaneRange struct {
	Pane int64 `json:"pane"`
	R    Range `json:"r"`
}

// Batch is one serial Engine.Ingest call: which source delivered it,
// its per-source sequence number, and which index runs landed in which
// pane.
type Batch struct {
	Query   string      `json:"query"`
	Source  string      `json:"source"`
	Seq     int         `json:"seq"`
	Records int         `json:"records"`
	Panes   []PaneRange `json:"panes"`
}

// BatchRef is a derivation's claim on part of a batch: the referenced
// record-index ranges, in run order.
type BatchRef struct {
	Source string  `json:"source"`
	Seq    int     `json:"seq"`
	Ranges []Range `json:"ranges"`
}

// InputRef points a derivation at an upstream derivation, carrying the
// target's insertion sequence so closure checks can tell a legitimately
// evicted input from a bookkeeping hole.
type InputRef struct {
	ID  string `json:"id"`
	Seq uint64 `json:"seq"`
}

// Attempt is one task attempt's provenance: which job/task ran where,
// when (virtual time), and whether it was the winning attempt.
type Attempt struct {
	Job     string `json:"job"`
	Task    string `json:"task"`
	Phase   string `json:"phase"`
	Node    int    `json:"node"`
	Attempt int    `json:"attempt"`
	OK      bool   `json:"ok"`
	StartNS int64  `json:"startNS"`
	EndNS   int64  `json:"endNS"`
}

// CopyEvent is one step of a cache copy's history: registration,
// re-homing to another node, a consumer hit, a cross-query reuse copy,
// loss discovery, or retirement.
type CopyEvent struct {
	// Kind is register | rehome | hit | reuse | lost | expire.
	Kind string `json:"kind"`
	Node int    `json:"node"`
	// From is the previous home on a rehome (0 otherwise).
	From int   `json:"from,omitempty"`
	AtNS int64 `json:"atNS"`
}

// FileEvent is one step of a DFS file's replica history: the initial
// replica placement or a failure-driven re-replication.
type FileEvent struct {
	// Kind is place | rereplicate.
	Kind string `json:"kind"`
	// Nodes is the replica set after the event (block 0).
	Nodes []int `json:"nodes"`
	// Lost is the failed node on a rereplicate (0 otherwise).
	Lost int   `json:"lost,omitempty"`
	AtNS int64 `json:"atNS"`
}

// Fault is one applied chaos action, recorded so rebuilds can name
// their cause.
type Fault struct {
	Kind       string `json:"kind"`
	Node       int    `json:"node"`
	Path       string `json:"path,omitempty"`
	Recurrence int    `json:"recurrence"`
	AtNS       int64  `json:"atNS"`
}

// Derivation is one provenance node: a cached pane segment (reduce
// input or output), a join tuple output, or an emitted window.
type Derivation struct {
	// ID is the node's stable identity: DerivID(pid, typ) for caches,
	// WindowID(query, recurrence) for windows.
	ID string `json:"id"`
	// Kind is pane-rin | pane-rout | tuple-rout | window.
	Kind  string `json:"kind"`
	Query string `json:"query"`
	// Fingerprint is the producing plan's canonical fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Recurrence is the recurrence that (last) built the node.
	Recurrence int   `json:"recurrence"`
	Pane       int64 `json:"pane"`
	Part       int   `json:"part"`
	Bytes      int64 `json:"bytes"`
	// SHA is the hex SHA-256 of the derived bytes at build time — the
	// oracle recomputes claimed inputs and matches it.
	SHA string `json:"sha"`
	// CostNS is the modeled virtual cost of (re)building the node, the
	// same figure the account ledger credits on a cache hit.
	CostNS int64 `json:"costNS"`
	// Job names the mapreduce job whose attempts produced the node
	// (empty for windows); join against Attempts.
	Job string `json:"job,omitempty"`
	// Batches are the raw-input claims; Inputs the upstream
	// derivations; Consumers the downstream derivation IDs.
	Batches   []BatchRef  `json:"batches,omitempty"`
	Inputs    []InputRef  `json:"inputs,omitempty"`
	Consumers []string    `json:"consumers,omitempty"`
	Copies    []CopyEvent `json:"copies,omitempty"`
	// Builds counts how many times the node was built (1 = never
	// rebuilt); Cause names the fault behind the latest rebuild.
	Builds int    `json:"builds"`
	Cause  string `json:"cause,omitempty"`
	// Seq is the insertion sequence (eviction watermark axis).
	Seq uint64 `json:"seq"`
	// Expired marks nodes whose cached bytes are gone (retired or
	// lost); their derivations linger for history until evicted.
	Expired bool `json:"expired"`
}

// DerivID is the derivation ID of cache pid/typ (typ is the engine's
// CacheType ordinal).
func DerivID(pid string, typ int) string { return fmt.Sprintf("%s|%d", pid, typ) }

// WindowID is the derivation ID of query's recurrence-r window output.
func WindowID(query string, r int) string { return fmt.Sprintf("window/%s/r%d", query, r) }

// BatchID is the node ID of one ingested batch.
func BatchID(query, source string, seq int) string {
	return fmt.Sprintf("batch/%s/%s/%d", query, source, seq)
}

// Stats summarizes a store for bench output.
type Stats struct {
	Nodes                int `json:"nodes"`
	Batches              int `json:"batches"`
	Edges                int `json:"edges"`
	DistinctFingerprints int `json:"distinctFingerprints"`
	Rebuilds             int `json:"rebuilds"`
	Evicted              int `json:"evicted"`
	Faults               int `json:"faults"`
}

// Store is the bounded provenance store. All methods are safe for
// concurrent use and nil-safe, so call sites hook in unconditionally;
// writes must nevertheless come only from the engines' serial commit
// paths for cross-worker determinism (see the package comment).
type Store struct {
	mu  sync.Mutex
	cap int

	seq    uint64
	derivs map[string]*Derivation
	order  []string // insertion order, eviction scan order
	// watermark: every evicted derivation had Seq < watermark, every
	// retained one has Seq >= watermark.
	watermark uint64

	batches    map[string]*Batch // key BatchID
	batchOrder []string
	batchSeq   map[string]int // per query|source: next seq
	batchFloor map[string]int // per query|source: lowest retained seq
	// batchClaims counts, per BatchID, how many live (unexpired)
	// derivations claim the batch; claimed batches are never evicted
	// by the bound, mirroring evictLocked's stop-at-resident rule.
	batchClaims map[string]int

	attempts map[string][]Attempt // per job, bounded
	jobOrder []string

	files     map[string][]FileEvent // per DFS path, bounded
	fileOrder []string

	faults []Fault

	plans     map[string]string // fingerprint -> canonical plan
	collision string            // non-empty on fingerprint collision

	rebuilds int
	evicted  int
}

// New builds an empty store retaining up to cap derivations (cap <= 0
// means DefaultCap).
func New(cap int) *Store {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Store{
		cap:         cap,
		derivs:      map[string]*Derivation{},
		batches:     map[string]*Batch{},
		batchSeq:    map[string]int{},
		batchFloor:  map[string]int{},
		batchClaims: map[string]int{},
		attempts:    map[string][]Attempt{},
		files:       map[string][]FileEvent{},
		plans:       map[string]string{},
	}
}

func srcKey(query, source string) string { return query + "|" + source }

// RecordBatch records one serial ingest call and returns its per-source
// sequence number (-1 on a nil store).
func (s *Store) RecordBatch(query, source string, records int, panes []PaneRange) int {
	if s == nil {
		return -1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := srcKey(query, source)
	seq := s.batchSeq[k]
	s.batchSeq[k] = seq + 1
	b := &Batch{Query: query, Source: source, Seq: seq, Records: records,
		Panes: append([]PaneRange(nil), panes...)}
	id := BatchID(query, source, seq)
	s.batches[id] = b
	s.batchOrder = append(s.batchOrder, id)
	for len(s.batchOrder) > s.cap {
		oldID := s.batchOrder[0]
		if s.batchClaims[oldID] > 0 {
			// The oldest batch is still claimed by a live derivation:
			// evicting it would turn a provable claim into a silent
			// hole the floor check masks as a legitimate eviction.
			// Closure must keep it; the bound resumes once the claim
			// expires.
			break
		}
		s.batchOrder = s.batchOrder[1:]
		old := s.batches[oldID]
		delete(s.batches, oldID)
		ok := srcKey(old.Query, old.Source)
		if old.Seq >= s.batchFloor[ok] {
			s.batchFloor[ok] = old.Seq + 1
		}
		s.evicted++
	}
	return seq
}

// adjustBatchClaimsLocked shifts the live-derivation claim count of
// each referenced batch by delta. Caller holds s.mu.
func (s *Store) adjustBatchClaimsLocked(query string, refs []BatchRef, delta int) {
	for _, b := range refs {
		id := BatchID(query, b.Source, b.Seq)
		n := s.batchClaims[id] + delta
		if n <= 0 {
			delete(s.batchClaims, id)
			continue
		}
		s.batchClaims[id] = n
	}
}

// BatchesForPane returns the claims of every retained batch of
// query/source on the given pane, in batch order.
func (s *Store) BatchesForPane(query, source string, pane int64) []BatchRef {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []BatchRef
	for _, id := range s.batchOrder {
		b := s.batches[id]
		if b.Query != query || b.Source != source {
			continue
		}
		var ranges []Range
		for _, pr := range b.Panes {
			if pr.Pane == pane {
				ranges = append(ranges, pr.R)
			}
		}
		if len(ranges) > 0 {
			out = append(out, BatchRef{Source: source, Seq: b.Seq, Ranges: ranges})
		}
	}
	return out
}

// LookupBatch returns a copy of a retained batch.
func (s *Store) LookupBatch(query, source string, seq int) (Batch, bool) {
	if s == nil {
		return Batch{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[BatchID(query, source, seq)]
	if !ok {
		return Batch{}, false
	}
	out := *b
	out.Panes = append([]PaneRange(nil), b.Panes...)
	return out, true
}

// BatchFloor returns the lowest retained batch seq of query/source —
// references below it point at legitimately evicted batches.
func (s *Store) BatchFloor(query, source string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batchFloor[srcKey(query, source)]
}

// RecordPlan registers a plan under its fingerprint. Two distinct
// plans mapping to one fingerprint (an injectivity violation) is
// latched and surfaces from Closure.
func (s *Store) RecordPlan(fp string, p Plan) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	canon := p.canonical()
	if have, ok := s.plans[fp]; ok {
		if have != canon {
			s.collision = fmt.Sprintf("fingerprint %s maps to two plans: %q vs %q", fp, have, canon)
		}
		return
	}
	s.plans[fp] = canon
}

// Plans returns a copy of the recorded fingerprint → canonical-plan
// map.
func (s *Store) Plans() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.plans))
	for fp, p := range s.plans {
		out[fp] = p
	}
	return out
}

// RecordDerivation inserts (or, for an existing ID, rebuilds) a
// derivation. On a rebuild the store keeps the node's copy history and
// consumers, bumps Builds, names the most recent fault touching the
// node or its claimed paths as the cause, and reports rebuilt=true.
// Input derivations get the new node appended to their consumers.
//
// A write whose Query differs from the stored node's is an alias, not
// a rebuild: derivation IDs embed the raw query name, so two engines
// with the same-named query sharing one store collide on ID while
// keeping distinct accounting names. Nothing was lost or recomputed —
// the node is re-homed to the latest writer (content and Query
// replaced, copy history and consumers kept) without touching Builds,
// the rebuild counter, or the fault matcher.
func (s *Store) RecordDerivation(d Derivation) (rebuilt bool, cause string) {
	if s == nil {
		return false, ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.derivs[d.ID]; ok {
		if !old.Expired {
			s.adjustBatchClaimsLocked(old.Query, old.Batches, -1)
		}
		old.Recurrence = d.Recurrence
		old.Bytes = d.Bytes
		old.SHA = d.SHA
		old.CostNS = d.CostNS
		old.Fingerprint = d.Fingerprint
		old.Batches = append([]BatchRef(nil), d.Batches...)
		old.Inputs = append([]InputRef(nil), d.Inputs...)
		old.Expired = false
		s.adjustBatchClaimsLocked(d.Query, d.Batches, 1)
		if old.Query != d.Query {
			old.Query = d.Query
			old.Cause = ""
			s.linkConsumersLocked(d)
			return false, ""
		}
		old.Builds++
		old.Cause = s.matchFaultLocked(d)
		s.rebuilds++
		s.linkConsumersLocked(d)
		return true, old.Cause
	}
	s.seq++
	nd := d
	nd.Seq = s.seq
	nd.Builds = 1
	nd.Batches = append([]BatchRef(nil), d.Batches...)
	nd.Inputs = append([]InputRef(nil), d.Inputs...)
	nd.Copies = append([]CopyEvent(nil), d.Copies...)
	nd.Consumers = append([]string(nil), d.Consumers...)
	s.derivs[d.ID] = &nd
	s.order = append(s.order, d.ID)
	if !nd.Expired {
		s.adjustBatchClaimsLocked(nd.Query, nd.Batches, 1)
	}
	s.linkConsumersLocked(d)
	s.evictLocked()
	return false, ""
}

// linkConsumersLocked appends d.ID to each retained input's consumer
// list (deduplicated). Caller holds s.mu.
func (s *Store) linkConsumersLocked(d Derivation) {
	for _, in := range d.Inputs {
		up, ok := s.derivs[in.ID]
		if !ok {
			continue
		}
		dup := false
		for _, c := range up.Consumers {
			if c == d.ID {
				dup = true
				break
			}
		}
		if !dup {
			up.Consumers = append(up.Consumers, d.ID)
		}
	}
}

// evictLocked drops the oldest expired derivations while over
// capacity, advancing the watermark. Resident (unexpired) nodes are
// never evicted. Caller holds s.mu.
func (s *Store) evictLocked() {
	for len(s.order) > s.cap {
		id := s.order[0]
		d := s.derivs[id]
		if !d.Expired {
			return // oldest is still resident; closure must keep it
		}
		s.order = s.order[1:]
		delete(s.derivs, id)
		if d.Seq >= s.watermark {
			s.watermark = d.Seq + 1
		}
		s.evicted++
	}
}

// Seq returns a retained derivation's insertion sequence (0, false
// when absent).
func (s *Store) Seq(id string) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.derivs[id]
	if !ok {
		return 0, false
	}
	return d.Seq, true
}

// AddCopy appends a copy event to a retained derivation's history.
func (s *Store) AddCopy(id string, ev CopyEvent) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.derivs[id]; ok {
		d.Copies = append(d.Copies, ev)
	}
}

// MarkExpired closes a derivation's cache residency (retirement) with
// an expire copy event.
func (s *Store) MarkExpired(id string, atNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.derivs[id]; ok && !d.Expired {
		d.Expired = true
		s.adjustBatchClaimsLocked(d.Query, d.Batches, -1)
		d.Copies = append(d.Copies, CopyEvent{Kind: "expire", AtNS: atNS})
	}
}

// MarkLost records a discovered cache loss (crash, drop, corruption):
// the derivation is expired with a lost copy event and the most recent
// fault touching its home node or claimed paths is returned as the
// presumed cause ("" when no fault matches).
func (s *Store) MarkLost(id string, node int, atNS int64) (cause string) {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.derivs[id]
	if !ok {
		return ""
	}
	if !d.Expired {
		s.adjustBatchClaimsLocked(d.Query, d.Batches, -1)
	}
	d.Expired = true
	d.Copies = append(d.Copies, CopyEvent{Kind: "lost", Node: node, AtNS: atNS})
	d.Cause = s.matchFaultLocked(*d)
	if d.Cause == "" {
		d.Cause = fmt.Sprintf("lost on node %d", node)
	}
	return d.Cause
}

// matchFaultLocked names the most recent recorded fault plausibly
// responsible for rebuilding d: one that hit the node of d's latest
// copy, or a path-targeted fault whose path appears among d's claimed
// inputs. Caller holds s.mu.
func (s *Store) matchFaultLocked(d Derivation) string {
	node := -1
	cur := s.derivs[d.ID]
	if cur != nil {
		for i := len(cur.Copies) - 1; i >= 0; i-- {
			if cur.Copies[i].Kind == "register" || cur.Copies[i].Kind == "rehome" {
				node = cur.Copies[i].Node
				break
			}
		}
	}
	for i := len(s.faults) - 1; i >= 0; i-- {
		f := s.faults[i]
		switch f.Kind {
		case "node-crash", "cache-drop":
			if f.Node == node {
				return fmt.Sprintf("%s node %d @r%d", f.Kind, f.Node, f.Recurrence)
			}
		default:
			if f.Path != "" {
				return fmt.Sprintf("%s %s @r%d", f.Kind, f.Path, f.Recurrence)
			}
		}
	}
	return ""
}

// RecordAttempt appends one task attempt under its job, keeping the
// newest attempts bounded per job.
func (s *Store) RecordAttempt(a Attempt) {
	if s == nil || a.Job == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.attempts[a.Job]; !ok {
		s.jobOrder = append(s.jobOrder, a.Job)
	}
	list := append(s.attempts[a.Job], a)
	if len(list) > 256 {
		list = list[len(list)-256:]
	}
	s.attempts[a.Job] = list
}

// Attempts returns a copy of a job's retained attempts.
func (s *Store) Attempts(job string) []Attempt {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attempt(nil), s.attempts[job]...)
}

// RecordFileEvent appends one replica-history event for a DFS path.
func (s *Store) RecordFileEvent(path string, ev FileEvent) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		s.fileOrder = append(s.fileOrder, path)
		for len(s.fileOrder) > s.cap {
			drop := s.fileOrder[0]
			s.fileOrder = s.fileOrder[1:]
			delete(s.files, drop)
			s.evicted++
		}
	}
	ev.Nodes = append([]int(nil), ev.Nodes...)
	s.files[path] = append(s.files[path], ev)
}

// FileEvents returns a copy of a path's replica history.
func (s *Store) FileEvents(path string) []FileEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FileEvent(nil), s.files[path]...)
}

// RecordFault logs one applied chaos action for cause attribution.
func (s *Store) RecordFault(f Fault) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = append(s.faults, f)
	if len(s.faults) > s.cap {
		s.faults = s.faults[len(s.faults)-s.cap:]
	}
}

// Lookup returns a deep copy of a retained derivation.
func (s *Store) Lookup(id string) (Derivation, bool) {
	if s == nil {
		return Derivation{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.derivs[id]
	if !ok {
		return Derivation{}, false
	}
	return copyDeriv(d), true
}

func copyDeriv(d *Derivation) Derivation {
	out := *d
	out.Batches = append([]BatchRef(nil), d.Batches...)
	for i, b := range out.Batches {
		out.Batches[i].Ranges = append([]Range(nil), b.Ranges...)
	}
	out.Inputs = append([]InputRef(nil), d.Inputs...)
	out.Consumers = append([]string(nil), d.Consumers...)
	out.Copies = append([]CopyEvent(nil), d.Copies...)
	return out
}

// Watermark returns the eviction watermark: references with target seq
// below it may point at evicted derivations.
func (s *Store) Watermark() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Stats summarizes the store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Nodes:                len(s.order),
		Batches:              len(s.batchOrder),
		DistinctFingerprints: len(s.plans),
		Rebuilds:             s.rebuilds,
		Evicted:              s.evicted,
		Faults:               len(s.faults),
	}
	for _, id := range s.order {
		d := s.derivs[id]
		st.Edges += len(d.Batches) + len(d.Inputs)
	}
	return st
}

// Snapshot is a deep, deterministic copy of the whole store, suitable
// for DeepEqual comparison across -workers settings and for JSON
// export.
type Snapshot struct {
	Derivations []Derivation           `json:"derivations"`
	Batches     []Batch                `json:"batches"`
	Attempts    map[string][]Attempt   `json:"attempts,omitempty"`
	Files       map[string][]FileEvent `json:"files,omitempty"`
	Faults      []Fault                `json:"faults,omitempty"`
	Watermark   uint64                 `json:"watermark"`
	Stats       Stats                  `json:"stats"`
}

// Snapshot returns a deep copy of the store in insertion order.
func (s *Store) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	st := s.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{Watermark: s.watermark, Stats: st}
	for _, id := range s.order {
		snap.Derivations = append(snap.Derivations, copyDeriv(s.derivs[id]))
	}
	for _, id := range s.batchOrder {
		b := *s.batches[id]
		b.Panes = append([]PaneRange(nil), s.batches[id].Panes...)
		snap.Batches = append(snap.Batches, b)
	}
	if len(s.attempts) > 0 {
		snap.Attempts = map[string][]Attempt{}
		for _, j := range s.jobOrder {
			snap.Attempts[j] = append([]Attempt(nil), s.attempts[j]...)
		}
	}
	if len(s.files) > 0 {
		snap.Files = map[string][]FileEvent{}
		for _, p := range s.fileOrder {
			evs := make([]FileEvent, len(s.files[p]))
			for i, ev := range s.files[p] {
				ev.Nodes = append([]int(nil), ev.Nodes...)
				evs[i] = ev
			}
			snap.Files[p] = evs
		}
	}
	snap.Faults = append([]Fault(nil), s.faults...)
	return snap
}

// ResidentRef names one cache entry the engine currently considers
// resident; Closure checks each has a live derivation.
type ResidentRef struct {
	ID   string
	Node int
}

// Closure verifies the store's structural invariants against the
// engine's resident cache set and returns every violation found:
//
//  1. every resident cache entry has a retained, unexpired derivation;
//  2. every retained derivation's upstream inputs are retained, or
//     expired, or below the eviction watermark (legitimately evicted);
//  3. every claimed batch is retained or below its source's batch
//     floor;
//  4. plan fingerprints are injective over the recorded plans.
func (s *Store) Closure(resident []ResidentRef) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var bad []string
	for _, r := range resident {
		d, ok := s.derivs[r.ID]
		if !ok {
			bad = append(bad, fmt.Sprintf("resident cache %s has no derivation", r.ID))
			continue
		}
		if d.Expired {
			bad = append(bad, fmt.Sprintf("resident cache %s is marked expired in the store", r.ID))
		}
	}
	for _, id := range s.order {
		d := s.derivs[id]
		for _, in := range d.Inputs {
			if _, ok := s.derivs[in.ID]; ok {
				continue
			}
			if in.Seq < s.watermark {
				continue // evicted
			}
			bad = append(bad, fmt.Sprintf("derivation %s input %s is neither retained nor evicted", id, in.ID))
		}
		for _, b := range d.Batches {
			if _, ok := s.batches[BatchID(d.Query, b.Source, b.Seq)]; ok {
				continue
			}
			if b.Seq < s.batchFloor[srcKey(d.Query, b.Source)] {
				continue // evicted
			}
			bad = append(bad, fmt.Sprintf("derivation %s claims missing batch %s/%d", id, b.Source, b.Seq))
		}
	}
	if s.collision != "" {
		bad = append(bad, s.collision)
	}
	sort.Strings(bad)
	return bad
}
