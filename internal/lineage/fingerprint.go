// Package lineage is Redoop's provenance store: a concurrency-safe,
// bounded record of how every cached pane and emitted window was
// derived — which input batches (down to record-offset ranges) fed it,
// which task attempts on which nodes produced it, where its cache
// copies lived over time, and which downstream windows consumed it.
//
// The store is fed exclusively from the engines' serial commit points
// (cache registration, window finalization, task-attempt accounting),
// so its contents are byte-identical across -workers settings — the
// differential oracle asserts exactly that, along with structural
// closure (every resident cache entry has a derivation, every
// derivation's inputs exist or are marked expired/evicted) and a
// byte-equality recomputation of sampled panes from their claimed
// inputs.
//
// Each derivation carries the canonical *plan fingerprint* of the
// map/combine/partition/reduce lineage that produced it. The
// fingerprint is the seam a ReStore-style cross-job reuse layer
// (PAPERS.md, arxiv 1203.0061) matches against: two queries whose
// plans fingerprint identically can, in principle, share materialized
// panes.
package lineage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// PlanSource describes one data source of a plan: its name, the
// cross-query cache-sharing key (empty when unshared), and the symbol
// of the map function applied to its records.
type PlanSource struct {
	Name     string
	CacheKey string
	// Map is the map function's symbol (e.g. the runtime function
	// name); "-" or "" for none.
	Map string
}

// Plan is a neutral description of a recurring query's operator
// lineage — everything that determines the bytes of a pane's reduce
// input/output given the same raw records. It deliberately lives in
// this leaf package (not internal/core) so every layer can fingerprint
// plans without import cycles.
type Plan struct {
	// WindowKind is "time" or "count".
	WindowKind string
	// WinUnits, SlideUnits and PaneUnits are the window geometry in
	// the kind's units; PaneUnits = GCD(win, slide).
	WinUnits   int64
	SlideUnits int64
	PaneUnits  int64
	// Sources in declaration order.
	Sources []PlanSource
	// Combine, Reduce, Merge and Partition are operator symbols ("-"
	// or "" when absent).
	Combine   string
	Reduce    string
	Merge     string
	Partition string
	// NumReducers fixes the partitioning arity; cached reduce inputs
	// are only aligned for equal arities (paper §4.3).
	NumReducers int
}

// canonical renders the plan as an unambiguous string: every field is
// length-prefixed so no concatenation of distinct plans collides.
func (p Plan) canonical() string {
	var b strings.Builder
	field := func(s string) {
		fmt.Fprintf(&b, "%d:%s;", len(s), s)
	}
	field(p.WindowKind)
	fmt.Fprintf(&b, "w%d|s%d|p%d;", p.WinUnits, p.SlideUnits, p.PaneUnits)
	fmt.Fprintf(&b, "srcs%d;", len(p.Sources))
	for _, s := range p.Sources {
		field(s.Name)
		field(s.CacheKey)
		field(s.Map)
	}
	field(p.Combine)
	field(p.Reduce)
	field(p.Merge)
	field(p.Partition)
	fmt.Fprintf(&b, "r%d;", p.NumReducers)
	return b.String()
}

// SHA returns the hex SHA-256 of a derivation's cached bytes ("" for
// empty data) — the figure the oracle's recomputation pass matches.
func SHA(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Fingerprint returns the canonical plan fingerprint: a hex SHA-256 of
// the plan's unambiguous encoding. Equal plans always fingerprint
// equally; plans differing in any field (window geometry, source set,
// operator symbols, reducer arity) fingerprint differently up to hash
// collision. The fingerprint is stable across -workers settings,
// recurrences and runs of the same binary.
func Fingerprint(p Plan) string {
	sum := sha256.Sum256([]byte(p.canonical()))
	return hex.EncodeToString(sum[:])
}

// opCanonical renders only the plan's operator lineage plus data
// identity: window kind, per-source (CacheKey, Map) — deliberately not
// the source *name*, which is query-private labeling — and the
// combine/reduce/merge/partition symbols with the reducer arity.
// Window geometry (win, slide, pane) is excluded: two plans with equal
// opCanonical produce byte-identical pane contents for any pane range
// both materialize, which is exactly the equivalence a cross-query
// reuse index needs (geometry only decides *which* panes exist).
func (p Plan) opCanonical() string {
	var b strings.Builder
	field := func(s string) {
		fmt.Fprintf(&b, "%d:%s;", len(s), s)
	}
	b.WriteString("op;")
	field(p.WindowKind)
	fmt.Fprintf(&b, "srcs%d;", len(p.Sources))
	for _, s := range p.Sources {
		field(s.CacheKey)
		field(s.Map)
	}
	field(p.Combine)
	field(p.Reduce)
	field(p.Merge)
	field(p.Partition)
	fmt.Fprintf(&b, "r%d;", p.NumReducers)
	return b.String()
}

// OpFingerprint returns the geometry-independent operator fingerprint:
// a hex SHA-256 over the plan's operator lineage and data identity
// (source CacheKeys), excluding win/slide/pane units and source names.
// Two queries with equal OpFingerprints over the same shared stream
// derive byte-identical pane caches for any pane unit they share — the
// matching key of the ReStore-style cross-query reuse index
// (internal/reuse).
func OpFingerprint(p Plan) string {
	sum := sha256.Sum256([]byte(p.opCanonical()))
	return hex.EncodeToString(sum[:])
}
