package reuse

import (
	"reflect"
	"testing"
)

func publishPane(x *Index, query string, unit, pane int64, parts int, bytes int64) {
	for part := 0; part < parts; part++ {
		x.Publish(Entry{
			OpFP: "fp", Unit: unit, Pane: pane, Part: part,
			Query: query, PID: pidFor(query, unit, pane, part), Type: 1,
			Node: part % 3, Bytes: bytes, RecomputeNS: 1000,
		})
	}
}

func pidFor(query string, unit, pane int64, part int) string {
	return query + "/" + string(rune('0'+unit)) + "/" + string(rune('0'+pane)) + "/" + string(rune('0'+part))
}

func TestExactProbe(t *testing.T) {
	x := NewIndex(0)
	publishPane(x, "a", 2, 5, 4, 100)
	if _, ok := x.ProbeExact("fp", 2, 5, 4, "a"); ok {
		t.Fatal("self-probe must miss")
	}
	ents, ok := x.ProbeExact("fp", 2, 5, 4, "b")
	if !ok {
		t.Fatal("want exact hit")
	}
	for part, e := range ents {
		if e.Part != part || e.Query != "a" || e.Pane != 5 || e.Unit != 2 {
			t.Fatalf("part %d: wrong entry %+v", part, e)
		}
	}
	if _, ok := x.ProbeExact("fp", 2, 6, 4, "b"); ok {
		t.Fatal("unpublished pane must miss")
	}
	if _, ok := x.ProbeExact("other", 2, 5, 4, "b"); ok {
		t.Fatal("foreign fingerprint must miss")
	}
	// A single missing partition fails the whole probe.
	x.DropPID(pidFor("a", 2, 5, 2), 1)
	if _, ok := x.ProbeExact("fp", 2, 5, 4, "b"); ok {
		t.Fatal("partial pane must miss")
	}
	s := x.Stats()
	if s.ExactHits != 1 || s.Dropped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSubsumeProbe(t *testing.T) {
	x := NewIndex(0)
	// Producer at unit 2: consumer unit 6 pane 1 covers producer panes 3,4,5.
	for p := int64(3); p <= 5; p++ {
		publishPane(x, "a", 2, p, 2, 10)
	}
	rows, u, ok := x.ProbeSubsume("fp", 6, 1, 2, "b")
	if !ok || u != 2 {
		t.Fatalf("want subsume hit at unit 2, got ok=%v u=%d", ok, u)
	}
	for part, row := range rows {
		if len(row) != 3 {
			t.Fatalf("part %d: want 3 finer panes, got %d", part, len(row))
		}
		for i, e := range row {
			if e.Pane != 3+int64(i) || e.Part != part {
				t.Fatalf("part %d slot %d: wrong entry %+v", part, i, e)
			}
		}
	}
	// Coarsest qualifying unit wins: publish unit 3 covering panes 2,3
	// of the same span — fewer merge inputs than unit 2's three.
	publishPane(x, "c", 3, 2, 2, 10)
	publishPane(x, "c", 3, 3, 2, 10)
	if _, u, ok = x.ProbeSubsume("fp", 6, 1, 2, "b"); !ok || u != 3 {
		t.Fatalf("want coarsest unit 3, got ok=%v u=%d", ok, u)
	}
	// Units that do not divide the prober's never qualify.
	if _, _, ok := x.ProbeSubsume("fp", 5, 1, 2, "b"); ok {
		t.Fatal("unit 5 has no divisor units published (2 and 3 do not divide 5 into present panes)")
	}
	// The prober's own entries cannot subsume for it.
	if _, u, ok := x.ProbeSubsume("fp", 6, 1, 2, "c"); !ok || u != 2 {
		t.Fatalf("self entries excluded: want fallback to unit 2, got ok=%v u=%d", ok, u)
	}
}

func TestPublishRefreshReplacesEntry(t *testing.T) {
	x := NewIndex(0)
	x.Publish(Entry{OpFP: "fp", Unit: 1, Pane: 0, Part: 0, Query: "a", PID: "old", Type: 1, Bytes: 5})
	x.Publish(Entry{OpFP: "fp", Unit: 1, Pane: 0, Part: 0, Query: "a", PID: "new", Type: 1, Bytes: 9})
	ents, ok := x.ProbeExact("fp", 1, 0, 1, "b")
	if !ok || ents[0].PID != "new" || ents[0].Bytes != 9 {
		t.Fatalf("refresh did not replace: %+v", ents)
	}
	// The old PID's reverse link is gone: dropping it must not disturb
	// the refreshed entry.
	x.DropPID("old", 1)
	if _, ok := x.ProbeExact("fp", 1, 0, 1, "b"); !ok {
		t.Fatal("dropping the stale PID removed the live entry")
	}
	x.DropPID("new", 1)
	if _, ok := x.ProbeExact("fp", 1, 0, 1, "b"); ok {
		t.Fatal("entry survived DropPID of its backing cache")
	}
}

func TestEvictionROIOrder(t *testing.T) {
	x := NewIndex(4)
	roi := map[string]float64{"cheap": 0.1, "rich": 9.9}
	x.SetROI(func(q string) float64 { return roi[q] })
	publishPane(x, "cheap", 1, 0, 2, 10) // seq 1,2
	publishPane(x, "rich", 1, 1, 2, 10)  // seq 3,4
	// Fifth entry exceeds cap: the lowest-ROI producer's oldest entry
	// (cheap, seq 1) must be the victim.
	x.Publish(Entry{OpFP: "fp", Unit: 1, Pane: 2, Part: 0, Query: "rich", PID: "r2", Type: 1})
	if s := x.Stats(); s.Evicted != 1 || s.Entries != 4 {
		t.Fatalf("stats: %+v", s)
	}
	if _, ok := x.ProbeExact("fp", 1, 0, 2, "z"); ok {
		t.Fatal("cheap producer's pane should be partially evicted")
	}
	if _, ok := x.ProbeExact("fp", 1, 1, 2, "z"); !ok {
		t.Fatal("high-ROI producer's pane must survive")
	}
	// Without an ROI signal eviction is oldest-first.
	y := NewIndex(2)
	y.Publish(Entry{OpFP: "fp", Unit: 1, Pane: 0, Part: 0, Query: "a", PID: "p0", Type: 1})
	y.Publish(Entry{OpFP: "fp", Unit: 1, Pane: 1, Part: 0, Query: "a", PID: "p1", Type: 1})
	y.Publish(Entry{OpFP: "fp", Unit: 1, Pane: 2, Part: 0, Query: "a", PID: "p2", Type: 1})
	snap := y.Snapshot()
	if len(snap) != 2 || snap[0].Pane != 1 || snap[1].Pane != 2 {
		t.Fatalf("oldest-first eviction broken: %+v", snap)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	mk := func(order []int64) []Entry {
		x := NewIndex(0)
		for _, p := range order {
			publishPane(x, "a", 2, p, 2, 10)
		}
		snap := x.Snapshot()
		for i := range snap {
			snap[i].Seq = 0 // insertion order intentionally differs
		}
		return snap
	}
	a := mk([]int64{0, 1, 2, 3})
	b := mk([]int64{3, 1, 0, 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot order depends on insertion order:\n%+v\n%+v", a, b)
	}
}

func TestNilIndexSafe(t *testing.T) {
	var x *Index
	x.Publish(Entry{})
	x.DropPID("p", 1)
	x.SetROI(nil)
	if _, ok := x.ProbeExact("fp", 1, 0, 1, "q"); ok {
		t.Fatal("nil index hit")
	}
	if _, _, ok := x.ProbeSubsume("fp", 2, 0, 1, "q"); ok {
		t.Fatal("nil index subsume hit")
	}
	if s := x.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats: %+v", s)
	}
	if snap := x.Snapshot(); snap != nil {
		t.Fatalf("nil snapshot: %+v", snap)
	}
}
