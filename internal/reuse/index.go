// Package reuse is Redoop's cross-query pane reuse index: a
// fingerprint-keyed catalog of materialized pane reduce-output caches
// that lets one query satisfy a pane build from another query's cached
// work, in the spirit of ReStore (PAPERS.md, arxiv 1203.0061).
//
// Entries are keyed by (operator fingerprint, pane unit, pane id,
// partition): the operator fingerprint (lineage.OpFingerprint) covers
// the map/combine/reduce/merge/partition lineage plus the source's
// cross-query CacheKey — the data-identity anchor — but not the window
// geometry, so queries with different win/slide over the same shared
// stream still match wherever their pane grids coincide or nest.
//
// Two probe shapes exist:
//
//   - exact: the consumer's pane unit equals a published unit and every
//     partition of the pane is present — the consumer copies the
//     producer's bytes instead of recomputing (engine-side);
//   - subsumption: a finer published unit u divides the consumer's
//     unit U, and all U/u finer panes covering the consumer pane are
//     present for every partition — the consumer composes them with
//     its (algebraic) Merge, the same decomposition contract the
//     engine's proactive sub-pane path already relies on.
//
// Keep/evict is cost-based rather than pure-expiry: when the index
// exceeds its bound, the entry whose *producer* has the lowest cache
// ROI (saved recompute per resident byte·second, from internal/account)
// is dropped first, oldest-first within a tie.
//
// Determinism: all writes and probes come from the engines' serial
// commit paths (pane registration in ensureAggPane and friends), so the
// index contents — and Snapshot — are byte-identical across -workers
// settings; the experiments suite asserts DeepEqual at -workers 1 vs 4.
// All methods are nil-safe so call sites hook in unconditionally.
package reuse

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultCap bounds retained entries when New is given cap <= 0.
const DefaultCap = 4096

// Entry is one published pane reduce-output cache.
type Entry struct {
	// OpFP is the producing plan's operator fingerprint
	// (lineage.OpFingerprint).
	OpFP string `json:"opFP"`
	// Unit is the producer's pane width in window units; Pane the pane
	// id on that unit's grid (pane covers units [Pane*Unit,
	// (Pane+1)*Unit)); Part the reduce partition.
	Unit int64 `json:"unit"`
	Pane int64 `json:"pane"`
	Part int   `json:"part"`
	// Query is the producer's ledger account name — probes from the
	// same query never match their own entries (self-reuse is the
	// engine's ordinary pane cache path).
	Query string `json:"query"`
	// PID/Type locate the producer's cache in the controller; Node and
	// Bytes mirror its signature at publish time.
	PID   string `json:"pid"`
	Type  int    `json:"type"`
	Node  int    `json:"node"`
	Bytes int64  `json:"bytes"`
	// ReadyAtNS is when the bytes became usable; RecomputeNS the
	// modeled cost a hit avoids (the producer's build cost).
	ReadyAtNS   int64 `json:"readyAtNS"`
	RecomputeNS int64 `json:"recomputeNS"`
	// Seq is the insertion sequence, the eviction tie-break axis.
	Seq uint64 `json:"seq"`
}

type key struct {
	opFP string
	unit int64
	pane int64
	part int
}

// Stats summarizes index activity for bench/CLI output.
type Stats struct {
	Entries    int `json:"entries"`
	Published  int `json:"published"`
	ExactHits  int `json:"exactHits"`
	SubsumHits int `json:"subsumHits"`
	Misses     int `json:"misses"`
	Dropped    int `json:"dropped"`
	Evicted    int `json:"evicted"`
}

// Index is the bounded cross-query reuse index. Safe for concurrent
// use; nil-safe throughout.
type Index struct {
	mu  sync.Mutex
	cap int
	seq uint64

	entries map[key]*Entry
	// units tracks, per operator fingerprint, which pane units have
	// ever been published — the subsumption probe's candidate set.
	units map[string]map[int64]bool
	// byPID indexes live entry keys by producer cache identity so
	// purge/loss notifications can drop them without a scan.
	byPID map[string][]key

	roi func(query string) float64

	published  int
	exactHits  int
	subsumHits int
	misses     int
	dropped    int
	evicted    int
}

// NewIndex builds an empty index retaining up to cap entries (cap <= 0
// means DefaultCap).
func NewIndex(cap int) *Index {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Index{
		cap:     cap,
		entries: map[key]*Entry{},
		units:   map[string]map[int64]bool{},
		byPID:   map[string][]key{},
	}
}

// SetROI installs the cost signal the eviction policy ranks producers
// by — account.Ledger.CacheROI in the engine wiring. Nil reverts to
// pure oldest-first eviction.
func (x *Index) SetROI(fn func(query string) float64) {
	if x == nil {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.roi = fn
}

func pidKey(pid string, typ int) string {
	// Mirrors the controller's pid|type signature key.
	return fmt.Sprintf("%s|%d", pid, typ)
}

// Publish inserts (or refreshes) one pane cache entry. Called only
// from the engines' serial commit points, right after the producing
// cache registration.
func (x *Index) Publish(e Entry) {
	if x == nil {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	k := key{opFP: e.OpFP, unit: e.Unit, pane: e.Pane, part: e.Part}
	if old, ok := x.entries[k]; ok {
		x.unlinkPIDLocked(old, k)
	}
	x.seq++
	e.Seq = x.seq
	x.entries[k] = &e
	x.byPID[pidKey(e.PID, e.Type)] = append(x.byPID[pidKey(e.PID, e.Type)], k)
	if x.units[e.OpFP] == nil {
		x.units[e.OpFP] = map[int64]bool{}
	}
	x.units[e.OpFP][e.Unit] = true
	x.published++
	x.evictOverCapLocked()
}

// unlinkPIDLocked removes k from the PID reverse index. Caller holds
// x.mu.
func (x *Index) unlinkPIDLocked(e *Entry, k key) {
	pk := pidKey(e.PID, e.Type)
	keys := x.byPID[pk]
	for i, kk := range keys {
		if kk == k {
			x.byPID[pk] = append(keys[:i:i], keys[i+1:]...)
			break
		}
	}
	if len(x.byPID[pk]) == 0 {
		delete(x.byPID, pk)
	}
}

// evictOverCapLocked enforces the bound cost-first: while over
// capacity, drop the entry whose producer has the lowest ROI (ties:
// oldest Seq). With no ROI signal every producer ranks equal, so
// eviction degrades to oldest-first. Caller holds x.mu.
func (x *Index) evictOverCapLocked() {
	for len(x.entries) > x.cap {
		var victim key
		var vic *Entry
		for k, e := range x.entries {
			if vic == nil {
				victim, vic = k, e
				continue
			}
			var er, vr float64
			if x.roi != nil {
				er, vr = x.roi(e.Query), x.roi(vic.Query)
			}
			if er < vr || (er == vr && e.Seq < vic.Seq) {
				victim, vic = k, e
			}
		}
		x.unlinkPIDLocked(vic, victim)
		delete(x.entries, victim)
		x.evicted++
	}
}

// ProbeExact returns the published entries covering every partition of
// pane `pane` at exactly the prober's unit, produced by a query other
// than notQuery. Partitions are returned in partition order; a single
// missing partition (or any self-produced partition) is a miss.
func (x *Index) ProbeExact(opFP string, unit, pane int64, parts int, notQuery string) ([]Entry, bool) {
	if x == nil {
		return nil, false
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Entry, parts)
	for part := 0; part < parts; part++ {
		e, ok := x.entries[key{opFP: opFP, unit: unit, pane: pane, part: part}]
		if !ok || e.Query == notQuery {
			x.misses++
			return nil, false
		}
		out[part] = *e
	}
	x.exactHits++
	return out, true
}

// ProbeSubsume looks for a finer published pane unit u that divides
// the prober's unit, such that the prober's pane decomposes into
// unit/u consecutive finer panes all present for every partition (all
// from queries other than notQuery). The coarsest qualifying u wins
// (fewest merge inputs). Returns, per partition, the finer entries in
// pane order, plus the finer unit.
func (x *Index) ProbeSubsume(opFP string, unit, pane int64, parts int, notQuery string) ([][]Entry, int64, bool) {
	if x == nil {
		return nil, 0, false
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	var cands []int64
	for u := range x.units[opFP] {
		if u < unit && unit%u == 0 {
			cands = append(cands, u)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] > cands[j] })
	for _, u := range cands {
		k := unit / u
		out := make([][]Entry, parts)
		found := true
		for part := 0; found && part < parts; part++ {
			row := make([]Entry, 0, k)
			for i := int64(0); i < k; i++ {
				e, ok := x.entries[key{opFP: opFP, unit: u, pane: pane*k + i, part: part}]
				if !ok || e.Query == notQuery {
					found = false
					break
				}
				row = append(row, *e)
			}
			out[part] = row
		}
		if found {
			x.subsumHits++
			return out, u, true
		}
	}
	x.misses++
	return nil, 0, false
}

// DropPID removes every entry backed by cache pid/typ — called from
// the controller's purge hook (retirement) and the engine's §5 loss
// path, so the index never advertises bytes the controller no longer
// vouches for.
func (x *Index) DropPID(pid string, typ int) {
	if x == nil {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	pk := pidKey(pid, typ)
	keys := x.byPID[pk]
	if len(keys) == 0 {
		return
	}
	delete(x.byPID, pk)
	for _, k := range keys {
		if _, ok := x.entries[k]; ok {
			delete(x.entries, k)
			x.dropped++
		}
	}
}

// Stats returns the index's activity counters.
func (x *Index) Stats() Stats {
	if x == nil {
		return Stats{}
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return Stats{
		Entries:    len(x.entries),
		Published:  x.published,
		ExactHits:  x.exactHits,
		SubsumHits: x.subsumHits,
		Misses:     x.misses,
		Dropped:    x.dropped,
		Evicted:    x.evicted,
	}
}

// Snapshot returns every live entry sorted by (OpFP, Unit, Pane, Part)
// — a deterministic view suitable for DeepEqual across -workers
// settings and for JSON export.
func (x *Index) Snapshot() []Entry {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Entry, 0, len(x.entries))
	for _, e := range x.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.OpFP != b.OpFP {
			return a.OpFP < b.OpFP
		}
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.Pane != b.Pane {
			return a.Pane < b.Pane
		}
		return a.Part < b.Part
	})
	return out
}
