// Package account is the per-query (and per-tenant) resource ledger:
// every unit of simulated work the runtime performs — slot compute,
// shuffle transfer, DFS traffic, cache residency — is attributed to
// the query that caused it, in virtual time.
//
// The ledger exists because Redoop's window-aware caches (paper §3–4)
// trade resident bytes for recompute savings, and any admission or
// eviction policy needs to know the exchange rate *per consumer*: how
// many recompute nanoseconds does each resident byte·second of query
// q's caches buy back? The ledger meters four things:
//
//   - compute nanoseconds per phase (map, combine, shuffle, sort,
//     reduce, cache-load), fed by hooks in internal/mapreduce and
//     internal/core at the points where slot time is charged;
//   - cache occupancy as byte·seconds plus peak resident bytes, fed
//     by the engine's register/expire/re-register transitions;
//   - IO bytes (DFS read/write/replication, shuffle), fed by
//     internal/dfs and the shuffle accounting;
//   - recompute nanoseconds saved by cache hits, net of the cache
//     load cost actually paid (mirroring the critical-path profiler's
//     pane-benefit model).
//
// Determinism: every duration- or float-valued method is called only
// from the engines' serial commit paths, so attribution is
// byte-identical across -workers regimes. The only methods reachable
// from parallel code are the integer AddIO adds (DFS reads during
// split decode), which are commutative under the ledger mutex.
//
// Conservation: slot compute attributed here is exactly the virtual
// busy time the engines charge to cluster nodes via AddLoad, so
// SlotComputeNS(all queries) ≤ Σ Node.Load() always — the oracle
// asserts it after every recurrence, and CheckConservation packages
// the same test for CLIs.
package account

import (
	"fmt"
	"sort"
	"sync"

	"redoop/internal/obs"
	"redoop/internal/simtime"
)

// Phase labels one compute-phase bucket. The set is closed and small,
// keeping redoop_query_* metric cardinality bounded by
// #queries × #phases.
type Phase string

const (
	PhaseMap       Phase = "map"
	PhaseCombine   Phase = "combine"
	PhaseShuffle   Phase = "shuffle"
	PhaseSort      Phase = "sort"
	PhaseReduce    Phase = "reduce"
	PhaseCacheLoad Phase = "cache-load"
)

// Phases lists every phase in presentation order.
var Phases = []Phase{PhaseMap, PhaseCombine, PhaseShuffle, PhaseSort, PhaseReduce, PhaseCacheLoad}

// slotPhase reports whether a phase occupies a map/reduce slot (and
// therefore contributes to Node.AddLoad busy time). Shuffle is modeled
// as elapsed transfer time between map end and reduce start — it never
// holds a slot — so it is excluded from the conservation sum.
func slotPhase(p Phase) bool { return p != PhaseShuffle }

// IOKind labels one byte-counter bucket.
type IOKind string

const (
	IODFSRead  IOKind = "dfs-read"
	IODFSWrite IOKind = "dfs-write"
	IODFSRepl  IOKind = "dfs-repl"
	IOShuffle  IOKind = "shuffle"
)

// IOKinds lists every kind in presentation order.
var IOKinds = []IOKind{IODFSRead, IODFSWrite, IODFSRepl, IOShuffle}

// residency is one open cache interval: pid/typ resident on behalf of
// owner since `since`. recompute is the modeled cost to rebuild it,
// credited to a consumer on hit.
type residency struct {
	owner     string
	pid       string
	typ       int
	bytes     int64
	since     simtime.Time
	recompute simtime.Duration
	// hits counts cache hits served by this residency interval — an
	// access-frequency feature for cost-based replacement; it resets
	// when the interval closes (a rebuilt cache re-earns its keep).
	hits int
}

// ResidencyFeatures is the per-entry feature vector cost-based cache
// replacement ranks on: size, modeled recompute cost, and the access
// frequency of the current residency interval.
type ResidencyFeatures struct {
	Query       string
	Bytes       int64
	RecomputeNS int64
	Hits        int
	Since       simtime.Time
}

// Residency is the exported view of one still-open cache interval.
type Residency struct {
	Query string
	PID   string
	Type  int
	Bytes int64
	Since simtime.Time
}

// queryAcct is one query's running totals.
type queryAcct struct {
	name   string
	tenant string

	compute map[Phase]simtime.Duration
	io      map[IOKind]int64

	byteSeconds  float64 // closed residencies only; open ones accrue on read
	curResident  int64
	peakResident int64

	saved simtime.Duration // recompute saved by hits, net of load paid
	// crossSaved is the subset of saved credited by cross-query reuse
	// hits (another query's cache satisfying this query's pane build).
	crossSaved simtime.Duration

	hits       int
	crossHits  int
	registered int
	expired    int
}

// QueryCosts is one query's ledger snapshot.
type QueryCosts struct {
	Query  string `json:"query"`
	Tenant string `json:"tenant,omitempty"`

	// ComputeNS maps phase name to attributed virtual nanoseconds.
	ComputeNS map[string]int64 `json:"computeNS"`
	// TotalComputeNS sums every phase including shuffle.
	TotalComputeNS int64 `json:"totalComputeNS"`
	// SlotComputeNS sums only slot-occupying phases (excludes shuffle)
	// — the conservation numerator.
	SlotComputeNS int64 `json:"slotComputeNS"`

	// IOBytes maps IO kind to attributed bytes.
	IOBytes map[string]int64 `json:"ioBytes"`

	// CacheByteSeconds integrates resident cache bytes over virtual
	// time, open residencies accrued to the ledger watermark.
	CacheByteSeconds  float64 `json:"cacheByteSeconds"`
	PeakResidentBytes int64   `json:"peakResidentBytes"`
	CurResidentBytes  int64   `json:"curResidentBytes"`

	// SavedNS is recompute time cache hits avoided, net of the cache
	// loads actually paid — the profiler's pane-benefit, per query.
	SavedNS int64 `json:"savedNS"`
	// CrossSavedNS is the subset of SavedNS credited by cross-query
	// reuse hits (gross: the net-of-load adjustment lands on SavedNS).
	CrossSavedNS int64 `json:"crossSavedNS,omitempty"`

	CacheHits int `json:"cacheHits"`
	// CrossQueryHits counts hits satisfied from another query's cache
	// via the reuse index; they also count in CacheHits.
	CrossQueryHits  int `json:"crossQueryHits,omitempty"`
	CacheRegistered int `json:"cacheRegistered"`
	CacheExpired    int `json:"cacheExpired"`
	OpenResidencies int `json:"openResidencies"`

	// CacheROI is SavedNS per resident byte·second — the ranking
	// feature a cost-based eviction policy would use. 0 when the query
	// never held cache bytes.
	CacheROI float64 `json:"cacheROI"`
}

// Ledger is the process-wide cost ledger. All methods are safe for
// concurrent use and nil-safe, so call sites hook in unconditionally.
type Ledger struct {
	mu      sync.Mutex
	obs     *obs.Observer
	queries map[string]*queryAcct
	order   []string
	open    map[string]*residency // key: pid|typ
	// pending maps a hit cache's key to the consumer query whose
	// saving must be netted by that cache's next load cost. Armed by
	// CacheHit, consumed by the first subsequent CacheLoaded for the
	// same key; loads of caches never hit leave savings untouched.
	pending map[string]string
	// watermark is the latest virtual instant the ledger has been
	// advanced to; open residencies accrue byte·seconds up to it when
	// read.
	watermark simtime.Time
}

// New builds an empty ledger.
func New() *Ledger {
	return &Ledger{
		queries: map[string]*queryAcct{},
		open:    map[string]*residency{},
		pending: map[string]string{},
	}
}

// SetObserver attaches a metrics sink; nil-safe on both sides.
func (l *Ledger) SetObserver(o *obs.Observer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.obs = o
}

// Observer returns the attached metrics sink (nil-safe) so sharing
// call sites can fill in a missing observer without detaching an
// existing one.
func (l *Ledger) Observer() *obs.Observer {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.obs
}

func resKey(pid string, typ int) string { return fmt.Sprintf("%s|%d", pid, typ) }

// Register adds a query to the ledger and returns the account name to
// attribute its costs under — the given name, or a "#2"-style suffixed
// variant when the name is already taken (mirrors health.Monitor). On
// a nil ledger the name passes through unchanged.
func (l *Ledger) Register(query, tenant string) string {
	if l == nil {
		return query
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	name := query
	for i := 2; ; i++ {
		if _, taken := l.queries[name]; !taken {
			break
		}
		name = fmt.Sprintf("%s#%d", query, i)
	}
	l.queries[name] = &queryAcct{
		name:    name,
		tenant:  tenant,
		compute: map[Phase]simtime.Duration{},
		io:      map[IOKind]int64{},
	}
	l.order = append(l.order, name)
	return name
}

// acct resolves a query's account, lazily registering unknown names
// (tenant-less) so partial wiring never panics or drops costs.
func (l *Ledger) acct(query string) *queryAcct {
	a, ok := l.queries[query]
	if !ok {
		a = &queryAcct{
			name:    query,
			compute: map[Phase]simtime.Duration{},
			io:      map[IOKind]int64{},
		}
		l.queries[query] = a
		l.order = append(l.order, query)
	}
	return a
}

// AddCompute attributes d of phase-p work to query. Callers on slot
// phases must charge exactly what they AddLoad to the node, so the
// conservation invariant stays an equality for fully-hooked engines.
func (l *Ledger) AddCompute(query string, p Phase, d simtime.Duration) {
	if l == nil || d == 0 || query == "" {
		return
	}
	l.mu.Lock()
	a := l.acct(query)
	a.compute[p] += d
	o := l.obs
	l.mu.Unlock()
	o.Counter("redoop_query_compute_seconds_total",
		obs.L("query", query), obs.L("phase", string(p))).Add(d.Seconds())
}

// AddIO attributes bytes of kind-k traffic to query. Integer and
// commutative, so safe from parallel prepare paths (DFS reads during
// split decode).
func (l *Ledger) AddIO(query string, k IOKind, bytes int64) {
	if l == nil || bytes == 0 || query == "" {
		return
	}
	l.mu.Lock()
	a := l.acct(query)
	a.io[k] += bytes
	o := l.obs
	l.mu.Unlock()
	o.Counter("redoop_query_io_bytes_total",
		obs.L("query", query), obs.L("kind", string(k))).Add(float64(bytes))
}

// closeLocked accrues and removes an open residency. Caller holds l.mu.
func (l *Ledger) closeLocked(key string, at simtime.Time) {
	r, ok := l.open[key]
	if !ok {
		return
	}
	delete(l.open, key)
	a := l.acct(r.owner)
	if at.After(r.since) {
		a.byteSeconds += float64(r.bytes) * at.Sub(r.since).Seconds()
	}
	a.curResident -= r.bytes
	a.expired++
	if o := l.obs; o != nil {
		o.Gauge("redoop_query_resident_bytes", obs.L("query", r.owner)).Set(float64(a.curResident))
		o.Gauge("redoop_query_cache_byte_seconds", obs.L("query", r.owner)).Set(a.byteSeconds)
	}
}

// CacheRegistered opens a residency interval for pid/typ, owned by
// query, starting at `at`. A still-open interval for the same key
// (re-registration after refresh or re-homing) is closed first, so
// byte·seconds never double-count.
func (l *Ledger) CacheRegistered(query, pid string, typ int, bytes int64, at simtime.Time, recompute simtime.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	key := resKey(pid, typ)
	l.closeLocked(key, at)
	l.open[key] = &residency{
		owner: query, pid: pid, typ: typ,
		bytes: bytes, since: at, recompute: recompute,
	}
	a := l.acct(query)
	a.curResident += bytes
	if a.curResident > a.peakResident {
		a.peakResident = a.curResident
	}
	a.registered++
	if at.After(l.watermark) {
		l.watermark = at
	}
	if o := l.obs; o != nil {
		o.Gauge("redoop_query_resident_bytes", obs.L("query", query)).Set(float64(a.curResident))
		o.Gauge("redoop_query_peak_resident_bytes", obs.L("query", query)).Set(float64(a.peakResident))
	}
}

// CacheExpired closes pid/typ's residency at `at` (purge notification,
// loss discovery, or retirement). Unknown keys are ignored — chaos may
// destroy bytes the ledger closed already, and double expiry must not
// double-count.
func (l *Ledger) CacheExpired(pid string, typ int, at simtime.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if at.After(l.watermark) {
		l.watermark = at
	}
	l.closeLocked(resKey(pid, typ), at)
}

// Residency returns the feature vector of pid/typ's still-open
// residency interval; ok is false when none is open. Deterministic
// given the ledger's (serially recorded) event stream, so replacement
// decisions ranked on it are byte-identical across -workers settings.
func (l *Ledger) Residency(pid string, typ int) (ResidencyFeatures, bool) {
	if l == nil {
		return ResidencyFeatures{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.open[resKey(pid, typ)]
	if !ok {
		return ResidencyFeatures{}, false
	}
	return ResidencyFeatures{
		Query: r.owner, Bytes: r.bytes,
		RecomputeNS: int64(r.recompute), Hits: r.hits, Since: r.since,
	}, true
}

// CacheHit credits query with the stored recompute cost of pid/typ —
// the work the hit avoided — and arms the net-of-load adjustment: the
// next CacheLoaded for the same key subtracts the load actually paid.
func (l *Ledger) CacheHit(query, pid string, typ int, at simtime.Time) {
	l.cacheHit(query, pid, typ, at, false)
}

// CacheHitCross is CacheHit for a cross-query reuse hit: the consumer
// query is credited with the producer's stored recompute cost exactly
// as on an ordinary hit, and the hit is additionally attributed to the
// consumer's cross-query counters so reuse savings are separable.
func (l *Ledger) CacheHitCross(query, pid string, typ int, at simtime.Time) {
	l.cacheHit(query, pid, typ, at, true)
}

func (l *Ledger) cacheHit(query, pid string, typ int, at simtime.Time, cross bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	key := resKey(pid, typ)
	r, ok := l.open[key]
	var o *obs.Observer
	var saved simtime.Duration
	if ok {
		a := l.acct(query)
		a.saved += r.recompute
		a.hits++
		r.hits++
		if cross {
			a.crossSaved += r.recompute
			a.crossHits++
		}
		l.pending[key] = query
		saved = a.saved
		o = l.obs
	}
	if at.After(l.watermark) {
		l.watermark = at
	}
	l.mu.Unlock()
	if ok {
		o.Gauge("redoop_query_saved_seconds", obs.L("query", query)).Set(saved.Seconds())
		if cross {
			o.Counter("redoop_query_cross_reuse_hits_total", obs.L("query", query)).Inc()
		}
	}
}

// CacheLoaded nets the cost of reading cache pid/typ into its consumer
// out of that consumer's saving — but only when a hit armed the
// adjustment for this key. Loads of freshly built caches carry no
// pending hit and leave SavedNS untouched.
func (l *Ledger) CacheLoaded(pid string, typ int, load simtime.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	key := resKey(pid, typ)
	var o *obs.Observer
	var saved simtime.Duration
	query, ok := l.pending[key]
	if ok {
		delete(l.pending, key)
		a := l.acct(query)
		a.saved -= load
		saved = a.saved
		o = l.obs
	}
	l.mu.Unlock()
	if ok {
		o.Gauge("redoop_query_saved_seconds", obs.L("query", query)).Set(saved.Seconds())
	}
}

// Advance moves the accrual watermark forward; open residencies accrue
// byte·seconds up to it when snapshotted. Engines call it at the end
// of every recurrence with the completion instant.
func (l *Ledger) Advance(at simtime.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if at.After(l.watermark) {
		l.watermark = at
	}
}

// byteSecondsLocked returns a query's accrued byte·seconds including
// open residencies up to the watermark. Open contributions sum in
// sorted key order: float addition is order-sensitive in the last ulp,
// and map iteration order would make the total nondeterministic.
// Caller holds l.mu.
func (l *Ledger) byteSecondsLocked(a *queryAcct) float64 {
	keys := make([]string, 0, len(l.open))
	for k, r := range l.open {
		if r.owner == a.name && l.watermark.After(r.since) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	bs := a.byteSeconds
	for _, k := range keys {
		r := l.open[k]
		bs += float64(r.bytes) * l.watermark.Sub(r.since).Seconds()
	}
	return bs
}

// ByteSeconds returns query's cache occupancy integral to the
// watermark; 0 for unknown queries or a nil ledger.
func (l *Ledger) ByteSeconds(query string) float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.queries[query]
	if !ok {
		return 0
	}
	return l.byteSecondsLocked(a)
}

// CacheROI returns query's saved recompute per resident byte·second —
// the cost signal the reuse index's keep/evict policy ranks producers
// by. 0 for unknown queries, queries that never held cache bytes, or a
// nil ledger. Deterministic: reads only serial-commit-path state.
func (l *Ledger) CacheROI(query string) float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.queries[query]
	if !ok {
		return 0
	}
	bs := l.byteSecondsLocked(a)
	if bs <= 0 {
		return 0
	}
	return float64(int64(a.saved)) / bs
}

// SavedNS returns query's net recompute saving; 0 for unknown queries
// or a nil ledger.
func (l *Ledger) SavedNS(query string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.queries[query]
	if !ok {
		return 0
	}
	return int64(a.saved)
}

// SlotComputeNS sums slot-occupying compute (every phase except
// shuffle) over the named queries, or over all queries when none are
// named — the conservation numerator.
func (l *Ledger) SlotComputeNS(queries ...string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var total simtime.Duration
	sum := func(a *queryAcct) {
		for p, d := range a.compute {
			if slotPhase(p) {
				total += d
			}
		}
	}
	if len(queries) == 0 {
		for _, a := range l.queries {
			sum(a)
		}
	} else {
		for _, q := range queries {
			if a, ok := l.queries[q]; ok {
				sum(a)
			}
		}
	}
	return int64(total)
}

// CheckConservation asserts the ledger's structural invariants against
// an engine-side busy-time total:
//
//  1. slot compute attributed to the named queries (all, when none
//     named) must not exceed busyNS — the cluster cannot have been
//     busy for less time than the ledger attributed to queries;
//  2. per query, registered == expired + open residencies — every
//     byte·second interval is closed exactly once or still open.
//
// Returns nil when both hold.
func (l *Ledger) CheckConservation(busyNS int64, queries ...string) error {
	if l == nil {
		return nil
	}
	if got := l.SlotComputeNS(queries...); got > busyNS {
		return fmt.Errorf("account: attributed slot compute %d ns exceeds cluster busy time %d ns", got, busyNS)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	openBy := map[string]int{}
	for _, r := range l.open {
		openBy[r.owner]++
	}
	check := func(a *queryAcct) error {
		if a.registered != a.expired+openBy[a.name] {
			return fmt.Errorf("account: query %s: %d residencies registered but %d expired + %d open",
				a.name, a.registered, a.expired, openBy[a.name])
		}
		return nil
	}
	if len(queries) == 0 {
		for _, name := range l.order {
			if err := check(l.queries[name]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, q := range queries {
		if a, ok := l.queries[q]; ok {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// OpenResidencies returns every still-open cache interval, sorted by
// key for determinism.
func (l *Ledger) OpenResidencies() []Residency {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.open))
	for k := range l.open {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Residency, 0, len(keys))
	for _, k := range keys {
		r := l.open[k]
		out = append(out, Residency{
			Query: r.owner, PID: r.pid, Type: r.typ,
			Bytes: r.bytes, Since: r.since,
		})
	}
	return out
}

// Snapshot returns every query's costs in registration order.
func (l *Ledger) Snapshot() []QueryCosts {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	openBy := map[string]int{}
	for _, r := range l.open {
		openBy[r.owner]++
	}
	out := make([]QueryCosts, 0, len(l.order))
	for _, name := range l.order {
		a := l.queries[name]
		qc := QueryCosts{
			Query:             a.name,
			Tenant:            a.tenant,
			ComputeNS:         map[string]int64{},
			IOBytes:           map[string]int64{},
			CacheByteSeconds:  l.byteSecondsLocked(a),
			PeakResidentBytes: a.peakResident,
			CurResidentBytes:  a.curResident,
			SavedNS:           int64(a.saved),
			CrossSavedNS:      int64(a.crossSaved),
			CacheHits:         a.hits,
			CrossQueryHits:    a.crossHits,
			CacheRegistered:   a.registered,
			CacheExpired:      a.expired,
			OpenResidencies:   openBy[a.name],
		}
		for _, p := range Phases {
			if d := a.compute[p]; d != 0 {
				qc.ComputeNS[string(p)] = int64(d)
			}
			qc.TotalComputeNS += int64(a.compute[p])
			if slotPhase(p) {
				qc.SlotComputeNS += int64(a.compute[p])
			}
		}
		for _, k := range IOKinds {
			if b := a.io[k]; b != 0 {
				qc.IOBytes[string(k)] = b
			}
		}
		if qc.CacheByteSeconds > 0 {
			qc.CacheROI = float64(qc.SavedNS) / qc.CacheByteSeconds
		}
		out = append(out, qc)
	}
	return out
}

// TenantCosts is one tenant's rollup across its queries. The empty
// tenant ("") aggregates untenanted queries.
type TenantCosts struct {
	Tenant           string  `json:"tenant"`
	Queries          int     `json:"queries"`
	TotalComputeNS   int64   `json:"totalComputeNS"`
	SlotComputeNS    int64   `json:"slotComputeNS"`
	IOBytes          int64   `json:"ioBytes"`
	CacheByteSeconds float64 `json:"cacheByteSeconds"`
	SavedNS          int64   `json:"savedNS"`
	// CacheROI is saved recompute per resident byte·second, the
	// tenant-level "is the cache paying rent" quotient.
	CacheROI float64 `json:"cacheROI"`
}

// RollupTenants aggregates per-query costs by tenant, sorted by tenant
// name (the "" rollup of untenanted queries first).
func RollupTenants(snaps []QueryCosts) []TenantCosts {
	byTenant := map[string]*TenantCosts{}
	var order []string
	for _, qc := range snaps {
		tc, ok := byTenant[qc.Tenant]
		if !ok {
			tc = &TenantCosts{Tenant: qc.Tenant}
			byTenant[qc.Tenant] = tc
			order = append(order, qc.Tenant)
		}
		tc.Queries++
		tc.TotalComputeNS += qc.TotalComputeNS
		tc.SlotComputeNS += qc.SlotComputeNS
		for _, b := range qc.IOBytes {
			tc.IOBytes += b
		}
		tc.CacheByteSeconds += qc.CacheByteSeconds
		tc.SavedNS += qc.SavedNS
	}
	sort.Strings(order)
	out := make([]TenantCosts, 0, len(order))
	for _, t := range order {
		tc := byTenant[t]
		if tc.CacheByteSeconds > 0 {
			tc.CacheROI = float64(tc.SavedNS) / tc.CacheByteSeconds
		}
		out = append(out, *tc)
	}
	return out
}
