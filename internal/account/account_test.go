package account

import (
	"math"
	"strings"
	"testing"

	"redoop/internal/simtime"
)

func TestRegisterSuffixesDuplicates(t *testing.T) {
	l := New()
	a := l.Register("q", "t1")
	b := l.Register("q", "t2")
	c := l.Register("q", "t3")
	if a != "q" || b != "q#2" || c != "q#3" {
		t.Fatalf("got names %q %q %q", a, b, c)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d queries, want 3", len(snap))
	}
	if snap[1].Query != "q#2" || snap[1].Tenant != "t2" {
		t.Fatalf("second account = %+v", snap[1])
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	if got := l.Register("q", "t"); got != "q" {
		t.Fatalf("nil Register returned %q", got)
	}
	l.AddCompute("q", PhaseMap, simtime.Second)
	l.AddIO("q", IODFSRead, 10)
	l.CacheRegistered("q", "pid", 0, 100, 0, simtime.Second)
	l.CacheHit("q", "pid", 0, 0)
	l.CacheLoaded("pid", 0, simtime.Millisecond)
	l.CacheExpired("pid", 0, 0)
	l.Advance(simtime.Time(1))
	if l.Snapshot() != nil || l.OpenResidencies() != nil {
		t.Fatal("nil ledger returned data")
	}
	if err := l.CheckConservation(0); err != nil {
		t.Fatalf("nil CheckConservation: %v", err)
	}
}

func TestByteSecondAccrual(t *testing.T) {
	l := New()
	l.Register("q", "")
	// 1000 bytes resident from T+2s to T+5s = 3000 byte·seconds.
	l.CacheRegistered("q", "p1", 0, 1000, simtime.Time(2*simtime.Second), 0)
	l.CacheExpired("p1", 0, simtime.Time(5*simtime.Second))
	if got := l.ByteSeconds("q"); math.Abs(got-3000) > 1e-9 {
		t.Fatalf("closed accrual = %v byte·s, want 3000", got)
	}
	// Open residency accrues to the watermark on read.
	l.CacheRegistered("q", "p2", 0, 500, simtime.Time(5*simtime.Second), 0)
	l.Advance(simtime.Time(9 * simtime.Second))
	if got := l.ByteSeconds("q"); math.Abs(got-(3000+2000)) > 1e-9 {
		t.Fatalf("open accrual = %v byte·s, want 5000", got)
	}
	// Peak tracks the concurrent maximum, not the sum over time.
	snap := l.Snapshot()[0]
	if snap.PeakResidentBytes != 1000 {
		t.Fatalf("peak = %d, want 1000", snap.PeakResidentBytes)
	}
	if snap.CurResidentBytes != 500 {
		t.Fatalf("cur = %d, want 500", snap.CurResidentBytes)
	}
}

func TestReRegisterClosesOldInterval(t *testing.T) {
	l := New()
	l.Register("q", "")
	l.CacheRegistered("q", "p1", 0, 1000, simtime.Time(0), 0)
	// Refresh at T+4s with new bytes: the first interval must close at
	// 4s (4000 byte·s) and the second runs 4s..10s (6000 byte·s).
	l.CacheRegistered("q", "p1", 0, 1000, simtime.Time(4*simtime.Second), 0)
	l.Advance(simtime.Time(10 * simtime.Second))
	if got := l.ByteSeconds("q"); math.Abs(got-10000) > 1e-9 {
		t.Fatalf("accrual after re-register = %v byte·s, want 10000", got)
	}
	snap := l.Snapshot()[0]
	if snap.CacheRegistered != 2 || snap.CacheExpired != 1 || snap.OpenResidencies != 1 {
		t.Fatalf("counters = %+v", snap)
	}
}

func TestDoubleExpiryDoesNotDoubleCount(t *testing.T) {
	l := New()
	l.Register("q", "")
	l.CacheRegistered("q", "p1", 0, 100, simtime.Time(0), 0)
	l.CacheExpired("p1", 0, simtime.Time(simtime.Second))
	// A chaos drop may race retirement: the second expiry of the same
	// key must be a no-op.
	l.CacheExpired("p1", 0, simtime.Time(2*simtime.Second))
	if got := l.ByteSeconds("q"); math.Abs(got-100) > 1e-9 {
		t.Fatalf("accrual = %v byte·s, want 100", got)
	}
	snap := l.Snapshot()[0]
	if snap.CacheExpired != 1 {
		t.Fatalf("expired = %d, want 1", snap.CacheExpired)
	}
	if err := l.CheckConservation(1 << 60); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

func TestSavedNetsOutLoadOnlyAfterHit(t *testing.T) {
	l := New()
	l.Register("q", "")
	l.CacheRegistered("q", "p1", 0, 100, 0, 10*simtime.Second)
	// Load without a hit (fresh build) leaves savings untouched.
	l.CacheLoaded("p1", 0, simtime.Second)
	if got := l.SavedNS("q"); got != 0 {
		t.Fatalf("saved after unarmed load = %d, want 0", got)
	}
	// Hit credits the stored recompute; the next load nets out.
	l.CacheHit("q", "p1", 0, simtime.Time(simtime.Second))
	l.CacheLoaded("p1", 0, 2*simtime.Second)
	if got, want := l.SavedNS("q"), int64(8*simtime.Second); got != want {
		t.Fatalf("saved = %d, want %d", got, want)
	}
	// Only the first load after the hit adjusts.
	l.CacheLoaded("p1", 0, simtime.Second)
	if got, want := l.SavedNS("q"), int64(8*simtime.Second); got != want {
		t.Fatalf("saved after second load = %d, want %d", got, want)
	}
	// A hit on an unknown (already expired) key credits nothing.
	l.CacheHit("q", "gone", 0, 0)
	if got, want := l.SavedNS("q"), int64(8*simtime.Second); got != want {
		t.Fatalf("saved after ghost hit = %d, want %d", got, want)
	}
}

func TestSlotComputeExcludesShuffle(t *testing.T) {
	l := New()
	l.Register("a", "")
	l.Register("b", "")
	l.AddCompute("a", PhaseMap, 3*simtime.Second)
	l.AddCompute("a", PhaseShuffle, 100*simtime.Second) // elapsed, not slot time
	l.AddCompute("a", PhaseSort, simtime.Second)
	l.AddCompute("b", PhaseReduce, 2*simtime.Second)
	l.AddCompute("b", PhaseCacheLoad, simtime.Second)
	if got, want := l.SlotComputeNS("a"), int64(4*simtime.Second); got != want {
		t.Fatalf("SlotComputeNS(a) = %d, want %d", got, want)
	}
	if got, want := l.SlotComputeNS(), int64(7*simtime.Second); got != want {
		t.Fatalf("SlotComputeNS(all) = %d, want %d", got, want)
	}
	snap := l.Snapshot()
	if snap[0].TotalComputeNS != int64(104*simtime.Second) {
		t.Fatalf("TotalComputeNS = %d", snap[0].TotalComputeNS)
	}
	if snap[0].SlotComputeNS != int64(4*simtime.Second) {
		t.Fatalf("snapshot SlotComputeNS = %d", snap[0].SlotComputeNS)
	}
}

func TestCheckConservation(t *testing.T) {
	l := New()
	l.Register("q", "")
	l.AddCompute("q", PhaseMap, 5*simtime.Second)
	if err := l.CheckConservation(int64(5 * simtime.Second)); err != nil {
		t.Fatalf("exact busy time must pass: %v", err)
	}
	if err := l.CheckConservation(int64(4 * simtime.Second)); err == nil {
		t.Fatal("attributed compute above busy time must fail")
	} else if !strings.Contains(err.Error(), "exceeds cluster busy time") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestConservationCatchesLeakedResidency(t *testing.T) {
	l := New()
	l.Register("q", "")
	l.CacheRegistered("q", "p1", 0, 100, 0, 0)
	l.CacheRegistered("q", "p2", 1, 100, 0, 0)
	l.CacheExpired("p1", 0, simtime.Time(simtime.Second))
	if err := l.CheckConservation(1 << 60); err != nil {
		t.Fatalf("registered == expired + open must pass: %v", err)
	}
	// Simulate an accounting bug: force the counter out of sync.
	l.mu.Lock()
	l.queries["q"].registered++
	l.mu.Unlock()
	if err := l.CheckConservation(1 << 60); err == nil {
		t.Fatal("leaked residency must fail conservation")
	}
}

func TestROIAndIO(t *testing.T) {
	l := New()
	l.Register("q", "ten")
	l.AddIO("q", IODFSRead, 100)
	l.AddIO("q", IODFSRead, 50)
	l.AddIO("q", IOShuffle, 10)
	l.CacheRegistered("q", "p1", 0, 1000, 0, 4*simtime.Second)
	l.CacheHit("q", "p1", 0, simtime.Time(simtime.Second))
	l.Advance(simtime.Time(2 * simtime.Second))
	snap := l.Snapshot()[0]
	if snap.IOBytes["dfs-read"] != 150 || snap.IOBytes["shuffle"] != 10 {
		t.Fatalf("io = %+v", snap.IOBytes)
	}
	// 1000 bytes × 2s = 2000 byte·s; saved 4e9 ns → ROI 2e6 ns per byte·s.
	if math.Abs(snap.CacheByteSeconds-2000) > 1e-9 {
		t.Fatalf("byte·s = %v", snap.CacheByteSeconds)
	}
	if want := float64(4*simtime.Second) / 2000; math.Abs(snap.CacheROI-want) > 1e-6 {
		t.Fatalf("ROI = %v, want %v", snap.CacheROI, want)
	}
	if snap.Tenant != "ten" {
		t.Fatalf("tenant = %q", snap.Tenant)
	}
}

func TestOpenResidenciesSorted(t *testing.T) {
	l := New()
	l.Register("q", "")
	l.CacheRegistered("q", "b", 0, 1, 0, 0)
	l.CacheRegistered("q", "a", 1, 2, 0, 0)
	rs := l.OpenResidencies()
	if len(rs) != 2 || rs[0].PID != "a" || rs[1].PID != "b" {
		t.Fatalf("residencies = %+v", rs)
	}
}
