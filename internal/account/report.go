package account

import (
	"fmt"
	"io"
	"sort"
)

// WriteReport renders a cost snapshot as a fixed-width table: the
// top-K queries by total compute (K <= 0 means all), then per-tenant
// rollups when any query is tenanted. Every number is derived from the
// snapshot alone, so the report is byte-identical whenever the
// snapshot is — in particular across -workers regimes.
func WriteReport(w io.Writer, snaps []QueryCosts, topK int) error {
	ordered := append([]QueryCosts(nil), snaps...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].TotalComputeNS > ordered[j].TotalComputeNS
	})
	shown := ordered
	if topK > 0 && topK < len(shown) {
		shown = shown[:topK]
	}
	if _, err := fmt.Fprintf(w, "%-10s %-10s %12s %12s %12s %12s %14s %12s %10s\n",
		"query", "tenant", "compute", "slot", "io(B)", "cache(B·s)", "peak(B)", "saved", "roi(ns/B·s)"); err != nil {
		return err
	}
	for _, qc := range shown {
		var ioBytes int64
		for _, b := range qc.IOBytes {
			ioBytes += b
		}
		tenant := qc.Tenant
		if tenant == "" {
			tenant = "-"
		}
		if _, err := fmt.Fprintf(w, "%-10s %-10s %12s %12s %12d %12.1f %14d %12s %10.3f\n",
			qc.Query, tenant, fmtNS(qc.TotalComputeNS), fmtNS(qc.SlotComputeNS),
			ioBytes, qc.CacheByteSeconds, qc.PeakResidentBytes, fmtNS(qc.SavedNS), qc.CacheROI); err != nil {
			return err
		}
	}
	if dropped := len(ordered) - len(shown); dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d more queries below top %d)\n", dropped, topK); err != nil {
			return err
		}
	}

	// Per-phase compute breakdown for the shown queries.
	if _, err := fmt.Fprintf(w, "\n%-10s", "phase"); err != nil {
		return err
	}
	for _, qc := range shown {
		if _, err := fmt.Fprintf(w, " %12s", qc.Query); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range Phases {
		any := false
		for _, qc := range shown {
			if qc.ComputeNS[string(p)] != 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-10s", p); err != nil {
			return err
		}
		for _, qc := range shown {
			if _, err := fmt.Fprintf(w, " %12s", fmtNS(qc.ComputeNS[string(p)])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	tenanted := false
	for _, qc := range snaps {
		if qc.Tenant != "" {
			tenanted = true
			break
		}
	}
	if !tenanted {
		return nil
	}
	if _, err := fmt.Fprintf(w, "\n%-10s %7s %12s %12s %12s %12s %10s\n",
		"tenant", "queries", "compute", "io(B)", "cache(B·s)", "saved", "roi(ns/B·s)"); err != nil {
		return err
	}
	for _, tc := range RollupTenants(snaps) {
		tenant := tc.Tenant
		if tenant == "" {
			tenant = "-"
		}
		if _, err := fmt.Fprintf(w, "%-10s %7d %12s %12d %12.1f %12s %10.3f\n",
			tenant, tc.Queries, fmtNS(tc.TotalComputeNS), tc.IOBytes,
			tc.CacheByteSeconds, fmtNS(tc.SavedNS), tc.CacheROI); err != nil {
			return err
		}
	}
	return nil
}

// fmtNS renders a nanosecond quantity human-readably (mirrors the
// explain and health packages' formatting so reports read alike).
func fmtNS(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%s%.2fs", neg, float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%s%.2fms", neg, float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%s%.1fµs", neg, float64(ns)/1e3)
	default:
		return fmt.Sprintf("%s%dns", neg, ns)
	}
}
