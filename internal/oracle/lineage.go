package oracle

import (
	"fmt"

	"redoop/internal/colfmt"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/records"
)

// auditSample bounds the per-recurrence provenance recompute: the
// newest auditSample unexpired pane derivations are replayed from their
// lineage-claimed raw records each Check.
const auditSample = 4

// checkLineage machine-checks the provenance store against the engine:
//
//   - structural closure (lineage.Closure) over the caches the node
//     registries currently hold resident — every resident entry must
//     have a live derivation, every claimed input must be retained or
//     legitimately evicted, and plan fingerprints must be injective;
//   - a sampled derivation audit: the newest pane derivations are
//     recomputed strictly from the record ranges their lineage claims
//     (nothing else), and the result must hash to the SHA the store
//     recorded at build time. A derivation that passes proves its
//     claimed inputs alone reproduce the cached bytes.
//
// The pass is a no-op when the engine has no lineage store attached.
func (o *Oracle) checkLineage(v *Verdict) {
	lin := o.eng.Lineage()
	if lin == nil {
		return
	}
	ctrl := o.eng.Controller()
	var resident []lineage.ResidentRef
	for _, id := range o.eng.MR().Cluster.NodeIDs() {
		reg := ctrl.Registry(id)
		if reg == nil {
			continue
		}
		for _, e := range reg.Entries() {
			if e.Expired || !reg.Has(e.PID, e.Type) {
				continue
			}
			resident = append(resident, lineage.ResidentRef{
				ID: lineage.DerivID(e.PID, int(e.Type)), Node: id,
			})
		}
	}
	for _, bad := range lin.Closure(resident) {
		v.Violations = append(v.Violations, "lineage: "+bad)
	}
	o.auditDerivations(lin, v)
}

// auditDerivations replays the newest pane derivations from their
// claimed raw records. Aggregations audit pane routs (reduce output =
// the bytes windows are finalized from); joins audit pane rins (the
// sorted per-partition map output both sides shuffle from). Both forms
// are exactly what the engine caches, so equality is byte-level.
func (o *Oracle) auditDerivations(lin *lineage.Store, v *Verdict) {
	kind := "pane-rout"
	if len(o.frames) > 1 {
		kind = "pane-rin"
	}
	name := o.eng.AccountName()
	snap := lin.Snapshot()
	audited := 0
	for i := len(snap.Derivations) - 1; i >= 0 && audited < auditSample; i-- {
		d := snap.Derivations[i]
		if d.Kind != kind || d.Expired || d.Query != name {
			continue
		}
		batches, ok := o.claimsOf(lin, d)
		if !ok {
			continue
		}
		recs, skip, err := o.claimedRecords(batches)
		if err != nil {
			v.Violations = append(v.Violations, fmt.Sprintf("lineage: %s: %v", d.ID, err))
			audited++
			continue
		}
		if skip {
			continue // claims reach below the oracle's batch retention
		}
		audited++
		src := o.sourceIndex(batches)
		got := lineage.SHA(o.recomputePane(src, recs, d.Kind, d.Part))
		if got != d.SHA {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"lineage: %s: bytes recomputed from claimed inputs hash %.12s but the store recorded %.12s",
				d.ID, got, d.SHA))
		}
	}
}

// claimsOf resolves a derivation's raw-input claims: pane rins carry
// them directly; an aggregation pane rout claims records through its
// rin input derivation.
func (o *Oracle) claimsOf(lin *lineage.Store, d lineage.Derivation) ([]lineage.BatchRef, bool) {
	if len(d.Batches) > 0 {
		return d.Batches, true
	}
	for _, in := range d.Inputs {
		up, ok := lin.Lookup(in.ID)
		if !ok {
			return nil, false // evicted upstream: nothing to replay
		}
		if len(up.Batches) > 0 {
			return up.Batches, true
		}
	}
	return nil, false
}

// sourceIndex maps the claims' source name back to its query source
// ordinal (claims of one derivation always share a source).
func (o *Oracle) sourceIndex(batches []lineage.BatchRef) int {
	for i, s := range o.q.Sources {
		if s.Name == batches[0].Source {
			return i
		}
	}
	return 0
}

// claimedRecords gathers exactly the record ranges the claims name,
// in claim order. skip=true means a claim reaches below the oracle's
// retained batches (legitimately pruned — not auditable); an error
// means the claim is structurally wrong for a batch the oracle holds.
func (o *Oracle) claimedRecords(batches []lineage.BatchRef) (out []records.Record, skip bool, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, b := range batches {
		src := -1
		for i, s := range o.q.Sources {
			if s.Name == b.Source {
				src = i
				break
			}
		}
		if src < 0 {
			return nil, false, fmt.Errorf("claims batch of unknown source %q", b.Source)
		}
		idx := b.Seq - o.batchBase[src]
		if idx < 0 {
			return nil, true, nil
		}
		if idx >= len(o.batches[src]) {
			return nil, false, fmt.Errorf("claims batch %s/%d beyond the %d ingested",
				b.Source, b.Seq, o.batchBase[src]+len(o.batches[src]))
		}
		recs := o.batches[src][idx]
		for _, rng := range b.Ranges {
			if rng.Lo < 0 || rng.Hi > len(recs) || rng.Lo > rng.Hi {
				return nil, false, fmt.Errorf("claims records [%d,%d) of batch %s/%d, which has %d",
					rng.Lo, rng.Hi, b.Source, b.Seq, len(recs))
			}
			out = append(out, recs[rng.Lo:rng.Hi]...)
		}
	}
	return out, false, nil
}

// recomputePane rebuilds a pane derivation's bytes from raw records
// along the baseline path: map, filter to the derivation's partition,
// then either sort (rin — the engine spills reduce input sorted) or
// sort/group/reduce (rout — the engine caches the pane's reduce
// output).
func (o *Oracle) recomputePane(src int, recs []records.Record, kind string, part int) []byte {
	nR := o.q.NumReducers
	pf := o.q.Partition
	if pf == nil {
		pf = mapreduce.DefaultPartitioner
	}
	var pairs []records.Pair
	emit := func(k, val []byte) {
		if pf(k, nR) == part {
			pairs = append(pairs, records.Pair{Key: k, Value: val})
		}
	}
	for _, rec := range recs {
		o.q.Maps[src](rec.Ts, rec.Data, emit)
	}
	// Cache bytes are columnar, so the audit re-encodes with the same
	// columnar encoder the engine's cache registration uses — the SHA
	// comparison is only meaningful when both sides share the framing.
	if kind == "pane-rin" {
		mapreduce.SortPairs(pairs)
		return colfmt.EncodePairs(pairs)
	}
	out := mapreduce.ReduceGroups(o.q.Reduce, mapreduce.GroupPairs(pairs))
	return colfmt.EncodePairs(out)
}
