package oracle_test

import (
	"strings"
	"testing"

	"redoop/internal/cluster"
	"redoop/internal/core"
	"redoop/internal/dfs"
	"redoop/internal/iocost"
	"redoop/internal/mapreduce"
	"redoop/internal/oracle"
	"redoop/internal/queries"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/workload"
)

const (
	testWin   = 60 * simtime.Minute
	testSlide = 15 * simtime.Minute // pane = 15 min, 4 panes/window, 3 shared
)

// newMR builds an isolated runtime for one test.
func newMR(t *testing.T, workers int, seed int64) *mapreduce.Engine {
	t.Helper()
	ids := make([]int, workers)
	for i := range ids {
		ids[i] = i
	}
	cl := cluster.MustNew(cluster.Config{Workers: workers, MapSlots: 4, ReduceSlots: 2})
	d := dfs.MustNew(dfs.Config{BlockSize: 8 << 10, Replication: 2, Nodes: ids, Seed: seed})
	return mapreduce.MustNew(cl, d, iocost.Default())
}

// run drives one engine window by window with its oracle attached.
type run struct {
	t       *testing.T
	mr      *mapreduce.Engine
	eng     *core.Engine
	ora     *oracle.Oracle
	q       *core.Query
	gen     func(start, end int64, n int) []records.Record
	perPane int
	fed     int64
	lastRes *core.RecurrenceResult
}

// startAgg builds a WCC aggregation engine (optionally on a shared
// controller with a rin-sharing CacheKey) plus its oracle.
func startAgg(t *testing.T, mr *mapreduce.Engine, ctrl *core.Controller, name, cacheKey string) *run {
	t.Helper()
	q := queries.WCCAggregation(name, testWin, testSlide, 4)
	q.Sources[0].CacheKey = cacheKey
	eng, err := core.NewEngine(core.Config{MR: mr, Query: q, Controller: ctrl})
	if err != nil {
		t.Fatalf("engine %s: %v", name, err)
	}
	ora, err := oracle.New(eng)
	if err != nil {
		t.Fatalf("oracle %s: %v", name, err)
	}
	wcc := workload.DefaultWCC(11)
	return &run{
		t: t, mr: mr, eng: eng, ora: ora, q: q, perPane: 400,
		gen: func(start, end int64, n int) []records.Record {
			return workload.WCC(wcc, start, end, n)
		},
	}
}

// feedTo delivers pane-sized batches up to the given unit bound
// through the oracle's tee.
func (r *run) feedTo(unit int64) {
	r.t.Helper()
	ingest := r.ora.WrapIngest(r.eng.Ingest)
	pane := int64(testSlide)
	for ; r.fed < unit; r.fed += pane {
		if err := ingest(0, r.gen(r.fed, r.fed+pane, r.perPane)); err != nil {
			r.t.Fatalf("ingest at unit %d: %v", r.fed, err)
		}
	}
}

// window feeds and runs recurrence i, returning its oracle verdict.
func (r *run) window(i int) oracle.Verdict {
	r.t.Helper()
	r.feedTo(r.q.Spec().WindowClose(i))
	res, err := r.eng.RunNext()
	if err != nil {
		r.t.Fatalf("window %d: %v", i+1, err)
	}
	r.lastRes = res
	return r.ora.Check(res)
}

func requireOK(t *testing.T, v oracle.Verdict) {
	t.Helper()
	if !v.OK() {
		t.Fatalf("window %d failed oracle: match=%v diff=%+v violations=%v",
			v.Recurrence+1, v.Match, v.FirstDiff, v.Violations)
	}
}

// TestOracleCleanRun: a fault-free run verifies every window with
// non-trivial output.
func TestOracleCleanRun(t *testing.T) {
	r := startAgg(t, newMR(t, 4, 7), nil, "q-clean", "")
	for i := 0; i < 5; i++ {
		v := r.window(i)
		requireOK(t, v)
		if v.EnginePairs == 0 {
			t.Fatalf("window %d verified an empty output — workload misconfigured", i+1)
		}
	}
}

// TestOracleCatchesBrokenRecovery is the oracle's self-validation: the
// same cache-loss fault is survived by a correct engine and must be
// flagged on an engine whose §5 recovery path is deliberately broken
// (stale CacheAvailable bit trusted, no 2→1 rollback, lost bytes read
// back empty).
func TestOracleCatchesBrokenRecovery(t *testing.T) {
	dropAll := func(mr *mapreduce.Engine) {
		for _, id := range mr.Cluster.NodeIDs() {
			mr.Cluster.DropLocal(id, "cache/")
		}
	}

	good := startAgg(t, newMR(t, 4, 7), nil, "q-good", "")
	requireOK(t, good.window(0))
	dropAll(good.mr)
	v := good.window(1)
	requireOK(t, v)
	if good.lastRes.CacheRecoveries == 0 {
		t.Fatalf("control run rebuilt nothing — the drop did not exercise recovery")
	}

	broken := startAgg(t, newMR(t, 4, 7), nil, "q-broken", "")
	broken.eng.BreakRecoveryForTest()
	requireOK(t, broken.window(0))
	dropAll(broken.mr)
	bv := broken.window(1)
	if bv.OK() {
		t.Fatalf("oracle passed a window computed with a broken recovery path: %+v", bv)
	}
	if bv.Match {
		t.Logf("note: output matched by luck; invariants caught it: %v", bv.Violations)
	}
}

// TestOracleFlagsIllegalTransition: a silent downgrade to NotAvailable
// (anything other than the §5 rollback 2→1) must surface in the next
// verdict.
func TestOracleFlagsIllegalTransition(t *testing.T) {
	r := startAgg(t, newMR(t, 4, 7), nil, "q-trans", "")
	requireOK(t, r.window(0))
	ctrl := r.eng.Controller()
	var downgraded bool
	for _, sig := range ctrl.Signatures() {
		if sig.Ready == core.CacheAvailable {
			ctrl.SetReady(sig.PID, sig.Type, core.NotAvailable, sig.ReadyAt, sig.NID)
			downgraded = true
			break
		}
	}
	if !downgraded {
		t.Fatalf("no CacheAvailable signature to downgrade")
	}
	v := r.window(1)
	found := false
	for _, viol := range v.Violations {
		if strings.Contains(viol, "illegal ready transition") {
			found = true
		}
	}
	if !found {
		t.Fatalf("illegal 2→0 transition not flagged; violations: %v", v.Violations)
	}
}

// TestOracleFlagsPhantomCache: a CacheAvailable signature whose bytes
// vanish after the recurrence (before anything rolls it back) is a
// materialization violation for the just-served window.
func TestOracleFlagsPhantomCache(t *testing.T) {
	r := startAgg(t, newMR(t, 4, 7), nil, "q-phantom", "")
	requireOK(t, r.window(0))
	r.feedTo(r.q.Spec().WindowClose(1))
	res, err := r.eng.RunNext()
	if err != nil {
		t.Fatalf("window 2: %v", err)
	}
	// Delete the bytes of a surviving pane's rout between RunNext and
	// Check — Check must see the phantom.
	pid := r.q.ReduceOutputPanePID(res.WindowHi, 0)
	sig, ok := r.eng.Controller().Lookup(pid, core.ReduceOutput)
	if !ok {
		t.Fatalf("no signature for %s", pid)
	}
	r.mr.Cluster.Node(sig.NID).DeleteLocal("cache/rout/" + pid)
	v := r.ora.Check(res)
	found := false
	for _, viol := range v.Violations {
		if strings.Contains(viol, "bytes are not resident") {
			found = true
		}
	}
	if !found {
		t.Fatalf("phantom cache not flagged; violations: %v", v.Violations)
	}
}
