package oracle_test

// Regression tests for the recovery edge cases the oracle surfaces:
// interleavings that single-fault tests never hit, each verified by
// the differential check plus the full invariant suite.

import (
	"testing"

	"redoop/internal/core"
)

// TestCacheLossWithNodeCrashSameRecurrence loses caches two ways in
// one recurrence: node 1 crashes (its caches, pane-file replicas and
// timeline all gone) while node 2's cache partition is silently
// dropped. The engine must recover both — crash-homed caches via DFS
// re-replication and full re-map, dropped ones via the lazy-discovery
// rollback — and still produce the exact window answer.
func TestCacheLossWithNodeCrashSameRecurrence(t *testing.T) {
	r := startAgg(t, newMR(t, 5, 7), nil, "q-crashdrop", "")
	requireOK(t, r.window(0))
	requireOK(t, r.window(1))

	r.mr.DFS.FailNode(1)
	r.mr.Cluster.FailNode(1)
	r.mr.Cluster.DropLocal(2, "cache/")

	v := r.window(2)
	requireOK(t, v)
	if r.lastRes.CacheRecoveries == 0 {
		t.Fatalf("no cache recoveries counted — the combined fault did not exercise §5 recovery")
	}
	// Subsequent windows heal back to steady state.
	requireOK(t, r.window(3))
	requireOK(t, r.window(4))
}

// TestSharedGroupRollback exercises the 2→1 rollback of reduce-input
// signatures claimed by two queries in one sharing group: every cache
// (shared rins and both queries' private routs) is dropped after both
// queries consume them. The first query to run discovers the losses,
// rolls the shared signatures back and re-maps every window pane; the
// second query — whose routs are equally gone — must fall back to the
// shared rins its sibling just rebuilt instead of re-mapping, which is
// visible as strictly less map work. Both queries' windows verify
// against independent recomputation.
func TestSharedGroupRollback(t *testing.T) {
	mr := newMR(t, 5, 7)
	ctrl := core.NewController()
	q1 := startAgg(t, mr, ctrl, "q-share-a", "shgrp")
	q2 := startAgg(t, mr, ctrl, "q-share-b", "shgrp")

	requireOK(t, q1.window(0))
	requireOK(t, q2.window(0))

	for _, id := range mr.Cluster.NodeIDs() {
		mr.Cluster.DropLocal(id, "cache/")
	}

	v1 := q1.window(1)
	requireOK(t, v1)
	if q1.lastRes.CacheRecoveries == 0 {
		t.Fatalf("first sharer rebuilt nothing — the caches were not actually lost")
	}
	v2 := q2.window(1)
	requireOK(t, v2)
	if q2.lastRes.CacheRecoveries == 0 {
		t.Fatalf("second sharer counted no recoveries — its routs were not actually lost")
	}
	if q2.lastRes.Stats.MapTasks >= q1.lastRes.Stats.MapTasks {
		t.Fatalf("second sharer re-mapped (%d map tasks, first sharer %d) instead of reusing the rebuilt shared rins",
			q2.lastRes.Stats.MapTasks, q1.lastRes.Stats.MapTasks)
	}
	requireOK(t, q1.window(2))
	requireOK(t, q2.window(2))
}

// TestReplanRacesPendingExpiry forces a §3.3 re-plan (sub-pane split)
// exactly while the previous window's trailing panes are pending
// expiration: the split recurrence and the ones after it must keep
// verifying, the new plan must be in effect, and the registry-hygiene
// invariant confirms pre-split caches are purged on schedule rather
// than leaking through the granularity change.
func TestReplanRacesPendingExpiry(t *testing.T) {
	r := startAgg(t, newMR(t, 5, 7), nil, "q-replan", "")
	requireOK(t, r.window(0))
	requireOK(t, r.window(1))

	if err := r.eng.ForceProactive(2); err != nil {
		t.Fatalf("force proactive: %v", err)
	}
	v := r.window(2)
	requireOK(t, v)
	if !r.lastRes.Proactive || r.lastRes.SubPanes != 2 {
		t.Fatalf("re-plan not in effect: proactive=%v subPanes=%d",
			r.lastRes.Proactive, r.lastRes.SubPanes)
	}
	requireOK(t, r.window(3))

	// Revert to whole panes; the mixed cache population (split and
	// unsplit panes in one window) must still verify and then expire.
	if err := r.eng.ForceProactive(1); err != nil {
		t.Fatalf("revert plan: %v", err)
	}
	requireOK(t, r.window(4))
	requireOK(t, r.window(5))
}
