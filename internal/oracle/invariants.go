package oracle

import (
	"fmt"

	"redoop/internal/core"
	"redoop/internal/window"
)

// checkInvariants appends every structural-invariant failure of the
// just-completed recurrence to v.Violations. All checks are scoped to
// state the recurrence itself is responsible for — the window it just
// served — because caches outside the window may legitimately carry
// stale CacheAvailable bits (§5's loss discovery is lazy, at lookup
// time).
func (o *Oracle) checkInvariants(res *core.RecurrenceResult, v *Verdict) {
	o.drainTransitions(v)
	o.checkCoverage(res, v)
	o.checkMatrixAndCaches(res, v)
	o.checkRegistries(v)
	o.checkHeaders(res, v)
	o.checkAccounting(v)
	o.checkLineage(v)
}

// drainTransitions moves illegal ready transitions recorded by the
// controller hook since the previous Check into the verdict.
func (o *Oracle) drainTransitions(v *Verdict) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v.Violations = append(v.Violations, o.illegal...)
	o.illegal = nil
}

// windowRanges returns each source's inclusive pane range for r.
func (o *Oracle) windowRanges(r int) (los, his []window.PaneID) {
	for _, f := range o.frames {
		lo, hi := f.WindowRange(r)
		los, his = append(los, lo), append(his, hi)
	}
	return
}

// checkCoverage asserts every pane of the window was consumed exactly
// once: the engine's new/reused accounting must add up to the window's
// pane count per source, and for joins the pane-tuple accounting to
// the product of per-source counts.
func (o *Oracle) checkCoverage(res *core.RecurrenceResult, v *Verdict) {
	los, his := o.windowRanges(res.Recurrence)
	wantPanes := 0
	wantTuples := 1
	for d := range o.frames {
		n := int(his[d] - los[d] + 1)
		wantPanes += n
		wantTuples *= n
	}
	if got := res.NewPanes + res.ReusedPanes; got != wantPanes {
		v.Violations = append(v.Violations, fmt.Sprintf(
			"coverage: window has %d panes but engine accounted %d (new %d + reused %d)",
			wantPanes, got, res.NewPanes, res.ReusedPanes))
	}
	if len(o.frames) > 1 {
		if got := res.NewPairs + res.ReusedPairs; got != wantTuples {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"coverage: window has %d pane tuples but engine accounted %d (new %d + reused %d)",
				wantTuples, got, res.NewPairs, res.ReusedPairs))
		}
	}
}

// checkMatrixAndCaches asserts done-mask consistency with materialized
// state: every in-window pane (and tuple) is marked done in the
// StatusMatrix, and the reduce-side caches the window's finalization
// read this recurrence — aggregation pane routs, join pane rins and
// tuple routs — are registered CacheAvailable with bytes resident.
// Chaos injects only between recurrences, so at Check time nothing may
// have disturbed them yet; a CacheAvailable signature without resident
// bytes here means the engine published a result it could not have
// read.
func (o *Oracle) checkMatrixAndCaches(res *core.RecurrenceResult, v *Verdict) {
	r := res.Recurrence
	los, his := o.windowRanges(r)
	// Panes below the next window's low edge expired at the end of
	// this recurrence — the engine rightly purged their caches during
	// retirement — so cache-residence checks cover only the panes
	// surviving into window r+1.
	nextLos, _ := o.windowRanges(r + 1)
	matrix := o.eng.Matrix()
	ctrl := o.eng.Controller()

	requireCache := func(pid string, typ core.CacheType, what string) {
		sig, ok := ctrl.Lookup(pid, typ)
		if !ok {
			v.Violations = append(v.Violations, fmt.Sprintf("%s: no signature for %s", what, pid))
			return
		}
		if sig.Ready != core.CacheAvailable {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"%s: %s is %s, want CacheAvailable after the recurrence", what, pid, sig.Ready))
			return
		}
		reg := ctrl.Registry(sig.NID)
		if reg == nil || !reg.Has(pid, typ) {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"%s: %s registered CacheAvailable on node %d but bytes are not resident", what, pid, sig.NID))
		}
	}

	if len(o.frames) == 1 {
		for p := los[0]; p <= his[0]; p++ {
			if done, err := matrix.Done(p); err != nil || !done {
				v.Violations = append(v.Violations, fmt.Sprintf(
					"matrix: in-window pane %d not marked done (err %v)", int64(p), err))
			}
			if p < nextLos[0] {
				continue
			}
			for part := 0; part < o.q.NumReducers; part++ {
				requireCache(o.q.ReduceOutputPanePID(p, part), core.ReduceOutput, "agg rout")
			}
		}
		return
	}

	// Join: per-source pane rins, then the full tuple grid.
	for d, f := range o.frames {
		for p := los[d]; p <= his[d]; p++ {
			if p < nextLos[d] {
				continue
			}
			for part := 0; part < o.q.NumReducers; part++ {
				requireCache(o.q.ReduceInputPID(d, f.Pane, p, part), core.ReduceInput, "join rin")
			}
		}
	}
	tuple := make([]window.PaneID, len(o.frames))
	var walk func(dim int)
	walk = func(dim int) {
		if dim == len(o.frames) {
			coords := append([]window.PaneID(nil), tuple...)
			if done, err := matrix.Done(coords...); err != nil || !done {
				v.Violations = append(v.Violations, fmt.Sprintf(
					"matrix: in-window tuple %v not marked done (err %v)", coords, err))
			}
			// A tuple's rout survives only while every coordinate
			// survives (its lifespan ends with its first expired pane).
			for dim, p := range coords {
				if p < nextLos[dim] {
					return
				}
			}
			for part := 0; part < o.q.NumReducers; part++ {
				requireCache(o.q.ReduceOutputTuplePID(coords, part), core.ReduceOutput, "join rout")
			}
			return
		}
		for p := los[dim]; p <= his[dim]; p++ {
			tuple[dim] = p
			walk(dim + 1)
		}
	}
	walk(0)
}

// checkAccounting asserts the cost ledger's conservation invariants
// when one is attached (see internal/account): the query's slot-held
// compute cannot exceed the cluster's total accrued busy time (every
// metered nanosecond was also charged to a node via AddLoad), the
// ledger's residency counters must reconcile (registered = expired +
// open), and every residency still accruing byte·seconds must map to a
// live CacheAvailable controller signature of the same size — occupancy
// may only be charged for bytes the scheduler can actually find.
// Chaos-dropped caches are discovered lazily (§5) at the next lookup,
// which closes their residencies before this runs, so at Check time the
// ledger and controller must agree.
func (o *Oracle) checkAccounting(v *Verdict) {
	acct := o.eng.Account()
	if acct == nil {
		return
	}
	name := o.eng.AccountName()
	var busy int64
	for _, n := range o.eng.MR().Cluster.Nodes() {
		busy += int64(n.Load())
	}
	if err := acct.CheckConservation(busy, name); err != nil {
		v.Violations = append(v.Violations, fmt.Sprintf("accounting: %v", err))
	}
	ctrl := o.eng.Controller()
	for _, r := range acct.OpenResidencies() {
		if r.Query != name {
			continue
		}
		sig, ok := ctrl.Lookup(r.PID, core.CacheType(r.Type))
		if !ok {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"accounting: open residency %s (type %d) has no controller signature", r.PID, r.Type))
			continue
		}
		if sig.Ready != core.CacheAvailable {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"accounting: open residency %s (type %d) is %s, want CacheAvailable", r.PID, r.Type, sig.Ready))
			continue
		}
		if sig.Bytes != r.Bytes {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"accounting: open residency %s (type %d) accrues %d bytes but the controller records %d",
				r.PID, r.Type, r.Bytes, sig.Bytes))
		}
	}
}

// checkRegistries asserts node-registry hygiene: after the managers'
// purge tick no entry may be both expired and still resident, and no
// unexpired resident entry may lack its controller signature (orphaned
// bytes that nothing can ever find or purge).
func (o *Oracle) checkRegistries(v *Verdict) {
	ctrl := o.eng.Controller()
	for _, id := range o.eng.MR().Cluster.NodeIDs() {
		reg := ctrl.Registry(id)
		if reg == nil {
			continue
		}
		for _, e := range reg.Entries() {
			resident := reg.Has(e.PID, e.Type)
			if e.Expired && resident {
				v.Violations = append(v.Violations, fmt.Sprintf(
					"registry node %d: expired entry %s (%s) still resident after purge tick", id, e.PID, e.Type))
			}
			if !e.Expired && resident {
				if _, ok := ctrl.Lookup(e.PID, e.Type); !ok {
					v.Violations = append(v.Violations, fmt.Sprintf(
						"registry node %d: resident entry %s (%s) has no controller signature (orphaned bytes)", id, e.PID, e.Type))
				}
			}
		}
	}
}

// checkHeaders cross-checks shared multi-pane file headers (§3.2)
// against the segments the engine charged to each in-window pane: the
// header must parse, tile its body exactly, and attribute the pane to
// the same byte range the Packer reported. Paths a chaos schedule
// deliberately damaged are skipped.
func (o *Oracle) checkHeaders(res *core.RecurrenceResult, v *Verdict) {
	o.mu.Lock()
	excluded := make(map[string]bool, len(o.excluded))
	for p := range o.excluded {
		excluded[p] = true
	}
	o.mu.Unlock()
	d := o.eng.MR().DFS
	los, his := o.windowRanges(res.Recurrence)
	// Expired panes' files were dropped at retirement; only surviving
	// panes still have bytes to cross-check.
	nextLos, _ := o.windowRanges(res.Recurrence + 1)
	for src := range o.frames {
		for p := nextLos[src]; p <= his[src]; p++ {
			if p < los[src] {
				continue
			}
			inputs, ok := o.eng.PaneInputs(src, p)
			if !ok {
				continue
			}
			for _, pi := range inputs {
				if pi.HeaderBytes == 0 || excluded[pi.Input.Path] {
					continue
				}
				path := pi.Input.Path
				hdr, err := d.Read(path + ".hdr")
				if err != nil {
					v.Violations = append(v.Violations, fmt.Sprintf(
						"header: pane %d segment %s has no readable header: %v", int64(p), path, err))
					continue
				}
				size, err := d.Size(path)
				if err != nil {
					v.Violations = append(v.Violations, fmt.Sprintf(
						"header: pane %d shared file %s unreadable: %v", int64(p), path, err))
					continue
				}
				entries, err := core.ParsePaneHeader(hdr, size)
				if err != nil {
					v.Violations = append(v.Violations, fmt.Sprintf("header: %s: %v", path, err))
					continue
				}
				found := false
				for _, e := range entries {
					if e.Pane == int64(p) {
						found = true
						if e.Offset != pi.Input.Offset || e.Length != pi.Input.Length {
							v.Violations = append(v.Violations, fmt.Sprintf(
								"header: %s attributes pane %d to [%d,+%d) but engine read [%d,+%d)",
								path, int64(p), e.Offset, e.Length, pi.Input.Offset, pi.Input.Length))
						}
					}
				}
				if !found {
					v.Violations = append(v.Violations, fmt.Sprintf(
						"header: %s has no entry for pane %d the engine read from it", path, int64(p)))
				}
			}
		}
	}
}
