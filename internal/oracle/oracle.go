// Package oracle is the differential checker for the Redoop engine:
// after every recurrence it recomputes the window answer from the raw
// ingested records along the plain map/shuffle/reduce path — no panes,
// no caches, no recovery — and asserts byte-equality with the engine's
// cache-assisted, possibly fault-recovered output. Alongside the
// differential check it validates the structural invariants the
// paper's architecture promises after a recurrence completes:
//
//   - every Ready transition in the controller's signature lifecycle
//     is legal — upgrades/refreshes, or the §5 cache-loss rollback
//     CacheAvailable→HDFSAvailable; never a silent drop to
//     NotAvailable;
//   - the StatusMatrix done-mask agrees with actually-materialized
//     panes: every pane (and pane tuple, for joins) of the window is
//     marked done and its reduce-side caches are registered
//     CacheAvailable with their bytes resident;
//   - no node registry holds orphaned bytes (an unexpired cached
//     entry whose signature is gone) or expired-but-resident entries
//     after the managers' purge tick;
//   - window coverage: every pane in the window is consumed exactly
//     once per recurrence (pane and pane-tuple counts add up), and
//     shared-file headers attribute each consumed segment to the pane
//     the engine charged it to;
//   - when a lineage store is attached, provenance closure — every
//     resident cache copy has a live derivation and every claimed
//     batch or input edge resolves (or was legitimately evicted) —
//     plus sampled derivation audits that recompute pane bytes
//     strictly from the lineage-claimed input records and assert
//     SHA-256 equality with what the store recorded at build time.
//
// ReStore (VLDB 2012) frames why this matters: result-reuse systems
// are only as good as the equivalence of reused sub-results with
// recomputation. The oracle checks that equivalence mechanically under
// any fault schedule the chaos package can produce.
package oracle

import (
	"bytes"
	"fmt"
	"sync"

	"redoop/internal/core"
	"redoop/internal/mapreduce"
	"redoop/internal/records"
	"redoop/internal/window"
)

// Diff pinpoints the first divergence between the engine's window
// output and the oracle's recomputation, in canonical (sorted) order.
type Diff struct {
	Index     int    `json:"index"`
	EngineKV  string `json:"engineKV"`  // "key=value" at Index on the engine side, "" if absent
	OracleKV  string `json:"oracleKV"`  // same on the recomputation side
	EngineLen int    `json:"engineLen"` // total pairs, engine
	OracleLen int    `json:"oracleLen"` // total pairs, recomputation
}

// Verdict is one recurrence's oracle result.
type Verdict struct {
	Recurrence int `json:"recurrence"`
	// Match reports byte-equality of the canonicalized outputs.
	Match bool `json:"match"`
	// EnginePairs / OraclePairs are the compared output sizes.
	EnginePairs int `json:"enginePairs"`
	OraclePairs int `json:"oraclePairs"`
	// FirstDiff locates the first canonical-order divergence.
	FirstDiff *Diff `json:"firstDiff,omitempty"`
	// Violations lists every structural-invariant failure.
	Violations []string `json:"violations,omitempty"`
}

// OK reports whether the recurrence passed both the differential
// check and every invariant.
func (v Verdict) OK() bool { return v.Match && len(v.Violations) == 0 }

// Err summarizes a failing verdict; nil when OK.
func (v Verdict) Err() error {
	if v.OK() {
		return nil
	}
	if !v.Match {
		d := v.FirstDiff
		return fmt.Errorf("oracle: recurrence %d diverged (engine %d pairs, recomputation %d; first diff at %d: engine %q vs oracle %q; %d invariant violations)",
			v.Recurrence, v.EnginePairs, v.OraclePairs, d.Index, d.EngineKV, d.OracleKV, len(v.Violations))
	}
	return fmt.Errorf("oracle: recurrence %d violated %d invariant(s): %s",
		v.Recurrence, len(v.Violations), v.Violations[0])
}

// Oracle checks one engine's run. Create with New, route every batch
// through WrapIngest (or mirror them with Observe), and call Check
// after each RunNext.
type Oracle struct {
	eng    *core.Engine
	q      *core.Query
	frames []window.Frame

	mu       sync.Mutex
	recs     [][]records.Record // retained raw records per source
	illegal  []string           // illegal ready transitions since last Check
	excluded map[string]bool    // paths with deliberately damaged bytes
	// batches retains each non-empty ingested batch separately, indexed
	// by (source, seq − batchBase[source]); the seq axis is aligned with
	// the lineage store's per-source batch numbering because both count
	// the same serial Ingest calls. The lineage audit replays a
	// derivation's claimed record ranges from here.
	batches   [][][]records.Record
	batchBase []int
}

// New builds an oracle bound to one engine and installs its ready-
// transition hook on the engine's controller (one oracle per
// controller; a later New on a shared controller replaces the hook).
func New(eng *core.Engine) (*Oracle, error) {
	q := eng.Query()
	frames, err := q.Frames()
	if err != nil {
		return nil, err
	}
	o := &Oracle{
		eng:       eng,
		q:         q,
		frames:    frames,
		recs:      make([][]records.Record, len(q.Sources)),
		excluded:  map[string]bool{},
		batches:   make([][][]records.Record, len(q.Sources)),
		batchBase: make([]int, len(q.Sources)),
	}
	eng.Controller().SetTransitionHook(func(pid string, typ core.CacheType, from, to core.Ready) {
		if to < from && !(from == core.CacheAvailable && to == core.HDFSAvailable) {
			o.mu.Lock()
			o.illegal = append(o.illegal,
				fmt.Sprintf("illegal ready transition %s→%s on %s (%s)", from, to, pid, typ))
			o.mu.Unlock()
		}
	})
	return o, nil
}

// Observe mirrors one ingested batch into the oracle's raw-record
// retention. Call it with exactly what the engine ingests (order and
// timing don't matter — only membership does).
func (o *Oracle) Observe(src int, recs []records.Record) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.recs[src] = append(o.recs[src], recs...)
	if len(recs) > 0 {
		// Empty batches are skipped to stay seq-aligned with the
		// lineage store, which records only non-empty ingests.
		o.batches[src] = append(o.batches[src], append([]records.Record(nil), recs...))
	}
}

// WrapIngest tees batches into the oracle on their way to inner.
func (o *Oracle) WrapIngest(inner func(src int, recs []records.Record) error) func(src int, recs []records.Record) error {
	return func(src int, recs []records.Record) error {
		o.Observe(src, recs)
		return inner(src, recs)
	}
}

// ExcludePath exempts a DFS path from the header cross-check — used
// for files a chaos schedule deliberately corrupted or truncated.
func (o *Oracle) ExcludePath(path string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.excluded[path] = true
}

// Check verifies one completed recurrence: differential recomputation
// plus the structural invariants. It must be called after the
// RunNext that produced res and before any further fault injection.
func (o *Oracle) Check(res *core.RecurrenceResult) Verdict {
	v := Verdict{Recurrence: res.Recurrence}
	ref := o.recompute(res.Recurrence)
	eng := canonical(res.Output)
	oc := canonical(ref)
	v.EnginePairs, v.OraclePairs = len(eng), len(oc)
	v.Match = bytes.Equal(records.EncodePairs(eng), records.EncodePairs(oc))
	if !v.Match {
		v.FirstDiff = firstDiff(eng, oc)
	}
	o.checkInvariants(res, &v)
	o.prune(res.Recurrence)
	return v
}

// canonical sorts a copy of pairs by key then value, the order-
// insensitive comparison basis (the engine emits partitions in
// partition order, the flat recomputation in its own order; both are
// permutations of the same multiset iff results agree).
func canonical(pairs []records.Pair) []records.Pair {
	cp := append([]records.Pair(nil), pairs...)
	mapreduce.SortPairs(cp)
	return cp
}

func firstDiff(eng, oc []records.Pair) *Diff {
	n := len(eng)
	if len(oc) < n {
		n = len(oc)
	}
	d := &Diff{Index: n, EngineLen: len(eng), OracleLen: len(oc)}
	for i := 0; i < n; i++ {
		if !bytes.Equal(eng[i].Key, oc[i].Key) || !bytes.Equal(eng[i].Value, oc[i].Value) {
			d.Index = i
			break
		}
	}
	if d.Index < len(eng) {
		d.EngineKV = fmt.Sprintf("%q=%q", eng[d.Index].Key, eng[d.Index].Value)
	}
	if d.Index < len(oc) {
		d.OracleKV = fmt.Sprintf("%q=%q", oc[d.Index].Key, oc[d.Index].Value)
	}
	return d
}

// recompute derives recurrence r's window answer from the retained raw
// records along the baseline path: per-source window filter → map →
// partition → sort/group → reduce (composed with the Merge
// finalization exactly as the plain-Hadoop driver composes them),
// partitions concatenated in order.
func (o *Oracle) recompute(r int) []records.Pair {
	o.mu.Lock()
	defer o.mu.Unlock()
	nR := o.q.NumReducers
	part := o.q.Partition
	if part == nil {
		part = mapreduce.DefaultPartitioner
	}
	buckets := make([][]records.Pair, nR)
	for d, frame := range o.frames {
		lo, hi := frame.WindowRange(r)
		start, end := frame.PaneStart(lo), frame.PaneEnd(hi)
		emit := func(k, val []byte) {
			p := part(k, nR)
			buckets[p] = append(buckets[p], records.Pair{Key: k, Value: val})
		}
		for _, rec := range o.recs[d] {
			if rec.Ts >= start && rec.Ts < end {
				o.q.Maps[d](rec.Ts, rec.Data, emit)
			}
		}
	}
	reduceFn := o.q.Reduce
	if o.q.Merge != nil {
		reduceFn = func(key []byte, values [][]byte, emit mapreduce.Emitter) {
			var partials [][]byte
			o.q.Reduce(key, values, func(_, v []byte) { partials = append(partials, v) })
			o.q.Merge(key, partials, emit)
		}
	}
	var out []records.Pair
	for p := 0; p < nR; p++ {
		out = append(out, mapreduce.ReduceGroups(reduceFn, mapreduce.GroupPairs(buckets[p]))...)
	}
	return out
}

// prune drops retained records no future window can reference.
func (o *Oracle) prune(r int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for d, frame := range o.frames {
		lo, _ := frame.WindowRange(r + 1)
		start := frame.PaneStart(lo)
		kept := o.recs[d][:0]
		for _, rec := range o.recs[d] {
			if rec.Ts >= start {
				kept = append(kept, rec)
			}
		}
		o.recs[d] = kept
		// Batch retention drops only a fully-expired prefix: a batch
		// straddling the cutoff must stay whole because lineage claims
		// reference record indexes within the original batch.
		for len(o.batches[d]) > 0 {
			all := true
			for _, rec := range o.batches[d][0] {
				if rec.Ts >= start {
					all = false
					break
				}
			}
			if !all {
				break
			}
			o.batches[d] = o.batches[d][1:]
			o.batchBase[d]++
		}
	}
}
