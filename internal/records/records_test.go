package records

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []Record{
		{Ts: 0, Data: []byte("alpha")},
		{Ts: -5, Data: nil},
		{Ts: 1 << 40, Data: []byte{0, 1, 2, 255}},
		{Ts: 7, Data: bytes.Repeat([]byte("x"), 1000)},
	}
	enc := Encode(in)
	out, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Ts != in[i].Ts || !bytes.Equal(out[i].Data, in[i].Data) {
			t.Errorf("record %d mismatch: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestEncodedSizeMatchesAppend(t *testing.T) {
	r := Record{Ts: 123456789, Data: []byte("payload")}
	if got := len(r.Append(nil)); got != r.EncodedSize() {
		t.Errorf("EncodedSize = %d, Append produced %d bytes", r.EncodedSize(), got)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode([]Record{{Ts: 1, Data: []byte("abcdef")}})
	// Truncated payload.
	if _, err := Decode(good[:len(good)-2]); err == nil {
		t.Error("truncated buffer should fail")
	}
	// Garbage varint: 10 continuation bytes overflow MaxVarintLen64.
	junk := bytes.Repeat([]byte{0x80}, 12)
	if _, err := Decode(junk); err == nil {
		t.Error("overlong varint should fail")
	}
}

func TestVisitEarlyStop(t *testing.T) {
	enc := Encode([]Record{{Ts: 1}, {Ts: 2}, {Ts: 3}})
	var seen []int64
	err := Visit(enc, func(ts int64, _ []byte) bool {
		seen = append(seen, ts)
		return ts < 2
	})
	if err != nil {
		t.Fatalf("Visit: %v", err)
	}
	if !reflect.DeepEqual(seen, []int64{1, 2}) {
		t.Errorf("seen = %v, want [1 2]", seen)
	}
}

func TestVisitOffsets(t *testing.T) {
	recs := []Record{{Ts: 10, Data: []byte("aa")}, {Ts: 20, Data: []byte("bbbb")}}
	enc := Encode(recs)
	var offs []int
	err := VisitOffsets(enc, func(off int, ts int64, payload []byte) bool {
		offs = append(offs, off)
		return true
	})
	if err != nil {
		t.Fatalf("VisitOffsets: %v", err)
	}
	want := []int{0, recs[0].EncodedSize()}
	if !reflect.DeepEqual(offs, want) {
		t.Errorf("offsets = %v, want %v", offs, want)
	}
}

func TestCount(t *testing.T) {
	enc := Encode([]Record{{Ts: 1}, {Ts: 2}, {Ts: 3}})
	n, err := Count(enc)
	if err != nil || n != 3 {
		t.Errorf("Count = %d, %v; want 3, nil", n, err)
	}
	if n, err := Count(nil); err != nil || n != 0 {
		t.Errorf("Count(nil) = %d, %v; want 0, nil", n, err)
	}
}

func TestPairsRoundTrip(t *testing.T) {
	in := []Pair{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: nil, Value: []byte("only-value")},
		{Key: []byte("k3"), Value: nil},
	}
	enc := EncodePairs(in)
	if int64(len(enc)) != PairsSize(in) {
		t.Errorf("encoded length %d != PairsSize %d", len(enc), PairsSize(in))
	}
	out, err := DecodePairs(enc)
	if err != nil {
		t.Fatalf("DecodePairs: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d pairs, want %d", len(out), len(in))
	}
	for i := range in {
		if !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Errorf("pair %d mismatch", i)
		}
	}
}

func TestDecodePairsErrors(t *testing.T) {
	enc := EncodePairs([]Pair{{Key: []byte("abc"), Value: []byte("defg")}})
	if _, err := DecodePairs(enc[:len(enc)-1]); err == nil {
		t.Error("truncated pair buffer should fail")
	}
}

// Property: Encode/Decode round-trips arbitrary record batches.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(tss []int64, blobs [][]byte) bool {
		n := len(tss)
		if len(blobs) < n {
			n = len(blobs)
		}
		in := make([]Record, n)
		for i := 0; i < n; i++ {
			in[i] = Record{Ts: tss[i], Data: blobs[i]}
		}
		out, err := Decode(Encode(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Ts != in[i].Ts || !bytes.Equal(out[i].Data, in[i].Data) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: pair encoding round-trips and sizes agree.
func TestPairRoundTripProperty(t *testing.T) {
	f := func(keys, vals [][]byte) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		in := make([]Pair, n)
		for i := 0; i < n; i++ {
			in[i] = Pair{Key: keys[i], Value: vals[i]}
		}
		enc := EncodePairs(in)
		if int64(len(enc)) != PairsSize(in) {
			return false
		}
		out, err := DecodePairs(enc)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
