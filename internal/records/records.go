// Package records defines the on-"disk" record representation shared by
// the DFS, the MapReduce runtime and the workload generators.
//
// A Record is one timestamped tuple of an evolving data source. Batch
// files in HDFS hold sequences of records; per the paper's data model
// (§2.1) the time ranges covered by successive batch files do not
// overlap and are in order, but records *within* a file are unordered.
//
// The encoding is a simple length-prefixed binary format (varint
// timestamp, varint payload length, payload bytes) so that encoded size
// tracks real data volume — the quantity the I/O cost model charges for.
package records

import (
	"encoding/binary"
	"fmt"
)

// Record is one tuple: a timestamp on the source's unit axis plus an
// opaque payload that the query's map function parses.
type Record struct {
	Ts   int64
	Data []byte
}

// EncodedSize returns the number of bytes Encode will append for r.
func (r Record) EncodedSize() int {
	return varintLen(r.Ts) + uvarintLen(uint64(len(r.Data))) + len(r.Data)
}

func varintLen(v int64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutVarint(buf[:], v)
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

// Append encodes r onto dst and returns the extended slice.
func (r Record) Append(dst []byte) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], r.Ts)
	dst = append(dst, buf[:n]...)
	n = binary.PutUvarint(buf[:], uint64(len(r.Data)))
	dst = append(dst, buf[:n]...)
	return append(dst, r.Data...)
}

// Encode serializes a batch of records into one byte slice.
func Encode(recs []Record) []byte {
	size := 0
	for _, r := range recs {
		size += r.EncodedSize()
	}
	out := make([]byte, 0, size)
	for _, r := range recs {
		out = r.Append(out)
	}
	return out
}

// Decode parses every record from data. It returns an error on any
// truncation or malformed prefix, identifying the byte offset.
func Decode(data []byte) ([]Record, error) {
	var out []Record
	off := 0
	for off < len(data) {
		rec, n, err := DecodeOne(data[off:])
		if err != nil {
			return nil, fmt.Errorf("records: at offset %d: %w", off, err)
		}
		out = append(out, rec)
		off += n
	}
	return out, nil
}

// DecodeOne parses a single record from the front of data, returning it
// and the number of bytes consumed.
func DecodeOne(data []byte) (Record, int, error) {
	ts, n := binary.Varint(data)
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("bad timestamp varint")
	}
	off := n
	l, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("bad length varint")
	}
	off += n
	if uint64(len(data)-off) < l {
		return Record{}, 0, fmt.Errorf("truncated payload: want %d bytes, have %d", l, len(data)-off)
	}
	payload := make([]byte, l)
	copy(payload, data[off:off+int(l)])
	return Record{Ts: ts, Data: payload}, off + int(l), nil
}

// Visit decodes data record by record, invoking fn for each without
// materializing the whole slice. The payload passed to fn aliases data
// and must not be retained. Visit stops early if fn returns false.
func Visit(data []byte, fn func(ts int64, payload []byte) bool) error {
	off := 0
	for off < len(data) {
		ts, n := binary.Varint(data[off:])
		if n <= 0 {
			return fmt.Errorf("records: bad timestamp varint at offset %d", off)
		}
		off += n
		l, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return fmt.Errorf("records: bad length varint at offset %d", off)
		}
		off += n
		if uint64(len(data)-off) < l {
			return fmt.Errorf("records: truncated payload at offset %d", off)
		}
		if !fn(ts, data[off:off+int(l)]) {
			return nil
		}
		off += int(l)
	}
	return nil
}

// VisitOffsets is Visit with each record's starting byte offset supplied
// to fn. The MapReduce runtime uses it to assign records to block splits
// by start offset (a record straddling a block boundary belongs to the
// split containing its first byte, Hadoop's input-split convention).
func VisitOffsets(data []byte, fn func(off int, ts int64, payload []byte) bool) error {
	off := 0
	for off < len(data) {
		start := off
		ts, n := binary.Varint(data[off:])
		if n <= 0 {
			return fmt.Errorf("records: bad timestamp varint at offset %d", off)
		}
		off += n
		l, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return fmt.Errorf("records: bad length varint at offset %d", off)
		}
		off += n
		if uint64(len(data)-off) < l {
			return fmt.Errorf("records: truncated payload at offset %d", off)
		}
		if !fn(start, ts, data[off:off+int(l)]) {
			return nil
		}
		off += int(l)
	}
	return nil
}

// Count returns the number of records in an encoded buffer, or an error
// if the buffer is malformed.
func Count(data []byte) (int, error) {
	n := 0
	err := Visit(data, func(int64, []byte) bool { n++; return true })
	return n, err
}

// Pair is one intermediate or output key/value pair of a MapReduce job.
type Pair struct {
	Key   []byte
	Value []byte
}

// PairSize returns the modelled byte size of a pair (key + value plus a
// small framing constant, matching the encoded form below).
func PairSize(p Pair) int64 {
	return int64(uvarintLen(uint64(len(p.Key))) + uvarintLen(uint64(len(p.Value))) + len(p.Key) + len(p.Value))
}

// PairsSize returns the total modelled byte size of a pair slice.
func PairsSize(ps []Pair) int64 {
	var n int64
	for _, p := range ps {
		n += PairSize(p)
	}
	return n
}

// EncodePairs serializes pairs with the same varint framing as records;
// cached reduce inputs and outputs are stored in this form on task
// nodes' local file systems.
func EncodePairs(ps []Pair) []byte {
	var size int64
	for _, p := range ps {
		size += PairSize(p)
	}
	out := make([]byte, 0, size)
	var buf [binary.MaxVarintLen64]byte
	for _, p := range ps {
		n := binary.PutUvarint(buf[:], uint64(len(p.Key)))
		out = append(out, buf[:n]...)
		n = binary.PutUvarint(buf[:], uint64(len(p.Value)))
		out = append(out, buf[:n]...)
		out = append(out, p.Key...)
		out = append(out, p.Value...)
	}
	return out
}

// DecodePairs parses an EncodePairs buffer.
func DecodePairs(data []byte) ([]Pair, error) {
	var out []Pair
	off := 0
	for off < len(data) {
		kl, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("records: bad key length at offset %d", off)
		}
		off += n
		vl, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("records: bad value length at offset %d", off)
		}
		off += n
		if uint64(len(data)-off) < kl+vl {
			return nil, fmt.Errorf("records: truncated pair at offset %d", off)
		}
		k := make([]byte, kl)
		copy(k, data[off:off+int(kl)])
		off += int(kl)
		v := make([]byte, vl)
		copy(v, data[off:off+int(vl)])
		off += int(vl)
		out = append(out, Pair{Key: k, Value: v})
	}
	return out, nil
}
