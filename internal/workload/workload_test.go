package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"redoop/internal/records"
	"redoop/internal/simtime"
)

func TestWCCDeterministicAndInRange(t *testing.T) {
	cfg := DefaultWCC(7)
	a := WCC(cfg, 100, 200, 500)
	b := WCC(cfg, 100, 200, 500)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("got %d/%d records", len(a), len(b))
	}
	for i := range a {
		if a[i].Ts != b[i].Ts || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatal("generator must be deterministic per seed")
		}
		if a[i].Ts < 100 || a[i].Ts >= 200 {
			t.Fatalf("timestamp %d outside [100,200)", a[i].Ts)
		}
		if i > 0 && a[i].Ts < a[i-1].Ts {
			t.Fatal("batch must be timestamp-ordered")
		}
	}
}

func TestWCCSchema(t *testing.T) {
	recs := WCC(DefaultWCC(1), 0, 1000, 50)
	for _, r := range recs {
		fields := strings.Split(string(r.Data), ",")
		if len(fields) != 7 {
			t.Fatalf("WCC record %q has %d fields, want 7", r.Data, len(fields))
		}
		if !strings.HasPrefix(fields[0], "c") || !strings.HasPrefix(fields[1], "obj") {
			t.Fatalf("WCC record %q has wrong client/object fields", r.Data)
		}
	}
}

func TestWCCSkew(t *testing.T) {
	recs := WCC(DefaultWCC(3), 0, int64(simtime.Hour), 20000)
	counts := map[string]int{}
	for _, r := range recs {
		obj := strings.Split(string(r.Data), ",")[1]
		counts[obj]++
	}
	if counts["obj0"] < counts["obj9"]*2 {
		t.Errorf("Zipf skew missing: obj0=%d obj9=%d", counts["obj0"], counts["obj9"])
	}
}

func TestWCCEmptyInputs(t *testing.T) {
	if got := WCC(DefaultWCC(1), 0, 100, 0); got != nil {
		t.Error("zero records should yield nil")
	}
	if got := WCC(DefaultWCC(1), 200, 100, 10); got != nil {
		t.Error("inverted range should yield nil")
	}
}

func TestFFGSchemas(t *testing.T) {
	cfg := DefaultFFG(5)
	readings := FFGReadings(cfg, 0, 1000, 100)
	for _, r := range readings {
		fields := strings.Split(string(r.Data), ",")
		if len(fields) != 6 {
			t.Fatalf("reading %q has %d fields, want 6", r.Data, len(fields))
		}
		if !strings.HasPrefix(fields[0], "s") {
			t.Fatalf("reading %q missing sensor field", r.Data)
		}
	}
	events := FFGEvents(cfg, 0, 1000, 100)
	for _, r := range events {
		fields := strings.Split(string(r.Data), ",")
		if len(fields) != 3 {
			t.Fatalf("event %q has %d fields, want 3", r.Data, len(fields))
		}
	}
}

func TestFFGEventKeysNarrowPopulation(t *testing.T) {
	cfg := DefaultFFG(9)
	cfg.EventKeys = 5
	events := FFGEvents(cfg, 0, int64(simtime.Hour), 2000)
	seen := map[string]bool{}
	for _, r := range events {
		seen[strings.Split(string(r.Data), ",")[0]] = true
	}
	if len(seen) > 5 {
		t.Errorf("event keys should be capped at 5, saw %d", len(seen))
	}
}

func TestSteadyRate(t *testing.T) {
	for s := 0; s < 5; s++ {
		if SteadyRate(s) != 1 {
			t.Fatal("steady rate must be 1")
		}
	}
}

// §6.3: windows 1, 4, 7 and 10 carry the normal workload; the rest are
// doubled. With one slide per window, slide s first feeds window
// s-slidesPerWindow+2.
func TestPaperFluctuation(t *testing.T) {
	sched := PaperFluctuation(10)
	// Slides 0..9 feed window 1: normal.
	for s := 0; s < 10; s++ {
		if sched(s) != 1 {
			t.Errorf("slide %d should be normal", s)
		}
	}
	// Slides 10..18 feed windows 2..10.
	want := map[int]float64{
		10: 2, 11: 2, // windows 2, 3
		12: 1,        // window 4
		13: 2, 14: 2, // windows 5, 6
		15: 1,        // window 7
		16: 2, 17: 2, // windows 8, 9
		18: 1, // window 10
	}
	for s, m := range want {
		if got := sched(s); got != m {
			t.Errorf("slide %d multiplier = %v, want %v", s, got, m)
		}
	}
}

func TestBatches(t *testing.T) {
	cfg := DefaultWCC(11)
	sched := func(s int) float64 {
		if s == 1 {
			return 2
		}
		return 1
	}
	batches := Batches(3, 10*simtime.Second, 100, sched,
		func(start, end int64, n int) []records.Record {
			return WCC(cfg, start, end, n)
		})
	if len(batches) != 3 {
		t.Fatalf("got %d batches", len(batches))
	}
	if len(batches[0]) != 100 || len(batches[1]) != 200 || len(batches[2]) != 100 {
		t.Errorf("batch sizes = %d/%d/%d, want 100/200/100",
			len(batches[0]), len(batches[1]), len(batches[2]))
	}
	// Each batch covers its own slide interval.
	for i, b := range batches {
		lo := int64(i) * int64(10*simtime.Second)
		hi := lo + int64(10*simtime.Second)
		for _, r := range b {
			if r.Ts < lo || r.Ts >= hi {
				t.Fatalf("batch %d record at %d outside [%d,%d)", i, r.Ts, lo, hi)
			}
		}
	}
}

// Property: generated volumes always match the request and stay within
// the covered range.
func TestGeneratorBoundsProperty(t *testing.T) {
	f := func(seed int64, nU uint16, spanU uint16) bool {
		n := int(nU%500) + 1
		span := int64(spanU%1000) + 1
		recs := WCC(DefaultWCC(seed), 0, span, n)
		if len(recs) != n {
			return false
		}
		for _, r := range recs {
			if r.Ts < 0 || r.Ts >= span {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiurnal(t *testing.T) {
	sched := Diurnal(24, 0.5, 12)
	// Peak at slide 12, trough at slide 0/24.
	if p := sched(12); p < 1.49 || p > 1.51 {
		t.Errorf("peak multiplier = %v, want ≈1.5", p)
	}
	if tr := sched(0); tr < 0.49 || tr > 0.51 {
		t.Errorf("trough multiplier = %v, want ≈0.5", tr)
	}
	if sched(36) != sched(12) {
		t.Error("schedule should repeat with its period")
	}
	// Extreme amplitude floors at a trickle rather than zero.
	deep := Diurnal(24, 2.0, 12)
	if m := deep(0); m < 0.05 {
		t.Errorf("floored multiplier = %v, want >= 0.05", m)
	}
	// Degenerate inputs clamp.
	if Diurnal(0, -1, 0)(5) != 1 {
		t.Error("degenerate schedule should be flat 1")
	}
}
