// Package workload generates the synthetic stand-ins for the paper's
// two real datasets (§6.1):
//
//   - WCC — the 1998 WorldCup Click dataset (236 GB of web-server
//     access logs). The generator emits records in the WorldCup access
//     log schema (client, object, bytes, method, status, type, server)
//     with Zipf-distributed clients and objects, the skew that makes
//     the aggregation query's groups realistic.
//   - FFG — the RedFIR football-field sensor dataset from the Nuremberg
//     stadium (26 GB of high-velocity position samples). The generator
//     emits position/velocity/acceleration samples per sensor, plus a
//     correlated event stream for the join query, with configurable
//     join selectivity.
//
// Both generators are deterministic per seed and parameterized by a
// records-per-slide rate, so experiments reproduce exactly and the
// Figure 8 rate fluctuations are expressible as per-slide multipliers.
package workload

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"redoop/internal/records"
	"redoop/internal/simtime"
)

// WCCConfig parameterizes the WorldCup click generator.
type WCCConfig struct {
	// Seed drives the deterministic stream.
	Seed int64
	// Clients and Objects size the Zipf populations (the real trace
	// has ~2.7M clients and ~90K objects; scale to taste).
	Clients int
	// Objects is the number of distinct requested URLs.
	Objects int
	// Skew is the Zipf s parameter (>1); higher is more skewed.
	Skew float64
}

// DefaultWCC returns the generator configuration used by the
// experiments.
func DefaultWCC(seed int64) WCCConfig {
	return WCCConfig{Seed: seed, Clients: 50000, Objects: 800, Skew: 1.2}
}

// WCC generates n WorldCup click records with timestamps uniform in
// [startUnit, endUnit). Payload format (CSV):
//
//	client,object,bytes,method,status,type,server
func WCC(cfg WCCConfig, startUnit, endUnit int64, n int) []records.Record {
	if n <= 0 || endUnit <= startUnit {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ startUnit))
	clients := newZipf(rng, cfg.Clients, cfg.Skew)
	objects := newZipf(rng, cfg.Objects, cfg.Skew)
	methods := []string{"GET", "GET", "GET", "HEAD", "POST"}
	types := []string{"HTML", "IMAGE", "IMAGE", "DYNAMIC", "DIRECTORY"}
	statuses := []int{200, 200, 200, 200, 304, 404}
	out := make([]records.Record, n)
	span := endUnit - startUnit
	for i := range out {
		ts := startUnit + rng.Int63n(span)
		payload := fmt.Sprintf("c%d,obj%d,%d,%s,%d,%s,srv%d",
			clients.Uint64(), objects.Uint64(), 200+rng.Intn(20000),
			methods[rng.Intn(len(methods))], statuses[rng.Intn(len(statuses))],
			types[rng.Intn(len(types))], rng.Intn(30))
		out[i] = records.Record{Ts: ts, Data: []byte(payload)}
	}
	sortByTs(out)
	return out
}

// FFGConfig parameterizes the football-sensor generator.
type FFGConfig struct {
	Seed int64
	// Sensors is the number of tracked transmitters (the RedFIR setup
	// tracks balls and players; ~200 signals).
	Sensors int
	// EventKeys narrows the event stream's sensor population; a
	// smaller value raises join selectivity.
	EventKeys int
}

// DefaultFFG returns the experiments' configuration.
func DefaultFFG(seed int64) FFGConfig {
	return FFGConfig{Seed: seed, Sensors: 1000, EventKeys: 1000}
}

// FFGReadings generates n position samples across [startUnit, endUnit):
//
//	sensor,x,y,z,|v|,|a|
func FFGReadings(cfg FFGConfig, startUnit, endUnit int64, n int) []records.Record {
	if n <= 0 || endUnit <= startUnit {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ (startUnit * 31)))
	out := make([]records.Record, n)
	span := endUnit - startUnit
	for i := range out {
		ts := startUnit + rng.Int63n(span)
		payload := fmt.Sprintf("s%03d,%.2f,%.2f,%.2f,%.2f,%.2f",
			rng.Intn(cfg.Sensors),
			rng.Float64()*105, rng.Float64()*68, rng.Float64()*5,
			rng.Float64()*12, rng.Float64()*40)
		out[i] = records.Record{Ts: ts, Data: []byte(payload)}
	}
	sortByTs(out)
	return out
}

// FFGEvents generates n game events (possession, shot, pass) keyed by
// sensor, the join partner of the readings stream:
//
//	sensor,event,intensity
func FFGEvents(cfg FFGConfig, startUnit, endUnit int64, n int) []records.Record {
	if n <= 0 || endUnit <= startUnit {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ (startUnit*17 + 7)))
	events := []string{"possession", "pass", "shot", "tackle", "interrupt"}
	keys := cfg.EventKeys
	if keys <= 0 || keys > cfg.Sensors {
		keys = cfg.Sensors
	}
	out := make([]records.Record, n)
	span := endUnit - startUnit
	for i := range out {
		ts := startUnit + rng.Int63n(span)
		payload := fmt.Sprintf("s%03d,%s,%d",
			rng.Intn(keys), events[rng.Intn(len(events))], rng.Intn(100))
		out[i] = records.Record{Ts: ts, Data: []byte(payload)}
	}
	sortByTs(out)
	return out
}

// RateSchedule yields the per-slide workload multiplier for the
// Figure 8 fluctuation experiment: slides feeding windows 1, 4, 7 and
// 10 (1-based) carry the normal load and the rest are doubled.
type RateSchedule func(slideIdx int) float64

// SteadyRate is the constant schedule.
func SteadyRate(int) float64 { return 1 }

// PaperFluctuation reproduces §6.3's workload: with one new slide per
// window, the slide feeding window w (1-based) is normal for w ∈
// {1,4,7,10} and doubled otherwise. slidesPerWindow anchors the
// mapping from slide index to the first window it feeds.
func PaperFluctuation(slidesPerWindow int) RateSchedule {
	return func(slideIdx int) float64 {
		// Slide s (0-based) first contributes to 1-based window
		// max(1, s-slidesPerWindow+2); fluctuation follows that
		// window's parity in the paper's pattern.
		w := slideIdx - slidesPerWindow + 2
		if w < 1 {
			w = 1
		}
		switch (w - 1) % 3 {
		case 0:
			return 1 // windows 1, 4, 7, 10
		default:
			return 2
		}
	}
}

// Batches generates per-slide batches for `slides` slides of the given
// slide duration, calling gen for each range with the scheduled record
// count.
func Batches(slides int, slide simtime.Duration, base int, sched RateSchedule,
	gen func(startUnit, endUnit int64, n int) []records.Record) [][]records.Record {
	out := make([][]records.Record, slides)
	for s := 0; s < slides; s++ {
		start := int64(s) * int64(slide)
		end := start + int64(slide)
		n := int(float64(base) * sched(s))
		out[s] = gen(start, end, n)
	}
	return out
}

// sortByTs orders a batch by (timestamp, payload) so generated batches
// are fully deterministic per seed.
func sortByTs(recs []records.Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Ts != recs[j].Ts {
			return recs[i].Ts < recs[j].Ts
		}
		return bytes.Compare(recs[i].Data, recs[j].Data) < 0
	})
}

// newZipf builds a seeded Zipf sampler over [0, n).
func newZipf(rng *rand.Rand, n int, skew float64) *rand.Zipf {
	if n < 1 {
		n = 1
	}
	if skew <= 1 {
		skew = 1.01
	}
	return rand.NewZipf(rng, skew, 1, uint64(n-1))
}

// Diurnal returns a day-night rate schedule: the multiplier follows a
// sinusoid over `period` slides, swinging between 1-amplitude and
// 1+amplitude with the peak centred at peakSlide. Log volumes in the
// paper's motivating applications (web traffic, news feeds,
// clickstreams) follow this shape; pair it with an Adaptive query to
// exercise §3.3 under smooth rather than stepped load changes.
func Diurnal(period int, amplitude float64, peakSlide int) RateSchedule {
	if period < 1 {
		period = 1
	}
	if amplitude < 0 {
		amplitude = 0
	}
	return func(slideIdx int) float64 {
		phase := 2 * math.Pi * float64(slideIdx-peakSlide) / float64(period)
		m := 1 + amplitude*math.Cos(phase)
		if m < 0.05 {
			m = 0.05 // a quiet site still trickles
		}
		return m
	}
}
