package core

import (
	"reflect"
	"testing"

	"redoop/internal/cluster"
	"redoop/internal/iocost"
	"redoop/internal/simtime"
)

func testScheduler(t *testing.T, workers int) (*Scheduler, *cluster.Cluster) {
	t.Helper()
	cl := cluster.MustNew(cluster.Config{Workers: workers, MapSlots: 2, ReduceSlots: 1})
	return NewScheduler(cl, iocost.Default()), cl
}

func TestHomeNodeStableAndSpread(t *testing.T) {
	s, _ := testScheduler(t, 3)
	h0 := s.HomeNode(0)
	h1 := s.HomeNode(1)
	h2 := s.HomeNode(2)
	if h0 == nil || h1 == nil || h2 == nil {
		t.Fatal("homes must be assigned")
	}
	// Three partitions over three nodes spread one per node.
	ids := map[int]bool{h0.ID: true, h1.ID: true, h2.ID: true}
	if len(ids) != 3 {
		t.Errorf("homes should spread across nodes, got %v", s.Homes())
	}
	// Stability across calls.
	if s.HomeNode(0).ID != h0.ID {
		t.Error("home assignment must be stable")
	}
}

func TestHomeNodeReassignsOnDeath(t *testing.T) {
	s, cl := testScheduler(t, 2)
	h := s.HomeNode(0)
	cl.FailNode(h.ID)
	h2 := s.HomeNode(0)
	if h2 == nil || h2.ID == h.ID {
		t.Errorf("dead home should be replaced, got %v", h2)
	}
}

func TestPickCacheTaskNodePrefersCacheLocality(t *testing.T) {
	s, _ := testScheduler(t, 4)
	caches := []CacheLoc{{Node: 2, Bytes: 64 << 20}}
	n := s.PickCacheTaskNode(0, caches)
	if n.ID != 2 {
		t.Errorf("idle cluster: task should go to the cache's node, got %d", n.ID)
	}
}

// Paper §4.3: "if all task slots of a node have been taken, the
// scheduler assigns the new task to a different node even if a fully
// loaded node has the desired cache available."
func TestPickCacheTaskNodeAvoidsLoadedCacheNode(t *testing.T) {
	s, cl := testScheduler(t, 3)
	// Node 1 holds the cache but its only reduce slot is busy for a
	// long time.
	cl.Node(1).Reduce.Acquire(0, 10*simtime.Minute)
	caches := []CacheLoc{{Node: 1, Bytes: 1 << 20}} // small cache, cheap to move
	n := s.PickCacheTaskNode(0, caches)
	if n.ID == 1 {
		t.Error("scheduler should avoid the fully loaded cache node for a small cache")
	}
}

func TestPickCacheTaskNodeWeighsCacheSizeAgainstWait(t *testing.T) {
	s, cl := testScheduler(t, 2)
	// Node 0 busy briefly; the cache is huge, so waiting beats moving.
	cl.Node(0).Reduce.Acquire(0, 2*simtime.Second)
	caches := []CacheLoc{{Node: 0, Bytes: 4 << 30}} // 4 GB
	n := s.PickCacheTaskNode(0, caches)
	if n.ID != 0 {
		t.Error("a short wait should be preferred over moving 4GB across the network")
	}
}

func TestPickCacheTaskNodeNoAliveNodes(t *testing.T) {
	s, cl := testScheduler(t, 1)
	cl.FailNode(0)
	if s.PickCacheTaskNode(0, nil) != nil {
		t.Error("no alive nodes should yield nil")
	}
}

func TestCacheCostLocalVsRemote(t *testing.T) {
	s, _ := testScheduler(t, 2)
	caches := []CacheLoc{{Node: 0, Bytes: 1 << 20}, {Node: 1, Bytes: 1 << 20}}
	c0 := s.CacheCost(0, caches)
	// One cache local, one remote from either side: symmetric.
	if c1 := s.CacheCost(1, caches); c0 != c1 {
		t.Errorf("symmetric layout should cost equally: %v vs %v", c0, c1)
	}
	allLocal := s.CacheCost(0, []CacheLoc{{Node: 0, Bytes: 2 << 20}})
	if allLocal >= c0 {
		t.Error("fully local cache set should cost less than a mixed one")
	}
}

func TestTaskListFIFO(t *testing.T) {
	l := NewTaskList()
	if _, ok := l.Pop(); ok {
		t.Error("empty list should not pop")
	}
	l.Push("S1P1", nil)
	l.Push("S1P2", "payload")
	l.Push("S1P1", nil)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.IDs(); !reflect.DeepEqual(got, []string{"S1P1", "S1P2", "S1P1"}) {
		t.Errorf("IDs = %v", got)
	}
	e, ok := l.Pop()
	if !ok || e.ID != "S1P1" {
		t.Errorf("Pop = %+v, want first S1P1", e)
	}
	if n := l.Remove("S1P1"); n != 1 {
		t.Errorf("Remove = %d, want 1", n)
	}
	if n := l.RemoveMatching(func(id string) bool { return id == "S1P2" }); n != 1 {
		t.Errorf("RemoveMatching = %d, want 1", n)
	}
	if l.Len() != 0 {
		t.Errorf("list should be empty, got %v", l.String())
	}
}

// Eq. 4's documented contract: ties break toward the lower node ID.
// A fail/recover cycle must not let candidate ordering pick a higher
// ID when costs are equal.
func TestPickCacheTaskNodeTieBreaksOnLowerID(t *testing.T) {
	s, cl := testScheduler(t, 3)
	// All idle, no caches: every node costs 0 — the tie must go to 0.
	if n := s.PickCacheTaskNode(0, nil); n.ID != 0 {
		t.Fatalf("idle tie should pick node 0, got %d", n.ID)
	}
	// Fail and revive the winner so its alive-set position could have
	// changed; the tie must still resolve to the lowest ID.
	cl.FailNode(0)
	cl.ReviveNode(0, 0)
	if n := s.PickCacheTaskNode(0, nil); n.ID != 0 {
		t.Errorf("tie after fail/recover should still pick node 0, got %d", n.ID)
	}
	// Two symmetric cache holders (nodes 1 and 2) tie on cost; the
	// lower ID must win regardless of its own fail/recover history.
	cl.FailNode(1)
	cl.ReviveNode(1, 0)
	caches := []CacheLoc{{Node: 1, Bytes: 1 << 20}, {Node: 2, Bytes: 1 << 20}}
	if n := s.PickCacheTaskNode(0, caches); n.ID != 1 {
		t.Errorf("symmetric cache tie should pick node 1, got %d", n.ID)
	}
}

// Removed entries must not linger in the backing array: rolled-back
// reduce payloads reference cached pane data the GC must reclaim.
func TestTaskListClearsVacatedSlots(t *testing.T) {
	check := func(t *testing.T, l *TaskList) {
		t.Helper()
		backing := l.entries[:cap(l.entries)]
		for i := l.Len(); i < len(backing); i++ {
			if backing[i] != (TaskEntry{}) {
				t.Errorf("backing slot %d retains %+v after removal", i, backing[i])
			}
		}
	}

	l := NewTaskList()
	l.Push("S1P1", "payload-1")
	l.Push("S1P2", "payload-2")
	l.Push("S1P3", "payload-3")
	l.Push("S2P1", "payload-4")

	if e, ok := l.Pop(); !ok || e.Payload != "payload-1" {
		t.Fatalf("Pop = %+v, %v", e, ok)
	}
	if n := l.Remove("S1P3"); n != 1 {
		t.Fatalf("Remove = %d, want 1", n)
	}
	check(t, l)
	if n := l.RemoveMatching(func(id string) bool { return id == "S2P1" }); n != 1 {
		t.Fatalf("RemoveMatching = %d, want 1", n)
	}
	check(t, l)

	// Pop's vacated slot zeroes too: rebuild a fresh list and verify
	// the popped head entry no longer exists in the backing array.
	l2 := NewTaskList()
	l2.Push("A", "head-payload")
	l2.Push("B", "tail-payload")
	head := l2.entries // aliases the backing array from its start
	l2.Pop()
	if head[0] != (TaskEntry{}) {
		t.Errorf("popped head slot retains %+v", head[0])
	}
}

// The cache-oblivious ablation switch must make PickCacheTaskNode
// ignore locality entirely.
func TestPickCacheTaskNodeOblivious(t *testing.T) {
	s, cl := testScheduler(t, 3)
	s.CacheOblivious = true
	// Node 2 holds a huge cache, but node 0 has the earliest slot
	// because the others are busy.
	cl.Node(1).Reduce.Acquire(0, simtime.Minute)
	cl.Node(2).Reduce.Acquire(0, simtime.Minute)
	n := s.PickCacheTaskNode(0, []CacheLoc{{Node: 2, Bytes: 8 << 30}})
	if n.ID != 0 {
		t.Errorf("oblivious placement should pick the earliest slot (node 0), got %d", n.ID)
	}
	// With the switch off, the giant cache wins.
	s.CacheOblivious = false
	n = s.PickCacheTaskNode(0, []CacheLoc{{Node: 2, Bytes: 8 << 30}})
	if n.ID != 2 {
		t.Errorf("cache-aware placement should pick the cache's node, got %d", n.ID)
	}
}
