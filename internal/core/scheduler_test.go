package core

import (
	"reflect"
	"testing"

	"redoop/internal/cluster"
	"redoop/internal/iocost"
	"redoop/internal/simtime"
)

func testScheduler(t *testing.T, workers int) (*Scheduler, *cluster.Cluster) {
	t.Helper()
	cl := cluster.MustNew(cluster.Config{Workers: workers, MapSlots: 2, ReduceSlots: 1})
	return NewScheduler(cl, iocost.Default()), cl
}

func TestHomeNodeStableAndSpread(t *testing.T) {
	s, _ := testScheduler(t, 3)
	h0 := s.HomeNode(0)
	h1 := s.HomeNode(1)
	h2 := s.HomeNode(2)
	if h0 == nil || h1 == nil || h2 == nil {
		t.Fatal("homes must be assigned")
	}
	// Three partitions over three nodes spread one per node.
	ids := map[int]bool{h0.ID: true, h1.ID: true, h2.ID: true}
	if len(ids) != 3 {
		t.Errorf("homes should spread across nodes, got %v", s.Homes())
	}
	// Stability across calls.
	if s.HomeNode(0).ID != h0.ID {
		t.Error("home assignment must be stable")
	}
}

func TestHomeNodeReassignsOnDeath(t *testing.T) {
	s, cl := testScheduler(t, 2)
	h := s.HomeNode(0)
	cl.FailNode(h.ID)
	h2 := s.HomeNode(0)
	if h2 == nil || h2.ID == h.ID {
		t.Errorf("dead home should be replaced, got %v", h2)
	}
}

func TestPickCacheTaskNodePrefersCacheLocality(t *testing.T) {
	s, _ := testScheduler(t, 4)
	caches := []CacheLoc{{Node: 2, Bytes: 64 << 20}}
	n := s.PickCacheTaskNode(0, caches)
	if n.ID != 2 {
		t.Errorf("idle cluster: task should go to the cache's node, got %d", n.ID)
	}
}

// Paper §4.3: "if all task slots of a node have been taken, the
// scheduler assigns the new task to a different node even if a fully
// loaded node has the desired cache available."
func TestPickCacheTaskNodeAvoidsLoadedCacheNode(t *testing.T) {
	s, cl := testScheduler(t, 3)
	// Node 1 holds the cache but its only reduce slot is busy for a
	// long time.
	cl.Node(1).Reduce.Acquire(0, 10*simtime.Minute)
	caches := []CacheLoc{{Node: 1, Bytes: 1 << 20}} // small cache, cheap to move
	n := s.PickCacheTaskNode(0, caches)
	if n.ID == 1 {
		t.Error("scheduler should avoid the fully loaded cache node for a small cache")
	}
}

func TestPickCacheTaskNodeWeighsCacheSizeAgainstWait(t *testing.T) {
	s, cl := testScheduler(t, 2)
	// Node 0 busy briefly; the cache is huge, so waiting beats moving.
	cl.Node(0).Reduce.Acquire(0, 2*simtime.Second)
	caches := []CacheLoc{{Node: 0, Bytes: 4 << 30}} // 4 GB
	n := s.PickCacheTaskNode(0, caches)
	if n.ID != 0 {
		t.Error("a short wait should be preferred over moving 4GB across the network")
	}
}

func TestPickCacheTaskNodeNoAliveNodes(t *testing.T) {
	s, cl := testScheduler(t, 1)
	cl.FailNode(0)
	if s.PickCacheTaskNode(0, nil) != nil {
		t.Error("no alive nodes should yield nil")
	}
}

func TestCacheCostLocalVsRemote(t *testing.T) {
	s, _ := testScheduler(t, 2)
	caches := []CacheLoc{{Node: 0, Bytes: 1 << 20}, {Node: 1, Bytes: 1 << 20}}
	c0 := s.CacheCost(0, caches)
	// One cache local, one remote from either side: symmetric.
	if c1 := s.CacheCost(1, caches); c0 != c1 {
		t.Errorf("symmetric layout should cost equally: %v vs %v", c0, c1)
	}
	allLocal := s.CacheCost(0, []CacheLoc{{Node: 0, Bytes: 2 << 20}})
	if allLocal >= c0 {
		t.Error("fully local cache set should cost less than a mixed one")
	}
}

func TestTaskListFIFO(t *testing.T) {
	l := NewTaskList()
	if _, ok := l.Pop(); ok {
		t.Error("empty list should not pop")
	}
	l.Push("S1P1", nil)
	l.Push("S1P2", "payload")
	l.Push("S1P1", nil)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.IDs(); !reflect.DeepEqual(got, []string{"S1P1", "S1P2", "S1P1"}) {
		t.Errorf("IDs = %v", got)
	}
	e, ok := l.Pop()
	if !ok || e.ID != "S1P1" {
		t.Errorf("Pop = %+v, want first S1P1", e)
	}
	if n := l.Remove("S1P1"); n != 1 {
		t.Errorf("Remove = %d, want 1", n)
	}
	if n := l.RemoveMatching(func(id string) bool { return id == "S1P2" }); n != 1 {
		t.Errorf("RemoveMatching = %d, want 1", n)
	}
	if l.Len() != 0 {
		t.Errorf("list should be empty, got %v", l.String())
	}
}

// The cache-oblivious ablation switch must make PickCacheTaskNode
// ignore locality entirely.
func TestPickCacheTaskNodeOblivious(t *testing.T) {
	s, cl := testScheduler(t, 3)
	s.CacheOblivious = true
	// Node 2 holds a huge cache, but node 0 has the earliest slot
	// because the others are busy.
	cl.Node(1).Reduce.Acquire(0, simtime.Minute)
	cl.Node(2).Reduce.Acquire(0, simtime.Minute)
	n := s.PickCacheTaskNode(0, []CacheLoc{{Node: 2, Bytes: 8 << 30}})
	if n.ID != 0 {
		t.Errorf("oblivious placement should pick the earliest slot (node 0), got %d", n.ID)
	}
	// With the switch off, the giant cache wins.
	s.CacheOblivious = false
	n = s.PickCacheTaskNode(0, []CacheLoc{{Node: 2, Bytes: 8 << 30}})
	if n.ID != 2 {
		t.Errorf("cache-aware placement should pick the cache's node, got %d", n.ID)
	}
}
