package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"redoop/internal/window"
)

// fig4Spec is the paper's Figure 4 configuration: win = 30 min,
// slide = 20 min on both sources ⇒ pane = 10 min, 3 panes per window,
// 2 panes per slide.
func fig4Spec() window.Spec {
	return window.NewTimeSpec(30*time.Minute, 20*time.Minute)
}

func TestNewStatusMatrixValidation(t *testing.T) {
	if _, err := NewStatusMatrix(0, fig4Spec()); err == nil {
		t.Error("zero dims should be rejected")
	}
	if _, err := NewStatusMatrix(2, window.Spec{}); err == nil {
		t.Error("invalid spec should be rejected")
	}
}

func TestInitializationSizedToWindow(t *testing.T) {
	m, err := NewStatusMatrix(2, fig4Spec())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Range(0)
	if lo != 0 || hi != 2 {
		t.Errorf("dim 0 range = [%d,%d], want [0,2] (one window of panes)", lo, hi)
	}
	done, err := m.Done(0, 0)
	if err != nil || done {
		t.Error("fresh matrix entries should be zero")
	}
}

func TestUpdateAndDone(t *testing.T) {
	m, _ := NewStatusMatrix(2, fig4Spec())
	if err := m.Update(3, 2); err != nil {
		t.Fatal(err)
	}
	if done, _ := m.Done(3, 2); !done {
		t.Error("updated entry should be done")
	}
	if done, _ := m.Done(2, 3); done {
		t.Error("transposed entry should not be done")
	}
	// Wrong arity errors.
	if err := m.Update(1); err == nil {
		t.Error("wrong coordinate count should error")
	}
	if _, err := m.Done(1); err == nil {
		t.Error("wrong coordinate count should error")
	}
}

func TestOneDimensionalMatrix(t *testing.T) {
	m, _ := NewStatusMatrix(1, fig4Spec())
	m.Update(1)
	if !m.Exhausted(0, 1) {
		t.Error("1-D pane is exhausted once its own entry is done")
	}
	if m.Exhausted(0, 0) {
		t.Error("unprocessed pane should not be exhausted")
	}
}

// Figure 4's expiration example: the lifespan of pane S1P1 (0-based)
// spans partner panes 0..2; S1P1 is exhausted only when all of
// (1,0),(1,1),(1,2) are done.
func TestExhaustedFollowsLifespan(t *testing.T) {
	m, _ := NewStatusMatrix(2, fig4Spec())
	m.Update(1, 0)
	m.Update(1, 1)
	if m.Exhausted(0, 1) {
		t.Error("pane 1 should not be exhausted with (1,2) pending")
	}
	m.Update(1, 2)
	if !m.Exhausted(0, 1) {
		t.Error("pane 1 should be exhausted once its lifespan completes")
	}
}

func TestExpiredRequiresWindowDeparture(t *testing.T) {
	m, _ := NewStatusMatrix(2, fig4Spec())
	for q := window.PaneID(0); q <= 2; q++ {
		m.Update(1, q)
	}
	// Window 0 covers panes [0,2]: pane 1 is exhausted but still in
	// the current window at recurrence 0.
	if m.Expired(0, 1, 0) {
		t.Error("pane inside the current window must not expire")
	}
	// At recurrence 1 the window is [2,4]: pane 1 is out and done.
	if !m.Expired(0, 1, 1) {
		t.Error("exhausted pane past the window should expire")
	}
}

// Figure 4(b)→(c): the shift retires the leading fully-done panes and
// admits fresh ones, but an entry like (S1P5, S2P5) whose panes have
// not exhausted their lifespans survives.
func TestShiftPaperFigure4(t *testing.T) {
	m, _ := NewStatusMatrix(2, fig4Spec())
	// Complete everything pane pairs (p1,p2) for p1,p2 in [0,4] except
	// those involving panes 5+.
	for p1 := window.PaneID(0); p1 <= 4; p1++ {
		for p2 := window.PaneID(0); p2 <= 4; p2++ {
			m.Update(p1, p2)
		}
	}
	// Partially complete pane 5: (5,5) done, (5,6) and (5,7) pending.
	m.Update(5, 5)

	// At recurrence 2 the window is [4,6]: panes 0..3 are out of the
	// window; panes 0..3 have lifespans within [0,4] wait — pane 3's
	// lifespan reaches pane 5? Lifespan(3) = windows of pane 3 =
	// recurrence 1 only ⇒ partner panes [2,4]: all done. Panes 0..3
	// retire; pane 4 is still in window [4,6].
	retired := m.Shift(2)
	if len(retired[0]) != 4 || retired[0][0] != 0 || retired[0][3] != 3 {
		t.Errorf("dim 0 retired %v, want [0 1 2 3]", retired[0])
	}
	if len(retired[1]) != 4 {
		t.Errorf("dim 1 retired %v, want 4 panes", retired[1])
	}
	lo, _ := m.Range(0)
	if lo != 4 {
		t.Errorf("dim 0 base = %d, want 4", lo)
	}
	// Shifted-out coordinates read as done; surviving state intact.
	if done, _ := m.Done(0, 0); !done {
		t.Error("retired entries should read done")
	}
	if done, _ := m.Done(5, 5); !done {
		t.Error("surviving done entry lost in shift")
	}
	if done, _ := m.Done(5, 6); done {
		t.Error("pending entry appeared done after shift")
	}
}

func TestShiftDoesNotRetireUnfinishedLeader(t *testing.T) {
	m, _ := NewStatusMatrix(2, fig4Spec())
	// Pane 0's lifespan is [0,2]; leave (0,2) pending.
	m.Update(0, 0)
	m.Update(0, 1)
	retired := m.Shift(5) // window long past pane 0
	if len(retired[0]) != 0 {
		t.Errorf("unfinished pane 0 must not retire, got %v", retired[0])
	}
}

func TestStringRendering(t *testing.T) {
	m1, _ := NewStatusMatrix(1, fig4Spec())
	m1.Update(0)
	if s := m1.String(); s == "" {
		t.Error("1-D render empty")
	}
	m2, _ := NewStatusMatrix(2, fig4Spec())
	if s := m2.String(); s == "" {
		t.Error("2-D render empty")
	}
}

// Property: shifting never changes the Done observation of any
// coordinate that was done before the shift, and never marks a pending
// in-range coordinate done.
func TestShiftPreservationProperty(t *testing.T) {
	f := func(seed int64, rU uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, _ := NewStatusMatrix(2, fig4Spec())
		type c struct{ p1, p2 window.PaneID }
		set := make(map[c]bool)
		for i := 0; i < 40; i++ {
			p1 := window.PaneID(rng.Intn(10))
			p2 := window.PaneID(rng.Intn(10))
			m.Update(p1, p2)
			set[c{p1, p2}] = true
		}
		r := int(rU % 5)
		m.Shift(r)
		for p1 := window.PaneID(0); p1 < 10; p1++ {
			for p2 := window.PaneID(0); p2 < 10; p2++ {
				done, err := m.Done(p1, p2)
				if err != nil {
					return false
				}
				lo1, _ := m.Range(0)
				lo2, _ := m.Range(1)
				inRange := p1 >= lo1 && p2 >= lo2
				if set[c{p1, p2}] && !done {
					return false // done state lost
				}
				if !set[c{p1, p2}] && inRange && done {
					return false // pending state fabricated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
