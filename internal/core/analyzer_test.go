package core

import (
	"testing"
	"time"

	"redoop/internal/simtime"
	"redoop/internal/window"
)

func TestNewAnalyzerValidation(t *testing.T) {
	if _, err := NewAnalyzer(0); err == nil {
		t.Error("zero block size should be rejected")
	}
	if _, err := NewAnalyzer(-5); err == nil {
		t.Error("negative block size should be rejected")
	}
}

// Paper §3.1's worked example: win = 60 min, slide = 20 min ⇒ pane =
// 20 min; with News arriving at 16 MB/min and 64 MB blocks, one pane is
// 320 MB ≥ 64 MB, the oversize case: one file per pane.
func TestPlanPaperOversizeExample(t *testing.T) {
	a, err := NewAnalyzer(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	spec := window.NewTimeSpec(60*time.Minute, 20*time.Minute)
	ratePerNs := 16.0 * (1 << 20) / float64(time.Minute) // 16 MB/min in bytes/ns
	plan, err := a.Plan(spec, ratePerNs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PaneUnit != int64(20*time.Minute) {
		t.Errorf("pane unit = %v, want 20m", time.Duration(plan.PaneUnit))
	}
	if plan.PanesPerFile != 1 || plan.FilesPerPane != 1 {
		t.Errorf("oversize case should be (pane,1,1), got %s", plan)
	}
	wantBytes := int64(320 << 20)
	if diff := plan.ExpectedFileBytes - wantBytes; diff > 1<<20 || diff < -(1<<20) {
		t.Errorf("expected file bytes ≈ 320MB, got %d", plan.ExpectedFileBytes)
	}
}

// Undersized case: a slow source packs multiple panes per file,
// panenum = floor(blocksize/filesize) (Algorithm 1, lines 6-7).
func TestPlanUndersizedCase(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	spec := window.NewTimeSpec(60*time.Minute, 20*time.Minute)
	ratePerNs := 0.5 * (1 << 20) / float64(time.Minute) // 0.5 MB/min → 10 MB/pane
	plan, err := a.Plan(spec, ratePerNs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanesPerFile < 6 || plan.PanesPerFile > 7 {
		t.Errorf("panes per file = %d, want floor(64/10) ≈ 6", plan.PanesPerFile)
	}
}

func TestPlanRejectsNegativeRate(t *testing.T) {
	a, _ := NewAnalyzer(64)
	if _, err := a.Plan(window.NewCountSpec(30, 20), -1); err == nil {
		t.Error("negative rate should be rejected")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []PartitionPlan{
		{PaneUnit: 0, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1},
		{PaneUnit: 10, FilesPerPane: 2, PanesPerFile: 1, SubPanes: 1},
		{PaneUnit: 10, FilesPerPane: 1, PanesPerFile: 0, SubPanes: 1},
		{PaneUnit: 10, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %s", i, p)
		}
	}
}

func TestReplanSubdividesOnForecastOverrun(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	plan := PartitionPlan{PaneUnit: 100, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1}
	// Forecast 2.5× the deadline ⇒ subdivide into ~3 sub-panes and go
	// proactive.
	got, proactive := a.Replan(plan, 25*simtime.Second, 10*simtime.Second)
	if !proactive {
		t.Error("overrun forecast should switch to proactive mode")
	}
	if got.SubPanes != 3 {
		t.Errorf("SubPanes = %d, want 3 (ceil 2.5)", got.SubPanes)
	}
}

func TestReplanCapsSubdivision(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	a.MaxSubPanes = 4
	plan := PartitionPlan{PaneUnit: 100, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1}
	got, _ := a.Replan(plan, 100*simtime.Second, 1*simtime.Second)
	if got.SubPanes != 4 {
		t.Errorf("SubPanes = %d, want cap 4", got.SubPanes)
	}
}

func TestReplanRevertsWithHysteresis(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	plan := PartitionPlan{PaneUnit: 100, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 4}
	// Forecast at 70% of deadline: inside the hysteresis band, keep
	// sub-panes and stay proactive.
	got, proactive := a.Replan(plan, 7*simtime.Second, 10*simtime.Second)
	if got.SubPanes != 4 || !proactive {
		t.Errorf("forecast in hysteresis band should keep plan, got %s proactive=%v", got, proactive)
	}
	// Forecast at 30%: revert to whole panes.
	got, proactive = a.Replan(plan, 3*simtime.Second, 10*simtime.Second)
	if got.SubPanes != 1 || proactive {
		t.Errorf("low forecast should revert, got %s proactive=%v", got, proactive)
	}
}

func TestProfilerForecastAndHistory(t *testing.T) {
	p, err := NewProfiler(DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ready() {
		t.Error("fresh profiler should not be ready")
	}
	for i := 0; i < 5; i++ {
		p.Observe(i, simtime.Duration(10+i)*simtime.Second, int64(1000*(i+1)))
	}
	if !p.Ready() {
		t.Error("profiler should be ready after 5 observations")
	}
	f := p.Forecast(1)
	// The series grows 1s per recurrence; the forecast should land
	// near 15s.
	if f < 14*simtime.Second || f > 16*simtime.Second {
		t.Errorf("forecast = %v, want ≈15s", f)
	}
	h := p.History()
	if len(h) != 5 || h[0].Recurrence != 0 || h[4].InputBytes != 5000 {
		t.Errorf("history wrong: %+v", h)
	}
	p.Reset()
	if p.Ready() || len(p.History()) != 0 {
		t.Error("Reset should clear the profiler")
	}
}

func TestNewProfilerValidation(t *testing.T) {
	if _, err := NewProfiler(0, 0.3); err == nil {
		t.Error("invalid alpha should be rejected")
	}
}

// PlanMulti: the shared pane unit across queries is the GCD of all
// window constraints (§3.1's multi-query analyzer).
func TestPlanMultiSharedPane(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	specs := []window.Spec{
		window.NewCountSpec(60, 20), // pane 20
		window.NewCountSpec(30, 15), // pane 15
	}
	plan, err := a.PlanMulti(specs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PaneUnit != 5 { // GCD(20, 15)
		t.Errorf("shared pane = %d, want 5", plan.PaneUnit)
	}
	// A single query degenerates to Plan.
	single, err := a.PlanMulti(specs[:1], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if single.PaneUnit != 20 {
		t.Errorf("single-query pane = %d, want 20", single.PaneUnit)
	}
}

func TestPlanMultiValidation(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	if _, err := a.PlanMulti(nil, 100); err == nil {
		t.Error("empty query list should fail")
	}
	if _, err := a.PlanMulti([]window.Spec{window.NewCountSpec(30, 20)}, -1); err == nil {
		t.Error("negative rate should fail")
	}
	mixed := []window.Spec{
		window.NewCountSpec(30, 20),
		window.NewTimeSpec(time.Hour, time.Minute),
	}
	if _, err := a.PlanMulti(mixed, 100); err == nil {
		t.Error("mixed window kinds should fail")
	}
	bad := []window.Spec{{Kind: window.CountBased, Win: 0, Slide: 1}}
	if _, err := a.PlanMulti(bad, 100); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestPlanMultiFilePacking(t *testing.T) {
	a, _ := NewAnalyzer(1000)
	specs := []window.Spec{window.NewCountSpec(40, 10)} // pane 10
	// 10 units × 20 B/unit = 200 B/pane < 1000 B block → 5 panes/file.
	plan, err := a.PlanMulti(specs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanesPerFile != 5 {
		t.Errorf("panes per file = %d, want 5", plan.PanesPerFile)
	}
}

// TestPlanMultiTable audits the §3.1 shared-pane path across
// tumbling/overlapping mixes: the shared pane must divide every
// query's window AND slide (one physical partitioning serves all
// without re-splitting) and must be maximal — it equals the GCD over
// all window constraints, not something finer.
func TestPlanMultiTable(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	cases := []struct {
		name  string
		specs []window.Spec
		pane  int64
	}{
		{"identical overlapping", []window.Spec{
			window.NewCountSpec(60, 15), window.NewCountSpec(60, 15)}, 15},
		{"tumbling pair", []window.Spec{
			window.NewCountSpec(30, 30), window.NewCountSpec(45, 45)}, 15},
		{"tumbling x overlapping", []window.Spec{
			window.NewCountSpec(60, 15), window.NewCountSpec(30, 30)}, 15},
		{"coarse multiple of fine", []window.Spec{
			window.NewCountSpec(60, 15), window.NewCountSpec(120, 60)}, 15},
		{"coprime slides", []window.Spec{
			window.NewCountSpec(21, 7), window.NewCountSpec(10, 5)}, 1},
		{"three queries", []window.Spec{
			window.NewCountSpec(60, 20), window.NewCountSpec(60, 12), window.NewCountSpec(30, 30)}, 2},
		{"reuse workload geometry (minutes)", []window.Spec{
			window.NewTimeSpec(time.Hour, 15*time.Minute),
			window.NewTimeSpec(time.Hour, 15*time.Minute),
			window.NewTimeSpec(30*time.Minute, 30*time.Minute)}, int64(15 * time.Minute)},
	}
	for _, tc := range cases {
		plan, err := a.PlanMulti(tc.specs, 1000)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if plan.PaneUnit != tc.pane {
			t.Errorf("%s: shared pane = %d, want %d", tc.name, plan.PaneUnit, tc.pane)
		}
		for i, s := range tc.specs {
			if s.Win%plan.PaneUnit != 0 || s.Slide%plan.PaneUnit != 0 {
				t.Errorf("%s: pane %d does not divide query %d (win %d slide %d)",
					tc.name, plan.PaneUnit, i, s.Win, s.Slide)
			}
		}
		if err := plan.Validate(); err != nil {
			t.Errorf("%s: plan invalid: %v", tc.name, err)
		}
	}
	// Degenerate slides must be rejected per-spec, not absorbed by GCD.
	for _, slide := range []int64{0, -5} {
		bad := []window.Spec{
			window.NewCountSpec(60, 15),
			{Kind: window.CountBased, Win: 30, Slide: slide},
		}
		if _, err := a.PlanMulti(bad, 100); err == nil {
			t.Errorf("slide %d accepted", slide)
		}
	}
}
