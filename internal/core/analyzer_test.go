package core

import (
	"testing"
	"time"

	"redoop/internal/simtime"
	"redoop/internal/window"
)

func TestNewAnalyzerValidation(t *testing.T) {
	if _, err := NewAnalyzer(0); err == nil {
		t.Error("zero block size should be rejected")
	}
	if _, err := NewAnalyzer(-5); err == nil {
		t.Error("negative block size should be rejected")
	}
}

// Paper §3.1's worked example: win = 60 min, slide = 20 min ⇒ pane =
// 20 min; with News arriving at 16 MB/min and 64 MB blocks, one pane is
// 320 MB ≥ 64 MB, the oversize case: one file per pane.
func TestPlanPaperOversizeExample(t *testing.T) {
	a, err := NewAnalyzer(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	spec := window.NewTimeSpec(60*time.Minute, 20*time.Minute)
	ratePerNs := 16.0 * (1 << 20) / float64(time.Minute) // 16 MB/min in bytes/ns
	plan, err := a.Plan(spec, ratePerNs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PaneUnit != int64(20*time.Minute) {
		t.Errorf("pane unit = %v, want 20m", time.Duration(plan.PaneUnit))
	}
	if plan.PanesPerFile != 1 || plan.FilesPerPane != 1 {
		t.Errorf("oversize case should be (pane,1,1), got %s", plan)
	}
	wantBytes := int64(320 << 20)
	if diff := plan.ExpectedFileBytes - wantBytes; diff > 1<<20 || diff < -(1<<20) {
		t.Errorf("expected file bytes ≈ 320MB, got %d", plan.ExpectedFileBytes)
	}
}

// Undersized case: a slow source packs multiple panes per file,
// panenum = floor(blocksize/filesize) (Algorithm 1, lines 6-7).
func TestPlanUndersizedCase(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	spec := window.NewTimeSpec(60*time.Minute, 20*time.Minute)
	ratePerNs := 0.5 * (1 << 20) / float64(time.Minute) // 0.5 MB/min → 10 MB/pane
	plan, err := a.Plan(spec, ratePerNs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanesPerFile < 6 || plan.PanesPerFile > 7 {
		t.Errorf("panes per file = %d, want floor(64/10) ≈ 6", plan.PanesPerFile)
	}
}

func TestPlanRejectsNegativeRate(t *testing.T) {
	a, _ := NewAnalyzer(64)
	if _, err := a.Plan(window.NewCountSpec(30, 20), -1); err == nil {
		t.Error("negative rate should be rejected")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []PartitionPlan{
		{PaneUnit: 0, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1},
		{PaneUnit: 10, FilesPerPane: 2, PanesPerFile: 1, SubPanes: 1},
		{PaneUnit: 10, FilesPerPane: 1, PanesPerFile: 0, SubPanes: 1},
		{PaneUnit: 10, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %s", i, p)
		}
	}
}

func TestReplanSubdividesOnForecastOverrun(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	plan := PartitionPlan{PaneUnit: 100, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1}
	// Forecast 2.5× the deadline ⇒ subdivide into ~3 sub-panes and go
	// proactive.
	got, proactive := a.Replan(plan, 25*simtime.Second, 10*simtime.Second)
	if !proactive {
		t.Error("overrun forecast should switch to proactive mode")
	}
	if got.SubPanes != 3 {
		t.Errorf("SubPanes = %d, want 3 (ceil 2.5)", got.SubPanes)
	}
}

func TestReplanCapsSubdivision(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	a.MaxSubPanes = 4
	plan := PartitionPlan{PaneUnit: 100, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1}
	got, _ := a.Replan(plan, 100*simtime.Second, 1*simtime.Second)
	if got.SubPanes != 4 {
		t.Errorf("SubPanes = %d, want cap 4", got.SubPanes)
	}
}

func TestReplanRevertsWithHysteresis(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	plan := PartitionPlan{PaneUnit: 100, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 4}
	// Forecast at 70% of deadline: inside the hysteresis band, keep
	// sub-panes and stay proactive.
	got, proactive := a.Replan(plan, 7*simtime.Second, 10*simtime.Second)
	if got.SubPanes != 4 || !proactive {
		t.Errorf("forecast in hysteresis band should keep plan, got %s proactive=%v", got, proactive)
	}
	// Forecast at 30%: revert to whole panes.
	got, proactive = a.Replan(plan, 3*simtime.Second, 10*simtime.Second)
	if got.SubPanes != 1 || proactive {
		t.Errorf("low forecast should revert, got %s proactive=%v", got, proactive)
	}
}

func TestProfilerForecastAndHistory(t *testing.T) {
	p, err := NewProfiler(DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ready() {
		t.Error("fresh profiler should not be ready")
	}
	for i := 0; i < 5; i++ {
		p.Observe(i, simtime.Duration(10+i)*simtime.Second, int64(1000*(i+1)))
	}
	if !p.Ready() {
		t.Error("profiler should be ready after 5 observations")
	}
	f := p.Forecast(1)
	// The series grows 1s per recurrence; the forecast should land
	// near 15s.
	if f < 14*simtime.Second || f > 16*simtime.Second {
		t.Errorf("forecast = %v, want ≈15s", f)
	}
	h := p.History()
	if len(h) != 5 || h[0].Recurrence != 0 || h[4].InputBytes != 5000 {
		t.Errorf("history wrong: %+v", h)
	}
	p.Reset()
	if p.Ready() || len(p.History()) != 0 {
		t.Error("Reset should clear the profiler")
	}
}

func TestNewProfilerValidation(t *testing.T) {
	if _, err := NewProfiler(0, 0.3); err == nil {
		t.Error("invalid alpha should be rejected")
	}
}

// PlanMulti: the shared pane unit across queries is the GCD of all
// window constraints (§3.1's multi-query analyzer).
func TestPlanMultiSharedPane(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	specs := []window.Spec{
		window.NewCountSpec(60, 20), // pane 20
		window.NewCountSpec(30, 15), // pane 15
	}
	plan, err := a.PlanMulti(specs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PaneUnit != 5 { // GCD(20, 15)
		t.Errorf("shared pane = %d, want 5", plan.PaneUnit)
	}
	// A single query degenerates to Plan.
	single, err := a.PlanMulti(specs[:1], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if single.PaneUnit != 20 {
		t.Errorf("single-query pane = %d, want 20", single.PaneUnit)
	}
}

func TestPlanMultiValidation(t *testing.T) {
	a, _ := NewAnalyzer(64 << 20)
	if _, err := a.PlanMulti(nil, 100); err == nil {
		t.Error("empty query list should fail")
	}
	if _, err := a.PlanMulti([]window.Spec{window.NewCountSpec(30, 20)}, -1); err == nil {
		t.Error("negative rate should fail")
	}
	mixed := []window.Spec{
		window.NewCountSpec(30, 20),
		window.NewTimeSpec(time.Hour, time.Minute),
	}
	if _, err := a.PlanMulti(mixed, 100); err == nil {
		t.Error("mixed window kinds should fail")
	}
	bad := []window.Spec{{Kind: window.CountBased, Win: 0, Slide: 1}}
	if _, err := a.PlanMulti(bad, 100); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestPlanMultiFilePacking(t *testing.T) {
	a, _ := NewAnalyzer(1000)
	specs := []window.Spec{window.NewCountSpec(40, 10)} // pane 10
	// 10 units × 20 B/unit = 200 B/pane < 1000 B block → 5 panes/file.
	plan, err := a.PlanMulti(specs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanesPerFile != 5 {
		t.Errorf("panes per file = %d, want 5", plan.PanesPerFile)
	}
}
