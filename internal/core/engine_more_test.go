package core_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"redoop/internal/core"
	"redoop/internal/mapreduce"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
	"redoop/internal/workload"
)

// Undersized partition plans pack several panes into one shared DFS
// file with a locator header (§3.2); the engine must read each pane's
// byte range and still match the baseline exactly.
func TestEngineWithUndersizedPlan(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	// A tiny positive rate makes Algorithm 1 choose the undersized
	// case (several panes per file) against the 32 KiB block size.
	q.Sources[0].RateBytesPerUnit = 100.0 / float64(testSlide)
	qb := countQuery("agg", testWin, testSlide, "")
	gen := func(_, s int) []records.Record { return genWords(77, testSlide, s, 300, 12) }
	rres, bres := runBoth(t, q, qb, 5, false, gen, nil)
	assertSameOutputs(t, rres, bres)
}

func TestUndersizedPlanActuallyShares(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	q.Sources[0].RateBytesPerUnit = 100.0 / float64(testSlide)
	eng := core.MustNewEngine(core.Config{MR: newRig(3, 21), Query: q})
	if got := eng.Plans()[0].PanesPerFile; got < 2 {
		t.Fatalf("plan should pack panes, got %d per file", got)
	}
	for s := 0; s < 3; s++ {
		if err := eng.Ingest(0, genWords(78, testSlide, s, 100, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunNext(); err != nil {
		t.Fatal(err)
	}
	// The packer must have produced at least one header file.
	found := false
	for _, p := range eng.MR().DFS.List() {
		if len(p) > 4 && p[len(p)-4:] == ".hdr" {
			found = true
		}
	}
	if !found {
		t.Error("undersized plan should create multi-pane files with headers")
	}
}

// Count-based windows: win/slide in record ordinals (the paper notes
// count-based windows behave like time-based ones).
func TestCountBasedWindows(t *testing.T) {
	mkQuery := func() *core.Query {
		q := countQuery("agg", testWin, testSlide, "")
		q.Sources[0].Spec = window.NewCountSpec(300, 100) // pane = 100 records
		return q
	}
	gen := func(slideIdx int) []records.Record {
		out := make([]records.Record, 100)
		for i := range out {
			out[i] = records.Record{
				Ts:   int64(slideIdx*100 + i), // ordinal axis
				Data: []byte(fmt.Sprintf("w%d", (slideIdx*100+i)%7)),
			}
		}
		return out
	}
	eng := core.MustNewEngine(core.Config{MR: newRig(3, 31), Query: mkQuery()})
	fed := 0
	for r := 0; r < 4; r++ {
		for ; fed < 3+r; fed++ {
			if err := eng.Ingest(0, gen(fed)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.RunNext()
		if err != nil {
			t.Fatal(err)
		}
		// Every window covers exactly 300 records.
		total := 0
		for _, p := range res.Output {
			n, _ := strconv.Atoi(string(p.Value))
			total += n
		}
		if total != 300 {
			t.Errorf("window %d counted %d, want 300", r, total)
		}
		if r > 0 && res.ReusedPanes != 2 {
			t.Errorf("window %d reused %d panes, want 2", r, res.ReusedPanes)
		}
	}
}

// Proactive mode must preserve join results too.
func TestProactiveJoinStillCorrect(t *testing.T) {
	q := joinQuery("join", testWin, testSlide)
	qb := joinQuery("join", testWin, testSlide)
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*500+3), testSlide, s, 60, 10)
	}
	between := func(r int, eng *core.Engine) {
		if err := eng.ForceProactive(2); err != nil {
			t.Fatal(err)
		}
	}
	rres, bres := runBoth(t, q, qb, 4, false, gen, between)
	assertSameOutputs(t, rres, bres)
}

// Node failure mid-sequence for joins: caches and home assignments
// move, outputs must not change.
func TestJoinSurvivesNodeFailure(t *testing.T) {
	q := joinQuery("join", testWin, testSlide)
	qb := joinQuery("join", testWin, testSlide)
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*900+41), testSlide, s, 50, 8)
	}
	between := func(r int, eng *core.Engine) {
		if r == 2 {
			eng.MR().DFS.FailNode(2)
			eng.MR().Cluster.FailNode(2)
		}
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, between)
	assertSameOutputs(t, rres, bres)
}

// Two queries over the same shared source but different windows must
// not corrupt each other (their pane units differ, so their cache
// namespaces are disjoint).
func TestSharedKeyDifferentWindowsIsolated(t *testing.T) {
	mr := newRig(4, 51)
	ctrl := core.NewController()
	q1 := countQuery("agg1", 30*simtime.Second, 10*simtime.Second, "src")
	q2 := countQuery("agg2", 40*simtime.Second, 20*simtime.Second, "src")
	e1 := core.MustNewEngine(core.Config{MR: mr, Query: q1, Controller: ctrl})
	e2 := core.MustNewEngine(core.Config{MR: mr, Query: q2, Controller: ctrl})

	gen := func(s int) []records.Record { return genWords(91, 10*simtime.Second, s, 200, 9) }
	for s := 0; s < 4; s++ {
		if err := e1.Ingest(0, gen(s)); err != nil {
			t.Fatal(err)
		}
		if err := e2.Ingest(0, gen(s)); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := e1.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	// q1's window covers 3 slides (600 records), q2's covers 4 slides
	// (800 records).
	count := func(out []records.Pair) int {
		total := 0
		for _, p := range out {
			n, _ := strconv.Atoi(string(p.Value))
			total += n
		}
		return total
	}
	if got := count(r1.Output); got != 600 {
		t.Errorf("q1 counted %d, want 600", got)
	}
	if got := count(r2.Output); got != 800 {
		t.Errorf("q2 counted %d, want 800", got)
	}
}

// A second engine run must be able to continue after the first query's
// caches expire: long sequences exercise expiry + shift + purge
// without unbounded growth.
func TestLongRunBoundedCaches(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(3, 61), Query: q})
	gen := func(s int) []records.Record { return genWords(95, testSlide, s, 150, 8) }
	fed := 0
	var sizes []int64
	for r := 0; r < 12; r++ {
		for ; fed < 3+r; fed++ {
			if err := eng.Ingest(0, gen(fed)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, n := range eng.MR().Cluster.Nodes() {
			total += n.LocalBytes()
		}
		sizes = append(sizes, total)
	}
	// Steady state: local cache volume must not keep growing — compare
	// the last windows against the mid-run level.
	mid, last := sizes[5], sizes[len(sizes)-1]
	if last > mid*2 {
		t.Errorf("cache volume grows unboundedly: mid=%d last=%d", mid, last)
	}
	// Expired panes' DFS files are garbage-collected, so total DFS
	// volume stays bounded too (window data + a few unexpired panes).
	total := eng.MR().DFS.TotalBytes()
	var windowBytes int64
	lo, hi := q.Spec().WindowRange(11)
	for p := lo; p <= hi; p++ {
		windowBytes += eng.Packer(0).PaneBytes(p)
	}
	if total > windowBytes*4 {
		t.Errorf("DFS grows unboundedly: total=%d for window volume %d", total, windowBytes)
	}
}

// The baseline and Redoop must agree when pane boundaries and batch
// boundaries are misaligned (win=4, slide=3 → pane=1: the paper's §3.1
// second challenge).
func TestMisalignedPaneUnits(t *testing.T) {
	win, slide := 4*simtime.Second, 3*simtime.Second // pane 1s
	q := countQuery("agg", win, slide, "")
	qb := countQuery("agg", win, slide, "")
	gen := func(_, s int) []records.Record { return genWords(101, slide, s, 200, 10) }
	rres, bres := runBoth(t, q, qb, 5, false, gen, nil)
	assertSameOutputs(t, rres, bres)
	// Panes per window = 4, per slide = 3.
	if rres[1].NewPanes != 3 || rres[1].ReusedPanes != 1 {
		t.Errorf("window 2: new=%d reused=%d, want 3/1", rres[1].NewPanes, rres[1].ReusedPanes)
	}
}

// Empty slides (no data at all for a stretch) must not wedge the
// engine or corrupt counts.
func TestEmptySlides(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	qb := countQuery("agg", testWin, testSlide, "")
	gen := func(_, s int) []records.Record {
		if s%2 == 1 {
			return nil // every other slide is silent
		}
		return genWords(103, testSlide, s, 200, 6)
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, nil)
	for i := range rres {
		ro := sortedClone(rres[i].Output)
		bo := sortedClone(bres[i].Output)
		if !pairsEqual(ro, bo) {
			t.Errorf("window %d disagrees under empty slides", i)
		}
	}
}

// Merge function with different semantics than Reduce (sum,count →
// average) exercises the finalization path distinctly from the
// per-pane reduce.
func TestDistinctMergeSemantics(t *testing.T) {
	mk := func() *core.Query {
		q := countQuery("avg", testWin, testSlide, "")
		q.Maps = []mapreduce.MapFunc{func(ts int64, payload []byte, emit mapreduce.Emitter) {
			emit(append([]byte(nil), payload...), []byte(strconv.FormatInt(ts%100, 10)))
		}}
		q.Combine = nil
		q.Reduce = func(key []byte, values [][]byte, emit mapreduce.Emitter) {
			sum, n := 0, 0
			for _, v := range values {
				x, _ := strconv.Atoi(string(v))
				sum += x
				n++
			}
			emit(key, []byte(fmt.Sprintf("%d,%d", sum, n)))
		}
		q.Merge = func(key []byte, values [][]byte, emit mapreduce.Emitter) {
			sum, n := 0, 0
			for _, v := range values {
				var s, c int
				fmt.Sscanf(string(v), "%d,%d", &s, &c)
				sum += s
				n += c
			}
			emit(key, []byte(fmt.Sprintf("%d,%d", sum, n)))
		}
		return q
	}
	gen := func(_, s int) []records.Record { return genWords(107, testSlide, s, 250, 5) }
	rres, bres := runBoth(t, mk(), mk(), 4, false, gen, nil)
	assertSameOutputs(t, rres, bres)
}

// Three-way join: the n-dimensional status matrix and tuple caching
// must still match the baseline's full recompute exactly.
func threeWayQuery(name string) *core.Query {
	tag := func(prefix byte) mapreduce.MapFunc {
		return func(_ int64, payload []byte, emit mapreduce.Emitter) {
			i := 0
			for i < len(payload) && payload[i] != ':' {
				i++
			}
			if i == len(payload) {
				return
			}
			key := append([]byte(nil), payload[:i]...)
			val := append([]byte{prefix, '|'}, payload[i+1:]...)
			emit(key, val)
		}
	}
	return &core.Query{
		Name: name,
		Sources: []core.Source{
			{Name: "S1", Spec: window.NewTimeSpec(testWin, testSlide)},
			{Name: "S2", Spec: window.NewTimeSpec(testWin, testSlide)},
			{Name: "S3", Spec: window.NewTimeSpec(testWin, testSlide)},
		},
		Maps: []mapreduce.MapFunc{tag('A'), tag('B'), tag('C')},
		Reduce: func(key []byte, values [][]byte, emit mapreduce.Emitter) {
			var as, bs, cs [][]byte
			for _, v := range values {
				if len(v) < 2 || v[1] != '|' {
					continue
				}
				switch v[0] {
				case 'A':
					as = append(as, v[2:])
				case 'B':
					bs = append(bs, v[2:])
				case 'C':
					cs = append(cs, v[2:])
				}
			}
			for _, a := range as {
				for _, b := range bs {
					for _, c := range cs {
						out := make([]byte, 0, len(a)+len(b)+len(c)+2)
						out = append(out, a...)
						out = append(out, ',')
						out = append(out, b...)
						out = append(out, ',')
						out = append(out, c...)
						emit(key, out)
					}
				}
			}
		},
		NumReducers: 2,
	}
}

func TestThreeWayJoinMatchesBaseline(t *testing.T) {
	q := threeWayQuery("tri")
	qb := threeWayQuery("tri")
	gen := func(src, s int) []records.Record {
		// Sparse keys keep the triple cross product small.
		return genKV(int64(src*300+59), testSlide, s, 25, 40)
	}
	rres, bres := runBoth(t, q, qb, 4, false, gen, nil)
	for i := range rres {
		ro := sortedClone(rres[i].Output)
		bo := sortedClone(bres[i].Output)
		if !pairsEqual(ro, bo) {
			t.Errorf("window %d: 3-way join disagrees with baseline", i)
		}
	}
	// Window 0 computes all 27 tuples; later windows reuse the 8
	// all-old ones.
	if rres[0].NewPairs != 27 {
		t.Errorf("window 0 tuples = %d, want 27", rres[0].NewPairs)
	}
	for i := 1; i < len(rres); i++ {
		if rres[i].ReusedPairs != 8 || rres[i].NewPairs != 19 {
			t.Errorf("window %d: new=%d reused=%d tuples, want 19/8",
				i, rres[i].NewPairs, rres[i].ReusedPairs)
		}
	}
}

func TestThreeWayJoinSurvivesCacheLoss(t *testing.T) {
	q := threeWayQuery("tri")
	qb := threeWayQuery("tri")
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*700+67), testSlide, s, 20, 30)
	}
	between := func(r int, eng *core.Engine) {
		if r > 0 {
			eng.MR().Cluster.DropLocal(r%4, "cache/")
		}
	}
	rres, bres := runBoth(t, q, qb, 4, false, gen, between)
	for i := range rres {
		if !pairsEqual(sortedClone(rres[i].Output), sortedClone(bres[i].Output)) {
			t.Errorf("window %d: 3-way join under cache loss disagrees", i)
		}
	}
}

// Heterogeneous windows: a join whose sources have different window
// sizes on a shared slide (S1: last 30s, S2: last 20s, every 10s).
// Redoop must agree with the per-source-windowed baseline and still
// reuse pane pairs.
func heteroJoinQuery(name string) *core.Query {
	q := joinQuery(name, testWin, testSlide)
	q.Sources[1].Spec = window.NewTimeSpec(20*simtime.Second, testSlide)
	return q
}

func TestHeterogeneousWindowJoin(t *testing.T) {
	q := heteroJoinQuery("hj")
	qb := heteroJoinQuery("hj")
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*400+83), testSlide, s, 50, 9)
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, nil)
	for i := range rres {
		ro := sortedClone(rres[i].Output)
		bo := sortedClone(bres[i].Output)
		if !pairsEqual(ro, bo) {
			t.Errorf("window %d: heterogeneous join disagrees with baseline\n redoop:   %s\n baseline: %s",
				i, dumpPairs(ro, 8), dumpPairs(bo, 8))
		}
	}
	// Pane tuples: S1 spans 3 panes, S2 spans 2 (same 10s pane unit) ⇒
	// 6 tuples per window; steady state reuses the all-old ones.
	if rres[0].NewPairs != 6 {
		t.Errorf("window 0 tuples = %d, want 6", rres[0].NewPairs)
	}
	for i := 1; i < len(rres); i++ {
		if rres[i].ReusedPairs == 0 {
			t.Errorf("window %d should reuse tuples, got new=%d reused=%d",
				i, rres[i].NewPairs, rres[i].ReusedPairs)
		}
	}
}

func TestHeterogeneousWindowJoinWithCacheLoss(t *testing.T) {
	q := heteroJoinQuery("hj")
	qb := heteroJoinQuery("hj")
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*600+89), testSlide, s, 40, 7)
	}
	between := func(r int, eng *core.Engine) {
		if r > 0 {
			eng.MR().Cluster.DropLocal(r%4, "cache/")
		}
	}
	rres, bres := runBoth(t, q, qb, 4, false, gen, between)
	for i := range rres {
		if !pairsEqual(sortedClone(rres[i].Output), sortedClone(bres[i].Output)) {
			t.Errorf("window %d: heterogeneous join under cache loss disagrees", i)
		}
	}
}

// Randomized window-geometry sweep: for random (win, slide) pairs —
// including misaligned panes and heterogeneous join windows — Redoop's
// incremental output must equal the baseline's full recompute on every
// window. This is the frame machinery's strongest net.
func TestRandomWindowGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 6; trial++ {
		trial := trial
		slide := simtime.Duration(rng.Intn(4)+2) * simtime.Second
		win1 := slide * simtime.Duration(rng.Intn(3)+2)
		t.Run(fmt.Sprintf("agg-trial%d", trial), func(t *testing.T) {
			q := countQuery("agg", win1, slide, "")
			qb := countQuery("agg", win1, slide, "")
			gen := func(_, s int) []records.Record {
				return genWords(int64(trial*977+13), slide, s, 120+rng.Intn(150), 8)
			}
			rres, bres := runBoth(t, q, qb, 4, false, gen, nil)
			assertSameOutputs(t, rres, bres)
		})
		// A join partner with its own (possibly different) window.
		win2 := slide * simtime.Duration(rng.Intn(3)+1)
		t.Run(fmt.Sprintf("join-trial%d", trial), func(t *testing.T) {
			mk := func() *core.Query {
				q := joinQuery("join", win1, slide)
				q.Sources[1].Spec = window.NewTimeSpec(win2, slide)
				return q
			}
			gen := func(src, s int) []records.Record {
				return genKV(int64(trial*499+src*31), slide, s, 30, 6)
			}
			rres, bres := runBoth(t, mk(), mk(), 4, false, gen, nil)
			for i := range rres {
				ro := sortedClone(rres[i].Output)
				bo := sortedClone(bres[i].Output)
				if !pairsEqual(ro, bo) {
					t.Errorf("trial %d (win1=%v win2=%v slide=%v) window %d disagrees",
						trial, win1, win2, slide, i)
				}
			}
		})
	}
}

// A join with a Merge finalization: instead of publishing the union of
// pair outputs, the window's matches are re-aggregated per key.
func TestJoinWithMergeFinalization(t *testing.T) {
	mk := func() *core.Query {
		q := joinQuery("jm", testWin, testSlide)
		q.Merge = func(key []byte, values [][]byte, emit mapreduce.Emitter) {
			// Count the window's join matches per key.
			emit(key, []byte(strconv.Itoa(len(values))))
		}
		return q
	}
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*800+97), testSlide, s, 40, 6)
	}
	rres, bres := runBoth(t, mk(), mk(), 4, false, gen, nil)
	assertSameOutputs(t, rres, bres)
	// The merged output is one count per key, far smaller than the
	// raw match union.
	if len(rres[1].Output) > 6 {
		t.Errorf("merged join output should have at most 6 keys, got %d", len(rres[1].Output))
	}
}

// A custom partitioner must be honored consistently by pane jobs,
// caches and the baseline.
func TestCustomPartitioner(t *testing.T) {
	mk := func() *core.Query {
		q := countQuery("cp", testWin, testSlide, "")
		q.Partition = func(key []byte, n int) int {
			if len(key) == 0 {
				return 0
			}
			return int(key[len(key)-1]) % n
		}
		return q
	}
	gen := func(_, s int) []records.Record { return genWords(113, testSlide, s, 250, 9) }
	rres, bres := runBoth(t, mk(), mk(), 4, false, gen, nil)
	assertSameOutputs(t, rres, bres)
}

// Engine accessors exist for operational tooling; smoke them.
func TestEngineAccessors(t *testing.T) {
	q := countQuery("acc", testWin, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(2, 71), Query: q})
	if eng.Query() != q || eng.Controller() == nil || eng.Scheduler() == nil ||
		eng.Profiler() == nil || eng.Matrix() == nil {
		t.Error("accessors should be wired")
	}
	if eng.Matrix().Dims() != 1 {
		t.Error("single-source matrix should be 1-D")
	}
	if len(eng.Scheduler().Homes()) != 0 {
		t.Error("no homes before any reduce ran")
	}
	for s := 0; s < 3; s++ {
		eng.Ingest(0, genWords(5, testSlide, s, 60, 4))
	}
	if _, err := eng.RunNext(); err != nil {
		t.Fatal(err)
	}
	if len(eng.Scheduler().Homes()) == 0 {
		t.Error("homes should be assigned after a recurrence")
	}
	// Pane 0 was retired (and its file dropped) after recurrence 0;
	// panes still inside the next window remain resolvable.
	if _, ok := eng.PaneInputs(0, 2); !ok {
		t.Error("pane 2 should have inputs")
	}
	if _, ok := eng.PaneInputs(0, 0); ok {
		t.Error("retired pane 0's file should be garbage-collected")
	}
	if eng.Packer(0) == nil {
		t.Error("private source should expose its packer")
	}
	if eng.Packer(0).SourceName() != "S1" {
		t.Error("packer source name wrong")
	}
}

// Smooth diurnal load with an adaptive engine: outputs stay correct
// while the profiler tracks the swelling and ebbing volume.
func TestAdaptiveUnderDiurnalLoad(t *testing.T) {
	q := countQuery("diurnal", testWin, testSlide, "")
	qb := countQuery("diurnal", testWin, testSlide, "")
	sched := workload.Diurnal(8, 0.8, 4)
	gen := func(_, s int) []records.Record {
		n := int(200 * sched(s))
		return genWords(131, testSlide, s, n, 8)
	}
	rres, bres := runBoth(t, q, qb, 8, true, gen, nil)
	assertSameOutputs(t, rres, bres)
}

// Proactive sub-panes combined with an undersized multi-pane plan:
// the packer routes subdivided panes to their own files even when the
// base plan packs panes together, and results stay exact.
func TestProactiveWithUndersizedPlan(t *testing.T) {
	mk := func() *core.Query {
		q := countQuery("pu", testWin, testSlide, "")
		q.Sources[0].RateBytesPerUnit = 100.0 / float64(testSlide)
		return q
	}
	gen := func(_, s int) []records.Record { return genWords(137, testSlide, s, 200, 7) }
	between := func(r int, eng *core.Engine) {
		if r >= 1 {
			if err := eng.ForceProactive(2); err != nil {
				t.Fatal(err)
			}
		}
	}
	rres, bres := runBoth(t, mk(), mk(), 5, false, gen, between)
	assertSameOutputs(t, rres, bres)
}
