package core

// Property-based tests for the Semantic Analyzer (paper §3, Algorithm
// 1): for randomized (win, slide, blockSize, rate) draws the plan must
// honor the algorithm's structural guarantees — pane = GCD(win, slide),
// gap/overlap-free window coverage by panes, and packed-file sizes
// bounded by the block size.

import (
	"math/rand"
	"testing"

	"redoop/internal/simtime"
	"redoop/internal/window"
)

// randSpec draws a valid window spec with slide dividing... nothing in
// particular — win and slide are arbitrary multiples of a base unit so
// the GCD is non-trivial.
func randSpec(rng *rand.Rand) window.Spec {
	base := int64(simtime.Minute) * (1 + rng.Int63n(30))
	win := base * (1 + rng.Int63n(24))
	slide := base * (1 + rng.Int63n(24))
	if slide > win {
		win, slide = slide, win
	}
	return window.Spec{Kind: window.TimeBased, Win: win, Slide: slide}
}

// TestPlanPaneIsGCD: Algorithm 1 line 1 — the plan's pane unit is
// exactly GCD(win, slide), divides both, and no larger unit does.
func TestPlanPaneIsGCD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := NewAnalyzer(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		spec := randSpec(rng)
		plan, err := a.Plan(spec, rng.Float64()*1e-3)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%v: invalid plan %v: %v", spec, plan, err)
		}
		p := plan.PaneUnit
		if p != window.GCD(spec.Win, spec.Slide) {
			t.Fatalf("%v: pane %d != GCD %d", spec, p, window.GCD(spec.Win, spec.Slide))
		}
		if spec.Win%p != 0 || spec.Slide%p != 0 {
			t.Fatalf("%v: pane %d does not divide win/slide", spec, p)
		}
		// Maximality: no multiple of the pane also divides both.
		for k := int64(2); k*p <= spec.Slide; k++ {
			if spec.Win%(k*p) == 0 && spec.Slide%(k*p) == 0 {
				t.Fatalf("%v: pane %d is not maximal, %d also divides", spec, p, k*p)
			}
		}
	}
}

// TestWindowCoverageGapFree: for random specs and recurrences, the
// pane ranges of consecutive windows tile the stream — window r covers
// exactly [r*slide, r*slide+win), consecutive windows abut at slide
// boundaries with neither gaps nor double-counted slide regions, and
// every pane belongs to exactly the windows its lifespan claims.
func TestWindowCoverageGapFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		spec := randSpec(rng)
		for r := 0; r < 6; r++ {
			lo, hi := spec.WindowRange(r)
			if got := spec.PaneStart(lo); got != int64(r)*spec.Slide {
				t.Fatalf("%v r=%d: window starts at %d, want %d", spec, r, got, int64(r)*spec.Slide)
			}
			if got := spec.PaneEnd(hi); got != int64(r)*spec.Slide+spec.Win {
				t.Fatalf("%v r=%d: window ends at %d, want %d", spec, r, got, int64(r)*spec.Slide+spec.Win)
			}
			if n := int64(hi-lo) + 1; n != spec.PanesPerWindow() {
				t.Fatalf("%v r=%d: %d panes in range, want %d", spec, r, n, spec.PanesPerWindow())
			}
			// Consecutive panes tile the window with no gap or overlap
			// by construction (PaneEnd(p) == PaneStart(p+1)); spot-check
			// the contract anyway since the oracle leans on it.
			for p := lo; p < hi; p++ {
				if spec.PaneEnd(p) != spec.PaneStart(p+1) {
					t.Fatalf("%v: pane %d end %d != pane %d start %d",
						spec, int64(p), spec.PaneEnd(p), int64(p+1), spec.PaneStart(p+1))
				}
			}
			// Window r+1 drops exactly PanesPerSlide panes and gains the
			// same count: the sliding step in panes.
			nlo, nhi := spec.WindowRange(r + 1)
			if int64(nlo-lo) != spec.PanesPerSlide() || int64(nhi-hi) != spec.PanesPerSlide() {
				t.Fatalf("%v r=%d: slide step lo %d hi %d, want %d panes",
					spec, r, int64(nlo-lo), int64(nhi-hi), spec.PanesPerSlide())
			}
			// Lifespan agreement: each pane in the window reports a
			// recurrence span that includes r.
			for p := lo; p <= hi; p++ {
				rmin, rmax := spec.WindowsOfPane(p)
				if r < rmin || r > rmax {
					t.Fatalf("%v: pane %d in window %d but lifespan is [%d,%d]",
						spec, int64(p), r, rmin, rmax)
				}
			}
		}
	}
}

// TestPackPlanRespectsBlockSize: Algorithm 1 lines 2-8 — in the
// undersized case a packed file's expected payload (panes/file × pane
// bytes) never exceeds the block size, packing is maximal (one more
// pane would overflow), and the oversize case packs exactly one pane.
func TestPackPlanRespectsBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		blockSize := int64(1)<<uint(10+rng.Intn(12)) + rng.Int63n(1<<10)
		a, err := NewAnalyzer(blockSize)
		if err != nil {
			t.Fatal(err)
		}
		spec := randSpec(rng)
		rate := rng.Float64() * 1e-2
		plan, err := a.Plan(spec, rate)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		paneBytes := plan.ExpectedFileBytes
		if paneBytes >= blockSize {
			if plan.PanesPerFile != 1 {
				t.Fatalf("oversize pane (%d >= block %d) packed %d panes/file",
					paneBytes, blockSize, plan.PanesPerFile)
			}
			continue
		}
		packed := int64(plan.PanesPerFile) * maxInt64(paneBytes, 1)
		if packed > blockSize {
			t.Fatalf("undersized plan overflows block: %d panes × %d B = %d > block %d",
				plan.PanesPerFile, paneBytes, packed, blockSize)
		}
		if packed+maxInt64(paneBytes, 1) <= blockSize {
			t.Fatalf("undersized plan under-packs: %d panes × %d B leaves room in block %d",
				plan.PanesPerFile, paneBytes, blockSize)
		}
	}
}

// TestPlanMultiSharedPaneProperty: the multi-query pane is the GCD across every
// query's own pane and divides each query's win and slide, so one
// physical partitioning serves all window constraints without
// re-splitting (§3.1).
func TestPlanMultiSharedPaneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, _ := NewAnalyzer(64 << 20)
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(4)
		specs := make([]window.Spec, n)
		for j := range specs {
			specs[j] = randSpec(rng)
		}
		plan, err := a.PlanMulti(specs, 1e-3)
		if err != nil {
			t.Fatalf("%v: %v", specs, err)
		}
		for _, s := range specs {
			if s.Win%plan.PaneUnit != 0 || s.Slide%plan.PaneUnit != 0 {
				t.Fatalf("shared pane %d does not divide %v", plan.PaneUnit, s)
			}
		}
		want := specs[0].PaneUnit()
		for _, s := range specs[1:] {
			want = window.GCD(want, s.PaneUnit())
		}
		if plan.PaneUnit != want {
			t.Fatalf("shared pane %d, want GCD %d", plan.PaneUnit, want)
		}
	}
}

// TestReplanBounds: for random forecast/deadline ratios the adaptive
// re-plan (§3.3) keeps SubPanes in [1, MaxSubPanes], subdivides iff the
// forecast overruns the spike threshold, scales with the overrun ratio,
// and reverts only below the hysteresis floor.
func TestReplanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, _ := NewAnalyzer(64 << 20)
	base := PartitionPlan{PaneUnit: int64(simtime.Minute), FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1}
	deadline := simtime.Duration(10 * simtime.Minute)
	for i := 0; i < 500; i++ {
		ratio := rng.Float64() * 3
		forecast := simtime.Duration(ratio * float64(deadline))
		start := base
		if rng.Intn(2) == 0 {
			start.SubPanes = 2 + rng.Intn(a.MaxSubPanes-1)
		}
		plan, proactive := a.Replan(start, forecast, deadline)
		if plan.SubPanes < 1 || plan.SubPanes > a.MaxSubPanes {
			t.Fatalf("ratio %.2f: SubPanes %d out of [1,%d]", ratio, plan.SubPanes, a.MaxSubPanes)
		}
		if proactive != (plan.SubPanes > 1) {
			t.Fatalf("ratio %.2f: proactive=%v but SubPanes=%d", ratio, proactive, plan.SubPanes)
		}
		switch {
		case ratio > a.SpikeThreshold:
			want := int(ratio + 0.999)
			if want < 2 {
				want = 2
			}
			if want > a.MaxSubPanes {
				want = a.MaxSubPanes
			}
			if plan.SubPanes != want {
				t.Fatalf("ratio %.2f: SubPanes %d, want %d", ratio, plan.SubPanes, want)
			}
		case ratio < 0.5*a.SpikeThreshold:
			if plan.SubPanes != 1 {
				t.Fatalf("ratio %.2f below hysteresis floor: SubPanes %d, want revert to 1", ratio, plan.SubPanes)
			}
		default:
			if plan.SubPanes != start.SubPanes {
				t.Fatalf("ratio %.2f in hysteresis band: SubPanes changed %d -> %d",
					ratio, start.SubPanes, plan.SubPanes)
			}
		}
	}
}
