package core

import (
	"fmt"
	"log/slog"
	"sync"

	"redoop/internal/cluster"
	"redoop/internal/iocost"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/simtime"
)

// CacheLoc describes one cache a candidate task must load: where it
// lives and how big it is. The scheduler prices it with the iocost
// model's CacheRead, local versus remote.
type CacheLoc struct {
	Node  int
	Bytes int64
}

// Scheduler is Redoop's window-aware, cache-aware task scheduler (paper
// §4.3). It keeps the fixed partition→reducer ("home node") mapping
// that makes reduce-side caches reusable across recurrences, maintains
// the map and reduce task lists driven by the cache controller's ready
// bits, and places cache-fed reduce tasks by the paper's Equation 4:
//
//	node = argmin_i ( Load_i + C_task,i )
//
// where Load_i is the node's current load — measured here as the
// queueing delay before a reduce slot frees, which directly captures
// "if all task slots of a node are taken, assign the task elsewhere
// even if its cache is there" — and C_task,i is the I/O cost of loading
// the task's caches from node i's perspective.
type Scheduler struct {
	// mu guards homes and the event labels so the debug server can read
	// placements while the engine schedules.
	mu   sync.Mutex
	cl   *cluster.Cluster
	cost iocost.Model

	// CacheOblivious is an ablation switch: when set, PickCacheTaskNode
	// ignores cache locality (the C_task term) and places tasks purely
	// by earliest slot availability.
	CacheOblivious bool

	homes map[int]int // reduce partition -> home node ID

	// obs receives Equation 4 outcomes (cache-local vs. remote vs.
	// load-balanced placements) and observed queueing delays; log
	// mirrors them as Debug events. Both may be nil. obsQuery and
	// recurrence label the flight-recorder placement events with the
	// owning query and the recurrence in flight.
	obs        *obs.Observer
	log        *slog.Logger
	obsQuery   string
	recurrence int

	// MapTasks and ReduceTasks are the two scheduling lists of
	// Algorithm 2: entries enter MapTasks when a data partition's
	// ready bit turns 1 (newly arrived in HDFS) and ReduceTasks when
	// cached partitions pair up within their lifespans (ready bit 2).
	MapTasks    *TaskList
	ReduceTasks *TaskList
}

// NewScheduler builds a scheduler over the cluster with the given cost
// model.
func NewScheduler(cl *cluster.Cluster, cost iocost.Model) *Scheduler {
	return &Scheduler{
		cl:          cl,
		cost:        cost,
		homes:       make(map[int]int),
		MapTasks:    NewTaskList(),
		ReduceTasks: NewTaskList(),
	}
}

// SetObserver attaches the observability layer; nil detaches it.
func (s *Scheduler) SetObserver(o *obs.Observer) { s.obs = o }

// SetQuery labels the scheduler's flight-recorder events with the
// owning query's name.
func (s *Scheduler) SetQuery(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsQuery = name
}

// SetRecurrence labels subsequent placement events with the recurrence
// currently in flight.
func (s *Scheduler) SetRecurrence(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recurrence = r
}

// SetLogger attaches a logger for placement-decision Debug events; nil
// detaches it.
func (s *Scheduler) SetLogger(l *slog.Logger) { s.log = l }

// HomeNode returns the node that hosts reduce partition part's caches,
// assigning one on first use (least-loaded alive node) and reassigning
// if the previous home died. The mapping is otherwise fixed across
// recurrences, as §4.3 requires.
func (s *Scheduler) HomeNode(part int) *cluster.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	reassigned := false
	if id, ok := s.homes[part]; ok {
		if n := s.cl.Node(id); n != nil && n.Alive() {
			return n
		}
		delete(s.homes, part) // home died; reassign below
		reassigned = true
		s.obs.Counter("redoop_home_reassignments_total").Inc()
	}
	alive := s.cl.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	// Spread homes: fewest assigned partitions first, then least load.
	counts := make(map[int]int)
	for _, id := range s.homes {
		counts[id]++
	}
	best := alive[0]
	for _, n := range alive[1:] {
		switch {
		case counts[n.ID] < counts[best.ID]:
			best = n
		case counts[n.ID] == counts[best.ID] && n.Load() < best.Load():
			best = n
		}
	}
	s.homes[part] = best.ID
	if s.log != nil {
		s.log.Debug("home node assigned",
			"partition", part, "node", best.ID, "reassigned", reassigned)
	}
	return best
}

// Homes returns a copy of the current partition→node mapping.
func (s *Scheduler) Homes() map[int]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int, len(s.homes))
	for p, n := range s.homes {
		out[p] = n
	}
	return out
}

// CacheCost returns C_task,i: the cost for a task running on node to
// load the given caches, cheaper for caches already local.
func (s *Scheduler) CacheCost(node int, caches []CacheLoc) simtime.Duration {
	var d simtime.Duration
	for _, c := range caches {
		d += s.cost.CacheRead(c.Bytes, c.Node == node)
	}
	return d
}

// PickCacheTaskNode applies Equation 4 to choose the node for a
// cache-fed reduce-style task that becomes ready at `ready` and must
// load `caches`. Ties break toward the lower node ID for determinism.
func (s *Scheduler) PickCacheTaskNode(ready simtime.Time, caches []CacheLoc) *cluster.Node {
	alive := s.cl.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	var best *cluster.Node
	var bestCost, bestLoad simtime.Duration
	loads := make(map[int]simtime.Duration, len(alive))
	var audit []eventlog.PlacementCandidate
	if s.obs.EmitEnabled() {
		audit = make([]eventlog.PlacementCandidate, 0, len(alive))
	}
	for _, n := range alive {
		load := n.Reduce.EarliestStart(ready).Sub(ready)
		loads[n.ID] = load
		cost := load
		var cacheCost simtime.Duration
		if !s.CacheOblivious {
			cacheCost = s.CacheCost(n.ID, caches)
			cost += cacheCost
		}
		if audit != nil {
			audit = append(audit, eventlog.PlacementCandidate{
				Node:        n.ID,
				LoadNS:      int64(load),
				CacheCostNS: int64(cacheCost),
				TotalNS:     int64(cost),
			})
		}
		if best == nil || cost < bestCost || (cost == bestCost && n.ID < best.ID) {
			best, bestCost, bestLoad = n, cost, load
		}
	}
	outcome := s.classifyPlacement(best.ID, caches, loads)
	s.obs.Counter("redoop_placements_total", obs.L("outcome", outcome)).Inc()
	s.obs.Histogram("redoop_placement_queue_seconds").Observe(bestLoad.Seconds())
	if audit != nil {
		s.mu.Lock()
		query, rec := s.obsQuery, s.recurrence
		s.mu.Unlock()
		s.obs.Emit(ready, eventlog.Placement, query, eventlog.PlacementData{
			Recurrence: rec,
			Chosen:     best.ID,
			Outcome:    outcome,
			Caches:     len(caches),
			Candidates: audit,
		})
	}
	if s.log != nil {
		s.log.Debug("cache task placed",
			"node", best.ID, "outcome", outcome,
			"caches", len(caches), "queue_delay", bestLoad)
	}
	return best
}

// classifyPlacement names the Equation 4 outcome for metrics: the task
// had no caches to load ("no-cache"), landed where at least one of its
// caches lives ("cache-local"), was pushed off a busier cache holder
// ("load-balanced"), or simply ran remote from all its caches
// ("remote").
func (s *Scheduler) classifyPlacement(chosen int, caches []CacheLoc, loads map[int]simtime.Duration) string {
	if len(caches) == 0 {
		return "no-cache"
	}
	holderBusier := false
	for _, c := range caches {
		if c.Node == chosen {
			return "cache-local"
		}
		if l, ok := loads[c.Node]; ok && l > loads[chosen] {
			holderBusier = true
		}
	}
	if holderBusier {
		return "load-balanced"
	}
	return "remote"
}

// PlaceMap implements mapreduce.Placement: map tasks over newly arrived
// pane files use Hadoop's locality-first policy (scheduling of new data
// is "no different than in Hadoop", §4.3).
func (s *Scheduler) PlaceMap(e *mapreduce.Engine, sp mapreduce.Split, ready simtime.Time) *cluster.Node {
	return mapreduce.DefaultPlacement{}.PlaceMap(e, sp, ready)
}

// PlaceReduce implements mapreduce.Placement: reduce partitions are
// pinned to their home nodes so reduce-side caches accumulate where
// later recurrences can reuse them locally.
func (s *Scheduler) PlaceReduce(_ *mapreduce.Engine, _ *mapreduce.Job, part int, _ simtime.Time) *cluster.Node {
	return s.HomeNode(part)
}

// TaskEntry is one pending entry of a scheduling list.
type TaskEntry struct {
	// ID names the data partition(s) involved, e.g. "S1P3" for a map
	// task or "S1P3+S2P4" for a paired reduce task.
	ID string
	// Payload carries engine-specific context.
	Payload any
}

// TaskList is a FIFO task list (the paper's mapTaskList /
// reduceTaskList). It is intentionally simple: entries are consumed in
// arrival order; removal by ID supports the failure-recovery rollback
// that pulls tasks whose caches were lost.
type TaskList struct {
	entries []TaskEntry
}

// NewTaskList returns an empty list.
func NewTaskList() *TaskList { return &TaskList{} }

// Len returns the number of pending entries.
func (l *TaskList) Len() int { return len(l.entries) }

// Push appends an entry.
func (l *TaskList) Push(id string, payload any) {
	l.entries = append(l.entries, TaskEntry{ID: id, Payload: payload})
}

// Pop removes and returns the oldest entry (FIFO order, as Algorithm 2
// consumes the map task list). The vacated slot is zeroed so the
// backing array stops referencing the popped payload (rolled-back
// reduce payloads reference cached pane data that must stay GC-able).
func (l *TaskList) Pop() (TaskEntry, bool) {
	if len(l.entries) == 0 {
		return TaskEntry{}, false
	}
	e := l.entries[0]
	l.entries[0] = TaskEntry{}
	l.entries = l.entries[1:]
	return e, true
}

// Remove deletes all entries whose ID matches, returning how many were
// removed — the rollback path when a cache underpinning a scheduled
// task is lost (§5).
func (l *TaskList) Remove(id string) int {
	return l.RemoveMatching(func(eid string) bool { return eid == id })
}

// RemoveMatching deletes entries whose ID satisfies pred. Tail slots
// vacated by the compaction are zeroed so removed payloads don't
// linger in the backing array.
func (l *TaskList) RemoveMatching(pred func(id string) bool) int {
	kept := l.entries[:0]
	n := 0
	for _, e := range l.entries {
		if pred(e.ID) {
			n++
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = TaskEntry{}
	}
	l.entries = kept
	return n
}

// IDs returns the pending entry IDs in order.
func (l *TaskList) IDs() []string {
	out := make([]string, len(l.entries))
	for i, e := range l.entries {
		out[i] = e.ID
	}
	return out
}

// String summarizes the list.
func (l *TaskList) String() string { return fmt.Sprintf("%v", l.IDs()) }
