package core

import (
	"sort"

	"redoop/internal/window"
)

// This file is the live-introspection surface of the core package:
// JSON-serializable snapshots of the cache controller, the local cache
// registries, and an engine's pane inventory, taken under the
// components' own locks so the debug HTTP server can render them while
// a run is in flight.

// SignatureDump is one cache signature row (paper Table 2) as exposed
// by /debug/cache.
type SignatureDump struct {
	PID           string `json:"pid"`
	Type          string `json:"type"`
	Node          int    `json:"node"`
	Ready         string `json:"ready"`
	ReadyAtNS     int64  `json:"readyAtNS"`
	Bytes         int64  `json:"bytes"`
	DoneQueryMask []bool `json:"doneQueryMask"`
}

// RegistryRowDump is one local cache registry row (paper Table 1) plus
// the cached bytes actually present on the node (-1 when the data was
// lost, e.g. to a fault injection).
type RegistryRowDump struct {
	PID     string `json:"pid"`
	Type    string `json:"type"`
	Bytes   int64  `json:"bytes"`
	Expired bool   `json:"expired"`
}

// RegistryDump is one task node's local cache registry.
type RegistryDump struct {
	Node        int               `json:"node"`
	CachedBytes int64             `json:"cachedBytes"`
	Entries     []RegistryRowDump `json:"entries"`
}

// ControllerDump is the window-aware cache controller's full state:
// registered queries (doneQueryMask bit order), live signatures and
// every attached node registry.
type ControllerDump struct {
	Queries    []string        `json:"queries"`
	Signatures []SignatureDump `json:"signatures"`
	Registries []RegistryDump  `json:"registries"`
}

// Dump snapshots the controller for the debug server.
func (c *Controller) Dump() ControllerDump {
	c.mu.Lock()
	queries := append([]string(nil), c.queries...)
	sigs := make([]*Signature, 0, len(c.sigs))
	for _, s := range c.sigs {
		sigs = append(sigs, s)
	}
	regs := make([]*Registry, 0, len(c.registries))
	for _, r := range c.registries {
		regs = append(regs, r)
	}
	c.mu.Unlock()

	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].PID != sigs[j].PID {
			return sigs[i].PID < sigs[j].PID
		}
		return sigs[i].Type < sigs[j].Type
	})
	sort.Slice(regs, func(i, j int) bool { return regs[i].NodeID() < regs[j].NodeID() })

	d := ControllerDump{Queries: queries}
	for _, s := range sigs {
		d.Signatures = append(d.Signatures, SignatureDump{
			PID:           s.PID,
			Type:          s.Type.String(),
			Node:          s.NID,
			Ready:         s.Ready.String(),
			ReadyAtNS:     int64(s.ReadyAt),
			Bytes:         s.Bytes,
			DoneQueryMask: s.DoneMask(),
		})
	}
	for _, r := range regs {
		rd := RegistryDump{Node: r.NodeID(), CachedBytes: r.CachedBytes()}
		for _, e := range r.Entries() {
			rd.Entries = append(rd.Entries, RegistryRowDump{
				PID:     e.PID,
				Type:    e.Type.String(),
				Bytes:   r.Size(e.PID, e.Type),
				Expired: e.Expired,
			})
		}
		d.Registries = append(d.Registries, rd)
	}
	return d
}

// PaneSegmentDump is one physical segment of a flushed pane.
type PaneSegmentDump struct {
	Path        string `json:"path"`
	Offset      int64  `json:"offset"`
	Length      int64  `json:"length"`
	SubPane     int    `json:"subPane"`
	AvailableNS int64  `json:"availableAtNS"`
	HeaderBytes int64  `json:"headerBytes,omitempty"`
}

// PaneDump is one flushed pane's physical layout.
type PaneDump struct {
	Pane     int64             `json:"pane"`
	Bytes    int64             `json:"bytes"`
	Segments []PaneSegmentDump `json:"segments"`
}

// FlushedDump snapshots every flushed pane (ascending), with its
// physical segments in sub-pane order.
func (p *Packer) FlushedDump() []PaneDump {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]window.PaneID, 0, len(p.flushed))
	for id := range p.flushed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]PaneDump, 0, len(ids))
	for _, id := range ids {
		pd := PaneDump{Pane: int64(id)}
		segs := append([]PaneInput(nil), p.flushed[id]...)
		sort.Slice(segs, func(i, j int) bool { return segs[i].SubPane < segs[j].SubPane })
		for _, in := range segs {
			length := in.Input.Length
			if length < 0 {
				if sz, err := p.dfs.Size(in.Input.Path); err == nil {
					length = sz
				}
			}
			pd.Bytes += length
			pd.Segments = append(pd.Segments, PaneSegmentDump{
				Path:        in.Input.Path,
				Offset:      in.Input.Offset,
				Length:      length,
				SubPane:     in.SubPane,
				AvailableNS: int64(in.AvailableAt),
				HeaderBytes: in.HeaderBytes,
			})
		}
		out = append(out, pd)
	}
	return out
}

// SourceDump is one data source's partition plan and pane inventory as
// exposed by /debug/panes. Shared sources report their plan but not a
// pane listing (the hub owns the physical files).
type SourceDump struct {
	Name         string        `json:"name"`
	Shared       bool          `json:"shared"`
	Plan         PartitionPlan `json:"plan"`
	ExpiredBound int64         `json:"expiredBound"`
	Panes        []PaneDump    `json:"panes,omitempty"`
}

// EngineDump is one engine's live execution state.
type EngineDump struct {
	Query          string       `json:"query"`
	NextRecurrence int          `json:"nextRecurrence"`
	Proactive      bool         `json:"proactive"`
	Adaptive       bool         `json:"adaptive"`
	Homes          map[int]int  `json:"homes"`
	Matrix         string       `json:"matrix"`
	Sources        []SourceDump `json:"sources"`
}

// Dump snapshots the engine's partition plans, pane inventories, home
// assignments and cache status matrix for the debug server.
func (e *Engine) Dump() EngineDump {
	e.mu.Lock()
	next := e.next
	proactive := e.proactive
	plans := append([]PartitionPlan(nil), e.plans...)
	bounds := append([]window.PaneID(nil), e.expiredBound...)
	e.mu.Unlock()

	d := EngineDump{
		Query:          e.query.Name,
		NextRecurrence: next,
		Proactive:      proactive,
		Adaptive:       e.adaptive,
		Homes:          e.sched.Homes(),
		Matrix:         e.matrix.String(),
	}
	for i, src := range e.query.Sources {
		sd := SourceDump{
			Name:         src.Name,
			Shared:       e.shared[i],
			Plan:         plans[i],
			ExpiredBound: int64(bounds[i]),
		}
		if pk := e.packers[i]; pk != nil {
			sd.Panes = pk.FlushedDump()
		}
		d.Sources = append(d.Sources, sd)
	}
	return d
}
