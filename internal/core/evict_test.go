package core

import (
	"strings"
	"testing"

	"redoop/internal/account"
	"redoop/internal/simtime"
)

// TestRankVictimsPolicy is the replacement-policy table test: crafted
// feature vectors where benefit-density ranking provably keeps
// higher-ROI entries than any policy blind to cost — a large cache
// that is cheap to rebuild evicts before a small one that is expensive,
// and a cold cache evicts before a hot one of identical shape.
func TestRankVictimsPolicy(t *testing.T) {
	cases := []struct {
		name  string
		cands []EvictCandidate
		order []string // expected pid order, best victim first
	}{
		{
			// Same bytes and recompute cost; the residency that was
			// never hit goes first.
			name: "cold before hot",
			cands: []EvictCandidate{
				{PID: "hot", Bytes: 1000, RecomputeNS: 5000, Hits: 5, ReadyAt: 10},
				{PID: "cold", Bytes: 1000, RecomputeNS: 5000, Hits: 0, ReadyAt: 10},
			},
			order: []string{"cold", "hot"},
		},
		{
			// A 10x larger cache whose rebuild costs the same saves 10x
			// less per byte held: large-cheap evicts before
			// small-expensive even though pure expiry (or LRU on
			// ReadyAt) would pick the small one first.
			name: "large-cheap before small-expensive",
			cands: []EvictCandidate{
				{PID: "small-expensive", Bytes: 100, RecomputeNS: 8000, ReadyAt: 5},
				{PID: "large-cheap", Bytes: 1000, RecomputeNS: 8000, ReadyAt: 50},
			},
			order: []string{"large-cheap", "small-expensive"},
		},
		{
			// Equal density: age breaks the tie (older ReadyAt first),
			// then pid, so the sequence is total and replayable.
			name: "ties break on age then pid",
			cands: []EvictCandidate{
				{PID: "b", Bytes: 100, RecomputeNS: 100, ReadyAt: 20},
				{PID: "a", Bytes: 100, RecomputeNS: 100, ReadyAt: 20},
				{PID: "old", Bytes: 200, RecomputeNS: 200, ReadyAt: 10},
			},
			order: []string{"old", "a", "b"},
		},
		{
			// Zero-byte entries must not divide by zero; zero features
			// (no ledger attached) score 0 and go first.
			name: "zero features first",
			cands: []EvictCandidate{
				{PID: "scored", Bytes: 10, RecomputeNS: 100, Hits: 1, ReadyAt: 1},
				{PID: "featureless", Bytes: 0, ReadyAt: 9},
			},
			order: []string{"featureless", "scored"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ranked := rankVictims(tc.cands)
			var got []string
			for _, c := range ranked {
				got = append(got, c.PID)
			}
			if strings.Join(got, ",") != strings.Join(tc.order, ",") {
				t.Fatalf("rank = %v, want %v", got, tc.order)
			}
			// Ranking is a pure function: permuting the input cannot
			// change the order.
			rev := make([]EvictCandidate, len(tc.cands))
			for i, c := range tc.cands {
				rev[len(rev)-1-i] = c
			}
			ranked2 := rankVictims(rev)
			for i := range ranked {
				if ranked[i].PID != ranked2[i].PID {
					t.Fatalf("rank depends on input order: %v vs %v at %d", ranked[i].PID, ranked2[i].PID, i)
				}
			}
		})
	}
}

// TestRankVictimsBeatsExpiryROI quantifies the policy claim: over a
// trace where disk pressure forces half the entries out, cost-based
// ranking retains strictly more future recompute value (Σ density of
// survivors) than evicting by age alone — the pure-expiry stand-in.
func TestRankVictimsBeatsExpiryROI(t *testing.T) {
	cands := []EvictCandidate{
		{PID: "p0", Bytes: 4000, RecomputeNS: 1000, Hits: 0, ReadyAt: 1}, // old, huge, worthless
		{PID: "p1", Bytes: 200, RecomputeNS: 9000, Hits: 4, ReadyAt: 2},  // old but precious
		{PID: "p2", Bytes: 3000, RecomputeNS: 500, Hits: 0, ReadyAt: 3},
		{PID: "p3", Bytes: 100, RecomputeNS: 7000, Hits: 2, ReadyAt: 4},
	}
	value := func(c EvictCandidate) float64 { return c.score() }
	ranked := rankVictims(cands)
	var costBased float64
	for _, c := range ranked[2:] { // survivors after evicting two
		costBased += value(c)
	}
	var byAge float64 // evict the two oldest (ReadyAt ascending): p0, p1
	for _, c := range cands[2:] {
		byAge += value(c)
	}
	if costBased <= byAge {
		t.Fatalf("cost-based survivors worth %v, age-based worth %v — policy must win on this trace", costBased, byAge)
	}
	if ranked[0].PID != "p2" || ranked[1].PID != "p0" {
		t.Fatalf("victims = %s,%s, want the two low-density entries p2,p0", ranked[0].PID, ranked[1].PID)
	}
}

// TestFeaturesJoinsLedger pins the candidate↔ledger join: an open
// residency's recompute cost and hit count land on the candidate, and
// a missing residency leaves the zero vector.
func TestFeaturesJoinsLedger(t *testing.T) {
	l := account.New()
	l.Register("q", "")
	l.CacheRegistered("q", "S1P0#0", int(ReduceInput), 500, 10, 7000)
	l.CacheHit("q", "S1P0#0", int(ReduceInput), 20)
	l.CacheHit("q", "S1P0#0", int(ReduceInput), 30)

	c := Features(EvictCandidate{PID: "S1P0#0", Bytes: 500}, l)
	if c.RecomputeNS != 7000 || c.Hits != 2 {
		t.Fatalf("features = recompute %d hits %d, want 7000/2", c.RecomputeNS, c.Hits)
	}
	miss := Features(EvictCandidate{PID: "absent", Bytes: 1}, l)
	if miss.RecomputeNS != 0 || miss.Hits != 0 {
		t.Fatalf("absent residency should leave zero features, got %+v", miss)
	}
	var nilLedger *account.Ledger
	if got := Features(EvictCandidate{PID: "x"}, nilLedger); got.Hits != 0 {
		t.Fatalf("nil ledger must be a zero join, got %+v", got)
	}
	_ = simtime.Time(0)
}
