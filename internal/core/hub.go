package core

import (
	"fmt"
	"sync"

	"redoop/internal/dfs"
	"redoop/internal/obs"
	"redoop/internal/records"
	"redoop/internal/window"
)

// SourceHub owns data sources shared by several recurring queries: one
// Dynamic Data Packer packs each shared source once, at the pane
// granularity of its first consumer, and every consuming query reads
// its own (coarser or equal) panes as ranges of the shared ones. This
// operationalizes the Semantic Analyzer's multi-query planning (§3.1:
// "a sequence of recurring queries with different window constraints"
// over one source) — batches are ingested once, pane files exist once,
// and the reduce-input cache sharing of the controller's doneQueryMask
// layers on top.
//
// Pane files of a shared source are garbage-collected only when every
// consumer has released them.
type SourceHub struct {
	dfs       *dfs.DFS
	blockSize int64

	mu      sync.Mutex
	obs     *obs.Observer
	sources map[string]*sharedSource
}

type sharedSource struct {
	key    string
	packer *Packer
	pane   int64
	// bounds tracks, per consumer, the lowest shared pane it may
	// still need; panes below every bound are dropped.
	bounds  map[int]window.PaneID
	nextCID int
	dropped window.PaneID
}

// NewSourceHub builds a hub over the given DFS; blockSize feeds the
// packing decision of Algorithm 1.
func NewSourceHub(d *dfs.DFS, blockSize int64) *SourceHub {
	return &SourceHub{dfs: d, blockSize: blockSize, sources: make(map[string]*sharedSource)}
}

// Share declares a shared source under `key`. spec fixes the shared
// pane granularity (its GCD(win, slide)); consumers whose own pane is
// a multiple of it can attach. Declaring an existing key with a
// different granularity is an error. rate feeds Algorithm 1's file
// packing.
func (h *SourceHub) Share(key, name string, spec window.Spec, rate float64) error {
	if key == "" {
		return fmt.Errorf("core: shared source needs a key")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	pane := spec.PaneUnit()
	if existing, ok := h.sources[key]; ok {
		if existing.pane != pane {
			return fmt.Errorf("core: shared source %q already declared with pane %d (got %d)",
				key, existing.pane, pane)
		}
		return nil
	}
	analyzer, err := NewAnalyzer(h.blockSize)
	if err != nil {
		return err
	}
	plan, err := analyzer.Plan(spec, rate)
	if err != nil {
		return err
	}
	if rate == 0 {
		plan.PanesPerFile = 1
	}
	pk, err := NewPacker(h.dfs, name, "/redoop/shared/"+key, window.FrameOf(spec), plan)
	if err != nil {
		return err
	}
	if h.obs != nil {
		pk.SetObserver(h.obs, "shared/"+key)
	}
	h.sources[key] = &sharedSource{
		key:    key,
		packer: pk,
		pane:   pane,
		bounds: make(map[int]window.PaneID),
	}
	return nil
}

// SetObserver attaches the observability layer to the hub and every
// shared source's packer (present and future); shared pane-ingest
// events are labeled "shared/<key>" since no single query owns them.
func (h *SourceHub) SetObserver(o *obs.Observer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.obs = o
	for key, src := range h.sources {
		src.packer.SetObserver(o, "shared/"+key)
	}
}

// Has reports whether a shared source exists under key.
func (h *SourceHub) Has(key string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.sources[key]
	return ok
}

// Ingest feeds a batch into a shared source — exactly once per batch,
// regardless of how many queries consume it.
func (h *SourceHub) Ingest(key string, recs []records.Record) error {
	h.mu.Lock()
	src, ok := h.sources[key]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no shared source %q", key)
	}
	return src.packer.Ingest(recs)
}

// attach registers a consumer reading the shared source at its own
// pane granularity (which must be a multiple of the shared pane) and
// returns its view.
func (h *SourceHub) attach(key string, consumerPane int64) (*sharedView, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	src, ok := h.sources[key]
	if !ok {
		return nil, fmt.Errorf("core: no shared source %q", key)
	}
	if consumerPane <= 0 || consumerPane%src.pane != 0 {
		return nil, fmt.Errorf("core: consumer pane %d is not a multiple of shared source %q's pane %d",
			consumerPane, key, src.pane)
	}
	cid := src.nextCID
	src.nextCID++
	src.bounds[cid] = 0
	return &sharedView{hub: h, src: src, cid: cid, k: consumerPane / src.pane}, nil
}

// release advances a consumer's GC bound (in shared panes) and drops
// every shared pane below all consumers' bounds.
func (h *SourceHub) release(src *sharedSource, cid int, throughShared window.PaneID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if throughShared > src.bounds[cid] {
		src.bounds[cid] = throughShared
	}
	min := throughShared
	for _, b := range src.bounds {
		if b < min {
			min = b
		}
	}
	for p := src.dropped; p < min; p++ {
		_ = src.packer.DropPaneFiles(p)
	}
	if min > src.dropped {
		src.dropped = min
	}
}

// sharedView adapts a shared source to one consumer's pane
// granularity: consumer pane p covers shared panes [p·k, (p+1)·k).
type sharedView struct {
	hub *SourceHub
	src *sharedSource
	cid int
	k   int64
}

// Ingest is rejected: shared sources are fed through the hub exactly
// once, not per consumer.
func (v *sharedView) Ingest([]records.Record) error {
	return fmt.Errorf("core: source %q is shared; ingest it once via the hub", v.src.key)
}

// FlushThrough flushes the shared packer (monotonic; a consumer ahead
// of its siblings advances the bound for all).
func (v *sharedView) FlushThrough(unit int64) error {
	return v.src.packer.FlushThrough(unit)
}

// PaneInputs aggregates the consumer pane's shared segments.
func (v *sharedView) PaneInputs(p window.PaneID) ([]PaneInput, bool) {
	var out []PaneInput
	base := window.PaneID(int64(p) * v.k)
	for i := int64(0); i < v.k; i++ {
		ins, ok := v.src.packer.PaneInputs(base + window.PaneID(i))
		if !ok {
			return nil, false
		}
		for _, in := range ins {
			in.Pane = p // re-expressed in the consumer's pane ids
			out = append(out, in)
		}
	}
	return out, true
}

// NewestUnit returns the shared packer's ingestion watermark (shared
// panes live on the same unit axis as every consumer's).
func (v *sharedView) NewestUnit() int64 { return v.src.packer.NewestUnit() }

// PaneBytes sums the consumer pane's shared bytes.
func (v *sharedView) PaneBytes(p window.PaneID) int64 {
	var total int64
	base := window.PaneID(int64(p) * v.k)
	for i := int64(0); i < v.k; i++ {
		total += v.src.packer.PaneBytes(base + window.PaneID(i))
	}
	return total
}

// DropPaneFiles releases the consumer's claim on the pane; the shared
// files are deleted only when every consumer has released them.
func (v *sharedView) DropPaneFiles(p window.PaneID) error {
	v.hub.release(v.src, v.cid, window.PaneID((int64(p)+1)*v.k))
	return nil
}

// Plan returns the shared packer's plan.
func (v *sharedView) Plan() PartitionPlan { return v.src.packer.Plan() }

// SetPlan is rejected: adaptive sub-pane re-planning would change the
// physical packing under every consumer, so shared sources keep their
// declared granularity (consumers still go proactive against whole
// pane arrivals).
func (v *sharedView) SetPlan(PartitionPlan) error {
	return fmt.Errorf("core: shared source %q cannot be re-planned per consumer", v.src.key)
}
