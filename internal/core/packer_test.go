package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"redoop/internal/colfmt"
	"redoop/internal/dfs"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

func packerDFS(t *testing.T) *dfs.DFS {
	t.Helper()
	return dfs.MustNew(dfs.Config{BlockSize: 1 << 20, Replication: 2, Nodes: []int{0, 1, 2}, Seed: 9})
}

func mkRecs(ts []int64) []records.Record {
	out := make([]records.Record, len(ts))
	for i, t := range ts {
		out[i] = records.Record{Ts: t, Data: []byte(fmt.Sprintf("rec@%d", t))}
	}
	return out
}

// countSpec(30,20) has pane unit 10.
func packerSpec() window.Spec { return window.NewCountSpec(30, 20) }

func oversizePlan() PartitionPlan {
	return PartitionPlan{PaneUnit: 10, FilesPerPane: 1, PanesPerFile: 1, SubPanes: 1}
}

func TestNewPackerValidation(t *testing.T) {
	d := packerDFS(t)
	if _, err := NewPacker(d, "S1", "/d", window.Frame{}, oversizePlan()); err == nil {
		t.Error("invalid spec should be rejected")
	}
	bad := oversizePlan()
	bad.PaneUnit = 7 // mismatched with spec's GCD
	if _, err := NewPacker(d, "S1", "/d", window.FrameOf(packerSpec()), bad); err == nil {
		t.Error("plan/spec pane mismatch should be rejected")
	}
}

func TestOversizePaneFiles(t *testing.T) {
	d := packerDFS(t)
	pk, err := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), oversizePlan())
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.Ingest(mkRecs([]int64{0, 5, 9, 12, 15})); err != nil {
		t.Fatal(err)
	}
	if err := pk.FlushThrough(30); err != nil {
		t.Fatal(err)
	}
	// Pane 0 holds ts 0,5,9; pane 1 holds 12,15; pane 2 is empty.
	ins, ok := pk.PaneInputs(0)
	if !ok || len(ins) != 1 {
		t.Fatalf("pane 0 inputs = %v, %v", ins, ok)
	}
	if ins[0].Input.Path != "/data/S1P0" {
		t.Errorf("pane 0 path = %s, want naming convention S1P0", ins[0].Input.Path)
	}
	data, err := d.Read(ins[0].Input.Path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := colfmt.DecodeRecords(data)
	if err != nil || len(recs) != 3 {
		t.Errorf("pane 0 should hold 3 records, got %d (%v)", len(recs), err)
	}
	// Empty pane 2: flushed with zero inputs, distinguishable from
	// unflushed panes.
	ins2, ok := pk.PaneInputs(2)
	if !ok || len(ins2) != 0 {
		t.Errorf("empty pane should flush to no inputs: %v, %v", ins2, ok)
	}
	if _, ok := pk.PaneInputs(3); ok {
		t.Error("unflushed pane should not resolve")
	}
	if got := pk.PaneBytes(0); got != int64(len(data)) {
		t.Errorf("PaneBytes = %d, want %d", got, len(data))
	}
}

func TestUndersizedMultiPaneFileWithHeader(t *testing.T) {
	d := packerDFS(t)
	plan := oversizePlan()
	plan.PanesPerFile = 3
	pk, err := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.Ingest(mkRecs([]int64{1, 11, 21, 22})); err != nil {
		t.Fatal(err)
	}
	if err := pk.FlushThrough(30); err != nil {
		t.Fatal(err)
	}
	// Three panes share one file named S1P0_2 plus a header.
	ins0, _ := pk.PaneInputs(0)
	ins1, _ := pk.PaneInputs(1)
	ins2, _ := pk.PaneInputs(2)
	if len(ins0) != 1 || len(ins1) != 1 || len(ins2) != 1 {
		t.Fatalf("each pane should map to one segment: %d %d %d", len(ins0), len(ins1), len(ins2))
	}
	if ins0[0].Input.Path != "/data/S1P0_2" || ins1[0].Input.Path != ins0[0].Input.Path {
		t.Errorf("shared file naming wrong: %s", ins0[0].Input.Path)
	}
	if !d.Exists("/data/S1P0_2.hdr") {
		t.Error("multi-pane file should have a header")
	}
	if ins0[0].HeaderBytes == 0 {
		t.Error("pane reads from a shared file should charge a header lookup")
	}
	// Ranges are record-aligned: decoding each range yields exactly
	// that pane's records.
	body, _ := d.Read(ins1[0].Input.Path)
	seg := body[ins1[0].Input.Offset : ins1[0].Input.Offset+ins1[0].Input.Length]
	recs, err := colfmt.DecodeRecords(seg)
	if err != nil || len(recs) != 1 || recs[0].Ts != 11 {
		t.Errorf("pane 1 range decode = %v, %v", recs, err)
	}
	seg2 := body[ins2[0].Input.Offset : ins2[0].Input.Offset+ins2[0].Input.Length]
	recs2, _ := colfmt.DecodeRecords(seg2)
	if len(recs2) != 2 {
		t.Errorf("pane 2 should hold 2 records, got %d", len(recs2))
	}
}

func TestUndersizedPartialGroupForcedFlush(t *testing.T) {
	d := packerDFS(t)
	plan := oversizePlan()
	plan.PanesPerFile = 3
	pk, _ := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), plan)
	pk.Ingest(mkRecs([]int64{1, 11}))
	// The first window (panes 0..2) closes at unit 30; the group has
	// only 2 panes of data but must flush anyway.
	if err := pk.FlushThrough(30); err != nil {
		t.Fatal(err)
	}
	if _, ok := pk.PaneInputs(0); !ok {
		t.Error("forced flush should make pane 0 available")
	}
	if _, ok := pk.PaneInputs(1); !ok {
		t.Error("forced flush should make pane 1 available")
	}
}

func TestSubPanePacking(t *testing.T) {
	d := packerDFS(t)
	plan := oversizePlan()
	plan.SubPanes = 2
	pk, _ := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), plan)
	pk.Ingest(mkRecs([]int64{0, 4, 5, 9})) // pane 0: subs [0,4] and [5,9]
	if err := pk.FlushThrough(10); err != nil {
		t.Fatal(err)
	}
	ins, _ := pk.PaneInputs(0)
	if len(ins) != 2 {
		t.Fatalf("sub-pane plan should produce 2 segments, got %d", len(ins))
	}
	if ins[0].SubPane != 0 || ins[1].SubPane != 1 {
		t.Error("segments should be ordered by sub-pane")
	}
	if ins[0].Input.Path == ins[1].Input.Path {
		t.Error("sub-panes should be separate files")
	}
}

func TestSubPaneAvailability(t *testing.T) {
	d := packerDFS(t)
	spec := window.NewTimeSpec(40*simtime.Second, 20*simtime.Second) // pane 20s
	plan := PartitionPlan{PaneUnit: int64(20 * simtime.Second), FilesPerPane: 1, PanesPerFile: 1, SubPanes: 2}
	pk, err := NewPacker(d, "S1", "/data", window.FrameOf(spec), plan)
	if err != nil {
		t.Fatal(err)
	}
	pk.Ingest([]records.Record{
		{Ts: int64(2 * simtime.Second), Data: []byte("a")},
		{Ts: int64(15 * simtime.Second), Data: []byte("b")},
	})
	if err := pk.FlushThrough(int64(20 * simtime.Second)); err != nil {
		t.Fatal(err)
	}
	ins, _ := pk.PaneInputs(0)
	if len(ins) != 2 {
		t.Fatalf("want 2 segments, got %d", len(ins))
	}
	if ins[0].AvailableAt != simtime.Time(10*simtime.Second) {
		t.Errorf("first sub-pane available at %v, want T+10s", ins[0].AvailableAt)
	}
	if ins[1].AvailableAt != simtime.Time(20*simtime.Second) {
		t.Errorf("second sub-pane available at %v, want T+20s", ins[1].AvailableAt)
	}
}

func TestIngestRejectsLateData(t *testing.T) {
	d := packerDFS(t)
	pk, _ := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), oversizePlan())
	pk.Ingest(mkRecs([]int64{5}))
	pk.FlushThrough(10)
	if err := pk.Ingest(mkRecs([]int64{7})); err == nil {
		t.Error("records behind the flush bound must be rejected")
	}
	if err := pk.Ingest([]records.Record{{Ts: -3}}); err == nil {
		t.Error("records before the origin must be rejected")
	}
}

func TestFlushThroughIdempotent(t *testing.T) {
	d := packerDFS(t)
	pk, _ := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), oversizePlan())
	pk.Ingest(mkRecs([]int64{5}))
	if err := pk.FlushThrough(10); err != nil {
		t.Fatal(err)
	}
	if err := pk.FlushThrough(10); err != nil {
		t.Fatal(err)
	}
	if err := pk.FlushThrough(5); err != nil {
		t.Fatal(err) // lower bound is a no-op
	}
	ins, _ := pk.PaneInputs(0)
	if len(ins) != 1 {
		t.Errorf("idempotent flush should not duplicate segments: %d", len(ins))
	}
}

func TestSetPlanValidates(t *testing.T) {
	d := packerDFS(t)
	pk, _ := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), oversizePlan())
	bad := oversizePlan()
	bad.PaneUnit = 3
	if err := pk.SetPlan(bad); err == nil {
		t.Error("mismatched plan should be rejected")
	}
	good := oversizePlan()
	good.SubPanes = 4
	if err := pk.SetPlan(good); err != nil {
		t.Fatal(err)
	}
	if pk.Plan().SubPanes != 4 {
		t.Error("plan not adopted")
	}
}

func TestDropPaneFiles(t *testing.T) {
	d := packerDFS(t)
	pk, _ := NewPacker(d, "S1", "/data", window.FrameOf(packerSpec()), oversizePlan())
	pk.Ingest(mkRecs([]int64{5}))
	pk.FlushThrough(10)
	ins, _ := pk.PaneInputs(0)
	path := ins[0].Input.Path
	if err := pk.DropPaneFiles(0); err != nil {
		t.Fatal(err)
	}
	if d.Exists(path) {
		t.Error("dropped pane file should be deleted")
	}
	if _, ok := pk.PaneInputs(0); ok {
		t.Error("dropped pane should no longer resolve")
	}
	if err := pk.DropPaneFiles(99); err != nil {
		t.Error("dropping an unknown pane is a no-op")
	}
}

// TestPaneSliceColumnarRowAgreement is the shared-file half of the
// round-trip property: a §3.2 group file built from columnar segments
// and one built from row segments over the same per-pane batches must
// agree pane by pane — PaneSlice over each header yields bytes that
// decode to identical records, including an empty pane (zero bytes in
// both framings) and a single-record pane.
func TestPaneSliceColumnarRowAgreement(t *testing.T) {
	batches := map[int64][]records.Record{
		0: mkRecs([]int64{1, 3, 7}),
		1: nil,                 // empty pane: zero-length range
		2: mkRecs([]int64{21}), // single-record pane
		3: mkRecs([]int64{30, 31, 32, 33}),
	}
	build := func(enc func([]records.Record) []byte) ([]byte, []HeaderEntry) {
		var body []byte
		var hdr []HeaderEntry
		for pane := int64(0); pane < 4; pane++ {
			start := int64(len(body))
			body = append(body, enc(batches[pane])...)
			hdr = append(hdr, HeaderEntry{Pane: pane, Offset: start, Length: int64(len(body)) - start})
		}
		return body, hdr
	}
	colBody, colHdr := build(colfmt.EncodeRecords)
	rowBody, rowHdr := build(records.Encode)
	colEntries, err := ParsePaneHeader(mustJSON(t, colHdr), int64(len(colBody)))
	if err != nil {
		t.Fatalf("columnar header: %v", err)
	}
	rowEntries, err := ParsePaneHeader(mustJSON(t, rowHdr), int64(len(rowBody)))
	if err != nil {
		t.Fatalf("row header: %v", err)
	}
	for pane := int64(0); pane < 4; pane++ {
		colSeg, ok := PaneSlice(colBody, colEntries, pane)
		if !ok {
			t.Fatalf("pane %d missing from columnar slice", pane)
		}
		rowSeg, ok := PaneSlice(rowBody, rowEntries, pane)
		if !ok {
			t.Fatalf("pane %d missing from row slice", pane)
		}
		colRecs, err := colfmt.DecodeRecordsAny(colSeg)
		if err != nil {
			t.Fatalf("pane %d columnar decode: %v", pane, err)
		}
		rowRecs, err := colfmt.DecodeRecordsAny(rowSeg)
		if err != nil {
			t.Fatalf("pane %d row decode: %v", pane, err)
		}
		if len(colRecs) != len(rowRecs) || len(colRecs) != len(batches[pane]) {
			t.Fatalf("pane %d: %d columnar vs %d row records, want %d",
				pane, len(colRecs), len(rowRecs), len(batches[pane]))
		}
		for i := range colRecs {
			if colRecs[i].Ts != rowRecs[i].Ts || string(colRecs[i].Data) != string(rowRecs[i].Data) {
				t.Fatalf("pane %d record %d: columnar (%d,%q) vs row (%d,%q)",
					pane, i, colRecs[i].Ts, colRecs[i].Data, rowRecs[i].Ts, rowRecs[i].Data)
			}
		}
	}
	// A pane neither header mentions is attributed no bytes by either.
	if _, ok := PaneSlice(colBody, colEntries, 9); ok {
		t.Error("columnar PaneSlice produced bytes for an absent pane")
	}
	if _, ok := PaneSlice(rowBody, rowEntries, 9); ok {
		t.Error("row PaneSlice produced bytes for an absent pane")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
