package core

import (
	"strconv"
	"strings"
	"testing"

	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

func hubSpec() window.Spec {
	return window.NewTimeSpec(30*simtime.Second, 10*simtime.Second) // pane 10s
}

func TestHubShareValidation(t *testing.T) {
	mr := internalRig(2, 3)
	hub := NewSourceHub(mr.DFS, mr.DFS.BlockSize())
	if err := hub.Share("", "s", hubSpec(), 0); err == nil {
		t.Error("empty key should fail")
	}
	if err := hub.Share("k", "s", hubSpec(), 0); err != nil {
		t.Fatal(err)
	}
	if !hub.Has("k") || hub.Has("other") {
		t.Error("Has wrong")
	}
	// Re-declaring with the same granularity is idempotent.
	if err := hub.Share("k", "s", hubSpec(), 0); err != nil {
		t.Errorf("idempotent re-share failed: %v", err)
	}
	// A different granularity is rejected.
	other := window.NewTimeSpec(30*simtime.Second, 15*simtime.Second) // pane 15s
	if err := hub.Share("k", "s", other, 0); err == nil {
		t.Error("conflicting granularity should fail")
	}
	if err := hub.Ingest("ghost", nil); err == nil {
		t.Error("ingesting an unknown key should fail")
	}
}

func TestHubAttachGranularity(t *testing.T) {
	mr := internalRig(2, 5)
	hub := NewSourceHub(mr.DFS, mr.DFS.BlockSize())
	if err := hub.Share("k", "s", hubSpec(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.attach("k", int64(20*simtime.Second)); err != nil {
		t.Errorf("multiple of the shared pane should attach: %v", err)
	}
	if _, err := hub.attach("k", int64(15*simtime.Second)); err == nil {
		t.Error("non-multiple pane should fail to attach")
	}
	if _, err := hub.attach("ghost", int64(10*simtime.Second)); err == nil {
		t.Error("unknown key should fail to attach")
	}
}

func TestSharedViewRejectsDirectIngestAndReplan(t *testing.T) {
	mr := internalRig(2, 7)
	hub := NewSourceHub(mr.DFS, mr.DFS.BlockSize())
	hub.Share("k", "s", hubSpec(), 0)
	v, err := hub.attach("k", int64(10*simtime.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Ingest(nil); err == nil {
		t.Error("per-consumer ingest must be rejected")
	}
	if err := v.SetPlan(v.Plan()); err == nil {
		t.Error("per-consumer re-planning must be rejected")
	}
}

func TestSharedViewAggregatesPanes(t *testing.T) {
	mr := internalRig(2, 9)
	hub := NewSourceHub(mr.DFS, mr.DFS.BlockSize())
	hub.Share("k", "s", hubSpec(), 0)
	// Consumer at double the shared granularity: its pane 0 covers
	// shared panes 0 and 1.
	v, err := hub.attach("k", int64(20*simtime.Second))
	if err != nil {
		t.Fatal(err)
	}
	recs := []records.Record{
		{Ts: int64(2 * simtime.Second), Data: []byte("a")},
		{Ts: int64(12 * simtime.Second), Data: []byte("b")},
	}
	if err := hub.Ingest("k", recs); err != nil {
		t.Fatal(err)
	}
	if err := v.FlushThrough(int64(20 * simtime.Second)); err != nil {
		t.Fatal(err)
	}
	ins, ok := v.PaneInputs(0)
	if !ok || len(ins) != 2 {
		t.Fatalf("consumer pane 0 should aggregate 2 shared segments: %v ok=%v", ins, ok)
	}
	for _, in := range ins {
		if in.Pane != 0 {
			t.Errorf("segment should be re-expressed as consumer pane 0, got %d", in.Pane)
		}
	}
	if v.PaneBytes(0) <= 0 {
		t.Error("PaneBytes should sum the shared panes")
	}
}

func TestHubGCWaitsForAllConsumers(t *testing.T) {
	mr := internalRig(2, 11)
	hub := NewSourceHub(mr.DFS, mr.DFS.BlockSize())
	hub.Share("k", "s", hubSpec(), 0)
	v1, _ := hub.attach("k", int64(10*simtime.Second))
	v2, _ := hub.attach("k", int64(10*simtime.Second))
	hub.Ingest("k", []records.Record{{Ts: int64(simtime.Second), Data: []byte("x")}})
	v1.FlushThrough(int64(10 * simtime.Second))

	paneFile := ""
	for _, f := range mr.DFS.List() {
		if strings.Contains(f, "shared/k") && !strings.HasSuffix(f, ".hdr") {
			paneFile = f
		}
	}
	if paneFile == "" {
		t.Fatal("shared pane file should exist")
	}
	// Only one consumer releases: the file must survive.
	v1.DropPaneFiles(0)
	if !mr.DFS.Exists(paneFile) {
		t.Fatal("file dropped before all consumers released it")
	}
	v2.DropPaneFiles(0)
	if mr.DFS.Exists(paneFile) {
		t.Error("file should be dropped once every consumer released it")
	}
}

// Two engines over one shared source and hub: data ingested once, both
// queries correct, each at its own window size.
func TestSharedSourceTwoEngines(t *testing.T) {
	mr := internalRig(4, 13)
	hub := NewSourceHub(mr.DFS, mr.DFS.BlockSize())
	ctrl := NewController()
	spec := hubSpec()
	if err := hub.Share("clicks", "clicks", spec, 0); err != nil {
		t.Fatal(err)
	}

	mkQuery := func(name string, win simtime.Duration) *Query {
		q := internalCountQuery(win, 10*simtime.Second)
		q.Name = name
		q.Sources[0].CacheKey = "clicks"
		return q
	}
	e1 := MustNewEngine(Config{MR: mr, Query: mkQuery("q1", 30*simtime.Second), Controller: ctrl, Hub: hub})
	e2 := MustNewEngine(Config{MR: mr, Query: mkQuery("q2", 50*simtime.Second), Controller: ctrl, Hub: hub})

	if err := e1.Ingest(0, nil); err == nil {
		t.Fatal("direct ingest into a shared source must fail")
	}

	// Feed 5 slides once, through the hub.
	for s := 0; s < 5; s++ {
		if err := hub.Ingest("clicks", internalWords(29, 10*simtime.Second, s, 100, 5)); err != nil {
			t.Fatal(err)
		}
	}
	count := func(out []records.Pair) int {
		total := 0
		for _, p := range out {
			n, _ := strconv.Atoi(string(p.Value))
			total += n
		}
		return total
	}
	r1, err := e1.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	if got := count(r1.Output); got != 300 {
		t.Errorf("q1 counted %d, want 300 (3 panes)", got)
	}
	r2, err := e2.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	if got := count(r2.Output); got != 500 {
		t.Errorf("q2 counted %d, want 500 (5 panes)", got)
	}
	// q2 shares q1's reduce-input caches for panes 0-2 (group claims
	// keep them alive past q1's own expiry), so it maps only its two
	// extra panes — strictly less than q1's three.
	if r2.Stats.BytesRead >= r1.Stats.BytesRead {
		t.Errorf("q2 should map only its 2 extra panes: read %d vs q1's %d",
			r2.Stats.BytesRead, r1.Stats.BytesRead)
	}
}
