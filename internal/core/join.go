package core

import (
	"fmt"
	"strings"

	"redoop/internal/account"
	"redoop/internal/colfmt"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/parallel"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// The join path generalizes the paper's binary joins to n sources: the
// cache status matrix is n-dimensional (§4.2 notes "the extension to
// higher dimensions is straightforward"), each source pane is mapped
// and shuffled once into reduce-input caches, each pane *tuple*
// (p1,...,pn) within the window is joined exactly once with its result
// cached, and a window's answer is the union of its tuples' outputs:
// W1 ⋈ ... ⋈ Wn = ∪ p1 ⋈ ... ⋈ pn for equi-joins over pane unions.

// paneTuple is one coordinate of the n-dimensional pane space.
type paneTuple []window.PaneID

// key is the map key / identifier form of a tuple.
func (t paneTuple) key() string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = fmt.Sprintf("%d", int64(p))
	}
	return strings.Join(parts, "_")
}

// runJoin executes recurrence r of a multi-source query.
func (e *Engine) runJoin(r int, trigger simtime.Time) (*RecurrenceResult, error) {
	q := e.query
	n := len(q.Sources)
	los := make([]window.PaneID, n)
	his := make([]window.PaneID, n)
	for d := 0; d < n; d++ {
		los[d], his[d] = e.frames[d].WindowRange(r)
	}
	res := &RecurrenceResult{Recurrence: r, WindowLo: los[0], WindowHi: his[0], TriggerAt: trigger}
	res.Stats.Start = trigger
	res.Stats.End = trigger

	// Phase 1: reduce-input caches for every pane of every source.
	rins := make([]map[window.PaneID][]cacheRef, n)
	for src := 0; src < n; src++ {
		rins[src] = make(map[window.PaneID][]cacheRef, int(his[src]-los[src])+1)
		for p := los[src]; p <= his[src]; p++ {
			refs, reused, recovered, err := e.ensureJoinPaneInputs(src, p, trigger, &res.Stats)
			if err != nil {
				return nil, err
			}
			rins[src][p] = refs
			if reused {
				res.ReusedPanes++
			} else {
				res.NewPanes++
			}
			if recovered {
				res.CacheRecoveries++
			}
		}
	}

	// Phase 2: join every pane tuple of the window exactly once.
	// Tuples already computed in earlier windows are reused from their
	// output caches; the rest are grouped into batched tasks that
	// share one cached pane per slot occupancy.
	tupleRefs := make(map[string][]cacheRef)
	var needed []paneTuple
	forEachTupleRanges(los, his, func(t paneTuple) {
		refs, reused, recovered := e.reuseJoinTuple(t)
		if reused {
			tupleRefs[t.key()] = refs
			res.ReusedPairs++
		} else {
			needed = append(needed, append(paneTuple(nil), t...))
			res.NewPairs++
		}
		if recovered {
			res.CacheRecoveries++
		}
	})
	for _, group := range groupTuples(needed) {
		refsByTuple, err := e.joinTupleGroup(group, trigger, rins, &res.Stats)
		if err != nil {
			return nil, err
		}
		for key, refs := range refsByTuple {
			tupleRefs[key] = refs
		}
	}

	// Phase 3: combine the window's tuple outputs into the final result.
	out, endMax, err := e.finalizeJoinWindow(los, his, trigger, tupleRefs, &res.Stats)
	if err != nil {
		return nil, err
	}
	res.Output = out
	if endMax > res.Stats.End {
		res.Stats.End = endMax
	}
	res.CompletedAt = res.Stats.End
	res.ResponseTime = res.Stats.End.Sub(trigger)
	return res, nil
}

// forEachTupleRanges enumerates the pane tuples of the per-dimension
// ranges [los[d], his[d]] in lexicographic order.
func forEachTupleRanges(los, his []window.PaneID, fn func(paneTuple)) {
	n := len(los)
	t := make(paneTuple, n)
	var rec func(d int)
	rec = func(d int) {
		if d == n {
			fn(t)
			return
		}
		for p := los[d]; p <= his[d]; p++ {
			t[d] = p
			rec(d + 1)
		}
	}
	rec(0)
}

// ensureJoinPaneInputs guarantees the per-partition reduce-input caches
// of pane p of source src: reused when present, rebuilt by re-running
// the pane's map and shuffle when lost.
func (e *Engine) ensureJoinPaneInputs(src int, p window.PaneID, trigger simtime.Time, stats *mapreduce.Stats) (refs []cacheRef, reused, recovered bool, err error) {
	q := e.query
	R := q.NumReducers

	refs = make([]cacheRef, R)
	all := !e.noReuse
	anyKnown := false
	for part := 0; all && part < R; part++ {
		if _, known := e.ctrl.Lookup(q.rinPID(src, e.frames[src].Pane, p, part), ReduceInput); known {
			anyKnown = true
		}
		ref, ok := e.lookupCache(q.rinPID(src, e.frames[src].Pane, p, part), ReduceInput)
		if !ok {
			all = false
			break
		}
		refs[part] = ref
	}
	if all {
		return refs, true, false, nil
	}
	recovered = anyKnown // signatures existed but bytes were lost

	id := fmt.Sprintf("%sP%d", q.Sources[src].Name, int64(p))
	e.sched.MapTasks.Push(id, nil)
	defer e.sched.MapTasks.Remove(id)

	mp, err := e.runPaneMapPhase(src, p, trigger, stats)
	if err != nil {
		return nil, false, recovered, err
	}

	// The per-partition sort + encode is pure compute; fan it out
	// before the serial shuffle-accounting pass. The cache is stored
	// sorted so pane-tuple joins later merge sorted runs instead of
	// re-sorting: the sort is paid once here, at cache-build time.
	sortedData := make([][]byte, R)
	inSizes := make([]int64, R)
	parallel.For(e.mr.WorkerCount(), R, func(part int) {
		input := mp.Parts[part]
		inSizes[part] = records.PairsSize(input)
		if inSizes[part] == 0 {
			return
		}
		sorted := append([]records.Pair(nil), input...)
		mapreduce.SortPairs(sorted)
		sortedData[part] = colfmt.EncodePairs(sorted)
	})

	// Map cost is paid once for the whole pane; each live partition's
	// reduce-input entry carries an even share of it in its ledger
	// recompute, on top of its own shuffle and spill actuals.
	live := 0
	for part := 0; part < R; part++ {
		if inSizes[part] > 0 {
			live++
		}
	}
	mapShare := simtime.Duration(0)
	if live > 0 {
		mapShare = mp.Stats.MapTime / simtime.Duration(live)
	}
	batches := e.linBatches(src, p)
	jobName := fmt.Sprintf("%s/%s", q.Name, q.Sources[src].Name)
	for part := 0; part < R; part++ {
		home := e.sched.HomeNode(part)
		if home == nil {
			return nil, false, recovered, fmt.Errorf("core: no alive node to home partition %d", part)
		}
		inBytes := inSizes[part]
		readyAt := simtime.Max(mp.LastMapEnd, trigger)
		if e.proactive {
			readyAt = mp.LastMapEnd
		}
		var rinLin *linMeta
		if e.lin != nil {
			rinLin = &linMeta{kind: "pane-rin", pane: int64(p), part: part, job: jobName, batches: batches}
		}
		if inBytes == 0 {
			refs[part] = e.registerCacheFor(q.rinPID(src, e.frames[src].Pane, p, part), ReduceInput, home.ID, readyAt, nil, e.rinUsers(src), cacheMeta{lin: rinLin})
			continue
		}
		// The reducer-side copy: bytes from maps colocated with the
		// home are disk reads, the rest cross the network; the spill
		// to the reduce-input cache is a local write.
		var local, remote int64
		for srcNode, b := range mp.PartSrcBytes[part] {
			if srcNode == home.ID {
				local += b
			} else {
				remote += b
			}
		}
		shuffleStart := mp.FirstMapEnd
		copyDone := shuffleStart.Add(e.mr.Cost.NetTransfer(remote) + e.mr.Cost.DiskRead(local))
		availAt := simtime.Max(copyDone, mp.LastMapEnd)
		spill := e.mr.Cost.Sort(inBytes) + e.mr.Cost.DiskWrite(inBytes)
		start, end := home.Reduce.Acquire(availAt, spill)
		home.AddLoad(spill)
		stats.ShuffleTime += availAt.Sub(shuffleStart)
		stats.ReduceTime += spill
		stats.BytesShuffled += inBytes
		// Ledger: the copy is shuffle (elapsed, not slot time); the
		// slot-held spill splits into its sort and disk-write (reduce)
		// shares, summing exactly to the AddLoad above.
		e.acct.AddCompute(e.acctName, account.PhaseShuffle, availAt.Sub(shuffleStart))
		e.acct.AddCompute(e.acctName, account.PhaseSort, e.mr.Cost.Sort(inBytes))
		e.acct.AddCompute(e.acctName, account.PhaseReduce, spill-e.mr.Cost.Sort(inBytes))
		e.acct.AddIO(e.acctName, account.IOShuffle, inBytes)
		shuffleSpan := e.obs.Task(obs.TaskSpan{
			Track: obs.NodeTrack(home.ID), Cat: "shuffle",
			Name:  fmt.Sprintf("shuffle %s pane %d p%d", q.Sources[src].Name, int64(p), part),
			Start: shuffleStart, End: availAt, Ready: shuffleStart,
			Parent: e.mr.SpanParent, Deps: mp.Spans,
			Args: []obs.Label{obs.L("query", q.Name)},
		})
		spillSpan := e.obs.Task(obs.TaskSpan{
			Track: obs.NodeTrack(home.ID), Cat: "spill",
			Name:  fmt.Sprintf("spill %s pane %d p%d", q.Sources[src].Name, int64(p), part),
			Start: start, End: end, Ready: availAt,
			Parent: e.mr.SpanParent, Deps: []obs.SpanID{shuffleSpan},
			Args: []obs.Label{obs.L("query", q.Name)},
		})
		refs[part] = e.registerCacheFor(q.rinPID(src, e.frames[src].Pane, p, part), ReduceInput, home.ID,
			end, sortedData[part], e.rinUsers(src),
			cacheMeta{span: spillSpan, recompute: mapShare + availAt.Sub(shuffleStart) + spill, lin: rinLin})
		if end > stats.End {
			stats.End = end
		}
	}
	return refs, false, recovered, nil
}

// reuseJoinTuple returns pane tuple t's cached per-partition output
// references when the tuple was computed in an earlier window and
// every cache survives. recovered reports a detected cache loss.
func (e *Engine) reuseJoinTuple(t paneTuple) (refs []cacheRef, reused, recovered bool) {
	q := e.query
	done, _ := e.matrix.Done(t...)
	if !done || e.noReuse {
		return nil, false, false
	}
	refs = make([]cacheRef, q.NumReducers)
	for part := 0; part < q.NumReducers; part++ {
		ref, ok := e.lookupCache(q.routTuplePID(t, part), ReduceOutput)
		if !ok {
			return nil, false, true
		}
		refs[part] = ref
	}
	return refs, true, false
}

// tupleGroup is a batch of pane tuples sharing one (dimension, pane)
// coordinate that one reducer slot occupancy processes.
type tupleGroup struct {
	tuples []paneTuple
}

// groupTuples buckets the needed tuples so that tuples sharing a hot
// coordinate run in one batched task: each tuple joins the bucket of
// whichever of its coordinates participates in the most needed tuples,
// so the hot new pane's cache is read once per partition rather than
// once per tuple.
func groupTuples(needed []paneTuple) []tupleGroup {
	type coord struct {
		dim  int
		pane window.PaneID
	}
	count := make(map[coord]int)
	for _, t := range needed {
		for d, p := range t {
			count[coord{d, p}]++
		}
	}
	buckets := make(map[coord]*tupleGroup)
	var order []coord
	for _, t := range needed {
		best := coord{0, t[0]}
		for d, p := range t {
			if count[coord{d, p}] > count[best] {
				best = coord{d, p}
			}
		}
		g, ok := buckets[best]
		if !ok {
			g = &tupleGroup{}
			buckets[best] = g
			order = append(order, best)
		}
		g.tuples = append(g.tuples, t)
	}
	out := make([]tupleGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *buckets[k])
	}
	return out
}

// joinTupleGroup computes a batch of pane-tuple joins per partition in
// one slot occupancy: distinct input caches are loaded once, each
// tuple's output is computed and cached separately (preserving
// tuple-granular reuse and expiry), and the status matrix is updated.
func (e *Engine) joinTupleGroup(group tupleGroup, trigger simtime.Time, rins []map[window.PaneID][]cacheRef, stats *mapreduce.Stats) (map[string][]cacheRef, error) {
	q := e.query
	R := q.NumReducers
	n := len(q.Sources)
	baseReady := trigger
	if e.proactive {
		baseReady = 0 // gated only by the input caches' readiness
	}
	id := groupID(q, group)
	e.sched.ReduceTasks.Push(id, nil)
	defer e.sched.ReduceTasks.Remove(id)

	out := make(map[string][]cacheRef, len(group.tuples))
	for _, t := range group.tuples {
		out[t.key()] = make([]cacheRef, R)
	}
	// Phase 1 (parallel): per partition, load the batch's distinct
	// input caches and compute every tuple's join — pure compute.
	type tupleOut struct {
		key string
		// inBytes is the tuple's summed input-cache bytes — the basis of
		// the ledger's modeled recompute for the tuple's output cache.
		inBytes int64
		data    []byte
	}
	type partCompute struct {
		caches   []cacheRef
		outs     []tupleOut
		inBytes  int64
		outBytes int64
	}
	computed := make([]partCompute, R)
	if err := parallel.ForErr(e.mr.WorkerCount(), R, func(part int) error {
		pc := &partCompute{}
		seen := make(map[string]bool)
		addCache := func(c cacheRef) {
			if c.bytes == 0 || seen[c.pid] {
				return
			}
			seen[c.pid] = true
			pc.caches = append(pc.caches, c)
		}
		for _, t := range group.tuples {
			var tupleIn int64
			var pairs []records.Pair
			for d := 0; d < n; d++ {
				c := rins[d][t[d]][part]
				addCache(c)
				tupleIn += c.bytes
				if c.bytes == 0 {
					continue
				}
				ps, err := e.readCache(c)
				if err != nil {
					return err
				}
				pairs = append(pairs, ps...)
			}
			if tupleIn == 0 {
				pc.outs = append(pc.outs, tupleOut{key: t.key(), data: nil})
				continue
			}
			joined := mapreduce.ReduceGroups(q.Reduce, mapreduce.GroupPairs(pairs))
			data := colfmt.EncodePairs(joined)
			pc.inBytes += tupleIn
			pc.outBytes += int64(len(data))
			pc.outs = append(pc.outs, tupleOut{key: t.key(), inBytes: tupleIn, data: data})
		}
		computed[part] = *pc
		return nil
	}); err != nil {
		return nil, err
	}
	// Phase 2 (serial, partition order): Eq. 4 scheduling, cache
	// registration and stats.
	linTuple := func(t paneTuple, part int) *linMeta {
		if e.lin == nil {
			return nil
		}
		ins := make([]lineage.InputRef, 0, n)
		for d := 0; d < n; d++ {
			ins = append(ins, e.linInput(q.rinPID(d, e.frames[d].Pane, t[d], part), ReduceInput))
		}
		return &linMeta{kind: "tuple-rout", pane: int64(t[0]), part: part, inputs: ins}
	}
	for part := 0; part < R; part++ {
		caches := computed[part].caches
		outs := computed[part].outs
		inBytes := computed[part].inBytes
		outBytes := computed[part].outBytes
		if len(caches) == 0 {
			// Entirely empty partition: register empty outputs.
			home := e.sched.HomeNode(part)
			for i, to := range outs {
				out[to.key][part] = e.registerCache(q.routTuplePID(group.tuples[i], part),
					ReduceOutput, home.ID, baseReady, nil, cacheMeta{lin: linTuple(group.tuples[i], part)})
			}
			continue
		}
		ct := e.runCacheTask(fmt.Sprintf("join %s p%d", id, part), account.PhaseReduce, baseReady, caches,
			e.mr.Cost.CachedReduceTask(inBytes, outBytes))
		stats.ReduceTasks++
		stats.ReduceTime += ct.dur
		stats.BytesCacheRead += sumCacheBytes(caches)
		for i, to := range outs {
			// A hit on a tuple's output skips re-joining its inputs: the
			// modeled cached-reduce over this tuple's share of the batch.
			out[to.key][part] = e.registerCache(q.routTuplePID(group.tuples[i], part),
				ReduceOutput, ct.node, ct.end, to.data,
				cacheMeta{span: ct.span, recompute: e.mr.Cost.CachedReduceTask(to.inBytes, int64(len(to.data))),
					lin: linTuple(group.tuples[i], part)})
		}
		if ct.end > stats.End {
			stats.End = ct.end
		}
	}
	for _, t := range group.tuples {
		if err := e.matrix.Update(t...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sumCacheBytes(cs []cacheRef) int64 {
	var n int64
	for _, c := range cs {
		n += c.bytes
	}
	return n
}

// groupID names a batched tuple task for the reduce task list, e.g.
// "S1P3+S2P4" or "S1P3+8 tuples".
func groupID(q *Query, g tupleGroup) string {
	if len(g.tuples) == 1 && len(g.tuples[0]) == 2 {
		return fmt.Sprintf("%sP%d+%sP%d", q.Sources[0].Name, int64(g.tuples[0][0]),
			q.Sources[1].Name, int64(g.tuples[0][1]))
	}
	return fmt.Sprintf("%sP%d+%d tuples", q.Sources[0].Name, int64(g.tuples[0][0]), len(g.tuples))
}

// finalizeJoinWindow assembles the window's result from the cached
// tuple outputs. With no finalization function the result is the union
// of the already-materialized tuple outputs — the new tuples' results
// "combined with the cached reducer outputs from last occurrence"
// (§6.2.2) — so the finalize step publishes a manifest referencing
// those output files rather than physically rewriting them (Hadoop
// outputs are directories of part files; a Redoop recurrence's output
// directory lists its tuples' part files). With a Merge function the
// partial outputs are genuinely re-read and merged per partition.
func (e *Engine) finalizeJoinWindow(los, his []window.PaneID, trigger simtime.Time, tupleRefs map[string][]cacheRef, stats *mapreduce.Stats) ([]records.Pair, simtime.Time, error) {
	q := e.query
	endMax := trigger
	var output []records.Pair

	if q.Merge == nil {
		// Manifest publication: one metadata task covering the whole
		// window; the output bytes themselves are already on disk.
		// Cache reads fan out per tuple; the manifest accounting and
		// output concatenation then replay in tuple order.
		var tuples []paneTuple
		forEachTupleRanges(los, his, func(t paneTuple) {
			tuples = append(tuples, append(paneTuple(nil), t...))
		})
		type tupleRead struct {
			pairs    []records.Pair
			bytes    int64
			manifest int64
			ready    simtime.Time
			spans    []obs.SpanID
		}
		reads := make([]tupleRead, len(tuples))
		if err := parallel.ForErr(e.mr.WorkerCount(), len(tuples), func(i int) error {
			tr := &reads[i]
			for part := 0; part < q.NumReducers; part++ {
				ref := tupleRefs[tuples[i].key()][part]
				if ref.readyAt > tr.ready {
					tr.ready = ref.readyAt
				}
				if ref.span != 0 {
					tr.spans = append(tr.spans, ref.span)
				}
				if ref.bytes == 0 {
					continue
				}
				tr.manifest += int64(len(ref.pid)) + 16
				ps, err := e.readCache(ref)
				if err != nil {
					return err
				}
				tr.pairs = append(tr.pairs, ps...)
				tr.bytes += ref.bytes
			}
			return nil
		}); err != nil {
			return nil, endMax, err
		}
		ready := trigger
		var manifestBytes int64
		var deps []obs.SpanID
		for _, tr := range reads {
			if tr.ready > ready {
				ready = tr.ready
			}
			manifestBytes += tr.manifest
			deps = append(deps, tr.spans...)
			output = append(output, tr.pairs...)
			stats.BytesOutput += tr.bytes
		}
		node := e.sched.PickCacheTaskNode(ready, nil)
		dur := e.mr.Cost.ConcatTask(manifestBytes)
		start, end := node.Reduce.Acquire(ready, dur)
		node.AddLoad(dur)
		stats.ReduceTime += dur
		e.acct.AddCompute(e.acctName, account.PhaseReduce, dur)
		e.obs.Task(obs.TaskSpan{
			Track: obs.NodeTrack(node.ID), Cat: "cachetask", Name: "publish manifest",
			Start: start, End: end, Ready: ready,
			Parent: e.mr.SpanParent, Deps: deps,
			Args: []obs.Label{obs.L("query", q.Name), obs.L("tuples", fmt.Sprint(len(tuples)))},
		})
		if end > endMax {
			endMax = end
		}
		return output, endMax, nil
	}

	// Phase 1 (parallel): per partition, gather tuple outputs and run
	// the finalization merge — pure compute.
	type finalPart struct {
		caches   []cacheRef
		out      []records.Pair
		inBytes  int64
		outBytes int64
	}
	parts := make([]finalPart, q.NumReducers)
	if err := parallel.ForErr(e.mr.WorkerCount(), q.NumReducers, func(part int) error {
		fp := &parts[part]
		var pairs []records.Pair
		var ferr error
		forEachTupleRanges(los, his, func(t paneTuple) {
			if ferr != nil {
				return
			}
			ref := tupleRefs[t.key()][part]
			if ref.bytes == 0 {
				return
			}
			fp.caches = append(fp.caches, ref)
			ps, err := e.readCache(ref)
			if err != nil {
				ferr = err
				return
			}
			pairs = append(pairs, ps...)
		})
		if ferr != nil {
			return ferr
		}
		if len(fp.caches) == 0 {
			return nil
		}
		fp.out = mapreduce.ReduceGroups(q.Merge, mapreduce.GroupPairs(pairs))
		fp.inBytes = records.PairsSize(pairs)
		fp.outBytes = records.PairsSize(fp.out)
		return nil
	}); err != nil {
		return nil, endMax, err
	}
	// Phase 2 (serial, partition order): Eq. 4 scheduling and stats.
	for part := 0; part < q.NumReducers; part++ {
		fp := parts[part]
		if len(fp.caches) == 0 {
			continue
		}
		ct := e.runCacheTask(fmt.Sprintf("finalize p%d", part), account.PhaseReduce, trigger, fp.caches, e.mr.Cost.MergeTask(fp.inBytes, fp.outBytes))
		stats.ReduceTime += ct.dur
		stats.ReduceTasks++
		stats.BytesCacheRead += fp.inBytes
		stats.BytesOutput += fp.outBytes
		if ct.end > endMax {
			endMax = ct.end
		}
		output = append(output, fp.out...)
	}
	return output, endMax, nil
}
