package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"redoop/internal/colfmt"
	"redoop/internal/dfs"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// PaneInput is one physical segment of one logical pane: a byte range
// of a DFS file plus the instant its data is complete — the earliest
// moment proactive execution may process it.
type PaneInput struct {
	Input mapreduce.Input
	// Pane is the logical pane the segment belongs to.
	Pane window.PaneID
	// SubPane is the segment's index within its pane (0 when the pane
	// is packed whole).
	SubPane int
	// AvailableAt is when the segment's data has fully arrived.
	AvailableAt simtime.Time
	// HeaderBytes is the extra read charged to locate this segment
	// inside a shared multi-pane file via its header (§3.2); zero for
	// single-pane files.
	HeaderBytes int64
}

// Packer is the Dynamic Data Packer of one data source (paper §3.2):
// it executes the Semantic Analyzer's partition plan at load time,
// splitting arriving record batches into pane (or sub-pane) units and
// storing them as DFS files under the paper's naming convention —
// S#P# when one pane maps to one file (the oversize case) and S#P#_#
// with a locator header when several undersized panes share a file.
//
// Packing piggybacks on loading: the pane files exist by the time the
// covered data has arrived, so the packer charges no query-time cost
// beyond the per-pane header lookup for shared files.
type Packer struct {
	// mu guards all mutable state so the debug server can read pane
	// inventories while the engine loads and flushes data.
	mu    sync.Mutex
	dfs   *dfs.DFS
	name  string // source name used in paths, e.g. "S1"
	dir   string // DFS directory, e.g. "/data/q1"
	frame window.Frame
	plan  PartitionPlan

	// obs receives a flight-recorder PaneIngest event per pane segment
	// written; obsQuery labels those events. Both may be zero.
	obs      *obs.Observer
	obsQuery string

	// timeOfUnit maps a window-unit offset to a virtual instant. For
	// time-based windows units are virtual nanoseconds (identity); for
	// count-based windows the caller supplies the arrival mapping.
	timeOfUnit func(int64) simtime.Time

	pending map[window.PaneID]map[int][]records.Record // pane -> sub -> records
	paneSub map[window.PaneID]int                      // sub-pane factor bound per pane
	flushed map[window.PaneID][]PaneInput
	// group accumulates undersized panes awaiting a shared file.
	groupPanes []window.PaneID
	groupRecs  map[window.PaneID][]records.Record
	// flushedThrough is the unit bound below which all data has been
	// flushed; late records are rejected.
	flushedThrough int64
	// maxTs is the newest record timestamp ever ingested (-1 before
	// any); it backs the health monitor's window-lag watermark.
	maxTs int64
}

// NewPacker builds a packer for one source. dir is the DFS directory
// pane files are written under.
func NewPacker(d *dfs.DFS, sourceName, dir string, frame window.Frame, plan PartitionPlan) (*Packer, error) {
	if err := frame.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.PaneUnit != frame.Pane {
		return nil, fmt.Errorf("core: plan pane unit %d does not match the frame's pane unit %d",
			plan.PaneUnit, frame.Pane)
	}
	p := &Packer{
		dfs:     d,
		name:    sourceName,
		dir:     dir,
		frame:   frame,
		plan:    plan,
		pending: make(map[window.PaneID]map[int][]records.Record),
		paneSub: make(map[window.PaneID]int),
		flushed: make(map[window.PaneID][]PaneInput),
		maxTs:   -1,
	}
	if frame.Spec.Kind == window.TimeBased {
		p.timeOfUnit = func(u int64) simtime.Time { return simtime.Time(u) }
	} else {
		p.timeOfUnit = func(int64) simtime.Time { return 0 }
	}
	p.groupRecs = make(map[window.PaneID][]records.Record)
	return p, nil
}

// SetTimeOfUnit overrides the unit→instant mapping (needed for
// count-based windows where record ordinals are not instants).
func (p *Packer) SetTimeOfUnit(fn func(int64) simtime.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timeOfUnit = fn
}

// SetObserver attaches the observability layer and the query name used
// to label pane-ingest events; a nil observer detaches it.
func (p *Packer) SetObserver(o *obs.Observer, query string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = o
	p.obsQuery = query
}

// Plan returns the packer's current partition plan.
func (p *Packer) Plan() PartitionPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.plan
}

// SetPlan adopts a new plan (adaptive re-planning, §3.3). It affects
// panes whose data has not started arriving; panes already buffered
// keep the granularity they were bound to.
func (p *Packer) SetPlan(plan PartitionPlan) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := plan.Validate(); err != nil {
		return err
	}
	if plan.PaneUnit != p.frame.Pane {
		return fmt.Errorf("core: plan pane unit %d does not match the frame's pane unit %d",
			plan.PaneUnit, p.frame.Pane)
	}
	p.plan = plan
	return nil
}

// SourceName returns the source's name.
func (p *Packer) SourceName() string { return p.name }

// Ingest buffers a batch of records, assigning each to its pane and
// sub-pane by timestamp. Records at or below the flushed bound are
// rejected: the data model (paper §2.1) guarantees in-order,
// non-overlapping batch files.
func (p *Packer) Ingest(recs []records.Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range recs {
		if r.Ts < p.flushedThrough {
			return fmt.Errorf("core: packer %s: record at unit %d arrives after flush bound %d",
				p.name, r.Ts, p.flushedThrough)
		}
		pane := p.frame.PaneOf(r.Ts)
		if pane < 0 {
			return fmt.Errorf("core: packer %s: record before the unit origin (ts %d)", p.name, r.Ts)
		}
		sub, ok := p.paneSub[pane]
		if !ok {
			sub = p.plan.SubPanes
			p.paneSub[pane] = sub
		}
		subIdx := 0
		if sub > 1 {
			within := r.Ts - p.frame.PaneStart(pane)
			subIdx = int(within * int64(sub) / p.frame.Pane)
			if subIdx >= sub {
				subIdx = sub - 1
			}
		}
		bySub, ok := p.pending[pane]
		if !ok {
			bySub = make(map[int][]records.Record)
			p.pending[pane] = bySub
		}
		bySub[subIdx] = append(bySub[subIdx], r)
		if r.Ts > p.maxTs {
			p.maxTs = r.Ts
		}
	}
	return nil
}

// NewestUnit returns the exclusive upper unit bound of the newest pane
// any ingested record falls in — the packer-side watermark the health
// monitor compares against the newest pane a completed recurrence
// covered. Zero before any ingestion.
func (p *Packer) NewestUnit() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.maxTs < 0 {
		return 0
	}
	return p.frame.PaneEnd(p.frame.PaneOf(p.maxTs))
}

// FlushThrough writes pane files for every pane ending at or before the
// given unit bound (typically the closing window's upper edge) and
// advances the flush bound. Oversize panes (and all sub-panes) become
// their own files; undersized panes accumulate into shared group files
// of up to PanesPerFile panes, force-flushed at the bound so windows
// never wait on an incomplete group.
func (p *Packer) FlushThrough(unit int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if unit <= p.flushedThrough {
		return nil
	}
	var due []window.PaneID
	for pane := range p.pending {
		if p.frame.PaneEnd(pane) <= unit {
			due = append(due, pane)
		}
	}
	// Panes with no records still need (empty) representation so the
	// engine can distinguish "empty pane" from "missing data": record
	// them as flushed with no inputs.
	loPane := p.frame.PaneOf(p.flushedThrough)
	hiPane := p.frame.PaneOf(unit - 1)
	for pane := loPane; pane <= hiPane; pane++ {
		if p.frame.PaneEnd(pane) > unit {
			break
		}
		if _, havePending := p.pending[pane]; !havePending {
			if _, haveFlushed := p.flushed[pane]; !haveFlushed {
				p.flushed[pane] = []PaneInput{}
			}
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, pane := range due {
		if err := p.flushPane(pane); err != nil {
			return err
		}
	}
	// Force out any incomplete undersized group at the bound.
	if err := p.flushGroup(); err != nil {
		return err
	}
	p.flushedThrough = unit
	return nil
}

// flushPane routes one due pane to its physical representation.
func (p *Packer) flushPane(pane window.PaneID) error {
	bySub := p.pending[pane]
	delete(p.pending, pane)
	sub := p.paneSub[pane]
	if sub < 1 {
		sub = 1
	}

	if p.plan.PanesPerFile <= 1 || sub > 1 {
		// Oversize case (or adaptively subdivided): one file per pane
		// segment, named S#P# — with a sub-pane suffix when split. The
		// encode buffer is pooled: WriteAt copies, so the scratch is
		// free for the next flush the moment the write returns.
		buf := colfmt.GetBuf()
		defer colfmt.PutBuf(buf)
		for s := 0; s < sub; s++ {
			recs := bySub[s]
			if len(recs) == 0 {
				continue
			}
			sortByTs(recs)
			path := fmt.Sprintf("%s/%sP%d", p.dir, p.name, int64(pane))
			if sub > 1 {
				path = fmt.Sprintf("%s.%d", path, s)
			}
			*buf = colfmt.AppendRecords((*buf)[:0], recs)
			data := *buf
			availUnit := p.frame.PaneStart(pane) + (int64(s)+1)*p.frame.Pane/int64(sub)
			if s == sub-1 {
				availUnit = p.frame.PaneEnd(pane)
			}
			availAt := p.timeOfUnit(availUnit)
			if err := p.dfs.WriteAt(path, data, availAt); err != nil {
				return err
			}
			p.flushed[pane] = append(p.flushed[pane], PaneInput{
				Input:       mapreduce.WholeFile(path),
				Pane:        pane,
				SubPane:     s,
				AvailableAt: availAt,
			})
			p.obs.Emit(availAt, eventlog.PaneIngest, p.obsQuery, eventlog.PaneIngestData{
				Source: p.name, Pane: int64(pane), SubPane: s,
				Path: path, Bytes: int64(len(data)),
			})
		}
		if _, ok := p.flushed[pane]; !ok {
			p.flushed[pane] = []PaneInput{}
		}
		return nil
	}

	// Undersized case: accumulate the pane into the current group;
	// emit the shared file when the group fills.
	var recs []records.Record
	for s := 0; s < sub; s++ {
		recs = append(recs, bySub[s]...)
	}
	sortByTs(recs)
	p.groupPanes = append(p.groupPanes, pane)
	p.groupRecs[pane] = recs
	if len(p.groupPanes) >= p.plan.PanesPerFile {
		return p.flushGroup()
	}
	return nil
}

// HeaderEntry is one locator row of a shared multi-pane file's header
// (§3.2): which byte range of the body holds which pane.
type HeaderEntry struct {
	Pane   int64 `json:"pane"`
	Offset int64 `json:"offset"`
	Length int64 `json:"length"`
}

// ParsePaneHeader decodes and validates a S#P<lo>_<hi> file header
// against the body it describes. A valid header is a JSON array of
// entries with strictly ascending pane ids whose byte ranges tile the
// body exactly: offsets start at 0, ranges are contiguous and
// non-overlapping, and their lengths sum to bodyLen. Anything else —
// malformed JSON, trailing garbage, duplicate or unsorted panes,
// out-of-bounds or overlapping ranges — is an error, never a panic,
// so a damaged header can never silently mis-attribute records to the
// wrong pane.
func ParsePaneHeader(hdr []byte, bodyLen int64) ([]HeaderEntry, error) {
	if bodyLen < 0 {
		return nil, fmt.Errorf("core: negative body length %d", bodyLen)
	}
	dec := json.NewDecoder(bytes.NewReader(hdr))
	var entries []HeaderEntry
	if err := dec.Decode(&entries); err != nil {
		return nil, fmt.Errorf("core: pane header: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("core: pane header: trailing data after entry array")
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: pane header: no entries")
	}
	var next int64
	for i, e := range entries {
		if e.Pane < 0 {
			return nil, fmt.Errorf("core: pane header entry %d: negative pane %d", i, e.Pane)
		}
		if i > 0 && e.Pane <= entries[i-1].Pane {
			return nil, fmt.Errorf("core: pane header entry %d: pane %d not above predecessor %d",
				i, e.Pane, entries[i-1].Pane)
		}
		if e.Length < 0 {
			return nil, fmt.Errorf("core: pane header entry %d: negative length %d", i, e.Length)
		}
		if e.Offset != next {
			return nil, fmt.Errorf("core: pane header entry %d: offset %d leaves a gap or overlap (want %d)",
				i, e.Offset, next)
		}
		next = e.Offset + e.Length
		if next > bodyLen {
			return nil, fmt.Errorf("core: pane header entry %d: range [%d,%d) exceeds body length %d",
				i, e.Offset, next, bodyLen)
		}
	}
	if next != bodyLen {
		return nil, fmt.Errorf("core: pane header covers %d of %d body bytes", next, bodyLen)
	}
	return entries, nil
}

// PaneSlice returns the body bytes a validated header attributes to
// one pane; ok is false when the header has no entry for it.
func PaneSlice(body []byte, entries []HeaderEntry, pane int64) (data []byte, ok bool) {
	for _, e := range entries {
		if e.Pane == pane {
			if e.Offset+e.Length > int64(len(body)) {
				return nil, false
			}
			return body[e.Offset : e.Offset+e.Length], true
		}
	}
	return nil, false
}

// flushGroup writes the pending undersized panes as one shared file
// named S#P<lo>_<hi> plus its header.
func (p *Packer) flushGroup() error {
	if len(p.groupPanes) == 0 {
		return nil
	}
	panes := p.groupPanes
	p.groupPanes = nil
	sort.Slice(panes, func(i, j int) bool { return panes[i] < panes[j] })
	lo, hi := panes[0], panes[len(panes)-1]
	path := fmt.Sprintf("%s/%sP%d_%d", p.dir, p.name, int64(lo), int64(hi))
	if len(panes) == 1 {
		path = fmt.Sprintf("%s/%sP%d", p.dir, p.name, int64(lo))
	}

	// Each pane becomes one self-delimiting columnar segment of the
	// shared body, so PaneSlice yields independently decodable bytes.
	// The body buffer is pooled: both writes below copy.
	bodyBuf := colfmt.GetBuf()
	defer colfmt.PutBuf(bodyBuf)
	body := (*bodyBuf)[:0]
	var hdr []HeaderEntry
	ranges := make(map[window.PaneID][2]int64)
	for _, pane := range panes {
		recs := p.groupRecs[pane]
		delete(p.groupRecs, pane)
		start := int64(len(body))
		body = colfmt.AppendRecords(body, recs)
		length := int64(len(body)) - start
		ranges[pane] = [2]int64{start, length}
		hdr = append(hdr, HeaderEntry{Pane: int64(pane), Offset: start, Length: length})
	}
	*bodyBuf = body
	// The shared file is complete when its newest pane's data is — its
	// replication fan-out is stamped at that instant.
	if err := p.dfs.WriteAt(path, body, p.timeOfUnit(p.frame.PaneEnd(hi))); err != nil {
		return err
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if err := p.dfs.Write(path+".hdr", hdrBytes); err != nil {
		return err
	}
	for _, pane := range panes {
		rng := ranges[pane]
		if rng[1] == 0 {
			if _, ok := p.flushed[pane]; !ok {
				p.flushed[pane] = []PaneInput{}
			}
			continue
		}
		availAt := p.timeOfUnit(p.frame.PaneEnd(pane))
		p.flushed[pane] = append(p.flushed[pane], PaneInput{
			Input:       mapreduce.Input{Path: path, Offset: rng[0], Length: rng[1]},
			Pane:        pane,
			SubPane:     0,
			AvailableAt: availAt,
			HeaderBytes: int64(len(hdrBytes)),
		})
		p.obs.Emit(availAt, eventlog.PaneIngest, p.obsQuery, eventlog.PaneIngestData{
			Source: p.name, Pane: int64(pane),
			Path: path, Bytes: rng[1],
		})
	}
	return nil
}

// PaneInputs returns the flushed physical segments of a pane, sub-pane
// order. The second result is false if the pane has not been flushed —
// its data has not arrived or FlushThrough was not called past its end.
func (p *Packer) PaneInputs(pane window.PaneID) ([]PaneInput, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ins, ok := p.flushed[pane]
	if !ok {
		return nil, false
	}
	out := append([]PaneInput(nil), ins...)
	sort.Slice(out, func(i, j int) bool { return out[i].SubPane < out[j].SubPane })
	return out, true
}

// PaneBytes returns the total flushed bytes of a pane.
func (p *Packer) PaneBytes(pane window.PaneID) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, in := range p.flushed[pane] {
		if in.Input.Length >= 0 {
			total += in.Input.Length
		} else if sz, err := p.dfs.Size(in.Input.Path); err == nil {
			total += sz
		}
	}
	return total
}

// DropPaneFiles deletes a pane's files from DFS once no query can ever
// need them again. Shared multi-pane files are only deleted when every
// contained pane has been dropped (tracked via the header file).
func (p *Packer) DropPaneFiles(pane window.PaneID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ins, ok := p.flushed[pane]
	if !ok {
		return nil
	}
	for _, in := range ins {
		if in.HeaderBytes > 0 {
			continue // shared file: retained until group cleanup
		}
		if p.dfs.Exists(in.Input.Path) {
			if err := p.dfs.Delete(in.Input.Path); err != nil {
				return err
			}
		}
	}
	delete(p.flushed, pane)
	return nil
}

func sortByTs(recs []records.Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Ts < recs[j].Ts })
}
