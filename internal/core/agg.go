package core

import (
	"fmt"

	"redoop/internal/account"
	"redoop/internal/colfmt"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/parallel"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// runAggregation executes recurrence r of a single-source query: every
// pane is mapped, shuffled and reduced exactly once (its partial output
// cached per partition), and the window's answer is the finalization
// merge over the pane outputs in range — pane-based, not tuple-based
// (paper §6.2.1).
func (e *Engine) runAggregation(r int, trigger simtime.Time) (*RecurrenceResult, error) {
	lo, hi := e.frames[0].WindowRange(r)
	res := &RecurrenceResult{Recurrence: r, WindowLo: lo, WindowHi: hi, TriggerAt: trigger}
	res.Stats.Start = trigger
	res.Stats.End = trigger

	routRefs := make(map[window.PaneID][]cacheRef, int(hi-lo)+1)
	for p := lo; p <= hi; p++ {
		refs, reused, recovered, err := e.ensureAggPane(p, trigger, &res.Stats)
		if err != nil {
			return nil, err
		}
		routRefs[p] = refs
		if reused {
			res.ReusedPanes++
		} else {
			res.NewPanes++
		}
		if recovered {
			res.CacheRecoveries++
		}
	}

	out, endMax, err := e.finalizeAggWindow(lo, hi, trigger, routRefs, &res.Stats)
	if err != nil {
		return nil, err
	}
	res.Output = out
	if endMax > res.Stats.End {
		res.Stats.End = endMax
	}
	res.CompletedAt = res.Stats.End
	res.ResponseTime = res.Stats.End.Sub(trigger)
	return res, nil
}

// ensureAggPane guarantees pane p's per-partition reduce-output caches
// exist, reusing them when present, rebuilding the reduce outputs from
// surviving reduce-input caches when only the outputs were lost, and
// re-running the pane's full map+shuffle+reduce when the inputs are
// gone too (the recovery ladder of §5).
func (e *Engine) ensureAggPane(p window.PaneID, trigger simtime.Time, stats *mapreduce.Stats) (refs []cacheRef, reused, recovered bool, err error) {
	q := e.query
	R := q.NumReducers

	paneDone, _ := e.matrix.Done(p)
	if e.noReuse {
		paneDone = false
	}
	if paneDone {
		refs = make([]cacheRef, R)
		allOut := true
		for part := 0; part < R; part++ {
			ref, ok := e.lookupCache(q.routPanePID(p, part), ReduceOutput)
			if !ok {
				allOut = false
				break
			}
			refs[part] = ref
		}
		if allOut {
			return refs, true, false, nil
		}
		recovered = true
	}
	// Cross-query reuse probe (ReStore-style): before walking the §5
	// recovery ladder, ask the reuse index whether another query over
	// the same shared stream already materialized this pane — exactly,
	// or at a finer pane unit the Merge can compose. A hit
	// short-circuits map+shuffle+reduce into a cheap copy/merge task
	// and counts as a reused pane, not a rebuild.
	if refs, hit, err := e.tryReuseAggPane(p, trigger, stats); err != nil {
		return nil, false, recovered, err
	} else if hit {
		return refs, true, recovered, nil
	}
	// Before re-mapping, try building the outputs from reduce-input
	// caches: they survive output-cache loss (§5's cheap recovery
	// rung) and may have been created by a sibling query sharing this
	// source's CacheKey.
	rins := make([]cacheRef, R)
	allIn := !e.noReuse
	for part := 0; allIn && part < R; part++ {
		ref, ok := e.lookupCache(q.rinPID(0, e.frames[0].Pane, p, part), ReduceInput)
		if !ok {
			allIn = false
			break
		}
		rins[part] = ref
	}
	if allIn {
		refs, err = e.rebuildAggOutputs(p, trigger, rins, stats)
		if err != nil {
			return nil, false, recovered, err
		}
		return refs, false, recovered, nil
	}

	// New (or fully lost) pane: map + shuffle + per-pane reduce.
	id := fmt.Sprintf("%sP%d", q.Sources[0].Name, int64(p))
	e.sched.MapTasks.Push(id, nil)
	defer e.sched.MapTasks.Remove(id)

	if segs, ok := e.srcs[0].PaneInputs(p); ok && e.proactive && len(segs) > 1 {
		refs, err = e.processAggPaneProactive(p, trigger, segs, stats)
		if err != nil {
			return nil, false, recovered, err
		}
		return refs, false, recovered, nil
	}

	mp, err := e.runPaneMapPhase(0, p, trigger, stats)
	if err != nil {
		return nil, false, recovered, err
	}
	job := e.paneJob(0)
	rres, rstats, err := e.mr.RunReducePhase(job, mp, mp.FirstMapEnd)
	if err != nil {
		return nil, false, recovered, err
	}
	stats.Accumulate(rstats)

	byPart := make(map[int]mapreduce.ReducerResult, len(rres))
	for _, rr := range rres {
		byPart[rr.Part] = rr
	}
	// Encode the cache payloads in parallel (pure compute); cache
	// registration below stays serial in partition order.
	rinData := make([][]byte, R)
	routData := make([][]byte, R)
	parallel.For(e.mr.WorkerCount(), R, func(part int) {
		if rr, ok := byPart[part]; ok {
			rinData[part] = colfmt.EncodePairs(rr.Input)
			routData[part] = colfmt.EncodePairs(rr.Output)
		}
	})
	// Recompute attribution for the benefit ledger: the map phase (and
	// shuffle) ran once for the whole pane, so each live partition's
	// reduce-input entry carries an even share of it plus its own
	// sort+spill cost; the reduce-output entry carries the partition's
	// actual reduce task duration.
	mapShare := simtime.Duration(0)
	if live := len(rres); live > 0 {
		mapShare = (mp.Stats.MapTime + rstats.ShuffleTime) / simtime.Duration(live)
	}
	refs = make([]cacheRef, R)
	batches := e.linBatches(0, p)
	for part := 0; part < R; part++ {
		home := e.sched.HomeNode(part)
		if home == nil {
			return nil, false, recovered, fmt.Errorf("core: no alive node to home partition %d", part)
		}
		node := home.ID
		readyAt := simtime.Max(mp.LastMapEnd, trigger)
		var rinMeta, routMeta cacheMeta
		if rr, ok := byPart[part]; ok {
			node = rr.Node
			readyAt = rr.End
			rinBytes := int64(len(rinData[part]))
			rinMeta = cacheMeta{span: rr.Span,
				recompute: mapShare + e.mr.Cost.Sort(rinBytes) + e.mr.Cost.DiskWrite(rinBytes)}
			routMeta = cacheMeta{span: rr.Span, recompute: rr.End.Sub(rr.Start)}
		}
		rinPID := q.rinPID(0, e.frames[0].Pane, p, part)
		if e.lin != nil {
			rinMeta.lin = &linMeta{kind: "pane-rin", pane: int64(p), part: part, job: job.Name, batches: batches}
		}
		e.registerCacheFor(rinPID, ReduceInput, node, readyAt, rinData[part], e.rinUsers(0), rinMeta)
		if e.lin != nil {
			routMeta.lin = &linMeta{kind: "pane-rout", pane: int64(p), part: part, job: job.Name,
				inputs: []lineage.InputRef{e.linInput(rinPID, ReduceInput)}}
		}
		refs[part] = e.registerCache(q.routPanePID(p, part), ReduceOutput, node, readyAt, routData[part], routMeta)
		e.publishPaneRout(p, part, refs[part], routMeta.recompute)
	}
	if err := e.matrix.Update(p); err != nil {
		return nil, false, recovered, err
	}
	return refs, false, recovered, nil
}

// processAggPaneProactive executes one pane at sub-pane granularity
// (§3.3): each sub-pane is mapped, shuffled and reduced independently
// as soon as its data arrives, so only the last sub-pane's (smaller)
// work remains after the window closes; a cheap pane-level combine of
// the sub-pane partials then forms the pane's caches at the usual
// pane granularity, keeping reuse and expiry unchanged.
func (e *Engine) processAggPaneProactive(p window.PaneID, trigger simtime.Time, segs []PaneInput, stats *mapreduce.Stats) ([]cacheRef, error) {
	q := e.query
	R := q.NumReducers
	job := e.paneJob(0)

	// Segment compute (decode + user map) overlaps across sub-panes;
	// each segment's scheduling then commits serially in arrival order.
	preps := make([]*mapreduce.MapPhasePrep, len(segs))
	if err := parallel.ForErr(e.mr.WorkerCount(), len(segs), func(i int) error {
		var err error
		preps[i], err = e.mr.PrepareMapPhase(job, []mapreduce.Input{segs[i].Input})
		return err
	}); err != nil {
		return nil, err
	}
	subIn := make([][]records.Pair, R)
	subOut := make([][]records.Pair, R)
	readyAt := make([]simtime.Time, R)
	for i, seg := range segs {
		ready := simtime.Max(seg.AvailableAt, 0)
		mp, err := e.mr.CommitMapPhase(preps[i], ready)
		if err != nil {
			return nil, err
		}
		mp.Stats.BytesRead += seg.HeaderBytes
		stats.Accumulate(mp.Stats)
		rres, rstats, err := e.mr.RunReducePhase(job, mp, mp.FirstMapEnd)
		if err != nil {
			return nil, err
		}
		stats.Accumulate(rstats)
		for _, rr := range rres {
			subIn[rr.Part] = append(subIn[rr.Part], rr.Input...)
			subOut[rr.Part] = append(subOut[rr.Part], rr.Output...)
			if rr.End > readyAt[rr.Part] {
				readyAt[rr.Part] = rr.End
			}
		}
	}

	// Pane-level combine of the sub-pane partials: the merge and the
	// cache encodes are pure compute, fanned out per partition.
	routData := make([][]byte, R)
	rinData := make([][]byte, R)
	parallel.For(e.mr.WorkerCount(), R, func(part int) {
		if len(subOut[part]) == 0 {
			return
		}
		combined := mapreduce.ReduceGroups(q.Merge, mapreduce.GroupPairs(subOut[part]))
		routData[part] = colfmt.EncodePairs(combined)
		rinData[part] = colfmt.EncodePairs(subIn[part])
	})

	refs := make([]cacheRef, R)
	batches := e.linBatches(0, p)
	for part := 0; part < R; part++ {
		home := e.sched.HomeNode(part)
		if home == nil {
			return nil, fmt.Errorf("core: no alive node to home partition %d", part)
		}
		rinPID := q.rinPID(0, e.frames[0].Pane, p, part)
		if len(subOut[part]) == 0 {
			var rinMeta, routMeta cacheMeta
			if e.lin != nil {
				rinMeta.lin = &linMeta{kind: "pane-rin", pane: int64(p), part: part, job: job.Name, batches: batches}
			}
			e.registerCacheFor(rinPID, ReduceInput, home.ID, trigger, nil, e.rinUsers(0), rinMeta)
			if e.lin != nil {
				routMeta.lin = &linMeta{kind: "pane-rout", pane: int64(p), part: part, job: job.Name,
					inputs: []lineage.InputRef{e.linInput(rinPID, ReduceInput)}}
			}
			refs[part] = e.registerCache(q.routPanePID(p, part), ReduceOutput, home.ID, trigger, nil, routMeta)
			e.publishPaneRout(p, part, refs[part], 0)
			continue
		}
		inBytes := records.PairsSize(subOut[part])
		ct := e.runCacheTask(fmt.Sprintf("combine pane %d p%d", int64(p), part), account.PhaseCombine, readyAt[part],
			[]cacheRef{{node: home.ID, bytes: inBytes, readyAt: readyAt[part]}},
			e.mr.Cost.MergeTask(inBytes, int64(len(routData[part]))))
		stats.ReduceTime += ct.dur
		stats.BytesCacheRead += inBytes
		// A hit on these entries skips the modeled rebuild-from-inputs
		// reduce (outputs) or the sub-pane sort+spill work (inputs); the
		// sub-pane map/reduce actuals are not attributable per partition,
		// so the ledger uses the iocost floor here.
		rinBytes := int64(len(rinData[part]))
		rinMeta := cacheMeta{span: ct.span,
			recompute: e.mr.Cost.Sort(rinBytes) + e.mr.Cost.DiskWrite(rinBytes)}
		routMeta := cacheMeta{span: ct.span,
			recompute: e.mr.Cost.ReduceTask(rinBytes, int64(len(routData[part])))}
		if e.lin != nil {
			rinMeta.lin = &linMeta{kind: "pane-rin", pane: int64(p), part: part, job: job.Name, batches: batches}
		}
		e.registerCacheFor(rinPID, ReduceInput, ct.node, ct.end, rinData[part], e.rinUsers(0), rinMeta)
		if e.lin != nil {
			routMeta.lin = &linMeta{kind: "pane-rout", pane: int64(p), part: part, job: job.Name,
				inputs: []lineage.InputRef{e.linInput(rinPID, ReduceInput)}}
		}
		refs[part] = e.registerCache(q.routPanePID(p, part), ReduceOutput, ct.node, ct.end, routData[part], routMeta)
		e.publishPaneRout(p, part, refs[part], routMeta.recompute)
		if ct.end > stats.End {
			stats.End = ct.end
		}
	}
	if err := e.matrix.Update(p); err != nil {
		return nil, err
	}
	return refs, nil
}

// rebuildAggOutputs re-runs only the per-pane reduce over cached
// reduce inputs (no re-load, no re-shuffle), restoring lost output
// caches.
func (e *Engine) rebuildAggOutputs(p window.PaneID, trigger simtime.Time, rins []cacheRef, stats *mapreduce.Stats) ([]cacheRef, error) {
	q := e.query
	refs := make([]cacheRef, q.NumReducers)
	// Re-reducing cached inputs is pure compute; the serial commit pass
	// does the scheduling, cache registration, and ledger charges.
	rebuilt := make([][]byte, len(rins))
	if err := parallel.CommitOrderErr(e.mr.WorkerCount(), len(rins),
		func(part int) error {
			if rins[part].bytes == 0 {
				return nil
			}
			pairs, err := e.readCache(rins[part])
			if err != nil {
				return err
			}
			out := mapreduce.ReduceGroups(q.Reduce, mapreduce.GroupPairs(pairs))
			rebuilt[part] = colfmt.EncodePairs(out)
			return nil
		},
		func(part int) error {
			rin := rins[part]
			routMeta := cacheMeta{span: rin.span}
			if e.lin != nil {
				routMeta.lin = &linMeta{kind: "pane-rout", pane: int64(p), part: part,
					inputs: []lineage.InputRef{e.linInput(rin.pid, ReduceInput)}}
			}
			if rin.bytes == 0 {
				refs[part] = e.registerCache(q.routPanePID(p, part), ReduceOutput, rin.node, simtime.Max(rin.readyAt, trigger), nil, routMeta)
				e.publishPaneRout(p, part, refs[part], 0)
				return nil
			}
			outData := rebuilt[part]
			ct := e.runCacheTask(fmt.Sprintf("rebuild pane %d p%d", int64(p), part), account.PhaseReduce, trigger, []cacheRef{rin},
				e.mr.Cost.ReduceTask(rin.bytes, int64(len(outData))))
			stats.ReduceTime += ct.dur
			stats.ReduceTasks++
			stats.BytesCacheRead += rin.bytes
			routMeta.span = ct.span
			routMeta.recompute = ct.dur
			refs[part] = e.registerCache(q.routPanePID(p, part), ReduceOutput, ct.node, ct.end, outData, routMeta)
			e.publishPaneRout(p, part, refs[part], routMeta.recompute)
			if ct.end > stats.End {
				stats.End = ct.end
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := e.matrix.Update(p); err != nil {
		return nil, err
	}
	return refs, nil
}

// finalizeAggWindow runs the per-partition finalization merge over the
// window's cached pane outputs. The merge is scheduled by Equation 4
// (it usually lands on the partition's home node, where every pane
// output is local) and cannot complete before the window closes.
func (e *Engine) finalizeAggWindow(lo, hi window.PaneID, trigger simtime.Time, routRefs map[window.PaneID][]cacheRef, stats *mapreduce.Stats) ([]records.Pair, simtime.Time, error) {
	q := e.query
	endMax := trigger
	var output []records.Pair
	// Phase 1 (parallel): gather each partition's cached pane outputs
	// and run the finalization merge — pure compute.
	type finalPart struct {
		caches   []cacheRef
		out      []records.Pair
		inBytes  int64
		outBytes int64
	}
	parts := make([]finalPart, q.NumReducers)
	if err := parallel.ForErr(e.mr.WorkerCount(), q.NumReducers, func(part int) error {
		fp := &parts[part]
		var pairs []records.Pair
		for p := lo; p <= hi; p++ {
			ref := routRefs[p][part]
			if ref.bytes == 0 {
				continue
			}
			fp.caches = append(fp.caches, ref)
			ps, err := e.readCache(ref)
			if err != nil {
				return err
			}
			pairs = append(pairs, ps...)
		}
		if len(fp.caches) == 0 {
			return nil
		}
		fp.out = mapreduce.ReduceGroups(q.Merge, mapreduce.GroupPairs(pairs))
		fp.inBytes = records.PairsSize(pairs)
		fp.outBytes = records.PairsSize(fp.out)
		return nil
	}); err != nil {
		return nil, endMax, err
	}
	// Phase 2 (serial, partition order): Eq. 4 scheduling and stats.
	for part := 0; part < q.NumReducers; part++ {
		fp := parts[part]
		if len(fp.caches) == 0 {
			continue
		}
		ct := e.runCacheTask(fmt.Sprintf("finalize p%d", part), account.PhaseReduce, trigger, fp.caches, e.mr.Cost.MergeTask(fp.inBytes, fp.outBytes))
		stats.ReduceTime += ct.dur
		stats.ReduceTasks++
		stats.BytesCacheRead += fp.inBytes
		stats.BytesOutput += fp.outBytes
		if ct.end > endMax {
			endMax = ct.end
		}
		output = append(output, fp.out...)
	}
	return output, endMax, nil
}
