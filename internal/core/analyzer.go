// Package core implements Redoop itself: the window-aware extensions
// layered on the MapReduce runtime — the Semantic Analyzer and Dynamic
// Data Packer (paper §3), the Execution Profiler and adaptive
// partitioning (§3.3), the local cache registries, window-aware cache
// controller and cache status matrices (§4.1–4.2), the cache-aware task
// scheduler (§4.3), the incremental recurring-query engine (§2.3, §5)
// and its failure recovery (§5).
package core

import (
	"fmt"
	"time"

	"redoop/internal/forecast"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// PartitionPlan is the Semantic Analyzer's output (paper Algorithm 1):
// how one data source's arriving records are physically packed into
// pane files in HDFS.
type PartitionPlan struct {
	// PaneUnit is the logical pane size in window units:
	// GCD(win, slide), possibly divided by SubPanes under adaptation.
	PaneUnit int64
	// FilesPerPane is 1 in both of Algorithm 1's cases (kept explicit
	// because the plan triple in the paper is (pane, files, panes)).
	FilesPerPane int
	// PanesPerFile is 1 in the oversize case (one pane = one physical
	// file) and >1 in the undersized case (one file packs several
	// panes, with a header locating them).
	PanesPerFile int
	// SubPanes is the adaptive subdivision factor: 1 normally, >1 when
	// the analyzer has switched the query to finer sub-pane
	// granularity to absorb a load spike (§3.3). Each logical pane is
	// then packed as SubPanes separate physical units that can be
	// processed proactively as they arrive.
	SubPanes int
	// ExpectedFileBytes is rate × pane, the file size estimate the
	// oversize/undersized decision was made on.
	ExpectedFileBytes int64
}

// String formats the plan triple like the paper's PP = (pane, f, n).
func (p PartitionPlan) String() string {
	return fmt.Sprintf("PP=(pane=%d, files=%d, panes/file=%d, subpanes=%d)",
		p.PaneUnit, p.FilesPerPane, p.PanesPerFile, p.SubPanes)
}

// Validate reports malformed plans.
func (p PartitionPlan) Validate() error {
	if p.PaneUnit <= 0 {
		return fmt.Errorf("core: plan pane unit must be positive, got %d", p.PaneUnit)
	}
	if p.FilesPerPane != 1 {
		return fmt.Errorf("core: plan must map each pane to one file, got %d", p.FilesPerPane)
	}
	if p.PanesPerFile < 1 {
		return fmt.Errorf("core: panes per file must be >= 1, got %d", p.PanesPerFile)
	}
	if p.SubPanes < 1 {
		return fmt.Errorf("core: sub-pane factor must be >= 1, got %d", p.SubPanes)
	}
	return nil
}

// Analyzer is the Semantic Analyzer: given a query's window constraints,
// data-source statistics from the Execution Profiler and the HDFS block
// size, it produces the partition plan the Dynamic Data Packer executes,
// and re-plans adaptively when the profiler forecasts that executions
// will overrun the slide deadline.
type Analyzer struct {
	// BlockSize is the HDFS block size the oversize/undersized
	// decision compares against (paper: default 64 MB).
	BlockSize int64
	// SpikeThreshold is the fraction of the slide deadline the
	// forecast execution time must exceed before the analyzer
	// subdivides panes. The default 0.75 switches to best-effort
	// proactive execution with a safety margin *before* executions
	// actually overrun the deadline, since by then the backlog has
	// already formed.
	SpikeThreshold float64
	// MaxSubPanes caps adaptive subdivision so the system does not
	// create "too many small sub-panes" (§3.3). Default 8.
	MaxSubPanes int
}

// NewAnalyzer returns an analyzer for the given block size with default
// adaptation parameters.
func NewAnalyzer(blockSize int64) (*Analyzer, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("core: block size must be positive, got %d", blockSize)
	}
	return &Analyzer{BlockSize: blockSize, SpikeThreshold: 0.75, MaxSubPanes: 8}, nil
}

// Plan implements Algorithm 1. spec is the query's window constraint on
// the source and rateBytesPerUnit the source's observed arrival rate in
// bytes per window unit (bytes per nanosecond for time-based windows,
// bytes per record for count-based ones).
func (a *Analyzer) Plan(spec window.Spec, rateBytesPerUnit float64) (PartitionPlan, error) {
	if err := spec.Validate(); err != nil {
		return PartitionPlan{}, err
	}
	if rateBytesPerUnit < 0 {
		return PartitionPlan{}, fmt.Errorf("core: negative arrival rate %v", rateBytesPerUnit)
	}
	// Line 1: pane <- GCD(win, slide); lines 2-8 in packPlan.
	return a.packPlan(spec.PaneUnit(), rateBytesPerUnit), nil
}

// packPlan applies Algorithm 1's lines 2-8 to a pane unit: estimate
// the pane file size from the arrival rate and choose the oversize
// (one pane per file) or undersized (several panes per file)
// representation against the block size.
func (a *Analyzer) packPlan(pane int64, rateBytesPerUnit float64) PartitionPlan {
	fileSize := int64(rateBytesPerUnit * float64(pane)) // line 2: filesize <- rate * pane
	plan := PartitionPlan{PaneUnit: pane, FilesPerPane: 1, SubPanes: 1, ExpectedFileBytes: fileSize}
	if fileSize >= a.BlockSize {
		plan.PanesPerFile = 1 // oversize: one file for one pane
	} else {
		n := int(a.BlockSize / maxInt64(fileSize, 1)) // undersized: pack panes
		if n < 1 {
			n = 1
		}
		plan.PanesPerFile = n
	}
	return plan
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PlanFrame is Plan against a source's effective window frame: the
// pane unit comes from the frame (which accounts for heterogeneous
// window sizes on a shared slide), and the oversize/undersized packing
// decision follows Algorithm 1 lines 2-8 against it.
func (a *Analyzer) PlanFrame(f window.Frame, rateBytesPerUnit float64) (PartitionPlan, error) {
	if err := f.Spec.Validate(); err != nil {
		return PartitionPlan{}, err
	}
	if rateBytesPerUnit < 0 {
		return PartitionPlan{}, fmt.Errorf("core: negative arrival rate %v", rateBytesPerUnit)
	}
	return a.packPlan(f.Pane, rateBytesPerUnit), nil
}

// PlanMulti generalizes Algorithm 1 to a *sequence* of recurring
// queries over one data source (§3.1: the Semantic Analyzer "takes as
// input a sequence of recurring queries with different window
// constraints"): the shared pane unit is the GCD of every query's
// window and slide, so one physical partitioning serves all of them
// without re-splitting. The oversize/undersized file-packing decision
// then applies to the shared pane.
func (a *Analyzer) PlanMulti(specs []window.Spec, rateBytesPerUnit float64) (PartitionPlan, error) {
	if len(specs) == 0 {
		return PartitionPlan{}, fmt.Errorf("core: PlanMulti needs at least one query")
	}
	if rateBytesPerUnit < 0 {
		return PartitionPlan{}, fmt.Errorf("core: negative arrival rate %v", rateBytesPerUnit)
	}
	kind := specs[0].Kind
	pane := int64(0)
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return PartitionPlan{}, fmt.Errorf("core: query %d: %w", i, err)
		}
		if s.Kind != kind {
			return PartitionPlan{}, fmt.Errorf("core: query %d mixes %v with %v windows", i, s.Kind, kind)
		}
		if pane == 0 {
			pane = s.PaneUnit()
		} else {
			pane = window.GCD(pane, s.PaneUnit())
		}
	}
	return a.packPlan(pane, rateBytesPerUnit), nil
}

// Replan applies the adaptive strategy of §3.3 to an existing plan:
// given the profiler's forecast for the next recurrence and the slide
// deadline, it returns the plan to use next and whether the engine
// should run in proactive mode. A forecast overrunning the deadline by
// more than SpikeThreshold subdivides panes by the overrun ratio
// (capped at MaxSubPanes); a forecast comfortably under the deadline
// reverts to whole panes.
func (a *Analyzer) Replan(plan PartitionPlan, forecastExec, deadline simtime.Duration) (PartitionPlan, bool) {
	threshold := a.SpikeThreshold
	if threshold <= 0 {
		threshold = 0.75
	}
	maxSub := a.MaxSubPanes
	if maxSub < 1 {
		maxSub = 8
	}
	if deadline <= 0 {
		return plan, plan.SubPanes > 1
	}
	ratio := float64(forecastExec) / float64(deadline)
	switch {
	case ratio > threshold:
		// Scale the pane granularity by the overrun factor so
		// sub-panes populate fast enough to process proactively.
		sub := int(ratio + 0.999)
		if sub < 2 {
			sub = 2
		}
		if sub > maxSub {
			sub = maxSub
		}
		plan.SubPanes = sub
		return plan, true
	case ratio < 0.5*threshold && plan.SubPanes > 1:
		// Load subsided: return to whole panes (hysteresis at half
		// the trigger point avoids plan thrash).
		plan.SubPanes = 1
		return plan, false
	default:
		return plan, plan.SubPanes > 1
	}
}

// Profiler is the Execution Profiler (paper §3.3): it collects per-
// recurrence execution statistics and predicts the next recurrence's
// execution time with Holt double exponential smoothing, feeding the
// Semantic Analyzer's adaptive re-planning.
type Profiler struct {
	holt    *forecast.Holt
	history []Observation
}

// Observation is one recurrence's execution record.
type Observation struct {
	Recurrence int
	Exec       simtime.Duration
	InputBytes int64
}

// DefaultAlpha and DefaultBeta are the profiler's smoothing parameters;
// the paper selects them by fitting historical data.
const (
	DefaultAlpha = 0.5
	DefaultBeta  = 0.3
)

// NewProfiler returns a profiler with the given smoothing parameters
// (pass DefaultAlpha/DefaultBeta when in doubt).
func NewProfiler(alpha, beta float64) (*Profiler, error) {
	h, err := forecast.NewHolt(alpha, beta)
	if err != nil {
		return nil, err
	}
	return &Profiler{holt: h}, nil
}

// Observe records recurrence r's execution time and input volume.
func (p *Profiler) Observe(r int, exec simtime.Duration, inputBytes int64) {
	p.holt.Observe(float64(exec))
	p.history = append(p.history, Observation{Recurrence: r, Exec: exec, InputBytes: inputBytes})
}

// Forecast predicts the execution time k recurrences ahead (Equation 3).
func (p *Profiler) Forecast(k int) simtime.Duration {
	return time.Duration(p.holt.Forecast(k))
}

// Ready reports whether enough recurrences have been observed for the
// forecast to drive adaptation decisions.
func (p *Profiler) Ready() bool { return p.holt.Ready() }

// History returns the recorded observations, oldest first.
func (p *Profiler) History() []Observation {
	return append([]Observation(nil), p.history...)
}

// Reset clears the profiler; the engine resets it when the partition
// plan changes granularity, since old execution times no longer predict
// the new plan's behaviour.
func (p *Profiler) Reset() {
	p.holt.Reset()
	p.history = nil
}
