package core

import (
	"fmt"
	"strings"
	"sync"

	"redoop/internal/obs"
	"redoop/internal/window"
)

// StatusMatrix is the per-query cache status matrix (paper §4.2,
// Table 3, Figure 4): a multi-dimensional boolean array with one
// dimension per data source, where entry (p1,...,pn) records whether
// the query's operation has completed over that combination of panes.
//
// The matrix supports the paper's four operations — initialization,
// update on task completion, expiration checking via pane lifespans,
// and periodic shifting that retires fully processed leading panes and
// admits new ones — keeping its footprint bounded while windows slide.
//
// Dimensions carry per-source window frames sharing one recurrence
// cadence (the slide); window sizes may differ per source, in which
// case each dimension's pane unit and window ranges follow its own
// frame (window.Frame).
type StatusMatrix struct {
	// mu guards base/n/done so the debug server can render the matrix
	// while the engine updates and shifts it.
	mu     sync.Mutex
	frames []window.Frame
	dims   int
	base   []window.PaneID // lowest tracked pane per dimension
	n      []int           // tracked pane count per dimension
	done   []bool          // row-major over the tracked ranges

	// obs counts matrix updates and retired panes under the owning
	// query's label; may be nil.
	obs      *obs.Observer
	obsQuery string
}

// SetObserver attaches the observability layer, labeling this matrix's
// series with the owning query's name; nil detaches it.
func (m *StatusMatrix) SetObserver(o *obs.Observer, query string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs = o
	m.obsQuery = query
}

// NewStatusMatrix initializes a matrix for a query over `dims` sources
// sharing one window constraint. Per the paper, each dimension starts
// sized to one window's worth of panes beginning at pane zero, all
// entries zero.
func NewStatusMatrix(dims int, spec window.Spec) (*StatusMatrix, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	frames := make([]window.Frame, dims)
	for d := range frames {
		frames[d] = window.FrameOf(spec)
	}
	return NewStatusMatrixFrames(frames)
}

// NewStatusMatrixFrames initializes a matrix whose dimensions carry
// per-source window frames (heterogeneous window sizes on a shared
// slide).
func NewStatusMatrixFrames(frames []window.Frame) (*StatusMatrix, error) {
	dims := len(frames)
	if dims < 1 {
		return nil, fmt.Errorf("core: status matrix needs at least one dimension, got %d", dims)
	}
	for d, f := range frames {
		if err := f.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("core: status matrix dim %d: %w", d, err)
		}
	}
	m := &StatusMatrix{
		frames: append([]window.Frame(nil), frames...),
		dims:   dims,
		base:   make([]window.PaneID, dims),
		n:      make([]int, dims),
	}
	size := 1
	for d := 0; d < dims; d++ {
		lo, hi := frames[d].WindowRange(0)
		m.base[d] = lo
		m.n[d] = int(hi - lo + 1)
		size *= m.n[d]
	}
	m.done = make([]bool, size)
	return m, nil
}

// Dims returns the number of dimensions.
func (m *StatusMatrix) Dims() int { return m.dims }

// Range returns the tracked pane range [lo, hi] of a dimension.
func (m *StatusMatrix) Range(dim int) (lo, hi window.PaneID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base[dim], m.base[dim] + window.PaneID(m.n[dim]) - 1
}

// index converts pane coordinates to a flat index, or -1 if any
// coordinate is outside the tracked range.
func (m *StatusMatrix) index(coords []window.PaneID) int {
	idx := 0
	for d := 0; d < m.dims; d++ {
		off := int(coords[d] - m.base[d])
		if off < 0 || off >= m.n[d] {
			return -1
		}
		idx = idx*m.n[d] + off
	}
	return idx
}

// ensure grows tracked ranges (at the high end only) to cover coords.
func (m *StatusMatrix) ensure(coords []window.PaneID) {
	grow := false
	newN := make([]int, m.dims)
	for d := 0; d < m.dims; d++ {
		newN[d] = m.n[d]
		if off := int(coords[d] - m.base[d]); off >= m.n[d] {
			newN[d] = off + 1
			grow = true
		}
		if coords[d] < m.base[d] {
			panic(fmt.Sprintf("core: status matrix coordinate %d below shifted base %d in dim %d",
				coords[d], m.base[d], d))
		}
	}
	if !grow {
		return
	}
	size := 1
	for d := 0; d < m.dims; d++ {
		size *= newN[d]
	}
	fresh := make([]bool, size)
	// Re-index existing entries into the grown array.
	m.each(func(old []window.PaneID, doneIdx int) {
		idx := 0
		for d := 0; d < m.dims; d++ {
			idx = idx*newN[d] + int(old[d]-m.base[d])
		}
		fresh[idx] = m.done[doneIdx]
	})
	m.n = newN
	m.done = fresh
}

// each walks every tracked coordinate with its flat index.
func (m *StatusMatrix) each(fn func(coords []window.PaneID, idx int)) {
	coords := make([]window.PaneID, m.dims)
	var rec func(d, idx int)
	rec = func(d, idx int) {
		if d == m.dims {
			fn(coords, idx)
			return
		}
		for i := 0; i < m.n[d]; i++ {
			coords[d] = m.base[d] + window.PaneID(i)
			rec(d+1, idx*m.n[d]+i)
		}
	}
	rec(0, 0)
}

// Update marks the entry at coords done — called by the job tracker
// whenever the reduce task over that pane combination completes. The
// tracked range grows as needed to admit new panes.
func (m *StatusMatrix) Update(coords ...window.PaneID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(coords) != m.dims {
		return fmt.Errorf("core: status matrix update with %d coords, want %d", len(coords), m.dims)
	}
	m.ensure(coords)
	m.done[m.index(coords)] = true
	m.obs.Counter("redoop_statusmatrix_updates_total", obs.L("query", m.obsQuery)).Inc()
	return nil
}

// Done reports whether the entry at coords is marked done. Coordinates
// below a dimension's shifted base are treated as done (they were
// shifted out precisely because their work completed); coordinates
// beyond the tracked high end are not yet done.
func (m *StatusMatrix) Done(coords ...window.PaneID) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.doneLocked(coords)
}

func (m *StatusMatrix) doneLocked(coords []window.PaneID) (bool, error) {
	if len(coords) != m.dims {
		return false, fmt.Errorf("core: status matrix query with %d coords, want %d", len(coords), m.dims)
	}
	for d := 0; d < m.dims; d++ {
		if coords[d] < m.base[d] {
			return true, nil
		}
	}
	if idx := m.index(coords); idx >= 0 {
		return m.done[idx], nil
	}
	return false, nil
}

// Exhausted reports whether pane p of dimension dim has completed every
// entry within its lifespan — the combinations with partner panes it
// must be processed with (§4.2). For a one-dimensional query the
// lifespan is the pane itself. A pane preceding the dimension's first
// window participates in no operation and is vacuously exhausted.
func (m *StatusMatrix) Exhausted(dim int, p window.PaneID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exhaustedLocked(dim, p)
}

func (m *StatusMatrix) exhaustedLocked(dim int, p window.PaneID) bool {
	if m.dims == 1 {
		done, _ := m.doneLocked([]window.PaneID{p})
		return done
	}
	coords := make([]window.PaneID, m.dims)
	var rec func(d int) bool
	rec = func(d int) bool {
		if d == m.dims {
			done, _ := m.doneLocked(coords)
			return done
		}
		if d == dim {
			coords[d] = p
			return rec(d + 1)
		}
		lo, hi, ok := m.frames[dim].LifespanIn(p, m.frames[d])
		if !ok {
			return true // pane precedes window 0: no partners owed
		}
		for q := lo; q <= hi; q++ {
			coords[d] = q
			if !rec(d + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// Expired reports whether pane p of dimension dim can be safely purged
// as of recurrence r: it is no longer part of the current window and
// every entry within its lifespan is done (the paper's two-condition
// test).
func (m *StatusMatrix) Expired(dim int, p window.PaneID, r int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.expiredLocked(dim, p, r)
}

func (m *StatusMatrix) expiredLocked(dim int, p window.PaneID, r int) bool {
	return m.frames[dim].ExpiredAfter(p, r) && m.exhaustedLocked(dim, p)
}

// Shift performs the periodic purge of matrix meta-data (Figure 4(c)):
// for each dimension it scans panes in ascending order, removes the
// leading run that is expired as of recurrence r, and admits the same
// number of fresh panes at the high end (initialized to zero). It
// returns the panes retired per dimension.
func (m *StatusMatrix) Shift(r int) [][]window.PaneID {
	m.mu.Lock()
	defer m.mu.Unlock()
	retired := make([][]window.PaneID, m.dims)
	for d := 0; d < m.dims; d++ {
		k := 0
		for k < m.n[d] && m.expiredLocked(d, m.base[d]+window.PaneID(k), r) {
			retired[d] = append(retired[d], m.base[d]+window.PaneID(k))
			k++
		}
		if k == 0 {
			continue
		}
		m.shiftDim(d, k)
		m.obs.Counter("redoop_statusmatrix_retired_panes_total", obs.L("query", m.obsQuery)).Add(float64(k))
	}
	return retired
}

// shiftDim drops the leading k panes of dimension d and appends k fresh
// ones, keeping the dimension's size constant as in the paper.
func (m *StatusMatrix) shiftDim(d, k int) {
	oldBase := m.base[d]
	m.base[d] = oldBase + window.PaneID(k)
	fresh := make([]bool, len(m.done))
	coords := make([]window.PaneID, m.dims)
	var rec func(dim, idx int)
	rec = func(dim, idx int) {
		if dim == m.dims {
			// Entry at the new coords: shifted copy where available.
			src := make([]window.PaneID, m.dims)
			copy(src, coords)
			oldIdx := m.indexWithBase(src, d, oldBase)
			if oldIdx >= 0 {
				fresh[idx] = m.done[oldIdx]
			}
			return
		}
		for i := 0; i < m.n[dim]; i++ {
			base := m.base[dim]
			coords[dim] = base + window.PaneID(i)
			rec(dim+1, idx*m.n[dim]+i)
		}
	}
	rec(0, 0)
	m.done = fresh
}

// indexWithBase computes the flat index of coords in the pre-shift
// layout where dimension d had base oldBase.
func (m *StatusMatrix) indexWithBase(coords []window.PaneID, d int, oldBase window.PaneID) int {
	idx := 0
	for dim := 0; dim < m.dims; dim++ {
		base := m.base[dim]
		if dim == d {
			base = oldBase
		}
		off := int(coords[dim] - base)
		if off < 0 || off >= m.n[dim] {
			return -1
		}
		idx = idx*m.n[dim] + off
	}
	return idx
}

// String renders a 1- or 2-dimensional matrix for debugging, in the
// style of the paper's Table 3.
func (m *StatusMatrix) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	switch m.dims {
	case 1:
		fmt.Fprintf(&b, "panes [%d..%d]: ", m.base[0], m.base[0]+window.PaneID(m.n[0])-1)
		for i := 0; i < m.n[0]; i++ {
			if m.done[i] {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	case 2:
		for i := 0; i < m.n[0]; i++ {
			fmt.Fprintf(&b, "P%d: ", m.base[0]+window.PaneID(i))
			for j := 0; j < m.n[1]; j++ {
				if m.done[i*m.n[1]+j] {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
			b.WriteByte('\n')
		}
	default:
		fmt.Fprintf(&b, "status matrix with %d dims", m.dims)
	}
	return b.String()
}
