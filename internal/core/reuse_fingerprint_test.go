package core_test

import (
	"testing"

	"redoop/internal/core"
	"redoop/internal/queries"
	"redoop/internal/simtime"
)

// mkWCCSiteA / mkWCCSiteB construct the same query from two distinct
// call sites. This is a regression guard for a subtle fingerprint bug:
// when a query constructor holds anonymous operator closures, the
// compiler inlines the constructor and names each closure after its
// call site (caller.func1 vs caller.func2), so runtime function
// symbols — and therefore plan fingerprints — differed between
// otherwise-identical queries and cross-query reuse never matched.
// The operators are now named package-level functions (queries.WCCMap
// et al.), which these tests pin.
func mkWCCSiteA(win, slide simtime.Duration) *core.Query {
	return queries.WCCAggregation("site-a", win, slide, 4)
}

func mkWCCSiteB(win, slide simtime.Duration) *core.Query {
	return queries.WCCAggregation("site-b", win, slide, 4)
}

func opFPOf(t *testing.T, q *core.Query) string {
	t.Helper()
	eng, err := core.NewEngine(core.Config{MR: newRig(2, 1), Query: q})
	if err != nil {
		t.Fatalf("engine for %s: %v", q.Name, err)
	}
	fp := eng.OpFingerprint()
	if len(fp) != 64 {
		t.Fatalf("%s: op fingerprint %q is not a hex sha256", q.Name, fp)
	}
	return fp
}

func TestOpFingerprintStableAcrossCallSites(t *testing.T) {
	win, slide := 60*simtime.Minute, 15*simtime.Minute
	a := opFPOf(t, mkWCCSiteA(win, slide))
	b := opFPOf(t, mkWCCSiteB(win, slide))
	if a != b {
		t.Fatalf("identical queries from different call sites fingerprint differently:\n%s\n%s\nare the operators anonymous closures again?", a, b)
	}
	// Geometry independence: a tumbling roll-up over the same operators
	// must share the op fingerprint (that is what lets subsumption
	// compose its panes from the finer query's).
	roll := opFPOf(t, mkWCCSiteA(30*simtime.Minute, 30*simtime.Minute))
	if roll != a {
		t.Fatalf("different window geometry changed the op fingerprint: %s vs %s", roll, a)
	}
	// The join's operator set must not collide with the aggregation's.
	j := opFPOf(t, queries.FFGJoin("join", win, slide, 4))
	if j == a {
		t.Fatalf("join and aggregation share an op fingerprint")
	}
	j2 := opFPOf(t, queries.FFGJoin("join2", win, slide, 4))
	if j2 != j {
		t.Fatalf("identical joins fingerprint differently: %s vs %s", j, j2)
	}
}
