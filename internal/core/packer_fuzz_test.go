package core

// Fuzz target for shared multi-pane file header parsing (§3.2): a
// damaged header may be rejected but must never panic, and any header
// that parses must tile its body exactly — so PaneSlice can never
// attribute bytes to the wrong pane or read out of bounds.

import (
	"encoding/json"
	"testing"
)

func FuzzParsePaneHeader(f *testing.F) {
	// Seed corpus: a well-formed two-pane header plus the malformed
	// shapes the validator must reject.
	good, _ := json.Marshal([]HeaderEntry{
		{Pane: 4, Offset: 0, Length: 10},
		{Pane: 5, Offset: 10, Length: 6},
	})
	f.Add(good, int64(16))
	f.Add([]byte(`[]`), int64(0))                                 // empty header
	f.Add([]byte(`[{"pane":0,"offset":0,"length":8}]`), int64(8)) // single pane
	f.Add([]byte(`[{"pane":1,"offset":0,"length":8},`+
		`{"pane":1,"offset":8,"length":8}]`), int64(16)) // duplicate pane
	f.Add([]byte(`[{"pane":2,"offset":0,"length":8},`+
		`{"pane":1,"offset":8,"length":8}]`), int64(16)) // unsorted
	f.Add([]byte(`[{"pane":0,"offset":4,"length":4}]`), int64(8))          // gap at start
	f.Add([]byte(`[{"pane":0,"offset":0,"length":4}]`), int64(8))          // short of body
	f.Add([]byte(`[{"pane":0,"offset":0,"length":-1}]`), int64(8))         // negative length
	f.Add([]byte(`[{"pane":-3,"offset":0,"length":8}]`), int64(8))         // negative pane
	f.Add([]byte(`[{"pane":0,"offset":0,"length":8}] trailing`), int64(8)) // trailing garbage
	f.Add([]byte(`{"pane":0}`), int64(8))                                  // not an array
	f.Add([]byte(`[{"pane":0,"offset":0,"length":9223372036854775807}]`), int64(8))
	f.Add([]byte(``), int64(8))
	f.Add([]byte(`null`), int64(0))

	f.Fuzz(func(t *testing.T, hdr []byte, bodyLen int64) {
		entries, err := ParsePaneHeader(hdr, bodyLen) // must not panic
		if err != nil {
			return
		}
		if bodyLen < 0 {
			t.Fatalf("accepted negative body length %d", bodyLen)
		}
		if len(entries) == 0 {
			t.Fatalf("accepted a header with no entries")
		}
		// Accepted headers tile [0, bodyLen) exactly, in pane order.
		var next int64
		prevPane := int64(-1)
		for _, e := range entries {
			if e.Pane <= prevPane {
				t.Fatalf("accepted non-ascending panes: %d after %d", e.Pane, prevPane)
			}
			prevPane = e.Pane
			if e.Offset != next || e.Length < 0 {
				t.Fatalf("accepted non-contiguous range %+v, want offset %d", e, next)
			}
			next = e.Offset + e.Length
		}
		if next != bodyLen {
			t.Fatalf("accepted header covering %d of %d body bytes", next, bodyLen)
		}
		// PaneSlice partitions the body: per-pane slices are in bounds
		// and their lengths sum back to the body.
		body := make([]byte, bodyLen)
		var total int64
		for _, e := range entries {
			data, ok := PaneSlice(body, entries, e.Pane)
			if !ok {
				t.Fatalf("PaneSlice refused pane %d of a validated header", e.Pane)
			}
			total += int64(len(data))
		}
		if total != bodyLen {
			t.Fatalf("pane slices cover %d of %d body bytes", total, bodyLen)
		}
		// A pane the header does not mention is never attributed bytes.
		if _, ok := PaneSlice(body, entries, prevPane+1); ok {
			t.Fatalf("PaneSlice produced bytes for absent pane %d", prevPane+1)
		}
	})
}

// TestParsePaneHeaderRejections pins the validator's error cases so a
// refactor cannot quietly drop one (the fuzzer only proves "no panic +
// accepted implies well-formed", not "malformed implies rejected").
func TestParsePaneHeaderRejections(t *testing.T) {
	cases := []struct {
		name    string
		hdr     string
		bodyLen int64
	}{
		{"empty header", `[]`, 0},
		{"not json", `pane 0 at 0`, 8},
		{"trailing garbage", `[{"pane":0,"offset":0,"length":8}]{}`, 8},
		{"duplicate pane", `[{"pane":1,"offset":0,"length":4},{"pane":1,"offset":4,"length":4}]`, 8},
		{"unsorted panes", `[{"pane":2,"offset":0,"length":4},{"pane":1,"offset":4,"length":4}]`, 8},
		{"gap before first", `[{"pane":0,"offset":4,"length":4}]`, 8},
		{"overlap", `[{"pane":0,"offset":0,"length":6},{"pane":1,"offset":4,"length":4}]`, 8},
		{"short of body", `[{"pane":0,"offset":0,"length":4}]`, 8},
		{"past body", `[{"pane":0,"offset":0,"length":12}]`, 8},
		{"negative length", `[{"pane":0,"offset":0,"length":-1}]`, 8},
		{"negative pane", `[{"pane":-1,"offset":0,"length":8}]`, 8},
		{"negative body", `[{"pane":0,"offset":0,"length":8}]`, -1},
	}
	for _, tc := range cases {
		if _, err := ParsePaneHeader([]byte(tc.hdr), tc.bodyLen); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	entries, err := ParsePaneHeader([]byte(`[{"pane":3,"offset":0,"length":5},{"pane":7,"offset":5,"length":3}]`), 8)
	if err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	if data, ok := PaneSlice([]byte("abcdefgh"), entries, 7); !ok || string(data) != "fgh" {
		t.Fatalf("PaneSlice(pane 7) = %q, %v", data, ok)
	}
}
