package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"redoop/internal/cluster"
	"redoop/internal/dfs"
	"redoop/internal/iocost"
	"redoop/internal/mapreduce"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// Internal-view engine tests: these reach into unexported state (cache
// PIDs, controller registries) that the black-box suite in
// engine_test.go cannot see.

func internalRig(workers int, seed int64) *mapreduce.Engine {
	ids := make([]int, workers)
	for i := range ids {
		ids[i] = i
	}
	cl := cluster.MustNew(cluster.Config{Workers: workers, MapSlots: 4, ReduceSlots: 2})
	d := dfs.MustNew(dfs.Config{BlockSize: 256 << 10, Replication: 2, Nodes: ids, Seed: seed})
	return mapreduce.MustNew(cl, d, iocost.Default())
}

func internalCountQuery(win, slide simtime.Duration) *Query {
	sum := func(key []byte, values [][]byte, emit mapreduce.Emitter) {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
	}
	return &Query{
		Name:    "agg",
		Sources: []Source{{Name: "S1", Spec: window.NewTimeSpec(win, slide)}},
		Maps: []mapreduce.MapFunc{func(_ int64, payload []byte, emit mapreduce.Emitter) {
			emit(append([]byte(nil), payload...), []byte("1"))
		}},
		Reduce:      sum,
		Combine:     sum,
		Merge:       sum,
		NumReducers: 2,
	}
}

func internalWords(seed int64, slide simtime.Duration, slideIdx, n, vocab int) []records.Record {
	rng := rand.New(rand.NewSource(seed + int64(slideIdx)))
	base := int64(slideIdx) * int64(slide)
	out := make([]records.Record, n)
	for i := range out {
		out[i] = records.Record{
			Ts:   base + rng.Int63n(int64(slide)),
			Data: []byte(fmt.Sprintf("w%02d", rng.Intn(vocab))),
		}
	}
	return out
}

// Expired caches must actually leave the task nodes: run enough
// windows and verify early panes' caches are purged while the current
// window's survive.
func TestExpiredCachesArePurged(t *testing.T) {
	win, slide := 30*simtime.Second, 10*simtime.Second
	q := internalCountQuery(win, slide)
	eng := MustNewEngine(Config{MR: internalRig(3, 9), Query: q})
	fed := 0
	for r := 0; r < 6; r++ {
		for ; fed < 3+r; fed++ {
			if err := eng.Ingest(0, internalWords(61, slide, fed, 200, 10)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatal(err)
		}
	}
	// Pane 0 slid out of every window long ago; its caches must be
	// gone from every node and from the controller.
	for part := 0; part < q.NumReducers; part++ {
		pid := q.routPanePID(0, part)
		if _, ok := eng.ctrl.Lookup(pid, ReduceOutput); ok {
			t.Errorf("pane 0 output signature (part %d) should be purged", part)
		}
		for _, n := range eng.mr.Cluster.Nodes() {
			reg := eng.ctrl.Registry(n.ID)
			if reg.Has(pid, ReduceOutput) {
				t.Errorf("pane 0 output cache still on node %d", n.ID)
			}
		}
	}
	// Recent panes' caches must still exist.
	lo, hi := q.Spec().WindowRange(5)
	found := false
	for p := lo; p <= hi; p++ {
		for part := 0; part < q.NumReducers; part++ {
			if _, ok := eng.ctrl.Lookup(q.routPanePID(p, part), ReduceOutput); ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("current window's caches should be retained")
	}
}

// The paper's task lists must drain: after a recurrence completes, no
// stale map or reduce entries remain queued.
func TestTaskListsDrainAfterRecurrence(t *testing.T) {
	win, slide := 30*simtime.Second, 10*simtime.Second
	q := internalCountQuery(win, slide)
	eng := MustNewEngine(Config{MR: internalRig(2, 2), Query: q})
	for s := 0; s < 3; s++ {
		if err := eng.Ingest(0, internalWords(5, slide, s, 100, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunNext(); err != nil {
		t.Fatal(err)
	}
	if n := eng.sched.MapTasks.Len(); n != 0 {
		t.Errorf("map task list should drain, has %d", n)
	}
	if n := eng.sched.ReduceTasks.Len(); n != 0 {
		t.Errorf("reduce task list should drain, has %d", n)
	}
}

// Query PID helpers embed scope, source, pane unit, pane and partition
// so that shared and private caches can never collide.
func TestCachePIDNamespaces(t *testing.T) {
	q := internalCountQuery(30*simtime.Second, 10*simtime.Second)
	private := q.rinPID(0, q.Spec().PaneUnit(), 3, 1)
	q.Sources[0].CacheKey = "clicks"
	shared := q.rinPID(0, q.Spec().PaneUnit(), 3, 1)
	if private == shared {
		t.Error("shared and private rin PIDs must differ")
	}
	if got := q.routPanePID(3, 1); got == private || got == shared {
		t.Error("output PIDs must not collide with input PIDs")
	}
	if q.routPairPID(1, 2, 0) == q.routPairPID(2, 1, 0) {
		t.Error("pair PIDs must be order-sensitive")
	}
}
