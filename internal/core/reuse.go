package core

import (
	"fmt"

	"redoop/internal/account"
	"redoop/internal/colfmt"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/records"
	"redoop/internal/reuse"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// Cross-query pane reuse (engine side). The reuse index
// (internal/reuse) advertises pane reduce-output caches by operator
// fingerprint; this file holds the engine's two halves of the
// protocol:
//
//   - publish: every freshly built pane rout of an eligible query is
//     advertised right after its serial cache registration;
//   - probe: before computing a pane, the engine asks for an exact hit
//     (same pane unit — copy the producer's bytes) or a subsumption
//     hit (finer unit dividing ours — compose with Merge, the same
//     decomposition contract the proactive sub-pane path relies on).
//
// All of it runs at the serial per-pane commit point inside
// ensureAggPane, so index contents and reuse decisions are
// byte-identical across -workers settings.

// reuseEligible reports whether this engine participates in cross-query
// reuse: an index is attached, reuse is not ablated away, and the query
// is a single-source aggregation over a CacheKey-shared stream with a
// Merge. The CacheKey is the data-identity anchor — without it, two
// queries with identical plans over *different* private streams would
// falsely match. Joins never publish or probe: tuple outputs depend on
// the pane pairing, not a single pane.
func (e *Engine) reuseEligible() bool {
	return e.reuseIdx != nil && !e.noReuse &&
		len(e.query.Sources) == 1 && e.query.Sources[0].CacheKey != "" &&
		e.query.Merge != nil
}

// publishPaneRout advertises one freshly built pane reduce-output in
// the reuse index. Called right after the serial cache registration
// that produced ref, with the same recompute figure the ledger stores.
func (e *Engine) publishPaneRout(p window.PaneID, part int, ref cacheRef, recompute simtime.Duration) {
	if !e.reuseEligible() {
		return
	}
	e.reuseIdx.Publish(reuse.Entry{
		OpFP: e.opFP, Unit: int64(e.frames[0].Pane), Pane: int64(p), Part: part,
		Query: e.acctName, PID: ref.pid, Type: int(ref.typ), Node: ref.node,
		Bytes: ref.bytes, ReadyAtNS: int64(ref.readyAt), RecomputeNS: int64(recompute),
	})
}

// verifyReuseEntry cross-checks one advertised entry against the
// controller and the node registry: the signature must still vouch for
// cache-available bytes that are really resident. A stale
// advertisement is retracted and reported as unusable — the *producer*
// discovers the §5 loss at its own next lookup; a consumer never rolls
// back another query's signature.
func (e *Engine) verifyReuseEntry(en reuse.Entry) (cacheRef, bool) {
	typ := CacheType(en.Type)
	sig, ok := e.ctrl.Lookup(en.PID, typ)
	if !ok || sig.Ready != CacheAvailable {
		e.reuseIdx.DropPID(en.PID, en.Type)
		return cacheRef{}, false
	}
	reg := e.ctrl.Registry(sig.NID)
	if reg == nil || !reg.Has(en.PID, typ) {
		e.reuseIdx.DropPID(en.PID, en.Type)
		return cacheRef{}, false
	}
	return cacheRef{pid: en.PID, typ: typ, node: sig.NID, readyAt: sig.ReadyAt, bytes: sig.Bytes}, true
}

// tryReuseAggPane probes the reuse index for pane p and, on a hit,
// materializes the consumer's own per-partition reduce-output caches
// from the producer's — a copy task for an exact hit, a Merge task
// over the finer panes for a subsumption hit. Returns hit=false (and
// no side effects beyond retracting stale advertisements) when the
// index has nothing usable, sending the caller down the ordinary
// recovery ladder.
func (e *Engine) tryReuseAggPane(p window.PaneID, trigger simtime.Time, stats *mapreduce.Stats) ([]cacheRef, bool, error) {
	if !e.reuseEligible() {
		return nil, false, nil
	}
	q := e.query
	R := q.NumReducers
	unit := int64(e.frames[0].Pane)

	if entries, ok := e.reuseIdx.ProbeExact(e.opFP, unit, int64(p), R, e.acctName); ok {
		prods := make([]cacheRef, R)
		valid := true
		for part := range entries {
			ref, ok := e.verifyReuseEntry(entries[part])
			if !ok {
				valid = false
				break
			}
			prods[part] = ref
		}
		if valid {
			refs, err := e.copyReusedPane(p, trigger, entries, prods, stats)
			if err != nil {
				return nil, false, err
			}
			return refs, true, nil
		}
	}

	if rows, u, ok := e.reuseIdx.ProbeSubsume(e.opFP, unit, int64(p), R, e.acctName); ok {
		prods := make([][]cacheRef, R)
		valid := true
		for part := 0; valid && part < R; part++ {
			prods[part] = make([]cacheRef, len(rows[part]))
			for i := range rows[part] {
				ref, ok := e.verifyReuseEntry(rows[part][i])
				if !ok {
					valid = false
					break
				}
				prods[part][i] = ref
			}
		}
		if valid {
			refs, err := e.composeReusedPane(p, u, trigger, rows, prods, stats)
			if err != nil {
				return nil, false, err
			}
			return refs, true, nil
		}
	}
	return nil, false, nil
}

// copyReusedPane satisfies an exact hit: each partition's bytes are
// read from the producer's cache and registered under the consumer's
// own pane-rout PID. The consumer credits the producer's recompute
// cost as a cross-query saving (net of the copy's load, via the usual
// CacheLoaded adjustment) and records the new derivation as a reuse
// edge — its input is the producer's derivation, not raw batches.
func (e *Engine) copyReusedPane(p window.PaneID, trigger simtime.Time, entries []reuse.Entry, prods []cacheRef, stats *mapreduce.Stats) ([]cacheRef, error) {
	q := e.query
	refs := make([]cacheRef, q.NumReducers)
	for part := 0; part < q.NumReducers; part++ {
		en, prod := entries[part], prods[part]
		routPID := q.routPanePID(p, part)
		routMeta := cacheMeta{recompute: simtime.Duration(en.RecomputeNS)}
		if e.lin != nil {
			routMeta.lin = &linMeta{kind: "pane-rout", pane: int64(p), part: part,
				inputs: []lineage.InputRef{e.linInput(prod.pid, ReduceOutput)}}
		}
		if prod.bytes == 0 {
			refs[part] = e.registerCache(routPID, ReduceOutput, prod.node, simtime.Max(prod.readyAt, trigger), nil, routMeta)
			e.recordReuseEdge(routPID, prod, prod.node, simtime.Max(prod.readyAt, trigger), "exact")
			continue
		}
		data, ok := e.ctrl.Registry(prod.node).Get(prod.pid, ReduceOutput)
		if !ok {
			return nil, fmt.Errorf("core: reused cache %s lost from node %d mid-recurrence", prod.pid, prod.node)
		}
		e.acct.CacheHitCross(e.acctName, prod.pid, int(prod.typ), e.curTrigger)
		ct := e.runCacheTask(fmt.Sprintf("reuse pane %d p%d", int64(p), part), account.PhaseReduce,
			trigger, []cacheRef{prod}, e.mr.Cost.DiskWrite(prod.bytes))
		stats.ReduceTime += ct.dur
		stats.BytesCacheRead += prod.bytes
		routMeta.span = ct.span
		refs[part] = e.registerCache(routPID, ReduceOutput, ct.node, ct.end, data, routMeta)
		e.recordReuseEdge(routPID, prod, ct.node, ct.end, "exact")
		if ct.end > stats.End {
			stats.End = ct.end
		}
	}
	if err := e.matrix.Update(p); err != nil {
		return nil, err
	}
	return refs, nil
}

// composeReusedPane satisfies a subsumption hit: each partition's
// unit/u finer pane routs are loaded and folded with the query's Merge
// — the same partial-aggregate decomposition the proactive sub-pane
// path applies — into the consumer's pane rout. Only single-source
// queries with a Merge reach here (reuseEligible), and the engine
// already requires Merge∘Reduce ≡ Reduce over concatenated inputs for
// such queries, so composed bytes equal recomputed bytes.
func (e *Engine) composeReusedPane(p window.PaneID, u int64, trigger simtime.Time, rows [][]reuse.Entry, prods [][]cacheRef, stats *mapreduce.Stats) ([]cacheRef, error) {
	q := e.query
	refs := make([]cacheRef, q.NumReducers)
	for part := 0; part < q.NumReducers; part++ {
		var pairs []records.Pair
		var caches []cacheRef
		var inBytes int64
		var recompute simtime.Duration
		readyAt := trigger
		for i, prod := range prods[part] {
			recompute += simtime.Duration(rows[part][i].RecomputeNS)
			if prod.readyAt > readyAt {
				readyAt = prod.readyAt
			}
			if prod.bytes == 0 {
				continue
			}
			ps, err := e.readCache(prod)
			if err != nil {
				return nil, err
			}
			e.acct.CacheHitCross(e.acctName, prod.pid, int(prod.typ), e.curTrigger)
			pairs = append(pairs, ps...)
			caches = append(caches, prod)
			inBytes += prod.bytes
		}
		routPID := q.routPanePID(p, part)
		routMeta := cacheMeta{recompute: recompute}
		if e.lin != nil {
			inputs := make([]lineage.InputRef, 0, len(prods[part]))
			for _, prod := range prods[part] {
				inputs = append(inputs, e.linInput(prod.pid, ReduceOutput))
			}
			routMeta.lin = &linMeta{kind: "pane-rout", pane: int64(p), part: part, inputs: inputs}
		}
		if len(caches) == 0 {
			refs[part] = e.registerCache(routPID, ReduceOutput, prods[part][0].node, readyAt, nil, routMeta)
			e.recordReuseEdge(routPID, prods[part][0], prods[part][0].node, readyAt, "subsume")
			continue
		}
		merged := mapreduce.ReduceGroups(q.Merge, mapreduce.GroupPairs(pairs))
		outData := colfmt.EncodePairs(merged)
		ct := e.runCacheTask(fmt.Sprintf("reuse-merge pane %d p%d", int64(p), part), account.PhaseReduce,
			trigger, caches, e.mr.Cost.MergeTask(inBytes, int64(len(outData))))
		stats.ReduceTime += ct.dur
		stats.BytesCacheRead += inBytes
		routMeta.span = ct.span
		refs[part] = e.registerCache(routPID, ReduceOutput, ct.node, ct.end, outData, routMeta)
		e.recordReuseEdge(routPID, caches[0], ct.node, ct.end, "subsume")
		if ct.end > stats.End {
			stats.End = ct.end
		}
	}
	if err := e.matrix.Update(p); err != nil {
		return nil, err
	}
	return refs, nil
}

// recordReuseEdge stamps the consumer derivation's copy history with a
// reuse event (the derivation itself was just recorded by
// registerCache, with the producer derivation as its input) and emits
// the observability event. kind is "exact" or "subsume".
func (e *Engine) recordReuseEdge(routPID string, prod cacheRef, node int, at simtime.Time, kind string) {
	if e.lin != nil {
		e.lin.AddCopy(lineage.DerivID(routPID, int(ReduceOutput)),
			lineage.CopyEvent{Kind: "reuse", Node: node, From: prod.node, AtNS: int64(at)})
		e.lin.AddCopy(lineage.DerivID(prod.pid, int(ReduceOutput)),
			lineage.CopyEvent{Kind: "hit", Node: prod.node, AtNS: int64(at)})
	}
	e.obs.Counter("redoop_reuse_hits_total",
		obs.L("query", e.query.Name), obs.L("kind", kind)).Inc()
	e.obs.Emit(at, eventlog.CacheHit, e.query.Name, eventlog.CacheData{
		PID: routPID, CacheType: ReduceOutput.String(), Node: node,
		Bytes: prod.bytes, Recurrence: e.NextRecurrence(),
	})
}
