package core_test

import (
	"testing"

	"redoop/internal/core"
	"redoop/internal/health"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/records"
	"redoop/internal/window"
)

// feedAndRun ingests slides through each window close and executes
// `windows` recurrences on a single engine (no baseline counterpart —
// health tests care about the monitor, not output equivalence).
func feedAndRun(t *testing.T, eng *core.Engine, q *core.Query, windows int,
	gen func(src, slideIdx int) []records.Record) []*core.RecurrenceResult {
	t.Helper()
	spec := q.Spec()
	frames, err := q.Frames()
	if err != nil {
		t.Fatal(err)
	}
	fed := 0
	var out []*core.RecurrenceResult
	for r := 0; r < windows; r++ {
		for close := frames[0].WindowClose(r); int64(fed)*spec.Slide < close; fed++ {
			for src := range q.Sources {
				if err := eng.Ingest(src, gen(src, fed)); err != nil {
					t.Fatal(err)
				}
			}
		}
		rr, err := eng.RunNext()
		if err != nil {
			t.Fatalf("recurrence %d: %v", r, err)
		}
		out = append(out, rr)
	}
	return out
}

func TestEngineHealthTracking(t *testing.T) {
	mon := health.NewMonitor(health.DefaultConfig())
	o := obs.New()
	mon.SetObserver(o)
	q := countQuery("hq", testWin, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(4, 3), Query: q, Health: mon})
	gen := func(_, s int) []records.Record { return genWords(50, testSlide, s, 400, 25) }
	feedAndRun(t, eng, q, 5, gen)

	st := eng.HealthStatus()
	if st.Query != "hq" {
		t.Fatalf("status query = %q, want hq", st.Query)
	}
	if st.Recurrences != 5 {
		t.Errorf("recurrences = %d, want 5", st.Recurrences)
	}
	if st.DeadlineNS != int64(testSlide) {
		t.Errorf("deadline = %d, want slide %d", st.DeadlineNS, int64(testSlide))
	}
	if st.LastResponseNS <= 0 {
		t.Errorf("last response = %d, want > 0", st.LastResponseNS)
	}
	// The Holt profiler needs two observations before it forecasts;
	// by recurrence 5 the engine must have handed the monitor one.
	if st.LastForecastNS < 0 {
		t.Errorf("no forecast recorded after 5 recurrences (lastForecastNS = %d)", st.LastForecastNS)
	}
	// Feeding exactly through each window close leaves no backlog.
	if st.WindowLagUnits != 0 {
		t.Errorf("window lag = %d units, want 0 (fed exactly through close)", st.WindowLagUnits)
	}
	// The simulated run finishes each window well inside its slide.
	if st.Status != health.StatusOK {
		t.Errorf("status = %s, want %s", st.Status, health.StatusOK)
	}
	if st.HeadroomNS <= 0 || st.HeadroomNS > st.DeadlineNS {
		t.Errorf("headroom = %d, want in (0, %d]", st.HeadroomNS, st.DeadlineNS)
	}

	// The same snapshot is reachable through the shared monitor.
	snap := mon.Snapshot()
	if len(snap) != 1 || snap[0].Query != "hq" {
		t.Fatalf("monitor snapshot = %+v, want one entry for hq", snap)
	}

	// Metrics flowed through the attached observer.
	if g := o.Metrics.Gauge("redoop_health_status", obs.L("query", "hq")); g.Value() != 0 {
		t.Errorf("redoop_health_status gauge = %v, want 0 (OK)", g.Value())
	}
}

func TestEngineHealthTumblingWindow(t *testing.T) {
	// slide == win: every pane is new, none reused, deadline == win.
	q := countQuery("tumble", testSlide, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(4, 4), Query: q})
	gen := func(_, s int) []records.Record { return genWords(60, testSlide, s, 200, 20) }
	rres := feedAndRun(t, eng, q, 4, gen)
	for i, rr := range rres {
		if rr.ReusedPanes != 0 {
			t.Errorf("window %d: reused %d panes, want 0 under tumbling", i, rr.ReusedPanes)
		}
	}
	st := eng.HealthStatus()
	if st.Recurrences != 4 {
		t.Errorf("recurrences = %d, want 4", st.Recurrences)
	}
	if st.DeadlineNS != int64(testSlide) {
		t.Errorf("deadline = %d, want %d", st.DeadlineNS, int64(testSlide))
	}
	if st.WindowLagUnits != 0 {
		t.Errorf("window lag = %d, want 0", st.WindowLagUnits)
	}
}

func TestEngineHealthWindowLagBacklog(t *testing.T) {
	// Ingest far beyond the first window before running it: the newest
	// packed pane outruns the covered unit, so the watermark distance
	// is positive after recurrence 0.
	q := countQuery("lagq", testWin, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(4, 5), Query: q})
	spec := q.Spec()
	// 9 slides = 3 windows of data, but only window 0 runs.
	for s := 0; s < 9; s++ {
		if err := eng.Ingest(0, genWords(70, testSlide, s, 100, 15)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunNext(); err != nil {
		t.Fatal(err)
	}
	st := eng.HealthStatus()
	// Window 0 covers units up to win; 9 slides of data reach 9·slide.
	wantLag := 9*spec.Slide - spec.Win
	if st.WindowLagUnits != wantLag {
		t.Errorf("window lag = %d, want %d", st.WindowLagUnits, wantLag)
	}
}

func TestEngineHealthDefaultMonitor(t *testing.T) {
	// Without a Config.Health the engine still tracks health on a
	// private monitor reachable via Health().
	q := countQuery("solo", testWin, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(2, 6), Query: q})
	gen := func(_, s int) []records.Record { return genWords(80, testSlide, s, 150, 10) }
	feedAndRun(t, eng, q, 2, gen)
	mon := eng.Health()
	if mon == nil {
		t.Fatal("engine has no health monitor")
	}
	st, ok := mon.Status("solo")
	if !ok {
		t.Fatal("private monitor does not know query solo")
	}
	if st.Recurrences != 2 {
		t.Errorf("recurrences = %d, want 2", st.Recurrences)
	}
}

func TestEngineHealthSharedMonitorAcrossEngines(t *testing.T) {
	// One monitor watching two engines keeps separate trackers, and a
	// name collision gets a disambiguating suffix rather than merging.
	mon := health.NewMonitor(health.DefaultConfig())
	qa := countQuery("dup", testWin, testSlide, "")
	qb := countQuery("dup", testWin, testSlide, "")
	ea := core.MustNewEngine(core.Config{MR: newRig(2, 7), Query: qa, Health: mon})
	eb := core.MustNewEngine(core.Config{MR: newRig(2, 8), Query: qb, Health: mon})
	gen := func(_, s int) []records.Record { return genWords(90, testSlide, s, 120, 10) }
	feedAndRun(t, ea, qa, 2, gen)
	feedAndRun(t, eb, qb, 3, gen)

	snap := mon.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2: %+v", len(snap), snap)
	}
	byName := map[string]health.QueryStatus{}
	for _, st := range snap {
		byName[st.Query] = st
	}
	if st, ok := byName["dup"]; !ok || st.Recurrences != 2 {
		t.Errorf("dup: %+v, want 2 recurrences", byName["dup"])
	}
	if st, ok := byName["dup#2"]; !ok || st.Recurrences != 3 {
		t.Errorf("dup#2: %+v, want 3 recurrences", byName["dup#2"])
	}
}

func TestEngineHealthSlowRecurrenceEscalates(t *testing.T) {
	// An induced oversized batch (acceptance criterion): one slide
	// carries far more data than the steady state, so the recurrence
	// blows past a deadline tightened to sit just above the steady
	// response. Status must leave OK and a deadline miss must be
	// recorded.
	mon := health.NewMonitor(health.Config{
		AnomalyK:           2,
		MinResidualSamples: 1,
		MissStreak:         2,
	})
	o := obs.New()
	mon.SetObserver(o)
	q := countQuery("spiky", testWin, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(2, 9), Query: q, Health: mon})
	gen := func(_, s int) []records.Record {
		n := 200
		if s >= 6 {
			n = 40000 // ~200x spike from slide 6 on
		}
		return genWords(int64(31+s), testSlide, s, n, 20)
	}
	feedAndRun(t, eng, q, 3, gen)
	steady := eng.HealthStatus()
	if steady.Status != health.StatusOK {
		t.Fatalf("pre-spike status = %s, want OK", steady.Status)
	}

	// Continue the same engine past the spike.
	spec := q.Spec()
	frames, err := q.Frames()
	if err != nil {
		t.Fatal(err)
	}
	fed := int(frames[0].WindowClose(2)/spec.Slide) + 1
	for r := 3; r < 6; r++ {
		for close := frames[0].WindowClose(r); int64(fed)*spec.Slide < close; fed++ {
			if err := eng.Ingest(0, gen(0, fed)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatalf("recurrence %d: %v", r, err)
		}
	}

	st := eng.HealthStatus()
	if st.Anomalies == 0 {
		t.Errorf("no anomalies recorded across a 200x input spike: %+v", st)
	}
	if c := o.Metrics.Counter("redoop_health_anomalies_total", obs.L("query", "spiky")); c.Value() == 0 {
		t.Errorf("redoop_health_anomalies_total = 0, want > 0")
	}
}

func TestEngineHealthCountBasedNoDeadline(t *testing.T) {
	// Count-based windows have no wall-clock slide, so no deadline and
	// never a miss.
	q := &core.Query{
		Name: "cb",
		Sources: []core.Source{{
			Name: "S1",
			Spec: window.NewCountSpec(30, 10),
		}},
		Maps: []mapreduce.MapFunc{func(_ int64, payload []byte, emit mapreduce.Emitter) {
			emit(append([]byte(nil), payload...), []byte("1"))
		}},
		Reduce:      sumReduce,
		Merge:       sumReduce,
		NumReducers: 1,
	}
	eng := core.MustNewEngine(core.Config{MR: newRig(2, 10), Query: q})
	// Count-based units are record indexes, not timestamps.
	rec := func(i int) records.Record {
		return records.Record{Ts: int64(i), Data: []byte("w" + string(rune('a'+i%5)))}
	}
	fed := 0
	for r := 0; r < 2; r++ {
		for ; fed < 30+10*r; fed++ {
			if err := eng.Ingest(0, []records.Record{rec(fed)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.RunNext(); err != nil {
			t.Fatalf("recurrence %d: %v", r, err)
		}
	}
	st := eng.HealthStatus()
	if st.DeadlineNS != 0 {
		t.Errorf("count-based deadline = %d, want 0", st.DeadlineNS)
	}
	if st.DeadlineMisses != 0 || st.Status != health.StatusOK {
		t.Errorf("count-based query missed deadlines: %+v", st)
	}
	if st.Recurrences != 2 {
		t.Errorf("recurrences = %d, want 2", st.Recurrences)
	}
}
