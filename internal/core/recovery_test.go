package core

import (
	"testing"

	"redoop/internal/simtime"
	"redoop/internal/window"
)

// Tests of the §5 recovery ladder at cache-key granularity: a lost
// reduce-output cache rebuilds from the surviving reduce-input cache
// (no DFS re-read); a fully lost pane re-runs map+shuffle.

func primeAggEngine(t *testing.T) *Engine {
	t.Helper()
	win, slide := 30*simtime.Second, 10*simtime.Second
	q := internalCountQuery(win, slide)
	eng := MustNewEngine(Config{MR: internalRig(3, 17), Query: q})
	for s := 0; s < 3; s++ {
		if err := eng.Ingest(0, internalWords(19, slide, s, 300, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunNext(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// dropType removes one cache type for pane p across all partitions and
// nodes.
func dropType(eng *Engine, p int64, typ CacheType) int {
	dropped := 0
	q := eng.query
	for part := 0; part < q.NumReducers; part++ {
		var pid string
		if typ == ReduceOutput {
			pid = q.routPanePID(window.PaneID(p), part)
		} else {
			pid = q.rinPID(0, q.Spec().PaneUnit(), window.PaneID(p), part)
		}
		for _, n := range eng.mr.Cluster.Nodes() {
			key := localKey(pid, typ)
			if n.HasLocal(key) {
				n.DeleteLocal(key)
				dropped++
			}
		}
	}
	return dropped
}

func TestRecoveryFromReduceInputCache(t *testing.T) {
	eng := primeAggEngine(t)
	// Lose every pane-output cache of pane 1 (which window 2 reuses)
	// but keep the reduce-input caches.
	if dropped := dropType(eng, 1, ReduceOutput); dropped == 0 {
		t.Fatal("no output caches found to drop")
	}
	if err := eng.Ingest(0, internalWords(19, 10*simtime.Second, 3, 300, 8)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheRecoveries == 0 {
		t.Error("output-cache loss should be detected as a recovery")
	}
	// The cheap rung: the pane must NOT have been re-mapped — only the
	// new pane's data is read from DFS (1 pane of 300 records).
	newPaneBytes := res.Stats.BytesRead
	// Run a clean engine to the same point for comparison.
	clean := primeAggEngine(t)
	clean.Ingest(0, internalWords(19, 10*simtime.Second, 3, 300, 8))
	cres, err := clean.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	if newPaneBytes != cres.Stats.BytesRead {
		t.Errorf("rin-based rebuild should not re-read the DFS: read %d vs clean %d",
			newPaneBytes, cres.Stats.BytesRead)
	}
}

func TestRecoveryFullRemapWhenBothCachesLost(t *testing.T) {
	eng := primeAggEngine(t)
	d1 := dropType(eng, 1, ReduceOutput)
	d2 := dropType(eng, 1, ReduceInput)
	if d1 == 0 || d2 == 0 {
		t.Fatalf("expected caches to drop, got rout=%d rin=%d", d1, d2)
	}
	if err := eng.Ingest(0, internalWords(19, 10*simtime.Second, 3, 300, 8)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheRecoveries == 0 {
		t.Error("full pane loss should be detected")
	}
	// The expensive rung: pane 1 was re-mapped, so DFS reads cover two
	// panes' files rather than one.
	clean := primeAggEngine(t)
	clean.Ingest(0, internalWords(19, 10*simtime.Second, 3, 300, 8))
	cres, _ := clean.RunNext()
	if res.Stats.BytesRead <= cres.Stats.BytesRead {
		t.Errorf("full rebuild should re-read the lost pane: %d vs clean %d",
			res.Stats.BytesRead, cres.Stats.BytesRead)
	}
	// And the result is still exactly correct.
	total := 0
	for _, p := range res.Output {
		n := 0
		for _, c := range p.Value {
			n = n*10 + int(c-'0')
		}
		total += n
	}
	if total != 900 {
		t.Errorf("recovered window counted %d, want 900", total)
	}
}

// The controller's ready bit must roll back 2→1 when a cache is found
// lost (§5).
func TestReadyBitRollback(t *testing.T) {
	eng := primeAggEngine(t)
	pid := eng.query.routPanePID(1, 0)
	sig, ok := eng.ctrl.Lookup(pid, ReduceOutput)
	if !ok || sig.Ready != CacheAvailable {
		t.Fatalf("pane 1 output cache should be registered: %+v ok=%v", sig, ok)
	}
	// Lose just that one cache file.
	eng.mr.Cluster.Node(sig.NID).DeleteLocal(localKey(pid, ReduceOutput))
	if _, found := eng.lookupCache(pid, ReduceOutput); found {
		t.Fatal("lookup should detect the loss")
	}
	sig, _ = eng.ctrl.Lookup(pid, ReduceOutput)
	if sig.Ready != HDFSAvailable {
		t.Errorf("ready bit should roll back to HDFS-available, got %v", sig.Ready)
	}
}
