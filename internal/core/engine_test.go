package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"redoop/internal/baseline"
	"redoop/internal/cluster"
	"redoop/internal/core"
	"redoop/internal/dfs"
	"redoop/internal/iocost"
	"redoop/internal/mapreduce"
	"redoop/internal/records"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// newRig builds an isolated cluster+DFS+runtime for one system under
// test so Redoop and baseline timelines never interfere.
func newRig(workers int, seed int64) *mapreduce.Engine {
	// Unit tests run at kilobyte scale, so shrink the fixed per-task
	// overhead to keep timings data-dominated, as they are at the
	// paper's gigabyte scale.
	cost := iocost.Default()
	cost.TaskOverhead = 200 * time.Microsecond
	return newRigCost(workers, seed, cost)
}

func newRigCost(workers int, seed int64, cost iocost.Model) *mapreduce.Engine {
	// Two map and two reduce slots per worker with 32 KiB blocks keep
	// the slot count well below the window's block count, so map waves
	// scale with data volume as they do on a loaded production
	// cluster.
	cl := cluster.MustNew(cluster.Config{Workers: workers, MapSlots: 2, ReduceSlots: 2})
	d := dfs.MustNew(dfs.Config{
		BlockSize:   32 << 10,
		Replication: 2,
		Nodes:       nodeIDs(workers),
		Seed:        seed,
	})
	return mapreduce.MustNew(cl, d, cost)
}

func nodeIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sumReduce aggregates integer values; it doubles as the combiner and
// the finalization merge (sums are algebraic).
func sumReduce(key []byte, values [][]byte, emit mapreduce.Emitter) {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	emit(key, []byte(strconv.Itoa(total)))
}

// countQuery is a recurring word-count aggregation over one source.
func countQuery(name string, win, slide simtime.Duration, cacheKey string) *core.Query {
	return &core.Query{
		Name: name,
		Sources: []core.Source{{
			Name:             "S1",
			Spec:             window.NewTimeSpec(win, slide),
			CacheKey:         cacheKey,
			RateBytesPerUnit: 0,
		}},
		Maps: []mapreduce.MapFunc{func(_ int64, payload []byte, emit mapreduce.Emitter) {
			emit(append([]byte(nil), payload...), []byte("1"))
		}},
		Reduce:      sumReduce,
		Combine:     sumReduce,
		Merge:       sumReduce,
		NumReducers: 2,
	}
}

// joinQuery is a recurring equi-join of two sources; values are tagged
// with their side and the reduce emits the cross product per key.
func joinQuery(name string, win, slide simtime.Duration) *core.Query {
	tagMap := func(tag string) mapreduce.MapFunc {
		return func(_ int64, payload []byte, emit mapreduce.Emitter) {
			// Payload format "key:value".
			i := bytes.IndexByte(payload, ':')
			if i < 0 {
				return
			}
			k := append([]byte(nil), payload[:i]...)
			v := append([]byte(tag+"|"), payload[i+1:]...)
			emit(k, v)
		}
	}
	return &core.Query{
		Name: name,
		Sources: []core.Source{
			{Name: "S1", Spec: window.NewTimeSpec(win, slide)},
			{Name: "S2", Spec: window.NewTimeSpec(win, slide)},
		},
		Maps:   []mapreduce.MapFunc{tagMap("A"), tagMap("B")},
		Reduce: crossJoinReduce,
		// Merge nil: a window's join result is the union of its pane
		// pairs' results.
		NumReducers: 2,
	}
}

func crossJoinReduce(key []byte, values [][]byte, emit mapreduce.Emitter) {
	var as, bs [][]byte
	for _, v := range values {
		switch {
		case bytes.HasPrefix(v, []byte("A|")):
			as = append(as, v[2:])
		case bytes.HasPrefix(v, []byte("B|")):
			bs = append(bs, v[2:])
		}
	}
	for _, a := range as {
		for _, b := range bs {
			out := make([]byte, 0, len(a)+len(b)+1)
			out = append(out, a...)
			out = append(out, ',')
			out = append(out, b...)
			emit(key, out)
		}
	}
}

// genWords produces one slide's worth of word records for the given
// recurrence, deterministic per seed.
func genWords(seed int64, slide simtime.Duration, slideIdx, n int, vocab int) []records.Record {
	rng := rand.New(rand.NewSource(seed + int64(slideIdx)))
	base := int64(slideIdx) * int64(slide)
	out := make([]records.Record, n)
	for i := range out {
		ts := base + rng.Int63n(int64(slide))
		w := fmt.Sprintf("w%02d", rng.Intn(vocab))
		out[i] = records.Record{Ts: ts, Data: []byte(w)}
	}
	return out
}

// genKV produces "key:value" records for join tests.
func genKV(seed int64, slide simtime.Duration, slideIdx, n, keys int) []records.Record {
	rng := rand.New(rand.NewSource(seed + int64(slideIdx)))
	base := int64(slideIdx) * int64(slide)
	out := make([]records.Record, n)
	for i := range out {
		ts := base + rng.Int63n(int64(slide))
		payload := fmt.Sprintf("k%02d:v%d.%d", rng.Intn(keys), slideIdx, i)
		out[i] = records.Record{Ts: ts, Data: []byte(payload)}
	}
	return out
}

func sortedClone(ps []records.Pair) []records.Pair {
	out := append([]records.Pair(nil), ps...)
	mapreduce.SortPairs(out)
	return out
}

func pairsEqual(a, b []records.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func dumpPairs(ps []records.Pair, limit int) string {
	var b strings.Builder
	for i, p := range ps {
		if i >= limit {
			fmt.Fprintf(&b, "... (%d total)", len(ps))
			break
		}
		fmt.Fprintf(&b, "%s=%s ", p.Key, p.Value)
	}
	return b.String()
}

const (
	testWin   = 30 * simtime.Second
	testSlide = 10 * simtime.Second
)

// runBoth feeds identical batches to a Redoop engine and a baseline
// driver and executes `windows` recurrences on each, returning the
// results. ingest(slideIdx) produces the batch per source for the
// units covering that slide; slides are fed just before the window
// that first needs them closes.
func runBoth(t *testing.T, q *core.Query, qb *core.Query, windows int, adaptive bool,
	gen func(src, slideIdx int) []records.Record,
	between func(r int, eng *core.Engine)) ([]*core.RecurrenceResult, []*baseline.Result) {
	t.Helper()
	eng := core.MustNewEngine(core.Config{MR: newRig(4, 1), Query: q, Adaptive: adaptive})
	drv := baseline.MustNewDriver(newRig(4, 1), qb)

	spec := q.Spec()
	frames, err := q.Frames()
	if err != nil {
		t.Fatal(err)
	}
	fed := 0
	// feedThroughClose delivers every slide batch starting before the
	// given window-close bound (batches may straddle window edges; the
	// packer holds back records beyond the flush bound).
	feedThroughClose := func(close int64) {
		for ; int64(fed)*spec.Slide < close; fed++ {
			for src := range q.Sources {
				batch := gen(src, fed)
				if err := eng.Ingest(src, batch); err != nil {
					t.Fatal(err)
				}
				if err := drv.Ingest(src, batch); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	var rres []*core.RecurrenceResult
	var bres []*baseline.Result
	for r := 0; r < windows; r++ {
		feedThroughClose(frames[0].WindowClose(r))
		if between != nil {
			between(r, eng)
		}
		rr, err := eng.RunNext()
		if err != nil {
			t.Fatalf("redoop recurrence %d: %v", r, err)
		}
		br, err := drv.RunNext()
		if err != nil {
			t.Fatalf("baseline recurrence %d: %v", r, err)
		}
		rres = append(rres, rr)
		bres = append(bres, br)
	}
	return rres, bres
}

func assertSameOutputs(t *testing.T, rres []*core.RecurrenceResult, bres []*baseline.Result) {
	t.Helper()
	for i := range rres {
		ro := sortedClone(rres[i].Output)
		bo := sortedClone(bres[i].Output)
		if !pairsEqual(ro, bo) {
			t.Errorf("window %d: redoop and baseline disagree\n redoop:   %s\n baseline: %s",
				i, dumpPairs(ro, 12), dumpPairs(bo, 12))
		}
		if len(ro) == 0 {
			t.Errorf("window %d produced no output", i)
		}
	}
}

func TestAggregationMatchesBaselineAcrossWindows(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	qb := countQuery("agg", testWin, testSlide, "")
	gen := func(_, s int) []records.Record { return genWords(100, testSlide, s, 400, 25) }
	rres, bres := runBoth(t, q, qb, 6, false, gen, nil)
	assertSameOutputs(t, rres, bres)

	// Window 0 processes every pane; later windows reuse all but one.
	if rres[0].NewPanes != 3 || rres[0].ReusedPanes != 0 {
		t.Errorf("window 0: new=%d reused=%d, want 3/0", rres[0].NewPanes, rres[0].ReusedPanes)
	}
	for i := 1; i < len(rres); i++ {
		if rres[i].NewPanes != 1 || rres[i].ReusedPanes != 2 {
			t.Errorf("window %d: new=%d reused=%d, want 1/2", i, rres[i].NewPanes, rres[i].ReusedPanes)
		}
	}
}

func TestAggregationRedoopFasterSteadyState(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	qb := countQuery("agg", testWin, testSlide, "")
	gen := func(_, s int) []records.Record { return genWords(7, testSlide, s, 30000, 40) }
	rres, bres := runBoth(t, q, qb, 6, false, gen, nil)
	assertSameOutputs(t, rres, bres)
	// Steady state (windows 2+): Redoop must beat the baseline.
	for i := 2; i < len(rres); i++ {
		if rres[i].ResponseTime >= bres[i].ResponseTime {
			t.Errorf("window %d: redoop %v not faster than baseline %v",
				i, rres[i].ResponseTime, bres[i].ResponseTime)
		}
	}
	// And it must re-read far fewer input bytes.
	var rRead, bRead int64
	for i := 1; i < len(rres); i++ {
		rRead += rres[i].Stats.BytesRead
		bRead += bres[i].Stats.BytesRead
	}
	if rRead*2 >= bRead {
		t.Errorf("redoop re-read too much: %d vs baseline %d", rRead, bRead)
	}
}

func TestJoinMatchesBaselineAcrossWindows(t *testing.T) {
	q := joinQuery("join", testWin, testSlide)
	qb := joinQuery("join", testWin, testSlide)
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*1000+11), testSlide, s, 60, 8)
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, nil)
	assertSameOutputs(t, rres, bres)

	// Pane pairs: window 0 computes all 9; afterwards only pairs
	// involving the new pane (9 - 4 reused = 5 new).
	if rres[0].NewPairs != 9 {
		t.Errorf("window 0 pairs = %d, want 9", rres[0].NewPairs)
	}
	for i := 1; i < len(rres); i++ {
		if rres[i].ReusedPairs != 4 || rres[i].NewPairs != 5 {
			t.Errorf("window %d: new=%d reused=%d pairs, want 5/4",
				i, rres[i].NewPairs, rres[i].ReusedPairs)
		}
	}
}

func TestJoinRedoopFasterSteadyState(t *testing.T) {
	q := joinQuery("join", testWin, testSlide)
	qb := joinQuery("join", testWin, testSlide)
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*1000+13), testSlide, s, 5000, 25000)
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, nil)
	assertSameOutputs(t, rres, bres)
	for i := 2; i < len(rres); i++ {
		if rres[i].ResponseTime >= bres[i].ResponseTime {
			t.Errorf("window %d: redoop %v not faster than baseline %v",
				i, rres[i].ResponseTime, bres[i].ResponseTime)
		}
	}
}

func TestAggregationSurvivesCacheLoss(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	qb := countQuery("agg", testWin, testSlide, "")
	gen := func(_, s int) []records.Record { return genWords(23, testSlide, s, 500, 20) }
	recoveries := 0
	between := func(r int, eng *core.Engine) {
		if r == 0 {
			return
		}
		// Drop all caches from one node at each window start, the
		// Figure 9 injection.
		node := (r - 1) % 4
		eng.MR().Cluster.DropLocal(node, "cache/")
	}
	rres, bres := runBoth(t, q, qb, 6, false, gen, between)
	assertSameOutputs(t, rres, bres)
	for _, rr := range rres {
		recoveries += rr.CacheRecoveries
	}
	if recoveries == 0 {
		t.Error("cache loss should have triggered recoveries")
	}
}

func TestJoinSurvivesCacheLoss(t *testing.T) {
	q := joinQuery("join", testWin, testSlide)
	qb := joinQuery("join", testWin, testSlide)
	gen := func(src, s int) []records.Record {
		return genKV(int64(src*1000+29), testSlide, s, 50, 6)
	}
	between := func(r int, eng *core.Engine) {
		if r > 0 {
			eng.MR().Cluster.DropLocal(r%4, "cache/")
		}
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, between)
	assertSameOutputs(t, rres, bres)
}

func TestAggregationSurvivesNodeFailure(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	qb := countQuery("agg", testWin, testSlide, "")
	gen := func(_, s int) []records.Record { return genWords(31, testSlide, s, 400, 15) }
	between := func(r int, eng *core.Engine) {
		if r == 2 {
			// Kill a node outright: its DFS replicas re-replicate and
			// its caches are rebuilt elsewhere.
			eng.MR().DFS.FailNode(1)
			eng.MR().Cluster.FailNode(1)
		}
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, between)
	assertSameOutputs(t, rres, bres)
}

func TestAdaptiveEngineSubdividesUnderSpike(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	// Heavy data: every window takes longer than the slide, forcing
	// the forecast over the deadline.
	gen := func(_, s int) []records.Record { return genWords(41, testSlide, s, 2000, 40) }
	slow := iocost.Default()
	slow.DiskReadBps /= 20000
	slow.DiskWriteBps /= 20000
	slow.NetBps /= 20000
	slow.MapCPUBps /= 20000
	slow.ReduceCPUBps /= 20000
	slow.SortBps /= 20000
	slow.TaskOverhead = 10 * time.Millisecond
	eng := core.MustNewEngine(core.Config{MR: newRigCost(2, 3, slow), Query: q, Adaptive: true})
	spec := q.Spec()
	slidesPerWin := int(spec.PanesPerWindow() / spec.PanesPerSlide())
	fed := 0
	sawProactive := false
	for r := 0; r < 5; r++ {
		for ; fed < slidesPerWin+r; fed++ {
			if err := eng.Ingest(0, gen(0, fed)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.RunNext()
		if err != nil {
			t.Fatal(err)
		}
		if res.Proactive {
			sawProactive = true
			if res.SubPanes < 2 {
				t.Errorf("proactive recurrence %d should use sub-panes, got %d", r, res.SubPanes)
			}
		}
	}
	if !sawProactive {
		t.Error("sustained overload should switch the engine to proactive mode")
	}
	if !eng.Proactive() {
		t.Error("engine should remain proactive under sustained overload")
	}
}

func TestProactiveOutputStillCorrect(t *testing.T) {
	// Force proactive mode and verify outputs still match the
	// baseline (early partial processing must not change results).
	q := countQuery("agg", testWin, testSlide, "")
	qb := countQuery("agg", testWin, testSlide, "")
	gen := func(_, s int) []records.Record { return genWords(47, testSlide, s, 600, 20) }
	between := func(r int, eng *core.Engine) {
		if err := eng.ForceProactive(2); err != nil {
			t.Fatal(err)
		}
	}
	rres, bres := runBoth(t, q, qb, 5, false, gen, between)
	assertSameOutputs(t, rres, bres)
}

func TestCrossQueryCacheSharing(t *testing.T) {
	mr := newRig(4, 5)
	ctrl := core.NewController()
	q1 := countQuery("agg1", testWin, testSlide, "clicks")
	q2 := countQuery("agg2", testWin, testSlide, "clicks")
	e1 := core.MustNewEngine(core.Config{MR: mr, Query: q1, Controller: ctrl})
	e2 := core.MustNewEngine(core.Config{MR: mr, Query: q2, Controller: ctrl})

	gen := func(s int) []records.Record { return genWords(53, testSlide, s, 300, 10) }
	for s := 0; s < 3; s++ {
		if err := e1.Ingest(0, gen(s)); err != nil {
			t.Fatal(err)
		}
		if err := e2.Ingest(0, gen(s)); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := e1.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(sortedClone(r1.Output), sortedClone(r2.Output)) {
		t.Error("identical shared-source queries should agree")
	}
	// The second engine found every pane's reduce-input cache already
	// present (group claims keep shared caches alive across sibling
	// queries' expiries), so it read nothing from DFS.
	if r2.Stats.BytesRead != 0 {
		t.Errorf("sharing engine read %d DFS bytes, want 0", r2.Stats.BytesRead)
	}
	if r1.Stats.BytesRead == 0 {
		t.Error("first engine should have read the panes")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := core.NewEngine(core.Config{}); err == nil {
		t.Error("missing runtime should fail")
	}
	if _, err := core.NewEngine(core.Config{MR: newRig(2, 1)}); err == nil {
		t.Error("missing query should fail")
	}
	bad := countQuery("x", testWin, testSlide, "")
	bad.Merge = nil
	if _, err := core.NewEngine(core.Config{MR: newRig(2, 1), Query: bad}); err == nil {
		t.Error("single-source query without Merge should fail")
	}
}

func TestIngestValidation(t *testing.T) {
	eng := core.MustNewEngine(core.Config{MR: newRig(2, 1), Query: countQuery("agg", testWin, testSlide, "")})
	if err := eng.Ingest(5, nil); err == nil {
		t.Error("bad source index should fail")
	}
}

func TestRecurrenceMetadata(t *testing.T) {
	q := countQuery("agg", testWin, testSlide, "")
	eng := core.MustNewEngine(core.Config{MR: newRig(2, 7), Query: q})
	for s := 0; s < 3; s++ {
		eng.Ingest(0, genWords(3, testSlide, s, 100, 5))
	}
	res, err := eng.RunNext()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recurrence != 0 || res.WindowLo != 0 || res.WindowHi != 2 {
		t.Errorf("metadata wrong: %+v", res)
	}
	if res.TriggerAt != simtime.Time(testWin) {
		t.Errorf("trigger = %v, want %v", res.TriggerAt, simtime.Time(testWin))
	}
	if res.ResponseTime <= 0 || res.CompletedAt != res.TriggerAt.Add(res.ResponseTime) {
		t.Errorf("time accounting inconsistent: %+v", res)
	}
	if eng.NextRecurrence() != 1 {
		t.Error("engine should advance")
	}
}

// Property-style check across several seeds: outputs always match the
// baseline for both query shapes.
func TestEquivalenceAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("agg-seed%d", seed), func(t *testing.T) {
			q := countQuery("agg", testWin, testSlide, "")
			qb := countQuery("agg", testWin, testSlide, "")
			gen := func(_, s int) []records.Record {
				return genWords(200+seed*31, testSlide, s, 150+int(seed)*70, 12)
			}
			rres, bres := runBoth(t, q, qb, 4, false, gen, nil)
			assertSameOutputs(t, rres, bres)
		})
		t.Run(fmt.Sprintf("join-seed%d", seed), func(t *testing.T) {
			q := joinQuery("join", testWin, testSlide)
			qb := joinQuery("join", testWin, testSlide)
			gen := func(src, s int) []records.Record {
				return genKV(seed*77+int64(src*1000), testSlide, s, 40+int(seed)*25, 7)
			}
			rres, bres := runBoth(t, q, qb, 4, false, gen, nil)
			assertSameOutputs(t, rres, bres)
		})
	}
}
