package core

import (
	"reflect"
	"runtime"

	"redoop/internal/lineage"
	"redoop/internal/window"
)

// funcSymbol resolves a map/reduce/partition function to its runtime
// symbol name — the operator identity the plan fingerprint hashes.
// Symbols are resolved from the binary's function table, so they are
// stable across -workers settings, recurrences and runs of one build;
// "-" stands for an absent operator.
func funcSymbol(fn any) string {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.Kind() != reflect.Func || v.IsNil() {
		return "-"
	}
	if f := runtime.FuncForPC(v.Pointer()); f != nil {
		return f.Name()
	}
	return "-"
}

// lineagePlan renders the query as a lineage.Plan: the canonical
// operator lineage (window geometry, per-source map symbols, combine /
// reduce / merge / partition symbols, reducer arity) that determines a
// pane's cached bytes given the same raw records. Fingerprint(lineagePlan(q))
// is the seam a ReStore-style cross-job reuse layer matches against.
func lineagePlan(q *Query, frames []window.Frame) lineage.Plan {
	spec := q.Spec()
	p := lineage.Plan{
		WindowKind:  spec.Kind.String(),
		WinUnits:    spec.Win,
		SlideUnits:  spec.Slide,
		PaneUnits:   frames[0].Pane,
		Combine:     funcSymbol(q.Combine),
		Reduce:      funcSymbol(q.Reduce),
		Merge:       funcSymbol(q.Merge),
		Partition:   funcSymbol(q.Partition),
		NumReducers: q.NumReducers,
	}
	for i, s := range q.Sources {
		p.Sources = append(p.Sources, lineage.PlanSource{
			Name:     s.Name,
			CacheKey: s.CacheKey,
			Map:      funcSymbol(q.Maps[i]),
		})
	}
	return p
}
