package core

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/simtime"
)

// Ready is the availability state of a data partition in the
// window-aware cache controller (paper §4.2): 0 not available, 1
// available in HDFS (raw pane file only), 2 cached on a task node's
// local file system.
type Ready int

const (
	NotAvailable   Ready = 0
	HDFSAvailable  Ready = 1
	CacheAvailable Ready = 2
)

// String names the ready state.
func (r Ready) String() string {
	switch r {
	case NotAvailable:
		return "not-available"
	case HDFSAvailable:
		return "hdfs-available"
	case CacheAvailable:
		return "cache-available"
	default:
		return fmt.Sprintf("Ready(%d)", int(r))
	}
}

// Signature is one cache signature row of the window-aware cache
// controller (paper Table 2): the consolidated master-side view of one
// cache on one task node, with the per-query done mask that drives
// purge notifications.
type Signature struct {
	PID   string
	NID   int
	Type  CacheType
	Ready Ready
	// ReadyAt is the virtual instant the cache became usable; reduce
	// tasks consuming it cannot start earlier.
	ReadyAt simtime.Time
	// Bytes is the cache's size, used by the cache-aware scheduler's
	// C_task cost term.
	Bytes int64
	// doneQueryMask has one bit per registered query; a set bit means
	// that query no longer needs this cache.
	doneQueryMask []bool
}

// DoneMask returns a copy of the signature's per-query done bits.
func (s *Signature) DoneMask() []bool {
	return append([]bool(nil), s.doneQueryMask...)
}

// allDone reports whether every query is finished with the cache.
func (s *Signature) allDone() bool {
	for _, d := range s.doneQueryMask {
		if !d {
			return false
		}
	}
	return true
}

// Controller is the window-aware cache controller housed on the master
// node (paper §4.2): it consolidates all task nodes' local cache
// registries, maintains cache signatures, and sends purge notifications
// when a cache's doneQueryMask fills.
type Controller struct {
	mu         sync.Mutex
	queries    []string
	groups     map[string][]int      // cache-sharing groups: scope -> query indices
	sigs       map[string]*Signature // keyed by pid|type
	registries map[int]*Registry

	// obs counts signature registrations, purge notifications, ready
	// downgrades (cache loss rollbacks) and drops; log mirrors the purge
	// and rollback events as Debug lines. Both may be nil.
	obs *obs.Observer
	log *slog.Logger

	// onTransition, when set, observes every ready-state change of
	// every signature (Register refreshes included). Invoked with the
	// controller lock held: the hook must record and return, never
	// call back into the controller.
	onTransition func(pid string, typ CacheType, from, to Ready)

	// onPurge, when set, observes every signature removal — the purge
	// notification of MarkQueryDone and the silent Drop — so layers
	// advertising caches by signature (the cross-query reuse index) can
	// invalidate immediately. Invoked with the controller lock held:
	// the hook must record and return, never call back into the
	// controller.
	onPurge func(pid string, typ CacheType)
}

// NewController builds an empty controller.
func NewController() *Controller {
	return &Controller{
		groups:     make(map[string][]int),
		sigs:       make(map[string]*Signature),
		registries: make(map[int]*Registry),
	}
}

// SetTransitionHook installs (or, with nil, removes) an observer of
// every signature ready-state change. The §5-legal transitions are
// upgrades/refreshes (to ≥ from) and the cache-loss rollback
// CacheAvailable→HDFSAvailable; verification tooling uses the hook to
// flag anything else. The hook runs under the controller lock and must
// not call back into the controller.
func (c *Controller) SetTransitionHook(fn func(pid string, typ CacheType, from, to Ready)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onTransition = fn
}

// SetPurgeHook installs (or, with nil, removes) an observer of every
// signature removal — MarkQueryDone's purge notification and Drop. The
// hook runs under the controller lock and must not call back into the
// controller. Engines sharing one controller install equivalent hooks
// (the last install wins), mirroring SetTransitionHook's semantics.
func (c *Controller) SetPurgeHook(fn func(pid string, typ CacheType)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPurge = fn
}

// SetObserver attaches the observability layer; nil detaches it.
func (c *Controller) SetObserver(o *obs.Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = o
}

// SetLogger attaches a logger for cache lifecycle Debug events; nil
// detaches it.
func (c *Controller) SetLogger(l *slog.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log = l
}

// AttachRegistry registers a task node's local cache registry with the
// controller; this models the heartbeat synchronization channel between
// Local Cache Managers and the master.
func (c *Controller) AttachRegistry(r *Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registries[r.NodeID()] = r
}

// Registry returns the attached registry of a node, or nil.
func (c *Controller) Registry(node int) *Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registries[node]
}

// RegisterQuery adds a query to the controller and returns its bit
// index in every signature's doneQueryMask. Existing signatures grow a
// bit initialized per usedBy semantics at Register time; registering
// queries after caches exist marks the new bit done (the cache predates
// the query and is not owed to it).
func (c *Controller) RegisterQuery(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries = append(c.queries, name)
	idx := len(c.queries) - 1
	for _, s := range c.sigs {
		s.doneQueryMask = append(s.doneQueryMask, true)
	}
	return idx
}

// JoinGroup adds query q to a cache-sharing group. Caches registered
// with the group's full membership as usedBy are purged only when
// every member releases them (the doneQueryMask semantics of §4.2).
func (c *Controller) JoinGroup(group string, q int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.groups[group] {
		if m == q {
			return
		}
	}
	c.groups[group] = append(c.groups[group], q)
}

// Group returns a cache-sharing group's member query indices.
func (c *Controller) Group(group string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.groups[group]...)
}

// Queries returns the registered query names in bit order.
func (c *Controller) Queries() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.queries...)
}

// Register records (or refreshes) a cache signature. usedBy lists the
// query indices that will consume this cache; all other queries' bits
// start done, as in the paper's initialization. Re-registering an
// existing signature (e.g. a shared source cache created by a sibling
// query, or a cache rebuilt after loss) updates its location and state
// and clears the usedBy queries' bits without disturbing other
// queries' claims.
func (c *Controller) Register(pid string, typ CacheType, nid int, ready Ready, readyAt simtime.Time, bytes int64, usedBy []int) *Signature {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sigs[entryKey(pid, typ)]
	if !ok {
		mask := make([]bool, len(c.queries))
		for i := range mask {
			mask[i] = true
		}
		s = &Signature{PID: pid, Type: typ, doneQueryMask: mask}
		c.sigs[entryKey(pid, typ)] = s
	}
	if c.onTransition != nil {
		from := NotAvailable
		if ok {
			from = s.Ready
		}
		c.onTransition(pid, typ, from, ready)
	}
	c.obs.Counter("redoop_cache_registrations_total", obs.L("type", typ.String())).Inc()
	c.obs.Counter("redoop_cache_registered_bytes_total", obs.L("type", typ.String())).Add(float64(bytes))
	s.NID = nid
	s.Ready = ready
	s.ReadyAt = readyAt
	s.Bytes = bytes
	for _, q := range usedBy {
		if q >= 0 && q < len(s.doneQueryMask) {
			s.doneQueryMask[q] = false
		}
	}
	return s
}

// ClaimUser marks query q as an active consumer of a cache (clears its
// done bit), delaying purge until the query releases it with
// MarkQueryDone. Claiming an unknown cache is a no-op returning false.
func (c *Controller) ClaimUser(pid string, typ CacheType, q int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sigs[entryKey(pid, typ)]
	if !ok {
		return false
	}
	if q >= 0 && q < len(s.doneQueryMask) {
		s.doneQueryMask[q] = false
	}
	return true
}

// Lookup returns the signature for a cache, if any.
func (c *Controller) Lookup(pid string, typ CacheType) (*Signature, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sigs[entryKey(pid, typ)]
	return s, ok
}

// Signatures returns all signatures sorted by pid then type.
func (c *Controller) Signatures() []*Signature {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Signature, 0, len(c.sigs))
	for _, s := range c.sigs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// SetReady transitions a cache's ready state (e.g. 2→1 on cache loss
// during failure recovery, §5). Unknown caches are ignored.
func (c *Controller) SetReady(pid string, typ CacheType, ready Ready, at simtime.Time, nid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sigs[entryKey(pid, typ)]; ok {
		if c.onTransition != nil {
			c.onTransition(pid, typ, s.Ready, ready)
		}
		if ready < s.Ready {
			// A downgrade is the §5 failure-recovery rollback: the cache
			// was lost and consumers must fall back to HDFS or recompute.
			c.obs.Counter("redoop_cache_rollbacks_total", obs.L("type", typ.String())).Inc()
			c.obs.Emit(at, eventlog.CacheRollback, "", eventlog.CacheData{
				PID: pid, CacheType: typ.String(), Node: nid,
				Bytes: s.Bytes, Recurrence: -1,
			})
			if c.log != nil {
				c.log.Debug("cache ready state rolled back",
					"pid", pid, "type", typ.String(),
					"from", s.Ready.String(), "to", ready.String(), "node", nid)
			}
		}
		s.Ready = ready
		s.ReadyAt = at
		s.NID = nid
	}
}

// MarkQueryDone sets query q's bit on a cache's doneQueryMask. When the
// mask fills, the controller sends a purge notification to the cache's
// node: the local registry entry is marked expired (the node purges it
// on its next periodic or on-demand cycle) and the signature is
// dropped. It reports whether the notification was sent.
func (c *Controller) MarkQueryDone(pid string, typ CacheType, q int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sigs[entryKey(pid, typ)]
	if !ok {
		return false
	}
	if q >= 0 && q < len(s.doneQueryMask) {
		s.doneQueryMask[q] = true
	}
	if !s.allDone() {
		return false
	}
	// Notify every node holding a copy, not just the signature's
	// current home: re-homing and cross-query copies can leave sibling
	// replicas of the same pid on other nodes, and a purge notice that
	// reaches only s.NID would strand them — unexpired, resident, and
	// invisible to every future notification once the signature is
	// gone (the oracle flags exactly that as orphaned bytes).
	for _, reg := range c.registries {
		reg.MarkExpired(pid, typ)
	}
	delete(c.sigs, entryKey(pid, typ))
	if c.onPurge != nil {
		c.onPurge(pid, typ)
	}
	c.obs.Counter("redoop_cache_purge_notices_total", obs.L("type", typ.String())).Inc()
	c.obs.Emit(s.ReadyAt, eventlog.CachePurge, "", eventlog.CacheData{
		PID: pid, CacheType: typ.String(), Node: s.NID,
		Bytes: s.Bytes, Recurrence: -1,
	})
	if c.log != nil {
		c.log.Debug("cache purge notification sent",
			"pid", pid, "type", typ.String(), "node", s.NID, "bytes", s.Bytes)
	}
	return true
}

// Drop removes a signature without notifying anyone — used when the
// underlying node died and its registry is gone.
func (c *Controller) Drop(pid string, typ CacheType) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sigs[entryKey(pid, typ)]; ok {
		c.obs.Counter("redoop_cache_drops_total", obs.L("type", typ.String())).Inc()
		if c.onPurge != nil {
			c.onPurge(pid, typ)
		}
	}
	delete(c.sigs, entryKey(pid, typ))
}
