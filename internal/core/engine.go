package core

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"

	"redoop/internal/account"
	"redoop/internal/colfmt"
	"redoop/internal/health"
	"redoop/internal/lineage"
	"redoop/internal/mapreduce"
	"redoop/internal/obs"
	"redoop/internal/obs/eventlog"
	"redoop/internal/parallel"
	"redoop/internal/records"
	"redoop/internal/reuse"
	"redoop/internal/simtime"
	"redoop/internal/window"
)

// Config assembles a Redoop engine for one recurring query.
type Config struct {
	// MR is the underlying MapReduce runtime (required).
	MR *mapreduce.Engine
	// Query is the recurring query to execute (required).
	Query *Query
	// Controller may be shared between engines so caches and purge
	// masks span queries; nil creates a private controller.
	Controller *Controller
	// DataDir is the DFS directory pane files live under; default
	// "/redoop/<query name>".
	DataDir string
	// Adaptive enables the §3.3 adaptive input partitioning and
	// proactive execution. Non-adaptive Redoop still caches and
	// schedules window-aware; it just never subdivides panes or starts
	// early.
	Adaptive bool
	// Analyzer overrides the default analyzer (block size taken from
	// the DFS, default adaptation thresholds).
	Analyzer *Analyzer
	// DisableCacheReuse is an ablation knob: the engine still
	// partitions into panes and runs pane-granular tasks, but never
	// reuses a cache from an earlier recurrence — isolating how much
	// of Redoop's win is the caching itself versus the pane-shaped
	// execution.
	DisableCacheReuse bool
	// CacheObliviousPlacement is an ablation knob: cache-fed tasks
	// are placed on the earliest-available node regardless of where
	// their caches live, disabling the C_task term of Equation 4.
	CacheObliviousPlacement bool
	// Logger receives the engine's operational events (recurrence
	// summaries, cache recoveries, adaptive re-planning) at
	// Debug/Info levels. Nil disables logging. The logger is also
	// propagated to the scheduler and cache controller for their
	// placement and purge Debug events.
	Logger *slog.Logger
	// Obs receives the engine's metrics and trace spans (recurrence
	// spans, cache hit/miss counters, Equation 4 placement outcomes).
	// Nil falls back to MR.Obs so one observer set on the MapReduce
	// runtime covers the whole stack; if both are nil, instrumentation
	// is disabled at ~zero cost.
	Obs *obs.Observer
	// Hub optionally provides shared sources: a source whose CacheKey
	// names a source declared on the hub is packed once hub-side and
	// ingested through the hub rather than through this engine.
	Hub *SourceHub
	// Health may be shared between engines so one monitor judges every
	// query; nil creates a private monitor with default thresholds.
	// The engine registers its query at construction (deadline = the
	// slide for time-based windows) and reports every recurrence.
	Health *health.Monitor
	// Account optionally attaches a cost ledger, usually shared between
	// engines so per-query costs land in one place. The engine registers
	// its query (and tenant) at construction, hooks every slot, cache
	// and shuffle charge, and claims its DFS data directory so the DFS
	// attributes read/write/replication bytes to it. Nil disables
	// accounting at ~zero cost.
	Account *account.Ledger
	// Lineage optionally attaches a provenance store, usually shared
	// between engines so one store holds every query's derivation DAG.
	// The engine records, at its serial commit points, a derivation node
	// for every pane cache and emitted window — input batches down to
	// record-offset ranges, the plan fingerprint, cache copy history,
	// and downstream consumers — and propagates the store to the
	// MapReduce runtime (task attempts) and DFS (replica history). Nil
	// disables provenance at ~zero cost.
	Lineage *lineage.Store
	// Reuse optionally attaches a cross-query pane reuse index, shared
	// between engines over the same controller. Eligible engines
	// (single-source aggregations over a CacheKey-shared stream with a
	// Merge) publish every freshly built pane reduce-output into it and
	// probe it — by operator fingerprint and pane range — before
	// computing a pane, copying an exact hit or composing a
	// finer-grained subsumption hit with Merge instead of re-running
	// map+shuffle+reduce. Nil disables cross-query reuse at ~zero cost.
	Reuse *reuse.Index
	// CacheDiskLimit bounds each node's local bytes (panes + caches).
	// When a recurrence's periodic purge cannot bring a node under the
	// limit with expired entries alone, the engine evicts unexpired
	// reduce-input caches of single-source queries — the only caches
	// rebuildable from retained pane files without violating the
	// published window — ranked by ascending benefit density
	// (recompute·(1+hits)/bytes) from the cost ledger. 0 disables the
	// limit and keeps pure-expiry purging only.
	CacheDiskLimit int64
}

// RecurrenceResult reports one execution of the recurring query.
type RecurrenceResult struct {
	Recurrence int
	// WindowLo and WindowHi are the window's inclusive pane range.
	WindowLo, WindowHi window.PaneID
	// Output is the window's final result, deterministic order
	// (partitions ascending, keys ascending within each merge group).
	Output []records.Pair
	// Stats aggregates all MapReduce work of this recurrence.
	Stats mapreduce.Stats
	// TriggerAt is the window close instant the recurrence was due.
	TriggerAt simtime.Time
	// CompletedAt is when the final output was ready.
	CompletedAt simtime.Time
	// ResponseTime is CompletedAt - TriggerAt: the per-window
	// processing time the paper's Figures 6–9 plot.
	ResponseTime simtime.Duration
	// NewPanes / ReusedPanes count pane-level work per source
	// combined; NewPairs / ReusedPairs count pane pairs for joins.
	NewPanes, ReusedPanes int
	NewPairs, ReusedPairs int
	// CacheRecoveries counts caches found lost and rebuilt (§5).
	CacheRecoveries int
	// Proactive reports whether this recurrence ran in proactive mode.
	Proactive bool
	// SubPanes is the partition plan's subdivision factor in effect.
	SubPanes int
}

// Engine executes one recurring query incrementally over the MapReduce
// runtime: panes are mapped and shuffled once, reduce-side caches are
// reused across overlapping windows, and the cache-aware scheduler
// keeps work near its caches (paper §2.3).
// paneSource is one source's pane-file supplier: a query-private
// Packer or a shared view from a SourceHub.
type paneSource interface {
	Ingest([]records.Record) error
	FlushThrough(unit int64) error
	PaneInputs(p window.PaneID) ([]PaneInput, bool)
	PaneBytes(p window.PaneID) int64
	DropPaneFiles(p window.PaneID) error
	Plan() PartitionPlan
	SetPlan(PartitionPlan) error
	// NewestUnit is the ingestion watermark: the exclusive upper unit
	// bound of the newest pane holding data (0 before any ingestion).
	NewestUnit() int64
}

type Engine struct {
	// mu guards the engine state a concurrent debug server reads —
	// plans, proactive, next, curTrigger, expiredBound and the forecast
	// pair. RunNext is the sole writer; it takes the lock only around
	// its writes, readers take it around every access.
	mu       sync.Mutex
	mr       *mapreduce.Engine
	query    *Query
	ctrl     *Controller
	sched    *Scheduler
	analyzer *Analyzer
	profiler *Profiler
	srcs     []paneSource
	packers  []*Packer // private packers; nil entries for shared sources
	shared   []bool
	plans    []PartitionPlan
	managers []*CacheManager
	matrix   *StatusMatrix

	frames []window.Frame // per-source window alignment

	log *slog.Logger
	obs *obs.Observer

	// healthMon judges the query's SLO compliance; healthTrk is this
	// query's registration on it. Always non-nil after NewEngine.
	healthMon *health.Monitor
	healthTrk *health.Tracker

	// acct is the (possibly shared, possibly nil) cost ledger;
	// acctName is this query's account on it — the query name, or a
	// suffixed variant when several engines run same-named queries.
	acct     *account.Ledger
	acctName string

	// lin is the (possibly shared, possibly nil) provenance store;
	// planFP is the query's canonical plan fingerprint, computed even
	// when lineage is disabled so callers can always read it; opFP the
	// geometry-independent operator fingerprint the reuse index keys on.
	lin    *lineage.Store
	planFP string
	opFP   string

	// reuseIdx is the (possibly shared, possibly nil) cross-query
	// reuse index.
	reuseIdx *reuse.Index

	// lastForecast is the profiler's previous next-recurrence forecast,
	// compared against the realized response time to expose the Holt
	// model's error as a metric.
	lastForecast simtime.Duration
	haveForecast bool

	// curTrigger is the trigger instant of the recurrence in flight —
	// the timestamp stamped on cache lookup/registration events, whose
	// call sites have no better notion of "now".
	curTrigger simtime.Time

	// cacheLimit mirrors Config.CacheDiskLimit; evictable tracks the
	// pids this engine registered that cost-based replacement may
	// target (unexpired agg reduce-input caches); evictLog records
	// every replacement decision in order, for determinism audits.
	cacheLimit int64
	evictable  map[string]bool
	evictLog   []string

	qIdx      int
	adaptive  bool
	proactive bool
	noReuse   bool
	// brokenRecovery disables the §5 cache-loss recovery path (see
	// BreakRecoveryForTest); never set outside oracle self-validation.
	brokenRecovery bool
	next           int // next recurrence to run

	expiredBound []window.PaneID // per source: panes below are retired
}

// NewEngine validates the query and assembles all Redoop components.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.MR == nil {
		return nil, fmt.Errorf("core: engine needs a MapReduce runtime")
	}
	if cfg.Query == nil {
		return nil, fmt.Errorf("core: engine needs a query")
	}
	if err := cfg.Query.Validate(); err != nil {
		return nil, err
	}
	q := cfg.Query
	ctrl := cfg.Controller
	if ctrl == nil {
		ctrl = NewController()
	}
	analyzer := cfg.Analyzer
	if analyzer == nil {
		var err error
		analyzer, err = NewAnalyzer(cfg.MR.DFS.BlockSize())
		if err != nil {
			return nil, err
		}
	}
	profiler, err := NewProfiler(DefaultAlpha, DefaultBeta)
	if err != nil {
		return nil, err
	}
	frames, err := q.Frames()
	if err != nil {
		return nil, err
	}
	matrix, err := NewStatusMatrixFrames(frames)
	if err != nil {
		return nil, err
	}
	dataDir := cfg.DataDir
	if dataDir == "" {
		dataDir = "/redoop/" + q.Name
	}
	e := &Engine{
		mr:       cfg.MR,
		query:    q,
		ctrl:     ctrl,
		sched:    NewScheduler(cfg.MR.Cluster, cfg.MR.Cost),
		analyzer: analyzer,
		profiler: profiler,
		matrix:   matrix,
		frames:   frames,
		adaptive: cfg.Adaptive,
		noReuse:  cfg.DisableCacheReuse,

		cacheLimit: cfg.CacheDiskLimit,
		evictable:  make(map[string]bool),
	}
	// Retirement scans start at pane zero: a source whose window is
	// smaller than the query's largest (positive frame offset) may
	// receive data before its first window starts; those panes are
	// vacuously exhausted and retire on the first pass.
	e.expiredBound = make([]window.PaneID, len(q.Sources))
	e.sched.CacheOblivious = cfg.CacheObliviousPlacement
	e.log = cfg.Logger
	e.obs = cfg.Obs
	if e.obs == nil {
		e.obs = cfg.MR.Obs
	}
	if cfg.MR.Obs == nil {
		// One observer covers the whole stack: map/reduce task metrics
		// flow to the same registry as the engine's recurrence series.
		cfg.MR.Obs = e.obs
	}
	e.sched.SetObserver(e.obs)
	e.sched.SetLogger(cfg.Logger)
	e.sched.SetQuery(q.Name)
	// A shared controller keeps whatever observer/logger it already has;
	// an engine only fills in a missing one so a later un-instrumented
	// sibling cannot detach an earlier sibling's instrumentation.
	if e.obs != nil {
		ctrl.SetObserver(e.obs)
	}
	if cfg.Logger != nil {
		ctrl.SetLogger(cfg.Logger)
	}
	// The SLO monitor follows the controller's sharing rules: a shared
	// monitor keeps whatever observer it already has; an engine only
	// fills in a missing one. The per-recurrence deadline is the slide
	// — the instant the next window is due — for time-based windows;
	// count-based windows carry no deadline.
	mon := cfg.Health
	if mon == nil {
		mon = health.NewMonitor(health.DefaultConfig())
	}
	if mon.Observer() == nil && e.obs != nil {
		mon.SetObserver(e.obs)
	}
	e.healthMon = mon
	var deadline simtime.Duration
	if q.Spec().Kind == window.TimeBased {
		deadline = simtime.Duration(q.Spec().Slide)
	}
	e.healthTrk = mon.Register(q.Name, deadline)
	// The cost ledger follows the same sharing rules: fill in a missing
	// observer, never detach one. The engine claims its DFS data
	// directory so reads/writes/replication under it are attributed to
	// this query, and propagates the ledger to the MapReduce runtime so
	// task execution charges land on the same accounts.
	e.acct = cfg.Account
	e.acctName = e.acct.Register(q.Name, q.TenantID)
	if e.acct != nil {
		if e.acct.Observer() == nil && e.obs != nil {
			e.acct.SetObserver(e.obs)
		}
		if cfg.MR.Account == nil {
			cfg.MR.Account = e.acct
		}
		cfg.MR.DFS.SetAccount(e.acct)
		cfg.MR.DFS.AttributePrefix(dataDir+"/", e.acctName)
	}
	// The provenance store follows the same sharing rules: propagate it
	// to the MapReduce runtime (task-attempt provenance) and the DFS
	// (pane-file replica history, bounded to this query's data
	// directory). The plan fingerprint is computed unconditionally — it
	// is the reuse seam — but only recorded when a store is attached.
	plan := lineagePlan(q, frames)
	e.planFP = lineage.Fingerprint(plan)
	e.opFP = lineage.OpFingerprint(plan)
	e.lin = cfg.Lineage
	if e.lin != nil {
		e.lin.RecordPlan(e.planFP, plan)
		if cfg.MR.Lineage == nil {
			cfg.MR.Lineage = e.lin
		}
		cfg.MR.DFS.SetLineage(e.lin)
		cfg.MR.DFS.LineagePrefix(dataDir + "/")
	}
	// The reuse index follows the controller's sharing rules: engines
	// sharing one controller share one index, and each install of the
	// purge hook / ROI signal replaces an equivalent closure. The hook
	// keeps the index honest — a purged or dropped signature can never
	// linger as an advertised reuse source.
	if cfg.Reuse != nil {
		e.reuseIdx = cfg.Reuse
		idx := cfg.Reuse
		ctrl.SetPurgeHook(func(pid string, typ CacheType) {
			idx.DropPID(pid, int(typ))
		})
		if e.acct != nil {
			ledger := e.acct
			idx.SetROI(func(query string) float64 { return ledger.CacheROI(query) })
		}
	}
	matrix.SetObserver(e.obs, q.Name)
	e.qIdx = ctrl.RegisterQuery(q.Name)
	for i, src := range q.Sources {
		if src.CacheKey != "" {
			ctrl.JoinGroup(q.rinScope(i), e.qIdx)
		}
	}
	for _, n := range cfg.MR.Cluster.Nodes() {
		reg := ctrl.Registry(n.ID)
		if reg == nil {
			reg = NewRegistry(n)
			ctrl.AttachRegistry(reg)
		}
		m := NewCacheManager(reg)
		m.DiskLimit = cfg.CacheDiskLimit
		e.managers = append(e.managers, m)
	}
	for i, src := range q.Sources {
		if cfg.Hub != nil && src.CacheKey != "" && cfg.Hub.Has(src.CacheKey) {
			view, err := cfg.Hub.attach(src.CacheKey, frames[i].Pane)
			if err != nil {
				return nil, err
			}
			e.srcs = append(e.srcs, view)
			e.packers = append(e.packers, nil)
			e.shared = append(e.shared, true)
			e.plans = append(e.plans, view.Plan())
			continue
		}
		rate := src.RateBytesPerUnit
		plan, err := analyzer.PlanFrame(frames[i], rate)
		if err != nil {
			return nil, err
		}
		if rate == 0 {
			// Unknown rate: Algorithm 1 cannot size files, so default
			// to one pane per file until the profiler learns better.
			plan.PanesPerFile = 1
		}
		pk, err := NewPacker(cfg.MR.DFS, src.Name, fmt.Sprintf("%s/%s", dataDir, src.Name), frames[i], plan)
		if err != nil {
			return nil, err
		}
		pk.SetObserver(e.obs, q.Name)
		e.plans = append(e.plans, plan)
		e.packers = append(e.packers, pk)
		e.srcs = append(e.srcs, pk)
		e.shared = append(e.shared, false)
	}
	return e, nil
}

// MustNewEngine is NewEngine that panics on error.
func MustNewEngine(cfg Config) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Query returns the engine's query.
func (e *Engine) Query() *Query { return e.query }

// MR returns the underlying MapReduce runtime.
func (e *Engine) MR() *mapreduce.Engine { return e.mr }

// BreakRecoveryForTest sabotages the §5 cache-loss recovery path: a
// lost cache is treated as a hit (no ready 2→1 rollback, no dependent
// task re-insertion) and its missing bytes read back empty. It exists
// solely to prove the differential oracle detects a broken recovery
// path; production code must never call it.
func (e *Engine) BreakRecoveryForTest() { e.brokenRecovery = true }

// ForceProactive overrides the adaptive decision, pinning the engine to
// proactive mode with the given sub-pane factor (1 restores whole
// panes and leaves proactive mode). Operators use it to bypass the
// profiler when a load spike is known ahead of time; subsequent
// adaptive re-planning may override it again.
func (e *Engine) ForceProactive(subPanes int) error {
	if subPanes < 1 {
		return fmt.Errorf("core: sub-pane factor must be >= 1, got %d", subPanes)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.plans {
		if e.shared[i] {
			continue // shared sources keep their declared granularity
		}
		plan := e.plans[i]
		plan.SubPanes = subPanes
		if err := e.srcs[i].SetPlan(plan); err != nil {
			return err
		}
		e.plans[i] = plan
	}
	e.proactive = subPanes > 1
	return nil
}

// Controller returns the (possibly shared) cache controller.
func (e *Engine) Controller() *Controller { return e.ctrl }

// Account returns the engine's cost ledger (nil when accounting is
// disabled) and AccountName the account its costs are attributed to.
func (e *Engine) Account() *account.Ledger { return e.acct }

// AccountName returns the ledger account name of this engine's query.
func (e *Engine) AccountName() string { return e.acctName }

// Lineage returns the engine's provenance store (nil when lineage is
// disabled).
func (e *Engine) Lineage() *lineage.Store { return e.lin }

// PlanFingerprint returns the query's canonical plan fingerprint — the
// hex SHA-256 of its operator lineage, stable across -workers settings
// and recurrences. It is always available, even without a lineage
// store.
func (e *Engine) PlanFingerprint() string { return e.planFP }

// OpFingerprint returns the query's geometry-independent operator
// fingerprint — the reuse index's matching key. Always available, even
// without a reuse index.
func (e *Engine) OpFingerprint() string { return e.opFP }

// ReuseIndex returns the engine's cross-query reuse index (nil when
// reuse is disabled).
func (e *Engine) ReuseIndex() *reuse.Index { return e.reuseIdx }

// Scheduler returns the query's cache-aware scheduler.
func (e *Engine) Scheduler() *Scheduler { return e.sched }

// Profiler returns the execution profiler.
func (e *Engine) Profiler() *Profiler { return e.profiler }

// Matrix returns the query's cache status matrix.
func (e *Engine) Matrix() *StatusMatrix { return e.matrix }

// Packer returns source src's query-private dynamic data packer, or
// nil when the source is shared through a SourceHub.
func (e *Engine) Packer(src int) *Packer { return e.packers[src] }

// PaneInputs returns pane p's physical segments for source src,
// whether private or shared.
func (e *Engine) PaneInputs(src int, p window.PaneID) ([]PaneInput, bool) {
	return e.srcs[src].PaneInputs(p)
}

// Plans returns the current partition plans per source.
func (e *Engine) Plans() []PartitionPlan {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]PartitionPlan(nil), e.plans...)
}

// Proactive reports whether the next recurrence will run proactively.
func (e *Engine) Proactive() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.proactive
}

// NextRecurrence returns the index of the next recurrence RunNext will
// execute.
func (e *Engine) NextRecurrence() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.next
}

// Ingest feeds a batch of records into source src's packer. Per the
// data model (§2.1), batches arrive in timestamp order with
// non-overlapping ranges.
func (e *Engine) Ingest(src int, recs []records.Record) error {
	if src < 0 || src >= len(e.srcs) {
		return fmt.Errorf("core: query %q has no source %d", e.query.Name, src)
	}
	if e.lin != nil && len(recs) > 0 {
		// Record the batch's provenance before delivery: which
		// contiguous record-index runs land in which pane. Ingest calls
		// are serial per the data model, so the per-source batch
		// sequence is deterministic.
		frame := e.frames[src]
		var runs []lineage.PaneRange
		start, cur := 0, frame.PaneOf(recs[0].Ts)
		for i := 1; i < len(recs); i++ {
			if p := frame.PaneOf(recs[i].Ts); p != cur {
				runs = append(runs, lineage.PaneRange{Pane: int64(cur), R: lineage.Range{Lo: start, Hi: i}})
				start, cur = i, p
			}
		}
		runs = append(runs, lineage.PaneRange{Pane: int64(cur), R: lineage.Range{Lo: start, Hi: len(recs)}})
		e.lin.RecordBatch(e.acctName, e.query.Sources[src].Name, len(recs), runs)
	}
	return e.srcs[src].Ingest(recs)
}

// timeOfUnit converts a window-unit offset to a virtual instant:
// identity for time-based windows; count-based windows have no
// intrinsic arrival time, so they trigger immediately.
func (e *Engine) timeOfUnit(u int64) simtime.Time {
	if e.query.Spec().Kind == window.TimeBased {
		return simtime.Time(u)
	}
	return 0
}

// RunNext executes the next recurrence of the query and advances the
// engine. Recurrences must run in order — windows slide monotonically.
// When several engines share one MapReduce runtime, their recurrences
// must additionally be driven in global window-close order: the slot
// timelines advance monotonically, so running a later-closing window
// first would push an earlier one's tasks behind it.
func (e *Engine) RunNext() (*RecurrenceResult, error) {
	r := e.next
	spec := e.query.Spec()
	closeUnit := e.frames[0].WindowClose(r) // shared trigger of all sources
	for _, src := range e.srcs {
		if err := src.FlushThrough(closeUnit); err != nil {
			return nil, err
		}
	}
	trigger := e.timeOfUnit(closeUnit)
	e.mu.Lock()
	e.curTrigger = trigger
	e.mu.Unlock()
	e.sched.SetRecurrence(r)
	// The forecast made for THIS recurrence at the end of the previous
	// one, captured before the profiler moves on — paired with the
	// realized response time in the recurrence.finish event so forecast
	// error is auditable per recurrence.
	prevForecast := int64(-1)
	if e.haveForecast {
		prevForecast = int64(e.lastForecast)
	}
	winLo, winHi := e.frames[0].WindowRange(r)
	e.obs.Emit(trigger, eventlog.RecurrenceStart, e.query.Name, eventlog.RecurrenceStartData{
		Recurrence: r, WindowLo: int64(winLo), WindowHi: int64(winHi),
	})
	// Reserve the recurrence's root span up front so every task span of
	// this recurrence can parent-link to it; the root itself is recorded
	// at the end once CompletedAt is known.
	root := e.obs.ReserveSpanID()
	e.mr.SpanParent = root

	var res *RecurrenceResult
	var err error
	if len(e.query.Sources) == 1 {
		res, err = e.runAggregation(r, trigger)
	} else {
		res, err = e.runJoin(r, trigger)
	}
	if err != nil {
		return nil, err
	}
	res.Proactive = e.proactive
	res.SubPanes = e.plans[0].SubPanes
	qname := e.query.Name
	mode := "reactive"
	if res.Proactive {
		mode = "proactive"
	}
	e.obs.Counter("redoop_recurrences_total", obs.L("query", qname), obs.L("mode", mode)).Inc()
	e.obs.Histogram("redoop_recurrence_seconds", obs.L("query", qname)).Observe(res.ResponseTime.Seconds())
	e.obs.Counter("redoop_panes_total", obs.L("query", qname), obs.L("kind", "new")).Add(float64(res.NewPanes))
	e.obs.Counter("redoop_panes_total", obs.L("query", qname), obs.L("kind", "reused")).Add(float64(res.ReusedPanes))
	e.obs.Counter("redoop_pane_pairs_total", obs.L("query", qname), obs.L("kind", "new")).Add(float64(res.NewPairs))
	e.obs.Counter("redoop_pane_pairs_total", obs.L("query", qname), obs.L("kind", "reused")).Add(float64(res.ReusedPairs))
	e.obs.Counter("redoop_cache_recoveries_total", obs.L("query", qname)).Add(float64(res.CacheRecoveries))
	e.obs.Task(obs.TaskSpan{
		Track: obs.QueryTrack(qname), Cat: "recurrence",
		Name:  fmt.Sprintf("recurrence %d", r),
		Start: trigger, End: res.CompletedAt, Ready: trigger, ID: root,
		Args: []obs.Label{
			obs.L("mode", mode),
			obs.L("newPanes", fmt.Sprint(res.NewPanes)),
			obs.L("reusedPanes", fmt.Sprint(res.ReusedPanes))},
	})
	e.obs.Emit(res.CompletedAt, eventlog.RecurrenceFinish, qname, eventlog.RecurrenceFinishData{
		Recurrence:      r,
		ResponseNS:      int64(res.ResponseTime),
		ForecastNS:      prevForecast,
		NewPanes:        res.NewPanes,
		ReusedPanes:     res.ReusedPanes,
		NewPairs:        res.NewPairs,
		ReusedPairs:     res.ReusedPairs,
		CacheRecoveries: res.CacheRecoveries,
		Proactive:       res.Proactive,
		SubPanes:        res.SubPanes,
	})
	if e.log != nil {
		e.log.Info("recurrence complete",
			"query", e.query.Name, "recurrence", r,
			"response", res.ResponseTime,
			"newPanes", res.NewPanes, "reusedPanes", res.ReusedPanes,
			"newTuples", res.NewPairs, "reusedTuples", res.ReusedPairs,
			"recoveries", res.CacheRecoveries, "proactive", res.Proactive)
		if res.CacheRecoveries > 0 {
			e.log.Warn("caches lost and rebuilt",
				"query", e.query.Name, "recurrence", r, "count", res.CacheRecoveries)
		}
	}

	e.linRecordWindow(r, res)
	e.retireExpired(r, res.CompletedAt)
	purged := 0
	for _, m := range e.managers {
		purged += m.Tick()
	}
	e.obs.Counter("redoop_cache_purges_total").Add(float64(purged))
	if e.log != nil && purged > 0 {
		e.log.Debug("purged expired caches", "query", e.query.Name, "count", purged)
	}
	if evicted := e.evictOverCap(r, res.CompletedAt); evicted > 0 {
		e.obs.Counter("redoop_cache_evictions_total").Add(float64(evicted))
		if e.log != nil {
			e.log.Debug("evicted caches over disk limit", "query", e.query.Name, "count", evicted)
		}
	}
	// Move the ledger's accrual watermark to the recurrence's end so
	// open residencies accrue byte·seconds through the work just done.
	e.acct.Advance(res.CompletedAt)

	// Profile and adapt for the next recurrence (§3.3).
	var windowBytes int64
	for d, src := range e.srcs {
		lo, hi := e.frames[d].WindowRange(r)
		for p := lo; p <= hi; p++ {
			windowBytes += src.PaneBytes(p)
		}
	}
	// The first recurrence is a cold start (every pane processed from
	// scratch); its execution time does not predict steady-state
	// recurrences and would poison the Holt trend, so the profiler
	// starts observing from the second recurrence.
	if r > 0 {
		e.profiler.Observe(r, res.ResponseTime, windowBytes)
		if e.haveForecast {
			errSec := (e.lastForecast - res.ResponseTime).Seconds()
			if errSec < 0 {
				errSec = -errSec
			}
			e.obs.Histogram("redoop_forecast_error_seconds", obs.L("query", qname)).Observe(errSec)
		}
	}
	if e.profiler.Ready() {
		e.mu.Lock()
		e.lastForecast = e.profiler.Forecast(1)
		e.haveForecast = true
		e.mu.Unlock()
	}
	replanned := false
	if e.adaptive && e.profiler.Ready() && spec.Kind == window.TimeBased {
		deadline := simtime.Duration(spec.Slide)
		forecast := e.profiler.Forecast(1)
		for i := range e.plans {
			if e.shared[i] {
				continue // shared sources keep their declared granularity
			}
			plan, proactive := e.analyzer.Replan(e.plans[i], forecast, deadline)
			if plan.SubPanes != e.plans[i].SubPanes {
				if err := e.srcs[i].SetPlan(plan); err != nil {
					return nil, err
				}
				replanned = true
				e.obs.Counter("redoop_replans_total", obs.L("query", qname)).Inc()
				e.obs.Instant(obs.QueryTrack(qname), "adapt", "re-plan", res.CompletedAt,
					obs.L("source", fmt.Sprint(i)),
					obs.L("subPanes", fmt.Sprint(plan.SubPanes)),
					obs.L("proactive", fmt.Sprint(proactive)))
				e.obs.Emit(res.CompletedAt, eventlog.Replan, qname, eventlog.ReplanData{
					Recurrence: r,
					Source:     i,
					SubPanes:   plan.SubPanes,
					Proactive:  proactive,
					ForecastNS: int64(forecast),
					DeadlineNS: int64(deadline),
				})
				if e.log != nil {
					e.log.Info("adaptive re-plan",
						"query", e.query.Name, "source", i,
						"forecast", forecast, "deadline", deadline,
						"subPanes", plan.SubPanes, "proactive", proactive)
				}
				e.mu.Lock()
				e.plans[i] = plan
				e.mu.Unlock()
			}
			e.mu.Lock()
			e.proactive = proactive
			e.mu.Unlock()
		}
	}

	// Health is judged last, after the adaptive decision, so the
	// anomaly detector can cross-check whether the re-planner actually
	// reacted to what it saw.
	var newest int64
	for _, src := range e.srcs {
		if u := src.NewestUnit(); u > newest {
			newest = u
		}
	}
	e.healthTrk.Observe(health.Sample{
		Recurrence:       r,
		TriggerAt:        trigger,
		CompletedAt:      res.CompletedAt,
		Response:         res.ResponseTime,
		Forecast:         simtime.Duration(max(prevForecast, int64(0))),
		HaveForecast:     prevForecast >= 0,
		ReplanFired:      replanned,
		NewestPackedUnit: newest,
		CoveredUnit:      closeUnit,
		CacheByteSeconds: e.acct.ByteSeconds(e.acctName),
	})

	e.mu.Lock()
	e.next++
	e.mu.Unlock()
	return res, nil
}

// Health returns the engine's SLO monitor (shared or private; never
// nil after NewEngine) — the source of /debug/health snapshots.
func (e *Engine) Health() *health.Monitor { return e.healthMon }

// HealthStatus returns this query's current health snapshot.
func (e *Engine) HealthStatus() health.QueryStatus { return e.healthTrk.Status() }

// cacheRef locates one registered cache.
type cacheRef struct {
	pid     string
	typ     CacheType
	node    int
	readyAt simtime.Time
	bytes   int64
	// span is the task span that produced the cached bytes, when it was
	// produced within the current recurrence; zero for caches carried
	// over from an earlier recurrence (a cache hit short-circuits the
	// dependency walk at the trigger).
	span obs.SpanID
}

// loc converts the reference into the scheduler's cost term.
func (c cacheRef) loc() CacheLoc { return CacheLoc{Node: c.node, Bytes: c.bytes} }

// cacheMeta is the provenance recorded with a cache registration: the
// task span that produced the bytes, and the recompute cost a future
// hit on this entry avoids — actual task durations where the cold run
// measured them, iocost-modeled otherwise. The profiler's cache-benefit
// ledger subtracts load costs from it.
type cacheMeta struct {
	span      obs.SpanID
	recompute simtime.Duration
	// lin, when non-nil, carries the registration's lineage context: the
	// derivation node recorded for the cached bytes at this serial
	// commit point.
	lin *linMeta
}

// linMeta is the lineage context of one cache registration: what kind
// of derivation the bytes are, which pane/partition they belong to, and
// which raw batches / upstream derivations produced them.
type linMeta struct {
	kind    string
	pane    int64
	part    int
	job     string
	batches []lineage.BatchRef
	inputs  []lineage.InputRef
}

// linBatches returns the retained raw-batch claims on pane p of source
// src (nil when lineage is disabled).
func (e *Engine) linBatches(src int, p window.PaneID) []lineage.BatchRef {
	if e.lin == nil {
		return nil
	}
	return e.lin.BatchesForPane(e.acctName, e.query.Sources[src].Name, int64(p))
}

// linInput references the derivation of cache pid/typ as an upstream
// input, carrying its insertion seq so closure checks can tell a
// legitimately evicted input from a bookkeeping hole.
func (e *Engine) linInput(pid string, typ CacheType) lineage.InputRef {
	id := lineage.DerivID(pid, int(typ))
	seq, _ := e.lin.Seq(id)
	return lineage.InputRef{ID: id, Seq: seq}
}

// registerCache persists bytes as a cache on a node and registers its
// signature, claiming it for this query.
func (e *Engine) registerCache(pid string, typ CacheType, node int, readyAt simtime.Time, data []byte, meta cacheMeta) cacheRef {
	return e.registerCacheFor(pid, typ, node, readyAt, data, []int{e.qIdx}, meta)
}

// registerCacheFor is registerCache with an explicit consumer set —
// reduce-input caches of shared sources are claimed by every query in
// the sharing group so one query's expiry cannot purge a cache a
// sibling still needs.
func (e *Engine) registerCacheFor(pid string, typ CacheType, node int, readyAt simtime.Time, data []byte, usedBy []int, meta cacheMeta) cacheRef {
	// Re-homing: when a rebuilt cache lands on a different node (one
	// lost partition forces a whole-tuple recompute, but sibling
	// partitions may still be resident elsewhere), expire the old
	// node's copy — the signature moves with the rebuild, so bytes
	// left behind would otherwise be orphaned forever: unexpired,
	// undiscoverable, and invisible to every future purge notice.
	prevNode, hadPrev := -1, false
	if old, ok := e.ctrl.Lookup(pid, typ); ok {
		prevNode, hadPrev = old.NID, true
		if old.NID != node {
			if oldReg := e.ctrl.Registry(old.NID); oldReg != nil {
				oldReg.MarkExpired(pid, typ)
			}
		}
	}
	reg := e.ctrl.Registry(node)
	reg.Add(pid, typ, data)
	e.ctrl.Register(pid, typ, node, CacheAvailable, readyAt, int64(len(data)), usedBy)
	// Only single-source reduce-input caches are replacement
	// candidates: the oracle pins the window's routs (and a join's
	// rins and tuple routs) as resident after every recurrence, while
	// an agg rin is rebuildable from its retained pane files via
	// map+shuffle, exactly like a §5 cache loss.
	if typ == ReduceInput && len(e.query.Sources) == 1 {
		e.evictable[pid] = true
	}
	e.obs.Emit(readyAt, eventlog.CacheRegister, e.query.Name, eventlog.CacheData{
		PID: pid, CacheType: typ.String(), Node: node,
		Bytes: int64(len(data)), Recurrence: e.NextRecurrence(),
		RecomputeNS: int64(meta.recompute),
	})
	if e.lin != nil && meta.lin != nil {
		m := meta.lin
		id := lineage.DerivID(pid, int(typ))
		rebuilt, cause := e.lin.RecordDerivation(lineage.Derivation{
			ID: id, Kind: m.kind, Query: e.acctName, Fingerprint: e.planFP,
			Recurrence: e.NextRecurrence(), Pane: m.pane, Part: m.part,
			Bytes: int64(len(data)), SHA: lineage.SHA(data),
			CostNS: int64(meta.recompute), Job: m.job,
			Batches: m.batches, Inputs: m.inputs,
		})
		ev := lineage.CopyEvent{Kind: "register", Node: node, AtNS: int64(readyAt)}
		if hadPrev && prevNode != node {
			ev = lineage.CopyEvent{Kind: "rehome", Node: node, From: prevNode, AtNS: int64(readyAt)}
			e.obs.Emit(readyAt, eventlog.LineageCopyRehome, e.query.Name, eventlog.LineageRehomeData{
				ID: id, From: prevNode, To: node,
			})
		}
		e.lin.AddCopy(id, ev)
		if rebuilt {
			e.obs.Emit(readyAt, eventlog.LineageRebuild, e.query.Name, eventlog.LineageRebuildData{
				ID: id, Kind: m.kind, Cause: cause,
			})
		} else {
			e.obs.Emit(readyAt, eventlog.LineageDerived, e.query.Name, eventlog.LineageDerivedData{
				ID: id, Kind: m.kind, Pane: m.pane, Part: m.part,
				Bytes: int64(len(data)), Fingerprint: e.planFP,
			})
		}
	}
	// Open the ledger's residency interval (a refresh or re-homing of
	// the same pid closes the old interval ledger-side, so byte·seconds
	// never double-count).
	e.acct.CacheRegistered(e.acctName, pid, int(typ), int64(len(data)), readyAt, meta.recompute)
	return cacheRef{pid: pid, typ: typ, node: node, readyAt: readyAt, bytes: int64(len(data)), span: meta.span}
}

// rinUsers returns the consumer set of source src's reduce-input
// caches: the full sharing group for shared sources, just this query
// otherwise.
func (e *Engine) rinUsers(src int) []int {
	if e.query.Sources[src].CacheKey == "" {
		return []int{e.qIdx}
	}
	if g := e.ctrl.Group(e.query.rinScope(src)); len(g) > 0 {
		return g
	}
	return []int{e.qIdx}
}

// lookupCache returns the cache's reference if its signature says it is
// cache-available AND its bytes are really present on the node (a lost
// cache is the failure Figure 9 injects). On loss it rolls the
// controller back to HDFS-available and removes any scheduled tasks
// that depended on the cache, per §5.
func (e *Engine) lookupCache(pid string, typ CacheType) (cacheRef, bool) {
	sig, ok := e.ctrl.Lookup(pid, typ)
	if !ok || sig.Ready != CacheAvailable {
		e.obs.Counter("redoop_cache_lookups_total",
			obs.L("result", "miss"), obs.L("type", typ.String())).Inc()
		e.obs.Emit(e.curTrigger, eventlog.CacheMiss, e.query.Name, eventlog.CacheData{
			PID: pid, CacheType: typ.String(), Node: -1, Recurrence: e.NextRecurrence(),
		})
		return cacheRef{}, false
	}
	reg := e.ctrl.Registry(sig.NID)
	if reg == nil || !reg.Has(pid, typ) {
		if e.brokenRecovery {
			// Deliberately wrong: trust the stale CacheAvailable bit and
			// skip the §5 rollback. Exists only so tests can prove the
			// differential oracle catches a recovery-path regression.
			e.ctrl.ClaimUser(pid, typ, e.qIdx)
			return cacheRef{pid: pid, typ: typ, node: sig.NID, readyAt: sig.ReadyAt, bytes: sig.Bytes}, true
		}
		// Cache loss: roll back the ready bit and pull dependent
		// tasks; the caller re-inserts the rebuild into the map list.
		e.obs.Counter("redoop_cache_lookups_total",
			obs.L("result", "lost"), obs.L("type", typ.String())).Inc()
		e.obs.Instant(obs.NodeTrack(sig.NID), "failure", "cache lost "+pid,
			sig.ReadyAt, obs.L("type", typ.String()))
		e.obs.Emit(e.curTrigger, eventlog.CacheLost, e.query.Name, eventlog.CacheData{
			PID: pid, CacheType: typ.String(), Node: sig.NID,
			Bytes: sig.Bytes, Recurrence: e.NextRecurrence(),
		})
		e.ctrl.SetReady(pid, typ, HDFSAvailable, sig.ReadyAt, sig.NID)
		e.sched.ReduceTasks.RemoveMatching(func(id string) bool {
			return containsPID(id, pid)
		})
		// The bytes stopped being resident when chaos destroyed them,
		// but §5 discovers the loss lazily — here, at the trigger. The
		// ledger closes the residency at discovery time, the earliest
		// instant the runtime can know about it. The lineage store
		// matches the loss against the most recent recorded fault so the
		// rebuild that follows can name its cause.
		e.acct.CacheExpired(pid, int(typ), e.curTrigger)
		e.lin.MarkLost(lineage.DerivID(pid, int(typ)), sig.NID, int64(e.curTrigger))
		// The §5 rollback is not a signature removal, so the purge hook
		// never fires for it — retract any reuse advertisement of the
		// lost bytes explicitly.
		e.reuseIdx.DropPID(pid, int(typ))
		return cacheRef{}, false
	}
	e.obs.Counter("redoop_cache_lookups_total",
		obs.L("result", "hit"), obs.L("type", typ.String())).Inc()
	e.obs.Emit(e.curTrigger, eventlog.CacheHit, e.query.Name, eventlog.CacheData{
		PID: pid, CacheType: typ.String(), Node: sig.NID,
		Bytes: sig.Bytes, Recurrence: e.NextRecurrence(),
	})
	e.ctrl.ClaimUser(pid, typ, e.qIdx)
	e.acct.CacheHit(e.acctName, pid, int(typ), e.curTrigger)
	e.lin.AddCopy(lineage.DerivID(pid, int(typ)),
		lineage.CopyEvent{Kind: "hit", Node: sig.NID, AtNS: int64(e.curTrigger)})
	return cacheRef{pid: pid, typ: typ, node: sig.NID, readyAt: sig.ReadyAt, bytes: sig.Bytes}, true
}

// readCache loads a cache's pairs from its node.
func (e *Engine) readCache(ref cacheRef) ([]records.Pair, error) {
	reg := e.ctrl.Registry(ref.node)
	data, ok := reg.Get(ref.pid, ref.typ)
	if !ok {
		if e.brokenRecovery {
			// Deliberately wrong (see BreakRecoveryForTest): a lost
			// cache reads back as empty instead of erroring.
			return nil, nil
		}
		return nil, fmt.Errorf("core: cache %s (%v) lost from node %d mid-recurrence", ref.pid, ref.typ, ref.node)
	}
	// Cache bytes are columnar; the decode is zero-copy over the
	// registry's private copy (Registry.Get copies out of the node
	// store, so the views cannot observe later cache mutations). The
	// Any dispatch keeps legacy row-encoded test fixtures readable.
	return colfmt.DecodePairsAny(data)
}

// runPaneMapPhase maps one pane's physical segments. In proactive mode
// each segment becomes schedulable as its data arrives; otherwise the
// whole pane waits for the trigger. Header lookups for shared
// multi-pane files are charged as extra read bytes. Segment compute
// (decode + user map) overlaps across segments via PrepareMapPhase;
// commits then replay serially in segment order so the timeline is
// identical to a serial run.
func (e *Engine) runPaneMapPhase(src int, p window.PaneID, trigger simtime.Time, stats *mapreduce.Stats) (*mapreduce.MapPhaseResult, error) {
	ins, ok := e.srcs[src].PaneInputs(p)
	if !ok {
		return nil, fmt.Errorf("core: query %q: pane %d of source %d not flushed", e.query.Name, p, src)
	}
	job := e.paneJob(src)
	preps := make([]*mapreduce.MapPhasePrep, len(ins))
	if err := parallel.ForErr(e.mr.WorkerCount(), len(ins), func(i int) error {
		var err error
		preps[i], err = e.mr.PrepareMapPhase(job, []mapreduce.Input{ins[i].Input})
		return err
	}); err != nil {
		return nil, err
	}
	var parts []*mapreduce.MapPhaseResult
	earliest := trigger
	for i, seg := range ins {
		ready := trigger
		if e.proactive {
			ready = simtime.Max(seg.AvailableAt, 0)
		}
		if i == 0 || ready < earliest {
			earliest = ready
		}
		mp, err := e.mr.CommitMapPhase(preps[i], ready)
		if err != nil {
			return nil, err
		}
		mp.Stats.BytesRead += seg.HeaderBytes
		parts = append(parts, mp)
	}
	merged := mapreduce.MergeMapPhases(parts, e.query.NumReducers, earliest)
	stats.Accumulate(merged.Stats)
	e.obs.Span(obs.QueryTrack(e.query.Name), "phase",
		fmt.Sprintf("map %s pane %d", e.query.Sources[src].Name, p),
		earliest, merged.LastMapEnd,
		obs.L("segments", fmt.Sprint(len(ins))))
	return merged, nil
}

// paneJob builds the per-pane MapReduce job spec for one source.
func (e *Engine) paneJob(src int) *mapreduce.Job {
	return &mapreduce.Job{
		Name:             fmt.Sprintf("%s/%s", e.query.Name, e.query.Sources[src].Name),
		Map:              e.query.Maps[src],
		Reduce:           e.query.Reduce,
		Combine:          e.query.Combine,
		NumReducers:      e.query.NumReducers,
		Partition:        e.query.Partition,
		CacheReduceInput: true,
		LocalOutput:      true, // pane outputs are reduce-output caches
		Place:            e.sched,
		Query:            e.acctName,
	}
}

// cacheTask reports one scheduled cache-fed task: where it ran, its
// slot occupancy, and the task span recorded for it.
type cacheTask struct {
	node  int
	start simtime.Time
	end   simtime.Time
	dur   simtime.Duration
	span  obs.SpanID
}

// runCacheTask schedules one cache-fed reduce-style task: the node is
// chosen by Equation 4, the caches are charged local/remote reads, and
// work is the supplied extra duration. The recorded task span depends
// on the spans that produced the caches this recurrence (a carried-over
// cache contributes no edge — the hit short-circuits the walk), and
// each named cache's load cost is emitted as a cache.load event for the
// profiler's benefit ledger. The slot time is split for the cost
// ledger: the cache-load share under PhaseCacheLoad, the supplied work
// under the caller's phase, summing exactly to the node's AddLoad.
func (e *Engine) runCacheTask(name string, phase account.Phase, ready simtime.Time, caches []cacheRef, work simtime.Duration) cacheTask {
	locs := make([]CacheLoc, len(caches))
	deps := make([]obs.SpanID, 0, len(caches))
	for i, c := range caches {
		locs[i] = c.loc()
		if c.readyAt > ready {
			ready = c.readyAt
		}
		deps = append(deps, c.span)
	}
	node := e.sched.PickCacheTaskNode(ready, locs)
	load := e.sched.CacheCost(node.ID, locs)
	dur := load + work
	start, end := node.Reduce.Acquire(ready, dur)
	node.AddLoad(dur)
	e.acct.AddCompute(e.acctName, account.PhaseCacheLoad, load)
	e.acct.AddCompute(e.acctName, phase, work)
	for _, c := range caches {
		local := c.node == node.ID
		locality := "remote"
		if local {
			locality = "local"
		}
		e.obs.Counter("redoop_cache_read_bytes_total", obs.L("locality", locality)).Add(float64(c.bytes))
		if c.pid != "" {
			loadNS := e.mr.Cost.CacheRead(c.bytes, local)
			e.obs.Emit(start, eventlog.CacheLoad, e.query.Name, eventlog.CacheLoadData{
				PID: c.pid, Node: node.ID, Local: local, Bytes: c.bytes,
				LoadNS:     int64(loadNS),
				Recurrence: e.NextRecurrence(),
			})
			// Net a hit's saving by the load actually paid (no-op for
			// caches that were not hit this recurrence).
			e.acct.CacheLoaded(c.pid, int(c.typ), loadNS)
		}
	}
	span := e.obs.Task(obs.TaskSpan{
		Track: obs.NodeTrack(node.ID), Cat: "cachetask", Name: name,
		Start: start, End: end, Ready: ready,
		Parent: e.mr.SpanParent, Deps: deps,
		Args: []obs.Label{obs.L("caches", fmt.Sprint(len(caches))), obs.L("query", e.query.Name)},
	})
	return cacheTask{node: node.ID, start: start, end: end, dur: dur, span: span}
}

// retireExpired marks panes that have slid out of every window (as of
// the *next* recurrence) and exhausted their lifespans as done for this
// query, triggering purge notifications, and shifts the status matrix.
// Each source retires against its own window frame; the per-source
// bound advances only past the leading run of exhausted panes so a
// pane with pending partner work is retried next recurrence. `at` is
// the recurrence's completion instant — the ledger closes purged
// caches' byte·second residency there, but only when MarkQueryDone
// reports the cache actually purged (shared caches survive until every
// consumer retires them, and keep accruing until then).
func (e *Engine) retireExpired(r int, at simtime.Time) {
	R := e.query.NumReducers
	n := len(e.query.Sources)
	for d := 0; d < n; d++ {
		nextLo, _ := e.frames[d].WindowRange(r + 1)
		p := e.expiredBound[d]
		for ; p < nextLo; p++ {
			if !e.matrix.Exhausted(d, p) {
				break
			}
			for part := 0; part < R; part++ {
				rin := e.query.rinPID(d, e.frames[d].Pane, p, part)
				if e.ctrl.MarkQueryDone(rin, ReduceInput, e.qIdx) {
					e.acct.CacheExpired(rin, int(ReduceInput), at)
					e.lin.MarkExpired(lineage.DerivID(rin, int(ReduceInput)), int64(at))
				}
				if n == 1 {
					rout := e.query.routPanePID(p, part)
					if e.ctrl.MarkQueryDone(rout, ReduceOutput, e.qIdx) {
						e.acct.CacheExpired(rout, int(ReduceOutput), at)
						e.lin.MarkExpired(lineage.DerivID(rout, int(ReduceOutput)), int64(at))
					}
				}
			}
			if n > 1 {
				// Tuple outputs expire when the tuple can appear in
				// no future window: once pane p has left every window
				// of its source, every tuple with p at that
				// coordinate (partners within p's lifespan) is dead.
				e.forEachLifespanTuple(d, p, func(t paneTuple) {
					for part := 0; part < R; part++ {
						rout := e.query.routTuplePID(t, part)
						if e.ctrl.MarkQueryDone(rout, ReduceOutput, e.qIdx) {
							e.acct.CacheExpired(rout, int(ReduceOutput), at)
							e.lin.MarkExpired(lineage.DerivID(rout, int(ReduceOutput)), int64(at))
						}
					}
				})
			}
			// The pane's DFS files exist only to (re)build caches; an
			// expired pane can never be needed again, so its files are
			// garbage-collected to bound DFS growth ("after the
			// recurring query finishes, all files storing cached data
			// are removed", §5 — done incrementally here). Deletion
			// failures are not fatal; the file lingers.
			_ = e.srcs[d].DropPaneFiles(p)
		}
		if p > e.expiredBound[d] {
			if e.obs.EmitEnabled() {
				panes := make([]int64, 0, int(p-e.expiredBound[d]))
				for q := e.expiredBound[d]; q < p; q++ {
					panes = append(panes, int64(q))
				}
				e.obs.Emit(e.curTrigger, eventlog.PaneRetire, e.query.Name,
					eventlog.PaneRetireData{Source: d, Panes: panes})
			}
			e.mu.Lock()
			e.expiredBound[d] = p
			e.mu.Unlock()
		}
	}
	e.matrix.Shift(r + 1)
}

// forEachLifespanTuple enumerates the tuples with pane p pinned at
// dimension dim and every other coordinate ranging over p's lifespan
// in that dimension.
func (e *Engine) forEachLifespanTuple(dim int, p window.PaneID, fn func(paneTuple)) {
	n := len(e.query.Sources)
	los := make([]window.PaneID, n)
	his := make([]window.PaneID, n)
	for d := 0; d < n; d++ {
		if d == dim {
			los[d], his[d] = p, p
			continue
		}
		lo, hi, ok := e.frames[dim].LifespanIn(p, e.frames[d])
		if !ok {
			return // pane precedes window 0: no tuples exist
		}
		los[d], his[d] = lo, hi
	}
	forEachTupleRanges(los, his, fn)
}

// linRecordWindow records the emitted window of recurrence r as a
// derivation node consuming the window's pane (or pane-tuple) output
// caches. Window nodes are born expired: their bytes go to the consumer
// rather than a cache, so they must not pin the store's bounded
// eviction the way resident caches do.
func (e *Engine) linRecordWindow(r int, res *RecurrenceResult) {
	if e.lin == nil {
		return
	}
	q := e.query
	var inputs []lineage.InputRef
	if len(q.Sources) == 1 {
		for p := res.WindowLo; p <= res.WindowHi; p++ {
			for part := 0; part < q.NumReducers; part++ {
				inputs = append(inputs, e.linInput(q.routPanePID(p, part), ReduceOutput))
			}
		}
	} else {
		n := len(q.Sources)
		los := make([]window.PaneID, n)
		his := make([]window.PaneID, n)
		for d := 0; d < n; d++ {
			los[d], his[d] = e.frames[d].WindowRange(r)
		}
		forEachTupleRanges(los, his, func(t paneTuple) {
			for part := 0; part < q.NumReducers; part++ {
				inputs = append(inputs, e.linInput(q.routTuplePID(t, part), ReduceOutput))
			}
		})
	}
	data := colfmt.EncodePairs(res.Output)
	e.lin.RecordDerivation(lineage.Derivation{
		ID: lineage.WindowID(e.acctName, r), Kind: "window", Query: e.acctName,
		Fingerprint: e.planFP, Recurrence: r, Pane: int64(res.WindowLo),
		Bytes: int64(len(data)), SHA: lineage.SHA(data),
		CostNS: int64(res.ResponseTime), Inputs: inputs, Expired: true,
	})
	e.obs.Emit(res.CompletedAt, eventlog.LineageDerived, q.Name, eventlog.LineageDerivedData{
		ID: lineage.WindowID(e.acctName, r), Kind: "window",
		Pane: int64(res.WindowLo), Bytes: int64(len(data)), Fingerprint: e.planFP,
	})
}

// containsPID reports whether a task-list entry ID references the pid.
func containsPID(id, pid string) bool {
	return pid != "" && strings.Contains(id, pid)
}
