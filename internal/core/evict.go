package core

import (
	"fmt"
	"sort"

	"redoop/internal/account"
	"redoop/internal/lineage"
	"redoop/internal/obs/eventlog"
	"redoop/internal/simtime"
)

// Cost-based cache replacement.
//
// The Local Cache Manager's purge policy (§4.1) only ever removes
// expired entries; under a disk limit that is not always enough — a
// node can fill with caches every one of which some future window
// still wants. Pure expiry then has nothing to remove and the node
// stays over budget forever. This file adds the replacement tier that
// runs after the purge tick: it ranks the engine's evictable caches by
// benefit density and removes the cheapest-to-lose entries until the
// node fits.
//
// Evictable means an unexpired reduce-input cache of a single-source
// aggregation. Those are the only caches whose removal the rest of the
// system already knows how to survive: the pane's DFS files are
// retained until retirement, so the rin is rebuildable through
// map+shuffle exactly like a §5 cache loss, and the differential
// oracle pins only the window's routs (plus a join's rins and tuple
// routs) as resident after a recurrence.
//
// Benefit density is the ledger's feature vector for the open
// residency: RecomputeNS·(1+Hits)/Bytes — the modeled nanoseconds a
// future hit would save, weighted by how often the current residency
// has actually been hit, per byte of disk held. Low density (large,
// cheap to rebuild, never hit) evicts first. Ties break on older
// ReadyAt then lexicographic pid, so the decision sequence is a pure
// function of engine state and replays byte-identically across worker
// counts and chaos seeds.

// EvictCandidate is one ranked entry of the replacement scan —
// exported so policy tests can rank crafted feature vectors without an
// engine.
type EvictCandidate struct {
	PID     string
	Node    int
	Bytes   int64
	ReadyAt simtime.Time
	// Feature vector from the cost ledger; zero when no ledger is
	// attached (every candidate then scores 0 and age breaks ties).
	RecomputeNS int64
	Hits        int
}

// score is the candidate's benefit density. float64 keeps the
// comparison exact enough: both operands derive from the same virtual
// clock and IEEE-754 arithmetic is deterministic across runs.
func (c EvictCandidate) score() float64 {
	b := c.Bytes
	if b < 1 {
		b = 1
	}
	return float64(c.RecomputeNS) * float64(1+c.Hits) / float64(b)
}

// rankVictims orders candidates ascending by benefit density — the
// first entry is the best eviction victim. Ties break on older
// ReadyAt, then pid.
func rankVictims(cands []EvictCandidate) []EvictCandidate {
	out := append([]EvictCandidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].score(), out[j].score()
		if si != sj {
			return si < sj
		}
		if out[i].ReadyAt != out[j].ReadyAt {
			return out[i].ReadyAt < out[j].ReadyAt
		}
		return out[i].PID < out[j].PID
	})
	return out
}

// evictOverCap runs the replacement tier for recurrence r: for every
// node still over its disk limit after the purge tick, evict ranked
// victims until the node fits or no candidates remain. Returns the
// number of caches evicted. Runs in RunNext's serial tail, so the
// decision sequence is independent of the worker count.
func (e *Engine) evictOverCap(r int, at simtime.Time) int {
	if e.cacheLimit <= 0 || len(e.evictable) == 0 {
		return 0
	}
	evicted := 0
	for _, m := range e.managers {
		over := m.OverLimit()
		if over <= 0 {
			continue
		}
		for _, c := range rankVictims(e.candidatesOn(m.Registry)) {
			if over <= 0 {
				break
			}
			over -= e.evictOne(r, c, at)
			evicted++
		}
	}
	return evicted
}

// candidatesOn collects this engine's evictable caches resident on one
// node's registry, joined with their ledger features. Entries whose
// registry row or signature is gone are dropped from the evictable set
// so it cannot grow without bound.
func (e *Engine) candidatesOn(reg *Registry) []EvictCandidate {
	pids := make([]string, 0, len(e.evictable))
	for pid := range e.evictable {
		pids = append(pids, pid)
	}
	sort.Strings(pids)
	var cands []EvictCandidate
	for _, pid := range pids {
		sig, ok := e.ctrl.Lookup(pid, ReduceInput)
		if !ok || sig.Ready != CacheAvailable {
			delete(e.evictable, pid)
			continue
		}
		if sig.NID != reg.NodeID() || !reg.Has(pid, ReduceInput) {
			continue
		}
		expired := true
		for _, row := range reg.Entries() {
			if row.PID == pid && row.Type == ReduceInput {
				expired = row.Expired
				break
			}
		}
		if expired {
			// Already queued for the next purge tick; replacement
			// must not double-close its ledger residency.
			delete(e.evictable, pid)
			continue
		}
		c := EvictCandidate{PID: pid, Node: sig.NID, Bytes: sig.Bytes, ReadyAt: sig.ReadyAt}
		if f, ok := e.acct.Residency(pid, int(ReduceInput)); ok {
			c.RecomputeNS, c.Hits = f.RecomputeNS, f.Hits
		}
		cands = append(cands, c)
	}
	return cands
}

// evictOne applies the §5-shaped transition for one victim: the
// signature rolls back to HDFS-available (the pane files survive, so
// the cache is rebuildable, not gone), the registry drops the bytes,
// the ledger closes the residency, lineage ends the derivation's cache
// interval, and any cross-query reuse advertisement is retracted —
// the same sequence the lazy loss-discovery path runs, minus the
// fault. Returns the bytes freed.
func (e *Engine) evictOne(r int, c EvictCandidate, at simtime.Time) int64 {
	e.ctrl.SetReady(c.PID, ReduceInput, HDFSAvailable, c.ReadyAt, c.Node)
	e.sched.ReduceTasks.RemoveMatching(func(id string) bool {
		return containsPID(id, c.PID)
	})
	freed := e.ctrl.Registry(c.Node).Evict(c.PID, ReduceInput)
	e.acct.CacheExpired(c.PID, int(ReduceInput), at)
	e.lin.MarkExpired(lineage.DerivID(c.PID, int(ReduceInput)), int64(at))
	e.reuseIdx.DropPID(c.PID, int(ReduceInput))
	delete(e.evictable, c.PID)
	e.mu.Lock()
	e.evictLog = append(e.evictLog, fmt.Sprintf(
		"r=%d node=%d pid=%s bytes=%d recompute=%d hits=%d",
		r, c.Node, c.PID, c.Bytes, c.RecomputeNS, c.Hits))
	e.mu.Unlock()
	e.obs.Emit(at, eventlog.CacheEvict, e.query.Name, eventlog.CacheData{
		PID: c.PID, CacheType: ReduceInput.String(), Node: c.Node,
		Bytes: c.Bytes, Recurrence: r, RecomputeNS: c.RecomputeNS,
	})
	return freed
}

// EvictionLog returns a copy of the replacement decision sequence, one
// line per eviction in execution order. Byte-identical across worker
// counts: every decision happens in RunNext's serial tail.
func (e *Engine) EvictionLog() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.evictLog...)
}

// Features is the ledger join evictOverCap performs, exported for
// policy tests: the candidate annotated with the open residency's
// recompute cost and hit count.
func Features(c EvictCandidate, l *account.Ledger) EvictCandidate {
	if f, ok := l.Residency(c.PID, int(ReduceInput)); ok {
		c.RecomputeNS, c.Hits = f.RecomputeNS, f.Hits
	}
	return c
}
