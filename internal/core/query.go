package core

import (
	"fmt"

	"redoop/internal/mapreduce"
	"redoop/internal/window"
)

// Source is one evolving input of a recurring query.
type Source struct {
	// Name identifies the source ("S1", "clicks", ...). It appears in
	// pane file paths and cache identifiers.
	Name string
	// Spec is the window constraint on this source. All sources of one
	// query must share the same win and slide (Redoop's binary
	// operators pair sources on a common recurrence cadence; the
	// paper's experiments use identical constraints on both join
	// inputs).
	Spec window.Spec
	// CacheKey opts into cross-query reduce-input cache sharing: two
	// queries whose sources declare the same non-empty CacheKey — and
	// which therefore assert identical map functions, partitioners and
	// reducer counts over this source — will reuse each other's
	// reduce-input caches, with the controller's doneQueryMask
	// delaying purges until every sharing query is finished. Empty
	// means query-private caches.
	CacheKey string
	// RateBytesPerUnit is the initial arrival-rate estimate (bytes per
	// window unit) Algorithm 1 sizes pane files from; the Execution
	// Profiler refines it as batches arrive.
	RateBytesPerUnit float64
}

// Query is a recurring query: the user's map/reduce logic plus window
// constraints, mirroring the API extensions of paper §5 (map and reduce
// with unchanged Hadoop interfaces, window constraints per source, and
// a finalization function that merges partial outputs into each
// execution's final output).
type Query struct {
	// Name identifies the query in cache identifiers and stats.
	Name string
	// Sources are the query's inputs: one for aggregation-style
	// queries, two for binary joins.
	Sources []Source
	// Maps holds one map function per source.
	Maps []mapreduce.MapFunc
	// Reduce is applied per pane (single source) or per pane pair
	// (two sources). For joins its input groups mix values from both
	// sources; the map functions must tag values so Reduce can tell
	// the sides apart.
	Reduce mapreduce.ReduceFunc
	// Combine optionally pre-aggregates map output (Hadoop combiner).
	Combine mapreduce.ReduceFunc
	// Merge is the finalization function: it merges the per-pane (or
	// per-pair) partial outputs of one window into the window's final
	// output, invoked once per key over the partial values. Nil means
	// concatenation — correct for joins, whose window result is the
	// union of its pane-pair results.
	Merge mapreduce.ReduceFunc
	// NumReducers fixes the number of reduce partitions; it must not
	// change across recurrences (§4.3).
	NumReducers int
	// Partition overrides the default hash partitioner; like
	// NumReducers it is fixed for the query's lifetime.
	Partition mapreduce.Partitioner
	// TenantID optionally names the tenant the query runs on behalf
	// of. Purely an accounting dimension: the cost ledger rolls
	// per-query resources up to it; empty means untenanted.
	TenantID string
}

// Validate reports specification errors.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("core: query needs a name")
	}
	if len(q.Sources) < 1 || len(q.Sources) > 4 {
		return fmt.Errorf("core: query %q must have 1 to 4 sources, got %d", q.Name, len(q.Sources))
	}
	if len(q.Maps) != len(q.Sources) {
		return fmt.Errorf("core: query %q has %d map functions for %d sources", q.Name, len(q.Maps), len(q.Sources))
	}
	for i, m := range q.Maps {
		if m == nil {
			return fmt.Errorf("core: query %q map function %d is nil", q.Name, i)
		}
	}
	if q.Reduce == nil {
		return fmt.Errorf("core: query %q has no reduce function", q.Name)
	}
	if q.NumReducers <= 0 {
		return fmt.Errorf("core: query %q needs a positive reducer count", q.Name)
	}
	names := make(map[string]bool)
	for i, s := range q.Sources {
		if s.Name == "" {
			return fmt.Errorf("core: query %q source %d needs a name", q.Name, i)
		}
		if names[s.Name] {
			return fmt.Errorf("core: query %q has duplicate source name %q", q.Name, s.Name)
		}
		names[s.Name] = true
		if err := s.Spec.Validate(); err != nil {
			return fmt.Errorf("core: query %q source %q: %w", q.Name, s.Name, err)
		}
		if s.RateBytesPerUnit < 0 {
			return fmt.Errorf("core: query %q source %q: negative rate", q.Name, s.Name)
		}
		if i > 0 {
			a, b := q.Sources[0].Spec, s.Spec
			if a.Kind != b.Kind || a.Slide != b.Slide {
				return fmt.Errorf("core: query %q: sources must share one slide (recurrence cadence) and window kind, got %v and %v",
					q.Name, a, b)
			}
		}
	}
	if len(q.Sources) == 1 && q.Merge == nil {
		return fmt.Errorf("core: query %q: single-source queries need a Merge finalization function", q.Name)
	}
	return nil
}

// Spec returns the first source's window constraint; sources share the
// slide and kind but window sizes may differ (see window.NewFrames).
func (q *Query) Spec() window.Spec { return q.Sources[0].Spec }

// Frames aligns the query's sources onto the shared recurrence cadence.
func (q *Query) Frames() ([]window.Frame, error) {
	specs := make([]window.Spec, len(q.Sources))
	for i, s := range q.Sources {
		specs[i] = s.Spec
	}
	return window.NewFrames(specs)
}

// partitioner returns the effective partitioner.
func (q *Query) partitioner() mapreduce.Partitioner {
	if q.Partition != nil {
		return q.Partition
	}
	return mapreduce.DefaultPartitioner
}

// rinScope returns the namespace prefix of a source's reduce-input
// caches: the shared CacheKey when sharing is opted into, otherwise a
// query-private scope.
func (q *Query) rinScope(src int) string {
	if k := q.Sources[src].CacheKey; k != "" {
		return "shared/" + k
	}
	return "query/" + q.Name
}

// rinPID identifies a reduce-input cache: one source pane's shuffled
// partition. The effective pane unit is embedded so sources shared
// between queries with different window constraints never collide.
func (q *Query) rinPID(src int, unit int64, pane window.PaneID, part int) string {
	return fmt.Sprintf("%s/%s/u%d/P%d/r%d",
		q.rinScope(src), q.Sources[src].Name, unit, int64(pane), part)
}

// routPanePID identifies an aggregation pane's reduce-output cache.
func (q *Query) routPanePID(pane window.PaneID, part int) string {
	return fmt.Sprintf("query/%s/P%d/r%d", q.Name, int64(pane), part)
}

// routTuplePID identifies a join pane-tuple's reduce-output cache.
func (q *Query) routTuplePID(t paneTuple, part int) string {
	return fmt.Sprintf("query/%s/P%s/r%d", q.Name, t.key(), part)
}

// routPairPID is the binary-join special case of routTuplePID.
func (q *Query) routPairPID(p1, p2 window.PaneID, part int) string {
	return q.routTuplePID(paneTuple{p1, p2}, part)
}

// Exported cache-identifier accessors for external verification
// tooling (the differential oracle cross-checks controller and
// registry state against the identifiers the engine uses internally).

// ReduceInputPID returns the reduce-input cache identifier of one
// source pane's shuffled partition; unit is the source's effective
// pane unit (window.Frame.Pane).
func (q *Query) ReduceInputPID(src int, unit int64, pane window.PaneID, part int) string {
	return q.rinPID(src, unit, pane, part)
}

// ReduceOutputPanePID returns an aggregation pane's reduce-output
// cache identifier.
func (q *Query) ReduceOutputPanePID(pane window.PaneID, part int) string {
	return q.routPanePID(pane, part)
}

// ReduceOutputTuplePID returns a join pane-tuple's reduce-output cache
// identifier (one pane per source, source order).
func (q *Query) ReduceOutputTuplePID(panes []window.PaneID, part int) string {
	return q.routTuplePID(paneTuple(panes), part)
}
