package core

import (
	"fmt"
	"sort"
	"sync"

	"redoop/internal/cluster"
)

// CacheType distinguishes the two cache stages Redoop maintains on task
// nodes (paper §4): the reduce input cache (shuffled, pre-group
// partition data per pane) and the reduce output cache (per-pane or
// per-pane-pair reduce results).
type CacheType int

const (
	// ReduceInput is type 1 in the paper's local cache registry.
	ReduceInput CacheType = 1
	// ReduceOutput is type 2.
	ReduceOutput CacheType = 2
)

// String names the cache type.
func (t CacheType) String() string {
	switch t {
	case ReduceInput:
		return "reduce-input"
	case ReduceOutput:
		return "reduce-output"
	default:
		return fmt.Sprintf("CacheType(%d)", int(t))
	}
}

// localKey is the node-local file-system key for a cache entry.
func localKey(pid string, typ CacheType) string {
	if typ == ReduceInput {
		return "cache/rin/" + pid
	}
	return "cache/rout/" + pid
}

// RegistryEntry is one row of the local cache registry (paper Table 1):
// which pane is cached, at which stage, and whether any window
// operation still needs it.
type RegistryEntry struct {
	PID     string
	Type    CacheType
	Expired bool
}

// Registry is the local cache registry of one task node. The node's
// Local Cache Manager appends entries as caches are created, flips
// expiration flags when the window-aware cache controller notifies it,
// and purges expired caches periodically or on demand (§4.1).
type Registry struct {
	mu      sync.Mutex
	node    *cluster.Node
	entries map[string]*RegistryEntry // keyed by pid|type
}

// NewRegistry builds the registry for one node.
func NewRegistry(node *cluster.Node) *Registry {
	return &Registry{node: node, entries: make(map[string]*RegistryEntry)}
}

func entryKey(pid string, typ CacheType) string {
	return fmt.Sprintf("%s|%d", pid, int(typ))
}

// NodeID returns the owning node's ID.
func (r *Registry) NodeID() int { return r.node.ID }

// Add registers a newly created cache and stores its bytes on the
// node's local file system. The new entry starts unexpired; existing
// entries are untouched (adding is append-only, §4.1).
func (r *Registry) Add(pid string, typ CacheType, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[entryKey(pid, typ)] = &RegistryEntry{PID: pid, Type: typ}
	r.node.PutLocal(localKey(pid, typ), data)
}

// Get loads a cached entry's bytes from the node's local file system.
// The second result is false when the cache is absent — either never
// created here or lost to a failure; callers treat that as a cache miss
// and trigger recovery.
func (r *Registry) Get(pid string, typ CacheType) ([]byte, bool) {
	return r.node.GetLocal(localKey(pid, typ))
}

// Has reports whether the cache's bytes are actually present on the
// local file system (registry entries can outlive lost data after a
// fault injection).
func (r *Registry) Has(pid string, typ CacheType) bool {
	return r.node.HasLocal(localKey(pid, typ))
}

// Size returns the cached bytes' length, or -1 when absent.
func (r *Registry) Size(pid string, typ CacheType) int64 {
	return r.node.LocalSize(localKey(pid, typ))
}

// MarkExpired flips the expiration flag of an entry in response to a
// purge notification from the window-aware cache controller. Unknown
// entries are ignored (the notification may race a node failure).
func (r *Registry) MarkExpired(pid string, typ CacheType) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[entryKey(pid, typ)]; ok {
		e.Expired = true
	}
}

// Entries returns a snapshot of all registry rows, sorted by pid then
// type for deterministic inspection.
func (r *Registry) Entries() []RegistryEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RegistryEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// PurgeExpired removes every expired entry's data and registry row,
// returning the number of caches purged. This is the body of both
// purge policies: the Local Cache Manager calls it on its periodic
// PurgeCycle tick, and on demand when local disk runs short (§4.1).
func (r *Registry) PurgeExpired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, e := range r.entries {
		if e.Expired {
			r.node.DeleteLocal(localKey(e.PID, e.Type))
			delete(r.entries, k)
			n++
		}
	}
	return n
}

// Evict removes one unexpired entry's bytes and registry row — the
// targeted form of PurgeExpired that cost-based replacement uses once
// the controller has rolled the victim's signature back to
// HDFSAvailable. Returns the bytes freed; 0 when the entry or its
// bytes were already gone.
func (r *Registry) Evict(pid string, typ CacheType) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	sz := r.node.LocalSize(localKey(pid, typ))
	r.node.DeleteLocal(localKey(pid, typ))
	delete(r.entries, entryKey(pid, typ))
	if sz < 0 {
		return 0
	}
	return sz
}

// LocalBytes returns the owning node's total local-file-system bytes —
// the quantity a CacheManager's DiskLimit bounds.
func (r *Registry) LocalBytes() int64 {
	return r.node.LocalBytes()
}

// CachedBytes returns the total bytes of unexpired caches present on
// the local file system.
func (r *Registry) CachedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.entries {
		if !e.Expired {
			if sz := r.node.LocalSize(localKey(e.PID, e.Type)); sz > 0 {
				total += sz
			}
		}
	}
	return total
}

// CacheManager is the Local Cache Manager: it owns a node's registry
// and applies the purge policy. PurgeCycle is expressed in recurrences
// of the driving query (the paper's default is one slide).
type CacheManager struct {
	Registry *Registry
	// PurgeCycle is how many recurrences elapse between periodic
	// purge scans; <=0 means every recurrence (the paper's default of
	// one slide).
	PurgeCycle int
	// DiskLimit triggers on-demand purging when the node's total
	// local bytes exceed it; 0 disables the limit.
	DiskLimit int64

	sinceLastPurge int
	purged         int
}

// NewCacheManager wraps a registry with the default purge policy.
func NewCacheManager(reg *Registry) *CacheManager {
	return &CacheManager{Registry: reg, PurgeCycle: 1}
}

// Tick advances the manager by one recurrence, running a periodic purge
// when the cycle elapses and an on-demand purge when the disk limit is
// exceeded. It returns the number of caches purged this tick.
func (m *CacheManager) Tick() int {
	n := 0
	m.sinceLastPurge++
	cycle := m.PurgeCycle
	if cycle <= 0 {
		cycle = 1
	}
	if m.sinceLastPurge >= cycle {
		m.sinceLastPurge = 0
		n += m.Registry.PurgeExpired()
	}
	if m.DiskLimit > 0 && m.Registry.node.LocalBytes() > m.DiskLimit {
		n += m.Registry.PurgeExpired() // on-demand purging
	}
	m.purged += n
	return n
}

// TotalPurged returns the cumulative number of purged caches.
func (m *CacheManager) TotalPurged() int { return m.purged }

// OverLimit reports how many bytes the node exceeds DiskLimit by; 0
// with no limit set or a node within budget. A positive value after a
// Tick means pure expiry could not fit the node: the engine answers it
// with cost-based replacement of unexpired entries (lowest benefit
// density first), the feature-ranked policy that supersedes purge-only
// eviction under disk pressure.
func (m *CacheManager) OverLimit() int64 {
	if m.DiskLimit <= 0 {
		return 0
	}
	over := m.Registry.LocalBytes() - m.DiskLimit
	if over < 0 {
		return 0
	}
	return over
}
