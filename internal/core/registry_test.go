package core

import (
	"testing"

	"redoop/internal/cluster"
	"redoop/internal/simtime"
)

func twoNodeCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	return cluster.MustNew(cluster.Config{Workers: 2, MapSlots: 2, ReduceSlots: 1})
}

func TestRegistryAddGetPurge(t *testing.T) {
	cl := twoNodeCluster(t)
	reg := NewRegistry(cl.Node(0))
	if reg.NodeID() != 0 {
		t.Fatalf("NodeID = %d", reg.NodeID())
	}
	reg.Add("S1P3/r0", ReduceOutput, []byte("agg"))
	reg.Add("S2P4/r0", ReduceInput, []byte("input"))

	if got, ok := reg.Get("S1P3/r0", ReduceOutput); !ok || string(got) != "agg" {
		t.Errorf("Get = %q, %v", got, ok)
	}
	if !reg.Has("S2P4/r0", ReduceInput) || reg.Has("S2P4/r0", ReduceOutput) {
		t.Error("Has should distinguish cache types")
	}
	if reg.Size("S1P3/r0", ReduceOutput) != 3 || reg.Size("none", ReduceInput) != -1 {
		t.Error("Size wrong")
	}

	// Paper Table 1: S1P3 expired as output cache, S2P4 live as input.
	reg.MarkExpired("S1P3/r0", ReduceOutput)
	entries := reg.Entries()
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if !entries[0].Expired || entries[0].PID != "S1P3/r0" {
		t.Errorf("entry 0 = %+v, want expired S1P3/r0", entries[0])
	}
	if entries[1].Expired {
		t.Errorf("entry 1 should be live: %+v", entries[1])
	}

	if got := reg.PurgeExpired(); got != 1 {
		t.Errorf("purged %d, want 1", got)
	}
	if reg.Has("S1P3/r0", ReduceOutput) {
		t.Error("purged cache should be gone from local FS")
	}
	if !reg.Has("S2P4/r0", ReduceInput) {
		t.Error("live cache should survive the purge")
	}
}

func TestRegistryMarkExpiredUnknownIsNoop(t *testing.T) {
	cl := twoNodeCluster(t)
	reg := NewRegistry(cl.Node(0))
	reg.MarkExpired("ghost", ReduceInput) // must not panic
	if reg.PurgeExpired() != 0 {
		t.Error("nothing should purge")
	}
}

func TestCachedBytes(t *testing.T) {
	cl := twoNodeCluster(t)
	reg := NewRegistry(cl.Node(0))
	reg.Add("a", ReduceInput, []byte("12345"))
	reg.Add("b", ReduceOutput, []byte("123"))
	if got := reg.CachedBytes(); got != 8 {
		t.Errorf("CachedBytes = %d, want 8", got)
	}
	reg.MarkExpired("a", ReduceInput)
	if got := reg.CachedBytes(); got != 3 {
		t.Errorf("CachedBytes after expiry = %d, want 3", got)
	}
}

func TestCacheManagerPeriodicPurge(t *testing.T) {
	cl := twoNodeCluster(t)
	reg := NewRegistry(cl.Node(0))
	m := NewCacheManager(reg)
	m.PurgeCycle = 2

	reg.Add("x", ReduceInput, []byte("x"))
	reg.MarkExpired("x", ReduceInput)
	if n := m.Tick(); n != 0 {
		t.Errorf("tick 1 should not purge (cycle=2), purged %d", n)
	}
	if n := m.Tick(); n != 1 {
		t.Errorf("tick 2 should purge, purged %d", n)
	}
	if m.TotalPurged() != 1 {
		t.Errorf("TotalPurged = %d", m.TotalPurged())
	}
}

func TestCacheManagerOnDemandPurge(t *testing.T) {
	cl := twoNodeCluster(t)
	reg := NewRegistry(cl.Node(0))
	m := NewCacheManager(reg)
	m.PurgeCycle = 100 // periodic effectively off
	m.DiskLimit = 4

	reg.Add("big", ReduceInput, []byte("0123456789"))
	reg.MarkExpired("big", ReduceInput)
	if n := m.Tick(); n != 1 {
		t.Errorf("on-demand purge should fire over the disk limit, purged %d", n)
	}
}

func TestCacheTypeString(t *testing.T) {
	if ReduceInput.String() != "reduce-input" || ReduceOutput.String() != "reduce-output" {
		t.Error("CacheType names wrong")
	}
	if CacheType(9).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestControllerRegisterLookup(t *testing.T) {
	ctrl := NewController()
	q1 := ctrl.RegisterQuery("Q1")
	q2 := ctrl.RegisterQuery("Q2")
	if got := ctrl.Queries(); len(got) != 2 || got[0] != "Q1" {
		t.Fatalf("Queries = %v", got)
	}

	sig := ctrl.Register("S1P1/r0", ReduceInput, 3, CacheAvailable, simtime.Time(7), 100, []int{q1})
	mask := sig.DoneMask()
	if mask[q1] || !mask[q2] {
		t.Errorf("mask = %v: used query bit must be 0, unused 1 (paper init)", mask)
	}

	got, ok := ctrl.Lookup("S1P1/r0", ReduceInput)
	if !ok || got.NID != 3 || got.Ready != CacheAvailable || got.Bytes != 100 || got.ReadyAt != simtime.Time(7) {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := ctrl.Lookup("nope", ReduceInput); ok {
		t.Error("missing signature should not resolve")
	}
}

func TestControllerReRegisterPreservesOtherClaims(t *testing.T) {
	ctrl := NewController()
	q1 := ctrl.RegisterQuery("Q1")
	q2 := ctrl.RegisterQuery("Q2")
	ctrl.Register("shared", ReduceInput, 0, CacheAvailable, 0, 10, []int{q1})
	ctrl.Register("shared", ReduceInput, 1, CacheAvailable, 5, 20, []int{q2})
	sig, _ := ctrl.Lookup("shared", ReduceInput)
	mask := sig.DoneMask()
	if mask[q1] || mask[q2] {
		t.Errorf("both claims should persist across re-register, mask = %v", mask)
	}
	if sig.NID != 1 || sig.Bytes != 20 {
		t.Error("re-register should refresh location and size")
	}
}

func TestControllerPurgeNotification(t *testing.T) {
	cl := twoNodeCluster(t)
	ctrl := NewController()
	q1 := ctrl.RegisterQuery("Q1")
	q2 := ctrl.RegisterQuery("Q2")
	reg := NewRegistry(cl.Node(0))
	ctrl.AttachRegistry(reg)

	reg.Add("p", ReduceOutput, []byte("d"))
	ctrl.Register("p", ReduceOutput, 0, CacheAvailable, 0, 1, []int{q1, q2})

	if ctrl.MarkQueryDone("p", ReduceOutput, q1) {
		t.Error("purge must wait for every using query")
	}
	if !ctrl.MarkQueryDone("p", ReduceOutput, q2) {
		t.Error("last query done should trigger the purge notification")
	}
	// The node's registry entry is now expired; the data survives
	// until the node's purge cycle runs.
	if !reg.Has("p", ReduceOutput) {
		t.Error("data should remain until the local purge")
	}
	if reg.PurgeExpired() != 1 {
		t.Error("entry should have been marked expired by the notification")
	}
	if _, ok := ctrl.Lookup("p", ReduceOutput); ok {
		t.Error("signature should be dropped after the purge notification")
	}
}

func TestControllerClaimUser(t *testing.T) {
	ctrl := NewController()
	q1 := ctrl.RegisterQuery("Q1")
	q2 := ctrl.RegisterQuery("Q2")
	ctrl.Register("c", ReduceInput, 0, CacheAvailable, 0, 1, []int{q1})
	if !ctrl.ClaimUser("c", ReduceInput, q2) {
		t.Error("claim on known cache should succeed")
	}
	ctrl.MarkQueryDone("c", ReduceInput, q1)
	if _, ok := ctrl.Lookup("c", ReduceInput); !ok {
		t.Error("cache claimed by q2 must survive q1's release")
	}
	if ctrl.ClaimUser("ghost", ReduceInput, q1) {
		t.Error("claim on unknown cache should fail")
	}
}

func TestControllerSetReadyAndDrop(t *testing.T) {
	ctrl := NewController()
	q := ctrl.RegisterQuery("Q")
	ctrl.Register("c", ReduceInput, 0, CacheAvailable, 10, 5, []int{q})
	ctrl.SetReady("c", ReduceInput, HDFSAvailable, 20, 1)
	sig, _ := ctrl.Lookup("c", ReduceInput)
	if sig.Ready != HDFSAvailable || sig.NID != 1 || sig.ReadyAt != 20 {
		t.Errorf("SetReady not applied: %+v", sig)
	}
	ctrl.Drop("c", ReduceInput)
	if _, ok := ctrl.Lookup("c", ReduceInput); ok {
		t.Error("Drop should remove the signature")
	}
	// Late registration: new query's bit starts done on existing sigs.
	ctrl.Register("d", ReduceInput, 0, CacheAvailable, 0, 1, []int{q})
	q2 := ctrl.RegisterQuery("Q2")
	sig, _ = ctrl.Lookup("d", ReduceInput)
	if !sig.DoneMask()[q2] {
		t.Error("pre-existing caches owe nothing to late queries")
	}
}

func TestReadyString(t *testing.T) {
	for r, want := range map[Ready]string{
		NotAvailable: "not-available", HDFSAvailable: "hdfs-available", CacheAvailable: "cache-available",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %s, want %s", int(r), r.String(), want)
		}
	}
}

func TestSignaturesSorted(t *testing.T) {
	ctrl := NewController()
	q := ctrl.RegisterQuery("Q")
	ctrl.Register("b", ReduceInput, 0, CacheAvailable, 0, 1, []int{q})
	ctrl.Register("a", ReduceOutput, 0, CacheAvailable, 0, 1, []int{q})
	ctrl.Register("a", ReduceInput, 0, CacheAvailable, 0, 1, []int{q})
	sigs := ctrl.Signatures()
	if len(sigs) != 3 || sigs[0].PID != "a" || sigs[0].Type != ReduceInput || sigs[2].PID != "b" {
		t.Errorf("Signatures order wrong: %v", sigs)
	}
}

// TestPurgeNotificationReachesSiblingCopies is the regression test for
// stranded replicas: cross-query reuse (and recovery re-homing) leaves
// copies of one pid on several nodes, and the purge notification used
// to reach only the signature's current home — the other copies stayed
// resident forever, invisible to any future notice once the signature
// was gone. MarkQueryDone must expire the pid on every attached
// registry.
func TestPurgeNotificationReachesSiblingCopies(t *testing.T) {
	cl := twoNodeCluster(t)
	ctrl := NewController()
	q := ctrl.RegisterQuery("Q1")
	reg0, reg1 := NewRegistry(cl.Node(0)), NewRegistry(cl.Node(1))
	ctrl.AttachRegistry(reg0)
	ctrl.AttachRegistry(reg1)

	reg0.Add("p", ReduceOutput, []byte("data"))
	reg1.Add("p", ReduceOutput, []byte("data"))
	// The signature's home is node 1 — the copy on node 0 is a sibling.
	ctrl.Register("p", ReduceOutput, 1, CacheAvailable, 0, 4, []int{q})

	if !ctrl.MarkQueryDone("p", ReduceOutput, q) {
		t.Fatal("purge notification should fire")
	}
	if reg0.PurgeExpired() != 1 {
		t.Error("sibling copy on node 0 was stranded by the purge notification")
	}
	if reg1.PurgeExpired() != 1 {
		t.Error("home copy on node 1 was not expired")
	}
	if reg0.CachedBytes() != 0 || reg1.CachedBytes() != 0 {
		t.Errorf("orphaned bytes after purge: node0=%d node1=%d", reg0.CachedBytes(), reg1.CachedBytes())
	}
}

// TestControllerPurgeHook pins the invalidation seam the reuse index
// hangs on: both the MarkQueryDone purge and the silent Drop must
// report the removed (pid, type) to the installed hook.
func TestControllerPurgeHook(t *testing.T) {
	ctrl := NewController()
	q := ctrl.RegisterQuery("Q1")
	type rm struct {
		pid string
		typ CacheType
	}
	var got []rm
	ctrl.SetPurgeHook(func(pid string, typ CacheType) { got = append(got, rm{pid, typ}) })

	ctrl.Register("a", ReduceOutput, 0, CacheAvailable, 0, 1, []int{q})
	ctrl.Register("b", ReduceInput, 0, CacheAvailable, 0, 1, []int{q})
	ctrl.MarkQueryDone("a", ReduceOutput, q)
	ctrl.Drop("b", ReduceInput)
	ctrl.Drop("ghost", ReduceInput) // unknown pid must not fire the hook

	want := []rm{{"a", ReduceOutput}, {"b", ReduceInput}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("purge hook observed %v, want %v", got, want)
	}
	ctrl.SetPurgeHook(nil)
	ctrl.Register("c", ReduceOutput, 0, CacheAvailable, 0, 1, []int{q})
	ctrl.Drop("c", ReduceOutput)
	if len(got) != 2 {
		t.Fatal("removed hook still fired")
	}
}
