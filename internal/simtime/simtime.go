// Package simtime provides the virtual-time primitives used by the
// discrete-event cluster simulation.
//
// All task and job timings in the runtime are expressed in virtual time:
// a Time is an absolute instant on the simulation timeline and a Duration
// is a span of virtual time. Both are nanosecond-granular, mirroring
// time.Duration so that values print naturally, but they never correspond
// to wall-clock time. The simulation advances time only through explicit
// arithmetic (slot timelines, arrival schedules), never by sleeping.
package simtime

import (
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual timeline, in nanoseconds
// since the start of the simulation. The zero Time is the simulation
// epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely
// to and from time.Duration.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant as an offset from the simulation epoch.
func (t Time) String() string { return fmt.Sprintf("T+%v", Duration(t)) }

// Max returns the later of the two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of the two instants.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxAll returns the latest of the given instants; it panics on an empty
// argument list because there is no sensible identity for "latest".
func MaxAll(ts ...Time) Time {
	if len(ts) == 0 {
		panic("simtime: MaxAll of no instants")
	}
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// Timeline tracks the availability of a set of identical execution slots
// (for example the map slots of one node). Acquire returns the earliest
// instant at which a slot is free at-or-after a requested start time and
// marks that slot busy for the task's duration.
//
// Timeline is the core building block of the list-scheduling simulation:
// each node owns one Timeline for map slots and one for reduce slots.
type Timeline struct {
	free []Time // next-free instant per slot
}

// NewTimeline returns a timeline with n slots, all free at the epoch.
func NewTimeline(n int) *Timeline {
	if n <= 0 {
		panic(fmt.Sprintf("simtime: timeline must have at least one slot, got %d", n))
	}
	return &Timeline{free: make([]Time, n)}
}

// Slots returns the number of slots managed by the timeline.
func (tl *Timeline) Slots() int { return len(tl.free) }

// EarliestFree returns the earliest instant at which any slot becomes
// free, without reserving it.
func (tl *Timeline) EarliestFree() Time {
	m := tl.free[0]
	for _, f := range tl.free[1:] {
		if f < m {
			m = f
		}
	}
	return m
}

// EarliestStart returns the earliest instant a task that becomes ready at
// `ready` could start, without reserving a slot.
func (tl *Timeline) EarliestStart(ready Time) Time {
	return Max(ready, tl.EarliestFree())
}

// Acquire reserves the earliest-available slot for a task that becomes
// ready at `ready` and runs for `dur`. It returns the task's start and
// end instants.
func (tl *Timeline) Acquire(ready Time, dur Duration) (start, end Time) {
	best := 0
	for i, f := range tl.free {
		if f < tl.free[best] {
			best = i
		}
	}
	start = Max(ready, tl.free[best])
	end = start.Add(dur)
	tl.free[best] = end
	return start, end
}

// BusyUntil returns the instant at which all slots become free, i.e. the
// completion time of the last reserved task.
func (tl *Timeline) BusyUntil() Time {
	m := tl.free[0]
	for _, f := range tl.free[1:] {
		if f > m {
			m = f
		}
	}
	return m
}

// Reset marks every slot free at the given instant. It is used when a
// node restarts after a failure.
func (tl *Timeline) Reset(at Time) {
	for i := range tl.free {
		tl.free[i] = at
	}
}

// Clone returns an independent copy of the timeline. Schedulers use
// clones for what-if placement probing.
func (tl *Timeline) Clone() *Timeline {
	c := &Timeline{free: make([]Time, len(tl.free))}
	copy(c.free, tl.free)
	return c
}
