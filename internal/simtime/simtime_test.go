package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var epoch Time
	later := epoch.Add(3 * Second)
	if got := later.Sub(epoch); got != 3*Second {
		t.Errorf("Sub = %v, want 3s", got)
	}
	if !epoch.Before(later) || later.Before(epoch) {
		t.Error("Before ordering wrong")
	}
	if !later.After(epoch) || epoch.After(later) {
		t.Error("After ordering wrong")
	}
	if got := later.String(); got != "T+3s" {
		t.Errorf("String = %q, want T+3s", got)
	}
}

func TestMaxMin(t *testing.T) {
	a, b := Time(5), Time(9)
	if Max(a, b) != b || Max(b, a) != b {
		t.Error("Max wrong")
	}
	if Min(a, b) != a || Min(b, a) != a {
		t.Error("Min wrong")
	}
	if MaxAll(a, b, Time(7)) != b {
		t.Error("MaxAll wrong")
	}
}

func TestMaxAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAll() should panic on empty input")
		}
	}()
	MaxAll()
}

func TestNewTimelineRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTimeline(%d) should panic", n)
				}
			}()
			NewTimeline(n)
		}()
	}
}

func TestTimelineSingleSlotSerializes(t *testing.T) {
	tl := NewTimeline(1)
	s1, e1 := tl.Acquire(0, 10)
	s2, e2 := tl.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Errorf("first task at [%v,%v], want [0,10]", s1, e1)
	}
	if s2 != 10 || e2 != 20 {
		t.Errorf("second task at [%v,%v], want [10,20]", s2, e2)
	}
}

func TestTimelineParallelSlots(t *testing.T) {
	tl := NewTimeline(2)
	_, e1 := tl.Acquire(0, 10)
	_, e2 := tl.Acquire(0, 10)
	if e1 != 10 || e2 != 10 {
		t.Errorf("two slots should run both tasks in parallel, got ends %v, %v", e1, e2)
	}
	s3, _ := tl.Acquire(0, 5)
	if s3 != 10 {
		t.Errorf("third task should wait for a slot: start=%v, want 10", s3)
	}
}

func TestTimelineReadyDelaysStart(t *testing.T) {
	tl := NewTimeline(3)
	s, e := tl.Acquire(100, 50)
	if s != 100 || e != 150 {
		t.Errorf("task ready at 100 should run [100,150], got [%v,%v]", s, e)
	}
}

func TestTimelineEarliestAndBusy(t *testing.T) {
	tl := NewTimeline(2)
	tl.Acquire(0, 10)
	tl.Acquire(0, 30)
	if got := tl.EarliestFree(); got != 10 {
		t.Errorf("EarliestFree = %v, want 10", got)
	}
	if got := tl.BusyUntil(); got != 30 {
		t.Errorf("BusyUntil = %v, want 30", got)
	}
	if got := tl.EarliestStart(25); got != 25 {
		t.Errorf("EarliestStart(25) = %v, want 25", got)
	}
	if got := tl.EarliestStart(5); got != 10 {
		t.Errorf("EarliestStart(5) = %v, want 10", got)
	}
}

func TestTimelineResetAndClone(t *testing.T) {
	tl := NewTimeline(2)
	tl.Acquire(0, 100)
	c := tl.Clone()
	c.Acquire(0, 100) // consumes the clone's second slot
	if tl.EarliestFree() != 0 {
		t.Error("clone mutation leaked into original")
	}
	tl.Reset(500)
	if tl.EarliestFree() != 500 || tl.BusyUntil() != 500 {
		t.Error("Reset should free all slots at the given instant")
	}
	if tl.Slots() != 2 {
		t.Errorf("Slots = %d, want 2", tl.Slots())
	}
}

// Property: with n slots and any task list, no instant ever has more
// than n tasks running, and every task starts at or after its ready
// time.
func TestTimelineCapacityProperty(t *testing.T) {
	f := func(slots uint8, readies, durs []uint16) bool {
		n := int(slots%8) + 1
		tl := NewTimeline(n)
		type iv struct{ s, e Time }
		var ivs []iv
		count := len(readies)
		if len(durs) < count {
			count = len(durs)
		}
		for i := 0; i < count; i++ {
			ready := Time(readies[i])
			dur := time.Duration(durs[i]%1000) + 1
			s, e := tl.Acquire(ready, dur)
			if s < ready || e != s.Add(dur) {
				return false
			}
			ivs = append(ivs, iv{s, e})
		}
		// Check overlap count at every start instant.
		for _, p := range ivs {
			overlap := 0
			for _, q := range ivs {
				if q.s <= p.s && p.s < q.e {
					overlap++
				}
			}
			if overlap > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
