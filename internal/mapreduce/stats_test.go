package mapreduce

import (
	"testing"

	"redoop/internal/simtime"
)

// TestAccumulateIntoZero checks the zero-value special case: folding a
// phase into a fresh Stats adopts the phase's span verbatim instead of
// keeping the zero Start as a fake "the job began at t=0".
func TestAccumulateIntoZero(t *testing.T) {
	var s Stats
	s.Accumulate(Stats{
		Start: 100, End: 200,
		MapTasks: 3, BytesRead: 64,
	})
	if s.Start != 100 || s.End != 200 {
		t.Errorf("span = [%d,%d], want [100,200]", s.Start, s.End)
	}
	if s.MapTasks != 3 || s.BytesRead != 64 {
		t.Errorf("counters = %+v", s)
	}
	if s.Makespan() != simtime.Duration(100) {
		t.Errorf("makespan = %v, want 100", s.Makespan())
	}
}

// TestAccumulateOutOfOrder checks that folding phases in reverse start
// order still yields the union span: a later phase accumulated first
// must not pin Start forward.
func TestAccumulateOutOfOrder(t *testing.T) {
	var s Stats
	s.Accumulate(Stats{Start: 500, End: 900, ReduceTasks: 1})
	s.Accumulate(Stats{Start: 100, End: 300, MapTasks: 2})
	if s.Start != 100 || s.End != 900 {
		t.Errorf("span = [%d,%d], want [100,900]", s.Start, s.End)
	}
	// A fully contained phase changes neither bound.
	s.Accumulate(Stats{Start: 200, End: 400})
	if s.Start != 100 || s.End != 900 {
		t.Errorf("span after contained phase = [%d,%d], want [100,900]", s.Start, s.End)
	}
}

// TestAccumulateZeroStartPhase checks a genuine t=0 phase is not
// mistaken for "no span yet" once the accumulator has real work: the
// union must extend back to zero.
func TestAccumulateZeroStartPhase(t *testing.T) {
	var s Stats
	s.Accumulate(Stats{Start: 100, End: 200, MapTasks: 1})
	s.Accumulate(Stats{Start: 0, End: 50, MapTasks: 1})
	if s.Start != 0 || s.End != 200 {
		t.Errorf("span = [%d,%d], want [0,200]", s.Start, s.End)
	}
}

// TestAccumulateEmptyStats checks folding an all-zero Stats is a
// no-op on every field, in particular the time span: merging "no work"
// must not drag Start to zero or create a phantom span.
func TestAccumulateEmptyStats(t *testing.T) {
	s := Stats{Start: 100, End: 200, MapTasks: 2, BytesShuffled: 10}
	s.Accumulate(Stats{})
	want := Stats{Start: 100, End: 200, MapTasks: 2, BytesShuffled: 10}
	if s != want {
		t.Errorf("accumulating zero Stats changed %+v", s)
	}
}

// TestAccumulateRepeated checks counters are additive (twice the same
// phase doubles work) while the span is idempotent (re-folding the
// same interval does not widen it).
func TestAccumulateRepeated(t *testing.T) {
	phase := Stats{
		Start: 10, End: 20,
		MapTasks: 2, ReduceTasks: 1, FailedAttempts: 1,
		MapTime: 5, ShuffleTime: 3, ReduceTime: 2,
		BytesRead: 100, BytesReadLocal: 40, BytesSpilled: 50,
		BytesShuffled: 60, BytesCacheRead: 30, BytesOutput: 20,
	}
	var s Stats
	s.Accumulate(phase)
	s.Accumulate(phase)
	if s.Start != 10 || s.End != 20 {
		t.Errorf("span = [%d,%d], want [10,20]", s.Start, s.End)
	}
	if s.MapTasks != 4 || s.ReduceTasks != 2 || s.FailedAttempts != 2 {
		t.Errorf("task counts = %+v", s)
	}
	if s.MapTime != 10 || s.ShuffleTime != 6 || s.ReduceTime != 4 {
		t.Errorf("times = %+v", s)
	}
	if s.BytesRead != 200 || s.BytesReadLocal != 80 || s.BytesSpilled != 100 ||
		s.BytesShuffled != 120 || s.BytesCacheRead != 60 || s.BytesOutput != 40 {
		t.Errorf("bytes = %+v", s)
	}
}
