// Package mapreduce is a from-scratch MapReduce runtime over the
// simulated cluster and DFS substrates.
//
// It reproduces the structure of Hadoop's execution (paper §2.2): input
// files are split at DFS block granularity; map tasks run on node map
// slots, partition their output by key hash and spill it to the
// mapper's local disk; reducers copy their partitions as mappers finish
// (the shuffle), sort and group them, and run the user reduce function
// on node reduce slots. A centralized job tracker (the Engine) performs
// list scheduling against per-node slot timelines; task durations come
// from the iocost model while the user map/reduce functions really
// execute, so outputs are exact and timings are deterministic.
//
// The runtime also exposes the phase-level operations (map+shuffle of a
// subset of inputs, reduce over externally supplied cached inputs) that
// Redoop's incremental engine composes.
package mapreduce

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"

	"redoop/internal/dfs"
	"redoop/internal/records"
	"redoop/internal/simtime"
)

// Emitter receives one key/value pair from a user function. The slices
// are retained, so callers must not reuse their backing arrays.
type Emitter func(key, value []byte)

// MapFunc is the user map function, invoked once per input record.
type MapFunc func(ts int64, payload []byte, emit Emitter)

// ReduceFunc is the user reduce function, invoked once per distinct key
// with all of that key's values.
type ReduceFunc func(key []byte, values [][]byte, emit Emitter)

// Partitioner assigns a key to one of r reduce partitions.
type Partitioner func(key []byte, r int) int

// DefaultPartitioner hashes the key with FNV-1a, Hadoop's
// HashPartitioner analogue. Redoop requires the partitioner to stay
// fixed across recurrences so cached reduce inputs remain aligned with
// reducer assignments (paper §4.3).
func DefaultPartitioner(key []byte, r int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(r))
}

// Job describes one MapReduce job.
type Job struct {
	// Name identifies the job in stats and fault plans.
	Name string
	// Inputs are the DFS paths to read.
	Inputs []string
	// Map is the user map function (required).
	Map MapFunc
	// Reduce is the user reduce function (required).
	Reduce ReduceFunc
	// Combine optionally pre-aggregates map output per partition
	// before the spill, Hadoop's combiner.
	Combine ReduceFunc
	// NumReducers is the number of reduce partitions (required > 0).
	NumReducers int
	// Partition overrides DefaultPartitioner when non-nil.
	Partition Partitioner
	// OutputPath, when non-empty, receives the job's concatenated
	// reducer output in DFS.
	OutputPath string
	// CacheReduceInput models Redoop's modified ReduceTask (paper §5):
	// when true, each reduce task additionally spills its shuffled
	// input to the local file system — the reduce-input cache — and is
	// charged the corresponding disk write.
	CacheReduceInput bool
	// Place overrides the engine's task placement for this job only;
	// Redoop pins each query's reduce partitions to that query's home
	// nodes this way.
	Place Placement
	// LocalOutput marks jobs whose reduce output stays on the task
	// node's local file system (Redoop's reduce-output caches, §5).
	// Plain jobs commit their output to the DFS, paying pipeline
	// replication across the network.
	LocalOutput bool
	// Query names the cost-ledger account this job's work is billed
	// to (see internal/account). Empty leaves the job unattributed:
	// the engine runs it normally but meters nothing.
	Query string
}

// Validate reports job specification errors.
func (j *Job) Validate() error {
	if j.Map == nil {
		return fmt.Errorf("mapreduce: job %q has no map function", j.Name)
	}
	if j.Reduce == nil {
		return fmt.Errorf("mapreduce: job %q has no reduce function", j.Name)
	}
	if j.NumReducers <= 0 {
		return fmt.Errorf("mapreduce: job %q needs a positive reducer count, got %d", j.Name, j.NumReducers)
	}
	return nil
}

func (j *Job) partitioner() Partitioner {
	if j.Partition != nil {
		return j.Partition
	}
	return DefaultPartitioner
}

// Input is one logical map input: a byte range of a DFS file. Redoop's
// Dynamic Data Packer stores multiple undersized panes in one physical
// file (paper §3.2); the file's header lets a job read just one pane's
// range, which Input expresses. Length < 0 means "to end of file".
// Ranges must be record-aligned, which the packer guarantees.
type Input struct {
	Path   string
	Offset int64
	Length int64
}

// WholeFile returns an Input covering all of path.
func WholeFile(path string) Input { return Input{Path: path, Offset: 0, Length: -1} }

// WholeFiles converts paths to full-file Inputs.
func WholeFiles(paths []string) []Input {
	out := make([]Input, len(paths))
	for i, p := range paths {
		out[i] = WholeFile(p)
	}
	return out
}

// Split is one map task's input: the intersection of a logical Input
// range with one DFS block. A record belongs to the split containing
// its first byte.
type Split struct {
	Path  string
	Block dfs.Block
	// Lo and Hi bound the split's byte range within the file
	// (clipped to both the block and the input range).
	Lo, Hi int64
}

// Size returns the split's byte length.
func (s Split) Size() int64 { return s.Hi - s.Lo }

// ID returns a stable identifier for fault plans and logs.
func (s Split) ID() string { return fmt.Sprintf("%s#%d@%d", s.Path, s.Block.Index, s.Lo) }

// Stats aggregates the timing and volume accounting of one job (or one
// phase-level operation). Phase durations are summed task durations, the
// quantity the paper's Figures 6–7 "time distribution" panels report;
// Makespan (End-Start) is the per-window response time.
type Stats struct {
	Start simtime.Time
	End   simtime.Time

	MapTasks       int
	ReduceTasks    int
	FailedAttempts int

	// MapTime is the summed duration of all map task attempts.
	MapTime simtime.Duration
	// ShuffleTime is the summed per-reducer copy time: the span from a
	// reducer starting to copy map output to it starting to sort.
	ShuffleTime simtime.Duration
	// ReduceTime is the summed time reducers spend after the shuffle:
	// sort + group + reduce calls + output write (paper §6.2).
	ReduceTime simtime.Duration

	BytesRead      int64 // DFS input bytes
	BytesReadLocal int64 // portion of BytesRead served by a local replica
	BytesSpilled   int64 // map output spilled to local disk
	BytesShuffled  int64 // bytes copied mapper→reducer
	BytesCacheRead int64 // cached reduce inputs/outputs loaded (Redoop)
	BytesOutput    int64 // reducer output bytes
}

// Makespan returns the job's response time End-Start.
func (s Stats) Makespan() simtime.Duration { return s.End.Sub(s.Start) }

// Accumulate adds o's counters into s and extends the time span. It lets
// a recurrence built from several phase-level operations report one
// combined Stats.
func (s *Stats) Accumulate(o Stats) {
	// A Stats with no tasks and a zero span carries no timing; merging
	// it must not drag the accumulated Start back to t=0.
	zeroSpan := func(x Stats) bool {
		return x.MapTasks == 0 && x.ReduceTasks == 0 && x.Start == 0 && x.End == 0
	}
	if !zeroSpan(o) {
		if zeroSpan(*s) {
			s.Start = o.Start
		} else if o.Start < s.Start {
			s.Start = o.Start
		}
		if o.End > s.End {
			s.End = o.End
		}
	}
	s.MapTasks += o.MapTasks
	s.ReduceTasks += o.ReduceTasks
	s.FailedAttempts += o.FailedAttempts
	s.MapTime += o.MapTime
	s.ShuffleTime += o.ShuffleTime
	s.ReduceTime += o.ReduceTime
	s.BytesRead += o.BytesRead
	s.BytesReadLocal += o.BytesReadLocal
	s.BytesSpilled += o.BytesSpilled
	s.BytesShuffled += o.BytesShuffled
	s.BytesCacheRead += o.BytesCacheRead
	s.BytesOutput += o.BytesOutput
}

// Group is one reduce invocation's input: a key and its values.
type Group struct {
	Key    []byte
	Values [][]byte
}

// GroupPairs sorts pairs by key and groups equal keys, the sort/group
// stage preceding the reduce function. The input slice is reordered.
func GroupPairs(pairs []records.Pair) []Group {
	sort.Slice(pairs, func(i, j int) bool {
		return bytes.Compare(pairs[i].Key, pairs[j].Key) < 0
	})
	var groups []Group
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && bytes.Equal(pairs[j].Key, pairs[i].Key) {
			j++
		}
		g := Group{Key: pairs[i].Key, Values: make([][]byte, 0, j-i)}
		for k := i; k < j; k++ {
			g.Values = append(g.Values, pairs[k].Value)
		}
		groups = append(groups, g)
		i = j
	}
	return groups
}

// ReduceGroups applies a reduce function to grouped input, returning the
// emitted pairs.
func ReduceGroups(fn ReduceFunc, groups []Group) []records.Pair {
	var out []records.Pair
	emit := func(k, v []byte) { out = append(out, records.Pair{Key: k, Value: v}) }
	for _, g := range groups {
		fn(g.Key, g.Values, emit)
	}
	return out
}

// SortPairs orders pairs by key (then value) for deterministic output
// comparison in tests and experiments.
func SortPairs(ps []records.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if c := bytes.Compare(ps[i].Key, ps[j].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(ps[i].Value, ps[j].Value) < 0
	})
}
