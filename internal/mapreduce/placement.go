package mapreduce

import (
	"redoop/internal/cluster"
	"redoop/internal/simtime"
)

// Placement decides which node runs each task. The MapReduce runtime
// ships a Hadoop-like default (locality-first FIFO); Redoop substitutes
// its window-aware cache-locality scheduler (paper §4.3).
type Placement interface {
	// PlaceMap picks the node for a map task over the given split; it
	// must return an alive node. ready is the instant the task becomes
	// schedulable.
	PlaceMap(e *Engine, s Split, ready simtime.Time) *cluster.Node
	// PlaceReduce picks the node for reduce partition part of job.
	PlaceReduce(e *Engine, job *Job, part int, ready simtime.Time) *cluster.Node
}

// DefaultPlacement is Hadoop's baseline policy: map tasks prefer a node
// holding a local replica of their split, breaking ties by earliest
// available map slot; reduce tasks go to the node whose reduce slot
// frees earliest.
type DefaultPlacement struct{}

// PlaceMap implements Placement.
func (DefaultPlacement) PlaceMap(e *Engine, s Split, ready simtime.Time) *cluster.Node {
	alive := e.Cluster.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	var bestLocal, bestAny *cluster.Node
	var bestLocalT, bestAnyT simtime.Time
	for _, n := range alive {
		t := n.Map.EarliestStart(ready)
		if bestAny == nil || t < bestAnyT {
			bestAny, bestAnyT = n, t
		}
		if e.DFS.HasLocalReplica(s.Path, s.Block.Index, n.ID) {
			if bestLocal == nil || t < bestLocalT {
				bestLocal, bestLocalT = n, t
			}
		}
	}
	// Prefer the best local node unless a remote node is free much
	// earlier; a slot-bound local node should not serialize the wave.
	if bestLocal != nil && bestLocalT <= bestAnyT.Add(e.Cost.TaskOverhead) {
		return bestLocal
	}
	return bestAny
}

// PlaceReduce implements Placement.
func (DefaultPlacement) PlaceReduce(e *Engine, job *Job, part int, ready simtime.Time) *cluster.Node {
	alive := e.Cluster.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	best := alive[0]
	bestT := best.Reduce.EarliestStart(ready)
	for _, n := range alive[1:] {
		if t := n.Reduce.EarliestStart(ready); t < bestT {
			best, bestT = n, t
		}
	}
	return best
}

// FaultPlan injects task-attempt failures for fault-tolerance tests and
// the Figure 9 experiment. A nil plan means no injected failures.
type FaultPlan interface {
	// MapAttemptFails reports whether the given 0-based attempt of the
	// map task over splitID should fail.
	MapAttemptFails(jobName, splitID string, attempt int) bool
	// ReduceAttemptFails is the reduce-side analogue.
	ReduceAttemptFails(jobName string, part, attempt int) bool
}

// FaultPlans composes independent plans: an attempt fails when any
// member plan fails it, so a figure's scripted failures and a chaos
// schedule's deterministic ones can both apply to one run.
type FaultPlans []FaultPlan

// MapAttemptFails implements FaultPlan.
func (ps FaultPlans) MapAttemptFails(jobName, splitID string, attempt int) bool {
	for _, p := range ps {
		if p != nil && p.MapAttemptFails(jobName, splitID, attempt) {
			return true
		}
	}
	return false
}

// ReduceAttemptFails implements FaultPlan.
func (ps FaultPlans) ReduceAttemptFails(jobName string, part, attempt int) bool {
	for _, p := range ps {
		if p != nil && p.ReduceAttemptFails(jobName, part, attempt) {
			return true
		}
	}
	return false
}

// FailFirstAttempts is a FaultPlan failing the first N attempts of every
// task, exercising the retry path uniformly.
type FailFirstAttempts struct{ N int }

// MapAttemptFails implements FaultPlan.
func (f FailFirstAttempts) MapAttemptFails(_, _ string, attempt int) bool { return attempt < f.N }

// ReduceAttemptFails implements FaultPlan.
func (f FailFirstAttempts) ReduceAttemptFails(_ string, _, attempt int) bool { return attempt < f.N }
