package mapreduce

import (
	"bytes"
	"reflect"
	"testing"
)

// jitterizeStragglers configures the engine so every attempt is a
// straggler, guaranteeing the speculative-execution path triggers.
func jitterizeStragglers(e *Engine) {
	e.Jitter = 0.1
	e.StragglerProb = 0.99
	e.StragglerFactor = 6
	e.JitterSeed = 7
	e.Speculative = true
}

// When the straggler's node is the only alive node, placeBackup has
// nowhere to schedule a backup; the engine must fall back to the
// original attempt instead of dereferencing a nil node.
func TestSpeculationSingleAliveNodeFallsBack(t *testing.T) {
	e := testRig(t, 3)
	want := writeWords(t, e, "/in", []string{"a", "b"}, 1500)
	e.Cluster.FailNode(1)
	e.Cluster.FailNode(2)
	jitterizeStragglers(e)

	res, err := e.Run(wordCountJob([]string{"/in"}, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := outputCounts(t, res.Output)
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%s] = %d, want %d", w, got[w], n)
		}
	}

	// With no second node the outcome must match a non-speculative run
	// exactly: the original attempt stands, nothing else is charged.
	e2 := testRig(t, 3)
	writeWords(t, e2, "/in", []string{"a", "b"}, 1500)
	e2.Cluster.FailNode(1)
	e2.Cluster.FailNode(2)
	jitterizeStragglers(e2)
	e2.Speculative = false
	res2, err := e2.Run(wordCountJob([]string{"/in"}, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != res2.Stats {
		t.Errorf("single-alive-node speculation must be a no-op:\n spec: %+v\nplain: %+v", res.Stats, res2.Stats)
	}
}

// With a second node alive, speculation still launches backups (the
// fallback must not have disabled the feature): backups consume extra
// slot time, so total map time exceeds the non-speculative run's.
func TestSpeculationStillRunsWithTwoNodes(t *testing.T) {
	run := func(spec bool) Stats {
		e := testRig(t, 2)
		writeWords(t, e, "/in", []string{"a", "b"}, 1500)
		jitterizeStragglers(e)
		e.Speculative = spec
		res, err := e.Run(wordCountJob([]string{"/in"}, 2), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	if spec, plain := run(true), run(false); spec.MapTime <= plain.MapTime {
		t.Errorf("speculative backups should add map slot time: %v vs %v", spec.MapTime, plain.MapTime)
	}
}

// Workers=1 and a wide worker pool must produce byte-identical output,
// identical Stats, and the same virtual end time.
func TestSerialParallelEquivalence(t *testing.T) {
	run := func(workers int) (*Result, error) {
		e := testRig(t, 4)
		e.Workers = workers
		jitterizeStragglers(e)
		e.Faults = FailFirstAttempts{N: 2}
		writeWords(t, e, "/in", []string{"a", "b", "c", "d"}, 4000)
		job := wordCountJob([]string{"/in"}, 3)
		job.Combine = job.Reduce
		return e.Run(job, 0)
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Stats, par.Stats) {
		t.Errorf("stats diverge:\nserial:   %+v\nparallel: %+v", serial.Stats, par.Stats)
	}
	if serial.Stats.End != par.Stats.End {
		t.Errorf("virtual end times diverge: %v vs %v", serial.Stats.End, par.Stats.End)
	}
	if len(serial.Output) != len(par.Output) {
		t.Fatalf("output sizes diverge: %d vs %d", len(serial.Output), len(par.Output))
	}
	for i := range serial.Output {
		if !bytes.Equal(serial.Output[i].Key, par.Output[i].Key) ||
			!bytes.Equal(serial.Output[i].Value, par.Output[i].Value) {
			t.Fatalf("output pair %d diverges", i)
		}
	}
	if len(serial.Reducers) != len(par.Reducers) {
		t.Fatalf("reducer counts diverge: %d vs %d", len(serial.Reducers), len(par.Reducers))
	}
	for i := range serial.Reducers {
		s, p := serial.Reducers[i], par.Reducers[i]
		if s.Part != p.Part || s.Node != p.Node || s.Start != p.Start || s.End != p.End {
			t.Errorf("reducer %d schedule diverges: %+v vs %+v", i, s, p)
		}
	}
}

// WorkerCount resolves the default and explicit settings.
func TestWorkerCount(t *testing.T) {
	e := testRig(t, 2)
	if e.WorkerCount() < 1 {
		t.Errorf("default WorkerCount = %d, want >= 1", e.WorkerCount())
	}
	e.Workers = 3
	if e.WorkerCount() != 3 {
		t.Errorf("WorkerCount = %d, want 3", e.WorkerCount())
	}
}
